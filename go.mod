module dsteiner

go 1.24
