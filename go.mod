module dsteiner

go 1.23
