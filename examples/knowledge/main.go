// Knowledge-network exploration: the paper's motivating use case (§I). A
// network scientist has a large relationship graph and a handful of
// entities of interest, and wants a small connecting subgraph explaining
// how they relate — iteratively, adding entities as the investigation
// grows, which is why the solver has to be fast enough to be interactive.
//
// This example builds a citation-style knowledge graph, starts from two
// entities (where the Steiner tree degenerates to a shortest path, §I's
// framing) and grows the seed set, showing how the explanation subgraph
// evolves and how its cost compares with the naive union of pairwise
// shortest paths.
//
//	go run ./examples/knowledge
package main

import (
	"fmt"
	"log"
	"os"

	"dsteiner"
)

func main() {
	// A synthetic knowledge network: preferential-attachment citations,
	// 20K entities, weights modelling relationship strength.
	cfg, err := dsteiner.Dataset("PTN")
	if err != nil {
		log.Fatal(err)
	}
	g, err := cfg.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("knowledge graph: %d entities, %d relationships\n",
		g.NumVertices(), g.NumArcs()/2)

	// The investigation starts with 2 entities and grows to 12. Seeds
	// are chosen mutually faraway (k-BFS eccentric) to make the
	// connection structure non-trivial.
	all, err := dsteiner.SelectSeeds(g, 12, dsteiner.SeedsEccentric, 7)
	if err != nil {
		log.Fatal(err)
	}

	opts := dsteiner.Defaults(4)
	for _, n := range []int{2, 4, 8, 12} {
		seeds := all[:n]
		res, err := dsteiner.Solve(g, seeds, opts)
		if err != nil {
			log.Fatal(err)
		}

		// Naive alternative: union of shortest paths from the first
		// entity to each other entity (a star of |S|-1 paths).
		naive, err := starOfPaths(g, seeds)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n|S|=%2d: steiner D=%-8d edges=%-5d vs path-star D=%-8d edges=%-5d (%.1f%% saved)\n",
			n, res.TotalDistance, len(res.Tree), naive.total, naive.edges,
			100*(1-float64(res.TotalDistance)/float64(naive.total)))
		fmt.Printf("        phases: voronoi %.1fms, total %.1fms, %d messages\n",
			res.Phase("Voronoi Cell").Seconds*1000, res.TotalSeconds()*1000,
			res.TotalMessages())
	}

	// Persist the final explanation subgraph for rendering.
	res, err := dsteiner.Solve(g, all, opts)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create("knowledge_tree.dot")
	if err != nil {
		log.Fatal(err)
	}
	dsteiner.WriteDOT(f, res.Tree, res.Seeds)
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote knowledge_tree.dot (render with: dot -Tpng knowledge_tree.dot)")
}

type pathStar struct {
	total dsteiner.Dist
	edges int
}

// starOfPaths unions the shortest paths from seeds[0] to every other seed —
// what a user would get from |S|-1 independent shortest-path queries.
func starOfPaths(g *dsteiner.Graph, seeds []dsteiner.VID) (pathStar, error) {
	// A 2-seed Steiner tree IS the shortest path, so reuse the solver
	// pairwise and union the edges.
	type key [2]dsteiner.VID
	union := map[key]uint32{}
	for _, t := range seeds[1:] {
		res, err := dsteiner.Solve(g, []dsteiner.VID{seeds[0], t}, dsteiner.Defaults(1))
		if err != nil {
			return pathStar{}, err
		}
		for _, e := range res.Tree {
			c := e.Canon()
			union[key{c.U, c.V}] = c.W
		}
	}
	var out pathStar
	for _, w := range union {
		out.total += dsteiner.Dist(w)
		out.edges++
	}
	return out, nil
}
