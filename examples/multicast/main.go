// Multicast-tree construction in a wireless sensor network — application
// [7] in the paper (Gong et al., MobiHoc'15: "A distributed algorithm to
// construct multicast trees in WSNs: an approximate Steiner tree
// approach"). A gateway must deliver traffic to a set of receiver nodes;
// link weights model transmission energy. The multicast tree is a Steiner
// tree over {gateway} ∪ receivers, and its total weight is the energy cost
// of one multicast round.
//
// The example compares three routing structures on a random-geometric-style
// network:
//
//   - unicast star: independent shortest paths gateway → receiver
//
//   - broadcast backbone: whole-network MST pruned to the receivers
//
//   - Steiner multicast tree (this library)
//
//     go run ./examples/multicast
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dsteiner"
)

const (
	nodes     = 4000
	receivers = 25
)

func main() {
	g := buildSensorNetwork(nodes, 99)
	fmt.Printf("sensor network: %d nodes, %d links\n", g.NumVertices(), g.NumArcs()/2)

	// Gateway plus receivers, spread across the network.
	seeds, err := dsteiner.SelectSeeds(g, receivers+1, dsteiner.SeedsUniformRandom, 5)
	if err != nil {
		log.Fatal(err)
	}
	gateway := seeds[0]
	fmt.Printf("gateway node %d, %d receivers\n\n", gateway, receivers)

	// 1. Steiner multicast tree.
	res, err := dsteiner.Solve(g, seeds, dsteiner.Defaults(4))
	if err != nil {
		log.Fatal(err)
	}

	// 2. Unicast star: shortest path per receiver, shared links counted
	// once (they would be transmitted once per multicast round anyway if
	// the network deduplicates, so this is the generous comparison).
	starCost, starLinks := unicastStar(g, gateway, seeds[1:])

	// 3. Broadcast backbone: network-wide MST pruned to the multicast
	// group (classic "prune the spanning tree" multicast).
	mstCost, mstLinks := prunedMST(g, seeds)

	fmt.Printf("%-28s %12s %8s\n", "structure", "energy cost", "links")
	fmt.Printf("%-28s %12d %8d\n", "unicast star (dedup)", starCost, starLinks)
	fmt.Printf("%-28s %12d %8d\n", "pruned network MST", mstCost, mstLinks)
	fmt.Printf("%-28s %12d %8d\n", "steiner multicast (ours)", res.TotalDistance, len(res.Tree))
	fmt.Printf("\nsavings vs unicast star: %.1f%%\n",
		100*(1-float64(res.TotalDistance)/float64(starCost)))
	fmt.Printf("savings vs pruned MST:   %.1f%%\n",
		100*(1-float64(res.TotalDistance)/float64(mstCost)))
	if err := dsteiner.ValidateSteinerTree(g, seeds, res.Tree); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmulticast tree validated: spans gateway + all receivers, leaves are group members")
}

// buildSensorNetwork creates a connected network whose link weights model
// energy: a noisy grid with long-range shortcut links (sparse deployments
// have a few high-power long links).
func buildSensorNetwork(n int, seed int64) *dsteiner.Graph {
	rng := rand.New(rand.NewSource(seed))
	side := 1
	for side*side < n {
		side++
	}
	b := dsteiner.NewBuilder(side * side)
	id := func(r, c int) dsteiner.VID { return dsteiner.VID(r*side + c) }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if c+1 < side {
				b.AddEdge(id(r, c), id(r, c+1), uint32(rng.Intn(20))+10)
			}
			if r+1 < side {
				b.AddEdge(id(r, c), id(r+1, c), uint32(rng.Intn(20))+10)
			}
		}
	}
	// Long-range links: cheaper than multi-hop detours sometimes.
	for i := 0; i < side*side/20; i++ {
		u := dsteiner.VID(rng.Intn(side * side))
		v := dsteiner.VID(rng.Intn(side * side))
		b.AddEdge(u, v, uint32(rng.Intn(60))+40)
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return g
}

// unicastStar unions shortest paths gateway→receiver (2-terminal Steiner
// trees), counting shared links once.
func unicastStar(g *dsteiner.Graph, gateway dsteiner.VID, rx []dsteiner.VID) (dsteiner.Dist, int) {
	type key [2]dsteiner.VID
	union := map[key]uint32{}
	for _, r := range rx {
		res, err := dsteiner.Solve(g, []dsteiner.VID{gateway, r}, dsteiner.Defaults(1))
		if err != nil {
			log.Fatal(err)
		}
		for _, e := range res.Tree {
			c := e.Canon()
			union[key{c.U, c.V}] = c.W
		}
	}
	var total dsteiner.Dist
	for _, w := range union {
		total += dsteiner.Dist(w)
	}
	return total, len(union)
}

// prunedMST computes the whole-network MST with Kruskal and repeatedly
// prunes non-group leaves.
func prunedMST(g *dsteiner.Graph, group []dsteiner.VID) (dsteiner.Dist, int) {
	type we struct {
		e dsteiner.Edge
	}
	edges := make([]we, 0, g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		g.Neighbors(dsteiner.VID(v), func(u dsteiner.VID, w uint32) bool {
			if dsteiner.VID(v) < u {
				edges = append(edges, we{dsteiner.Edge{U: dsteiner.VID(v), V: u, W: w}})
			}
			return true
		})
	}
	// Sort by weight (simple in-place quicksort via sort.Slice would pull
	// another import; insertion is too slow here, so use a counting-ish
	// bucket pass on the small weight domain).
	buckets := map[uint32][]we{}
	var maxW uint32
	for _, e := range edges {
		buckets[e.e.W] = append(buckets[e.e.W], e)
		if e.e.W > maxW {
			maxW = e.e.W
		}
	}
	parent := make([]int32, g.NumVertices())
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	var mstEdges []dsteiner.Edge
	for w := uint32(0); w <= maxW; w++ {
		for _, e := range buckets[w] {
			ru, rv := find(int32(e.e.U)), find(int32(e.e.V))
			if ru != rv {
				parent[ru] = rv
				mstEdges = append(mstEdges, e.e)
			}
		}
	}
	// Prune leaves not in the multicast group.
	inGroup := map[dsteiner.VID]bool{}
	for _, s := range group {
		inGroup[s] = true
	}
	for {
		deg := map[dsteiner.VID]int{}
		for _, e := range mstEdges {
			deg[e.U]++
			deg[e.V]++
		}
		next := mstEdges[:0]
		removed := false
		for _, e := range mstEdges {
			if (deg[e.U] == 1 && !inGroup[e.U]) || (deg[e.V] == 1 && !inGroup[e.V]) {
				removed = true
				continue
			}
			next = append(next, e)
		}
		mstEdges = next
		if !removed {
			break
		}
	}
	var total dsteiner.Dist
	for _, e := range mstEdges {
		total += dsteiner.Dist(e.W)
	}
	return total, len(mstEdges)
}
