// Rectilinear net routing on a VLSI-style grid — application [4]/[5] in the
// paper (class Steiner trees and VLSI design; wirelength estimation for
// placement). A net's pins must be connected by horizontal/vertical wire
// segments over a routing grid whose edge weights model congestion; the
// minimum-wirelength routing tree is a rectilinear Steiner minimal tree.
//
// The example routes several nets over a shared congestion map, prints an
// ASCII rendering of one routed net, and compares total wirelength against
// the half-perimeter wirelength (HPWL) lower-bound estimate used by
// placers.
//
//	go run ./examples/vlsi
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"dsteiner"
)

const (
	rows = 40
	cols = 72
)

func main() {
	g, congestion := buildRoutingGrid(rows, cols, 3)
	fmt.Printf("routing grid: %dx%d (%d vertices, %d segments)\n\n",
		rows, cols, g.NumVertices(), g.NumArcs()/2)

	rng := rand.New(rand.NewSource(11))
	totalWire, totalHPWL := 0, 0
	var lastNet []dsteiner.VID
	var lastTree []dsteiner.Edge
	for net := 0; net < 5; net++ {
		pins := placePins(rng, 4+net*2)
		res, err := dsteiner.Solve(g, pins, dsteiner.Defaults(2))
		if err != nil {
			log.Fatal(err)
		}
		wire := len(res.Tree) // unit-length segments
		hp := hpwl(pins)
		totalWire += wire
		totalHPWL += hp
		fmt.Printf("net %d: %2d pins, wirelength %3d segments, HPWL bound %3d, congestion-weighted cost %d\n",
			net, len(pins), wire, hp, res.TotalDistance)
		lastNet, lastTree = pins, res.Tree
	}
	fmt.Printf("\ntotal wirelength %d vs HPWL lower bound %d (+%.1f%%)\n",
		totalWire, totalHPWL, 100*float64(totalWire-totalHPWL)/float64(totalHPWL))
	_ = congestion

	fmt.Println("\nlast net's routing (P = pin, + = steiner wire):")
	fmt.Print(renderNet(lastNet, lastTree))
}

// buildRoutingGrid returns a rows x cols grid whose edge weights are 1 plus
// congestion penalties in a few hot rectangular regions (macros).
func buildRoutingGrid(r, c int, macros int) (*dsteiner.Graph, [][]int) {
	congestion := make([][]int, r)
	for i := range congestion {
		congestion[i] = make([]int, c)
	}
	rng := rand.New(rand.NewSource(3))
	for m := 0; m < macros; m++ {
		r0, c0 := rng.Intn(r-8), rng.Intn(c-12)
		for i := r0; i < r0+8; i++ {
			for j := c0; j < c0+12; j++ {
				congestion[i][j] += 4
			}
		}
	}
	b := dsteiner.NewBuilder(r * c)
	id := func(i, j int) dsteiner.VID { return dsteiner.VID(i*c + j) }
	w := func(i1, j1, i2, j2 int) uint32 {
		return uint32(2 + congestion[i1][j1] + congestion[i2][j2])
	}
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				b.AddEdge(id(i, j), id(i, j+1), w(i, j, i, j+1))
			}
			if i+1 < r {
				b.AddEdge(id(i, j), id(i+1, j), w(i, j, i+1, j))
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return g, congestion
}

func placePins(rng *rand.Rand, n int) []dsteiner.VID {
	seen := map[dsteiner.VID]bool{}
	var pins []dsteiner.VID
	for len(pins) < n {
		p := dsteiner.VID(rng.Intn(rows * cols))
		if !seen[p] {
			seen[p] = true
			pins = append(pins, p)
		}
	}
	return pins
}

// hpwl computes the half-perimeter wirelength bound of a pin set.
func hpwl(pins []dsteiner.VID) int {
	minR, maxR, minC, maxC := rows, -1, cols, -1
	for _, p := range pins {
		r, c := int(p)/cols, int(p)%cols
		if r < minR {
			minR = r
		}
		if r > maxR {
			maxR = r
		}
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	return (maxR - minR) + (maxC - minC)
}

// renderNet draws the routed net on the grid.
func renderNet(pins []dsteiner.VID, tree []dsteiner.Edge) string {
	cell := make([][]byte, rows)
	for i := range cell {
		cell[i] = []byte(strings.Repeat(".", cols))
	}
	for _, e := range tree {
		for _, v := range []dsteiner.VID{e.U, e.V} {
			cell[int(v)/cols][int(v)%cols] = '+'
		}
	}
	for _, p := range pins {
		cell[int(p)/cols][int(p)%cols] = 'P'
	}
	var sb strings.Builder
	for _, row := range cell {
		sb.Write(row)
		sb.WriteByte('\n')
	}
	return sb.String()
}
