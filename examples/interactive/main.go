// Interactive exploration session — the paper's §I framing end to end:
// "a user will interact with such computation in various ways, exploring
// the relationships ... Such interaction warrants computations that can be
// made as fast as possible." This example starts the Steiner query service
// in-process, then plays a realistic analyst session against its HTTP API:
// grow the entity set, switch seed strategies, and watch how the
// explanation subgraph and per-query latency evolve.
//
//	go run ./examples/interactive
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"dsteiner"
	"dsteiner/internal/steinersvc"
)

func main() {
	// Load a social-network stand-in and serve it.
	cfg, err := dsteiner.Dataset("LVJ")
	if err != nil {
		log.Fatal(err)
	}
	g, err := cfg.Build()
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	svc := steinersvc.MustNew(g, dsteiner.Defaults(4), steinersvc.Config{
		Engines:      2,
		CacheEntries: 128,
		JobQueue:     16,
	})
	defer svc.Close()
	srv := &http.Server{Handler: svc}
	go func() {
		if err := srv.Serve(ln); err != http.ErrServerClosed {
			log.Print(err)
		}
	}()
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("query service on %s (|V|=%d, 2|E|=%d)\n\n", base, g.NumVertices(), g.NumArcs())

	// Session step 1: what does the graph look like?
	var info steinersvc.InfoResponse
	mustGetJSON(base+"/info", &info)
	fmt.Printf("analyst> info: %d vertices, max degree %d, weights [%d, %d]\n\n",
		info.Vertices, info.MaxDegree, info.MinWeight, info.MaxWeight)

	// Session step 2: start from two entities (shortest path), then keep
	// adding entities of interest and re-solving — the interactive loop.
	entities, err := dsteiner.SelectSeeds(g, 24, dsteiner.SeedsUniformRandom, 99)
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range []int{2, 4, 8, 16, 24} {
		req := steinersvc.SolveRequest{Seeds: toInt32(entities[:n])}
		var resp steinersvc.SolveResponse
		elapsed := mustPostJSON(base+"/solve", req, &resp)
		fmt.Printf("analyst> connect %2d entities: tree D=%-8d edges=%-5d steiner-vertices=%-4d (%.0fms round trip)\n",
			n, resp.Total, len(resp.Edges), resp.SteinerVertices, elapsed.Seconds()*1000)
	}

	// Session step 3: "are these clustered or scattered?" — compare the
	// same |S| under the proximate vs eccentric strategies (Table V).
	fmt.Println()
	for _, strat := range []string{"proximate", "eccentric"} {
		req := steinersvc.SolveRequest{K: 16, Strategy: strat, RNGSeed: 7}
		var resp steinersvc.SolveResponse
		elapsed := mustPostJSON(base+"/solve", req, &resp)
		fmt.Printf("analyst> 16 %-10s seeds: tree D=%-8d edges=%-5d (%.0fms)\n",
			strat, resp.Total, len(resp.Edges), elapsed.Seconds()*1000)
	}
	fmt.Println("\n(proximate entities need a far lighter explanation subgraph — Table V's contrast)")
}

func toInt32(vs []dsteiner.VID) []int32 {
	out := make([]int32, len(vs))
	for i, v := range vs {
		out[i] = int32(v)
	}
	return out
}

func mustGetJSON(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

func mustPostJSON(url string, in, out any) time.Duration {
	body, err := json.Marshal(in)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("POST %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
	return time.Since(start)
}
