// Quickstart: build a small weighted graph, pick seed vertices, compute a
// 2-approximate Steiner minimal tree and inspect the result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dsteiner"
)

func main() {
	// The example graph of the paper's Fig. 1 (vertices renumbered 0-8).
	// Smaller weights mean stronger relationships.
	b := dsteiner.NewBuilder(9)
	type edge struct {
		u, v dsteiner.VID
		w    uint32
	}
	for _, e := range []edge{
		{0, 1, 16}, {0, 4, 2}, {4, 5, 4}, {1, 5, 2}, {1, 2, 20}, {5, 6, 1},
		{2, 6, 1}, {2, 3, 24}, {6, 7, 2}, {3, 7, 2}, {7, 8, 2}, {3, 8, 18},
	} {
		b.AddEdge(e.u, e.v, e.w)
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// The entities of interest ("seed" or "terminal" vertices). The
	// paper's Fig. 1 marks vertices 1, 3, 4, 8, 9 — 0-based: 0, 2, 3, 7, 8.
	seeds := []dsteiner.VID{0, 2, 3, 7, 8}

	// Solve with the paper's tuned defaults on 4 simulated ranks:
	// asynchronous processing + distance-priority message queues.
	res, err := dsteiner.Solve(g, seeds, dsteiner.Defaults(4))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Steiner tree spanning %d seeds:\n", len(res.Seeds))
	fmt.Printf("  total distance D(G_S) = %d\n", res.TotalDistance)
	fmt.Printf("  edges                 = %d\n", len(res.Tree))
	fmt.Printf("  Steiner vertices      = %d (non-seed connectors)\n", res.SteinerVertices)
	for _, e := range res.Tree {
		fmt.Printf("    %d -- %d (w=%d)\n", e.U, e.V, e.W)
	}

	// The guarantee: D(G_S) <= 2(1-1/l) * D_min. For a graph this small
	// the exact optimum is cheap to verify with Dreyfus-Wagner.
	_, opt, err := dsteiner.SolveExact(g, seeds, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexact optimum D_min = %d, ratio = %.4f (bound < 2)\n",
		opt, float64(res.TotalDistance)/float64(opt))

	// Per-phase breakdown, as reported in the paper's Figs. 3-5.
	fmt.Println("\nper-phase breakdown:")
	for _, ph := range res.Phases {
		fmt.Printf("  %-22s %8.2fms  %6d msgs\n", ph.Name, ph.Seconds*1000, ph.Sent)
	}
}
