// Package dsteiner computes 2-approximate Steiner minimal trees on large
// weighted graphs with a distributed-style parallel algorithm, reproducing
// "Towards Distributed 2-Approximation Steiner Minimal Trees in Billion-edge
// Graphs" (Reza, Sanders, Pearce; IPDPS 2022, arXiv:2205.14503).
//
// Given an edge-weighted undirected graph G and a set of seed (terminal)
// vertices S, Solve returns an acyclic connected subgraph spanning S whose
// total distance is at most 2(1-1/l) times the optimum, where l is the
// minimum number of leaves in any Steiner minimal tree. The algorithm
// replaces the classic KMB all-pair-shortest-path step with Voronoi-cell
// computation (Mehlhorn's construction) executed asynchronously over a
// message-passing runtime with distance-prioritized visitor queues.
//
// # Quick start
//
//	b := dsteiner.NewBuilder(6)
//	b.AddEdge(0, 1, 4)
//	b.AddEdge(1, 2, 3)
//	// ...
//	g, err := b.Build()
//	res, err := dsteiner.Solve(g, []dsteiner.VID{0, 2, 5}, dsteiner.Defaults(4))
//	fmt.Println(res.TotalDistance, len(res.Tree))
//
// The packages under internal/ hold the full system: the message-passing
// runtime (internal/runtime), Voronoi cells (internal/voronoi), the solver
// (internal/core), sequential baselines (internal/baseline), the exact
// Dreyfus–Wagner solver (internal/exact), dataset generators (internal/gen)
// and the paper's experiment harness (internal/experiments). This facade
// re-exports the surface a downstream user needs.
package dsteiner

import (
	"io"
	"os"

	"dsteiner/internal/baseline"
	"dsteiner/internal/core"
	"dsteiner/internal/exact"
	"dsteiner/internal/experiments"
	"dsteiner/internal/gen"
	"dsteiner/internal/graph"
	rt "dsteiner/internal/runtime"
	"dsteiner/internal/seeds"
)

// Core graph types.
type (
	// Graph is an immutable undirected weighted graph in CSR form.
	Graph = graph.Graph
	// Builder accumulates edges and produces a Graph.
	Builder = graph.Builder
	// VID identifies a vertex.
	VID = graph.VID
	// Dist is an accumulated path distance.
	Dist = graph.Dist
	// Edge is an undirected weighted edge.
	Edge = graph.Edge
)

// Solver types.
type (
	// Engine is a long-lived solver session bound to one graph: the
	// partition, communicator and all O(|V|) state are built once and
	// pooled across Solve calls. Use for interactive workloads issuing
	// many queries against one resident graph; see NewEngine.
	Engine = core.Engine
	// Options configures Solve; the zero value is a valid single-rank
	// configuration. Use Defaults for the paper's tuned settings.
	Options = core.Options
	// Result is Solve's output: the tree, per-phase statistics and
	// memory accounting. Result.Clone deep-copies it for cache storage.
	Result = core.Result
	// BatchItem is one query's outcome within Engine.SolveBatch.
	BatchItem = core.BatchItem
	// PhaseStat is one phase's timing and message statistics.
	PhaseStat = core.PhaseStat
	// QueueKind selects the per-rank message queue discipline.
	QueueKind = rt.QueueKind
	// PartitionKind selects the vertex-to-rank mapping used to cut the
	// graph into rank-local shards.
	PartitionKind = core.PartitionKind
	// ShardStats describes an Engine's sharded graph substrate (partition
	// kind, delegate count, per-rank shard bytes).
	ShardStats = core.ShardStats
	// SeedStrategy selects a seed-vertex selection algorithm.
	SeedStrategy = seeds.Strategy
	// DatasetConfig describes a synthetic graph generator configuration.
	DatasetConfig = gen.Config
	// BaselineTree is the output of the sequential baselines.
	BaselineTree = baseline.Tree
	// QuerySpec is a full query description — mode plus its terminal
	// fields — accepted by SolveQuery and Engine.SolveSpec.
	QuerySpec = core.QuerySpec
	// Mode selects a query kind: ModeTree, ModeForest or ModePrize.
	Mode = core.Mode
	// FrontierMode selects how a rank drains its Δ-stepping bucket queue:
	// FrontierAuto, FrontierSerial or FrontierParallel.
	FrontierMode = core.FrontierMode
)

// Query modes (see docs/API.md for the per-mode semantics).
const (
	// ModeTree is the classic single Steiner tree spanning Seeds.
	ModeTree = core.ModeTree
	// ModeForest solves Steiner Forest: one tree per terminal group in
	// Groups, each internally connected, no edge bridging two groups.
	ModeForest = core.ModeForest
	// ModePrize solves prize-collecting Steiner tree: each seed carries a
	// penalty the solver may pay to leave it unconnected, minimizing tree
	// cost plus paid penalties.
	ModePrize = core.ModePrize
)

// ParseMode maps "tree" (or ""), "forest" or "prize" to its Mode.
func ParseMode(s string) (Mode, error) { return core.ParseMode(s) }

// Queue disciplines (see the paper's §IV and the Fig. 5/6 ablation).
const (
	// QueueFIFO processes messages in arrival order (HavoqGT default).
	QueueFIFO = rt.QueueFIFO
	// QueuePriority processes messages in ascending distance order —
	// the paper's key optimization.
	QueuePriority = rt.QueuePriority
	// QueueBucket is a Δ-stepping style bucket discipline.
	QueueBucket = rt.QueueBucket
)

// Partition kinds (see internal/partition and the §IV scale-out design).
const (
	// PartitionBlock gives each rank a contiguous, equal-vertex range.
	PartitionBlock = core.PartitionBlock
	// PartitionHash assigns vertex v to rank v mod P.
	PartitionHash = core.PartitionHash
	// PartitionArcBlock balances contiguous ranges by arc count.
	PartitionArcBlock = core.PartitionArcBlock
)

// ParsePartition maps "block", "hash" or "arcblock" to its PartitionKind.
func ParsePartition(s string) (PartitionKind, error) { return core.ParsePartition(s) }

// Rank backends: where the communicator's ranks live.
const (
	// BackendInproc runs ranks as goroutines over in-memory mailboxes
	// (the loopback transport — default, and the perf baseline).
	BackendInproc = core.BackendInproc
	// BackendTCP runs ranks in external rankd worker processes; this
	// process coordinates the session and every cross-rank message
	// crosses a real TCP wire (see Options.Workers / Options.ListenAddr).
	BackendTCP = core.BackendTCP
)

// ParseBackend maps "inproc" or "tcp" to its Backend.
func ParseBackend(s string) (core.Backend, error) { return core.ParseBackend(s) }

// MST merge modes: how phases 3–5 merge the cross-edge table and build the
// distance-graph MST (see internal/core Options.MSTMode).
const (
	// MSTModeAuto picks the fragment merge wherever it is available and
	// falls back to replicated elsewhere (GlobalCSR, pre-v4 TCP fleets).
	MSTModeAuto = core.MSTModeAuto
	// MSTReplicated gathers the full cross-edge table on every rank and
	// runs a sequential MST — the paper's original path, kept as oracle.
	MSTReplicated = core.MSTReplicated
	// MSTFragment is the rank-parallel Borůvka/GHS fragment merge.
	MSTFragment = core.MSTFragment
)

// ParseMSTMode maps "auto", "replicated" or "fragment" to its MSTMode.
func ParseMSTMode(s string) (core.MSTMode, error) { return core.ParseMSTMode(s) }

// ParseQueue maps "fifo", "priority" or "bucket" to its queue discipline.
func ParseQueue(s string) (rt.QueueKind, error) { return core.ParseQueue(s) }

// Frontier drain modes: how a rank drains its Δ-stepping bucket queue
// (see internal/core Options.Frontier).
const (
	// FrontierAuto drains in parallel when the bucket discipline is active
	// and more than one worker per rank is available, serially otherwise.
	FrontierAuto = core.FrontierAuto
	// FrontierSerial always drains one message at a time (the oracle path).
	FrontierSerial = core.FrontierSerial
	// FrontierParallel drains whole buckets on a per-rank worker pool;
	// requires Options.Queue == QueueBucket.
	FrontierParallel = core.FrontierParallel
)

// ParseFrontier maps "auto", "serial" or "parallel" to its FrontierMode.
func ParseFrontier(s string) (core.FrontierMode, error) { return core.ParseFrontier(s) }

// WorkerConfig parameterizes RunWorker (peer listen address, timeouts).
type WorkerConfig = core.WorkerConfig

// RunWorker runs one rankd worker session against the coordinator at
// coordAddr, blocking until the session ends (see cmd/rankd).
func RunWorker(coordAddr string, cfg WorkerConfig) error {
	return core.RunWorker(coordAddr, cfg)
}

// Seed selection strategies (§V, §V-E).
const (
	SeedsBFSLevel      = seeds.BFSLevel
	SeedsUniformRandom = seeds.UniformRandom
	SeedsEccentric     = seeds.Eccentric
	SeedsProximate     = seeds.Proximate
)

// ErrDuplicateSeed marks a seed set naming the same terminal more than
// once; Solve and Engine.Solve/SolveBatch reject such sets instead of
// silently deduplicating them.
var ErrDuplicateSeed = core.ErrDuplicateSeed

// NewBuilder returns a Builder for a graph with n vertices.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// Defaults returns the paper's tuned configuration at the given simulated
// rank count: asynchronous processing with priority message queues and a
// sequential Prim MST for the distance graph.
func Defaults(ranks int) Options { return core.Default(ranks) }

// Solve computes a 2-approximate Steiner minimal tree of g spanning the
// seed vertices. All seeds must lie in one connected component. Solve is
// the one-shot form: it pays O(|V|) session setup per call. Query-heavy
// callers should hold an Engine (see NewEngine) instead.
func Solve(g *Graph, seedSet []VID, opts Options) (*Result, error) {
	return core.Solve(g, seedSet, opts)
}

// SolveQuery is Solve generalized over query modes: it answers one
// QuerySpec — tree, forest or prize — with a transient engine. Tree-mode
// specs behave exactly like Solve. For repeated queries use NewEngine and
// Engine.SolveSpec.
func SolveQuery(g *Graph, spec QuerySpec, opts Options) (*Result, error) {
	return core.SolveQuery(g, spec, opts)
}

// NewEngine builds a reusable solver session bound to g: repeated
// Engine.Solve calls reuse the partition, the communicator's pinned rank
// goroutines and epoch-versioned per-query state, so each query does work
// proportional to the query rather than to |V|. Close the engine to
// release its goroutines. Engine.Solve serializes internally; for
// concurrent queries run one Engine per in-flight query over the shared
// immutable Graph. Engine.SolveBatch answers a slice of queries with one
// pass through that serialization — the amortized form for query lists.
//
//	e, err := dsteiner.NewEngine(g, dsteiner.Defaults(4))
//	defer e.Close()
//	for _, q := range queries {
//		res, err := e.Solve(q.Seeds)
//		// ...
//	}
func NewEngine(g *Graph, opts Options) (*Engine, error) {
	return core.NewEngine(g, opts)
}

// SelectSeeds picks k seed vertices from g's largest connected component
// with the given strategy (deterministic per rngSeed).
func SelectSeeds(g *Graph, k int, strategy SeedStrategy, rngSeed int64) ([]VID, error) {
	return seeds.Select(g, k, strategy, rngSeed)
}

// Dataset returns the named Table III stand-in dataset configuration
// (WDC12, CLW12, UKW07, FRS, LVJ, PTN, MCO, CTS; aliases accepted). Build
// it with its Build/MustBuild method.
func Dataset(name string) (DatasetConfig, error) {
	info, err := gen.Dataset(name)
	if err != nil {
		return DatasetConfig{}, err
	}
	return info.Config, nil
}

// DatasetNames lists the available stand-in datasets, largest first.
func DatasetNames() []string { return gen.DatasetNames() }

// SolveKMB runs the sequential Kou–Markowsky–Berman 2-approximation.
func SolveKMB(g *Graph, seedSet []VID) (BaselineTree, error) { return baseline.KMB(g, seedSet) }

// SolveMehlhorn runs Mehlhorn's sequential 2-approximation.
func SolveMehlhorn(g *Graph, seedSet []VID) (BaselineTree, error) {
	return baseline.Mehlhorn(g, seedSet)
}

// SolveWWW runs the Wu–Widmayer–Wong sequential 2-approximation.
func SolveWWW(g *Graph, seedSet []VID) (BaselineTree, error) { return baseline.WWW(g, seedSet) }

// SolveExact computes a Steiner minimal tree with the Dreyfus–Wagner
// dynamic program — exponential in |seedSet|, feasible up to ~12 seeds.
// memoryLimit <= 0 applies a 1 GiB default.
func SolveExact(g *Graph, seedSet []VID, memoryLimit int64) ([]Edge, Dist, error) {
	sol, err := exact.Solve(g, seedSet, memoryLimit)
	return sol.Edges, sol.Total, err
}

// ValidateSteinerTree checks that edges form a valid Steiner tree of g for
// the seed set (a tree spanning all seeds whose leaves are all seeds).
func ValidateSteinerTree(g *Graph, seedSet []VID, edges []Edge) error {
	return graph.ValidateSteinerTree(g, seedSet, edges)
}

// WriteGraph serializes g in the binary CSR container format.
func WriteGraph(w io.Writer, g *Graph) error { return graph.WriteBinary(w, g) }

// ReadGraph deserializes a graph written by WriteGraph.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.ReadBinary(r) }

// LoadGraphFile reads a graph from a binary CSR file (as written by
// cmd/gengraph).
func LoadGraphFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.ReadBinary(f)
}

// WriteDOT emits a Graphviz rendering of a Steiner tree with seeds red and
// Steiner vertices blue (the paper's Fig. 9 styling).
func WriteDOT(w io.Writer, tree []Edge, seedSet []VID) {
	experiments.WriteDOT(w, tree, seedSet)
}
