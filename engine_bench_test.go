// Benchmarks for the reusable solver Engine: the paper's §I interactive
// scenario is many queries against one resident graph, where per-query
// setup — not a single solve — dominates throughput. BenchmarkColdSolve
// pays the full O(|V|) session setup (partition, communicator goroutines,
// Voronoi arrays, walked bitmap) per query; BenchmarkEngineReuse pays it
// once and runs every query on pooled epoch-versioned state. Compare with
//
//	go test -bench 'ColdSolve|EngineReuse' -benchmem
package dsteiner_test

import (
	"math/rand"
	"sync"
	"testing"

	"dsteiner"
)

// benchSolveGraph builds a reproducible mid-size connected graph.
func benchSolveGraph(b *testing.B) *dsteiner.Graph {
	b.Helper()
	const n = 20000
	rng := rand.New(rand.NewSource(1))
	bld := dsteiner.NewBuilder(n)
	for v := 1; v < n; v++ {
		bld.AddEdge(dsteiner.VID(rng.Intn(v)), dsteiner.VID(v), uint32(rng.Intn(64))+1)
	}
	for i := 0; i < 3*n; i++ {
		bld.AddEdge(dsteiner.VID(rng.Intn(n)), dsteiner.VID(rng.Intn(n)), uint32(rng.Intn(64))+1)
	}
	g, err := bld.Build()
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func benchSeedSets(g *dsteiner.Graph, count, k int) [][]dsteiner.VID {
	rng := rand.New(rand.NewSource(2))
	sets := make([][]dsteiner.VID, count)
	for i := range sets {
		seen := map[dsteiner.VID]bool{}
		for len(sets[i]) < k {
			s := dsteiner.VID(rng.Intn(g.NumVertices()))
			if !seen[s] {
				seen[s] = true
				sets[i] = append(sets[i], s)
			}
		}
	}
	return sets
}

// BenchmarkColdSolve is the baseline: a fresh solver session per query.
func BenchmarkColdSolve(b *testing.B) {
	g := benchSolveGraph(b)
	seedSets := benchSeedSets(g, 16, 16)
	opts := dsteiner.Defaults(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dsteiner.Solve(g, seedSets[i%len(seedSets)], opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineReuse runs the same queries against one resident Engine.
func BenchmarkEngineReuse(b *testing.B) {
	g := benchSolveGraph(b)
	seedSets := benchSeedSets(g, 16, 16)
	e, err := dsteiner.NewEngine(g, dsteiner.Defaults(4))
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Solve(seedSets[i%len(seedSets)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTCPTransportSolve is the loopback-vs-wire comparison: the same
// resident-engine workload as BenchmarkEngineReuse, but the four ranks run
// in four rankd worker sessions (in-process goroutines speaking the real
// wire protocol over real localhost TCP), so every cross-rank batch is
// varint-encoded, framed, written, read and decoded, collectives cross the
// coordinator, and asynchronous quiescence is detected with termination
// tokens. The ratio against BenchmarkEngineReuse is the transport tax.
func BenchmarkTCPTransportSolve(b *testing.B) {
	g := benchSolveGraph(b)
	seedSets := benchSeedSets(g, 16, 16)
	opts := dsteiner.Defaults(4)
	opts.Backend = dsteiner.BackendTCP
	opts.Workers = 4
	opts.ListenAddr = "127.0.0.1:0"
	var wg sync.WaitGroup
	opts.OnListen = func(addr string) {
		for i := 0; i < opts.Workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := dsteiner.RunWorker(addr, dsteiner.WorkerConfig{}); err != nil {
					b.Errorf("worker: %v", err)
				}
			}()
		}
	}
	e, err := dsteiner.NewEngine(g, opts)
	if err != nil {
		b.Fatal(err)
	}
	defer wg.Wait()
	defer e.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Solve(seedSets[i%len(seedSets)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineReuseGlobalCSR is the sharded-vs-global comparison: the
// same resident-engine workload as BenchmarkEngineReuse, but on the
// pre-shard reference path that strides the shared global CSR instead of
// walking rank-local shard slabs. The ratio between the two is the cache
// locality the shard refactor buys.
func BenchmarkEngineReuseGlobalCSR(b *testing.B) {
	g := benchSolveGraph(b)
	seedSets := benchSeedSets(g, 16, 16)
	opts := dsteiner.Defaults(4)
	opts.GlobalCSR = true
	e, err := dsteiner.NewEngine(g, opts)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Solve(seedSets[i%len(seedSets)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelFrontier compares serial against parallel bucket
// draining on an identical Δ-stepping configuration: same graph, same
// queries, same bucket width — the only difference is whether each rank
// relaxes a drained bucket one message at a time or chunked across its
// frontier worker pool (4 workers per rank here). The two produce
// byte-identical Results (pinned by TestParallelFrontierMatchesSerial), so
// the ratio is pure drain-loop speedup; on a single-core box the parallel
// side only measures the pool's dispatch overhead.
func BenchmarkParallelFrontier(b *testing.B) {
	g := benchSolveGraph(b)
	seedSets := benchSeedSets(g, 16, 16)
	for _, mode := range []dsteiner.FrontierMode{dsteiner.FrontierSerial, dsteiner.FrontierParallel} {
		b.Run(mode.String(), func(b *testing.B) {
			opts := dsteiner.Defaults(2)
			opts.Queue = dsteiner.QueueBucket
			opts.BucketDelta = 32
			opts.Frontier = mode
			opts.FrontierWorkers = 8 // 4 workers on each of the 2 ranks
			e, err := dsteiner.NewEngine(g, opts)
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Solve(seedSets[i%len(seedSets)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardBuild measures the session-setup cost the shard substrate
// adds: cutting P rank-local CSR slabs (plus delegate stripes) out of the
// 20K-vertex benchmark graph. Paid once per Engine, amortized across every
// query the engine serves.
func BenchmarkShardBuild(b *testing.B) {
	g := benchSolveGraph(b)
	opts := dsteiner.Defaults(4)
	opts.DelegateThreshold = 64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := dsteiner.NewEngine(g, opts)
		if err != nil {
			b.Fatal(err)
		}
		e.Close()
	}
}

// BenchmarkEnginePoolConcurrent measures query throughput with 4 resident
// engines serving in-flight queries concurrently — the steinersvc -engines
// configuration, without the HTTP layer.
func BenchmarkEnginePoolConcurrent(b *testing.B) {
	g := benchSolveGraph(b)
	seedSets := benchSeedSets(g, 16, 16)
	const poolSize = 4
	pool := make(chan *dsteiner.Engine, poolSize)
	for i := 0; i < poolSize; i++ {
		e, err := dsteiner.NewEngine(g, dsteiner.Defaults(2))
		if err != nil {
			b.Fatal(err)
		}
		pool <- e
	}
	defer func() {
		for i := 0; i < poolSize; i++ {
			(<-pool).Close()
		}
	}()
	var mu sync.Mutex
	next := 0
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			mu.Lock()
			seeds := seedSets[next%len(seedSets)]
			next++
			mu.Unlock()
			e := <-pool
			_, err := e.Solve(seeds)
			pool <- e
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}
