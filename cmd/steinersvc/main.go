// Command steinersvc serves Steiner-tree queries over HTTP — the
// interactive exploration framework the paper motivates in §I: "an
// interactive framework is highly desired for exploring data
// relationships... this framework needs to be scalable and efficient enough
// to provide palatable interactivity." The graph is loaded (or generated)
// once and held in memory; each query solves for a user-supplied seed set
// and returns the tree as JSON.
//
// Usage:
//
//	steinersvc -dataset LVJ -addr :8080
//	steinersvc -graph web.bin -ranks 8 -engines 4 -cache 512 -jobs 128
//	steinersvc -dataset WDC12 -partition hash -delegates 145
//	steinersvc -dataset LVJ -backend tcp -workers 4 -rank-listen 127.0.0.1:7600
//
// -partition picks the vertex-to-rank mapping (block | hash | arcblock) the
// engines cut their rank-local graph shards from; -delegates N stripes the
// adjacency of vertices with degree >= N across all ranks (HavoqGT-style
// vertex delegates). /info and /stats report the partition kind, delegate
// count and shard memory.
//
// -backend selects where the ranks run. The default inproc backend runs
// them as goroutines over in-memory mailboxes. -backend tcp turns this
// process into a session coordinator: it listens on -rank-listen, waits
// (up to -worker-wait) for -workers rankd processes to dial in, ships each
// its slice of the shard plan, and every query then executes in the worker
// fleet with messages, collectives and termination tokens crossing real
// TCP. /stats exposes the wire traffic (frames, bytes, codec time) per
// pool, so the loopback-vs-TCP overhead is measurable.
//
// -recover arms fault tolerance for the TCP session: when a worker dies or
// a connection drops, the coordinator retains the shard handshake, waits up
// to -rejoin-wait for the fleet to re-handshake (survivors rejoin via the
// wire v5 Rejoin frame when started with rankd -rejoin; replacements send a
// fresh Hello), and requeues the interrupted query on the healed fleet —
// the answer is byte-identical to an undisturbed run. -respawn-cmd names a
// shell command the coordinator fires on each fault to start replacement
// workers. /stats reports the fault accounting under "faults".
//
// -engines N keeps a pool of N resident solver engines, so up to N queries
// run concurrently on the shared graph; further requests queue for the next
// free engine. -cache N keeps the N most recently used solutions, keyed by
// the canonical (sorted) terminal set, with single-flight coalescing of
// concurrent identical queries. -jobs N bounds the async job queue; a full
// queue answers 429.
//
// API:
//
//	GET  /info                            graph characteristics
//	GET  /stats                           pool/cache/job utilization + phase timings
//	POST /solve {"seeds":[1,2,3]}         solve for explicit seeds
//	POST /solve {"k":100}                 solve for k BFS-level seeds
//	GET  /solve?seeds=1,2,3               convenience form
//	POST /solve/batch {"queries":[...]}   many queries, one engine checkout
//	POST /solve/async {"seeds":[...]}     enqueue job, returns {"id":...}
//	GET  /jobs/{id}                       poll an async job
//
// Response: {"seeds":[...], "edges":[{"u":..,"v":..,"w":..}], "total":...,
// "steinerVertices":..., "phases":[{"name":..,"seconds":..,"sent":..}]}.
//
// On SIGINT/SIGTERM the server stops accepting requests, finishes in-flight
// and queued work, and releases the engine pool before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/exec"
	"os/signal"
	"syscall"
	"time"

	"dsteiner"
	"dsteiner/internal/steinersvc"
)

func main() {
	var (
		graphFile  = flag.String("graph", "", "binary CSR graph file")
		dataset    = flag.String("dataset", "", "Table III stand-in name")
		scale      = flag.Float64("scale", 1.0, "dataset scale factor")
		addr       = flag.String("addr", ":8080", "listen address")
		ranks      = flag.Int("ranks", 4, "rank count per query")
		backend    = flag.String("backend", "inproc", "rank backend: inproc | tcp (external rankd workers)")
		workers    = flag.Int("workers", 4, "rankd worker processes for -backend tcp")
		rankAddr   = flag.String("rank-listen", "127.0.0.1:7600", "coordinator listen address for -backend tcp (rankd dials this)")
		workerWait = flag.Duration("worker-wait", 60*time.Second, "how long to wait for rankd workers to dial in")
		recoverOn  = flag.Bool("recover", false, "heal a poisoned tcp session: re-admit rejoining/respawned workers and requeue the in-flight query")
		rejoinWait = flag.Duration("rejoin-wait", 30*time.Second, "how long one session heal waits for all workers to re-handshake (with -recover)")
		respawnCmd = flag.String("respawn-cmd", "", "shell command run (async, via sh -c) each time the tcp session loses a worker — e.g. a script starting one replacement rankd")
		partKind   = flag.String("partition", "arcblock", "vertex partition: block | hash | arcblock")
		mstMode    = flag.String("mst", "auto", "phase 3-5 merge: auto | fragment | replicated")
		queueKind  = flag.String("queue", "priority", "message queue discipline: fifo | priority | bucket")
		frontier   = flag.String("frontier", "auto", "bucket drain mode: auto | serial | parallel (parallel needs -queue bucket)")
		frontWkrs  = flag.Int("frontier-workers", 0, "per-process frontier worker budget, split across hosted ranks (0 = GOMAXPROCS)")
		delegates  = flag.Int("delegates", 0, "delegate high-degree vertices above this degree (0 = off)")
		engines    = flag.Int("engines", 1, "resident solver engines (max concurrent queries; must be 1 with -backend tcp)")
		cache      = flag.Int("cache", 256, "LRU solution cache entries (0 disables)")
		jobs       = flag.Int("jobs", 64, "async job queue bound (0 disables /solve/async)")
		drainWait  = flag.Duration("drain", 30*time.Second, "graceful shutdown budget")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = off)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		// The profiling listener is separate from the API server so it can
		// stay bound to localhost while the API faces the network; handlers
		// come from net/http/pprof's DefaultServeMux registration.
		go func() {
			log.Printf("steinersvc: pprof on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("steinersvc: pprof listener: %v", err)
			}
		}()
	}

	g, err := loadGraph(*graphFile, *dataset, *scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "steinersvc: %v\n", err)
		os.Exit(1)
	}
	opts := dsteiner.Defaults(*ranks)
	opts.Partition, err = dsteiner.ParsePartition(*partKind)
	if err != nil {
		fmt.Fprintf(os.Stderr, "steinersvc: %v\n", err)
		os.Exit(1)
	}
	opts.DelegateThreshold = *delegates
	opts.MSTMode, err = dsteiner.ParseMSTMode(*mstMode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "steinersvc: %v\n", err)
		os.Exit(1)
	}
	opts.Queue, err = dsteiner.ParseQueue(*queueKind)
	if err != nil {
		fmt.Fprintf(os.Stderr, "steinersvc: %v\n", err)
		os.Exit(1)
	}
	opts.Frontier, err = dsteiner.ParseFrontier(*frontier)
	if err != nil {
		fmt.Fprintf(os.Stderr, "steinersvc: %v\n", err)
		os.Exit(1)
	}
	opts.FrontierWorkers = *frontWkrs
	opts.Backend, err = dsteiner.ParseBackend(*backend)
	if err != nil {
		fmt.Fprintf(os.Stderr, "steinersvc: %v\n", err)
		os.Exit(1)
	}
	if opts.Backend == dsteiner.BackendTCP {
		opts.Workers = *workers
		opts.ListenAddr = *rankAddr
		opts.WorkerWait = *workerWait
		opts.OnListen = func(a string) {
			log.Printf("steinersvc: waiting up to %v for %d rankd worker(s) on %s "+
				"(start them with: rankd -coordinator %s)", *workerWait, *workers, a, a)
		}
		if *recoverOn {
			opts.Recover = true
			opts.RejoinWait = *rejoinWait
			cmd := *respawnCmd
			opts.OnWorkerLost = func(err error) {
				log.Printf("steinersvc: session fault: %v (healing on next solve)", err)
				if cmd == "" {
					return
				}
				// Coordinator-driven respawn: fire the operator's command
				// (asynchronously — OnWorkerLost must not block the heal)
				// so a replacement worker can dial in. Survivors rejoin on
				// their own with rankd -rejoin.
				c := exec.Command("sh", "-c", cmd)
				c.Stdout = os.Stderr
				c.Stderr = os.Stderr
				if err := c.Start(); err != nil {
					log.Printf("steinersvc: respawn-cmd: %v", err)
					return
				}
				go func() {
					if err := c.Wait(); err != nil {
						log.Printf("steinersvc: respawn-cmd exited: %v", err)
					}
				}()
			}
		}
	}
	svc, err := steinersvc.New(g, opts, steinersvc.Config{
		Engines:      *engines,
		CacheEntries: *cache,
		JobQueue:     *jobs,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "steinersvc: %v\n", err)
		os.Exit(1)
	}
	log.Printf("steinersvc: serving |V|=%d 2|E|=%d on %s with %d engine(s) x %d ranks over %s backend (%s partition, delegates>=%d), cache=%d, jobs=%d",
		g.NumVertices(), g.NumArcs(), *addr, svc.NumEngines(), *ranks, *backend, *partKind, *delegates, *cache, *jobs)

	srv := &http.Server{Addr: *addr, Handler: svc}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	httpDone := make(chan error, 1)
	go func() { httpDone <- srv.ListenAndServe() }()

	select {
	case err := <-httpDone:
		// Listener failed before any signal (port in use, ...).
		log.Fatalf("steinersvc: %v", err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("steinersvc: shutting down (up to %v)", *drainWait)
	sctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	// Stop accepting HTTP first so no new queries race the engine drain,
	// then finish the async backlog and reclaim the engine pool.
	if err := srv.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("steinersvc: http shutdown: %v", err)
	}
	if err := svc.Shutdown(sctx); err != nil {
		log.Printf("steinersvc: %v", err)
		os.Exit(1)
	}
	log.Printf("steinersvc: drained cleanly")
}

func loadGraph(file, dataset string, scale float64) (*dsteiner.Graph, error) {
	switch {
	case file != "":
		return dsteiner.LoadGraphFile(file)
	case dataset != "":
		cfg, err := dsteiner.Dataset(dataset)
		if err != nil {
			return nil, err
		}
		if scale > 0 && scale < 1 {
			cfg.N = int(float64(cfg.N) * scale)
			if cfg.N < 64 {
				cfg.N = 64
			}
		}
		return cfg.Build()
	default:
		return nil, fmt.Errorf("need -graph FILE or -dataset NAME")
	}
}
