// Command steinersvc serves Steiner-tree queries over HTTP — the
// interactive exploration framework the paper motivates in §I: "an
// interactive framework is highly desired for exploring data
// relationships... this framework needs to be scalable and efficient enough
// to provide palatable interactivity." The graph is loaded (or generated)
// once and held in memory; each query solves for a user-supplied seed set
// and returns the tree as JSON.
//
// Usage:
//
//	steinersvc -dataset LVJ -addr :8080
//	steinersvc -graph web.bin -ranks 8 -engines 4
//
// -engines N keeps a pool of N resident solver engines, so up to N queries
// run concurrently on the shared graph; further requests queue for the next
// free engine.
//
// API:
//
//	GET  /info                       graph characteristics
//	GET  /stats                      engine-pool utilization + phase timings
//	POST /solve {"seeds":[1,2,3]}    solve for explicit seeds
//	POST /solve {"k":100}            solve for k BFS-level seeds
//	GET  /solve?seeds=1,2,3          convenience form
//
// Response: {"seeds":[...], "edges":[{"u":..,"v":..,"w":..}], "total":...,
// "steinerVertices":..., "phases":[{"name":..,"seconds":..,"sent":..}]}.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"dsteiner"
	"dsteiner/internal/steinersvc"
)

func main() {
	var (
		graphFile = flag.String("graph", "", "binary CSR graph file")
		dataset   = flag.String("dataset", "", "Table III stand-in name")
		scale     = flag.Float64("scale", 1.0, "dataset scale factor")
		addr      = flag.String("addr", ":8080", "listen address")
		ranks     = flag.Int("ranks", 4, "simulated rank count per query")
		engines   = flag.Int("engines", 1, "resident solver engines (max concurrent queries)")
	)
	flag.Parse()

	g, err := loadGraph(*graphFile, *dataset, *scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "steinersvc: %v\n", err)
		os.Exit(1)
	}
	srv, err := steinersvc.New(g, dsteiner.Defaults(*ranks), *engines)
	if err != nil {
		fmt.Fprintf(os.Stderr, "steinersvc: %v\n", err)
		os.Exit(1)
	}
	log.Printf("steinersvc: serving |V|=%d 2|E|=%d on %s with %d engine(s) x %d ranks",
		g.NumVertices(), g.NumArcs(), *addr, srv.NumEngines(), *ranks)
	log.Fatal(http.ListenAndServe(*addr, srv))
}

func loadGraph(file, dataset string, scale float64) (*dsteiner.Graph, error) {
	switch {
	case file != "":
		return dsteiner.LoadGraphFile(file)
	case dataset != "":
		cfg, err := dsteiner.Dataset(dataset)
		if err != nil {
			return nil, err
		}
		if scale > 0 && scale < 1 {
			cfg.N = int(float64(cfg.N) * scale)
			if cfg.N < 64 {
				cfg.N = 64
			}
		}
		return cfg.Build()
	default:
		return nil, fmt.Errorf("need -graph FILE or -dataset NAME")
	}
}
