// Command gengraph generates synthetic graph datasets and writes them in
// the repository's binary CSR container or as a text edge list.
//
// Usage:
//
//	gengraph -dataset LVJ -o lvj.bin            # a Table III stand-in
//	gengraph -kind rmat -n 65536 -avgdeg 16 \
//	         -maxw 1000 -seed 7 -o web.bin      # a custom R-MAT graph
//	gengraph -dataset CTS -text -o cts.txt      # text edge list
//	gengraph -list                              # available datasets
package main

import (
	"flag"
	"fmt"
	"os"

	"dsteiner/internal/gen"
	"dsteiner/internal/graph"
)

func main() {
	var (
		dataset = flag.String("dataset", "", "Table III stand-in name (overrides -kind)")
		kind    = flag.String("kind", "rmat", "generator: rmat | er | ws | grid | citation")
		n       = flag.Int("n", 1<<14, "vertex count")
		avgdeg  = flag.Int("avgdeg", 16, "target average degree (rmat, er)")
		rows    = flag.Int("rows", 0, "grid rows (grid)")
		cols    = flag.Int("cols", 0, "grid cols (grid)")
		k       = flag.Int("k", 4, "ring degree (ws)")
		beta    = flag.Float64("beta", 0.1, "rewire probability (ws)")
		outdeg  = flag.Int("outdeg", 3, "citations per vertex (citation)")
		maxw    = flag.Uint("maxw", 1000, "max edge weight (uniform [1, maxw])")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("o", "", "output file ('-' or empty = stdout)")
		text    = flag.Bool("text", false, "write a text edge list instead of binary CSR")
		list    = flag.Bool("list", false, "list dataset stand-ins and exit")
		scale   = flag.Float64("scale", 1.0, "dataset scale factor (with -dataset)")
	)
	flag.Parse()

	if *list {
		for _, name := range gen.DatasetNames() {
			info := gen.MustDataset(name)
			fmt.Printf("%-6s %s (paper: |V|=%s, 2|E|=%s)\n",
				name, info.Long, info.Paper.Vertices, info.Paper.Arcs)
		}
		return
	}

	var cfg gen.Config
	if *dataset != "" {
		info, err := gen.Dataset(*dataset)
		if err != nil {
			fatal(err)
		}
		cfg = info.Config
		if *scale > 0 && *scale < 1 {
			cfg = info.Scaled(*scale)
		}
	} else {
		cfg = gen.Config{
			Name: "custom", N: *n, AvgDegree: *avgdeg,
			Rows: *rows, Cols: *cols, K: *k, Beta: *beta, OutDeg: *outdeg,
			MaxWeight: uint32(*maxw), Seed: *seed, Backbone: true,
		}
		switch *kind {
		case "rmat":
			cfg.Kind = gen.KindRMAT
		case "er":
			cfg.Kind = gen.KindErdosRenyi
		case "ws":
			cfg.Kind = gen.KindWattsStrogatz
		case "grid":
			cfg.Kind = gen.KindGrid2D
			cfg.Backbone = false
			if cfg.Rows == 0 || cfg.Cols == 0 {
				fatal(fmt.Errorf("grid needs -rows and -cols"))
			}
			cfg.N = cfg.Rows * cfg.Cols
		case "citation":
			cfg.Kind = gen.KindCitation
			cfg.Backbone = false
		default:
			fatal(fmt.Errorf("unknown -kind %q", *kind))
		}
	}

	g, err := cfg.Build()
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "gengraph: %s: |V|=%d 2|E|=%d maxdeg=%d avgdeg=%.1f\n",
		cfg.Name, g.NumVertices(), g.NumArcs(), g.MaxDegree(), g.AvgDegree())

	w := os.Stdout
	if *out != "" && *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	if *text {
		err = graph.WriteEdgeList(w, g)
	} else {
		err = graph.WriteBinary(w, g)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
	os.Exit(1)
}
