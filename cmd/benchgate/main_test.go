package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `
goos: linux
goarch: amd64
pkg: dsteiner
cpu: Intel(R) Xeon(R)
BenchmarkColdSolve-8            	       1	  95000000 ns/op	 5000000 B/op	   40000 allocs/op
BenchmarkEngineReuse-8          	       1	  10000000 ns/op	  400000 B/op	    2000 allocs/op
BenchmarkEngineReuse-8          	       1	  12000000 ns/op	  500000 B/op	    2100 allocs/op
BenchmarkEnginePoolConcurrent-8 	       1	   8000000 ns/op
| Table V | prose that mentions BenchmarkSomething in passing |
PASS
ok  	dsteiner	12.3s
`

func TestParseBench(t *testing.T) {
	res, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(res), res)
	}
	reuse := res["BenchmarkEngineReuse"]
	if reuse == nil {
		t.Fatal("BenchmarkEngineReuse missing (GOMAXPROCS suffix not stripped?)")
	}
	if reuse.Samples != 2 {
		t.Fatalf("samples = %d, want 2", reuse.Samples)
	}
	if reuse.NsPerOp != 10000000 {
		t.Fatalf("ns/op = %v, want the min across samples", reuse.NsPerOp)
	}
	if reuse.BytesPerOp != 400000 || reuse.AllocsPerOp != 2000 {
		t.Fatalf("mem stats = %v B/op %v allocs/op", reuse.BytesPerOp, reuse.AllocsPerOp)
	}
	if pool := res["BenchmarkEnginePoolConcurrent"]; pool == nil || pool.NsPerOp != 8000000 {
		t.Fatalf("no-mem-stats line mis-parsed: %+v", pool)
	}
}

func TestCompareGate(t *testing.T) {
	baseline, _ := parseBench(strings.NewReader(
		"BenchmarkEngineReuse-8 1 10000000 ns/op\nBenchmarkColdSolve-8 1 90000000 ns/op\n"))
	// +15% passes a 20% gate.
	current, _ := parseBench(strings.NewReader("BenchmarkEngineReuse-8 1 11500000 ns/op\n"))
	v, err := compare(baseline, current, []string{"BenchmarkEngineReuse"}, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if v[0].Failed {
		t.Fatalf("+15%% failed a 20%% gate: %+v", v[0])
	}
	// +25% fails it.
	current, _ = parseBench(strings.NewReader("BenchmarkEngineReuse-8 1 12500000 ns/op\n"))
	v, err = compare(baseline, current, []string{"BenchmarkEngineReuse"}, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if !v[0].Failed {
		t.Fatalf("+25%% passed a 20%% gate: %+v", v[0])
	}
	// A gated benchmark missing from the current run is an error, not a
	// silent pass.
	if _, err := compare(baseline, current, []string{"BenchmarkColdSolve"}, 0.20); err == nil {
		t.Fatal("missing gated benchmark did not error")
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.txt")
	cur := filepath.Join(dir, "cur.txt")
	jsonOut := filepath.Join(dir, "BENCH_pr.json")
	if err := os.WriteFile(base, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cur, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(base, cur, "BenchmarkEngineReuse", "", jsonOut, 0.20, &out); err != nil {
		t.Fatalf("identical runs failed the gate: %v\n%s", err, out.String())
	}
	data, err := os.ReadFile(jsonOut)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"name": "BenchmarkEngineReuse"`, `"nsPerOp": 10000000`, `"samples": 2`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("JSON report missing %q:\n%s", want, data)
		}
	}
	if !strings.Contains(out.String(), "gate BenchmarkEngineReuse") {
		t.Fatalf("missing gate line:\n%s", out.String())
	}

	// A regressed current run fails with a non-nil error.
	regressed := strings.ReplaceAll(sampleOutput, "10000000 ns/op", "20000000 ns/op")
	regressed = strings.ReplaceAll(regressed, "12000000 ns/op", "22000000 ns/op")
	if err := os.WriteFile(cur, []byte(regressed), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(base, cur, "BenchmarkEngineReuse", "", "", 0.20, &out); err == nil {
		t.Fatal("2x regression passed the gate")
	}
}

// TestRatioBounds pins the cross-benchmark ratio gate: a LEFT<=F*RIGHT
// constraint compares two benchmarks of the SAME current run, fails when
// the bound is exceeded, and errors (not skips) when a named benchmark is
// missing.
func TestRatioBounds(t *testing.T) {
	current, _ := parseBench(strings.NewReader(
		"BenchmarkFrontier/serial-8 10 10000000 ns/op\n" +
			"BenchmarkFrontier/parallel-8 10 7000000 ns/op\n"))

	ratios, err := parseRatios("BenchmarkFrontier/parallel<=0.8*BenchmarkFrontier/serial")
	if err != nil {
		t.Fatal(err)
	}
	if len(ratios) != 1 || ratios[0].Factor != 0.8 ||
		ratios[0].Left != "BenchmarkFrontier/parallel" || ratios[0].Right != "BenchmarkFrontier/serial" {
		t.Fatalf("parsed %+v", ratios)
	}
	var out strings.Builder
	// 0.7x passes a 0.8x bound.
	if err := checkRatios(current, ratios, &out); err != nil {
		t.Fatalf("0.7x failed a 0.8x bound: %v\n%s", err, out.String())
	}
	// 0.7x fails a 0.5x bound.
	tight, _ := parseRatios("BenchmarkFrontier/parallel<=0.5*BenchmarkFrontier/serial")
	if err := checkRatios(current, tight, &out); err == nil {
		t.Fatal("0.7x passed a 0.5x bound")
	}
	// A missing benchmark errors instead of silently passing.
	missing, _ := parseRatios("BenchmarkNope<=0.8*BenchmarkFrontier/serial")
	if err := checkRatios(current, missing, &out); err == nil {
		t.Fatal("missing ratio benchmark did not error")
	}
	// Malformed specs are rejected at parse time.
	for _, bad := range []string{"BenchmarkA<0.8*BenchmarkB", "BenchmarkA<=x*BenchmarkB", "BenchmarkA<=0*BenchmarkB"} {
		if _, err := parseRatios(bad); err == nil {
			t.Fatalf("parseRatios accepted %q", bad)
		}
	}

	// End to end through run: the bound rides alongside the baseline gate.
	dir := t.TempDir()
	base := filepath.Join(dir, "base.txt")
	cur := filepath.Join(dir, "cur.txt")
	content := "BenchmarkFrontier/serial-8 10 10000000 ns/op\nBenchmarkFrontier/parallel-8 10 7000000 ns/op\n"
	if err := os.WriteFile(base, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cur, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(base, cur, "BenchmarkFrontier/serial",
		"BenchmarkFrontier/parallel<=0.8*BenchmarkFrontier/serial", "", 0.20, &out); err != nil {
		t.Fatalf("passing ratio failed run: %v\n%s", err, out.String())
	}
	if err := run(base, cur, "BenchmarkFrontier/serial",
		"BenchmarkFrontier/parallel<=0.5*BenchmarkFrontier/serial", "", 0.20, &out); err == nil {
		t.Fatal("failing ratio passed run")
	}
}

func TestUpdateRewritesBaseline(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.txt")
	cur := filepath.Join(dir, "cur.txt")
	if err := os.WriteFile(base, []byte("BenchmarkEngineReuse-8 1 99999999 ns/op\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cur, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := update(base, cur, "BenchmarkEngineReuse", false, &out); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != sampleOutput {
		t.Fatalf("baseline not rewritten from current run:\n%s", got)
	}
	// After the update, the gate against the new baseline passes trivially.
	if err := run(base, cur, "BenchmarkEngineReuse", "", "", 0.20, &out); err != nil {
		t.Fatalf("gate failed against freshly updated baseline: %v", err)
	}

	// A run missing a gated benchmark must not become the baseline.
	if err := os.WriteFile(cur, []byte("BenchmarkColdSolve-8 1 1000 ns/op\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := update(base, cur, "BenchmarkEngineReuse", false, &out); err == nil {
		t.Fatal("update accepted a run missing the gated benchmark")
	}
	// An empty/unparseable run must not become the baseline either.
	if err := os.WriteFile(cur, []byte("no benchmarks here\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := update(base, cur, "", false, &out); err == nil {
		t.Fatal("update accepted an empty run")
	}
}

// TestUpdateRefusesVanishedBenchmarks pins the baseline-coverage check: a
// fresh run that silently lost benchmarks the old baseline tracks must not
// replace it (even when every GATED benchmark is still present), unless the
// caller passes prune to drop them on purpose.
func TestUpdateRefusesVanishedBenchmarks(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.txt")
	cur := filepath.Join(dir, "cur.txt")
	// Old baseline tracks the gated benchmark AND BenchmarkColdSolve.
	if err := os.WriteFile(base, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	// New run has the gated benchmark but BenchmarkColdSolve vanished.
	shrunk := "BenchmarkEngineReuse-8 1 9000000 ns/op\nBenchmarkEnginePoolConcurrent-8 1 8000000 ns/op\n"
	if err := os.WriteFile(cur, []byte(shrunk), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	err := update(base, cur, "BenchmarkEngineReuse", false, &out)
	if err == nil {
		t.Fatal("update accepted a run that dropped a tracked benchmark")
	}
	if !strings.Contains(err.Error(), "BenchmarkColdSolve") {
		t.Fatalf("error does not name the vanished benchmark: %v", err)
	}
	if got, _ := os.ReadFile(base); string(got) != sampleOutput {
		t.Fatal("baseline was rewritten despite the refusal")
	}
	// With prune the intentional removal goes through.
	if err := update(base, cur, "BenchmarkEngineReuse", true, &out); err != nil {
		t.Fatalf("prune update failed: %v", err)
	}
	if got, _ := os.ReadFile(base); string(got) != shrunk {
		t.Fatalf("pruned baseline not installed:\n%s", got)
	}
	// A missing old baseline is not an error: first-time update.
	fresh := filepath.Join(dir, "fresh.txt")
	if err := update(fresh, cur, "BenchmarkEngineReuse", false, &out); err != nil {
		t.Fatalf("first-time update failed: %v", err)
	}
	// An existing but unreadable baseline must refuse, not silently count
	// as first-time (a directory makes os.Open succeed and the read fail).
	unreadable := filepath.Join(dir, "baseline-dir")
	if err := os.Mkdir(unreadable, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := update(unreadable, cur, "BenchmarkEngineReuse", false, &out); err == nil {
		t.Fatal("update treated an unreadable baseline as first-time")
	}
}
