// Command benchgate is the CI performance-regression gate: it parses two
// `go test -bench` text outputs (a checked-in baseline and the current run),
// emits the current run as JSON, and fails when a gated benchmark's ns/op
// regressed beyond a threshold.
//
//	go test -bench . -benchtime 1x -run '^$' -short . ./internal/steinersvc | tee bench_pr.txt
//	go run ./cmd/benchgate -baseline ci/bench_baseline.txt -current bench_pr.txt \
//	    -gate BenchmarkEngineReuse -max-regress 0.20 -json BENCH_pr.json
//
// With several samples per benchmark (go test -count=N) the minimum ns/op is
// compared — the least-noisy estimate of the code's true cost. Benchmarks
// present in only one file are reported but never gate. Besides the
// baseline comparison, -ratio bounds one current benchmark against another
// from the SAME run (`-ratio 'BenchmarkX/parallel<=0.8*BenchmarkX/serial'`),
// which gates a speedup factor independently of the runner's hardware. Refresh the baseline
// from a fresh run with -update, which rewrites the baseline file from the
// current output instead of gating against it — after validating that the
// run parses, covers the gated names, and covers every benchmark the old
// baseline tracks (a vanished benchmark would otherwise silently drop out;
// pass -prune to drop benchmarks on purpose). The run must include the warm
// repeats of the gated benchmarks (their single 1x iterations run cold; CI
// compares warm minima, so a cold-only baseline silently loosens the gate):
//
//	go test -bench . -benchtime 1x -run '^$' -short . ./internal/steinersvc > bench_pr.txt
//	go test -bench 'BenchmarkEngineReuse$|BenchmarkShardBuild$' -benchtime 20x -count 3 -run '^$' . >> bench_pr.txt
//	go run ./cmd/benchgate -update -current bench_pr.txt -baseline ci/bench_baseline.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// sample is one parsed benchmark result line.
type sample struct {
	NsPerOp     float64
	BytesPerOp  float64
	AllocsPerOp float64
}

// benchResult aggregates all samples of one benchmark name.
type benchResult struct {
	Name        string  `json:"name"`
	Samples     int     `json:"samples"`
	NsPerOp     float64 `json:"nsPerOp"`               // min across samples
	BytesPerOp  float64 `json:"bytesPerOp,omitempty"`  // min across samples
	AllocsPerOp float64 `json:"allocsPerOp,omitempty"` // min across samples
}

// gomaxprocsSuffix strips the "-8" style suffix go test appends to
// benchmark names.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBench extracts benchmark results from `go test -bench` text output.
// Non-benchmark lines (experiment tables, PASS/ok, build noise) are skipped.
func parseBench(r io.Reader) (map[string]*benchResult, error) {
	out := make(map[string]*benchResult)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then value/unit pairs: "BenchmarkX-8 10 123 ns/op ...".
		if len(fields) < 4 {
			continue
		}
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue // "BenchmarkX ... some prose", not a result line
		}
		var s sample
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				s.NsPerOp = v
				seen = true
			case "B/op":
				s.BytesPerOp = v
			case "allocs/op":
				s.AllocsPerOp = v
			}
		}
		if !seen {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
		res, ok := out[name]
		if !ok {
			res = &benchResult{Name: name, NsPerOp: s.NsPerOp, BytesPerOp: s.BytesPerOp, AllocsPerOp: s.AllocsPerOp}
			out[name] = res
		}
		res.Samples++
		if s.NsPerOp < res.NsPerOp {
			res.NsPerOp = s.NsPerOp
		}
		if s.BytesPerOp < res.BytesPerOp {
			res.BytesPerOp = s.BytesPerOp
		}
		if s.AllocsPerOp < res.AllocsPerOp {
			res.AllocsPerOp = s.AllocsPerOp
		}
	}
	return out, sc.Err()
}

func parseBenchFile(path string) (map[string]*benchResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	res, err := parseBench(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return res, nil
}

// gateVerdict is one gated benchmark's comparison.
type gateVerdict struct {
	Name     string
	Baseline float64 // ns/op
	Current  float64 // ns/op
	Ratio    float64 // current / baseline
	Failed   bool
}

// compare gates the named benchmarks: current ns/op may exceed baseline by
// at most maxRegress (0.20 = +20%). A gated benchmark missing from either
// side is an error — a silently skipped gate is a broken gate.
func compare(baseline, current map[string]*benchResult, gates []string, maxRegress float64) ([]gateVerdict, error) {
	verdicts := make([]gateVerdict, 0, len(gates))
	for _, name := range gates {
		b, okB := baseline[name]
		c, okC := current[name]
		if !okB || !okC {
			return nil, fmt.Errorf("gated benchmark %s missing (baseline: %v, current: %v)", name, okB, okC)
		}
		v := gateVerdict{Name: name, Baseline: b.NsPerOp, Current: c.NsPerOp}
		v.Ratio = c.NsPerOp / b.NsPerOp
		v.Failed = v.Ratio > 1+maxRegress
		verdicts = append(verdicts, v)
	}
	return verdicts, nil
}

// ratioConstraint is one cross-benchmark bound checked WITHIN the current
// run: current ns/op of Left must not exceed Factor × current ns/op of
// Right. Because both sides come from the same run on the same machine,
// the bound is hardware-independent — it gates a speedup ratio (e.g. "the
// parallel variant must beat the serial one by 1.25x"), which an absolute
// baseline comparison cannot express.
type ratioConstraint struct {
	Left   string
	Factor float64
	Right  string
}

// ratioSpec parses "LEFT<=F*RIGHT" (benchmark names may contain '/').
var ratioSpec = regexp.MustCompile(`^([^<>=]+)<=([0-9.]+)\*(.+)$`)

// parseRatios parses the comma-separated -ratio list.
func parseRatios(list string) ([]ratioConstraint, error) {
	var out []ratioConstraint
	for _, spec := range strings.Split(list, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		m := ratioSpec.FindStringSubmatch(spec)
		if m == nil {
			return nil, fmt.Errorf("bad -ratio constraint %q (want LEFT<=F*RIGHT)", spec)
		}
		f, err := strconv.ParseFloat(m[2], 64)
		if err != nil || f <= 0 {
			return nil, fmt.Errorf("bad -ratio factor in %q", spec)
		}
		out = append(out, ratioConstraint{
			Left:   strings.TrimSpace(m[1]),
			Factor: f,
			Right:  strings.TrimSpace(m[3]),
		})
	}
	return out, nil
}

// checkRatios enforces the -ratio constraints against the current run. A
// constraint naming a benchmark absent from the run is an error — a
// silently skipped bound is a broken bound.
func checkRatios(current map[string]*benchResult, ratios []ratioConstraint, stdout io.Writer) error {
	failed := false
	for _, rc := range ratios {
		l, okL := current[rc.Left]
		r, okR := current[rc.Right]
		if !okL || !okR {
			return fmt.Errorf("ratio benchmark missing from current run (%s: %v, %s: %v)",
				rc.Left, okL, rc.Right, okR)
		}
		got := l.NsPerOp / r.NsPerOp
		status := "ok"
		if got > rc.Factor {
			status = fmt.Sprintf("FAIL (> %.2fx)", rc.Factor)
			failed = true
		}
		fmt.Fprintf(stdout, "ratio %s / %s %7.2fx (limit %.2fx) %s\n",
			rc.Left, rc.Right, got, rc.Factor, status)
	}
	if failed {
		return fmt.Errorf("cross-benchmark ratio bound exceeded")
	}
	return nil
}

// report is the JSON document written to -json.
type report struct {
	Benchmarks []*benchResult `json:"benchmarks"`
}

func writeJSONReport(path string, current map[string]*benchResult) error {
	var rep report
	for _, r := range current {
		rep.Benchmarks = append(rep.Benchmarks, r)
	}
	sort.Slice(rep.Benchmarks, func(i, j int) bool { return rep.Benchmarks[i].Name < rep.Benchmarks[j].Name })
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// splitGates parses the comma-separated -gate list.
func splitGates(gateList string) []string {
	var gates []string
	for _, g := range strings.Split(gateList, ",") {
		if g = strings.TrimSpace(g); g != "" {
			gates = append(gates, g)
		}
	}
	return gates
}

// update rewrites the baseline file from a fresh bench run, first checking
// that the run parses, contains every gated benchmark — a baseline that
// cannot gate would brick the next CI run — and covers every benchmark the
// existing baseline tracks. Without the coverage check, a benchmark that
// vanished from the run (renamed, filtered out, build-tagged away) would
// silently drop out of the baseline and never be compared again; removing
// one on purpose requires -prune.
func update(baselinePath, currentPath, gateList string, prune bool, stdout io.Writer) error {
	current, err := parseBenchFile(currentPath)
	if err != nil {
		return err
	}
	if len(current) == 0 {
		return fmt.Errorf("%s: no benchmark results found", currentPath)
	}
	for _, name := range splitGates(gateList) {
		if _, ok := current[name]; !ok {
			return fmt.Errorf("refusing to update: gated benchmark %s missing from %s", name, currentPath)
		}
	}
	old, err := parseBenchFile(baselinePath)
	switch {
	case os.IsNotExist(err):
		// First-time update: nothing tracked yet, nothing to lose.
	case err != nil:
		// An existing but unreadable/corrupt baseline must not silently
		// become "first-time": refuse so the guard cannot be bypassed by
		// exactly the damage it exists to catch.
		return fmt.Errorf("refusing to update: cannot read existing baseline: %w", err)
	case !prune:
		var vanished []string
		for name := range old {
			if _, ok := current[name]; !ok {
				vanished = append(vanished, name)
			}
		}
		if len(vanished) > 0 {
			sort.Strings(vanished)
			return fmt.Errorf("refusing to update: %s tracks benchmarks missing from %s: %s (pass -prune to drop them)",
				baselinePath, currentPath, strings.Join(vanished, ", "))
		}
	}
	raw, err := os.ReadFile(currentPath)
	if err != nil {
		return err
	}
	if err := os.WriteFile(baselinePath, raw, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "baseline %s updated from %s (%d benchmarks)\n", baselinePath, currentPath, len(current))
	return nil
}

func run(baselinePath, currentPath, gateList, ratioList, jsonPath string, maxRegress float64, stdout io.Writer) error {
	ratios, err := parseRatios(ratioList)
	if err != nil {
		return err
	}
	baseline, err := parseBenchFile(baselinePath)
	if err != nil {
		return err
	}
	current, err := parseBenchFile(currentPath)
	if err != nil {
		return err
	}
	if len(current) == 0 {
		return fmt.Errorf("%s: no benchmark results found", currentPath)
	}
	if jsonPath != "" {
		if err := writeJSONReport(jsonPath, current); err != nil {
			return err
		}
	}

	// Informational table over all common benchmarks, then the gate.
	names := make([]string, 0, len(current))
	for name := range current {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(stdout, "%-40s %14s %14s %8s\n", "benchmark", "base ns/op", "cur ns/op", "ratio")
	for _, name := range names {
		c := current[name]
		if b, ok := baseline[name]; ok {
			fmt.Fprintf(stdout, "%-40s %14.0f %14.0f %7.2fx\n", name, b.NsPerOp, c.NsPerOp, c.NsPerOp/b.NsPerOp)
		} else {
			fmt.Fprintf(stdout, "%-40s %14s %14.0f %8s\n", name, "(new)", c.NsPerOp, "-")
		}
	}

	verdicts, err := compare(baseline, current, splitGates(gateList), maxRegress)
	if err != nil {
		return err
	}
	failed := false
	for _, v := range verdicts {
		status := "ok"
		if v.Failed {
			status = fmt.Sprintf("FAIL (> +%.0f%%)", maxRegress*100)
			failed = true
		}
		fmt.Fprintf(stdout, "gate %-35s %7.2fx %s\n", v.Name, v.Ratio, status)
	}
	ratioErr := checkRatios(current, ratios, stdout)
	if failed {
		return fmt.Errorf("benchmark regression beyond %.0f%%", maxRegress*100)
	}
	return ratioErr
}

func main() {
	var (
		baseline   = flag.String("baseline", "ci/bench_baseline.txt", "checked-in baseline bench output")
		current    = flag.String("current", "bench_pr.txt", "current bench output")
		gates      = flag.String("gate", "BenchmarkEngineReuse,BenchmarkShardBuild", "comma-separated benchmarks that gate")
		ratios     = flag.String("ratio", "", "comma-separated cross-benchmark bounds within the current run, each LEFT<=F*RIGHT (ns/op)")
		maxRegress = flag.Float64("max-regress", 0.20, "max allowed ns/op regression (0.20 = +20%)")
		jsonOut    = flag.String("json", "", "write current results as JSON to this path")
		doUpdate   = flag.Bool("update", false, "rewrite -baseline from -current instead of gating")
		prune      = flag.Bool("prune", false, "with -update, allow dropping benchmarks the old baseline tracks")
	)
	flag.Parse()
	if *doUpdate {
		if err := update(*baseline, *current, *gates, *prune, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*baseline, *current, *gates, *ratios, *jsonOut, *maxRegress, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
}
