// Command rankd is the rank worker process of the TCP backend: the
// "rank becomes a process" half of the paper's distributed design. A rankd
// dials the coordinator (steinersvc -backend tcp, or any core.Engine with
// Options.BackendTCP), receives its slice of the partition.ShardPlan in
// the session handshake, rebuilds its ranks' graph shards and Voronoi
// state slabs locally — the full CSR never materializes here — meshes with
// its peer workers for direct visitor-message traffic, and serves solver
// queries until the coordinator says goodbye.
//
// Usage:
//
//	rankd -coordinator 127.0.0.1:7600
//	rankd -coordinator coord:7600 -peer-listen 10.0.0.7:0 -retry 30s
//
// -peer-listen names the interface other workers dial for rank-to-rank
// message batches; on a multi-host deployment it must be reachable from
// the peers (the default binds localhost, matching a single-machine
// cluster). -retry keeps re-dialing a coordinator that has not started
// listening yet, so workers and coordinator can start in any order.
// -rejoin, when positive, survives session faults: instead of exiting, the
// worker re-handshakes with the coordinator's healing session (wire v5
// Rejoin), waiting up to the given duration for re-admission — pair it
// with a coordinator running steinersvc -recover.
//
// The FAULTPOINTS environment variable arms deterministic crash injection
// for chaos testing (e.g. FAULTPOINTS=solve.phase3:exit kills this process
// at the start of solver phase 3); see internal/faultpoint for the point
// names and actions.
//
// The process exits 0 on a clean session end (coordinator goodbye) and
// non-zero when the session aborts unrecoverably (a rank panic anywhere in
// the fleet without -rejoin, a lost connection, a handshake mismatch), or
// 3 on an injected faultpoint exit.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"
	"time"

	"dsteiner/internal/core"
	"dsteiner/internal/faultpoint"
)

func main() {
	var (
		coord      = flag.String("coordinator", "127.0.0.1:7600", "coordinator address to dial")
		peerListen = flag.String("peer-listen", "127.0.0.1:0", "address to accept peer-worker connections on")
		retry      = flag.Duration("retry", 15*time.Second, "keep re-dialing the coordinator for this long")
		rejoin     = flag.Duration("rejoin", 0, "survive session faults: re-handshake with the healing session, waiting up to this long (0 = fail-stop)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6061; empty = off)")
	)
	flag.Parse()
	log.SetPrefix("rankd: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	if spec := os.Getenv("FAULTPOINTS"); spec != "" {
		if err := faultpoint.ArmFromSpec(spec); err != nil {
			fmt.Fprintf(os.Stderr, "rankd: %v\n", err)
			os.Exit(1)
		}
		log.Printf("armed fault points: %s", spec)
	}

	if *pprofAddr != "" {
		go func() {
			log.Printf("pprof on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof listener: %v", err)
			}
		}()
	}

	cfg := core.WorkerConfig{
		PeerListen: *peerListen,
		RejoinWait: *rejoin,
		Logf:       log.Printf,
	}
	deadline := time.Now().Add(*retry)
	for {
		err := core.ServeWorker(*coord, cfg)
		if err == nil {
			return
		}
		// Only the initial dial is retried (coordinator not up yet); a
		// session that established and then failed is fatal — unless
		// -rejoin is set, in which case ServeWorker already rejoined and
		// an error here means the rejoin itself was rejected or timed out.
		if time.Now().Before(deadline) && isDialError(err) {
			time.Sleep(250 * time.Millisecond)
			continue
		}
		fmt.Fprintf(os.Stderr, "rankd: %v\n", err)
		os.Exit(1)
	}
}

// isDialError reports whether the worker never reached the coordinator
// (retryable) as opposed to failing mid-session.
func isDialError(err error) bool {
	return err != nil && strings.Contains(err.Error(), "dial coordinator")
}
