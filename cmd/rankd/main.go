// Command rankd is the rank worker process of the TCP backend: the
// "rank becomes a process" half of the paper's distributed design. A rankd
// dials the coordinator (steinersvc -backend tcp, or any core.Engine with
// Options.BackendTCP), receives its slice of the partition.ShardPlan in
// the session handshake, rebuilds its ranks' graph shards and Voronoi
// state slabs locally — the full CSR never materializes here — meshes with
// its peer workers for direct visitor-message traffic, and serves solver
// queries until the coordinator says goodbye.
//
// Usage:
//
//	rankd -coordinator 127.0.0.1:7600
//	rankd -coordinator coord:7600 -peer-listen 10.0.0.7:0 -retry 30s
//
// -peer-listen names the interface other workers dial for rank-to-rank
// message batches; on a multi-host deployment it must be reachable from
// the peers (the default binds localhost, matching a single-machine
// cluster). -retry keeps re-dialing a coordinator that has not started
// listening yet, so workers and coordinator can start in any order.
//
// The process exits 0 on a clean session end (coordinator goodbye) and
// non-zero when the session aborts (a rank panic anywhere in the fleet, a
// lost connection, a handshake mismatch).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"
	"time"

	"dsteiner/internal/core"
)

func main() {
	var (
		coord      = flag.String("coordinator", "127.0.0.1:7600", "coordinator address to dial")
		peerListen = flag.String("peer-listen", "127.0.0.1:0", "address to accept peer-worker connections on")
		retry      = flag.Duration("retry", 15*time.Second, "keep re-dialing the coordinator for this long")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6061; empty = off)")
	)
	flag.Parse()
	log.SetPrefix("rankd: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	if *pprofAddr != "" {
		go func() {
			log.Printf("pprof on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof listener: %v", err)
			}
		}()
	}

	cfg := core.WorkerConfig{
		PeerListen: *peerListen,
		Logf:       log.Printf,
	}
	deadline := time.Now().Add(*retry)
	for {
		err := core.RunWorker(*coord, cfg)
		if err == nil {
			return
		}
		// Only the initial dial is retried (coordinator not up yet); a
		// session that established and then failed is fatal.
		if time.Now().Before(deadline) && isDialError(err) {
			time.Sleep(250 * time.Millisecond)
			continue
		}
		fmt.Fprintf(os.Stderr, "rankd: %v\n", err)
		os.Exit(1)
	}
}

// isDialError reports whether the worker never reached the coordinator
// (retryable) as opposed to failing mid-session.
func isDialError(err error) bool {
	return err != nil && strings.Contains(err.Error(), "dial coordinator")
}
