// Command experiments regenerates the paper's evaluation tables and
// figures on the synthetic stand-in datasets.
//
// Usage:
//
//	experiments -run all                  # everything, full stand-in scale
//	experiments -run table1,fig5 -v       # specific artifacts with progress
//	experiments -run fig9 -out ./dot      # also write DOT renderings
//	experiments -run table6 -exact=false  # skip the exact solver column
//
// Experiment IDs: table1 table3 fig3 fig4 table4 fig5 fig6 fig7 fig8
// table5 table6 table7 fig9 ablation-bsp ablation-delegates ablation-mst.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dsteiner/internal/experiments"
)

func main() {
	var (
		run     = flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
		scale   = flag.Float64("scale", 1.0, "dataset scale factor (0..1]")
		ranks   = flag.Int("ranks", 4, "simulated rank count for fixed-P experiments")
		seedCap = flag.Int("seedcap", 10000, "largest |S| attempted")
		exact   = flag.Bool("exact", true, "run the Dreyfus-Wagner exact column (Table VI/VII)")
		budget  = flag.Duration("refine-budget", 10*time.Second, "reference refinement budget per instance")
		reps    = flag.Int("reps", 3, "repetitions for variability experiments (Fig. 7)")
		outDir  = flag.String("out", "", "directory for Fig. 9 DOT files (empty = skip)")
		verbose = flag.Bool("v", false, "log progress to stderr")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned text tables")
	)
	flag.Parse()

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}

	cfg := experiments.DefaultConfig()
	cfg.Scale = *scale
	cfg.Ranks = *ranks
	cfg.SeedCap = *seedCap
	cfg.RunExact = *exact
	cfg.RefineBudget = *budget
	cfg.Reps = *reps
	cfg.OutDir = *outDir
	if *verbose {
		cfg.Log = os.Stderr
	}

	ids := experiments.Names()
	if *run != "all" {
		ids = strings.Split(*run, ",")
	}
	seen := map[string]bool{}
	for _, id := range ids {
		id = strings.TrimSpace(strings.ToLower(id))
		if id == "" || seen[id] {
			continue
		}
		// fig5/fig6 and table6/table7 share runners; render once.
		canonical := map[string]string{"fig6": "fig5", "table7": "table6"}
		if c, ok := canonical[id]; ok {
			id = c
		}
		if seen[id] {
			continue
		}
		seen[id] = true
		start := time.Now()
		ts, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		if *csv {
			for i := range ts {
				ts[i].RenderCSV(os.Stdout)
				fmt.Println()
			}
		} else {
			experiments.Render(os.Stdout, ts)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "[%s done in %v]\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
}
