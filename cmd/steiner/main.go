// Command steiner computes a 2-approximate Steiner minimal tree for a seed
// set on a weighted graph, printing per-phase statistics in the paper's
// style.
//
// Usage:
//
//	steiner -dataset LVJ -k 100                       # stand-in + BFS-level seeds
//	steiner -graph web.bin -seeds 3,99,1024           # explicit seeds on a file
//	steiner -dataset MCO -k 10 -dot tree.dot          # write a Fig. 9-style DOT
//	steiner -dataset FRS -k 1000 -ranks 8 -queue fifo # ablation configuration
//	steiner -dataset PTN -k 10 -compare               # vs baselines + exact
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"dsteiner"
	"dsteiner/internal/stp"
	"dsteiner/internal/tables"
)

func main() {
	var (
		graphFile = flag.String("graph", "", "binary CSR graph file (from gengraph)")
		stpFile   = flag.String("stp", "", "SteinLib/DIMACS .stp instance (graph + terminals)")
		dataset   = flag.String("dataset", "", "Table III stand-in name (alternative to -graph)")
		scale     = flag.Float64("scale", 1.0, "dataset scale factor")
		seedsFlag = flag.String("seeds", "", "comma-separated seed vertex IDs")
		k         = flag.Int("k", 0, "number of seeds to select (alternative to -seeds)")
		strategy  = flag.String("strategy", "bfs-level", "seed selection: bfs-level | uniform | eccentric | proximate")
		rngSeed   = flag.Int64("rng", 42, "seed-selection RNG seed")
		ranks     = flag.Int("ranks", 4, "simulated rank count")
		partKind  = flag.String("partition", "arcblock", "vertex partition: block | hash | arcblock")
		queue     = flag.String("queue", "priority", "message queue: priority | fifo | bucket")
		bsp       = flag.Bool("bsp", false, "bulk-synchronous instead of asynchronous processing")
		delegates = flag.Int("delegates", 0, "delegate high-degree vertices above this degree (0 = off)")
		dotFile   = flag.String("dot", "", "write the tree as Graphviz DOT")
		edges     = flag.Bool("edges", false, "print every tree edge")
		compare   = flag.Bool("compare", false, "also run KMB/Mehlhorn/WWW and (|S|<=12) the exact solver")
		mode      = flag.String("mode", "tree", "query mode: tree | forest | prize")
		groups    = flag.String("groups", "", `forest terminal groups as ";"-separated seed lists (e.g. "1,2;7,9")`)
		penalties = flag.String("penalties", "", "prize per-seed penalties, comma-separated, parallel to -seeds")
	)
	flag.Parse()

	var g *dsteiner.Graph
	var stpTerminals []dsteiner.VID
	var err error
	if *stpFile != "" {
		g, stpTerminals, err = loadSTP(*stpFile)
	} else {
		g, err = loadGraph(*graphFile, *dataset, *scale)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph: |V|=%d 2|E|=%d weights=[%s]\n",
		g.NumVertices(), g.NumArcs(), weightRange(g))

	qmode, err := dsteiner.ParseMode(*mode)
	if err != nil {
		fatal(err)
	}
	spec := dsteiner.QuerySpec{Mode: qmode}
	var seedSet []dsteiner.VID
	if qmode == dsteiner.ModeForest {
		spec.Groups, err = parseGroups(*groups)
		if err != nil {
			fatal(err)
		}
		for _, grp := range spec.Groups {
			seedSet = append(seedSet, grp...)
		}
		fmt.Printf("seeds: |S|=%d in %d groups\n", len(seedSet), len(spec.Groups))
	} else {
		if len(stpTerminals) > 0 && *seedsFlag == "" && *k == 0 {
			seedSet = stpTerminals // the instance's own terminal set
		} else {
			seedSet, err = resolveSeeds(g, *seedsFlag, *k, *strategy, *rngSeed)
			if err != nil {
				fatal(err)
			}
		}
		spec.Seeds = seedSet
		fmt.Printf("seeds: |S|=%d\n", len(seedSet))
	}
	if qmode == dsteiner.ModePrize {
		spec.Penalties, err = parsePenalties(*penalties)
		if err != nil {
			fatal(err)
		}
	}

	opts := dsteiner.Defaults(*ranks)
	opts.Partition, err = dsteiner.ParsePartition(*partKind)
	if err != nil {
		fatal(err)
	}
	switch *queue {
	case "priority":
		opts.Queue = dsteiner.QueuePriority
	case "fifo":
		opts.Queue = dsteiner.QueueFIFO
	case "bucket":
		opts.Queue = dsteiner.QueueBucket
	default:
		fatal(fmt.Errorf("unknown -queue %q", *queue))
	}
	opts.BSP = *bsp
	opts.DelegateThreshold = *delegates

	start := time.Now()
	res, err := dsteiner.SolveQuery(g, spec, opts)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("\nsteiner tree: %d edges, %d steiner vertices, D(G_S)=%d (%.3fs)\n",
		len(res.Tree), res.SteinerVertices, res.TotalDistance, elapsed.Seconds())
	switch qmode {
	case dsteiner.ModeForest:
		for gi, sub := range res.GroupTrees {
			fmt.Printf("  group %d: %d terminals, %d edges, weight %d\n",
				gi, len(res.Groups[gi]), len(sub), treeWeight(sub))
		}
	case dsteiner.ModePrize:
		fmt.Printf("  kept %d/%d terminals, skipped %v, paid penalty %d, objective %d\n",
			len(res.Seeds)-len(res.Skipped), len(res.Seeds), res.Skipped,
			res.PaidPenalty, res.Objective)
	}
	t := tables.Table{
		Title:  "Per-phase breakdown",
		Header: []string{"Phase", "Time", "Sent", "Processed", "MaxRankWork"},
	}
	for _, ph := range res.Phases {
		t.AddRow(ph.Name, tables.Seconds(ph.Seconds), tables.Count(ph.Sent),
			tables.Count(ph.Processed), tables.Count(ph.MaxRankWork))
	}
	t.Render(os.Stdout)

	if *edges {
		for _, e := range res.Tree {
			fmt.Printf("  %d -- %d  w=%d\n", e.U, e.V, e.W)
		}
	}
	if *dotFile != "" {
		f, err := os.Create(*dotFile)
		if err != nil {
			fatal(err)
		}
		dsteiner.WriteDOT(f, res.Tree, res.Seeds)
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *dotFile)
	}
	if *compare {
		if qmode != dsteiner.ModeTree {
			fatal(fmt.Errorf("-compare applies to tree mode only"))
		}
		runComparison(g, seedSet, res)
	}
}

// parseGroups parses the -groups value: ";"-separated groups of
// ","-separated vertex IDs.
func parseGroups(s string) ([][]dsteiner.VID, error) {
	if s == "" {
		return nil, fmt.Errorf("-mode forest needs -groups (e.g. -groups \"1,2;7,9\")")
	}
	var out [][]dsteiner.VID
	for _, grpStr := range strings.Split(s, ";") {
		var grp []dsteiner.VID
		for _, part := range strings.Split(grpStr, ",") {
			id, err := strconv.ParseInt(strings.TrimSpace(part), 10, 32)
			if err != nil {
				return nil, fmt.Errorf("bad group vertex %q: %w", part, err)
			}
			grp = append(grp, dsteiner.VID(id))
		}
		out = append(out, grp)
	}
	return out, nil
}

// parsePenalties parses the -penalties value: ","-separated non-negative
// integers, parallel to the seed list.
func parsePenalties(s string) ([]dsteiner.Dist, error) {
	if s == "" {
		return nil, fmt.Errorf("-mode prize needs -penalties (one per seed)")
	}
	var out []dsteiner.Dist
	for _, part := range strings.Split(s, ",") {
		p, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad penalty %q: %w", part, err)
		}
		out = append(out, dsteiner.Dist(p))
	}
	return out, nil
}

// treeWeight sums an edge list's weights.
func treeWeight(edges []dsteiner.Edge) dsteiner.Dist {
	var total dsteiner.Dist
	for _, e := range edges {
		total += dsteiner.Dist(e.W)
	}
	return total
}

func loadSTP(path string) (*dsteiner.Graph, []dsteiner.VID, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	inst, err := stp.Read(f)
	if err != nil {
		return nil, nil, err
	}
	if inst.Name != "" {
		fmt.Printf("stp instance: %s\n", inst.Name)
	}
	return inst.Graph, inst.Terminals, nil
}

func loadGraph(file, dataset string, scale float64) (*dsteiner.Graph, error) {
	switch {
	case file != "" && dataset != "":
		return nil, fmt.Errorf("use either -graph or -dataset, not both")
	case file != "":
		return dsteiner.LoadGraphFile(file)
	case dataset != "":
		cfg, err := dsteiner.Dataset(dataset)
		if err != nil {
			return nil, err
		}
		if scale > 0 && scale < 1 {
			cfg.N = int(float64(cfg.N) * scale)
			if cfg.N < 64 {
				cfg.N = 64
			}
		}
		return cfg.Build()
	default:
		return nil, fmt.Errorf("need -graph FILE or -dataset NAME (try -dataset LVJ)")
	}
}

func resolveSeeds(g *dsteiner.Graph, explicit string, k int, strategy string, rngSeed int64) ([]dsteiner.VID, error) {
	if explicit != "" {
		var out []dsteiner.VID
		for _, part := range strings.Split(explicit, ",") {
			id, err := strconv.ParseInt(strings.TrimSpace(part), 10, 32)
			if err != nil {
				return nil, fmt.Errorf("bad seed %q: %w", part, err)
			}
			out = append(out, dsteiner.VID(id))
		}
		return out, nil
	}
	if k <= 0 {
		return nil, fmt.Errorf("need -seeds LIST or -k N")
	}
	var strat dsteiner.SeedStrategy
	switch strategy {
	case "bfs-level":
		strat = dsteiner.SeedsBFSLevel
	case "uniform":
		strat = dsteiner.SeedsUniformRandom
	case "eccentric":
		strat = dsteiner.SeedsEccentric
	case "proximate":
		strat = dsteiner.SeedsProximate
	default:
		return nil, fmt.Errorf("unknown -strategy %q", strategy)
	}
	return dsteiner.SelectSeeds(g, k, strat, rngSeed)
}

func runComparison(g *dsteiner.Graph, seedSet []dsteiner.VID, res *dsteiner.Result) {
	t := tables.Table{
		Title:  "Comparison with sequential algorithms",
		Header: []string{"Algorithm", "Time", "D(G_S)", "Ratio vs ours"},
	}
	t.AddRow("distributed (ours)", tables.Seconds(res.TotalSeconds()),
		tables.Count(int64(res.TotalDistance)), "1.0000")
	type namedSolver struct {
		name string
		run  func(*dsteiner.Graph, []dsteiner.VID) (dsteiner.BaselineTree, error)
	}
	for _, s := range []namedSolver{
		{"WWW", dsteiner.SolveWWW},
		{"Mehlhorn", dsteiner.SolveMehlhorn},
		{"KMB", dsteiner.SolveKMB},
	} {
		t0 := time.Now()
		tr, err := s.run(g, seedSet)
		if err != nil {
			fatal(err)
		}
		t.AddRow(s.name, tables.Seconds(time.Since(t0).Seconds()),
			tables.Count(int64(tr.Total)),
			tables.Ratio(float64(tr.Total)/float64(res.TotalDistance)))
	}
	if len(seedSet) <= 12 {
		t0 := time.Now()
		_, opt, err := dsteiner.SolveExact(g, seedSet, 0)
		if err == nil {
			t.AddRow("exact (Dreyfus-Wagner)", tables.Seconds(time.Since(t0).Seconds()),
				tables.Count(int64(opt)),
				tables.Ratio(float64(opt)/float64(res.TotalDistance)))
			t.AddNote("approximation ratio D(G_S)/D_min = %s (bound: < 2)",
				tables.Ratio(float64(res.TotalDistance)/float64(opt)))
		}
	}
	t.Render(os.Stdout)
}

func weightRange(g *dsteiner.Graph) string {
	minW, maxW := g.WeightRange()
	return fmt.Sprintf("%d, %d", minW, maxW)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "steiner: %v\n", err)
	os.Exit(1)
}
