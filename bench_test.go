// Benchmarks regenerating every table and figure of the paper's evaluation
// (§V). Each benchmark runs the corresponding experiment harness and prints
// the paper-style table on its first iteration, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. DESIGN.md §4 maps benchmarks to paper
// artifacts; EXPERIMENTS.md records paper-vs-measured shapes. Benchmarks
// run at half stand-in scale (Scale 0.5) to keep the whole suite's
// wall-clock reasonable on one machine; cmd/experiments runs full stand-in
// scale.
package dsteiner_test

import (
	"fmt"
	"os"
	"testing"
	"time"

	"dsteiner/internal/experiments"
)

// benchConfig is the shared experiment configuration for benchmarks.
func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Scale = 0.5
	cfg.SeedCap = 2000
	cfg.Reps = 2
	cfg.RefineBudget = 5 * time.Second
	if testing.Short() {
		cfg = experiments.ShortConfig()
	}
	return cfg
}

// runExperiment executes one experiment per benchmark iteration, printing
// its tables on the first iteration only.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		ts, err := experiments.Run(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Fprintf(os.Stdout, "\n")
			experiments.Render(os.Stdout, ts)
		}
	}
}

// BenchmarkTable1_APSPvsVoronoi regenerates Table I: single-threaded APSP
// vs Voronoi-cell distance computation on LVJ and PTN.
func BenchmarkTable1_APSPvsVoronoi(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable3_Datasets regenerates Table III: dataset characteristics
// of the synthetic stand-ins next to the paper's full-scale numbers.
func BenchmarkTable3_Datasets(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkFig3_StrongScaling regenerates Fig. 3: per-phase runtime and
// critical-path work across doubling rank counts on the four largest
// graphs.
func BenchmarkFig3_StrongScaling(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig4_SeedSweep regenerates Fig. 4: per-phase runtime for
// |S| = 10..10000 on six graphs.
func BenchmarkFig4_SeedSweep(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkTable4_TreeEdges regenerates Table IV: Steiner-tree edge counts
// for every dataset and seed count.
func BenchmarkTable4_TreeEdges(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkFig5_FIFOvsPriority regenerates Fig. 5 and Fig. 6: runtime and
// message counts under FIFO vs priority message queues.
func BenchmarkFig5_FIFOvsPriority(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig7_WeightRanges regenerates Fig. 7: sensitivity of both queue
// disciplines to the edge-weight range on LVJ.
func BenchmarkFig7_WeightRanges(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8_Memory regenerates Fig. 8: graph vs algorithm-state memory
// accounting at |S| = 1K and the largest supported seed count.
func BenchmarkFig8_Memory(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkTable5_SeedStrategies regenerates Table V: the four seed
// selection strategies on LVJ.
func BenchmarkTable5_SeedStrategies(b *testing.B) { runExperiment(b, "table5") }

// BenchmarkTable6and7_RelatedWork regenerates Table VI (runtime vs exact
// solver and sequential 2-approximations) and Table VII (approximation
// ratios against D_min).
func BenchmarkTable6and7_RelatedWork(b *testing.B) { runExperiment(b, "table6") }

// BenchmarkFig9_TreeRendering regenerates Fig. 9: Steiner trees in the MiCo
// graph (DOT emission plus size summary).
func BenchmarkFig9_TreeRendering(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkAblation_AsyncVsBSP quantifies the asynchronous-processing
// design choice (§IV) against bulk-synchronous supersteps.
func BenchmarkAblation_AsyncVsBSP(b *testing.B) { runExperiment(b, "ablation-bsp") }

// BenchmarkAblation_Delegates quantifies HavoqGT-style high-degree vertex
// delegation on the most skewed stand-in.
func BenchmarkAblation_Delegates(b *testing.B) { runExperiment(b, "ablation-delegates") }

// BenchmarkAblation_MSTAlgos quantifies the sequential-MST design choice
// (§III): Prim vs Kruskal vs Borůvka on distance graphs G'₁ of measured
// sizes.
func BenchmarkAblation_MSTAlgos(b *testing.B) { runExperiment(b, "ablation-mst") }
