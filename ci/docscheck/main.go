// Command docscheck is the CI documentation gate: it verifies that every
// relative link in the repo's markdown documentation resolves to a real
// file, and that every Go example snippet in docs/ is gofmt-formatted and
// actually compiles against the current tree (so the docs cannot silently
// rot as the API moves).
//
//	go run ./ci/docscheck            # from the repo root
//	go run ./ci/docscheck -root ..   # from elsewhere
//
// Rules:
//
//   - Checked files: README.md, ROADMAP.md, CHANGES.md and docs/*.md.
//   - Links: [text](target) with a non-URL target must point at an existing
//     file or directory, resolved relative to the markdown file ("#anchor"
//     suffixes are stripped; bare "#anchor", http(s) and mailto links are
//     skipped).
//   - Go snippets: every ```go fenced block in docs/*.md must be a complete
//     compilable file — it must carry a package clause, survive gofmt
//     unchanged, and build inside the repo's module (snippets are written
//     to a throwaway package directory and compiled with `go build`).
//     Fragments that are not meant to compile belong in ```text blocks.
//     README snippets are link-checked only: they use elision ("...") for
//     brevity.
package main

import (
	"flag"
	"fmt"
	"go/format"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// linkRe matches inline markdown links [text](target). Images and reference
// links are out of scope — the repo does not use them.
var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// goBlock is one ```go fenced snippet with its source location.
type goBlock struct {
	file string
	line int // 1-based line of the opening fence
	code string
}

// mdFiles lists the markdown files to check, relative to root.
func mdFiles(root string) ([]string, error) {
	files := []string{}
	for _, name := range []string{"README.md", "ROADMAP.md", "CHANGES.md"} {
		if _, err := os.Stat(filepath.Join(root, name)); err == nil {
			files = append(files, name)
		}
	}
	docs, err := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	if err != nil {
		return nil, err
	}
	for _, d := range docs {
		rel, err := filepath.Rel(root, d)
		if err != nil {
			return nil, err
		}
		files = append(files, rel)
	}
	sort.Strings(files)
	return files, nil
}

// checkLinks verifies every relative link target in file (a path relative
// to root) exists on disk.
func checkLinks(root, file string, content string) []string {
	var problems []string
	for i, line := range strings.Split(content, "\n") {
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(root, filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems, fmt.Sprintf("%s:%d: broken link %q (%s does not exist)",
					file, i+1, m[1], resolved))
			}
		}
	}
	return problems
}

// extractGoBlocks returns every ```go fenced block of content.
func extractGoBlocks(file, content string) []goBlock {
	var blocks []goBlock
	lines := strings.Split(content, "\n")
	for i := 0; i < len(lines); i++ {
		if strings.TrimSpace(lines[i]) != "```go" {
			continue
		}
		start := i + 1
		j := start
		for j < len(lines) && strings.TrimSpace(lines[j]) != "```" {
			j++
		}
		blocks = append(blocks, goBlock{
			file: file,
			line: i + 1,
			code: strings.Join(lines[start:j], "\n") + "\n",
		})
		i = j
	}
	return blocks
}

// checkGoBlock verifies one snippet is a complete, gofmt-clean Go file.
// The compile step happens afterwards over all snippets at once.
func checkGoBlock(b goBlock) []string {
	var problems []string
	if !strings.Contains(b.code, "package ") {
		return []string{fmt.Sprintf("%s:%d: go snippet has no package clause; make it a complete file or use a ```text fence", b.file, b.line)}
	}
	formatted, err := format.Source([]byte(b.code))
	if err != nil {
		return []string{fmt.Sprintf("%s:%d: go snippet does not parse: %v", b.file, b.line, err)}
	}
	if string(formatted) != b.code {
		problems = append(problems, fmt.Sprintf("%s:%d: go snippet is not gofmt-formatted", b.file, b.line))
	}
	return problems
}

// compileGoBlocks writes each snippet into its own throwaway package
// directory under root (inside the module, so imports of the repo resolve)
// and builds it. The directory name starts with "_" so the go tool's ./...
// patterns and the build cache ignore any leftovers.
func compileGoBlocks(root string, blocks []goBlock) []string {
	if len(blocks) == 0 {
		return nil
	}
	tmp, err := os.MkdirTemp(root, "_docsnippets")
	if err != nil {
		return []string{fmt.Sprintf("docscheck: %v", err)}
	}
	defer os.RemoveAll(tmp)
	var problems []string
	for i, b := range blocks {
		dir := filepath.Join(tmp, fmt.Sprintf("snippet%02d", i))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			problems = append(problems, err.Error())
			continue
		}
		if err := os.WriteFile(filepath.Join(dir, "snippet.go"), []byte(b.code), 0o644); err != nil {
			problems = append(problems, err.Error())
			continue
		}
		cmd := exec.Command("go", "build", "-o", os.DevNull, "./"+filepath.ToSlash(mustRel(root, dir)))
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			problems = append(problems, fmt.Sprintf("%s:%d: go snippet does not compile:\n%s", b.file, b.line, out))
		}
	}
	return problems
}

func mustRel(base, target string) string {
	rel, err := filepath.Rel(base, target)
	if err != nil {
		panic(err)
	}
	return rel
}

func run(root string) []string {
	files, err := mdFiles(root)
	if err != nil {
		return []string{err.Error()}
	}
	if len(files) == 0 {
		return []string{fmt.Sprintf("docscheck: no markdown files found under %s", root)}
	}
	var problems []string
	var blocks []goBlock
	for _, file := range files {
		raw, err := os.ReadFile(filepath.Join(root, file))
		if err != nil {
			problems = append(problems, err.Error())
			continue
		}
		content := string(raw)
		problems = append(problems, checkLinks(root, file, content)...)
		// Compile-check snippets in docs/ only; README uses elided
		// fragments (see the package comment).
		if strings.HasPrefix(file, "docs"+string(filepath.Separator)) || strings.HasPrefix(file, "docs/") {
			for _, b := range extractGoBlocks(file, content) {
				problems = append(problems, checkGoBlock(b)...)
				blocks = append(blocks, b)
			}
		}
	}
	problems = append(problems, compileGoBlocks(root, blocks)...)
	return problems
}

func main() {
	root := flag.String("root", ".", "repository root")
	flag.Parse()
	problems := run(*root)
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docscheck: docs links resolve and snippets compile")
}
