package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCheckLinks(t *testing.T) {
	root := t.TempDir()
	if err := os.MkdirAll(filepath.Join(root, "docs"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "README.md"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	md := strings.Join([]string{
		"[ok](../README.md)",
		"[anchor ok](../README.md#section)",
		"[web](https://example.com/x) [mail](mailto:a@b.c) [frag](#here)",
		"[broken](missing.md)",
	}, "\n")
	problems := checkLinks(root, filepath.Join("docs", "API.md"), md)
	if len(problems) != 1 || !strings.Contains(problems[0], "missing.md") {
		t.Fatalf("problems = %v, want exactly the broken link", problems)
	}
}

func TestExtractAndCheckGoBlocks(t *testing.T) {
	md := "intro\n```go\npackage main\n\nfunc main() {}\n```\nmiddle\n```text\nnot go\n```\n```go\nx := 1\n```\n"
	blocks := extractGoBlocks("docs/X.md", md)
	if len(blocks) != 2 {
		t.Fatalf("extracted %d blocks, want 2", len(blocks))
	}
	if p := checkGoBlock(blocks[0]); len(p) != 0 {
		t.Fatalf("well-formed snippet flagged: %v", p)
	}
	// The fragment has no package clause.
	if p := checkGoBlock(blocks[1]); len(p) != 1 || !strings.Contains(p[0], "package clause") {
		t.Fatalf("fragment not flagged: %v", p)
	}
	// Unformatted code is flagged.
	bad := goBlock{file: "docs/X.md", line: 1, code: "package main\n\nfunc main()   {}\n"}
	if p := checkGoBlock(bad); len(p) != 1 || !strings.Contains(p[0], "gofmt") {
		t.Fatalf("unformatted snippet not flagged: %v", p)
	}
}

// TestRunAgainstRepo runs the full check (links + snippet compile) against
// this repository's actual documentation — the same invocation CI uses.
func TestRunAgainstRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles doc snippets; skipped in -short")
	}
	if problems := run("../.."); len(problems) != 0 {
		t.Fatalf("repo docs fail docscheck:\n%s", strings.Join(problems, "\n"))
	}
}
