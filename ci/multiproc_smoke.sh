#!/usr/bin/env bash
# Multi-process smoke test for the TCP rank backend: build steinersvc and
# rankd, start a coordinator with 4 real rankd worker processes on
# localhost, solve a set of queries over the wire, and require the answers
# to be byte-identical (solver-output fields) to an in-process steinersvc
# serving the same graph — plus nonzero transport counters in /stats,
# proving the queries actually crossed TCP.
#
# Run from the repo root: ./ci/multiproc_smoke.sh
set -euo pipefail

DATASET="${DATASET:-LVJ}"
SCALE="${SCALE:-0.02}"
# Delegate threshold low enough that the scaled-down graph has hubs: the
# superstep broadcast outbox only engages on delegate partitions, and the
# smoke asserts nonzero batched broadcasts below.
DELEGATES="${DELEGATES:-8}"
RANKS=4
WORKERS=4
COORD=127.0.0.1:7611
TCP_HTTP=127.0.0.1:8711
INPROC_HTTP=127.0.0.1:8712
QUERIES=("1,2,3" "5,9,13,21" "0,7" "2,4,8,16,32")

workdir=$(mktemp -d)
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building"
go build -o "$workdir/steinersvc" ./cmd/steinersvc
go build -o "$workdir/rankd" ./cmd/rankd

echo "== starting tcp coordinator + $WORKERS rankd workers"
"$workdir/steinersvc" -dataset "$DATASET" -scale "$SCALE" -ranks $RANKS \
  -backend tcp -workers $WORKERS -rank-listen "$COORD" \
  -delegates "$DELEGATES" \
  -addr "$TCP_HTTP" -cache 0 -jobs 0 >"$workdir/tcp.log" 2>&1 &
pids+=($!)
for i in $(seq 1 $WORKERS); do
  "$workdir/rankd" -coordinator "$COORD" -retry 30s >"$workdir/rankd$i.log" 2>&1 &
  pids+=($!)
done

echo "== starting inproc reference"
"$workdir/steinersvc" -dataset "$DATASET" -scale "$SCALE" -ranks $RANKS \
  -delegates "$DELEGATES" \
  -addr "$INPROC_HTTP" -cache 0 -jobs 0 >"$workdir/inproc.log" 2>&1 &
pids+=($!)

wait_http() {
  local base=$1 name=$2
  for _ in $(seq 1 120); do
    if curl -fsS "http://$base/info" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.5
  done
  echo "FAIL: $name never answered /info" >&2
  tail -n 40 "$workdir"/*.log >&2 || true
  exit 1
}
wait_http "$INPROC_HTTP" "inproc steinersvc"
wait_http "$TCP_HTTP" "tcp steinersvc (coordinator + workers)"

backend=$(curl -fsS "http://$TCP_HTTP/info" | jq -r .backend)
if [ "$backend" != "tcp" ]; then
  echo "FAIL: coordinator /info reports backend=$backend, want tcp" >&2
  exit 1
fi

echo "== solving ${#QUERIES[@]} queries on both backends"
for seeds in "${QUERIES[@]}"; do
  # Compare only solver output: seeds, edges, total, steinerVertices.
  # Phase timings legitimately differ between backends.
  tcp_out=$(curl -fsS "http://$TCP_HTTP/solve?seeds=$seeds" |
    jq -S '{seeds, edges, total, steinerVertices}')
  inproc_out=$(curl -fsS "http://$INPROC_HTTP/solve?seeds=$seeds" |
    jq -S '{seeds, edges, total, steinerVertices}')
  if [ "$tcp_out" != "$inproc_out" ]; then
    echo "FAIL: seeds=$seeds differ between backends" >&2
    diff <(echo "$inproc_out") <(echo "$tcp_out") >&2 || true
    exit 1
  fi
  echo "   seeds=$seeds OK ($(echo "$tcp_out" | jq -r .total) total distance)"
done

echo "== solving one forest and one prize query on both backends"
# Mode queries go over POST /v1/solve; the TCP session negotiated wire v3,
# so forest/prize specs cross the wire as SolveSpec frames. Compare the
# full mode output: group subtrees, skipped set, penalties, objective.
MODE_QUERIES=(
  '{"mode":"forest","groups":[[1,2,3],[5,9],[20,21]]}'
  '{"mode":"prize","seeds":[0,7,32],"penalties":[4,100000,100000]}'
)
for body in "${MODE_QUERIES[@]}"; do
  mode=$(echo "$body" | jq -r .mode)
  tcp_out=$(curl -fsS -d "$body" "http://$TCP_HTTP/v1/solve" |
    jq -S '{seeds, edges, total, steinerVertices, mode, groups, groupEdges, skipped, paidPenalty, objective}')
  inproc_out=$(curl -fsS -d "$body" "http://$INPROC_HTTP/v1/solve" |
    jq -S '{seeds, edges, total, steinerVertices, mode, groups, groupEdges, skipped, paidPenalty, objective}')
  if [ "$tcp_out" != "$inproc_out" ]; then
    echo "FAIL: $mode query differs between backends" >&2
    diff <(echo "$inproc_out") <(echo "$tcp_out") >&2 || true
    exit 1
  fi
  echo "   mode=$mode OK (objective $(echo "$tcp_out" | jq -r .objective))"
done

echo "== checking transport counters"
stats=$(curl -fsS "http://$TCP_HTTP/stats")
bytes_out=$(echo "$stats" | jq -r .transport.bytesOut)
frames_out=$(echo "$stats" | jq -r .transport.framesOut)
if [ "$bytes_out" -le 0 ] || [ "$frames_out" -le 0 ]; then
  echo "FAIL: tcp backend reports no wire traffic: $stats" >&2
  exit 1
fi
batched=$(echo "$stats" | jq -r .broadcasts.batched)
if [ "$batched" -le 0 ]; then
  echo "FAIL: tcp backend reports no superstep-batched delegate broadcasts: $stats" >&2
  exit 1
fi
inproc_bytes=$(curl -fsS "http://$INPROC_HTTP/stats" | jq -r .transport.bytesOut)
if [ "$inproc_bytes" != "0" ]; then
  echo "FAIL: inproc backend reports wire traffic ($inproc_bytes bytes)" >&2
  exit 1
fi
echo "   ${#QUERIES[@]} queries moved $frames_out frames / $bytes_out bytes over TCP"
echo "   delegate outbox batched $batched broadcasts across the fleet"

echo "== checking fragment-merge MST counters"
# The v4 TCP session resolves -mst auto to the fragment merge; every tree
# and forest query above ran it, so rounds and payload must be nonzero.
mst_mode=$(echo "$stats" | jq -r .mst.mode)
frag_rounds=$(echo "$stats" | jq -r .mst.fragmentRounds)
frag_bytes=$(echo "$stats" | jq -r .mst.crossTableBytes)
if [ "$mst_mode" != "fragment" ]; then
  echo "FAIL: tcp auto resolved mst mode to $mst_mode, want fragment" >&2
  exit 1
fi
if [ "$frag_rounds" -le 0 ] || [ "$frag_bytes" -le 0 ]; then
  echo "FAIL: fragment merge reports rounds=$frag_rounds crossTableBytes=$frag_bytes" >&2
  exit 1
fi
echo "   fragment merge: $frag_rounds rounds, $frag_bytes cross-table bytes"

echo "== starting -mst replicated fleet for the wire-byte comparison"
REPL_COORD=127.0.0.1:7612
REPL_HTTP=127.0.0.1:8713
"$workdir/steinersvc" -dataset "$DATASET" -scale "$SCALE" -ranks $RANKS \
  -backend tcp -workers $WORKERS -rank-listen "$REPL_COORD" \
  -delegates "$DELEGATES" -mst replicated \
  -addr "$REPL_HTTP" -cache 0 -jobs 0 >"$workdir/repl.log" 2>&1 &
pids+=($!)
for i in $(seq 1 $WORKERS); do
  "$workdir/rankd" -coordinator "$REPL_COORD" -retry 30s >"$workdir/repl_rankd$i.log" 2>&1 &
  pids+=($!)
done
wait_http "$REPL_HTTP" "replicated tcp steinersvc"
repl_mode=$(curl -fsS "http://$REPL_HTTP/stats" | jq -r .mst.mode)
if [ "$repl_mode" != "replicated" ]; then
  echo "FAIL: -mst replicated fleet reports mode=$repl_mode" >&2
  exit 1
fi

# One high-terminal-count query (3/4 of the graph, deterministic seed
# selection) on each fleet: identical trees required, and the fragment
# merge must move strictly fewer phase 3-4 wire bytes than the replicated
# gather-everywhere path.
verts=$(curl -fsS "http://$TCP_HTTP/info" | jq -r .vertices)
K=$((verts * 3 / 4))
BODY="{\"k\":$K,\"rngSeed\":7}"
frag_before=$(curl -fsS "http://$TCP_HTTP/stats" | jq -r .mst.crossTableBytes)
frag_out=$(curl -fsS -d "$BODY" "http://$TCP_HTTP/solve" |
  jq -S '{seeds, edges, total, steinerVertices}')
frag_delta=$(($(curl -fsS "http://$TCP_HTTP/stats" | jq -r .mst.crossTableBytes) - frag_before))
repl_before=$(curl -fsS "http://$REPL_HTTP/stats" | jq -r .mst.crossTableBytes)
repl_out=$(curl -fsS -d "$BODY" "http://$REPL_HTTP/solve" |
  jq -S '{seeds, edges, total, steinerVertices}')
repl_delta=$(($(curl -fsS "http://$REPL_HTTP/stats" | jq -r .mst.crossTableBytes) - repl_before))
if [ "$frag_out" != "$repl_out" ]; then
  echo "FAIL: k=$K query differs between fragment and replicated fleets" >&2
  diff <(echo "$repl_out") <(echo "$frag_out") >&2 || true
  exit 1
fi
if [ "$frag_delta" -le 0 ] || [ "$repl_delta" -le 0 ]; then
  echo "FAIL: k=$K cross-table deltas: fragment=$frag_delta replicated=$repl_delta" >&2
  exit 1
fi
if [ "$frag_delta" -ge "$repl_delta" ]; then
  echo "FAIL: fragment moved $frag_delta cross-table bytes at k=$K, replicated $repl_delta - no reduction" >&2
  exit 1
fi
echo "   k=$K cross-table bytes: fragment=$frag_delta replicated=$repl_delta"

echo "== starting -frontier parallel fleet (bucket queue, wire v6 counters)"
# Parallel Δ-bucket draining end to end: each rankd resolves the shipped
# frontier request against its own host, drains whole buckets across its
# per-rank worker pool, and the counters ride home in the WorkerDone v6
# tail. Answers must stay byte-identical to the (priority-queue, serial)
# inproc reference — the drain mode must never leak into results.
FRONT_COORD=127.0.0.1:7614
FRONT_HTTP=127.0.0.1:8715
"$workdir/steinersvc" -dataset "$DATASET" -scale "$SCALE" -ranks $RANKS \
  -backend tcp -workers $WORKERS -rank-listen "$FRONT_COORD" \
  -delegates "$DELEGATES" -queue bucket -frontier parallel -frontier-workers 8 \
  -addr "$FRONT_HTTP" -cache 0 -jobs 0 >"$workdir/frontier.log" 2>&1 &
pids+=($!)
for i in $(seq 1 $WORKERS); do
  "$workdir/rankd" -coordinator "$FRONT_COORD" -retry 30s >"$workdir/front_rankd$i.log" 2>&1 &
  pids+=($!)
done
wait_http "$FRONT_HTTP" "parallel-frontier tcp steinersvc"
for seeds in "${QUERIES[@]}"; do
  front_out=$(curl -fsS "http://$FRONT_HTTP/solve?seeds=$seeds" |
    jq -S '{seeds, edges, total, steinerVertices}')
  inproc_out=$(curl -fsS "http://$INPROC_HTTP/solve?seeds=$seeds" |
    jq -S '{seeds, edges, total, steinerVertices}')
  if [ "$front_out" != "$inproc_out" ]; then
    echo "FAIL: seeds=$seeds differ between parallel-frontier fleet and inproc" >&2
    diff <(echo "$inproc_out") <(echo "$front_out") >&2 || true
    exit 1
  fi
done
frontier=$(curl -fsS "http://$FRONT_HTTP/stats" | jq -S .frontier)
front_mode=$(echo "$frontier" | jq -r .mode)
front_drains=$(echo "$frontier" | jq -r .bucketsDrained)
front_workers=$(echo "$frontier" | jq -r .workers)
if [ "$front_mode" != "parallel" ]; then
  echo "FAIL: frontier fleet reports mode=$front_mode, want parallel" >&2
  exit 1
fi
if [ "$front_drains" -le 0 ] || [ "$front_workers" -le 0 ]; then
  echo "FAIL: frontier fleet never drained a bucket in parallel: $frontier" >&2
  exit 1
fi
echo "   ${#QUERIES[@]} queries byte-identical; $front_drains buckets drained on $front_workers workers/rank"

echo "== starting recovering fleet for the kill/respawn check"
# Fault-tolerance end to end: a 4-worker fleet where one rankd is doomed
# (FAULTPOINTS=solve.phase3:exit kills its process at solver phase 3), the
# coordinator runs -recover with a -respawn-cmd that starts one replacement,
# and the survivors run -rejoin. The query that kills the worker must still
# answer — byte-identical to the inproc reference — after the coordinator
# heals the session and requeues it.
CHAOS_COORD=127.0.0.1:7613
CHAOS_HTTP=127.0.0.1:8714
cat >"$workdir/respawn.sh" <<EOF
#!/bin/sh
# Started by the coordinator on each detected fault; only the first
# invocation spawns (one worker died, one replacement is needed).
if [ -e "$workdir/respawned" ]; then exit 0; fi
touch "$workdir/respawned"
"$workdir/rankd" -coordinator "$CHAOS_COORD" -rejoin 30s \
  >"$workdir/respawn_rankd.log" 2>&1 &
echo \$! >"$workdir/respawn_rankd.pid"
EOF
chmod +x "$workdir/respawn.sh"
"$workdir/steinersvc" -dataset "$DATASET" -scale "$SCALE" -ranks $RANKS \
  -backend tcp -workers $WORKERS -rank-listen "$CHAOS_COORD" \
  -delegates "$DELEGATES" \
  -recover -rejoin-wait 30s -respawn-cmd "$workdir/respawn.sh" \
  -addr "$CHAOS_HTTP" -cache 0 -jobs 0 >"$workdir/chaos.log" 2>&1 &
pids+=($!)
for i in $(seq 1 $((WORKERS - 1))); do
  "$workdir/rankd" -coordinator "$CHAOS_COORD" -retry 30s -rejoin 30s \
    >"$workdir/chaos_rankd$i.log" 2>&1 &
  pids+=($!)
done
FAULTPOINTS=solve.phase3:exit "$workdir/rankd" -coordinator "$CHAOS_COORD" \
  -retry 30s >"$workdir/doomed_rankd.log" 2>&1 &
doomed_pid=$!
pids+=($doomed_pid)
wait_http "$CHAOS_HTTP" "recovering tcp steinersvc"

echo "== killing one rankd mid-solve (FAULTPOINTS=solve.phase3:exit)"
SEEDS="5,9,13,21"
inproc_out=$(curl -fsS "http://$INPROC_HTTP/solve?seeds=$SEEDS" |
  jq -S '{seeds, edges, total, steinerVertices}')
chaos_out=$(curl -fsS --max-time 120 "http://$CHAOS_HTTP/solve?seeds=$SEEDS" |
  jq -S '{seeds, edges, total, steinerVertices}')
if [ "$chaos_out" != "$inproc_out" ]; then
  echo "FAIL: recovered solve differs from inproc reference" >&2
  diff <(echo "$inproc_out") <(echo "$chaos_out") >&2 || true
  exit 1
fi
rc=0
wait "$doomed_pid" || rc=$?
if [ "$rc" -ne 3 ]; then
  echo "FAIL: doomed rankd exited $rc, want faultpoint exit code 3" >&2
  tail -n 20 "$workdir/doomed_rankd.log" >&2 || true
  exit 1
fi
if [ ! -e "$workdir/respawned" ]; then
  echo "FAIL: coordinator never ran -respawn-cmd" >&2
  exit 1
fi
if [ -s "$workdir/respawn_rankd.pid" ]; then
  pids+=("$(cat "$workdir/respawn_rankd.pid")")
fi
echo "   worker died at phase 3 (exit 3), replacement respawned, answer byte-identical"

echo "== checking fault accounting and the healed fleet"
faults=$(curl -fsS "http://$CHAOS_HTTP/stats" | jq -S .faults)
detected=$(echo "$faults" | jq -r .detected)
heals=$(echo "$faults" | jq -r .heals)
rejoins=$(echo "$faults" | jq -r .rejoins)
retried=$(echo "$faults" | jq -r .retriedSolves)
if [ "$detected" -lt 1 ] || [ "$heals" -lt 1 ] || [ "$rejoins" -lt 1 ] || [ "$retried" -lt 1 ]; then
  echo "FAIL: recovery not accounted in /stats faults: $faults" >&2
  exit 1
fi
# The healed fleet must keep answering correctly.
healed_out=$(curl -fsS "http://$CHAOS_HTTP/solve?seeds=$SEEDS" |
  jq -S '{seeds, edges, total, steinerVertices}')
if [ "$healed_out" != "$inproc_out" ]; then
  echo "FAIL: healed fleet answers differently" >&2
  diff <(echo "$inproc_out") <(echo "$healed_out") >&2 || true
  exit 1
fi
echo "   faults: detected=$detected rejoins=$rejoins heals=$heals retriedSolves=$retried"

echo "PASS: tcp backend byte-identical to inproc across ${#QUERIES[@]} queries"
echo "PASS: parallel-frontier fleet byte-identical with nonzero bucket drains"
echo "PASS: one worker killed mid-solve, fleet healed, answer byte-identical"
