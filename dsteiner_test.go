package dsteiner_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dsteiner"
)

// buildDemoGraph returns the paper's Fig. 1 example graph (0-based IDs).
func buildDemoGraph() *dsteiner.Graph {
	b := dsteiner.NewBuilder(9)
	type e struct {
		u, v dsteiner.VID
		w    uint32
	}
	for _, ed := range []e{
		{0, 1, 16}, {0, 4, 2}, {4, 5, 4}, {1, 5, 2}, {1, 2, 20},
		{5, 6, 1}, {2, 6, 1}, {2, 3, 24}, {6, 7, 2}, {3, 7, 2}, {7, 8, 2}, {3, 8, 18},
	} {
		b.AddEdge(ed.u, ed.v, ed.w)
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func TestFacadeSolve(t *testing.T) {
	g := buildDemoGraph()
	seeds := []dsteiner.VID{0, 2, 3, 7, 8}
	res, err := dsteiner.Solve(g, seeds, dsteiner.Defaults(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := dsteiner.ValidateSteinerTree(g, seeds, res.Tree); err != nil {
		t.Fatal(err)
	}
	edges, optTotal, err := dsteiner.SolveExact(g, seeds, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) == 0 || res.TotalDistance < optTotal {
		t.Fatalf("exact %d vs approx %d inconsistent", optTotal, res.TotalDistance)
	}
	if float64(res.TotalDistance) > 2*float64(optTotal) {
		t.Fatalf("bound violated")
	}
}

func TestFacadeBaselines(t *testing.T) {
	g := buildDemoGraph()
	seeds := []dsteiner.VID{0, 3, 8}
	for name, solve := range map[string]func(*dsteiner.Graph, []dsteiner.VID) (dsteiner.BaselineTree, error){
		"kmb": dsteiner.SolveKMB, "mehlhorn": dsteiner.SolveMehlhorn, "www": dsteiner.SolveWWW,
	} {
		tr, err := solve(g, seeds)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := dsteiner.ValidateSteinerTree(g, seeds, tr.Edges); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestFacadeDatasetsAndSeeds(t *testing.T) {
	names := dsteiner.DatasetNames()
	if len(names) != 8 {
		t.Fatalf("datasets = %v", names)
	}
	cfg, err := dsteiner.Dataset("CTS")
	if err != nil {
		t.Fatal(err)
	}
	g := cfg.MustBuild()
	seeds, err := dsteiner.SelectSeeds(g, 5, dsteiner.SeedsBFSLevel, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 5 {
		t.Fatalf("seeds = %v", seeds)
	}
	res, err := dsteiner.Solve(g, seeds, dsteiner.Defaults(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tree) == 0 {
		t.Fatal("empty tree for 5 seeds")
	}
	if _, err := dsteiner.Dataset("bogus"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestFacadeGraphIO(t *testing.T) {
	g := buildDemoGraph()
	var buf bytes.Buffer
	if err := dsteiner.WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := dsteiner.ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("round trip mismatch")
	}
	// File round trip via LoadGraphFile.
	path := filepath.Join(t.TempDir(), "g.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dsteiner.WriteGraph(f, g); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g3, err := dsteiner.LoadGraphFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g3.NumArcs() != g.NumArcs() {
		t.Fatal("file round trip mismatch")
	}
}

func TestFacadeDOT(t *testing.T) {
	g := buildDemoGraph()
	seeds := []dsteiner.VID{0, 8}
	res, err := dsteiner.Solve(g, seeds, dsteiner.Defaults(1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	dsteiner.WriteDOT(&buf, res.Tree, seeds)
	if !strings.Contains(buf.String(), "graph steiner {") {
		t.Fatal("DOT output malformed")
	}
}

// ExampleSolve demonstrates the basic API on the paper's Fig. 1 graph.
func ExampleSolve() {
	b := dsteiner.NewBuilder(5)
	b.AddEdge(0, 1, 2)
	b.AddEdge(1, 2, 2)
	b.AddEdge(2, 3, 2)
	b.AddEdge(3, 4, 2)
	b.AddEdge(0, 4, 3)
	g, _ := b.Build()
	res, _ := dsteiner.Solve(g, []dsteiner.VID{0, 2, 4}, dsteiner.Defaults(2))
	fmt.Println("total distance:", res.TotalDistance)
	fmt.Println("tree edges:", len(res.Tree))
	// Output:
	// total distance: 7
	// tree edges: 3
}
