package faultpoint

import (
	"strings"
	"testing"
)

func TestUnarmedHitIsNoop(t *testing.T) {
	Reset()
	Hit("solve.phase1") // must not panic
}

func TestArmedPointFiresOnce(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	before := Injected()
	Arm("solve.phase2", ActPanic)

	fired := func() (p bool) {
		defer func() { p = recover() != nil }()
		Hit("solve.phase2")
		return false
	}
	if !fired() {
		t.Fatal("armed point did not panic")
	}
	if Injected() != before+1 {
		t.Fatalf("injected counter: got %d want %d", Injected(), before+1)
	}
	// Once-semantics: the point disarmed itself.
	if fired() {
		t.Fatal("point fired twice")
	}
	// Other points stay unarmed.
	Hit("solve.phase3")
}

func TestArmFromSpec(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := ArmFromSpec(""); err != nil {
		t.Fatalf("empty spec: %v", err)
	}
	if err := ArmFromSpec("solve.phase1:panic, worker.done:panic"); err != nil {
		t.Fatalf("valid spec: %v", err)
	}
	hits := 0
	for _, name := range []string{"solve.phase1", "worker.done"} {
		func() {
			defer func() {
				if r := recover(); r != nil {
					if !strings.Contains(r.(string), name) {
						t.Errorf("panic %v does not name point %s", r, name)
					}
					hits++
				}
			}()
			Hit(name)
		}()
	}
	if hits != 2 {
		t.Fatalf("armed 2 points, %d fired", hits)
	}

	if err := ArmFromSpec("nonsense"); err == nil {
		t.Fatal("spec without action accepted")
	}
	if err := ArmFromSpec("x:reboot"); err == nil {
		t.Fatal("unknown action accepted")
	}
}
