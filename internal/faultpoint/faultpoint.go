// Package faultpoint is the deterministic crash-injection hook compiled
// into the solver and rankd: named points on the solve path call Hit, and a
// test (or the FAULTPOINTS environment variable parsed by cmd/rankd) arms a
// point with an action — panic, to exercise the abort/rejoin path in
// process, or exit, to kill a real rankd mid-solve exactly where the chaos
// matrix wants it.
//
// The unarmed fast path is one atomic load, so the hooks cost nothing in
// production. Every armed point fires at most once (the first rank to reach
// it wins and the point disarms), which keeps injected faults from
// re-firing on a healed session.
//
// Points currently compiled in:
//
//	solve.phase1 … solve.phase6   start of each SPMD solver phase, per rank
//	worker.done                   a worker about to report WorkerDone
package faultpoint

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
)

// Action is what an armed point does when hit.
type Action uint8

const (
	// ActPanic panics the hitting goroutine. On a rank goroutine the panic
	// is recovered by the worker's solve wrapper and turns into a session
	// Abort — the in-process stand-in for a crashing worker.
	ActPanic Action = 1 + iota
	// ActExit terminates the whole process immediately (exit code 3), the
	// real hard-kill for multi-process chaos runs. Never arm it in-process.
	ActExit
)

var (
	mu       sync.Mutex
	points   map[string]Action
	armed    atomic.Int32 // count of armed points: the fast-path gate
	injected atomic.Int64
)

// Arm schedules action a at the named point. The point fires once — on the
// first Hit after arming — then disarms itself.
func Arm(name string, a Action) {
	mu.Lock()
	if points == nil {
		points = make(map[string]Action)
	}
	if _, ok := points[name]; !ok {
		armed.Add(1)
	}
	points[name] = a
	mu.Unlock()
}

// Reset disarms every point (test cleanup).
func Reset() {
	mu.Lock()
	armed.Add(-int32(len(points)))
	points = nil
	mu.Unlock()
}

// Injected counts the faults this process has fired, for the /stats faults
// block.
func Injected() int64 { return injected.Load() }

// Hit fires the named point if armed. The unarmed cost is one atomic load.
func Hit(name string) {
	if armed.Load() == 0 {
		return
	}
	mu.Lock()
	a, ok := points[name]
	if ok {
		delete(points, name)
		armed.Add(-1)
	}
	mu.Unlock()
	if !ok {
		return
	}
	injected.Add(1)
	if a == ActExit {
		fmt.Fprintf(os.Stderr, "faultpoint: injected exit at %s\n", name)
		os.Exit(3)
	}
	panic(fmt.Sprintf("faultpoint: injected crash at %s", name))
}

// ArmFromSpec arms points from a comma-separated "name:action" list, the
// FAULTPOINTS environment variable format (e.g. "solve.phase3:exit"). An
// empty spec arms nothing.
func ArmFromSpec(spec string) error {
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, actName, ok := strings.Cut(part, ":")
		if !ok || name == "" {
			return fmt.Errorf("faultpoint: bad spec %q (want name:panic or name:exit)", part)
		}
		switch actName {
		case "panic":
			Arm(name, ActPanic)
		case "exit":
			Arm(name, ActExit)
		default:
			return fmt.Errorf("faultpoint: unknown action %q in %q", actName, part)
		}
	}
	return nil
}
