// Package pq provides the queue substrate behind the runtime's message
// scheduling: a binary-heap priority queue, a ring-buffer FIFO, and a
// monotone bucket queue (Δ-stepping style). The paper's key optimization
// (§IV, §V-C) is draining each partition's visitor queue in
// distance-priority order instead of FIFO order; both disciplines are
// implemented here behind the same interface so the ablation in Fig. 5/6 is
// a one-flag switch.
package pq

// Queue is the common discipline-independent interface used by the runtime
// engine. Implementations are not safe for concurrent use; the engine owns
// one queue per rank.
type Queue[T any] interface {
	// Push inserts an item with the given priority key (lower = sooner).
	Push(item T, key uint64)
	// Pop removes the next item according to the discipline. ok is false
	// when the queue is empty.
	Pop() (item T, ok bool)
	// Len returns the number of queued items.
	Len() int
	// Reset empties the queue and rewinds discipline state (the bucket
	// cursor, FIFO ring indices) while keeping allocated capacity, so
	// one queue can serve many traversals without reallocation.
	Reset()
}

// Heap is a binary min-heap priority queue. Ties are broken by insertion
// order (FIFO among equal keys) so that behaviour is deterministic.
type Heap[T any] struct {
	keys  []uint64
	seqs  []uint64
	items []T
	seq   uint64
}

// NewHeap returns an empty priority queue with optional capacity hint.
func NewHeap[T any](capacity int) *Heap[T] {
	return &Heap[T]{
		keys:  make([]uint64, 0, capacity),
		seqs:  make([]uint64, 0, capacity),
		items: make([]T, 0, capacity),
	}
}

// Push inserts item with priority key.
func (h *Heap[T]) Push(item T, key uint64) {
	h.keys = append(h.keys, key)
	h.seqs = append(h.seqs, h.seq)
	h.items = append(h.items, item)
	h.seq++
	h.up(len(h.keys) - 1)
}

// Pop removes the minimum-key item.
func (h *Heap[T]) Pop() (T, bool) {
	var zero T
	n := len(h.keys)
	if n == 0 {
		return zero, false
	}
	top := h.items[0]
	last := n - 1
	h.keys[0], h.seqs[0], h.items[0] = h.keys[last], h.seqs[last], h.items[last]
	h.items[last] = zero // release reference
	h.keys, h.seqs, h.items = h.keys[:last], h.seqs[:last], h.items[:last]
	if last > 0 {
		h.down(0)
	}
	return top, true
}

// PeekKey returns the minimum key without removing it.
func (h *Heap[T]) PeekKey() (uint64, bool) {
	if len(h.keys) == 0 {
		return 0, false
	}
	return h.keys[0], true
}

// Len returns the number of queued items.
func (h *Heap[T]) Len() int { return len(h.keys) }

// Reset empties the heap, keeping the allocated arrays.
func (h *Heap[T]) Reset() {
	var zero T
	for i := range h.items {
		h.items[i] = zero // release references
	}
	h.keys, h.seqs, h.items = h.keys[:0], h.seqs[:0], h.items[:0]
	h.seq = 0
}

func (h *Heap[T]) less(i, j int) bool {
	if h.keys[i] != h.keys[j] {
		return h.keys[i] < h.keys[j]
	}
	return h.seqs[i] < h.seqs[j]
}

func (h *Heap[T]) swap(i, j int) {
	h.keys[i], h.keys[j] = h.keys[j], h.keys[i]
	h.seqs[i], h.seqs[j] = h.seqs[j], h.seqs[i]
	h.items[i], h.items[j] = h.items[j], h.items[i]
}

func (h *Heap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *Heap[T]) down(i int) {
	n := len(h.keys)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

// FIFO is a growable ring buffer implementing Queue with first-in-first-out
// discipline (priority keys are ignored). This is HavoqGT's default message
// queue, used as the baseline in the Fig. 5/6 ablation.
type FIFO[T any] struct {
	buf        []T
	head, size int
}

// NewFIFO returns an empty FIFO with optional capacity hint.
func NewFIFO[T any](capacity int) *FIFO[T] {
	if capacity < 4 {
		capacity = 4
	}
	return &FIFO[T]{buf: make([]T, capacity)}
}

// Push appends item; key is ignored.
func (q *FIFO[T]) Push(item T, _ uint64) {
	if q.size == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.size)%len(q.buf)] = item
	q.size++
}

// Pop removes the oldest item.
func (q *FIFO[T]) Pop() (T, bool) {
	var zero T
	if q.size == 0 {
		return zero, false
	}
	item := q.buf[q.head]
	q.buf[q.head] = zero
	q.head = (q.head + 1) % len(q.buf)
	q.size--
	return item, true
}

// Len returns the number of queued items.
func (q *FIFO[T]) Len() int { return q.size }

// Reset empties the ring, keeping the allocated buffer.
func (q *FIFO[T]) Reset() {
	var zero T
	for q.size > 0 {
		q.buf[q.head] = zero
		q.head = (q.head + 1) % len(q.buf)
		q.size--
	}
	q.head = 0
}

func (q *FIFO[T]) grow() {
	nbuf := make([]T, 2*len(q.buf))
	for i := 0; i < q.size; i++ {
		nbuf[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = nbuf
	q.head = 0
}

// drainTo appends every queued item to dst in FIFO order and empties the
// ring, keeping the allocated buffer.
func (q *FIFO[T]) drainTo(dst []T) []T {
	var zero T
	for q.size > 0 {
		dst = append(dst, q.buf[q.head])
		q.buf[q.head] = zero
		q.head = (q.head + 1) % len(q.buf)
		q.size--
	}
	q.head = 0
	return dst
}

// Bucket is a monotone bucket queue: items with keys in [iΔ, (i+1)Δ) share
// bucket i and are drained FIFO within a bucket. It approximates a priority
// queue with O(1) operations and is the discipline behind Δ-stepping SSSP
// (discussed as related work in §III). Keys smaller than the current bucket
// are tolerated (they land in the current bucket), so Bellman-Ford-style
// re-relaxations remain correct.
type Bucket[T any] struct {
	delta   uint64
	buckets map[uint64]*FIFO[T]
	cur     uint64
	size    int
}

// NewBucket returns a bucket queue with width delta (0 means delta 1).
func NewBucket[T any](delta uint64) *Bucket[T] {
	if delta == 0 {
		delta = 1
	}
	return &Bucket[T]{delta: delta, buckets: map[uint64]*FIFO[T]{}}
}

// Push inserts item into bucket key/delta (clamped to the current bucket).
func (b *Bucket[T]) Push(item T, key uint64) {
	idx := key / b.delta
	if idx < b.cur {
		idx = b.cur
	}
	q := b.buckets[idx]
	if q == nil {
		q = NewFIFO[T](8)
		b.buckets[idx] = q
	}
	q.Push(item, key)
	b.size++
}

// Pop removes an item from the lowest non-empty bucket. When the current
// bucket drains, the cursor jumps directly to the smallest non-empty bucket
// index (an O(#buckets) scan — buckets are few because only keys between
// the frontier and frontier+maxEdgeWeight are live in SSSP workloads).
func (b *Bucket[T]) Pop() (T, bool) {
	var zero T
	if b.size == 0 {
		return zero, false
	}
	q := b.buckets[b.cur]
	if q == nil || q.Len() == 0 {
		first := true
		for idx := range b.buckets {
			if first || idx < b.cur {
				b.cur = idx
				first = false
			}
		}
		q = b.buckets[b.cur]
	}
	item, _ := q.Pop()
	b.size--
	if q.Len() == 0 {
		delete(b.buckets, b.cur)
	}
	return item, true
}

// DrainBucket removes the entire current bucket — advancing the cursor to
// the smallest non-empty bucket first, exactly like Pop — and appends its
// items to dst in FIFO order, returning the extended slice. The drained
// items are precisely the prefix a sequence of Pop calls would yield before
// the cursor next moves, which is what makes them a Δ-stepping frontier:
// their keys share one [iΔ, (i+1)Δ) window, so their relaxations commute up
// to the per-vertex lex-min merge. An empty queue returns dst unchanged.
func (b *Bucket[T]) DrainBucket(dst []T) []T {
	if b.size == 0 {
		return dst
	}
	q := b.buckets[b.cur]
	if q == nil || q.Len() == 0 {
		first := true
		for idx := range b.buckets {
			if first || idx < b.cur {
				b.cur = idx
				first = false
			}
		}
		q = b.buckets[b.cur]
	}
	b.size -= q.Len()
	dst = q.drainTo(dst)
	delete(b.buckets, b.cur)
	return dst
}

// Len returns the number of queued items.
func (b *Bucket[T]) Len() int { return b.size }

// Reset empties the queue and rewinds the bucket cursor to zero so a fresh
// traversal's small keys open new low buckets instead of being clamped to
// the previous run's final bucket.
func (b *Bucket[T]) Reset() {
	clear(b.buckets)
	b.cur = 0
	b.size = 0
}

// Compile-time interface checks.
var (
	_ Queue[int] = (*Heap[int])(nil)
	_ Queue[int] = (*FIFO[int])(nil)
	_ Queue[int] = (*Bucket[int])(nil)
)
