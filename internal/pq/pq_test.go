package pq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestHeapOrdering(t *testing.T) {
	h := NewHeap[string](4)
	h.Push("c", 30)
	h.Push("a", 10)
	h.Push("b", 20)
	if h.Len() != 3 {
		t.Fatalf("Len = %d", h.Len())
	}
	if k, ok := h.PeekKey(); !ok || k != 10 {
		t.Fatalf("PeekKey = (%d,%v)", k, ok)
	}
	for _, want := range []string{"a", "b", "c"} {
		got, ok := h.Pop()
		if !ok || got != want {
			t.Fatalf("Pop = (%q,%v), want %q", got, ok, want)
		}
	}
	if _, ok := h.Pop(); ok {
		t.Fatal("Pop on empty heap returned ok")
	}
	if _, ok := h.PeekKey(); ok {
		t.Fatal("PeekKey on empty heap returned ok")
	}
}

func TestHeapStableAmongEqualKeys(t *testing.T) {
	h := NewHeap[int](0)
	for i := 0; i < 100; i++ {
		h.Push(i, 7)
	}
	for i := 0; i < 100; i++ {
		got, _ := h.Pop()
		if got != i {
			t.Fatalf("equal-key pop %d = %d, want insertion order", i, got)
		}
	}
}

func TestHeapRandomAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := NewHeap[uint64](0)
	keys := make([]uint64, 1000)
	for i := range keys {
		keys[i] = uint64(rng.Intn(500))
		h.Push(keys[i], keys[i])
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for i, want := range keys {
		got, ok := h.Pop()
		if !ok || got != want {
			t.Fatalf("pop %d = (%d,%v), want %d", i, got, ok, want)
		}
	}
}

func TestHeapInterleavedPushPop(t *testing.T) {
	h := NewHeap[uint64](0)
	rng := rand.New(rand.NewSource(2))
	var lastPopped uint64
	inHeap := 0
	for step := 0; step < 5000; step++ {
		if inHeap == 0 || rng.Intn(2) == 0 {
			// Monotone-ish workload (like SSSP): push keys >= last popped.
			k := lastPopped + uint64(rng.Intn(100))
			h.Push(k, k)
			inHeap++
		} else {
			k, ok := h.Pop()
			if !ok {
				t.Fatal("unexpected empty")
			}
			if k < lastPopped {
				t.Fatalf("non-monotone pop: %d after %d", k, lastPopped)
			}
			lastPopped = k
			inHeap--
		}
	}
}

func TestFIFOOrdering(t *testing.T) {
	q := NewFIFO[int](2)
	for i := 0; i < 10; i++ {
		q.Push(i, uint64(100-i)) // keys must be ignored
	}
	if q.Len() != 10 {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := 0; i < 10; i++ {
		got, ok := q.Pop()
		if !ok || got != i {
			t.Fatalf("Pop = (%d,%v), want %d", got, ok, i)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty FIFO returned ok")
	}
}

func TestFIFOWraparound(t *testing.T) {
	q := NewFIFO[int](4)
	for round := 0; round < 50; round++ {
		for i := 0; i < 3; i++ {
			q.Push(round*3+i, 0)
		}
		for i := 0; i < 3; i++ {
			got, ok := q.Pop()
			if !ok || got != round*3+i {
				t.Fatalf("round %d: Pop = (%d,%v)", round, got, ok)
			}
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
}

func TestFIFOGrowPreservesOrder(t *testing.T) {
	q := NewFIFO[int](4)
	// Offset head, then force growth.
	q.Push(-1, 0)
	q.Push(-2, 0)
	q.Pop()
	q.Pop()
	for i := 0; i < 100; i++ {
		q.Push(i, 0)
	}
	for i := 0; i < 100; i++ {
		got, _ := q.Pop()
		if got != i {
			t.Fatalf("after grow: pop = %d, want %d", got, i)
		}
	}
}

func TestBucketOrdering(t *testing.T) {
	b := NewBucket[uint64](10)
	for _, k := range []uint64{95, 5, 42, 17, 3, 88} {
		b.Push(k, k)
	}
	var got []uint64
	for {
		v, ok := b.Pop()
		if !ok {
			break
		}
		got = append(got, v)
	}
	if len(got) != 6 {
		t.Fatalf("drained %d items", len(got))
	}
	// Bucket queue guarantees bucket-level ordering: item keys can be out
	// of order within a Δ=10 bucket but bucket indices must not decrease.
	for i := 1; i < len(got); i++ {
		if got[i]/10 < got[i-1]/10 {
			t.Fatalf("bucket order violated: %v", got)
		}
	}
}

func TestBucketLateArrivalsClampToCurrentBucket(t *testing.T) {
	b := NewBucket[uint64](10)
	b.Push(55, 55)
	if v, _ := b.Pop(); v != 55 {
		t.Fatal("wrong pop")
	}
	// Key 5 arrives after cursor passed bucket 0; it must still be popped.
	b.Push(5, 5)
	v, ok := b.Pop()
	if !ok || v != 5 {
		t.Fatalf("late arrival lost: (%d,%v)", v, ok)
	}
}

func TestBucketZeroDelta(t *testing.T) {
	b := NewBucket[int](0) // defaults to 1 => exact priority order
	for _, k := range []uint64{9, 1, 5} {
		b.Push(int(k), k)
	}
	want := []int{1, 5, 9}
	for _, w := range want {
		got, _ := b.Pop()
		if got != w {
			t.Fatalf("pop = %d, want %d", got, w)
		}
	}
	if _, ok := b.Pop(); ok {
		t.Fatal("empty bucket popped")
	}
}

func TestPropertyHeapSortsAnyInput(t *testing.T) {
	f := func(keys []uint64) bool {
		h := NewHeap[uint64](len(keys))
		for _, k := range keys {
			h.Push(k, k)
		}
		prev := uint64(0)
		for i := 0; i < len(keys); i++ {
			k, ok := h.Pop()
			if !ok || k < prev {
				return false
			}
			prev = k
		}
		_, ok := h.Pop()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyFIFOPreservesSequence(t *testing.T) {
	f := func(items []int) bool {
		q := NewFIFO[int](1)
		for _, it := range items {
			q.Push(it, 0)
		}
		for _, want := range items {
			got, ok := q.Pop()
			if !ok || got != want {
				return false
			}
		}
		return q.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyQueuesConserveItems(t *testing.T) {
	// All three disciplines must return exactly the multiset pushed.
	f := func(keys []uint64, pick uint8) bool {
		var q Queue[uint64]
		switch pick % 3 {
		case 0:
			q = NewHeap[uint64](0)
		case 1:
			q = NewFIFO[uint64](0)
		default:
			q = NewBucket[uint64](16)
		}
		want := map[uint64]int{}
		for _, k := range keys {
			q.Push(k, k)
			want[k]++
		}
		if q.Len() != len(keys) {
			return false
		}
		got := map[uint64]int{}
		for i := 0; i < len(keys); i++ {
			v, ok := q.Pop()
			if !ok {
				return false
			}
			got[v]++
		}
		if len(got) != len(want) {
			return false
		}
		for k, c := range want {
			if got[k] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHeapPushPop(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 4096)
	for i := range keys {
		keys[i] = uint64(rng.Intn(1 << 20))
	}
	b.ResetTimer()
	h := NewHeap[uint64](4096)
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		h.Push(k, k)
		if h.Len() > 2048 {
			h.Pop()
		}
	}
}

func BenchmarkFIFOPushPop(b *testing.B) {
	q := NewFIFO[uint64](4096)
	for i := 0; i < b.N; i++ {
		q.Push(uint64(i), 0)
		if q.Len() > 2048 {
			q.Pop()
		}
	}
}

// TestDrainBucketMatchesPop checks that DrainBucket removes exactly the
// items a sequence of Pops would yield before the cursor next advances,
// in the same order, against a mirrored Bucket driven by Pop.
func TestDrainBucketMatchesPop(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := NewBucket[uint64](16)
	b := NewBucket[uint64](16)
	push := func(v, k uint64) { a.Push(v, k); b.Push(v, k) }
	for i := 0; i < 500; i++ {
		k := uint64(rng.Intn(1 << 10))
		push(uint64(i), k)
	}
	var drained []uint64
	for a.Len() > 0 {
		drained = a.DrainBucket(drained[:0])
		if len(drained) == 0 {
			t.Fatal("DrainBucket returned nothing from a non-empty queue")
		}
		for i, want := range drained {
			got, ok := b.Pop()
			if !ok || got != want {
				t.Fatalf("drain item %d = %d, Pop = (%d,%v)", i, want, got, ok)
			}
		}
		if a.Len() != b.Len() {
			t.Fatalf("Len after drain = %d, Pop mirror = %d", a.Len(), b.Len())
		}
		// Interleave pushes that clamp into the current bucket, as local
		// sends during a drained-frontier visit do.
		if a.Len() > 0 && rng.Intn(2) == 0 {
			push(9999, 0) // below cursor: clamps to current bucket
		}
	}
	if _, ok := b.Pop(); ok {
		t.Fatal("mirror queue not empty after drains")
	}
}

func TestDrainBucketEmpty(t *testing.T) {
	b := NewBucket[int](4)
	if got := b.DrainBucket(nil); len(got) != 0 {
		t.Fatalf("DrainBucket on empty queue = %v", got)
	}
	b.Push(1, 3)
	b.Push(2, 2)
	got := b.DrainBucket(nil)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("DrainBucket = %v, want [1 2] (same Δ-window, FIFO)", got)
	}
	if b.Len() != 0 {
		t.Fatalf("Len = %d after full drain", b.Len())
	}
}
