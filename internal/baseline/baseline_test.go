package baseline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dsteiner/internal/exact"
	"dsteiner/internal/graph"
)

func e(u, v graph.VID, w uint32) graph.Edge { return graph.Edge{U: u, V: v, W: w} }

func paperFig1() *graph.Graph {
	return graph.MustFromEdges(9, []graph.Edge{
		e(0, 1, 16), e(0, 4, 2), e(4, 5, 4), e(1, 5, 2), e(1, 2, 20),
		e(5, 6, 1), e(2, 6, 1), e(2, 3, 24), e(6, 7, 2), e(3, 7, 2), e(7, 8, 2), e(3, 8, 18),
	})
}

func randomConnected(seed int64, n int, maxW uint32) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(graph.VID(rng.Intn(v)), graph.VID(v), uint32(rng.Intn(int(maxW)))+1)
	}
	for i := 0; i < 2*n; i++ {
		b.AddEdge(graph.VID(rng.Intn(n)), graph.VID(rng.Intn(n)), uint32(rng.Intn(int(maxW)))+1)
	}
	g, _ := b.Build()
	return g
}

func pickSeeds(rng *rand.Rand, n, k int) []graph.VID {
	seen := map[graph.VID]bool{}
	var out []graph.VID
	for len(out) < k {
		s := graph.VID(rng.Intn(n))
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

type algo struct {
	name string
	run  func(*graph.Graph, []graph.VID) (Tree, error)
}

var algos = []algo{
	{"KMB", KMB},
	{"Mehlhorn", Mehlhorn},
	{"WWW", WWW},
	{"Takahashi", Takahashi},
}

func TestAllAlgosOnPaperExample(t *testing.T) {
	g := paperFig1()
	seeds := []graph.VID{0, 2, 3, 7, 8}
	opt, err := exact.Solve(g, seeds, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range algos {
		tr, err := a.run(g, seeds)
		if err != nil {
			t.Fatalf("%s: %v", a.name, err)
		}
		if err := graph.ValidateSteinerTree(g, seeds, tr.Edges); err != nil {
			t.Fatalf("%s: invalid tree: %v", a.name, err)
		}
		if tr.Total < opt.Total || float64(tr.Total) > 2*float64(opt.Total) {
			t.Fatalf("%s: total %d outside [opt, 2*opt] = [%d, %d]",
				a.name, tr.Total, opt.Total, 2*opt.Total)
		}
	}
}

func TestSingleAndDuplicateSeeds(t *testing.T) {
	g := paperFig1()
	for _, a := range algos {
		tr, err := a.run(g, []graph.VID{3})
		if err != nil || len(tr.Edges) != 0 {
			t.Errorf("%s single seed: %v %v", a.name, tr, err)
		}
		tr, err = a.run(g, []graph.VID{0, 7, 0, 7})
		if err != nil {
			t.Errorf("%s duplicate seeds: %v", a.name, err)
		}
		if err := graph.ValidateSteinerTree(g, []graph.VID{0, 7}, tr.Edges); err != nil {
			t.Errorf("%s duplicate seeds tree invalid: %v", a.name, err)
		}
		if _, err := a.run(g, nil); err == nil {
			t.Errorf("%s accepted empty seeds", a.name)
		}
	}
}

func TestDisconnectedSeedsRejected(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 3, 1)
	g, _ := b.Build()
	for _, a := range algos {
		if _, err := a.run(g, []graph.VID{0, 2}); err == nil {
			t.Errorf("%s accepted disconnected seeds", a.name)
		}
	}
}

func TestTwoSeedsGiveShortestPath(t *testing.T) {
	g := randomConnected(3, 150, 20)
	opt, err := exact.Solve(g, []graph.VID{0, 149}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range algos {
		tr, err := a.run(g, []graph.VID{0, 149})
		if err != nil {
			t.Fatalf("%s: %v", a.name, err)
		}
		if tr.Total != opt.Total {
			t.Errorf("%s: |S|=2 total %d != shortest path %d", a.name, tr.Total, opt.Total)
		}
	}
}

func TestPropertyBoundsAndValidity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 15 + rng.Intn(60)
		g := randomConnected(seed, n, 10)
		seeds := pickSeeds(rng, n, 2+rng.Intn(5))
		opt, err := exact.Solve(g, seeds, 0)
		if err != nil {
			return false
		}
		for _, a := range algos {
			tr, err := a.run(g, seeds)
			if err != nil {
				return false
			}
			if graph.ValidateSteinerTree(g, seeds, tr.Edges) != nil {
				return false
			}
			if tr.Total < opt.Total || float64(tr.Total) > 2*float64(opt.Total) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	g := randomConnected(9, 120, 15)
	rng := rand.New(rand.NewSource(10))
	seeds := pickSeeds(rng, 120, 6)
	for _, a := range algos {
		t1, err1 := a.run(g, seeds)
		t2, err2 := a.run(g, seeds)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v %v", a.name, err1, err2)
		}
		if t1.Total != t2.Total || len(t1.Edges) != len(t2.Edges) {
			t.Fatalf("%s nondeterministic", a.name)
		}
		for i := range t1.Edges {
			if t1.Edges[i] != t2.Edges[i] {
				t.Fatalf("%s tree differs at %d", a.name, i)
			}
		}
	}
}

func TestMehlhornAndKMBRelationship(t *testing.T) {
	// Mehlhorn's G'1 MST weight equals KMB's G1 MST weight (Mehlhorn's
	// theorem), so the final trees — both post-processed with MST+prune —
	// are usually close; both must respect the same bound. This is a
	// statistical smoke check rather than equality (pred tie-breaking
	// differs).
	for seed := int64(1); seed <= 8; seed++ {
		g := randomConnected(seed, 100, 8)
		rng := rand.New(rand.NewSource(seed))
		seeds := pickSeeds(rng, 100, 5)
		km, err := KMB(g, seeds)
		if err != nil {
			t.Fatal(err)
		}
		me, err := Mehlhorn(g, seeds)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(km.Total) / float64(me.Total)
		if ratio < 0.5 || ratio > 2.0 {
			t.Fatalf("seed %d: KMB %d vs Mehlhorn %d implausibly far", seed, km.Total, me.Total)
		}
	}
}
