// Package baseline implements the sequential algorithms the paper compares
// against in §V-G (Table VI/VII): the KMB algorithm of Kou, Markowsky and
// Berman [14] (Alg. 1 of the paper), Mehlhorn's Voronoi-cell algorithm [17]
// and the Wu–Widmayer–Wong (WWW) generalized-MST algorithm [15]. All three
// guarantee D(G_S)/D_min <= 2(1-1/l). The Takahashi–Matsuyama shortest-path
// heuristic [13] (bound 2(1-1/|S|)) is included as well — it is the paper's
// §I reference point for the approximation-bound lineage.
package baseline

import (
	"fmt"
	"sort"

	"dsteiner/internal/graph"
	"dsteiner/internal/mst"
	"dsteiner/internal/sssp"
)

// Tree is the output of a sequential Steiner heuristic.
type Tree struct {
	Edges []graph.Edge
	Total graph.Dist
}

// finishTree canonicalizes, dedups, MSTs and prunes an edge multiset into a
// valid Steiner tree (KMB steps 4–5: MST of the expanded subgraph, then
// delete non-seed leaves). It is shared by all three baselines.
func finishTree(g *graph.Graph, seeds []graph.VID, edges []graph.Edge) (Tree, error) {
	// Dedup on canonical form.
	set := map[[2]graph.VID]graph.Edge{}
	for _, e := range edges {
		c := e.Canon()
		set[[2]graph.VID{c.U, c.V}] = c
	}
	uniq := make([]graph.Edge, 0, len(set))
	for _, e := range set {
		uniq = append(uniq, e)
	}
	sort.Slice(uniq, func(i, j int) bool {
		if uniq[i].U != uniq[j].U {
			return uniq[i].U < uniq[j].U
		}
		return uniq[i].V < uniq[j].V
	})
	// Relabel vertices densely for the MST run.
	idx := map[graph.VID]int32{}
	var verts []graph.VID
	id := func(v graph.VID) int32 {
		if i, ok := idx[v]; ok {
			return i
		}
		i := int32(len(verts))
		idx[v] = i
		verts = append(verts, v)
		return i
	}
	wedges := make([]mst.WEdge, len(uniq))
	for i, e := range uniq {
		wedges[i] = mst.WEdge{U: id(e.U), V: id(e.V), W: graph.Dist(e.W)}
	}
	forest := mst.Kruskal(len(verts), wedges)
	treeEdges := make([]graph.Edge, 0, len(forest.Edges))
	for _, we := range forest.Edges {
		u, v := verts[we.U], verts[we.V]
		w, _ := g.HasEdge(u, v)
		treeEdges = append(treeEdges, graph.Edge{U: u, V: v, W: w}.Canon())
	}
	pruned := graph.PruneNonSeedLeaves(treeEdges, seeds)
	sort.Slice(pruned, func(i, j int) bool {
		if pruned[i].U != pruned[j].U {
			return pruned[i].U < pruned[j].U
		}
		return pruned[i].V < pruned[j].V
	})
	t := Tree{Edges: pruned, Total: graph.TotalWeight(pruned)}
	if err := graph.ValidateSteinerTree(g, seeds, pruned); err != nil {
		return Tree{}, fmt.Errorf("baseline: %w", err)
	}
	return t, nil
}

// dedupSeeds sorts and deduplicates the seed set.
func dedupSeeds(seeds []graph.VID) []graph.VID {
	out := append([]graph.VID(nil), seeds...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 0
	for i, s := range out {
		if i == 0 || s != out[i-1] {
			out[w] = s
			w++
		}
	}
	return out[:w]
}

// KMB runs Kou–Markowsky–Berman (the paper's Alg. 1): complete distance
// graph G₁ by |S| Dijkstra sweeps, MST G₂, path expansion G₃, MST G₄, leaf
// pruning G₅. O(|S|·(|E| + |V| log |V|)) with heap Dijkstra.
func KMB(g *graph.Graph, seeds []graph.VID) (Tree, error) {
	seeds = dedupSeeds(seeds)
	if len(seeds) == 0 {
		return Tree{}, fmt.Errorf("baseline: empty seed set")
	}
	if len(seeds) == 1 {
		return Tree{}, nil
	}
	// Step 1: G₁ via APSP among seeds.
	dist, preds := sssp.APSPAmongSeeds(g, seeds)
	var wedges []mst.WEdge
	for i := 0; i < len(seeds); i++ {
		for j := i + 1; j < len(seeds); j++ {
			if dist[i][j] >= graph.InfDist {
				return Tree{}, fmt.Errorf("baseline: seeds %d and %d disconnected", seeds[i], seeds[j])
			}
			wedges = append(wedges, mst.WEdge{U: int32(i), V: int32(j), W: dist[i][j]})
		}
	}
	// Step 2: MST G₂ of G₁.
	g2 := mst.Kruskal(len(seeds), wedges)
	// Step 3: G₃ — replace each G₂ edge by a shortest path in G.
	var expanded []graph.Edge
	for _, we := range g2.Edges {
		// Walk predecessors of the sweep rooted at seeds[we.U] from
		// seeds[we.V] back to the root.
		root, target := seeds[we.U], seeds[we.V]
		pred := preds[we.U]
		for v := target; v != root; {
			p := pred[v]
			w, ok := g.HasEdge(p, v)
			if !ok {
				return Tree{}, fmt.Errorf("baseline: broken predecessor chain at %d", v)
			}
			expanded = append(expanded, graph.Edge{U: p, V: v, W: w})
			v = p
		}
	}
	// Steps 4–5: MST of G₃ and leaf pruning.
	return finishTree(g, seeds, expanded)
}

// voronoiDistanceGraph builds Mehlhorn's G'₁ from a converged multi-source
// state: for every cell pair (s, t), the minimum of d1(s,u)+d(u,v)+d1(v,t)
// over cross-cell edges (u, v), with the bridging edge retained for path
// expansion. Ties break on (D, u, v), matching the distributed solver.
type bridgeEdge struct {
	D    graph.Dist
	U, V graph.VID
}

func voronoiDistanceGraph(g *graph.Graph, st *sssp.Result) map[[2]graph.VID]bridgeEdge {
	table := map[[2]graph.VID]bridgeEdge{}
	for u32 := 0; u32 < g.NumVertices(); u32++ {
		u := graph.VID(u32)
		su := st.Src[u]
		if su == graph.NilVID {
			continue
		}
		ts, ws := g.Adj(u)
		for i, v := range ts {
			if u >= v {
				continue
			}
			sv := st.Src[v]
			if sv == graph.NilVID || sv == su {
				continue
			}
			s, t := su, sv
			if s > t {
				s, t = t, s
			}
			cand := bridgeEdge{D: st.Dist[u] + graph.Dist(ws[i]) + st.Dist[v], U: u, V: v}
			key := [2]graph.VID{s, t}
			cur, ok := table[key]
			if !ok || cand.D < cur.D ||
				(cand.D == cur.D && (cand.U < cur.U || (cand.U == cur.U && cand.V < cur.V))) {
				table[key] = cand
			}
		}
	}
	return table
}

// Mehlhorn runs Mehlhorn's 2-approximation [17]: Voronoi cells by one
// multi-source Dijkstra, distance graph G'₁ from cross-cell edges, MST,
// path expansion, final MST + pruning. O(|E| + |V| log |V|) plus the small
// MST.
func Mehlhorn(g *graph.Graph, seeds []graph.VID) (Tree, error) {
	seeds = dedupSeeds(seeds)
	if len(seeds) == 0 {
		return Tree{}, fmt.Errorf("baseline: empty seed set")
	}
	if len(seeds) == 1 {
		return Tree{}, nil
	}
	st := sssp.MultiSource(g, seeds)
	table := voronoiDistanceGraph(g, st)
	seedIdx := map[graph.VID]int32{}
	for i, s := range seeds {
		seedIdx[s] = int32(i)
	}
	keys := make([][2]graph.VID, 0, len(table))
	for k := range table {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	wedges := make([]mst.WEdge, len(keys))
	for i, k := range keys {
		wedges[i] = mst.WEdge{U: seedIdx[k[0]], V: seedIdx[k[1]], W: table[k].D}
	}
	g2 := mst.Prim(len(seeds), wedges)
	if len(g2.Edges) < len(seeds)-1 {
		return Tree{}, fmt.Errorf("baseline: seeds span multiple components")
	}
	var expanded []graph.Edge
	appendPath := func(from graph.VID) {
		for v := from; v != st.Src[v]; {
			p := st.Pred[v]
			w, _ := g.HasEdge(p, v)
			expanded = append(expanded, graph.Edge{U: p, V: v, W: w})
			v = p
		}
	}
	for _, we := range g2.Edges {
		s, t := seeds[we.U], seeds[we.V]
		key := [2]graph.VID{s, t}
		if s > t {
			key = [2]graph.VID{t, s}
		}
		br := table[key]
		w, _ := g.HasEdge(br.U, br.V)
		expanded = append(expanded, graph.Edge{U: br.U, V: br.V, W: w})
		appendPath(br.U)
		appendPath(br.V)
	}
	return finishTree(g, seeds, expanded)
}

// WWW runs the Wu–Widmayer–Wong generalized-MST heuristic [15]: shortest
// path wavefronts grow from all terminals simultaneously; bridge events
// between different component fronts are processed in increasing total path
// length, Kruskal-style, until all terminals merge. Same bound, one pass,
// runtime essentially independent of |S|.
func WWW(g *graph.Graph, seeds []graph.VID) (Tree, error) {
	seeds = dedupSeeds(seeds)
	if len(seeds) == 0 {
		return Tree{}, fmt.Errorf("baseline: empty seed set")
	}
	if len(seeds) == 1 {
		return Tree{}, nil
	}
	st := sssp.MultiSource(g, seeds)
	seedIdx := map[graph.VID]int32{}
	for i, s := range seeds {
		seedIdx[s] = int32(i)
	}
	// Bridge events: every cross-cell edge with its total path length.
	type event struct {
		d    graph.Dist
		u, v graph.VID
	}
	var events []event
	for u32 := 0; u32 < g.NumVertices(); u32++ {
		u := graph.VID(u32)
		if st.Src[u] == graph.NilVID {
			continue
		}
		ts, ws := g.Adj(u)
		for i, v := range ts {
			if u >= v || st.Src[v] == graph.NilVID || st.Src[v] == st.Src[u] {
				continue
			}
			events = append(events, event{d: st.Dist[u] + graph.Dist(ws[i]) + st.Dist[v], u: u, v: v})
		}
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].d != events[j].d {
			return events[i].d < events[j].d
		}
		if events[i].u != events[j].u {
			return events[i].u < events[j].u
		}
		return events[i].v < events[j].v
	})
	uf := mst.NewUnionFind(len(seeds))
	var expanded []graph.Edge
	appendPath := func(from graph.VID) {
		for v := from; v != st.Src[v]; {
			p := st.Pred[v]
			w, _ := g.HasEdge(p, v)
			expanded = append(expanded, graph.Edge{U: p, V: v, W: w})
			v = p
		}
	}
	merges := 0
	for _, ev := range events {
		if merges == len(seeds)-1 {
			break
		}
		cu, cv := seedIdx[st.Src[ev.u]], seedIdx[st.Src[ev.v]]
		if !uf.Union(cu, cv) {
			continue
		}
		merges++
		w, _ := g.HasEdge(ev.u, ev.v)
		expanded = append(expanded, graph.Edge{U: ev.u, V: ev.v, W: w})
		appendPath(ev.u)
		appendPath(ev.v)
	}
	if merges < len(seeds)-1 {
		return Tree{}, fmt.Errorf("baseline: seeds span multiple components")
	}
	return finishTree(g, seeds, expanded)
}
