package baseline

import (
	"fmt"

	"dsteiner/internal/graph"
	"dsteiner/internal/pq"
)

// Takahashi runs the Takahashi–Matsuyama shortest-path heuristic [13]: the
// tree starts as one seed; each round, a Dijkstra from the current tree
// (multi-source over all tree vertices) finds the closest not-yet-connected
// seed and the connecting shortest path joins the tree. Approximation bound
// 2(1-1/|S|). O(|S| * (|E| + |V| log |V|)).
func Takahashi(g *graph.Graph, seedSet []graph.VID) (Tree, error) {
	seedSet = dedupSeeds(seedSet)
	if len(seedSet) == 0 {
		return Tree{}, fmt.Errorf("baseline: empty seed set")
	}
	if len(seedSet) == 1 {
		return Tree{}, nil
	}
	n := g.NumVertices()
	inTree := make([]bool, n)
	pending := make(map[graph.VID]bool, len(seedSet)-1)
	for _, s := range seedSet[1:] {
		pending[s] = true
	}
	inTree[seedSet[0]] = true
	delete(pending, seedSet[0])
	var edges []graph.Edge

	dist := make([]graph.Dist, n)
	pred := make([]graph.VID, n)
	type qitem struct {
		v graph.VID
		d graph.Dist
	}
	for len(pending) > 0 {
		// Multi-source Dijkstra from every tree vertex.
		for i := range dist {
			dist[i] = graph.InfDist
			pred[i] = graph.NilVID
		}
		h := pq.NewHeap[qitem](64)
		for v := 0; v < n; v++ {
			if inTree[graph.VID(v)] {
				dist[v] = 0
				h.Push(qitem{v: graph.VID(v), d: 0}, 0)
			}
		}
		var hit graph.VID = graph.NilVID
		for {
			it, ok := h.Pop()
			if !ok {
				break
			}
			if it.d > dist[it.v] {
				continue
			}
			if pending[it.v] {
				hit = it.v
				break
			}
			ts, ws := g.Adj(it.v)
			for i, u := range ts {
				nd := it.d + graph.Dist(ws[i])
				if nd < dist[u] {
					dist[u] = nd
					pred[u] = it.v
					h.Push(qitem{v: u, d: nd}, uint64(nd))
				}
			}
		}
		if hit == graph.NilVID {
			return Tree{}, fmt.Errorf("baseline: seeds span multiple components")
		}
		// Graft the connecting path.
		for v := hit; pred[v] != graph.NilVID; v = pred[v] {
			p := pred[v]
			w, _ := g.HasEdge(p, v)
			edges = append(edges, graph.Edge{U: p, V: v, W: w})
			inTree[v] = true
		}
		inTree[hit] = true
		delete(pending, hit)
	}
	return finishTree(g, seedSet, edges)
}
