package partition

import (
	"fmt"

	"dsteiner/internal/graph"
)

// ShardPlan is the blueprint for cutting a graph into per-rank shards: each
// rank's owned-vertex set (in increasing order, exactly the vertices
// OwnedVertices yields) plus the global delegate list whose adjacency is
// striped across all ranks. The plan is the partition made concrete — it is
// what a multi-process backend would exchange at session setup so every
// process can build its graph.Shard locally without seeing the full CSR.
type ShardPlan struct {
	part      Partition
	owned     [][]graph.VID
	delegates []graph.VID
}

// NewShardPlan materializes the partition's owned-vertex sets and delegate
// list for an n-vertex graph. It fails if the partition does not cover
// exactly the graph's vertex set (the per-kind invariants are property
// tested; this check catches mismatched graph/partition pairings).
func NewShardPlan(part Partition, g *graph.Graph) (*ShardPlan, error) {
	n := g.NumVertices()
	if part.NumVertices() != n {
		return nil, fmt.Errorf("partition: plan for %d-vertex partition on %d-vertex graph",
			part.NumVertices(), n)
	}
	p := &ShardPlan{part: part, owned: make([][]graph.VID, part.NumRanks())}
	total := 0
	for rank := range p.owned {
		list := []graph.VID{}
		part.OwnedVertices(rank, func(v graph.VID) { list = append(list, v) })
		p.owned[rank] = list
		total += len(list)
	}
	if total != n {
		return nil, fmt.Errorf("partition: owned sets cover %d of %d vertices", total, n)
	}
	for v := 0; v < n; v++ {
		if part.IsDelegate(graph.VID(v)) {
			p.delegates = append(p.delegates, graph.VID(v))
		}
	}
	return p, nil
}

// NumRanks returns the partition's rank count P.
func (p *ShardPlan) NumRanks() int { return len(p.owned) }

// Partition returns the partition the plan was built from.
func (p *ShardPlan) Partition() Partition { return p.part }

// Owned returns rank's vertices in increasing order. The slice is shared:
// read-only.
func (p *ShardPlan) Owned(rank int) []graph.VID { return p.owned[rank] }

// Delegates returns the sorted delegate vertex list (shared: read-only).
func (p *ShardPlan) Delegates() []graph.VID { return p.delegates }

// NumDelegates returns the number of delegate vertices.
func (p *ShardPlan) NumDelegates() int { return len(p.delegates) }

// Mirrored returns the delegates rank does not own, in increasing order —
// the vertices whose control state the rank mirrors rather than holds
// authoritatively. Together with Owned(rank) this sizes the rank's
// control-state slab (voronoi.NewStateSlab): owned rows plus one mirror
// row per non-owned delegate.
func (p *ShardPlan) Mirrored(rank int) []graph.VID {
	var out []graph.VID
	for _, d := range p.delegates {
		if p.part.Owner(d) != rank {
			out = append(out, d)
		}
	}
	return out
}

// StateRows reports the control-state slab dimensions for rank: the number
// of owned-vertex rows and of mirrored-delegate rows. The sum is the row
// count of the rank's voronoi.StateSlab.
func (p *ShardPlan) StateRows(rank int) (owned, mirrored int) {
	return len(p.owned[rank]), len(p.Mirrored(rank))
}

// BuildShards cuts one graph.Shard per rank out of g according to the plan.
func (p *ShardPlan) BuildShards(g *graph.Graph) []*graph.Shard {
	shards := make([]*graph.Shard, p.NumRanks())
	for rank := range shards {
		shards[rank] = graph.NewShard(g, rank, p.NumRanks(), p.owned[rank], p.delegates)
	}
	return shards
}
