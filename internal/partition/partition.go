// Package partition maps vertices to ranks. The paper's scale-out design
// (§IV) partitions the data graph so that "partitions have approximately
// equal share of vertices; each partition is assigned to an MPI process",
// and relies on HavoqGT's vertex-cut handling of high-degree vertices
// ("vertex delegates") for load balance on scale-free graphs. This package
// provides 1-D block and hashed partitions plus a delegate wrapper marking
// hub vertices whose adjacency is striped across all ranks. ShardPlan makes
// a partition concrete: it materializes each rank's owned-vertex set and the
// delegate list, and cuts the per-rank graph.Shard slabs from the global
// CSR.
package partition

import (
	"fmt"

	"dsteiner/internal/graph"
)

// Partition assigns every vertex of an n-vertex graph to one of P ranks.
type Partition interface {
	// Owner returns the rank owning v's state.
	Owner(v graph.VID) int
	// NumRanks returns P.
	NumRanks() int
	// NumVertices returns n.
	NumVertices() int
	// OwnedVertices calls fn for every vertex owned by rank, in
	// increasing vertex order.
	OwnedVertices(rank int, fn func(v graph.VID))
	// IsDelegate reports whether v is a high-degree delegate whose
	// adjacency is striped across all ranks (false unless wrapped with
	// WithDelegates).
	IsDelegate(v graph.VID) bool
}

// Block divides vertices into P contiguous ranges of near-equal size.
type Block struct {
	n, p int
}

// NewBlock returns a block partition of n vertices over p ranks.
func NewBlock(n, p int) (*Block, error) {
	if n <= 0 || p <= 0 {
		return nil, fmt.Errorf("partition: invalid n=%d p=%d", n, p)
	}
	return &Block{n: n, p: p}, nil
}

// Owner returns the rank owning v.
func (b *Block) Owner(v graph.VID) int {
	// Ranges differ by at most one vertex: the first n%p ranks hold
	// ceil(n/p) vertices, the rest floor(n/p).
	q, r := b.n/b.p, b.n%b.p
	big := int64(q+1) * int64(r) // vertices in the first r ranks
	if int64(v) < big {
		return int(int64(v) / int64(q+1))
	}
	if q == 0 {
		return b.p - 1
	}
	return r + int((int64(v)-big)/int64(q))
}

// NumRanks returns P.
func (b *Block) NumRanks() int { return b.p }

// NumVertices returns n.
func (b *Block) NumVertices() int { return b.n }

// Range returns rank's vertex range [lo, hi).
func (b *Block) Range(rank int) (lo, hi graph.VID) {
	q, r := b.n/b.p, b.n%b.p
	if rank < r {
		lo = graph.VID(rank * (q + 1))
		hi = lo + graph.VID(q+1)
		return lo, hi
	}
	lo = graph.VID(r*(q+1) + (rank-r)*q)
	hi = lo + graph.VID(q)
	return lo, hi
}

// OwnedVertices iterates rank's contiguous range.
func (b *Block) OwnedVertices(rank int, fn func(v graph.VID)) {
	lo, hi := b.Range(rank)
	for v := lo; v < hi; v++ {
		fn(v)
	}
}

// IsDelegate always reports false for a plain block partition.
func (b *Block) IsDelegate(graph.VID) bool { return false }

// Hash assigns vertex v to rank v mod P (cyclic), spreading consecutive IDs
// across ranks. This breaks up locality hot-spots when vertex IDs correlate
// with degree (common in web crawls).
type Hash struct {
	n, p int
}

// NewHash returns a cyclic partition of n vertices over p ranks.
func NewHash(n, p int) (*Hash, error) {
	if n <= 0 || p <= 0 {
		return nil, fmt.Errorf("partition: invalid n=%d p=%d", n, p)
	}
	return &Hash{n: n, p: p}, nil
}

// Owner returns v mod P.
func (h *Hash) Owner(v graph.VID) int { return int(int64(v) % int64(h.p)) }

// NumRanks returns P.
func (h *Hash) NumRanks() int { return h.p }

// NumVertices returns n.
func (h *Hash) NumVertices() int { return h.n }

// OwnedVertices iterates rank, rank+P, rank+2P, ...
func (h *Hash) OwnedVertices(rank int, fn func(v graph.VID)) {
	for v := rank; v < h.n; v += h.p {
		fn(graph.VID(v))
	}
}

// IsDelegate always reports false for a plain hash partition.
func (h *Hash) IsDelegate(graph.VID) bool { return false }

// ArcBlock divides vertices into P contiguous ranges with approximately
// equal ARC counts rather than vertex counts. On skewed (scale-free)
// graphs, equal-vertex ranges leave the hub-heavy range doing most of the
// relaxation work; balancing by arcs equalizes the per-rank message load.
type ArcBlock struct {
	bounds []graph.VID // len p+1; rank r owns [bounds[r], bounds[r+1])
	n, p   int
}

// NewArcBlock builds an arc-balanced contiguous partition of g.
func NewArcBlock(g *graph.Graph, p int) (*ArcBlock, error) {
	n := g.NumVertices()
	if n <= 0 || p <= 0 {
		return nil, fmt.Errorf("partition: invalid n=%d p=%d", n, p)
	}
	b := &ArcBlock{bounds: make([]graph.VID, p+1), n: n, p: p}
	total := g.NumArcs()
	target := total / int64(p)
	rank := 1
	var acc int64
	for v := 0; v < n && rank < p; v++ {
		acc += int64(g.Degree(graph.VID(v)))
		if acc >= target*int64(rank) {
			b.bounds[rank] = graph.VID(v + 1)
			rank++
		}
	}
	for ; rank < p; rank++ {
		b.bounds[rank] = graph.VID(n)
	}
	b.bounds[p] = graph.VID(n)
	return b, nil
}

// NewArcBlockFromBounds rebuilds an arc-balanced partition from its range
// bounds (len P+1, bounds[0] == 0, bounds[P] == n, non-decreasing) — the
// wire form a multi-process worker receives, since recomputing the bounds
// would need the full graph's degree sequence.
func NewArcBlockFromBounds(bounds []graph.VID) (*ArcBlock, error) {
	p := len(bounds) - 1
	if p <= 0 {
		return nil, fmt.Errorf("partition: arc-block bounds need at least 2 entries, got %d", len(bounds))
	}
	if bounds[0] != 0 {
		return nil, fmt.Errorf("partition: arc-block bounds must start at 0, got %d", bounds[0])
	}
	for i := 1; i <= p; i++ {
		if bounds[i] < bounds[i-1] {
			return nil, fmt.Errorf("partition: arc-block bounds decrease at %d", i)
		}
	}
	n := int(bounds[p])
	if n <= 0 {
		return nil, fmt.Errorf("partition: arc-block bounds cover no vertices")
	}
	return &ArcBlock{bounds: append([]graph.VID(nil), bounds...), n: n, p: p}, nil
}

// Bounds returns the partition's range bounds (len P+1; read-only), the
// compact wire form of an arc-balanced partition.
func (b *ArcBlock) Bounds() []graph.VID { return b.bounds }

// Owner returns the rank whose range contains v (binary search).
func (b *ArcBlock) Owner(v graph.VID) int {
	lo, hi := 0, b.p-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if b.bounds[mid] <= v {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// NumRanks returns P.
func (b *ArcBlock) NumRanks() int { return b.p }

// NumVertices returns n.
func (b *ArcBlock) NumVertices() int { return b.n }

// Range returns rank's vertex range [lo, hi).
func (b *ArcBlock) Range(rank int) (lo, hi graph.VID) {
	return b.bounds[rank], b.bounds[rank+1]
}

// OwnedVertices iterates rank's contiguous range.
func (b *ArcBlock) OwnedVertices(rank int, fn func(v graph.VID)) {
	lo, hi := b.Range(rank)
	for v := lo; v < hi; v++ {
		fn(v)
	}
}

// IsDelegate always reports false for a plain arc-block partition.
func (b *ArcBlock) IsDelegate(graph.VID) bool { return false }

// Delegated wraps a base partition and marks vertices with degree at or
// above a threshold as delegates. The owner of a delegate still holds its
// state (the "controller" in HavoqGT terms), but algorithms broadcast
// delegate updates so each rank relaxes its stripe of the delegate's
// adjacency (arc index mod P).
type Delegated struct {
	Partition
	isDelegate []bool
	count      int
}

// WithDelegates marks every vertex of g whose degree is >= threshold as a
// delegate. threshold <= 0 disables delegation.
func WithDelegates(base Partition, g *graph.Graph, threshold int) *Delegated {
	d := &Delegated{Partition: base, isDelegate: make([]bool, g.NumVertices())}
	if threshold > 0 {
		for v := 0; v < g.NumVertices(); v++ {
			if g.Degree(graph.VID(v)) >= threshold {
				d.isDelegate[v] = true
				d.count++
			}
		}
	}
	return d
}

// WithDelegateList marks exactly the listed vertices of an n-vertex base
// partition as delegates — the wire-side counterpart of WithDelegates for
// workers that receive the delegate list in their session handshake
// instead of recomputing it from graph degrees.
func WithDelegateList(base Partition, n int, delegates []graph.VID) *Delegated {
	d := &Delegated{Partition: base, isDelegate: make([]bool, n)}
	for _, v := range delegates {
		if !d.isDelegate[v] {
			d.isDelegate[v] = true
			d.count++
		}
	}
	return d
}

// IsDelegate reports whether v was marked as a high-degree delegate.
func (d *Delegated) IsDelegate(v graph.VID) bool { return d.isDelegate[v] }

// NumDelegates returns the number of marked vertices.
func (d *Delegated) NumDelegates() int { return d.count }

// Compile-time interface checks.
var (
	_ Partition = (*Block)(nil)
	_ Partition = (*Hash)(nil)
	_ Partition = (*ArcBlock)(nil)
	_ Partition = (*Delegated)(nil)
)
