package partition

import (
	"testing"
	"testing/quick"

	"dsteiner/internal/graph"
)

func TestBlockCoversAllVerticesExactlyOnce(t *testing.T) {
	for _, tc := range []struct{ n, p int }{
		{10, 3}, {10, 1}, {7, 7}, {100, 8}, {5, 8}, {1, 1},
	} {
		b, err := NewBlock(tc.n, tc.p)
		if err != nil {
			t.Fatalf("NewBlock(%d,%d): %v", tc.n, tc.p, err)
		}
		seen := make([]int, tc.n)
		for rank := 0; rank < tc.p; rank++ {
			b.OwnedVertices(rank, func(v graph.VID) {
				seen[v]++
				if b.Owner(v) != rank {
					t.Fatalf("n=%d p=%d: Owner(%d)=%d but iterated on rank %d",
						tc.n, tc.p, v, b.Owner(v), rank)
				}
			})
		}
		for v, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d p=%d: vertex %d covered %d times", tc.n, tc.p, v, c)
			}
		}
	}
}

func TestBlockBalance(t *testing.T) {
	b, _ := NewBlock(103, 8)
	minSz, maxSz := 1<<30, 0
	for rank := 0; rank < 8; rank++ {
		lo, hi := b.Range(rank)
		sz := int(hi - lo)
		if sz < minSz {
			minSz = sz
		}
		if sz > maxSz {
			maxSz = sz
		}
	}
	if maxSz-minSz > 1 {
		t.Fatalf("block imbalance: min=%d max=%d", minSz, maxSz)
	}
}

func TestHashCoversAllVerticesExactlyOnce(t *testing.T) {
	h, err := NewHash(57, 4)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]int, 57)
	for rank := 0; rank < 4; rank++ {
		h.OwnedVertices(rank, func(v graph.VID) {
			seen[v]++
			if h.Owner(v) != rank {
				t.Fatalf("Owner(%d)=%d on rank %d", v, h.Owner(v), rank)
			}
		})
	}
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("vertex %d covered %d times", v, c)
		}
	}
}

func TestInvalidConfigs(t *testing.T) {
	if _, err := NewBlock(0, 4); err == nil {
		t.Error("NewBlock(0,4) accepted")
	}
	if _, err := NewBlock(4, 0); err == nil {
		t.Error("NewBlock(4,0) accepted")
	}
	if _, err := NewHash(-1, 2); err == nil {
		t.Error("NewHash(-1,2) accepted")
	}
}

func TestPropertyBlockOwnerMatchesRange(t *testing.T) {
	f := func(nRaw, pRaw uint16, vRaw uint16) bool {
		n := int(nRaw%1000) + 1
		p := int(pRaw%16) + 1
		v := graph.VID(int(vRaw) % n)
		b, err := NewBlock(n, p)
		if err != nil {
			return false
		}
		rank := b.Owner(v)
		if rank < 0 || rank >= p {
			return false
		}
		lo, hi := b.Range(rank)
		return v >= lo && v < hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func skewedGraph(t *testing.T) *graph.Graph {
	t.Helper()
	// Vertex 0 is a hub with half of all arcs; the rest form a path.
	b := graph.NewBuilder(100)
	for v := graph.VID(1); v < 100; v++ {
		b.AddEdge(0, v, 1)
		if v > 1 {
			b.AddEdge(v-1, v, 1)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestArcBlockCoversAllVerticesExactlyOnce(t *testing.T) {
	g := skewedGraph(t)
	for _, p := range []int{1, 2, 4, 7} {
		ab, err := NewArcBlock(g, p)
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]int, g.NumVertices())
		for rank := 0; rank < p; rank++ {
			ab.OwnedVertices(rank, func(v graph.VID) {
				seen[v]++
				if ab.Owner(v) != rank {
					t.Fatalf("p=%d: Owner(%d)=%d, iterated on %d", p, v, ab.Owner(v), rank)
				}
			})
		}
		for v, c := range seen {
			if c != 1 {
				t.Fatalf("p=%d: vertex %d covered %d times", p, v, c)
			}
		}
	}
}

func TestArcBlockBalancesArcsNotVertices(t *testing.T) {
	g := skewedGraph(t)
	ab, err := NewArcBlock(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The hub (vertex 0, ~1/2 of arcs) must sit alone or nearly alone in
	// rank 0's range; a vertex-balanced block would put 25 vertices there.
	lo, hi := ab.Range(0)
	if lo != 0 {
		t.Fatalf("range 0 starts at %d", lo)
	}
	if int(hi-lo) > 10 {
		t.Fatalf("hub range holds %d vertices; arcs not balanced", hi-lo)
	}
	// Per-rank arc shares must be far more even than vertex shares.
	var arcShares []int64
	for rank := 0; rank < 4; rank++ {
		var arcs int64
		ab.OwnedVertices(rank, func(v graph.VID) { arcs += int64(g.Degree(v)) })
		arcShares = append(arcShares, arcs)
		if arcs == 0 {
			t.Fatalf("rank %d owns no arcs", rank)
		}
	}
	maxA, minA := arcShares[0], arcShares[0]
	for _, a := range arcShares {
		if a > maxA {
			maxA = a
		}
		if a < minA {
			minA = a
		}
	}
	if float64(maxA) > 2.5*float64(minA) {
		t.Fatalf("arc imbalance too high: %v", arcShares)
	}
}

func TestArcBlockInvalidConfigs(t *testing.T) {
	g := skewedGraph(t)
	if _, err := NewArcBlock(g, 0); err == nil {
		t.Error("p=0 accepted")
	}
}

func TestArcBlockMoreRanksThanVertices(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	g, _ := b.Build()
	ab, err := NewArcBlock(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for rank := 0; rank < 8; rank++ {
		ab.OwnedVertices(rank, func(v graph.VID) { seen++ })
	}
	if seen != 3 {
		t.Fatalf("covered %d vertices, want 3", seen)
	}
}

// TestPropertyAllKindsCoverEveryVertexExactlyOnce is the partition
// invariant behind the shard substrate: for every partition kind (and its
// delegate wrapper) over random n and P, each vertex is owned by exactly
// one rank, and the set OwnedVertices yields for a rank is exactly the set
// Owner maps to it, in increasing order. ShardPlan and the per-rank slabs
// are only correct if this holds.
func TestPropertyAllKindsCoverEveryVertexExactlyOnce(t *testing.T) {
	f := func(seed int64, nRaw, pRaw uint16, thrRaw uint8) bool {
		n := int(nRaw%500) + 1
		p := int(pRaw%12) + 1
		g := planTestGraph(seed, n)
		parts := map[string]Partition{}
		if blk, err := NewBlock(n, p); err == nil {
			parts["block"] = blk
		}
		if hsh, err := NewHash(n, p); err == nil {
			parts["hash"] = hsh
		}
		if arc, err := NewArcBlock(g, p); err == nil {
			parts["arcblock"] = arc
		}
		if len(parts) != 3 {
			return false
		}
		for name, base := range parts {
			parts[name+"+delegates"] = WithDelegates(base, g, int(thrRaw%16)+1)
		}
		for name, part := range parts {
			if part.NumRanks() != p || part.NumVertices() != n {
				t.Logf("%s: wrong dimensions", name)
				return false
			}
			covered := make([]int, n)
			for rank := 0; rank < p; rank++ {
				prev := graph.VID(-1)
				ok := true
				part.OwnedVertices(rank, func(v graph.VID) {
					if v <= prev || part.Owner(v) != rank {
						ok = false
					}
					prev = v
					covered[v]++
				})
				if !ok {
					t.Logf("%s n=%d p=%d rank=%d: OwnedVertices disagrees with Owner", name, n, p, rank)
					return false
				}
			}
			for v, c := range covered {
				if c != 1 {
					t.Logf("%s n=%d p=%d: vertex %d covered %d times", name, n, p, v, c)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDelegates(t *testing.T) {
	// Star: vertex 0 has degree 5, leaves degree 1.
	b := graph.NewBuilder(6)
	for v := graph.VID(1); v <= 5; v++ {
		b.AddEdge(0, v, 1)
	}
	g, _ := b.Build()
	base, _ := NewBlock(6, 2)
	d := WithDelegates(base, g, 5)
	if !d.IsDelegate(0) {
		t.Error("hub not marked as delegate")
	}
	for v := graph.VID(1); v <= 5; v++ {
		if d.IsDelegate(v) {
			t.Errorf("leaf %d marked as delegate", v)
		}
	}
	if d.NumDelegates() != 1 {
		t.Errorf("NumDelegates = %d, want 1", d.NumDelegates())
	}
	// Delegation disabled.
	d0 := WithDelegates(base, g, 0)
	if d0.NumDelegates() != 0 || d0.IsDelegate(0) {
		t.Error("threshold 0 should disable delegation")
	}
	// Base partition behaviour passes through.
	if d.Owner(3) != base.Owner(3) || d.NumRanks() != 2 {
		t.Error("delegated wrapper broke base partition")
	}
	// Plain partitions never report delegates.
	if base.IsDelegate(0) {
		t.Error("block partition reported a delegate")
	}
}
