package partition

import (
	"math/rand"
	"testing"

	"dsteiner/internal/graph"
)

func planTestGraph(seed int64, n int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(graph.VID(rng.Intn(v)), graph.VID(v), uint32(rng.Intn(20))+1)
	}
	for i := 0; i < 2*n; i++ {
		b.AddEdge(graph.VID(rng.Intn(n)), graph.VID(rng.Intn(n)), uint32(rng.Intn(20))+1)
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// allPartitions builds every partition kind (and a delegated wrapper of
// each) for g over p ranks.
func allPartitions(t *testing.T, g *graph.Graph, p, delegateThreshold int) map[string]Partition {
	t.Helper()
	n := g.NumVertices()
	blk, err := NewBlock(n, p)
	if err != nil {
		t.Fatal(err)
	}
	hsh, err := NewHash(n, p)
	if err != nil {
		t.Fatal(err)
	}
	arc, err := NewArcBlock(g, p)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]Partition{"block": blk, "hash": hsh, "arcblock": arc}
	for name, base := range out {
		out[name+"+delegates"] = WithDelegates(base, g, delegateThreshold)
	}
	return out
}

func TestShardPlanOwnedMatchesPartition(t *testing.T) {
	g := planTestGraph(5, 137)
	for _, p := range []int{1, 2, 3, 8, 137, 200} {
		if p > g.NumVertices() {
			continue // hash/block require p ranks but may own empty sets; arcblock handles it
		}
		for name, part := range allPartitions(t, g, p, 10) {
			plan, err := NewShardPlan(part, g)
			if err != nil {
				t.Fatalf("%s p=%d: %v", name, p, err)
			}
			if plan.NumRanks() != p || plan.Partition() != part {
				t.Fatalf("%s p=%d: plan metadata wrong", name, p)
			}
			covered := make([]int, g.NumVertices())
			for rank := 0; rank < p; rank++ {
				prev := graph.VID(-1)
				for _, v := range plan.Owned(rank) {
					if v <= prev {
						t.Fatalf("%s p=%d rank %d: owned list not increasing at %d", name, p, rank, v)
					}
					prev = v
					covered[v]++
					if part.Owner(v) != rank {
						t.Fatalf("%s p=%d: plan puts %d on rank %d, Owner says %d", name, p, v, rank, part.Owner(v))
					}
				}
			}
			for v, c := range covered {
				if c != 1 {
					t.Fatalf("%s p=%d: vertex %d covered %d times", name, p, v, c)
				}
			}
			// Delegate list must match IsDelegate exactly.
			want := 0
			for v := 0; v < g.NumVertices(); v++ {
				if part.IsDelegate(graph.VID(v)) {
					want++
				}
			}
			if plan.NumDelegates() != want {
				t.Fatalf("%s p=%d: plan has %d delegates, partition marks %d", name, p, plan.NumDelegates(), want)
			}
			for _, d := range plan.Delegates() {
				if !part.IsDelegate(d) {
					t.Fatalf("%s p=%d: plan delegate %d not marked by partition", name, p, d)
				}
			}
		}
	}
}

func TestShardPlanBuildShards(t *testing.T) {
	g := planTestGraph(6, 90)
	for name, part := range allPartitions(t, g, 4, 8) {
		plan, err := NewShardPlan(part, g)
		if err != nil {
			t.Fatal(err)
		}
		shards := plan.BuildShards(g)
		if len(shards) != 4 {
			t.Fatalf("%s: %d shards", name, len(shards))
		}
		var ownedTotal int
		var slabArcs int64
		for rank, s := range shards {
			if s.Rank() != rank || s.NumRanks() != 4 {
				t.Fatalf("%s: shard %d mis-ranked", name, rank)
			}
			ownedTotal += s.NumOwned()
			slabArcs += s.NumArcs()
			if s.NumDelegates() != plan.NumDelegates() {
				t.Fatalf("%s: shard %d has %d delegates, plan %d", name, rank, s.NumDelegates(), plan.NumDelegates())
			}
			if s.MemoryBytes() <= 0 {
				t.Fatalf("%s: shard %d reports %d bytes", name, rank, s.MemoryBytes())
			}
		}
		if ownedTotal != g.NumVertices() {
			t.Fatalf("%s: shards own %d vertices, graph has %d", name, ownedTotal, g.NumVertices())
		}
		if slabArcs != g.NumArcs() {
			t.Fatalf("%s: slabs hold %d arcs, graph has %d", name, slabArcs, g.NumArcs())
		}
	}
}

func TestShardPlanRejectsMismatchedGraph(t *testing.T) {
	g := planTestGraph(7, 50)
	part, err := NewBlock(49, 2) // wrong vertex count
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewShardPlan(part, g); err == nil {
		t.Fatal("mismatched partition accepted")
	}
}

// TestStateRowsAndMirrored pins the control-state slab sizing invariants:
// owned rows match the owned list, mirrored rows are exactly the delegates
// the rank does not own, and across all ranks every delegate is owned by
// exactly one rank and mirrored by the other P-1.
func TestStateRowsAndMirrored(t *testing.T) {
	g := planTestGraph(61, 137)
	for name, part := range allPartitions(t, g, 4, 6) {
		plan, err := NewShardPlan(part, g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		totalOwned, totalMirrored := 0, 0
		for rank := 0; rank < plan.NumRanks(); rank++ {
			owned, mirrored := plan.StateRows(rank)
			if owned != len(plan.Owned(rank)) {
				t.Fatalf("%s rank %d: StateRows owned %d != len(Owned) %d",
					name, rank, owned, len(plan.Owned(rank)))
			}
			mirrorList := plan.Mirrored(rank)
			if mirrored != len(mirrorList) {
				t.Fatalf("%s rank %d: StateRows mirrored %d != len(Mirrored) %d",
					name, rank, mirrored, len(mirrorList))
			}
			for _, d := range mirrorList {
				if !part.IsDelegate(d) {
					t.Fatalf("%s rank %d: mirrors non-delegate %d", name, rank, d)
				}
				if part.Owner(d) == rank {
					t.Fatalf("%s rank %d: mirrors its own delegate %d", name, rank, d)
				}
			}
			totalOwned += owned
			totalMirrored += mirrored
		}
		if totalOwned != g.NumVertices() {
			t.Fatalf("%s: owned rows cover %d of %d vertices", name, totalOwned, g.NumVertices())
		}
		if want := plan.NumDelegates() * (plan.NumRanks() - 1); totalMirrored != want {
			t.Fatalf("%s: %d mirror rows, want %d (each delegate mirrored P-1 times)",
				name, totalMirrored, want)
		}
	}
}
