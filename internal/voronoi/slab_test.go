package voronoi

import (
	"math/rand"
	"testing"

	"dsteiner/internal/graph"
	"dsteiner/internal/partition"
	rt "dsteiner/internal/runtime"
)

func TestStateSlabOwnedRowsSetGetReset(t *testing.T) {
	owned := []graph.VID{2, 5, 8, 11} // affine stride 3
	sl := NewStateSlab(0, owned, nil, nil)
	if sl.NumOwned() != 4 || sl.NumMirrored() != 0 {
		t.Fatalf("dims = %d owned, %d mirrored", sl.NumOwned(), sl.NumMirrored())
	}
	if sl.Reached(5) {
		t.Fatal("fresh slab reports reached")
	}
	if s, p, d := sl.Get(5); s != graph.NilVID || p != graph.NilVID || d != graph.InfDist {
		t.Fatalf("fresh entry = (%d,%d,%d)", s, p, d)
	}
	sl.Set(5, 2, 8, 42)
	if !sl.Reached(5) || sl.Src(5) != 2 || sl.Pred(5) != 8 || sl.Dist(5) != 42 {
		t.Fatalf("entry after Set = (%d,%d,%d)", sl.Src(5), sl.Pred(5), sl.Dist(5))
	}
	if !sl.MarkWalked(5) {
		t.Fatal("first MarkWalked reported already-walked")
	}
	if sl.MarkWalked(5) {
		t.Fatal("second MarkWalked reported new")
	}
	sl.Reset()
	if sl.Reached(5) {
		t.Fatal("entry survived Reset")
	}
	if !sl.MarkWalked(5) {
		t.Fatal("walk mark survived Reset")
	}
}

func TestStateSlabPanicsOnNonOwnedVertex(t *testing.T) {
	sl := NewStateSlab(0, []graph.VID{0, 1, 2}, nil, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("access to non-owned vertex did not panic")
		}
	}()
	sl.Get(7)
}

// TestStateSlabZeroOwnedVertices covers the degenerate rank of an
// over-partitioned graph (P > |V|) or an owner-less hash residue: a slab
// with no owned rows must still build, reset and account memory — and may
// still mirror delegates (a delegate-only slab).
func TestStateSlabZeroOwnedVertices(t *testing.T) {
	sl := NewStateSlab(3, nil, []graph.VID{4, 9}, nil)
	if sl.NumOwned() != 0 || sl.NumMirrored() != 2 {
		t.Fatalf("dims = %d owned, %d mirrored", sl.NumOwned(), sl.NumMirrored())
	}
	if sl.Owns(0) {
		t.Fatal("empty slab claims ownership")
	}
	if sl.MemoryBytes() <= 0 {
		t.Fatalf("delegate-only slab reports %d bytes", sl.MemoryBytes())
	}
	// The mirror stripe works without any owned rows.
	sl.ObserveDelegate(4, 1, 10)
	sl.ObserveDelegate(4, 0, 10) // same dist, smaller seed wins
	sl.ObserveDelegate(4, 2, 99) // worse offer ignored
	if src, dist, ok := sl.DelegateState(4); !ok || src != 0 || dist != 10 {
		t.Fatalf("mirror = (%d,%d,%v), want (0,10,true)", src, dist, ok)
	}
	if _, _, ok := sl.DelegateState(7); ok {
		t.Fatal("non-delegate reported a mirror")
	}
	sl.Reset()
	if src, dist, ok := sl.DelegateState(4); !ok || src != graph.NilVID || dist != graph.InfDist {
		t.Fatalf("mirror survived Reset: (%d,%d,%v)", src, dist, ok)
	}
}

// TestEngineStyleBuildSharesShardRowIndex checks BuildSlabs reuses the
// shard's vertex→row index, so adjacency row and state row coincide.
func TestBuildSlabsSharesShardRowIndex(t *testing.T) {
	g := randomConnected(51, 120, 20)
	base, _ := partition.NewHash(g.NumVertices(), 3)
	part := partition.WithDelegates(base, g, 8)
	plan, err := partition.NewShardPlan(part, g)
	if err != nil {
		t.Fatal(err)
	}
	shards := plan.BuildShards(g)
	slabs := BuildSlabs(plan, shards)
	for rank, sl := range slabs {
		if sl.rows != shards[rank].Rows() {
			t.Fatalf("rank %d slab built its own row index", rank)
		}
		if sl.NumOwned() != shards[rank].NumOwned() {
			t.Fatalf("rank %d: slab %d rows, shard %d owned", rank, sl.NumOwned(), shards[rank].NumOwned())
		}
		wantOwned, wantMirrored := plan.StateRows(rank)
		if sl.NumOwned() != wantOwned || sl.NumMirrored() != wantMirrored {
			t.Fatalf("rank %d: slab dims (%d,%d), plan StateRows (%d,%d)",
				rank, sl.NumOwned(), sl.NumMirrored(), wantOwned, wantMirrored)
		}
	}

	// EnsureSlabs on a sharded Comm must reuse the attached shards' indices
	// too, not rebuild them.
	c := rt.MustNew(rt.Config{Ranks: 3, Queue: rt.QueuePriority}, part)
	c.EnsureShards(g)
	ensured := EnsureSlabs(c, g)
	attached := c.Shards()
	for rank, sl := range ensured {
		if sl.rows != attached[rank].Rows() {
			t.Fatalf("rank %d: EnsureSlabs built its own row index", rank)
		}
	}
}

// TestDelegateMirrorsConvergeToOwnerState is the delegate-stripe
// correctness property: after the traversal reaches quiescence, every
// rank's local mirror of every delegate reports the same (src, dist) the
// delegate's owner holds — each rank can answer "which cell is this hub
// in?" without a remote read, the label locality CONGEST-style
// constructions rely on.
func TestDelegateMirrorsConvergeToOwnerState(t *testing.T) {
	// Star-heavy graph: hub 0 connected to everything plus a ring.
	n := 150
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, graph.VID(v), uint32(v%13)+1)
		b.AddEdge(graph.VID(v), graph.VID((v%(n-1))+1), uint32(v%7)+1)
	}
	g, _ := b.Build()
	seeds := []graph.VID{3, 70, 140}
	want := Sequential(g, seeds)

	for _, ranks := range []int{2, 5} {
		base, _ := partition.NewBlock(n, ranks)
		part := partition.WithDelegates(base, g, 40)
		if !part.IsDelegate(0) {
			t.Fatal("hub not delegated")
		}
		c := rt.MustNew(rt.Config{Ranks: ranks, Queue: rt.QueuePriority}, part)
		c.EnsureShards(g)
		slabs := EnsureSlabs(c, g)
		c.Run(func(r *rt.Rank) {
			RunRank(r, seeds)
		})
		for rank, sl := range slabs {
			for v := 0; v < n; v++ {
				if !part.IsDelegate(graph.VID(v)) {
					continue
				}
				src, dist, ok := sl.DelegateState(graph.VID(v))
				if !ok {
					t.Fatalf("ranks=%d rank=%d: delegate %d invisible", ranks, rank, v)
				}
				if src != want.Src(graph.VID(v)) || dist != want.Dist(graph.VID(v)) {
					t.Fatalf("ranks=%d rank=%d delegate %d: mirror (%d,%d), owner fixed point (%d,%d)",
						ranks, rank, v, src, dist, want.Src(graph.VID(v)), want.Dist(graph.VID(v)))
				}
			}
		}
	}
}

// TestSlabReuseMirrorsStayCorrect drives one slab set through repeated
// queries with delegates in play: epoch reuse must not leak stale mirror
// entries any more than stale owned entries.
func TestSlabReuseMirrorsStayCorrect(t *testing.T) {
	n := 100
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, graph.VID(v), uint32(v%11)+1)
		b.AddEdge(graph.VID(v), graph.VID((v%(n-1))+1), uint32(v%5)+1)
	}
	g, _ := b.Build()
	base, _ := partition.NewBlock(n, 3)
	part := partition.WithDelegates(base, g, 30)
	c := rt.MustNew(rt.Config{Ranks: 3, Queue: rt.QueuePriority}, part)
	c.EnsureShards(g)
	slabs := EnsureSlabs(c, g)
	rng := rand.New(rand.NewSource(99))
	for q := 0; q < 8; q++ {
		seeds := pickSeeds(rng, n, 2+q%4)
		want := Sequential(g, seeds)
		c.ResetStateSlabs()
		c.Run(func(r *rt.Rank) {
			RunRank(r, seeds)
		})
		for _, sl := range slabs {
			src, dist, ok := sl.DelegateState(0)
			if !ok || src != want.Src(0) || dist != want.Dist(0) {
				t.Fatalf("query %d: hub mirror (%d,%d,%v), want (%d,%d)",
					q, src, dist, ok, want.Src(0), want.Dist(0))
			}
		}
	}
}

func TestStateSlabMemoryBytes(t *testing.T) {
	sl := NewStateSlab(0, []graph.VID{0, 1, 2, 3}, []graph.VID{10, 11}, nil)
	// 4 owned rows * (4+4+8+8+8) + 2 mirror rows * (4+8+8+12), affine index.
	want := int64(4*(4+4+8+8+8) + 2*(4+8+8+12))
	if got := sl.MemoryBytes(); got != want {
		t.Fatalf("MemoryBytes = %d, want %d", got, want)
	}
}

// TestCollectMergesSlabs checks Collect rebuilds the global view from
// per-rank slabs, skipping stale epochs.
func TestCollectMergesSlabs(t *testing.T) {
	a := NewStateSlab(0, []graph.VID{0, 1}, nil, nil)
	b := NewStateSlab(1, []graph.VID{2, 3}, nil, nil)
	a.Set(0, 0, 0, 0)
	b.Set(3, 0, 1, 9)
	b.Reset()
	b.Set(2, 0, 0, 5) // 3's entry is now stale and must not surface
	st := Collect([]*StateSlab{a, b}, 4)
	if st.Src(0) != 0 || st.Dist(2) != 5 {
		t.Fatalf("collected entries wrong: src(0)=%d dist(2)=%d", st.Src(0), st.Dist(2))
	}
	if st.Reached(1) || st.Reached(3) {
		t.Fatal("stale or unset entries surfaced in the collected view")
	}
}

// TestSlabOfPanicsWithoutAttach pins the loud failure mode for running the
// slab-state path on a communicator that never attached control state.
func TestSlabOfPanicsWithoutAttach(t *testing.T) {
	part, _ := partition.NewBlock(10, 1)
	c := rt.MustNew(rt.Config{Ranks: 1}, part)
	defer func() {
		if recover() == nil {
			t.Fatal("SlabOf without attached slabs did not panic")
		}
	}()
	c.Run(func(r *rt.Rank) {
		SlabOf(r)
	})
}
