package voronoi

import (
	"fmt"

	"dsteiner/internal/graph"
	"dsteiner/internal/partition"
	rt "dsteiner/internal/runtime"
)

// Control is the per-vertex control-state API the phase-1..6 visitors read
// and write through. Two implementations exist: the shared State (one array
// indexed by global VID — the pre-slab reference, retained as the
// equivalence oracle behind core's Options.GlobalCSR) and the rank-local
// StateSlab (owned vertices only — the production path). Ownership
// discipline is identical for both: only v's owner rank may touch v's entry
// while a traversal is running, with remote entries reached through mailbox
// messages (the Voronoi relaxations of Alg. 4, the request/reply exchange
// of Alg. 5), never direct access.
type Control interface {
	// Reached reports whether v has a valid (current-epoch) entry.
	Reached(v graph.VID) bool
	// Src returns v's cell seed, or NilVID when unreached.
	Src(v graph.VID) graph.VID
	// Pred returns v's shortest-path predecessor, or NilVID when unreached.
	Pred(v graph.VID) graph.VID
	// Dist returns v's distance to its cell seed, or InfDist when unreached.
	Dist(v graph.VID) graph.Dist
	// Get returns the full entry with one staleness check.
	Get(v graph.VID) (src, pred graph.VID, dist graph.Dist)
	// Set installs v's entry, stamped with the current epoch.
	Set(v graph.VID, src, pred graph.VID, dist graph.Dist)
}

var (
	_ Control = (*State)(nil)
	_ Control = (*StateSlab)(nil)

	_ rt.StateSlab = (*StateSlab)(nil)
)

// StateSlab is one rank's local share of the Voronoi control state: the
// (src, pred, dist) entry of every vertex the rank owns, stored in compact
// rows addressed by the same affine VID→row mapping (graph.RowIndex) the
// rank's graph.Shard uses, so a vertex's adjacency and state live at the
// same local row. It replaces the rank's slice of the shared State array —
// the last shared-memory structure on the solver's hot path — mirroring how
// CONGEST-model Steiner constructions keep all per-vertex labels local to
// the owning node. After slabs, a rank's working set is exactly its shard
// (adjacency), its slab (control state) and its mailbox: the state a
// multi-process backend ships to each process.
//
// Alongside the owned rows the slab keeps two smaller regions:
//
//   - a delegate mirror stripe: the converging (src, dist) of every
//     high-degree delegate the rank does not own, fed by the same broadcast
//     relaxations that fan a delegate's adjacency across ranks
//     (ObserveDelegate). The solver's output never reads mirrors — they are
//     the local answer to "which cell is this hub in?" that a distributed
//     controller protocol needs, and they converge to the owner's values
//     (property-tested in slab_test.go);
//   - phase-6 walk marks (MarkWalked), the epoch-versioned "have I walked
//     this vertex's predecessor chain" bits of Alg. 6, previously a shared
//     O(|V|) bitmap in core.Engine.
//
// All regions are epoch-versioned like State: Reset invalidates everything
// in O(1), making slabs pool-able across the queries of a long-lived
// engine. Entries of non-owned vertices do not exist here — an access
// panics, because it means traversal routing is broken (like
// graph.Shard.Adj on a non-owned vertex).
type StateSlab struct {
	rank int
	rows *graph.RowIndex

	// Owned-vertex rows.
	src    []graph.VID
	pred   []graph.VID
	dist   []graph.Dist
	epoch  []uint64
	walked []uint64
	cur    uint64

	// Delegate mirror stripe (delegates this rank does not own).
	mirrorIdx   map[graph.VID]int32
	mirrorSrc   []graph.VID
	mirrorDist  []graph.Dist
	mirrorEpoch []uint64
}

// NewStateSlab builds rank's slab. owned must list the rank's vertices in
// strictly increasing order (exactly what partition.ShardPlan.Owned yields);
// mirrored lists the delegates the rank does not own (ShardPlan.Mirrored).
// rows, when non-nil, is a prebuilt index over owned (share the rank's
// graph.Shard.Rows() so both slabs address rows through one index).
func NewStateSlab(rank int, owned, mirrored []graph.VID, rows *graph.RowIndex) *StateSlab {
	if rows == nil {
		rows = graph.NewRowIndex(owned)
	}
	n := rows.Len()
	sl := &StateSlab{
		rank:   rank,
		rows:   rows,
		src:    make([]graph.VID, n),
		pred:   make([]graph.VID, n),
		dist:   make([]graph.Dist, n),
		epoch:  make([]uint64, n),
		walked: make([]uint64, n),
		cur:    1,
	}
	if len(mirrored) > 0 {
		sl.mirrorIdx = make(map[graph.VID]int32, len(mirrored))
		sl.mirrorSrc = make([]graph.VID, len(mirrored))
		sl.mirrorDist = make([]graph.Dist, len(mirrored))
		sl.mirrorEpoch = make([]uint64, len(mirrored))
		for i, d := range mirrored {
			sl.mirrorIdx[d] = int32(i)
		}
	}
	return sl
}

// BuildSlabs cuts one StateSlab per rank from the plan — the control-state
// counterpart of ShardPlan.BuildShards. shards, when non-nil, supplies the
// prebuilt per-rank row indices so state rows and adjacency rows share one
// mapping; pass nil to build standalone indices.
func BuildSlabs(plan *partition.ShardPlan, shards []*graph.Shard) []*StateSlab {
	slabs := make([]*StateSlab, plan.NumRanks())
	for rank := range slabs {
		var rows *graph.RowIndex
		if shards != nil {
			rows = shards[rank].Rows()
		}
		slabs[rank] = NewStateSlab(rank, plan.Owned(rank), plan.Mirrored(rank), rows)
	}
	return slabs
}

// AttachSlabs builds slabs from the plan and attaches them to c. Returns
// the slabs for callers that read converged state afterwards (Collect).
func AttachSlabs(c *rt.Comm, plan *partition.ShardPlan, shards []*graph.Shard) ([]*StateSlab, error) {
	slabs := BuildSlabs(plan, shards)
	generic := make([]rt.StateSlab, len(slabs))
	for i, sl := range slabs {
		generic[i] = sl
	}
	if err := c.AttachStateSlabs(generic); err != nil {
		return nil, err
	}
	return slabs, nil
}

// EnsureSlabs attaches freshly built slabs cut by c's partition if none are
// attached yet, and returns the attached slabs either way. Convenience for
// callers (tests, Compute) that build a Comm directly; core.Engine builds
// its own slabs next to its shards. Panics on inconsistency, like
// Comm.EnsureShards.
func EnsureSlabs(c *rt.Comm, g *graph.Graph) []*StateSlab {
	if c.StateAttached() {
		attached := c.StateSlabs()
		slabs := make([]*StateSlab, len(attached))
		for i, sl := range attached {
			slabs[i] = sl.(*StateSlab)
		}
		return slabs
	}
	plan, err := partition.NewShardPlan(c.Partition(), g)
	if err != nil {
		panic(err)
	}
	// Reuse the attached shards' row indices when present, so each rank's
	// adjacency and state share one vertex→row mapping.
	slabs, err := AttachSlabs(c, plan, c.Shards())
	if err != nil {
		panic(err)
	}
	return slabs
}

// SlabOf returns r's attached StateSlab. It panics when no slab (or a
// foreign slab type) is attached — the caller is running the slab-state
// path on a communicator that was never given control state, a wiring bug.
func SlabOf(r *rt.Rank) *StateSlab {
	sl, ok := r.StateSlab().(*StateSlab)
	if !ok {
		panic("voronoi: rank has no StateSlab; call Comm.AttachStateSlabs (voronoi.AttachSlabs/EnsureSlabs) before Run")
	}
	return sl
}

// Rank returns the rank this slab belongs to.
func (sl *StateSlab) Rank() int { return sl.rank }

// NumOwned returns the number of owned-vertex rows.
func (sl *StateSlab) NumOwned() int { return sl.rows.Len() }

// NumMirrored returns the number of delegate mirror rows.
func (sl *StateSlab) NumMirrored() int { return len(sl.mirrorIdx) }

// Owns reports whether v's authoritative state lives in this slab.
func (sl *StateSlab) Owns(v graph.VID) bool { return sl.rows.Row(v) >= 0 }

// Reset invalidates every owned row, mirror row and walk mark in O(1) by
// advancing the epoch. Call between queries; must not be called while a
// traversal is running.
func (sl *StateSlab) Reset() { sl.cur++ }

// row returns v's owned row or panics: state access to a non-owned vertex
// means the traversal routed a message to the wrong rank.
func (sl *StateSlab) row(v graph.VID) int32 {
	i := sl.rows.Row(v)
	if i < 0 {
		panic(fmt.Sprintf("voronoi: StateSlab(rank %d) access to non-owned vertex %d", sl.rank, v))
	}
	return i
}

// Reached reports whether owned vertex v has a current-epoch entry.
func (sl *StateSlab) Reached(v graph.VID) bool { return sl.epoch[sl.row(v)] == sl.cur }

// Src returns owned vertex v's cell seed, or NilVID when unreached.
func (sl *StateSlab) Src(v graph.VID) graph.VID {
	i := sl.row(v)
	if sl.epoch[i] != sl.cur {
		return graph.NilVID
	}
	return sl.src[i]
}

// Pred returns owned vertex v's predecessor, or NilVID when unreached.
func (sl *StateSlab) Pred(v graph.VID) graph.VID {
	i := sl.row(v)
	if sl.epoch[i] != sl.cur {
		return graph.NilVID
	}
	return sl.pred[i]
}

// Dist returns owned vertex v's distance, or InfDist when unreached.
func (sl *StateSlab) Dist(v graph.VID) graph.Dist {
	i := sl.row(v)
	if sl.epoch[i] != sl.cur {
		return graph.InfDist
	}
	return sl.dist[i]
}

// Get returns owned vertex v's full entry with a single epoch check.
func (sl *StateSlab) Get(v graph.VID) (src, pred graph.VID, dist graph.Dist) {
	i := sl.row(v)
	if sl.epoch[i] != sl.cur {
		return graph.NilVID, graph.NilVID, graph.InfDist
	}
	return sl.src[i], sl.pred[i], sl.dist[i]
}

// Set installs owned vertex v's entry, stamped with the current epoch.
func (sl *StateSlab) Set(v graph.VID, src, pred graph.VID, dist graph.Dist) {
	i := sl.row(v)
	sl.epoch[i] = sl.cur
	sl.src[i] = src
	sl.pred[i] = pred
	sl.dist[i] = dist
}

// MarkWalked records that v's predecessor chain has been walked this epoch
// (Alg. 6) and reports whether the mark is new — false means v was already
// walked and the caller should stop. Replaces the shared O(|V|) walked
// bitmap the engine kept before slabs.
func (sl *StateSlab) MarkWalked(v graph.VID) bool {
	i := sl.row(v)
	if sl.walked[i] == sl.cur {
		return false
	}
	sl.walked[i] = sl.cur
	return true
}

// ObserveDelegate folds one broadcast delegate relaxation (delegate d now
// reaches seed src at distance dist) into the local mirror stripe, keeping
// the lexicographic minimum exactly as the owner's entry does. A no-op when
// this rank owns d (the owned row is authoritative) or d has no mirror row
// (not a delegate of this partition).
func (sl *StateSlab) ObserveDelegate(d graph.VID, src graph.VID, dist graph.Dist) {
	i, ok := sl.mirrorIdx[d]
	if !ok {
		return
	}
	if sl.mirrorEpoch[i] == sl.cur {
		od, os := sl.mirrorDist[i], sl.mirrorSrc[i]
		if !(dist < od || (dist == od && src < os)) {
			return
		}
	}
	sl.mirrorEpoch[i] = sl.cur
	sl.mirrorSrc[i] = src
	sl.mirrorDist[i] = dist
}

// DelegateState returns this rank's view of delegate d's (src, dist): the
// authoritative owned row when the rank owns d, the mirror row otherwise.
// ok is false when d is neither owned nor mirrored here. Mirror values
// converge to the owner's once the traversal reaches quiescence; mid-flight
// they lag like any asynchronous label.
func (sl *StateSlab) DelegateState(d graph.VID) (src graph.VID, dist graph.Dist, ok bool) {
	if i := sl.rows.Row(d); i >= 0 {
		if sl.epoch[i] != sl.cur {
			return graph.NilVID, graph.InfDist, true
		}
		return sl.src[i], sl.dist[i], true
	}
	i, mirrored := sl.mirrorIdx[d]
	if !mirrored {
		return graph.NilVID, graph.InfDist, false
	}
	if sl.mirrorEpoch[i] != sl.cur {
		return graph.NilVID, graph.InfDist, true
	}
	return sl.mirrorSrc[i], sl.mirrorDist[i], true
}

// EachReached calls fn for every owned vertex with a current-epoch entry,
// in row order. Used to collect converged per-rank state into a global view
// (Collect) and by tests.
func (sl *StateSlab) EachReached(fn func(v graph.VID, src, pred graph.VID, dist graph.Dist)) {
	for i := 0; i < sl.rows.Len(); i++ {
		if sl.epoch[i] != sl.cur {
			continue
		}
		fn(sl.rows.VertexAt(i), sl.src[i], sl.pred[i], sl.dist[i])
	}
}

// MemoryBytes reports the slab's resident size: owned rows (src 4 + pred 4
// + dist 8 + epoch 8 + walked 8 bytes), mirror rows (src 4 + dist 8 +
// epoch 8 + index ~12) and any non-affine row index.
func (sl *StateSlab) MemoryBytes() int64 {
	n := int64(sl.rows.Len())
	b := n * (4 + 4 + 8 + 8 + 8)
	m := int64(len(sl.mirrorIdx))
	b += m * (4 + 8 + 8 + 12)
	b += sl.rows.MemoryBytes()
	return b
}

// Collect merges converged per-rank slabs into one shared-form State over n
// vertices — the bridge back to the global view for verification oracles,
// Compute's return value and the experiment tables. The merged state is a
// copy; mutating it does not touch the slabs.
func Collect(slabs []*StateSlab, n int) *State {
	st := NewState(n)
	for _, sl := range slabs {
		sl.EachReached(func(v graph.VID, src, pred graph.VID, dist graph.Dist) {
			st.Set(v, src, pred, dist)
		})
	}
	return st
}
