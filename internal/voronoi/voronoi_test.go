package voronoi

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dsteiner/internal/graph"
	"dsteiner/internal/partition"
	rt "dsteiner/internal/runtime"
	"dsteiner/internal/sssp"
)

func randomConnected(seed int64, n int, maxW uint32) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(graph.VID(rng.Intn(v)), graph.VID(v), uint32(rng.Intn(int(maxW)))+1)
	}
	for i := 0; i < 2*n; i++ {
		b.AddEdge(graph.VID(rng.Intn(n)), graph.VID(rng.Intn(n)), uint32(rng.Intn(int(maxW)))+1)
	}
	g, _ := b.Build()
	return g
}

func pickSeeds(rng *rand.Rand, n, k int) []graph.VID {
	seen := map[graph.VID]bool{}
	seeds := make([]graph.VID, 0, k)
	for len(seeds) < k {
		s := graph.VID(rng.Intn(n))
		if !seen[s] {
			seen[s] = true
			seeds = append(seeds, s)
		}
	}
	return seeds
}

func newComm(t testing.TB, n, ranks int, q rt.QueueKind) *rt.Comm {
	t.Helper()
	part, err := partition.NewBlock(n, ranks)
	if err != nil {
		t.Fatal(err)
	}
	return rt.MustNew(rt.Config{Ranks: ranks, Queue: q}, part)
}

func TestSequentialMatchesSSSPOracle(t *testing.T) {
	g := randomConnected(3, 300, 40)
	seeds := []graph.VID{7, 100, 250}
	st := Sequential(g, seeds)
	oracle := sssp.MultiSource(g, seeds)
	for v := 0; v < g.NumVertices(); v++ {
		if st.Dist(graph.VID(v)) != oracle.Dist[v] {
			t.Fatalf("Dist[%d] = %d, oracle %d", v, st.Dist(graph.VID(v)), oracle.Dist[v])
		}
		if st.Src(graph.VID(v)) != oracle.Src[v] {
			t.Fatalf("Src[%d] = %d, oracle %d", v, st.Src(graph.VID(v)), oracle.Src[v])
		}
	}
}

func TestDistributedMatchesSequential(t *testing.T) {
	g := randomConnected(5, 400, 30)
	rng := rand.New(rand.NewSource(6))
	seeds := pickSeeds(rng, g.NumVertices(), 8)
	want := Sequential(g, seeds)
	for _, ranks := range []int{1, 2, 4, 8} {
		for _, q := range []rt.QueueKind{rt.QueueFIFO, rt.QueuePriority, rt.QueueBucket} {
			c := newComm(t, g.NumVertices(), ranks, q)
			got := Compute(c, g, seeds)
			for v := 0; v < g.NumVertices(); v++ {
				if got.Dist(graph.VID(v)) != want.Dist(graph.VID(v)) || got.Src(graph.VID(v)) != want.Src(graph.VID(v)) || got.Pred(graph.VID(v)) != want.Pred(graph.VID(v)) {
					t.Fatalf("ranks=%d q=%v vertex %d: got (%d,%d,%d), want (%d,%d,%d)",
						ranks, q, v,
						got.Dist(graph.VID(v)), got.Src(graph.VID(v)), got.Pred(graph.VID(v)),
						want.Dist(graph.VID(v)), want.Src(graph.VID(v)), want.Pred(graph.VID(v)))
				}
			}
		}
	}
}

func TestSeedStateAfterConvergence(t *testing.T) {
	g := randomConnected(9, 100, 10)
	seeds := []graph.VID{3, 42}
	c := newComm(t, 100, 2, rt.QueuePriority)
	st := Compute(c, g, seeds)
	for _, s := range seeds {
		if st.Dist(s) != 0 || st.Src(s) != s || st.Pred(s) != s {
			t.Fatalf("seed %d state (%d,%d,%d)", s, st.Dist(s), st.Src(s), st.Pred(s))
		}
	}
}

func TestCellsPartitionTheComponent(t *testing.T) {
	g := randomConnected(11, 200, 20)
	seeds := []graph.VID{0, 50, 150}
	c := newComm(t, 200, 4, rt.QueuePriority)
	st := Compute(c, g, seeds)
	isSeed := map[graph.VID]bool{0: true, 50: true, 150: true}
	for v := 0; v < g.NumVertices(); v++ {
		if st.Src(graph.VID(v)) == graph.NilVID {
			t.Fatalf("vertex %d unreached in connected graph", v)
		}
		if !isSeed[st.Src(graph.VID(v))] {
			t.Fatalf("vertex %d assigned to non-seed %d", v, st.Src(graph.VID(v)))
		}
	}
}

func TestPredecessorChainsLeadToCellSeed(t *testing.T) {
	g := randomConnected(13, 300, 25)
	seeds := []graph.VID{10, 200}
	c := newComm(t, 300, 4, rt.QueuePriority)
	st := Compute(c, g, seeds)
	for v := 0; v < g.NumVertices(); v++ {
		// Walk predecessors; must reach src(v) within n hops with
		// monotonically decreasing distance, staying inside the cell.
		cur := graph.VID(v)
		for hops := 0; cur != st.Src(cur); hops++ {
			if hops > g.NumVertices() {
				t.Fatalf("pred cycle starting at %d", v)
			}
			p := st.Pred(cur)
			w, ok := g.HasEdge(p, cur)
			if !ok {
				t.Fatalf("pred edge (%d,%d) not in graph", p, cur)
			}
			if st.Src(p) != st.Src(cur) {
				t.Fatalf("pred %d of %d in different cell", p, cur)
			}
			if st.Dist(p)+graph.Dist(w) != st.Dist(cur) {
				t.Fatalf("pred distance inconsistent at %d", cur)
			}
			cur = p
		}
	}
}

func TestDisconnectedVerticesStayUnreached(t *testing.T) {
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(3, 4, 1) // separate component, no seeds
	g, _ := b.Build()
	c := newComm(t, 6, 2, rt.QueuePriority)
	st := Compute(c, g, []graph.VID{0})
	for _, v := range []graph.VID{3, 4, 5} {
		if st.Src(graph.VID(v)) != graph.NilVID || st.Dist(graph.VID(v)) != graph.InfDist {
			t.Fatalf("vertex %d should be unreached, got src=%d dist=%d", v, st.Src(graph.VID(v)), st.Dist(graph.VID(v)))
		}
	}
}

func TestDelegatesProduceSameFixedPoint(t *testing.T) {
	// Star-heavy graph: hub 0 connected to everything plus a ring.
	n := 120
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, graph.VID(v), uint32(v%17)+1)
		b.AddEdge(graph.VID(v), graph.VID((v%(n-1))+1), uint32(v%5)+1)
	}
	g, _ := b.Build()
	seeds := []graph.VID{1, 60, 110}
	want := Sequential(g, seeds)
	for _, ranks := range []int{2, 4} {
		base, _ := partition.NewBlock(n, ranks)
		part := partition.WithDelegates(base, g, 50) // hub 0 becomes a delegate
		if !part.IsDelegate(0) {
			t.Fatal("hub not delegated")
		}
		c := rt.MustNew(rt.Config{Ranks: ranks, Queue: rt.QueuePriority}, part)
		got := Compute(c, g, seeds)
		for v := 0; v < n; v++ {
			if got.Dist(graph.VID(v)) != want.Dist(graph.VID(v)) || got.Src(graph.VID(v)) != want.Src(graph.VID(v)) {
				t.Fatalf("ranks=%d vertex %d: got (%d,%d), want (%d,%d)",
					ranks, v, got.Dist(graph.VID(v)), got.Src(graph.VID(v)), want.Dist(graph.VID(v)), want.Src(graph.VID(v)))
			}
		}
	}
}

// TestShardedMatchesGlobalReference pins the shard refactor's core claim:
// the sharded traversal (rank-local slabs + materialized delegate stripes)
// reaches the identical Voronoi fixed point as the retained global-CSR
// reference, for every partition kind, with and without delegates, async
// and BSP.
func TestShardedMatchesGlobalReference(t *testing.T) {
	g := randomConnected(77, 300, 25)
	n := g.NumVertices()
	rng := rand.New(rand.NewSource(78))
	seeds := pickSeeds(rng, n, 5)

	makePart := func(kind string, ranks, threshold int) partition.Partition {
		var base partition.Partition
		var err error
		switch kind {
		case "hash":
			base, err = partition.NewHash(n, ranks)
		case "arcblock":
			base, err = partition.NewArcBlock(g, ranks)
		default:
			base, err = partition.NewBlock(n, ranks)
		}
		if err != nil {
			t.Fatal(err)
		}
		if threshold > 0 {
			return partition.WithDelegates(base, g, threshold)
		}
		return base
	}

	for _, kind := range []string{"block", "hash", "arcblock"} {
		for _, threshold := range []int{0, 6} {
			for _, bsp := range []bool{false, true} {
				for _, ranks := range []int{1, 4} {
					// Global reference run.
					cg := rt.MustNew(rt.Config{Ranks: ranks, Queue: rt.QueuePriority}, makePart(kind, ranks, threshold))
					want := NewState(n)
					cg.Run(func(r *rt.Rank) {
						if bsp {
							RunRankGlobalBSP(r, g, seeds, want)
						} else {
							RunRankGlobal(r, g, seeds, want)
						}
					})
					// Sharded run: rank-local slabs, collected afterwards.
					cs := rt.MustNew(rt.Config{Ranks: ranks, Queue: rt.QueuePriority}, makePart(kind, ranks, threshold))
					cs.EnsureShards(g)
					slabs := EnsureSlabs(cs, g)
					cs.Run(func(r *rt.Rank) {
						if bsp {
							RunRankBSP(r, seeds)
						} else {
							RunRank(r, seeds)
						}
					})
					got := Collect(slabs, n)
					for v := 0; v < n; v++ {
						gs, gp, gd := got.Get(graph.VID(v))
						ws, wp, wd := want.Get(graph.VID(v))
						if gs != ws || gp != wp || gd != wd {
							t.Fatalf("%s thr=%d bsp=%v ranks=%d vertex %d: sharded (%d,%d,%d), global (%d,%d,%d)",
								kind, threshold, bsp, ranks, v, gs, gp, gd, ws, wp, wd)
						}
					}
				}
			}
		}
	}
}

func TestPropertyDeterministicAcrossRanksQueuesAndShuffles(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(120)
		g := randomConnected(seed, n, 20)
		seeds := pickSeeds(rng, n, 2+rng.Intn(4))
		want := Sequential(g, seeds)
		ranks := []int{1, 3, 5}[rng.Intn(3)]
		q := []rt.QueueKind{rt.QueueFIFO, rt.QueuePriority, rt.QueueBucket}[rng.Intn(3)]
		part, _ := partition.NewBlock(n, ranks)
		c := rt.MustNew(rt.Config{
			Ranks: ranks, Queue: q,
			ShuffleDelivery: true, ShuffleSeed: seed * 31,
			BatchSize: 1 + rng.Intn(64),
		}, part)
		got := Compute(c, g, seeds)
		for v := 0; v < n; v++ {
			if got.Dist(graph.VID(v)) != want.Dist(graph.VID(v)) || got.Src(graph.VID(v)) != want.Src(graph.VID(v)) || got.Pred(graph.VID(v)) != want.Pred(graph.VID(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBSPMatchesAsync(t *testing.T) {
	g := randomConnected(21, 250, 15)
	seeds := []graph.VID{5, 99, 180}
	want := Sequential(g, seeds)
	part, _ := partition.NewBlock(250, 4)
	c := rt.MustNew(rt.Config{Ranks: 4, Queue: rt.QueueFIFO}, part)
	c.EnsureShards(g)
	slabs := EnsureSlabs(c, g)
	c.Run(func(r *rt.Rank) {
		// Run the same visitor logic under BSP via RunRank's building
		// blocks: reuse Compute-style traversal but in BSP mode through
		// a manual traversal.
		RunRankBSP(r, seeds)
	})
	st := Collect(slabs, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		if st.Dist(graph.VID(v)) != want.Dist(graph.VID(v)) || st.Src(graph.VID(v)) != want.Src(graph.VID(v)) {
			t.Fatalf("BSP vertex %d: got (%d,%d), want (%d,%d)",
				v, st.Dist(graph.VID(v)), st.Src(graph.VID(v)), want.Dist(graph.VID(v)), want.Src(graph.VID(v)))
		}
	}
}

func TestStateMemoryBytes(t *testing.T) {
	st := NewState(100)
	if got := st.MemoryBytes(); got != 100*(4+4+8+8) {
		t.Fatalf("MemoryBytes = %d", got)
	}
}

func TestStateResetInvalidatesInO1(t *testing.T) {
	st := NewState(10)
	st.Set(3, 1, 2, 7)
	if !st.Reached(3) || st.Src(3) != 1 || st.Pred(3) != 2 || st.Dist(3) != 7 {
		t.Fatalf("entry not readable: %v %v %v", st.Src(3), st.Pred(3), st.Dist(3))
	}
	st.Reset()
	if st.Reached(3) {
		t.Fatal("entry survived Reset")
	}
	if s, p, d := st.Get(3); s != graph.NilVID || p != graph.NilVID || d != graph.InfDist {
		t.Fatalf("stale entry visible after Reset: (%d,%d,%d)", s, p, d)
	}
}

func TestStateReuseAcrossQueriesMatchesFresh(t *testing.T) {
	// One pooled slab set driven through several different seed sets must
	// produce exactly the fixed point fresh slabs produce: stale entries
	// from earlier epochs must be invisible.
	g := randomConnected(17, 300, 25)
	rng := rand.New(rand.NewSource(18))
	part, _ := partition.NewBlock(300, 4)
	c := rt.MustNew(rt.Config{Ranks: 4, Queue: rt.QueuePriority}, part)
	c.EnsureShards(g)
	slabs := EnsureSlabs(c, g)
	for q := 0; q < 5; q++ {
		seeds := pickSeeds(rng, g.NumVertices(), 2+q)
		c.ResetStateSlabs()
		c.Run(func(r *rt.Rank) {
			RunRank(r, seeds)
		})
		pooled := Collect(slabs, g.NumVertices())
		fresh := Compute(newComm(t, 300, 4, rt.QueuePriority), g, seeds)
		for v := 0; v < g.NumVertices(); v++ {
			gs, gp, gd := pooled.Get(graph.VID(v))
			ws, wp, wd := fresh.Get(graph.VID(v))
			if gs != ws || gp != wp || gd != wd {
				t.Fatalf("query %d vertex %d: pooled (%d,%d,%d), fresh (%d,%d,%d)",
					q, v, gs, gp, gd, ws, wp, wd)
			}
		}
	}
}

func TestWorkCountersReported(t *testing.T) {
	g := randomConnected(31, 150, 10)
	part, _ := partition.NewBlock(150, 2)
	c := rt.MustNew(rt.Config{Ranks: 2, Queue: rt.QueuePriority}, part)
	c.EnsureShards(g)
	EnsureSlabs(c, g)
	var totalProcessed int64
	done := make(chan int64, 2)
	c.Run(func(r *rt.Rank) {
		s := RunRank(r, []graph.VID{0, 100})
		done <- s.Processed
	})
	close(done)
	for p := range done {
		totalProcessed += p
	}
	if got := c.Stats().Processed; got != totalProcessed || got == 0 {
		t.Fatalf("per-rank sum %d != comm counter %d", totalProcessed, got)
	}
}
