// Package voronoi implements the paper's distributed Voronoi-cell
// computation (Alg. 4): an asynchronous, Bellman–Ford-based flood from all
// seed vertices simultaneously. Every vertex ends up knowing the closest
// seed (its cell owner src), its tentative shortest distance to that seed
// (d1), and the predecessor on that shortest path (pred) — the state later
// phases use to build the distance graph G'₁ and to expand tree edges.
//
// Tie-breaking is total and deterministic: a vertex adopts an offer
// (dist, seed, pred) iff it is lexicographically smaller than its current
// state. Distance/seed improvements trigger re-relaxation of the vertex's
// neighbors; predecessor-only improvements do not (they cannot change any
// neighbor's offer). The unique fixed point therefore does not depend on
// rank count, queue discipline or message timing — property-tested in
// voronoi_test.go and relied on by the paper-reproduction experiments.
//
// The flood is query-mode agnostic. Steiner Forest and prize-collecting
// queries (core.QuerySpec) reuse the exact same cell computation: every
// terminal floods as a seed regardless of which group it belongs to or what
// penalty it carries, so cells partition the graph identically across
// modes. Mode semantics enter only in the later phases — forest queries tag
// each seed with its group and drop cross-group candidate edges during
// phase 2, and prize queries filter the replicated distance graph before
// the phase-4 MST — which keeps this package, and the rank-local slab
// layout it fills, byte-for-byte identical for every query mode.
package voronoi

import (
	"dsteiner/internal/graph"
	rt "dsteiner/internal/runtime"
)

// State is the shared-array form of the per-vertex Voronoi state: one
// array indexed by global VID, entries partitioned by ownership (only the
// owner rank of v may touch v's entry while a traversal is running). A
// seed s has Src(s) = s, Pred(s) = s, Dist(s) = 0. Vertices unreached
// (disconnected from all seeds) report Src = NilVID, Dist = InfDist.
//
// The solver's production path keeps this state in rank-local StateSlabs
// instead (owned vertices only); State remains as the pre-slab reference
// implementation behind core's Options.GlobalCSR — the equivalence oracle —
// and as the collected global view Compute and Collect return.
//
// Entries are epoch-versioned: an entry is valid only while
// epoch[v] == cur, so Reset invalidates the whole state in O(1) instead of
// re-filling three O(n) arrays. That is what makes State pool-able across
// queries of a long-lived solver session (core.Engine): per-query work is
// proportional to the vertices the query actually touches, not to |V|.
type State struct {
	src   []graph.VID
	pred  []graph.VID
	dist  []graph.Dist
	epoch []uint64
	cur   uint64
}

// NewState allocates initialized (unreached) state for n vertices.
func NewState(n int) *State {
	return &State{
		src:   make([]graph.VID, n),
		pred:  make([]graph.VID, n),
		dist:  make([]graph.Dist, n),
		epoch: make([]uint64, n),
		cur:   1,
	}
}

// Len returns the number of vertices the state covers.
func (st *State) Len() int { return len(st.src) }

// Reset invalidates every entry in O(1) by advancing the epoch. Call
// between queries; must not be called while a traversal is running.
func (st *State) Reset() { st.cur++ }

// Reached reports whether v has a valid (current-epoch) entry.
func (st *State) Reached(v graph.VID) bool { return st.epoch[v] == st.cur }

// Src returns v's cell seed, or NilVID if v is unreached this epoch.
func (st *State) Src(v graph.VID) graph.VID {
	if st.epoch[v] != st.cur {
		return graph.NilVID
	}
	return st.src[v]
}

// Pred returns v's shortest-path predecessor, or NilVID if unreached.
func (st *State) Pred(v graph.VID) graph.VID {
	if st.epoch[v] != st.cur {
		return graph.NilVID
	}
	return st.pred[v]
}

// Dist returns v's distance to its cell seed, or InfDist if unreached.
func (st *State) Dist(v graph.VID) graph.Dist {
	if st.epoch[v] != st.cur {
		return graph.InfDist
	}
	return st.dist[v]
}

// Get returns v's full (src, pred, dist) entry with a single epoch check,
// yielding the unreached sentinel triple when stale.
func (st *State) Get(v graph.VID) (src, pred graph.VID, dist graph.Dist) {
	if st.epoch[v] != st.cur {
		return graph.NilVID, graph.NilVID, graph.InfDist
	}
	return st.src[v], st.pred[v], st.dist[v]
}

// Set installs v's entry and stamps it with the current epoch. Only v's
// owner rank may call this while a traversal is running.
func (st *State) Set(v graph.VID, src, pred graph.VID, dist graph.Dist) {
	st.epoch[v] = st.cur
	st.src[v] = src
	st.pred[v] = pred
	st.dist[v] = dist
}

// MemoryBytes reports the state's footprint (Fig. 8 accounting), including
// the epoch array that buys O(1) reuse.
func (st *State) MemoryBytes() int64 {
	return int64(len(st.src))*4 + int64(len(st.pred))*4 + int64(len(st.dist))*8 +
		int64(len(st.epoch))*8
}

// offerBetter implements the deterministic total order on (dist, seed,
// pred) offers described in the package comment.
func offerBetter(nd graph.Dist, ns, np graph.VID, od graph.Dist, os, op graph.VID) bool {
	if nd != od {
		return nd < od
	}
	if ns != os {
		return ns < os
	}
	return np < op
}

// delegateRelax marks broadcast messages that ask every rank to relax its
// stripe of a high-degree delegate's adjacency.
const delegateRelax uint8 = 1

// RunRank executes the Voronoi-cell traversal on one rank (call inside
// Comm.Run alongside the other ranks). It returns the rank's traversal work
// counters. State is the rank's attached StateSlab (Comm.AttachStateSlabs /
// voronoi.AttachSlabs): each rank reads and writes only the entries of
// vertices it owns, and remote entries are reached exclusively through
// mailbox relaxation messages.
//
// Adjacency comes from the rank's local shard (Rank.Adj / Rank.StripeAdj),
// never the global CSR: the communicator must have shards attached
// (Comm.AttachShards or Comm.EnsureShards) before Run.
func RunRank(r *rt.Rank, seeds []graph.VID) rt.TraversalStats {
	return run(r, seeds, false)
}

// RunRankBSP is RunRank under bulk-synchronous supersteps instead of
// asynchronous processing — the §IV async-vs-BSP ablation.
func RunRankBSP(r *rt.Rank, seeds []graph.VID) rt.TraversalStats {
	return run(r, seeds, true)
}

// run is the rank-local hot path: each rank walks its own CSR slab and its
// materialized delegate stripes, and keeps control state in its own
// StateSlab; neither the global CSR nor a shared state array is consulted.
//
// Offers aimed at delegate vertices pass a changed-since filter first
// (sendOffer): the rank compares the offer against its local view of the
// delegate's (src, dist) — the owned row when it owns the hub, the mirror
// stripe fed by past broadcasts otherwise — and drops offers that view
// proves the owner must reject. On hub-heavy graphs most relaxations
// target the few delegates, so the filter cuts exactly the messages that
// would otherwise cross the transport (suppressed count in Stats).
func run(r *rt.Rank, seeds []graph.VID, bsp bool) rt.TraversalStats {
	sl := SlabOf(r)
	sendOffer := sl.offerSender(r)
	relaxNeighbors := func(r *rt.Rank, v graph.VID, src graph.VID, dist graph.Dist) {
		if r.IsDelegate(v) {
			// Hub: fan the relaxation out to all ranks; each scans its
			// materialized stripe of v's (large) adjacency. Broadcasts
			// carry freshly-installed, strictly-improving state: nothing
			// to filter here — but they are staged, not sent: the outbox
			// keeps only the best (dist, src) offer per hub and releases
			// it at the superstep boundary, so k rapid improvements of one
			// hub cross the wire as one broadcast (Stats.BatchedBroadcasts
			// / CoalescedBroadcasts).
			r.BroadcastBatched(rt.Msg{Target: v, From: v, Seed: src, Dist: dist, Kind: delegateRelax})
			return
		}
		ts, ws := r.Adj(v)
		for i, u := range ts {
			sendOffer(r, u, v, src, dist+graph.Dist(ws[i]))
		}
	}
	relaxStripe := func(r *rt.Rank, m rt.Msg) {
		v := m.Target
		// Fold the broadcast into the local delegate mirror (no-op on the
		// owner), then relax this rank's stripe of v's adjacency.
		sl.ObserveDelegate(v, m.Seed, m.Dist)
		ts, ws := r.StripeAdj(v)
		for i, u := range ts {
			sendOffer(r, u, v, m.Seed, m.Dist+graph.Dist(ws[i]))
		}
	}
	// Bucket-drain form of the visit for the intra-rank parallel frontier:
	// same tie-break and state writes, but outbound offers are emitted into
	// the worker's staging outbox instead of sent. Safe without locks
	// because the pool partitions a drained bucket by Target and every
	// state row a visit touches — the owned row (Get/Set) and the delegate
	// mirror row (ObserveDelegate) alike — is keyed by Target. The
	// changed-since filter is deliberately NOT applied here: it reads other
	// vertices' mirror rows, which concurrent chunks may be folding.
	parallelVisit := func(r *rt.Rank, m rt.Msg, w int, emit func(rt.Msg)) {
		if m.Kind == delegateRelax {
			v := m.Target
			sl.ObserveDelegate(v, m.Seed, m.Dist)
			ts, ws := r.StripeAdj(v)
			for i, u := range ts {
				emit(rt.Msg{Target: u, From: v, Seed: m.Seed, Dist: m.Dist + graph.Dist(ws[i])})
			}
			return
		}
		vj := m.Target
		os, op, od := sl.Get(vj)
		if !offerBetter(m.Dist, m.Seed, m.From, od, os, op) {
			// A concurrently relaxed chunk (or earlier traffic) already
			// installed a lex-better entry: the commutative merge resolved
			// a conflict the serial order never sees as one.
			r.FrontierConflict(w)
			return
		}
		distImproved := m.Dist != od || m.Seed != os
		sl.Set(vj, m.Seed, m.From, m.Dist)
		if !distImproved {
			return
		}
		if r.IsDelegate(vj) {
			emit(rt.Msg{Target: vj, From: vj, Seed: m.Seed, Dist: m.Dist, Kind: delegateRelax})
			return
		}
		ts, ws := r.Adj(vj)
		for i, u := range ts {
			emit(rt.Msg{Target: u, From: vj, Seed: m.Seed, Dist: m.Dist + graph.Dist(ws[i])})
		}
	}
	// Replay of one staged message on the rank goroutine, after all workers
	// joined: hub broadcasts go through the superstep outbox and plain
	// offers through the changed-since filter — which now reads the fully
	// merged mirror state — so wire traffic, tie-send rules and batching
	// are exactly those of the serial path.
	parallelFlush := func(r *rt.Rank, m rt.Msg) {
		if m.Kind == delegateRelax {
			r.BroadcastBatched(m)
			return
		}
		sendOffer(r, m.Target, m.From, m.Seed, m.Dist)
	}
	return runWith(r, seeds, sl, bsp, relaxNeighbors, relaxStripe, parallelVisit, parallelFlush)
}

// offerSender returns the relaxation-offer send function, with the
// delegate changed-since filter enabled only when the partition has
// delegates — delegate-free solves keep the unconditional send with zero
// per-edge overhead.
//
// The filter is safe because it only drops provably-rejected offers: a
// delegate owner's (dist, src) improves lexicographically monotonically,
// and the local view (owned row or broadcast-fed mirror) is always one of
// the owner's past states. If that view is already strictly better than
// the offer's (dist, src), the owner's current state is too, and the
// offer would fail the visit's tie-break no matter its predecessor. Ties
// on (dist, src) are NOT filtered — a smaller predecessor can still win —
// which is what keeps the converged fixed point byte-identical with the
// filter on (pinned by the slab-vs-global equivalence property tests).
func (sl *StateSlab) offerSender(r *rt.Rank) func(r *rt.Rank, u graph.VID, from, seed graph.VID, dist graph.Dist) {
	if !r.HasDelegates() {
		return func(r *rt.Rank, u graph.VID, from, seed graph.VID, dist graph.Dist) {
			r.Send(rt.Msg{Target: u, From: from, Seed: seed, Dist: dist})
		}
	}
	return func(r *rt.Rank, u graph.VID, from, seed graph.VID, dist graph.Dist) {
		if r.IsDelegate(u) {
			if ms, md, ok := sl.DelegateState(u); ok && (md < dist || (md == dist && ms < seed)) {
				r.Suppress()
				return
			}
		}
		r.Send(rt.Msg{Target: u, From: from, Seed: seed, Dist: dist})
	}
}

// RunRankGlobal is the pre-shard, pre-slab reference implementation:
// identical visitor logic, but adjacency read by scanning the shared global
// CSR (delegate stripes as strided scans over the global arrays) and
// control state kept in one shared State array indexed by global VID.
// Retained as the oracle for the shard/slab-equivalence property tests and
// the sharded-vs-global benchmarks; the solver's production path is
// RunRank.
func RunRankGlobal(r *rt.Rank, g *graph.Graph, seeds []graph.VID, st *State) rt.TraversalStats {
	return runGlobal(r, g, seeds, st, false)
}

// RunRankGlobalBSP is RunRankGlobal under bulk-synchronous supersteps.
func RunRankGlobalBSP(r *rt.Rank, g *graph.Graph, seeds []graph.VID, st *State) rt.TraversalStats {
	return runGlobal(r, g, seeds, st, true)
}

func runGlobal(r *rt.Rank, g *graph.Graph, seeds []graph.VID, st *State, bsp bool) rt.TraversalStats {
	relaxNeighbors := func(r *rt.Rank, v graph.VID, src graph.VID, dist graph.Dist) {
		if r.IsDelegate(v) {
			r.Broadcast(rt.Msg{Target: v, From: v, Seed: src, Dist: dist, Kind: delegateRelax})
			return
		}
		ts, ws := g.Adj(v)
		for i, u := range ts {
			r.Send(rt.Msg{Target: u, From: v, Seed: src, Dist: dist + graph.Dist(ws[i])})
		}
	}
	relaxStripe := func(r *rt.Rank, m rt.Msg) {
		v := m.Target
		ts, ws := g.Adj(v)
		p := r.NumRanks()
		for i := r.ID(); i < len(ts); i += p {
			u := ts[i]
			r.Send(rt.Msg{Target: u, From: v, Seed: m.Seed, Dist: m.Dist + graph.Dist(ws[i])})
		}
	}
	// The global-CSR reference path shares one State array across ranks and
	// stays strictly serial per rank: no parallel frontier.
	return runWith(r, seeds, st, bsp, relaxNeighbors, relaxStripe, nil, nil)
}

// runWith is the shared traversal skeleton: tie-breaking and state updates
// are identical for the slab-state and shared-state paths (st is the
// Control view of either), so the two can only differ if an adjacency or
// state source yields different values — exactly what the equivalence
// property tests pin down.
func runWith(r *rt.Rank, seeds []graph.VID, st Control, bsp bool,
	relaxNeighbors func(r *rt.Rank, v graph.VID, src graph.VID, dist graph.Dist),
	relaxStripe func(r *rt.Rank, m rt.Msg),
	parallelVisit rt.ParallelVisitFunc, parallelFlush rt.VisitFunc) rt.TraversalStats {
	tr := &rt.Traversal{
		Key:           rt.DistKey,
		BSP:           bsp,
		ParallelVisit: parallelVisit,
		ParallelFlush: parallelFlush,
		Init: func(r *rt.Rank) {
			for _, s := range seeds {
				if r.Owns(s) {
					r.Send(rt.Msg{Target: s, From: s, Seed: s, Dist: 0})
				}
			}
		},
		Visit: func(r *rt.Rank, m rt.Msg) {
			if m.Kind == delegateRelax {
				// Relax this rank's stripe of the delegate's adjacency.
				// State was already updated by the delegate's owner.
				relaxStripe(r, m)
				return
			}
			vj := m.Target
			os, op, od := st.Get(vj)
			if !offerBetter(m.Dist, m.Seed, m.From, od, os, op) {
				return
			}
			distImproved := m.Dist != od || m.Seed != os
			st.Set(vj, m.Seed, m.From, m.Dist)
			if distImproved {
				relaxNeighbors(r, vj, m.Seed, m.Dist)
			}
		},
	}
	if r.Distributed() {
		// Dominance pre-filter for inbound offers: an offer the owned entry
		// already lexicographically beats would be rejected by Visit
		// unchanged — state only ever improves — so it is dropped before
		// paying for a queue insertion. Exact ties are NOT dropped here or
		// in Visit (offerBetter is strict), and delegate broadcasts always
		// pass: their stripe relax must run regardless of the mirror's
		// view. Distributed sessions only: transport batching widens the
		// staleness window that makes the check pay; loopback ranks drain
		// fresh offers, and for them the extra state lookup per message is
		// pure overhead.
		tr.Admit = func(r *rt.Rank, m rt.Msg) bool {
			if m.Kind == delegateRelax {
				return true
			}
			os, op, od := st.Get(m.Target)
			return offerBetter(m.Dist, m.Seed, m.From, od, os, op)
		}
	}
	return r.Traverse(tr)
}

// Compute runs the Voronoi-cell phase standalone on a fresh traversal over
// the given communicator and returns the converged state collected into the
// shared-form view (convenience for tests, Table I and examples; the
// Steiner solver calls RunRank inside its own SPMD body). Shards and state
// slabs are built from g on first use if the communicator has none
// attached; attached slabs are reset, so repeated Computes on one Comm
// reuse them.
func Compute(c *rt.Comm, g *graph.Graph, seeds []graph.VID) *State {
	c.EnsureShards(g)
	slabs := EnsureSlabs(c, g)
	c.ResetStateSlabs()
	c.Run(func(r *rt.Rank) {
		RunRank(r, seeds)
	})
	return Collect(slabs, g.NumVertices())
}

// Sequential computes the same fixed point as RunRank with a sequential
// Dijkstra-like sweep — including the full (dist, seed, pred) tie-breaking
// — and is the verification oracle for the distributed implementation.
func Sequential(g *graph.Graph, seeds []graph.VID) *State {
	st := NewState(g.NumVertices())
	type item struct {
		v    graph.VID
		d    graph.Dist
		src  graph.VID
		pred graph.VID
	}
	// Simple heap on (d, src, pred) triples.
	h := make([]item, 0, len(seeds)*4)
	less := func(a, b item) bool {
		if a.d != b.d {
			return a.d < b.d
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.pred < b.pred
	}
	push := func(it item) {
		h = append(h, it)
		i := len(h) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !less(h[i], h[p]) {
				break
			}
			h[i], h[p] = h[p], h[i]
			i = p
		}
	}
	pop := func() item {
		top := h[0]
		last := len(h) - 1
		h[0] = h[last]
		h = h[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(h) && less(h[l], h[m]) {
				m = l
			}
			if r < len(h) && less(h[r], h[m]) {
				m = r
			}
			if m == i {
				break
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
		return top
	}
	for _, s := range seeds {
		push(item{v: s, d: 0, src: s, pred: s})
	}
	for len(h) > 0 {
		it := pop()
		os, op, od := st.Get(it.v)
		if !offerBetter(it.d, it.src, it.pred, od, os, op) {
			continue
		}
		improved := it.d != od || it.src != os
		st.Set(it.v, it.src, it.pred, it.d)
		if !improved {
			continue
		}
		ts, ws := g.Adj(it.v)
		for i, u := range ts {
			nd := it.d + graph.Dist(ws[i])
			us, up, ud := st.Get(u)
			if offerBetter(nd, it.src, it.v, ud, us, up) {
				push(item{v: u, d: nd, src: it.src, pred: it.v})
			}
		}
	}
	return st
}
