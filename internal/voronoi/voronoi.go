// Package voronoi implements the paper's distributed Voronoi-cell
// computation (Alg. 4): an asynchronous, Bellman–Ford-based flood from all
// seed vertices simultaneously. Every vertex ends up knowing the closest
// seed (its cell owner src), its tentative shortest distance to that seed
// (d1), and the predecessor on that shortest path (pred) — the state later
// phases use to build the distance graph G'₁ and to expand tree edges.
//
// Tie-breaking is total and deterministic: a vertex adopts an offer
// (dist, seed, pred) iff it is lexicographically smaller than its current
// state. Distance/seed improvements trigger re-relaxation of the vertex's
// neighbors; predecessor-only improvements do not (they cannot change any
// neighbor's offer). The unique fixed point therefore does not depend on
// rank count, queue discipline or message timing — property-tested in
// voronoi_test.go and relied on by the paper-reproduction experiments.
package voronoi

import (
	"dsteiner/internal/graph"
	rt "dsteiner/internal/runtime"
)

// State is the per-vertex Voronoi state. Entries are partitioned by
// ownership: only the owner rank of v may touch Src[v], Pred[v], Dist[v]
// while a traversal is running. A seed s has Src[s] = s, Pred[s] = s,
// Dist[s] = 0. Vertices unreached (disconnected from all seeds) keep
// Src = NilVID, Dist = InfDist.
type State struct {
	Src  []graph.VID
	Pred []graph.VID
	Dist []graph.Dist
}

// NewState allocates initialized (unreached) state for n vertices.
func NewState(n int) *State {
	st := &State{
		Src:  make([]graph.VID, n),
		Pred: make([]graph.VID, n),
		Dist: make([]graph.Dist, n),
	}
	for i := 0; i < n; i++ {
		st.Src[i] = graph.NilVID
		st.Pred[i] = graph.NilVID
		st.Dist[i] = graph.InfDist
	}
	return st
}

// MemoryBytes reports the state's footprint (Fig. 8 accounting).
func (st *State) MemoryBytes() int64 {
	return int64(len(st.Src))*4 + int64(len(st.Pred))*4 + int64(len(st.Dist))*8
}

// offerBetter implements the deterministic total order on (dist, seed,
// pred) offers described in the package comment.
func offerBetter(nd graph.Dist, ns, np graph.VID, od graph.Dist, os, op graph.VID) bool {
	if nd != od {
		return nd < od
	}
	if ns != os {
		return ns < os
	}
	return np < op
}

// delegateRelax marks broadcast messages that ask every rank to relax its
// stripe of a high-degree delegate's adjacency.
const delegateRelax uint8 = 1

// RunRank executes the Voronoi-cell traversal on one rank (call inside
// Comm.Run alongside the other ranks). It returns the rank's traversal work
// counters. st must be shared by all ranks of the communicator.
func RunRank(r *rt.Rank, g *graph.Graph, seeds []graph.VID, st *State) rt.TraversalStats {
	return run(r, g, seeds, st, false)
}

// RunRankBSP is RunRank under bulk-synchronous supersteps instead of
// asynchronous processing — the §IV async-vs-BSP ablation.
func RunRankBSP(r *rt.Rank, g *graph.Graph, seeds []graph.VID, st *State) rt.TraversalStats {
	return run(r, g, seeds, st, true)
}

func run(r *rt.Rank, g *graph.Graph, seeds []graph.VID, st *State, bsp bool) rt.TraversalStats {
	relaxNeighbors := func(r *rt.Rank, v graph.VID, src graph.VID, dist graph.Dist) {
		if r.IsDelegate(v) {
			// Hub: fan the relaxation out to all ranks; each scans its
			// stripe of v's (large) adjacency.
			r.Broadcast(rt.Msg{Target: v, From: v, Seed: src, Dist: dist, Kind: delegateRelax})
			return
		}
		ts, ws := g.Adj(v)
		for i, u := range ts {
			r.Send(rt.Msg{Target: u, From: v, Seed: src, Dist: dist + graph.Dist(ws[i])})
		}
	}

	return r.Traverse(&rt.Traversal{
		Key: rt.DistKey,
		BSP: bsp,
		Init: func(r *rt.Rank) {
			for _, s := range seeds {
				if r.Owns(s) {
					r.Send(rt.Msg{Target: s, From: s, Seed: s, Dist: 0})
				}
			}
		},
		Visit: func(r *rt.Rank, m rt.Msg) {
			if m.Kind == delegateRelax {
				// Relax this rank's stripe of the delegate's adjacency.
				// State was already updated by the delegate's owner.
				v := m.Target
				ts, ws := g.Adj(v)
				p := r.NumRanks()
				for i := r.ID(); i < len(ts); i += p {
					u := ts[i]
					r.Send(rt.Msg{Target: u, From: v, Seed: m.Seed, Dist: m.Dist + graph.Dist(ws[i])})
				}
				return
			}
			vj := m.Target
			if !offerBetter(m.Dist, m.Seed, m.From, st.Dist[vj], st.Src[vj], st.Pred[vj]) {
				return
			}
			distImproved := m.Dist != st.Dist[vj] || m.Seed != st.Src[vj]
			st.Dist[vj] = m.Dist
			st.Src[vj] = m.Seed
			st.Pred[vj] = m.From
			if distImproved {
				relaxNeighbors(r, vj, m.Seed, m.Dist)
			}
		},
	})
}

// Compute runs the Voronoi-cell phase standalone on a fresh traversal over
// the given communicator and returns the converged state (convenience for
// tests, Table I and examples; the Steiner solver calls RunRank inside its
// own SPMD body).
func Compute(c *rt.Comm, g *graph.Graph, seeds []graph.VID) *State {
	st := NewState(g.NumVertices())
	c.Run(func(r *rt.Rank) {
		RunRank(r, g, seeds, st)
	})
	return st
}

// Sequential computes the same fixed point as RunRank with a sequential
// Dijkstra-like sweep — including the full (dist, seed, pred) tie-breaking
// — and is the verification oracle for the distributed implementation.
func Sequential(g *graph.Graph, seeds []graph.VID) *State {
	st := NewState(g.NumVertices())
	type item struct {
		v    graph.VID
		d    graph.Dist
		src  graph.VID
		pred graph.VID
	}
	// Simple heap on (d, src, pred) triples.
	h := make([]item, 0, len(seeds)*4)
	less := func(a, b item) bool {
		if a.d != b.d {
			return a.d < b.d
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.pred < b.pred
	}
	push := func(it item) {
		h = append(h, it)
		i := len(h) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !less(h[i], h[p]) {
				break
			}
			h[i], h[p] = h[p], h[i]
			i = p
		}
	}
	pop := func() item {
		top := h[0]
		last := len(h) - 1
		h[0] = h[last]
		h = h[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(h) && less(h[l], h[m]) {
				m = l
			}
			if r < len(h) && less(h[r], h[m]) {
				m = r
			}
			if m == i {
				break
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
		return top
	}
	for _, s := range seeds {
		push(item{v: s, d: 0, src: s, pred: s})
	}
	for len(h) > 0 {
		it := pop()
		if !offerBetter(it.d, it.src, it.pred, st.Dist[it.v], st.Src[it.v], st.Pred[it.v]) {
			continue
		}
		improved := it.d != st.Dist[it.v] || it.src != st.Src[it.v]
		st.Dist[it.v] = it.d
		st.Src[it.v] = it.src
		st.Pred[it.v] = it.pred
		if !improved {
			continue
		}
		ts, ws := g.Adj(it.v)
		for i, u := range ts {
			nd := it.d + graph.Dist(ws[i])
			if offerBetter(nd, it.src, it.v, st.Dist[u], st.Src[u], st.Pred[u]) {
				push(item{v: u, d: nd, src: it.src, pred: it.v})
			}
		}
	}
	return st
}
