package wire

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"

	"dsteiner/internal/graph"
	rt "dsteiner/internal/runtime"
)

// randBatch builds a batch with deliberately clustered targets and seeds so
// the delta columns exercise both tiny and sign-flipping deltas, plus
// duplicate (Target, From, Kind) groups so dedupe paths run.
func randBatch(rng *rand.Rand, n int) []rt.Msg {
	msgs := make([]rt.Msg, n)
	for i := range msgs {
		msgs[i] = rt.Msg{
			Target: graph.VID(rng.Intn(64)), // small range forces collisions
			From:   graph.VID(rng.Intn(16)),
			Seed:   graph.VID(rng.Intn(8)),
			Dist:   graph.Dist(rng.Intn(1 << 20)),
			Kind:   uint8(rng.Intn(2)),
		}
	}
	return msgs
}

// survivors computes the reference compaction: within each
// (Target, From, Kind) group keep every message tying the group's
// lexicographic minimum (Dist, Seed) — ties always survive, strictly worse
// offers never do.
func survivors(msgs []rt.Msg) []rt.Msg {
	type key struct {
		t, f graph.VID
		k    uint8
	}
	best := map[key]rt.Msg{}
	count := map[key]int{}
	for _, m := range msgs {
		k := key{m.Target, m.From, m.Kind}
		b, ok := best[k]
		switch {
		case !ok || m.Dist < b.Dist || (m.Dist == b.Dist && m.Seed < b.Seed):
			best[k] = m
			count[k] = 1
		case m.Dist == b.Dist && m.Seed == b.Seed:
			count[k]++
		}
	}
	var out []rt.Msg
	for k, m := range best {
		for i := 0; i < count[k]; i++ {
			out = append(out, m)
		}
	}
	sortMsgs(out)
	return out
}

// TestMsgBatch2RoundTrip property-tests the compacted frame: decode must
// return exactly the reference survivor multiset, and the reported elision
// count must match.
func TestMsgBatch2RoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200)
		msgs := randBatch(rng, n)
		want := survivors(msgs)
		dest := rng.Intn(16)

		body, elided := AppendMsgBatch2(nil, dest, slices.Clone(msgs))
		if elided != n-len(want) {
			t.Logf("elided %d, want %d", elided, n-len(want))
			return false
		}
		gotDest, got, err := DecodeMsgBatch2(body[1:], nil)
		if err != nil || gotDest != dest {
			t.Logf("decode: dest=%d err=%v", gotDest, err)
			return false
		}
		gotSorted := slices.Clone(got)
		sortMsgs(gotSorted)
		if !slices.Equal(gotSorted, want) {
			t.Logf("got %v\nwant %v", gotSorted, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestMsgBatch2KeepsTies pins the tie-send rule at the wire layer: two
// byte-identical offers (same routing triple, same dist, same seed) must
// both survive compaction — the changed-since filter upstream depends on
// ties being delivered.
func TestMsgBatch2KeepsTies(t *testing.T) {
	m := rt.Msg{Target: 7, From: 7, Seed: 3, Dist: 10, Kind: 1}
	body, elided := AppendMsgBatch2(nil, 0, []rt.Msg{m, m, m})
	if elided != 0 {
		t.Fatalf("ties must never be elided, got elided=%d", elided)
	}
	_, got, err := DecodeMsgBatch2(body[1:], nil)
	if err != nil || len(got) != 3 {
		t.Fatalf("want 3 tie messages, got %d (%v)", len(got), err)
	}

	// Strictly dominated: worse dist, and equal dist but worse seed.
	worseDist := rt.Msg{Target: 7, From: 7, Seed: 3, Dist: 11, Kind: 1}
	worseSeed := rt.Msg{Target: 7, From: 7, Seed: 4, Dist: 10, Kind: 1}
	body, elided = AppendMsgBatch2(nil, 0, []rt.Msg{worseDist, m, worseSeed})
	if elided != 2 {
		t.Fatalf("want 2 dominated drops, got %d", elided)
	}
	_, got, err = DecodeMsgBatch2(body[1:], nil)
	if err != nil || len(got) != 1 || got[0] != m {
		t.Fatalf("want only best offer, got %v (%v)", got, err)
	}

	// Different From / Kind are distinct routing groups: never cross-elide.
	otherFrom := rt.Msg{Target: 7, From: 8, Seed: 9, Dist: 99, Kind: 1}
	otherKind := rt.Msg{Target: 7, From: 7, Seed: 9, Dist: 99, Kind: 0}
	body, elided = AppendMsgBatch2(nil, 0, []rt.Msg{m, otherFrom, otherKind})
	if elided != 0 {
		t.Fatalf("distinct groups must not elide, got %d", elided)
	}
	if _, got, err = DecodeMsgBatch2(body[1:], nil); err != nil || len(got) != 3 {
		t.Fatalf("want 3 distinct messages, got %d (%v)", len(got), err)
	}
}

// TestMsgBatch2Truncation drops every suffix of valid v2 bodies: the
// decoder must error, never panic, never over-allocate.
func TestMsgBatch2Truncation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		msgs := randBatch(rng, 1+rng.Intn(60))
		body, _ := AppendMsgBatch2(nil, rng.Intn(8), msgs)
		body = body[1:] // strip frame type
		for cut := 0; cut < len(body); cut++ {
			if _, _, err := DecodeMsgBatch2(body[:cut], nil); err == nil {
				t.Fatalf("trial %d: truncation at %d/%d accepted", trial, cut, len(body))
			}
		}
	}
}

// TestMsgBatch2Smaller sanity-checks the point of the frame: on clustered
// delegate traffic the v2 encoding is no larger than v1 of the same
// surviving messages, and strictly smaller than v1 of the raw batch.
func TestMsgBatch2Smaller(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	msgs := randBatch(rng, 500)
	v1 := AppendMsgBatch(nil, 3, slices.Clone(msgs))
	v2, elided := AppendMsgBatch2(nil, 3, slices.Clone(msgs))
	if elided == 0 {
		t.Fatal("clustered batch should have dominated offers")
	}
	if len(v2) >= len(v1) {
		t.Fatalf("v2 (%dB) should beat v1 (%dB) on clustered traffic", len(v2), len(v1))
	}
	if got := MsgBatchSize1(3, msgs); got != len(v1) {
		t.Fatalf("MsgBatchSize1=%d, want v1 frame size %d", got, len(v1))
	}
}

// BenchmarkWireEncodeBatch measures the hot Deliver-path encode for both
// frame versions at the runtime's default flush size (gated by benchgate).
func BenchmarkWireEncodeBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	msgs := randBatch(rng, 64)
	scratch := make([]rt.Msg, len(msgs))
	var dst []byte
	b.Run("v1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = AppendMsgBatch(dst[:0], 3, msgs)
		}
	})
	b.Run("v2", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			copy(scratch, msgs) // Deliver hands over a private batch; model the copy cost out
			dst, _ = AppendMsgBatch2(dst[:0], 3, scratch)
		}
	})
}
