package wire

import (
	"reflect"
	"testing"

	rt "dsteiner/internal/runtime"
)

// TestFragmentRoundTrip covers the wire v4 fragment-merge frames: routed
// blob lists (including the -1 broadcast destination and empty blobs)
// survive encode/decode, and the round summary round-trips exactly.
func TestFragmentRoundTrip(t *testing.T) {
	blobs := []rt.FragBlob{
		{Src: 0, Dest: 3, Blob: []byte{9, 8, 7}},
		{Src: 2, Dest: -1, Blob: []byte("broadcast")},
		{Src: 1, Dest: 0, Blob: nil},
	}
	c := FragmentConnect{Seq: 41, Blobs: blobs}
	gotC, err := DecodeFragmentConnect(EncodeFragmentConnect(nil, c)[1:])
	if err != nil || gotC.Seq != 41 || !blobsEqual(gotC.Blobs, blobs) {
		t.Fatalf("fragment connect: %+v %v", gotC, err)
	}

	r := FragmentRelabel{Seq: 42, Blobs: blobs[1:]}
	gotR, err := DecodeFragmentRelabel(EncodeFragmentRelabel(nil, r)[1:])
	if err != nil || gotR.Seq != 42 || !blobsEqual(gotR.Blobs, blobs[1:]) {
		t.Fatalf("fragment relabel: %+v %v", gotR, err)
	}

	// Empty contributions are legal (a rank may own no cross edges).
	empty, err := DecodeFragmentConnect(EncodeFragmentConnect(nil, FragmentConnect{Seq: 7})[1:])
	if err != nil || empty.Seq != 7 || len(empty.Blobs) != 0 {
		t.Fatalf("empty fragment connect: %+v %v", empty, err)
	}

	s := FragmentRoundSummary{Rounds: 3, Msgs: 120, Bytes: 4096}
	gotS, err := DecodeFragmentRoundSummary(EncodeFragmentRoundSummary(nil, s)[1:])
	if err != nil || gotS != s {
		t.Fatalf("fragment summary: %+v %v", gotS, err)
	}
}

func blobsEqual(a, b []rt.FragBlob) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Src != b[i].Src || a[i].Dest != b[i].Dest ||
			string(a[i].Blob) != string(b[i].Blob) {
			return false
		}
	}
	return true
}

// TestFragmentDecodersRejectTruncation drops every suffix of valid v4
// fragment bodies through their decoders: always an error, never a panic
// and never silent success.
func TestFragmentDecodersRejectTruncation(t *testing.T) {
	blobs := []rt.FragBlob{{Src: 1, Dest: -1, Blob: []byte{1, 2, 3}}, {Src: 0, Dest: 2, Blob: []byte{4}}}
	bodies := map[string]struct {
		body []byte
		dec  func([]byte) error
	}{
		"connect": {EncodeFragmentConnect(nil, FragmentConnect{Seq: 5, Blobs: blobs})[1:],
			func(b []byte) error { _, err := DecodeFragmentConnect(b); return err }},
		"relabel": {EncodeFragmentRelabel(nil, FragmentRelabel{Seq: 6, Blobs: blobs})[1:],
			func(b []byte) error { _, err := DecodeFragmentRelabel(b); return err }},
		"summary": {EncodeFragmentRoundSummary(nil, FragmentRoundSummary{Rounds: 2, Msgs: 30, Bytes: 400})[1:],
			func(b []byte) error { _, err := DecodeFragmentRoundSummary(b); return err }},
	}
	for name, tc := range bodies {
		if err := tc.dec(tc.body); err != nil {
			t.Fatalf("%s: valid body rejected: %v", name, err)
		}
		for cut := 0; cut < len(tc.body); cut++ {
			if err := tc.dec(tc.body[:cut]); err == nil {
				t.Fatalf("%s: truncation at %d/%d decoded silently", name, cut, len(tc.body))
			}
		}
	}
}

// TestFragmentBlobDestRejected pins the destination guard: a decoded blob
// destination below -1 is corrupt, not a routing request.
func TestFragmentBlobDestRejected(t *testing.T) {
	var bad []byte
	bad = AppendUvarint(bad, 1) // seq
	bad = AppendUvarint(bad, 1) // blob count
	bad = AppendUvarint(bad, 0) // src
	bad = AppendVarint(bad, -2) // dest: only -1 (broadcast) and ranks are legal
	bad = AppendBytes(bad, nil) // blob
	if _, err := DecodeFragmentConnect(bad); err == nil {
		t.Fatal("dest -2 decoded silently")
	}
}

// TestSetupMSTModeRoundTrip pins the v4 Setup tail: the resolved MST mode
// byte rides v4+ Setups, is dropped from v2/v3 encodes byte-for-byte, and
// decodes as 0 (replicated) when absent.
func TestSetupMSTModeRoundTrip(t *testing.T) {
	s := Setup{
		Ranks: 4, NumVertices: 100, RankLo: []int64{0, 2, 4},
		PeerAddrs:   []string{"a:1", "b:2"},
		WireVersion: 4, MSTMode: 2,
	}
	got, err := DecodeSetup(EncodeSetup(nil, s)[1:])
	if err != nil {
		t.Fatal(err)
	}
	if got.WireVersion != 4 || got.MSTMode != 2 {
		t.Fatalf("v4 setup: ver=%d mode=%d, want 4/2", got.WireVersion, got.MSTMode)
	}

	s.WireVersion = 3
	v3 := EncodeSetup(nil, s)
	gotV3, err := DecodeSetup(v3[1:])
	if err != nil || gotV3.MSTMode != 0 {
		t.Fatalf("v3 setup must drop the mode byte: mode=%d err=%v", gotV3.MSTMode, err)
	}
	s.WireVersion = 4
	if len(EncodeSetup(nil, s))-len(v3) != 1 {
		t.Fatal("v4 setup should add exactly one trailing mode byte over v3")
	}
}

// TestWorkerDoneV4Tail pins the WorkerDone v4 tail: the fragment counters
// ride v4 sessions and are dropped (decode ⇒ zero) on older ones.
func TestWorkerDoneV4Tail(t *testing.T) {
	done := WorkerDone{
		QueryID: 9, TableLens: []int64{2}, HasResult: true,
		Result:          SolveResult{TotalDistance: 5, MSTRounds: 3},
		MSTFragment:     true,
		CrossTableBytes: 9999,
		FragmentMsgs:    123,
	}
	gotV4, err := DecodeWorkerDone(EncodeWorkerDone(nil, done, 4)[1:])
	if err != nil || !reflect.DeepEqual(gotV4, done) {
		t.Fatalf("worker done v4:\n got %+v\nwant %+v (%v)", gotV4, done, err)
	}
	gotV3, err := DecodeWorkerDone(EncodeWorkerDone(nil, done, 3)[1:])
	if err != nil || gotV3.MSTFragment || gotV3.CrossTableBytes != 0 || gotV3.FragmentMsgs != 0 {
		t.Fatalf("worker done v3 must drop the v4 tail: %+v (%v)", gotV3, err)
	}
}
