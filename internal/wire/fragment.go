package wire

import (
	"fmt"

	rt "dsteiner/internal/runtime"
)

// Fragment-merge MST frames (wire v4). One fragment exchange mirrors the
// collective flow — every worker contributes a FragmentConnect for sequence
// #Seq, the coordinator routes and answers each worker with a personalized
// FragmentRelabel — but unlike OpGather the reply carries only the blobs a
// worker's rank range actually needs (plus broadcasts), which is the
// wire-byte reduction the fragment merge exists for.

// FragmentConnect is one process's contribution to fragment exchange #Seq:
// the routed blobs of its hosted ranks (Dest = global rank, or -1 for
// broadcast to every rank).
type FragmentConnect struct {
	Seq   uint64
	Blobs []rt.FragBlob
}

// EncodeFragmentConnect appends a FrameFragmentConnect payload.
func EncodeFragmentConnect(dst []byte, f FragmentConnect) []byte {
	dst = append(dst, FrameFragmentConnect)
	dst = AppendUvarint(dst, f.Seq)
	return appendFragBlobs(dst, f.Blobs)
}

// DecodeFragmentConnect decodes a FrameFragmentConnect body. Blobs alias
// body.
func DecodeFragmentConnect(body []byte) (FragmentConnect, error) {
	d := NewDec(body)
	f := FragmentConnect{Seq: d.Uvarint()}
	f.Blobs = decodeFragBlobs(d)
	return f, d.finish()
}

// FragmentRelabel is the coordinator's personalized result of fragment
// exchange #Seq for one worker: the blobs addressed to the worker's rank
// range plus every broadcast blob.
type FragmentRelabel struct {
	Seq   uint64
	Blobs []rt.FragBlob
}

// EncodeFragmentRelabel appends a FrameFragmentRelabel payload.
func EncodeFragmentRelabel(dst []byte, f FragmentRelabel) []byte {
	dst = append(dst, FrameFragmentRelabel)
	dst = AppendUvarint(dst, f.Seq)
	return appendFragBlobs(dst, f.Blobs)
}

// DecodeFragmentRelabel decodes a FrameFragmentRelabel body. Blobs alias
// body.
func DecodeFragmentRelabel(body []byte) (FragmentRelabel, error) {
	d := NewDec(body)
	f := FragmentRelabel{Seq: d.Uvarint()}
	f.Blobs = decodeFragBlobs(d)
	return f, d.finish()
}

// appendFragBlobs appends a length-prefixed routed-blob list. Dest is
// zigzag-encoded because -1 means broadcast.
func appendFragBlobs(dst []byte, blobs []rt.FragBlob) []byte {
	dst = AppendUvarint(dst, uint64(len(blobs)))
	for _, fb := range blobs {
		dst = AppendUvarint(dst, uint64(fb.Src))
		dst = AppendVarint(dst, int64(fb.Dest))
		dst = AppendBytes(dst, fb.Blob)
	}
	return dst
}

// decodeFragBlobs decodes a routed-blob list; blobs alias the frame buffer.
func decodeFragBlobs(d *Dec) []rt.FragBlob {
	n := d.Int()
	if d.err == nil && n > d.Len() {
		d.err = fmt.Errorf("%w: fragment blob count", ErrCorrupt)
		return nil
	}
	out := make([]rt.FragBlob, 0, min(n, 1024))
	for i := 0; i < n && d.err == nil; i++ {
		fb := rt.FragBlob{Src: d.Int()}
		dest := d.Varint()
		if d.err == nil && (dest < -1 || dest > 1<<24) {
			d.err = fmt.Errorf("%w: fragment blob dest %d", ErrCorrupt, dest)
			return nil
		}
		fb.Dest = int(dest)
		fb.Blob = d.Bytes()
		out = append(out, fb)
	}
	return out
}

// FragmentRoundSummary is one process's fragment-merge totals for the query
// it just finished: Borůvka rounds, proposal/routing records, and encoded
// cross-table bytes. One-way worker → coordinator; the hub folds it into the
// pending query's outcome and requires the round count to agree across
// workers.
type FragmentRoundSummary struct {
	Rounds int64
	Msgs   int64
	Bytes  int64
}

// EncodeFragmentRoundSummary appends a FrameFragmentRoundSummary payload.
func EncodeFragmentRoundSummary(dst []byte, f FragmentRoundSummary) []byte {
	dst = append(dst, FrameFragmentRoundSummary)
	dst = AppendVarint(dst, f.Rounds)
	dst = AppendVarint(dst, f.Msgs)
	return AppendVarint(dst, f.Bytes)
}

// DecodeFragmentRoundSummary decodes a FrameFragmentRoundSummary body.
func DecodeFragmentRoundSummary(body []byte) (FragmentRoundSummary, error) {
	d := NewDec(body)
	f := FragmentRoundSummary{Rounds: d.Varint(), Msgs: d.Varint(), Bytes: d.Varint()}
	return f, d.finish()
}
