package wire

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"dsteiner/internal/graph"
	rt "dsteiner/internal/runtime"
)

// TestFrameRoundTrip checks WriteFrame/ReadFrame and DecodeFrame agree on a
// stream of frames.
func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{
		{FrameGoodbye},
		EncodeFence(nil, Fence{Seq: 42}),
		EncodeToken(nil, Token{Seq: 7, Q: -3, Black: true}),
	}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	// Streaming reads.
	r := bytes.NewReader(buf.Bytes())
	var scratch []byte
	for i, want := range payloads {
		got, err := ReadFrame(r, scratch)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got % x want % x", i, got, want)
		}
		scratch = got
	}
	if _, err := ReadFrame(r, scratch); err != io.EOF {
		t.Fatalf("want io.EOF at stream end, got %v", err)
	}
	// Buffered decode.
	rest := buf.Bytes()
	for i, want := range payloads {
		typ, body, r2, err := DecodeFrame(rest)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if typ != want[0] || !bytes.Equal(body, want[1:]) {
			t.Fatalf("decode %d: type %d body % x", i, typ, body)
		}
		rest = r2
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
}

func TestFrameErrors(t *testing.T) {
	// Truncated header and body.
	if _, _, _, err := DecodeFrame([]byte{1, 0}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short header: %v", err)
	}
	full := AppendFrame(nil, []byte{FrameGoodbye, 9, 9})
	if _, _, _, err := DecodeFrame(full[:len(full)-1]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short body: %v", err)
	}
	// Zero and oversized lengths.
	if _, _, _, err := DecodeFrame([]byte{0, 0, 0, 0}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("zero length: %v", err)
	}
	if _, _, _, err := DecodeFrame([]byte{0xff, 0xff, 0xff, 0xff}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("huge length: %v", err)
	}
	if _, err := ReadFrame(bytes.NewReader([]byte{1, 0, 0, 0}), nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("stream cut mid-frame: %v", err)
	}
	if err := WriteFrame(io.Discard, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("empty payload: %v", err)
	}
}

// TestHugeCountsRejected pins the overflow guard on bulk-array lengths: a
// corrupt frame whose element count would overflow count*elemBytes must
// error, never reach an allocation (the never-panic contract).
func TestHugeCountsRejected(t *testing.T) {
	hostile := []uint64{1 << 61, 1 << 62, (1 << 64) - 1, 1 << 40}
	for _, n := range hostile {
		prefix := AppendUvarint(nil, n)
		if got := NewDec(prefix).Int64s(); got != nil {
			t.Fatalf("count %d: Int64s returned %d elements", n, len(got))
		}
		if err := NewDec(prefix).finish(); err == nil {
			// finish alone passes (prefix fully consumed is not required
			// here) — the array decoders themselves must have failed.
			d := NewDec(prefix)
			d.VIDs()
			if d.Err() == nil {
				t.Fatalf("count %d: VIDs decoded without error", n)
			}
		}
		d := NewDec(prefix)
		d.Uint32s()
		if d.Err() == nil {
			t.Fatalf("count %d: Uint32s decoded without error", n)
		}
		// And through the message-batch path (dest + hostile count).
		body := AppendUvarint([]byte{}, 0)
		body = append(body, prefix...)
		if _, _, err := DecodeMsgBatch(body, nil); err == nil {
			t.Fatalf("count %d: msg batch decoded without error", n)
		}
	}
}

// TestMsgBatchRoundTrip is the property test for the hot-path codec: any
// batch of visitor messages survives encode/decode byte-identically.
func TestMsgBatchRoundTrip(t *testing.T) {
	f := func(seed int64, destRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		dest := int(destRaw % 64)
		msgs := make([]rt.Msg, rng.Intn(200))
		for i := range msgs {
			msgs[i] = rt.Msg{
				Target: graph.VID(rng.Intn(1 << 20)),
				From:   graph.VID(rng.Intn(1 << 20)),
				Seed:   graph.VID(rng.Intn(1 << 20)),
				Dist:   graph.Dist(rng.Int63n(int64(graph.InfDist))),
				Kind:   uint8(rng.Intn(4)),
			}
		}
		payload := AppendMsgBatch(nil, dest, msgs)
		typ, body, rest, err := DecodeFrame(AppendFrame(nil, payload))
		if err != nil || typ != FrameMsgBatch || len(rest) != 0 {
			t.Logf("frame: typ=%d err=%v", typ, err)
			return false
		}
		gotDest, got, err := DecodeMsgBatch(body, nil)
		if err != nil || gotDest != dest {
			t.Logf("batch: dest=%d err=%v", gotDest, err)
			return false
		}
		if len(got) != len(msgs) {
			return false
		}
		for i := range msgs {
			if got[i] != msgs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestMsgBatchDecodeReusesBuffer checks the decode-into-buffer contract.
func TestMsgBatchDecodeReusesBuffer(t *testing.T) {
	msgs := []rt.Msg{{Target: 1, Dist: 9}, {Target: 2, Dist: 8}}
	payload := AppendMsgBatch(nil, 3, msgs)
	buf := make([]rt.Msg, 0, 16)
	_, got, err := DecodeMsgBatch(payload[1:], buf)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("decode did not reuse the provided buffer")
	}
}

func TestHandshakeRoundTrip(t *testing.T) {
	h := Hello{Version: Version, PeerAddr: "127.0.0.1:45991"}
	got, err := DecodeHello(EncodeHello(nil, h)[1:])
	if err != nil || got != h {
		t.Fatalf("hello: %+v %v", got, err)
	}

	setup := Setup{
		Ranks: 8, NumVertices: 1000, WorkerIndex: 2,
		RankLo:    []int64{0, 2, 4, 6, 8},
		PeerAddrs: []string{"a:1", "b:2", "c:3", "d:4"},
		Queue:     2, BucketDelta: 64, BatchSize: 128,
		BSP: true, MST: 1, CollectiveChunk: 500, DelegateThreshold: 16,
		PartitionKind: PartArcBlock,
		ArcBounds:     []graph.VID{0, 100, 400, 1000},
		Delegates:     []graph.VID{7, 99},
		Shards: []ShardSlice{{
			Rank:          4,
			Owned:         []graph.VID{4, 5, 6},
			Offsets:       []int64{0, 2, 2, 5},
			Targets:       []graph.VID{1, 2, 3, 4, 5},
			Weights:       []uint32{10, 20, 30, 40, 50},
			StripeOff:     []int64{0, 1, 3},
			StripeTargets: []graph.VID{9, 8, 7},
			StripeWeights: []uint32{1, 2, 3},
			Mirrored:      []graph.VID{99},
		}},
		WireVersion: 2,
	}
	gotSetup, err := DecodeSetup(EncodeSetup(nil, setup)[1:])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotSetup, setup) {
		t.Fatalf("setup round trip:\n got %+v\nwant %+v", gotSetup, setup)
	}

	// A v1 Setup has no trailing version field; decode must default to 1,
	// and the v1 encoding must be byte-identical to what a v1 coordinator
	// would emit (no trailing bytes).
	setup.WireVersion = 1
	v1Body := EncodeSetup(nil, setup)[1:]
	gotV1Setup, err := DecodeSetup(v1Body)
	if err != nil || gotV1Setup.WireVersion != 1 {
		t.Fatalf("v1 setup decode: ver=%d err=%v", gotV1Setup.WireVersion, err)
	}
	setup.WireVersion = 2
	if len(EncodeSetup(nil, setup))-len(v1Body) != 2 {
		t.Fatalf("v2 setup should add exactly the frame byte + 1 version byte")
	}

	// A v5 Setup appends the session identity after the MST mode; decode
	// recovers all three trailing fields, and a v4 Setup — which never has
	// the SessionID — decodes with SessionID 0 (rejoin unavailable).
	setup.WireVersion = 5
	setup.MSTMode = 2
	setup.SessionID = 0xdeadbeefcafe
	gotV5, err := DecodeSetup(EncodeSetup(nil, setup)[1:])
	if err != nil || !reflect.DeepEqual(gotV5, setup) {
		t.Fatalf("v5 setup round trip:\n got %+v\nwant %+v (%v)", gotV5, setup, err)
	}
	setup.WireVersion = 4
	gotV4, err := DecodeSetup(EncodeSetup(nil, setup)[1:])
	if err != nil || gotV4.SessionID != 0 || gotV4.MSTMode != 2 {
		t.Fatalf("v4 setup must drop the session id: id=%d mst=%d err=%v",
			gotV4.SessionID, gotV4.MSTMode, err)
	}

	r := Ready{ShardBytes: 12345, StateBytes: 678}
	gotReady, err := DecodeReady(EncodeReady(nil, r)[1:])
	if err != nil || gotReady != r {
		t.Fatalf("ready: %+v %v", gotReady, err)
	}

	p := PeerHello{Worker: 3}
	gotPeer, err := DecodePeerHello(EncodePeerHello(nil, p)[1:])
	if err != nil || gotPeer != p {
		t.Fatalf("peer hello: %+v %v", gotPeer, err)
	}

	a := Abort{Reason: "rank 3 panicked"}
	gotAbort, err := DecodeAbort(EncodeAbort(nil, a)[1:])
	if err != nil || gotAbort != a {
		t.Fatalf("abort: %+v %v", gotAbort, err)
	}

	rj := Rejoin{Version: Version, PeerAddr: "127.0.0.1:40001", SessionID: 0xfeedface, PrevWorker: 3}
	gotRejoin, err := DecodeRejoin(EncodeRejoin(nil, rj)[1:])
	if err != nil || gotRejoin != rj {
		t.Fatalf("rejoin: %+v %v", gotRejoin, err)
	}
}

func TestCollectiveRoundTrip(t *testing.T) {
	c := Coll{Seq: 9, Op: OpSumInt64, Payload: EncodeInt64(-77)}
	gotC, err := DecodeColl(EncodeColl(nil, c)[1:])
	if err != nil || gotC.Seq != c.Seq || gotC.Op != c.Op || !bytes.Equal(gotC.Payload, c.Payload) {
		t.Fatalf("coll: %+v %v", gotC, err)
	}
	v, err := DecodeInt64(gotC.Payload)
	if err != nil || v != -77 {
		t.Fatalf("int64 payload: %d %v", v, err)
	}

	blobs := []RankBlob{{Rank: 3, Blob: []byte("abc")}, {Rank: 0, Blob: nil}}
	gotBlobs, err := DecodeRankBlobs(EncodeRankBlobs(nil, blobs))
	if err != nil || len(gotBlobs) != 2 || gotBlobs[0].Rank != 3 ||
		!bytes.Equal(gotBlobs[0].Blob, []byte("abc")) || gotBlobs[1].Rank != 0 {
		t.Fatalf("rank blobs: %+v %v", gotBlobs, err)
	}

	list := [][]byte{nil, []byte("x"), []byte("yz")}
	gotList, err := DecodeBlobList(EncodeBlobList(nil, list))
	if err != nil || len(gotList) != 3 || !bytes.Equal(gotList[2], []byte("yz")) {
		t.Fatalf("blob list: %+v %v", gotList, err)
	}

	reply := CollReply{Seq: 10, Payload: []byte{1, 2}}
	gotReply, err := DecodeCollReply(EncodeCollReply(nil, reply)[1:])
	if err != nil || gotReply.Seq != 10 || !bytes.Equal(gotReply.Payload, reply.Payload) {
		t.Fatalf("coll reply: %+v %v", gotReply, err)
	}
}

func TestTerminationRoundTrip(t *testing.T) {
	for _, tok := range []Token{{Seq: 1, Q: 0, Black: false}, {Seq: 900, Q: -12, Black: true}} {
		got, err := DecodeToken(EncodeToken(nil, tok)[1:])
		if err != nil || got != tok {
			t.Fatalf("token %+v: %+v %v", tok, got, err)
		}
	}
	b := TraverseBegin{Seq: 17}
	gotB, err := DecodeTraverseBegin(EncodeTraverseBegin(nil, b)[1:])
	if err != nil || gotB != b {
		t.Fatalf("begin: %+v %v", gotB, err)
	}
	d := TraverseDone{Seq: 17}
	gotD, err := DecodeTraverseDone(EncodeTraverseDone(nil, d)[1:])
	if err != nil || gotD != d {
		t.Fatalf("done: %+v %v", gotD, err)
	}
	f := Fence{Seq: 31}
	gotF, err := DecodeFence(EncodeFence(nil, f)[1:])
	if err != nil || gotF != f {
		t.Fatalf("fence: %+v %v", gotF, err)
	}
}

func TestSolveRoundTrip(t *testing.T) {
	s := Solve{QueryID: 55, Seeds: []graph.VID{3, 1, 9}}
	gotS, err := DecodeSolve(EncodeSolve(nil, s)[1:])
	if err != nil || gotS.QueryID != 55 || !reflect.DeepEqual(gotS.Seeds, s.Seeds) {
		t.Fatalf("solve: %+v %v", gotS, err)
	}

	done := WorkerDone{
		QueryID:    55,
		TableLens:  []int64{3, 0},
		Sent:       120,
		Processed:  119,
		Suppressed: 4,
		Net:        NetStats{FramesOut: 9, BytesIn: 1000, EncodeNs: 12345},
		HasResult:  true,
		Result: SolveResult{
			Tree:          []EdgeRec{{U: 1, V: 2, W: 7}, {U: 2, V: 5, W: 1}},
			TotalDistance: 8,
			Phases: []PhaseRec{
				{Name: "Voronoi Cell", Seconds: 0.25, Sent: 100, Processed: 99, MaxRankWork: 60},
			},
			DistGraphEdges:   2,
			MSTRounds:        1,
			CollectiveChunks: 1,
		},
	}
	gotDone, err := DecodeWorkerDone(EncodeWorkerDone(nil, done, 1)[1:])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotDone, done) {
		t.Fatalf("worker done:\n got %+v\nwant %+v", gotDone, done)
	}

	// v2 sessions carry the outbox counters and extended net stats in a
	// trailing block; a v1 encode of the same struct must drop them.
	done.Batched = 17
	done.Coalesced = 40
	done.Net.CompactionSavedBytes = 512
	done.Net.FlushesSmall = 3
	done.Net.FlushesMid = 2
	done.Net.FlushesLarge = 1
	gotV2, err := DecodeWorkerDone(EncodeWorkerDone(nil, done, 2)[1:])
	if err != nil || !reflect.DeepEqual(gotV2, done) {
		t.Fatalf("worker done v2:\n got %+v\nwant %+v (%v)", gotV2, done, err)
	}
	gotV1, err := DecodeWorkerDone(EncodeWorkerDone(nil, done, 1)[1:])
	if err != nil || gotV1.Batched != 0 || gotV1.Coalesced != 0 || gotV1.Net.CompactionSavedBytes != 0 {
		t.Fatalf("worker done v1 must drop v2 tail: %+v (%v)", gotV1, err)
	}

	// Error form without a result.
	fail := WorkerDone{QueryID: 56, Err: "core: seeds span 2 connected components", TableLens: []int64{0}}
	gotFail, err := DecodeWorkerDone(EncodeWorkerDone(nil, fail, 1)[1:])
	if err != nil || !reflect.DeepEqual(gotFail, fail) {
		t.Fatalf("worker done (err): %+v %v", gotFail, err)
	}
}

// TestEdgesRoundTrip property-tests the tree-gather blob codec.
func TestEdgesRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		edges := make([]graph.Edge, rng.Intn(64))
		for i := range edges {
			edges[i] = graph.Edge{
				U: graph.VID(rng.Intn(1 << 16)),
				V: graph.VID(rng.Intn(1 << 16)),
				W: uint32(rng.Intn(1 << 10)),
			}
		}
		got, err := DecodeEdges(EncodeEdges(nil, edges), nil)
		if err != nil {
			return false
		}
		if len(got) != len(edges) {
			return false
		}
		for i := range edges {
			if got[i] != edges[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestDecodersRejectTruncation drops every suffix of valid bodies through
// each struct decoder: the result must be an error, never a panic and
// never silent success.
func TestDecodersRejectTruncation(t *testing.T) {
	bodies := map[string]struct {
		body []byte
		dec  func([]byte) error
	}{
		"hello": {EncodeHello(nil, Hello{Version: 1, PeerAddr: "x:1"})[1:],
			func(b []byte) error { _, err := DecodeHello(b); return err }},
		"setup": {EncodeSetup(nil, Setup{Ranks: 4, RankLo: []int64{0, 4}, PeerAddrs: []string{"a"},
			Shards: []ShardSlice{{Rank: 1, Owned: []graph.VID{1}, Offsets: []int64{0, 0}}}})[1:],
			func(b []byte) error { _, err := DecodeSetup(b); return err }},
		"solve": {EncodeSolve(nil, Solve{QueryID: 1, Seeds: []graph.VID{1, 2}})[1:],
			func(b []byte) error { _, err := DecodeSolve(b); return err }},
		"done": {EncodeWorkerDone(nil, WorkerDone{QueryID: 1, TableLens: []int64{1}, HasResult: true,
			Result: SolveResult{Tree: []EdgeRec{{U: 1, V: 2, W: 3}}, Phases: []PhaseRec{{Name: "p"}}}}, 1)[1:],
			func(b []byte) error { _, err := DecodeWorkerDone(b); return err }},
		"batch": {AppendMsgBatch(nil, 1, []rt.Msg{{Target: 5, Dist: 7}})[1:],
			func(b []byte) error { _, _, err := DecodeMsgBatch(b, nil); return err }},
		"rejoin": {EncodeRejoin(nil, Rejoin{Version: 5, PeerAddr: "x:1", SessionID: 99, PrevWorker: 1})[1:],
			func(b []byte) error { _, err := DecodeRejoin(b); return err }},
	}
	for name, tc := range bodies {
		if err := tc.dec(tc.body); err != nil {
			t.Fatalf("%s: valid body rejected: %v", name, err)
		}
		for cut := 0; cut < len(tc.body); cut++ {
			if err := tc.dec(tc.body[:cut]); err == nil {
				t.Fatalf("%s: truncation at %d/%d decoded silently", name, cut, len(tc.body))
			}
		}
	}
}
