package wire

import (
	"testing"

	"dsteiner/internal/graph"
	rt "dsteiner/internal/runtime"
)

// FuzzDecodeFrame feeds arbitrary bytes through the frame splitter and
// every body decoder. The contract under fuzz: truncated or corrupt input
// must return an error — decoders may never panic and never over-read.
func FuzzDecodeFrame(f *testing.F) {
	// Seed corpus: one well-formed frame of every type, plus classic
	// corruptions.
	seeds := [][]byte{
		AppendFrame(nil, EncodeHello(nil, Hello{Version: Version, PeerAddr: "127.0.0.1:9"})),
		AppendFrame(nil, EncodeSetup(nil, Setup{
			Ranks: 4, NumVertices: 10, RankLo: []int64{0, 2, 4},
			PeerAddrs: []string{"a", "b"},
			Shards:    []ShardSlice{{Rank: 0, Owned: []graph.VID{0, 1}, Offsets: []int64{0, 1, 2}, Targets: []graph.VID{1, 0}, Weights: []uint32{5, 5}}},
		})),
		AppendFrame(nil, EncodeReady(nil, Ready{ShardBytes: 100, StateBytes: 50})),
		AppendFrame(nil, EncodeSolve(nil, Solve{QueryID: 1, Seeds: []graph.VID{1, 2, 3}})),
		AppendFrame(nil, EncodeSolveSpec(nil, SolveSpec{QueryID: 2, Mode: 1,
			Groups: [][]graph.VID{{1, 2}, {3, 4}}})),
		AppendFrame(nil, EncodeSolveSpec(nil, SolveSpec{QueryID: 3, Mode: 2,
			Seeds: []graph.VID{1, 2, 3}, Penalties: []int64{4, 0, 9}})),
		AppendFrame(nil, EncodeWorkerDone(nil, WorkerDone{QueryID: 1, TableLens: []int64{2}, HasResult: true,
			Result: SolveResult{Tree: []EdgeRec{{U: 1, V: 2, W: 3}}, Phases: []PhaseRec{{Name: "MST", Seconds: 0.1}}}}, 1)),
		AppendFrame(nil, EncodeWorkerDone(nil, WorkerDone{QueryID: 2, Batched: 7, Coalesced: 9,
			Net: NetStats{CompactionSavedBytes: 11, FlushesSmall: 1}}, Version)),
		AppendFrame(nil, AppendMsgBatch(nil, 2, []rt.Msg{{Target: 1, From: 2, Seed: 3, Dist: 4, Kind: 1}})),
		AppendFrame(nil, msgBatch2Seed()),
		AppendFrame(nil, EncodeColl(nil, Coll{Seq: 1, Op: OpGather, Payload: EncodeRankBlobs(nil, []RankBlob{{Rank: 1, Blob: []byte("b")}})})),
		AppendFrame(nil, EncodeCollReply(nil, CollReply{Seq: 1, Payload: EncodeBlobList(nil, [][]byte{{1}, {2}})})),
		AppendFrame(nil, EncodeFence(nil, Fence{Seq: 3})),
		AppendFrame(nil, EncodeTraverseBegin(nil, TraverseBegin{Seq: 4})),
		AppendFrame(nil, EncodeToken(nil, Token{Seq: 4, Q: -1, Black: true})),
		AppendFrame(nil, EncodeTraverseDone(nil, TraverseDone{Seq: 4})),
		AppendFrame(nil, EncodePeerHello(nil, PeerHello{Worker: 1})),
		AppendFrame(nil, EncodeFragmentConnect(nil, FragmentConnect{Seq: 5,
			Blobs: []rt.FragBlob{{Src: 0, Dest: -1, Blob: []byte{1, 2}}, {Src: 1, Dest: 3, Blob: []byte{9}}}})),
		AppendFrame(nil, EncodeFragmentRelabel(nil, FragmentRelabel{Seq: 5,
			Blobs: []rt.FragBlob{{Src: 2, Dest: 0, Blob: []byte{7, 7, 7}}}})),
		AppendFrame(nil, EncodeFragmentRoundSummary(nil, FragmentRoundSummary{Rounds: 2, Msgs: 40, Bytes: 512})),
		AppendFrame(nil, EncodeRejoin(nil, Rejoin{Version: Version, PeerAddr: "127.0.0.1:9",
			SessionID: 0xfeedface, PrevWorker: 2})),
		AppendFrame(nil, EncodeAbort(nil, Abort{Reason: "boom"})),
		AppendFrame(nil, []byte{FrameGoodbye}),
		{0, 0, 0, 0},
		{0xff, 0xff, 0xff, 0x7f, 1},
		nil,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rest := data
		for i := 0; i < 64; i++ { // bound work per input
			typ, body, next, err := DecodeFrame(rest)
			if err != nil {
				return
			}
			decodeBody(typ, body)
			rest = next
			if len(rest) == 0 {
				return
			}
		}
	})
}

// msgBatch2Seed builds one compacted v2 batch covering the mixed-kind path.
func msgBatch2Seed() []byte {
	b, _ := AppendMsgBatch2(nil, 3, []rt.Msg{
		{Target: 9, From: 2, Seed: 3, Dist: 4, Kind: 1},
		{Target: 9, From: 2, Seed: 5, Dist: 7, Kind: 1}, // dominated
		{Target: 1, From: 1, Seed: 1, Dist: 1, Kind: 0},
	})
	return b
}

// decodeBody dispatches a frame body to its decoder, discarding results:
// the fuzz property is only "no panic, bounded allocation".
func decodeBody(typ uint8, body []byte) {
	switch typ {
	case FrameHello:
		_, _ = DecodeHello(body)
	case FrameSetup:
		_, _ = DecodeSetup(body)
	case FrameReady:
		_, _ = DecodeReady(body)
	case FrameSolve:
		_, _ = DecodeSolve(body)
	case FrameSolveSpec:
		_, _ = DecodeSolveSpec(body)
	case FrameWorkerDone:
		_, _ = DecodeWorkerDone(body)
	case FrameMsgBatch:
		_, _, _ = DecodeMsgBatch(body, nil)
	case FrameMsgBatch2:
		_, _, _ = DecodeMsgBatch2(body, nil)
	case FrameColl:
		if c, err := DecodeColl(body); err == nil {
			switch c.Op {
			case OpGather:
				_, _ = DecodeRankBlobs(c.Payload)
			default:
				_, _ = DecodeInt64(c.Payload)
			}
		}
	case FrameCollReply:
		if c, err := DecodeCollReply(body); err == nil {
			_, _ = DecodeBlobList(c.Payload)
			_, _ = DecodeInt64(c.Payload)
		}
	case FrameFence:
		_, _ = DecodeFence(body)
	case FrameTraverseBegin:
		_, _ = DecodeTraverseBegin(body)
	case FrameToken:
		_, _ = DecodeToken(body)
	case FrameTraverseDone:
		_, _ = DecodeTraverseDone(body)
	case FramePeerHello:
		_, _ = DecodePeerHello(body)
	case FrameFragmentConnect:
		_, _ = DecodeFragmentConnect(body)
	case FrameFragmentRelabel:
		_, _ = DecodeFragmentRelabel(body)
	case FrameFragmentRoundSummary:
		_, _ = DecodeFragmentRoundSummary(body)
	case FrameRejoin:
		_, _ = DecodeRejoin(body)
	case FrameAbort:
		_, _ = DecodeAbort(body)
	}
}
