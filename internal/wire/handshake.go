package wire

import (
	"fmt"

	"dsteiner/internal/graph"
)

// Partition kinds on the wire (mirrors core.PartitionKind; frozen
// independently so the wire format does not drift with the solver enum).
const (
	PartBlock uint8 = 1 + iota
	PartHash
	PartArcBlock
)

// Hello is the first frame a worker sends after dialing the coordinator.
type Hello struct {
	// Version is the worker's wire-protocol version; the coordinator
	// rejects a mismatch before any session state is built.
	Version uint32
	// PeerAddr is the address of the worker's mesh listener, which other
	// workers dial for direct rank-to-rank message traffic.
	PeerAddr string
}

// EncodeHello appends a FrameHello payload.
func EncodeHello(dst []byte, h Hello) []byte {
	dst = append(dst, FrameHello)
	dst = AppendUvarint(dst, uint64(h.Version))
	dst = AppendString(dst, h.PeerAddr)
	return dst
}

// DecodeHello decodes a FrameHello body.
func DecodeHello(body []byte) (Hello, error) {
	d := NewDec(body)
	h := Hello{Version: uint32(d.Uvarint()), PeerAddr: d.String()}
	return h, d.finish()
}

// ShardSlice is one rank's slice of the partition.ShardPlan, shipped at
// session setup: everything the worker needs to rebuild the rank's
// graph.Shard (owned CSR slab + delegate stripes) and voronoi.StateSlab
// (owned rows + delegate mirror stripe) without ever holding the full CSR.
// The slices map one-to-one onto graph.Shard's internal slabs
// (graph.NewShardFromSlices).
type ShardSlice struct {
	Rank          int
	Owned         []graph.VID // owned vertices, strictly increasing
	Offsets       []int64     // len(Owned)+1 CSR row offsets into Targets
	Targets       []graph.VID
	Weights       []uint32
	StripeOff     []int64 // len(delegates)+1 offsets into StripeTargets
	StripeTargets []graph.VID
	StripeWeights []uint32
	Mirrored      []graph.VID // delegates this rank does not own (slab mirrors)
}

func appendShardSlice(dst []byte, s ShardSlice) []byte {
	dst = AppendUvarint(dst, uint64(s.Rank))
	dst = AppendVIDs(dst, s.Owned)
	dst = AppendInt64s(dst, s.Offsets)
	dst = AppendVIDs(dst, s.Targets)
	dst = AppendUint32s(dst, s.Weights)
	dst = AppendInt64s(dst, s.StripeOff)
	dst = AppendVIDs(dst, s.StripeTargets)
	dst = AppendUint32s(dst, s.StripeWeights)
	dst = AppendVIDs(dst, s.Mirrored)
	return dst
}

func decodeShardSlice(d *Dec) ShardSlice {
	return ShardSlice{
		Rank:          d.Int(),
		Owned:         d.VIDs(),
		Offsets:       d.Int64s(),
		Targets:       d.VIDs(),
		Weights:       d.Uint32s(),
		StripeOff:     d.Int64s(),
		StripeTargets: d.VIDs(),
		StripeWeights: d.Uint32s(),
		Mirrored:      d.VIDs(),
	}
}

// Setup is the session handshake the coordinator sends each worker once all
// workers have said Hello. It fixes the communicator geometry (P ranks over
// W workers, contiguous rank ranges), replays the runtime and solver
// configuration, encodes the vertex partition compactly (kind + bounds +
// delegate list — workers reconstruct partition.Partition locally), names
// every worker's mesh address, and carries this worker's shard slices.
type Setup struct {
	// Geometry.
	Ranks       int
	NumVertices int
	WorkerIndex int
	// RankLo has NumWorkers+1 entries; worker w hosts ranks
	// [RankLo[w], RankLo[w+1]).
	RankLo []int64
	// PeerAddrs lists every worker's mesh listener in worker order.
	PeerAddrs []string

	// Runtime configuration (runtime.Config).
	Queue       uint8
	BucketDelta uint64
	BatchSize   int

	// Solver configuration the per-rank body needs (core.Options subset).
	BSP               bool
	MST               uint8
	CollectiveChunk   int
	DelegateThreshold int

	// Partition reconstruction.
	PartitionKind uint8
	ArcBounds     []graph.VID // PartArcBlock only: len P+1 range bounds
	Delegates     []graph.VID // delegate vertices (empty = no delegation)

	// This worker's shard slices, one per hosted rank.
	Shards []ShardSlice

	// WireVersion pins the session's negotiated wire version: the minimum
	// Hello.Version across all workers (capped by the coordinator's own
	// Version and any operator limit). It is encoded as a trailing field
	// only when ≥ 2, so a v1 coordinator's Setup — which never has the
	// field — still decodes (absent ⇒ 1) and a v2 coordinator pinned to a
	// v1 session emits a byte-identical v1 Setup.
	WireVersion uint32

	// MSTMode is the coordinator's RESOLVED phase 3–5 merge strategy
	// (core.MSTMode: 1 = replicated, 2 = fragment — never 0/auto, the
	// coordinator resolves before encoding). A v4 trailing field; absent
	// (v1–v3 sessions) ⇒ 0, which workers treat as replicated.
	MSTMode uint8

	// SessionID identifies this handshake's session for fault recovery: a
	// worker that loses the session re-dials and presents it in a Rejoin
	// frame. A v5 trailing field; absent (v1–v4 sessions) ⇒ 0, meaning the
	// session predates rejoin and a disconnected worker cannot return.
	SessionID uint64

	// Frontier is the operator's REQUESTED bucket-drain mode (frozen bytes:
	// 0 = auto, 1 = serial, 2 = parallel — core.frontierToWire). Unlike
	// MSTMode it is shipped unresolved: auto depends on each worker's own
	// GOMAXPROCS, so every worker resolves it locally. FrontierWorkers is
	// the per-process frontier worker budget (0 = the worker's GOMAXPROCS),
	// split across that worker's hosted ranks. v6 trailing fields; absent
	// (v1–v5 sessions) ⇒ workers drain serially.
	Frontier        uint8
	FrontierWorkers uint64
}

// EncodeSetup appends a FrameSetup payload.
func EncodeSetup(dst []byte, s Setup) []byte {
	dst = append(dst, FrameSetup)
	dst = AppendUvarint(dst, uint64(s.Ranks))
	dst = AppendUvarint(dst, uint64(s.NumVertices))
	dst = AppendUvarint(dst, uint64(s.WorkerIndex))
	dst = AppendInt64s(dst, s.RankLo)
	dst = AppendUvarint(dst, uint64(len(s.PeerAddrs)))
	for _, a := range s.PeerAddrs {
		dst = AppendString(dst, a)
	}
	dst = append(dst, s.Queue)
	dst = AppendUvarint(dst, s.BucketDelta)
	dst = AppendUvarint(dst, uint64(s.BatchSize))
	dst = appendBool(dst, s.BSP)
	dst = append(dst, s.MST)
	dst = AppendUvarint(dst, uint64(s.CollectiveChunk))
	dst = AppendUvarint(dst, uint64(s.DelegateThreshold))
	dst = append(dst, s.PartitionKind)
	dst = AppendVIDs(dst, s.ArcBounds)
	dst = AppendVIDs(dst, s.Delegates)
	dst = AppendUvarint(dst, uint64(len(s.Shards)))
	for _, sh := range s.Shards {
		dst = appendShardSlice(dst, sh)
	}
	if s.WireVersion >= 2 {
		dst = AppendUvarint(dst, uint64(s.WireVersion))
	}
	if s.WireVersion >= 4 {
		dst = append(dst, s.MSTMode)
	}
	if s.WireVersion >= 5 {
		dst = AppendUvarint(dst, s.SessionID)
	}
	if s.WireVersion >= 6 {
		dst = append(dst, s.Frontier)
		dst = AppendUvarint(dst, s.FrontierWorkers)
	}
	return dst
}

// DecodeSetup decodes a FrameSetup body.
func DecodeSetup(body []byte) (Setup, error) {
	d := NewDec(body)
	var s Setup
	s.Ranks = d.Int()
	s.NumVertices = d.Int()
	s.WorkerIndex = d.Int()
	s.RankLo = d.Int64s()
	nAddrs := d.Int()
	if d.err == nil && nAddrs > d.Len() {
		return s, fmt.Errorf("%w: peer address count", ErrCorrupt)
	}
	for i := 0; i < nAddrs && d.err == nil; i++ {
		s.PeerAddrs = append(s.PeerAddrs, d.String())
	}
	s.Queue = d.Byte()
	s.BucketDelta = d.Uvarint()
	s.BatchSize = d.Int()
	s.BSP = d.Bool()
	s.MST = d.Byte()
	s.CollectiveChunk = d.Int()
	s.DelegateThreshold = d.Int()
	s.PartitionKind = d.Byte()
	s.ArcBounds = d.VIDs()
	s.Delegates = d.VIDs()
	nShards := d.Int()
	if d.err == nil && nShards > d.Len() {
		return s, fmt.Errorf("%w: shard slice count", ErrCorrupt)
	}
	for i := 0; i < nShards && d.err == nil; i++ {
		s.Shards = append(s.Shards, decodeShardSlice(d))
	}
	// Trailing negotiated version, absent in v1 Setups.
	if d.err == nil && d.Len() > 0 {
		s.WireVersion = uint32(d.Uvarint())
	} else {
		s.WireVersion = 1
	}
	// Trailing resolved MST mode, absent below v4 (⇒ 0 = replicated).
	if d.err == nil && d.Len() > 0 {
		s.MSTMode = d.Byte()
	}
	// Trailing session identity, absent below v5 (⇒ 0 = no rejoin).
	if d.err == nil && d.Len() > 0 {
		s.SessionID = d.Uvarint()
	}
	// Trailing frontier mode + worker budget, absent below v6 (⇒ serial).
	if d.err == nil && d.Len() > 0 {
		s.Frontier = d.Byte()
		s.FrontierWorkers = d.Uvarint()
	}
	return s, d.finish()
}

// Ready is the worker's handshake acknowledgement: shard and state slab
// rebuilt, mesh connections up, resident bytes reported for the
// coordinator's memory accounting (ShardStats / Fig. 8).
type Ready struct {
	ShardBytes int64
	StateBytes int64
}

// EncodeReady appends a FrameReady payload.
func EncodeReady(dst []byte, r Ready) []byte {
	dst = append(dst, FrameReady)
	dst = AppendVarint(dst, r.ShardBytes)
	dst = AppendVarint(dst, r.StateBytes)
	return dst
}

// DecodeReady decodes a FrameReady body.
func DecodeReady(body []byte) (Ready, error) {
	d := NewDec(body)
	r := Ready{ShardBytes: d.Varint(), StateBytes: d.Varint()}
	return r, d.finish()
}

// PeerHello opens a mesh connection between two workers: the dialing
// worker names itself so the acceptor can index the connection.
type PeerHello struct {
	Worker int
}

// EncodePeerHello appends a FramePeerHello payload.
func EncodePeerHello(dst []byte, p PeerHello) []byte {
	dst = append(dst, FramePeerHello)
	return AppendUvarint(dst, uint64(p.Worker))
}

// DecodePeerHello decodes a FramePeerHello body.
func DecodePeerHello(body []byte) (PeerHello, error) {
	d := NewDec(body)
	p := PeerHello{Worker: d.Int()}
	return p, d.finish()
}

// Rejoin is the first frame a worker sends when re-dialing a coordinator
// after losing an established session (v5+): like Hello it advertises the
// worker's wire version and mesh listener address, and additionally proves
// session membership with the SessionID from its Setup. PrevWorker is the
// index the worker held before the fault — advisory only; the coordinator
// reassigns indices in accept order when it heals the session.
type Rejoin struct {
	Version    uint32
	PeerAddr   string
	SessionID  uint64
	PrevWorker int64
}

// EncodeRejoin appends a FrameRejoin payload.
func EncodeRejoin(dst []byte, r Rejoin) []byte {
	dst = append(dst, FrameRejoin)
	dst = AppendUvarint(dst, uint64(r.Version))
	dst = AppendString(dst, r.PeerAddr)
	dst = AppendUvarint(dst, r.SessionID)
	dst = AppendVarint(dst, r.PrevWorker)
	return dst
}

// DecodeRejoin decodes a FrameRejoin body.
func DecodeRejoin(body []byte) (Rejoin, error) {
	d := NewDec(body)
	r := Rejoin{
		Version:    uint32(d.Uvarint()),
		PeerAddr:   d.String(),
		SessionID:  d.Uvarint(),
		PrevWorker: d.Varint(),
	}
	return r, d.finish()
}

// Abort carries a session-poisoning reason in either direction.
type Abort struct {
	Reason string
}

// EncodeAbort appends a FrameAbort payload.
func EncodeAbort(dst []byte, a Abort) []byte {
	dst = append(dst, FrameAbort)
	return AppendString(dst, a.Reason)
}

// DecodeAbort decodes a FrameAbort body.
func DecodeAbort(body []byte) (Abort, error) {
	d := NewDec(body)
	a := Abort{Reason: d.String()}
	return a, d.finish()
}

func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}
