package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"dsteiner/internal/graph"
)

// Solve is the coordinator's per-query broadcast: run the six solver phases
// for the canonical (validated, sorted, duplicate-free) seed set.
type Solve struct {
	QueryID uint64
	Seeds   []graph.VID
}

// EncodeSolve appends a FrameSolve payload.
func EncodeSolve(dst []byte, s Solve) []byte {
	dst = append(dst, FrameSolve)
	dst = AppendUvarint(dst, s.QueryID)
	return AppendVIDs(dst, s.Seeds)
}

// DecodeSolve decodes a FrameSolve body.
func DecodeSolve(body []byte) (Solve, error) {
	d := NewDec(body)
	s := Solve{QueryID: d.Uvarint(), Seeds: d.VIDs()}
	return s, d.finish()
}

// SolveSpec is the v3 mode-carrying query broadcast (core.QuerySpec on the
// wire): Mode 0 is a tree query over Seeds, mode 1 a Steiner Forest query
// over Groups, mode 2 a prize-collecting query over Seeds with index-
// parallel Penalties. The coordinator ships the canonical form; workers
// flatten it deterministically, so dense terminal indices agree fleet-wide.
type SolveSpec struct {
	QueryID   uint64
	Mode      uint8
	Seeds     []graph.VID
	Penalties []int64
	Groups    [][]graph.VID
}

// EncodeSolveSpec appends a FrameSolveSpec payload (wire v3+ sessions only).
func EncodeSolveSpec(dst []byte, s SolveSpec) []byte {
	dst = append(dst, FrameSolveSpec)
	dst = AppendUvarint(dst, s.QueryID)
	dst = append(dst, s.Mode)
	dst = AppendVIDs(dst, s.Seeds)
	dst = AppendInt64s(dst, s.Penalties)
	dst = AppendUvarint(dst, uint64(len(s.Groups)))
	for _, g := range s.Groups {
		dst = AppendVIDs(dst, g)
	}
	return dst
}

// DecodeSolveSpec decodes a FrameSolveSpec body.
func DecodeSolveSpec(body []byte) (SolveSpec, error) {
	d := NewDec(body)
	s := SolveSpec{
		QueryID:   d.Uvarint(),
		Mode:      d.Byte(),
		Seeds:     d.VIDs(),
		Penalties: d.Int64s(),
	}
	nGroups := d.count(1, "spec groups")
	for i := 0; i < nGroups && d.err == nil; i++ {
		s.Groups = append(s.Groups, d.VIDs())
	}
	return s, d.finish()
}

// EdgeRec is one Steiner-tree edge on the wire.
type EdgeRec struct {
	U, V graph.VID
	W    uint32
}

// PhaseRec is one phase's statistics on the wire (core.PhaseStat).
type PhaseRec struct {
	Name        string
	Seconds     float64
	Sent        int64
	Processed   int64
	MaxRankWork int64
}

// SolveResult is the wire form of the solver-output parts of core.Result,
// produced on the worker hosting rank 0 and shipped back inside
// WorkerDone. Memory accounting and validation happen coordinator-side.
type SolveResult struct {
	Tree             []EdgeRec
	TotalDistance    int64
	Phases           []PhaseRec
	DistGraphEdges   int
	MSTRounds        int
	CollectiveChunks int
}

func appendSolveResult(dst []byte, r SolveResult) []byte {
	dst = AppendUvarint(dst, uint64(len(r.Tree)))
	for _, e := range r.Tree {
		dst = AppendUvarint(dst, uint64(uint32(e.U)))
		dst = AppendUvarint(dst, uint64(uint32(e.V)))
		dst = AppendUvarint(dst, uint64(e.W))
	}
	dst = AppendVarint(dst, r.TotalDistance)
	dst = AppendUvarint(dst, uint64(len(r.Phases)))
	for _, p := range r.Phases {
		dst = AppendString(dst, p.Name)
		dst = appendFloat64(dst, p.Seconds)
		dst = AppendVarint(dst, p.Sent)
		dst = AppendVarint(dst, p.Processed)
		dst = AppendVarint(dst, p.MaxRankWork)
	}
	dst = AppendUvarint(dst, uint64(r.DistGraphEdges))
	dst = AppendUvarint(dst, uint64(r.MSTRounds))
	dst = AppendUvarint(dst, uint64(r.CollectiveChunks))
	return dst
}

func decodeSolveResult(d *Dec) SolveResult {
	var r SolveResult
	nTree := d.count(3, "tree edges") // ≥ 3 bytes per edge
	for i := 0; i < nTree && d.err == nil; i++ {
		r.Tree = append(r.Tree, EdgeRec{
			U: graph.VID(int32(d.Uvarint())),
			V: graph.VID(int32(d.Uvarint())),
			W: uint32(d.Uvarint()),
		})
	}
	r.TotalDistance = d.Varint()
	nPhases := d.Int()
	if d.err == nil && nPhases > d.Len() {
		d.err = fmt.Errorf("%w: phase count", ErrCorrupt)
	}
	for i := 0; i < nPhases && d.err == nil; i++ {
		r.Phases = append(r.Phases, PhaseRec{
			Name:        d.String(),
			Seconds:     d.Float64(),
			Sent:        d.Varint(),
			Processed:   d.Varint(),
			MaxRankWork: d.Varint(),
		})
	}
	r.DistGraphEdges = d.Int()
	r.MSTRounds = d.Int()
	r.CollectiveChunks = d.Int()
	return r
}

// NetStats are a transport's cumulative traffic counters; WorkerDone
// carries per-query deltas so the coordinator can attribute wire cost to
// individual queries.
type NetStats struct {
	FramesOut int64
	FramesIn  int64
	BytesOut  int64
	BytesIn   int64
	EncodeNs  int64
	DecodeNs  int64

	// v2 additions: compacted-batch savings and the peer flush-size
	// histogram. These ride in a version-gated tail of WorkerDone, never
	// in the frozen v1 NetStats block.
	CompactionSavedBytes int64
	FlushesSmall         int64 // flushes < 4 KiB
	FlushesMid           int64 // flushes in [4 KiB, 256 KiB)
	FlushesLarge         int64 // flushes ≥ 256 KiB
}

// Add accumulates o into s.
func (s *NetStats) Add(o NetStats) {
	s.FramesOut += o.FramesOut
	s.FramesIn += o.FramesIn
	s.BytesOut += o.BytesOut
	s.BytesIn += o.BytesIn
	s.EncodeNs += o.EncodeNs
	s.DecodeNs += o.DecodeNs
	s.CompactionSavedBytes += o.CompactionSavedBytes
	s.FlushesSmall += o.FlushesSmall
	s.FlushesMid += o.FlushesMid
	s.FlushesLarge += o.FlushesLarge
}

// Sub returns s − o (for per-query deltas from cumulative counters).
func (s NetStats) Sub(o NetStats) NetStats {
	return NetStats{
		FramesOut:            s.FramesOut - o.FramesOut,
		FramesIn:             s.FramesIn - o.FramesIn,
		BytesOut:             s.BytesOut - o.BytesOut,
		BytesIn:              s.BytesIn - o.BytesIn,
		EncodeNs:             s.EncodeNs - o.EncodeNs,
		DecodeNs:             s.DecodeNs - o.DecodeNs,
		CompactionSavedBytes: s.CompactionSavedBytes - o.CompactionSavedBytes,
		FlushesSmall:         s.FlushesSmall - o.FlushesSmall,
		FlushesMid:           s.FlushesMid - o.FlushesMid,
		FlushesLarge:         s.FlushesLarge - o.FlushesLarge,
	}
}

func appendNetStats(dst []byte, s NetStats) []byte {
	dst = AppendVarint(dst, s.FramesOut)
	dst = AppendVarint(dst, s.FramesIn)
	dst = AppendVarint(dst, s.BytesOut)
	dst = AppendVarint(dst, s.BytesIn)
	dst = AppendVarint(dst, s.EncodeNs)
	dst = AppendVarint(dst, s.DecodeNs)
	return dst
}

func decodeNetStats(d *Dec) NetStats {
	return NetStats{
		FramesOut: d.Varint(),
		FramesIn:  d.Varint(),
		BytesOut:  d.Varint(),
		BytesIn:   d.Varint(),
		EncodeNs:  d.Varint(),
		DecodeNs:  d.Varint(),
	}
}

// WorkerDone closes one query on one worker: the per-hosted-rank cross-cell
// table sizes (coordinator-side memory accounting), message/suppression
// counter deltas, the transport traffic delta, and — from the worker
// hosting rank 0 — the encoded Result. Err carries rank 0's solve error
// (disconnected seeds), empty on success.
type WorkerDone struct {
	QueryID    uint64
	Err        string
	TableLens  []int64 // len(E_N table) per hosted rank, rank order
	Sent       int64   // visitor messages sent by this process
	Processed  int64   // visit() calls on this process
	Suppressed int64   // delegate broadcasts suppressed by the changed-since filter
	Batched    int64   // delegate broadcasts released by superstep outbox flushes
	Coalesced  int64   // delegate offers absorbed into a staged outbox entry
	Net        NetStats
	HasResult  bool
	Result     SolveResult
	// Skipped lists the terminals a prize-mode query paid to leave out
	// (set by the worker hosting rank 0). It rides in the v3 tail; on
	// v1/v2 sessions — which only ever run tree queries — it is always
	// empty and never encoded.
	Skipped []graph.VID
	// v4 tail (set by the worker hosting rank 0): whether phase 4 ran the
	// fragment merge, and the query's phase-3/4 cross-table wire bytes and
	// fragment-exchange record count.
	MSTFragment     bool
	CrossTableBytes int64
	FragmentMsgs    int64
	// v6 tail: this worker's parallel-frontier deltas for the query —
	// resolved per-rank worker count (0 when the worker drained serially;
	// the coordinator takes the fleet maximum), buckets drained on the
	// pool, messages relaxed there, the largest per-worker chunk
	// (session high-water mark), lex-min merge conflicts, and the pool's
	// busy/wall nanoseconds.
	FrontierWorkers   int64
	FrontierDrains    int64
	FrontierMsgs      int64
	FrontierMaxChunk  int64
	FrontierConflicts int64
	FrontierBusyNs    int64
	FrontierWallNs    int64
}

// EncodeWorkerDone appends a FrameWorkerDone payload. wireVer is the
// session's negotiated version: on v1 sessions the frame stops after the
// Result exactly as v1 coordinators expect; on v2 sessions a tail carries
// the outbox counters and the NetStats v2 additions. The tail is
// decode-tolerant (absent ⇒ zero), mirroring Setup.WireVersion.
func EncodeWorkerDone(dst []byte, w WorkerDone, wireVer uint32) []byte {
	dst = append(dst, FrameWorkerDone)
	dst = AppendUvarint(dst, w.QueryID)
	dst = AppendString(dst, w.Err)
	dst = AppendInt64s(dst, w.TableLens)
	dst = AppendVarint(dst, w.Sent)
	dst = AppendVarint(dst, w.Processed)
	dst = AppendVarint(dst, w.Suppressed)
	dst = appendNetStats(dst, w.Net)
	dst = appendBool(dst, w.HasResult)
	if w.HasResult {
		dst = appendSolveResult(dst, w.Result)
	}
	if wireVer >= 2 {
		dst = AppendVarint(dst, w.Batched)
		dst = AppendVarint(dst, w.Coalesced)
		dst = AppendVarint(dst, w.Net.CompactionSavedBytes)
		dst = AppendVarint(dst, w.Net.FlushesSmall)
		dst = AppendVarint(dst, w.Net.FlushesMid)
		dst = AppendVarint(dst, w.Net.FlushesLarge)
	}
	if wireVer >= 3 {
		dst = AppendVIDs(dst, w.Skipped)
	}
	if wireVer >= 4 {
		dst = appendBool(dst, w.MSTFragment)
		dst = AppendVarint(dst, w.CrossTableBytes)
		dst = AppendVarint(dst, w.FragmentMsgs)
	}
	if wireVer >= 6 {
		dst = AppendVarint(dst, w.FrontierWorkers)
		dst = AppendVarint(dst, w.FrontierDrains)
		dst = AppendVarint(dst, w.FrontierMsgs)
		dst = AppendVarint(dst, w.FrontierMaxChunk)
		dst = AppendVarint(dst, w.FrontierConflicts)
		dst = AppendVarint(dst, w.FrontierBusyNs)
		dst = AppendVarint(dst, w.FrontierWallNs)
	}
	return dst
}

// DecodeWorkerDone decodes a FrameWorkerDone body.
func DecodeWorkerDone(body []byte) (WorkerDone, error) {
	d := NewDec(body)
	var w WorkerDone
	w.QueryID = d.Uvarint()
	w.Err = d.String()
	w.TableLens = d.Int64s()
	w.Sent = d.Varint()
	w.Processed = d.Varint()
	w.Suppressed = d.Varint()
	w.Net = decodeNetStats(d)
	w.HasResult = d.Bool()
	if w.HasResult {
		w.Result = decodeSolveResult(d)
	}
	// v2 tail, absent on v1 sessions.
	if d.err == nil && d.Len() > 0 {
		w.Batched = d.Varint()
		w.Coalesced = d.Varint()
		w.Net.CompactionSavedBytes = d.Varint()
		w.Net.FlushesSmall = d.Varint()
		w.Net.FlushesMid = d.Varint()
		w.Net.FlushesLarge = d.Varint()
	}
	// v3 tail, absent on v1/v2 sessions.
	if d.err == nil && d.Len() > 0 {
		w.Skipped = d.VIDs()
	}
	// v4 tail, absent on v1–v3 sessions.
	if d.err == nil && d.Len() > 0 {
		w.MSTFragment = d.Bool()
		w.CrossTableBytes = d.Varint()
		w.FragmentMsgs = d.Varint()
	}
	// v6 tail, absent on v1–v5 sessions.
	if d.err == nil && d.Len() > 0 {
		w.FrontierWorkers = d.Varint()
		w.FrontierDrains = d.Varint()
		w.FrontierMsgs = d.Varint()
		w.FrontierMaxChunk = d.Varint()
		w.FrontierConflicts = d.Varint()
		w.FrontierBusyNs = d.Varint()
		w.FrontierWallNs = d.Varint()
	}
	return w, d.finish()
}

// EncodeEdges encodes a []graph.Edge blob for the final tree gather
// (rank-local tree fragments collected via the OpGather collective).
func EncodeEdges(dst []byte, edges []graph.Edge) []byte {
	dst = AppendUvarint(dst, uint64(len(edges)))
	for _, e := range edges {
		dst = AppendUvarint(dst, uint64(uint32(e.U)))
		dst = AppendUvarint(dst, uint64(uint32(e.V)))
		dst = AppendUvarint(dst, uint64(e.W))
	}
	return dst
}

// DecodeEdges decodes an EncodeEdges blob, appending to out.
func DecodeEdges(blob []byte, out []graph.Edge) ([]graph.Edge, error) {
	d := NewDec(blob)
	n := d.count(3, "edge blob")
	for i := 0; i < n && d.err == nil; i++ {
		out = append(out, graph.Edge{
			U: graph.VID(int32(d.Uvarint())),
			V: graph.VID(int32(d.Uvarint())),
			W: uint32(d.Uvarint()),
		})
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return out, nil
}

func appendFloat64(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}
