// Package wire is the rank transport's binary codec: the versioned,
// length-prefixed frame format that crosses process boundaries when the
// solver's simulated MPI ranks become real processes (cmd/rankd driven by a
// steinersvc/core coordinator). Everything a traversal exchanges in-process
// has a wire form here:
//
//   - visitor-message batches (runtime.Msg, the paper's §IV message plane),
//   - collective contributions and results (barrier / allreduce / gather —
//     the MPI_Allreduce/MPI_Allgatherv equivalents of Alg. 5),
//   - termination-detection tokens (a Safra-style counter+color token that
//     replaces the shared-memory pending counter for asynchronous
//     traversals),
//   - the session-setup handshake: each worker receives its slice of the
//     partition.ShardPlan — owned vertex lists, CSR slab rows and delegate
//     stripes — plus the graph metadata needed to rebuild its graph.Shard
//     and voronoi.StateSlab locally, never materializing the full CSR,
//   - solve requests and encoded Results flowing back to the coordinator.
//
// The codec is deliberately dependency-free and defensive: every decoder
// returns an error on truncated or corrupt input (fuzzed by
// FuzzDecodeFrame), never panics, and bounds element counts by the bytes
// actually present so hostile lengths cannot force huge allocations.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"dsteiner/internal/graph"
	rt "dsteiner/internal/runtime"
)

// Version is the wire-protocol version. A coordinator rejects workers whose
// Hello carries a different version: frames are not cross-version
// compatible.
const Version uint32 = 1

// MaxFrame bounds a frame's payload so a corrupt length prefix cannot make
// a reader allocate unbounded memory. Handshake frames carry whole shard
// slices, so the bound is generous.
const MaxFrame = 1 << 30

// Frame types. The first payload byte of every frame identifies it.
const (
	// FrameHello is worker → coordinator: protocol version + the address
	// the worker's peer-mesh listener accepts on.
	FrameHello uint8 = 1 + iota
	// FrameSetup is coordinator → worker: the session handshake (Setup).
	FrameSetup
	// FrameReady is worker → coordinator: shard + slab built, peer mesh
	// established, resident byte counts reported.
	FrameReady
	// FrameSolve is coordinator → worker: run one query (canonical seeds).
	FrameSolve
	// FrameWorkerDone is worker → coordinator: query finished on this
	// worker's ranks (per-rank table sizes, counter deltas, and — from the
	// worker hosting rank 0 — the encoded Result).
	FrameWorkerDone
	// FrameMsgBatch is worker → worker: one coalesced visitor-message
	// batch for a remote rank's mailbox.
	FrameMsgBatch
	// FrameColl is worker → coordinator: one process's contribution to
	// collective #Seq.
	FrameColl
	// FrameCollReply is coordinator → worker: collective #Seq's result.
	FrameCollReply
	// FrameFence is worker → worker: a delivery fence — ordered after all
	// message frames the sender issued before entering collective #Seq.
	FrameFence
	// FrameTraverseBegin is worker → coordinator: an asynchronous
	// traversal started; begin circulating termination tokens.
	FrameTraverseBegin
	// FrameToken carries the Safra-style termination token both ways:
	// coordinator → worker to probe, worker → coordinator with the
	// worker's in-flight counter folded in and its color merged.
	FrameToken
	// FrameTraverseDone is coordinator → worker: traversal #Seq reached
	// global quiescence.
	FrameTraverseDone
	// FramePeerHello opens a worker-to-worker mesh connection: it names
	// the dialing worker so the acceptor can index the connection.
	FramePeerHello
	// FrameAbort poisons the session in either direction (rank panic,
	// connection loss); carries a human-readable reason.
	FrameAbort
	// FrameGoodbye is coordinator → worker: session over, exit cleanly.
	FrameGoodbye
)

// Collective operations carried by FrameColl. They mirror
// runtime.CollOp one-to-one; the duplication keeps the wire format frozen
// even if the runtime enum grows.
const (
	OpBarrier uint8 = 1 + iota
	OpSumInt64
	OpMinInt64
	OpMaxInt64
	OpGather
)

var (
	// ErrTruncated reports a frame or field cut short.
	ErrTruncated = errors.New("wire: truncated input")
	// ErrCorrupt reports a structurally invalid frame.
	ErrCorrupt = errors.New("wire: corrupt input")
)

// WriteFrame writes one length-prefixed frame. payload must already start
// with the frame-type byte.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) == 0 {
		return fmt.Errorf("%w: empty frame payload", ErrCorrupt)
	}
	if len(payload) > MaxFrame {
		return fmt.Errorf("%w: frame payload %d exceeds limit", ErrCorrupt, len(payload))
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// AppendFrame appends the length-prefixed frame to dst (for write
// coalescing: many frames per syscall).
func AppendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...)
}

// ReadFrame reads one frame payload (type byte first), reusing buf when it
// has capacity. io.EOF is returned untouched on a clean end-of-stream;
// a stream cut mid-frame yields ErrTruncated.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: frame header: %v", ErrTruncated, err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame {
		return nil, fmt.Errorf("%w: frame length %d", ErrCorrupt, n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("%w: frame body: %v", ErrTruncated, err)
	}
	return buf, nil
}

// DecodeFrame splits a buffered byte stream into (type, body, rest). It is
// the pure-parsing form of ReadFrame used by tests and the fuzz target.
func DecodeFrame(b []byte) (typ uint8, body, rest []byte, err error) {
	if len(b) < 4 {
		return 0, nil, nil, fmt.Errorf("%w: frame header", ErrTruncated)
	}
	n := binary.LittleEndian.Uint32(b)
	if n == 0 || n > MaxFrame {
		return 0, nil, nil, fmt.Errorf("%w: frame length %d", ErrCorrupt, n)
	}
	if uint64(len(b)-4) < uint64(n) {
		return 0, nil, nil, fmt.Errorf("%w: frame body", ErrTruncated)
	}
	payload := b[4 : 4+n]
	return payload[0], payload[1:], b[4+n:], nil
}

// ---------------------------------------------------------------------------
// Primitive append/decode helpers.

// AppendUvarint appends x in unsigned LEB128.
func AppendUvarint(dst []byte, x uint64) []byte { return binary.AppendUvarint(dst, x) }

// AppendVarint appends x zigzag-encoded.
func AppendVarint(dst []byte, x int64) []byte { return binary.AppendVarint(dst, x) }

// AppendString appends a length-prefixed string.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendBytes appends a length-prefixed byte slice.
func AppendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// AppendVIDs appends a length-prefixed []graph.VID as raw little-endian
// 32-bit values (bulk arrays skip varint: shard slices dominate handshake
// size and are effectively random, where varint only adds branches).
func AppendVIDs(dst []byte, vs []graph.VID) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vs)))
	for _, v := range vs {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
	}
	return dst
}

// AppendUint32s appends a length-prefixed []uint32 raw little-endian.
func AppendUint32s(dst []byte, vs []uint32) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vs)))
	for _, v := range vs {
		dst = binary.LittleEndian.AppendUint32(dst, v)
	}
	return dst
}

// AppendInt64s appends a length-prefixed []int64 raw little-endian.
func AppendInt64s(dst []byte, vs []int64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vs)))
	for _, v := range vs {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
	}
	return dst
}

// Dec is a defensive decoder over one frame body. The first failed read
// poisons it; check Err (or use the per-struct Decode funcs, which do).
type Dec struct {
	b   []byte
	err error
}

// NewDec returns a decoder over b.
func NewDec(b []byte) *Dec { return &Dec{b: b} }

// Err returns the first decode error, if any.
func (d *Dec) Err() error { return d.err }

// Len returns the number of undecoded bytes.
func (d *Dec) Len() int { return len(d.b) }

func (d *Dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrTruncated, what)
	}
}

// Uvarint decodes an unsigned LEB128 value.
func (d *Dec) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	x, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.b = d.b[n:]
	return x
}

// Varint decodes a zigzag value.
func (d *Dec) Varint() int64 {
	if d.err != nil {
		return 0
	}
	x, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.b = d.b[n:]
	return x
}

// Int decodes a uvarint that must fit a non-negative int.
func (d *Dec) Int() int {
	x := d.Uvarint()
	if d.err == nil && x > math.MaxInt32 {
		d.err = fmt.Errorf("%w: int field %d out of range", ErrCorrupt, x)
	}
	return int(x)
}

// Byte decodes one byte.
func (d *Dec) Byte() uint8 {
	if d.err != nil {
		return 0
	}
	if len(d.b) == 0 {
		d.fail("byte")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

// Bool decodes a 0/1 byte.
func (d *Dec) Bool() bool { return d.Byte() != 0 }

// Float64 decodes an IEEE-754 bit pattern.
func (d *Dec) Float64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.fail("float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}

// String decodes a length-prefixed string.
func (d *Dec) String() string {
	n := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.b)) < n {
		d.fail("string body")
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

// Bytes decodes a length-prefixed byte slice. The result aliases the frame
// buffer; copy it if it outlives the frame.
func (d *Dec) Bytes() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if uint64(len(d.b)) < n {
		d.fail("bytes body")
		return nil
	}
	b := d.b[:n:n]
	d.b = d.b[n:]
	return b
}

// count validates a bulk-array length against the bytes present. The
// division form cannot overflow, so a hostile length can never bypass the
// check and reach an allocation.
func (d *Dec) count(elemBytes int, what string) int {
	n := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.b))/uint64(elemBytes) {
		d.fail(what)
		return 0
	}
	return int(n)
}

// VIDs decodes a length-prefixed []graph.VID.
func (d *Dec) VIDs() []graph.VID {
	n := d.count(4, "vid array")
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]graph.VID, n)
	for i := range out {
		out[i] = graph.VID(int32(binary.LittleEndian.Uint32(d.b[4*i:])))
	}
	d.b = d.b[4*n:]
	return out
}

// Uint32s decodes a length-prefixed []uint32.
func (d *Dec) Uint32s() []uint32 {
	n := d.count(4, "uint32 array")
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(d.b[4*i:])
	}
	d.b = d.b[4*n:]
	return out
}

// Int64s decodes a length-prefixed []int64.
func (d *Dec) Int64s() []int64 {
	n := d.count(8, "int64 array")
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(d.b[8*i:]))
	}
	d.b = d.b[8*n:]
	return out
}

// finish returns d.err, upgraded to ErrCorrupt when undecoded bytes remain:
// a frame must be consumed exactly.
func (d *Dec) finish() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.b))
	}
	return nil
}

// ---------------------------------------------------------------------------
// Visitor-message batches.

// AppendMsgBatch appends a FrameMsgBatch payload: the batch of visitor
// messages bound for remote rank dest. Fields are varint-packed — Target,
// From and Seed are small non-negative vertex IDs and Dist is a bounded
// distance, so typical messages shrink well below their 21-byte in-memory
// size.
func AppendMsgBatch(dst []byte, dest int, msgs []rt.Msg) []byte {
	dst = append(dst, FrameMsgBatch)
	dst = binary.AppendUvarint(dst, uint64(dest))
	dst = binary.AppendUvarint(dst, uint64(len(msgs)))
	for _, m := range msgs {
		dst = binary.AppendUvarint(dst, uint64(uint32(m.Target)))
		dst = binary.AppendUvarint(dst, uint64(uint32(m.From)))
		dst = binary.AppendUvarint(dst, uint64(uint32(m.Seed)))
		dst = binary.AppendUvarint(dst, uint64(m.Dist))
		dst = append(dst, m.Kind)
	}
	return dst
}

// DecodeMsgBatch decodes a FrameMsgBatch body into buf (reused when it has
// capacity), returning the destination rank and the batch.
func DecodeMsgBatch(body []byte, buf []rt.Msg) (dest int, msgs []rt.Msg, err error) {
	d := NewDec(body)
	dest = d.Int()
	n := d.count(5, "msg batch") // ≥ 5 bytes per message (4 varints + kind)
	if d.err != nil {
		return 0, nil, d.err
	}
	if cap(buf) < n {
		buf = make([]rt.Msg, 0, n)
	}
	msgs = buf[:0]
	for i := 0; i < n; i++ {
		var m rt.Msg
		m.Target = graph.VID(int32(d.Uvarint()))
		m.From = graph.VID(int32(d.Uvarint()))
		m.Seed = graph.VID(int32(d.Uvarint()))
		m.Dist = graph.Dist(d.Uvarint())
		m.Kind = d.Byte()
		if d.err != nil {
			return 0, nil, d.err
		}
		msgs = append(msgs, m)
	}
	if err := d.finish(); err != nil {
		return 0, nil, err
	}
	return dest, msgs, nil
}
