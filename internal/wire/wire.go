// Package wire is the rank transport's binary codec: the versioned,
// length-prefixed frame format that crosses process boundaries when the
// solver's simulated MPI ranks become real processes (cmd/rankd driven by a
// steinersvc/core coordinator). Everything a traversal exchanges in-process
// has a wire form here:
//
//   - visitor-message batches (runtime.Msg, the paper's §IV message plane),
//   - collective contributions and results (barrier / allreduce / gather —
//     the MPI_Allreduce/MPI_Allgatherv equivalents of Alg. 5),
//   - termination-detection tokens (a Safra-style counter+color token that
//     replaces the shared-memory pending counter for asynchronous
//     traversals),
//   - the session-setup handshake: each worker receives its slice of the
//     partition.ShardPlan — owned vertex lists, CSR slab rows and delegate
//     stripes — plus the graph metadata needed to rebuild its graph.Shard
//     and voronoi.StateSlab locally, never materializing the full CSR,
//   - solve requests and encoded Results flowing back to the coordinator.
//
// The codec is deliberately dependency-free and defensive: every decoder
// returns an error on truncated or corrupt input (fuzzed by
// FuzzDecodeFrame), never panics, and bounds element counts by the bytes
// actually present so hostile lengths cannot force huge allocations.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"dsteiner/internal/graph"
	rt "dsteiner/internal/runtime"
)

// Version is the highest wire-protocol version this build speaks. A
// worker's Hello advertises its own Version; the coordinator accepts any
// worker in [MinVersion, Version] and pins the session to the minimum
// advertised version, shipped back in Setup.WireVersion (absent = 1).
// Versioned behavior: v1 sessions use FrameMsgBatch, v2 sessions the
// compacted FrameMsgBatch2 (both decoders stay live for rollback); v3
// sessions additionally accept FrameSolveSpec — the mode-carrying query
// frame for forest and prize-collecting solves — and return the skipped
// terminal set in the WorkerDone tail; v4 sessions add the fragment-merge
// MST frames (FrameFragmentConnect / FrameFragmentRelabel /
// FrameFragmentRoundSummary), the Setup MSTMode byte, and the fragment
// counters in the WorkerDone tail; v5 sessions add fault recovery — the
// Setup tail carries the coordinator's SessionID and a worker that lost its
// connection re-handshakes with FrameRejoin (proving session membership)
// instead of a fresh Hello; v6 sessions add the parallel frontier — the
// Setup tail carries the requested frontier mode and worker budget (each
// worker resolves auto against its own GOMAXPROCS) and the WorkerDone tail
// the per-query frontier counters. Tree-mode queries use FrameSolve at
// every version, so v1/v2-pinned sessions keep serving them byte-identically.
const Version uint32 = 6

// MinVersion is the oldest wire-protocol version this build interoperates
// with.
const MinVersion uint32 = 1

// MaxFrame bounds a frame's payload so a corrupt length prefix cannot make
// a reader allocate unbounded memory. Handshake frames carry whole shard
// slices, so the bound is generous.
const MaxFrame = 1 << 30

// Frame types. The first payload byte of every frame identifies it.
const (
	// FrameHello is worker → coordinator: protocol version + the address
	// the worker's peer-mesh listener accepts on.
	FrameHello uint8 = 1 + iota
	// FrameSetup is coordinator → worker: the session handshake (Setup).
	FrameSetup
	// FrameReady is worker → coordinator: shard + slab built, peer mesh
	// established, resident byte counts reported.
	FrameReady
	// FrameSolve is coordinator → worker: run one query (canonical seeds).
	FrameSolve
	// FrameWorkerDone is worker → coordinator: query finished on this
	// worker's ranks (per-rank table sizes, counter deltas, and — from the
	// worker hosting rank 0 — the encoded Result).
	FrameWorkerDone
	// FrameMsgBatch is worker → worker: one coalesced visitor-message
	// batch for a remote rank's mailbox.
	FrameMsgBatch
	// FrameColl is worker → coordinator: one process's contribution to
	// collective #Seq.
	FrameColl
	// FrameCollReply is coordinator → worker: collective #Seq's result.
	FrameCollReply
	// FrameFence is worker → worker: a delivery fence — ordered after all
	// message frames the sender issued before entering collective #Seq.
	FrameFence
	// FrameTraverseBegin is worker → coordinator: an asynchronous
	// traversal started; begin circulating termination tokens.
	FrameTraverseBegin
	// FrameToken carries the Safra-style termination token both ways:
	// coordinator → worker to probe, worker → coordinator with the
	// worker's in-flight counter folded in and its color merged.
	FrameToken
	// FrameTraverseDone is coordinator → worker: traversal #Seq reached
	// global quiescence.
	FrameTraverseDone
	// FramePeerHello opens a worker-to-worker mesh connection: it names
	// the dialing worker so the acceptor can index the connection.
	FramePeerHello
	// FrameAbort poisons the session in either direction (rank panic,
	// connection loss); carries a human-readable reason.
	FrameAbort
	// FrameGoodbye is coordinator → worker: session over, exit cleanly.
	FrameGoodbye
	// FrameMsgBatch2 is the version-2 compacted form of FrameMsgBatch
	// (worker → worker), used only in sessions negotiated at WireVersion
	// >= 2: messages are sorted by target and field columns are
	// delta-varint encoded, with superseded offers elided (see
	// AppendMsgBatch2).
	FrameMsgBatch2
	// FrameSolveSpec is coordinator → worker: run one full QuerySpec query
	// (mode + canonical seeds/groups/penalties). Sent only in sessions
	// negotiated at WireVersion >= 3; tree-mode queries keep using
	// FrameSolve at every version.
	FrameSolveSpec
	// FrameFragmentConnect is worker → coordinator: one process's
	// contribution to fragment exchange #Seq — the rank-tagged,
	// destination-routed blobs of a fragment-merge MST round. Sent only in
	// sessions negotiated at WireVersion >= 4.
	FrameFragmentConnect
	// FrameFragmentRelabel is coordinator → worker: fragment exchange
	// #Seq's result, personalized per worker — only the blobs addressed to
	// the worker's rank range (plus broadcasts), unlike OpGather's
	// replicated full list.
	FrameFragmentRelabel
	// FrameFragmentRoundSummary is worker → coordinator (one-way): the
	// fragment merge's per-query round/message/byte totals, folded into the
	// pending query's outcome and cross-checked for agreement across
	// workers.
	FrameFragmentRoundSummary
	// FrameRejoin is worker → coordinator: a replacement (or reconnecting)
	// worker's first frame when re-handshaking into an existing session
	// after a fault. It carries the SessionID the worker learned from its
	// Setup, proving it belongs to this coordinator's session rather than
	// some other fleet. Sent only by v5+ workers; the coordinator answers
	// with a fresh Setup exactly as it would a Hello.
	FrameRejoin
)

// Collective operations carried by FrameColl. They mirror
// runtime.CollOp one-to-one; the duplication keeps the wire format frozen
// even if the runtime enum grows.
const (
	OpBarrier uint8 = 1 + iota
	OpSumInt64
	OpMinInt64
	OpMaxInt64
	OpGather
)

var (
	// ErrTruncated reports a frame or field cut short.
	ErrTruncated = errors.New("wire: truncated input")
	// ErrCorrupt reports a structurally invalid frame.
	ErrCorrupt = errors.New("wire: corrupt input")
)

// WriteFrame writes one length-prefixed frame. payload must already start
// with the frame-type byte.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) == 0 {
		return fmt.Errorf("%w: empty frame payload", ErrCorrupt)
	}
	if len(payload) > MaxFrame {
		return fmt.Errorf("%w: frame payload %d exceeds limit", ErrCorrupt, len(payload))
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// AppendFrame appends the length-prefixed frame to dst (for write
// coalescing: many frames per syscall).
func AppendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...)
}

// ReadFrame reads one frame payload (type byte first), reusing buf when it
// has capacity. io.EOF is returned untouched on a clean end-of-stream;
// a stream cut mid-frame yields ErrTruncated.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: frame header: %v", ErrTruncated, err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame {
		return nil, fmt.Errorf("%w: frame length %d", ErrCorrupt, n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("%w: frame body: %v", ErrTruncated, err)
	}
	return buf, nil
}

// DecodeFrame splits a buffered byte stream into (type, body, rest). It is
// the pure-parsing form of ReadFrame used by tests and the fuzz target.
func DecodeFrame(b []byte) (typ uint8, body, rest []byte, err error) {
	if len(b) < 4 {
		return 0, nil, nil, fmt.Errorf("%w: frame header", ErrTruncated)
	}
	n := binary.LittleEndian.Uint32(b)
	if n == 0 || n > MaxFrame {
		return 0, nil, nil, fmt.Errorf("%w: frame length %d", ErrCorrupt, n)
	}
	if uint64(len(b)-4) < uint64(n) {
		return 0, nil, nil, fmt.Errorf("%w: frame body", ErrTruncated)
	}
	payload := b[4 : 4+n]
	return payload[0], payload[1:], b[4+n:], nil
}

// ---------------------------------------------------------------------------
// Primitive append/decode helpers.

// AppendUvarint appends x in unsigned LEB128.
func AppendUvarint(dst []byte, x uint64) []byte { return binary.AppendUvarint(dst, x) }

// AppendVarint appends x zigzag-encoded.
func AppendVarint(dst []byte, x int64) []byte { return binary.AppendVarint(dst, x) }

// AppendString appends a length-prefixed string.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendBytes appends a length-prefixed byte slice.
func AppendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// AppendVIDs appends a length-prefixed []graph.VID as raw little-endian
// 32-bit values (bulk arrays skip varint: shard slices dominate handshake
// size and are effectively random, where varint only adds branches).
func AppendVIDs(dst []byte, vs []graph.VID) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vs)))
	for _, v := range vs {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
	}
	return dst
}

// AppendUint32s appends a length-prefixed []uint32 raw little-endian.
func AppendUint32s(dst []byte, vs []uint32) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vs)))
	for _, v := range vs {
		dst = binary.LittleEndian.AppendUint32(dst, v)
	}
	return dst
}

// AppendInt64s appends a length-prefixed []int64 raw little-endian.
func AppendInt64s(dst []byte, vs []int64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vs)))
	for _, v := range vs {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
	}
	return dst
}

// Dec is a defensive decoder over one frame body. The first failed read
// poisons it; check Err (or use the per-struct Decode funcs, which do).
type Dec struct {
	b   []byte
	err error
}

// NewDec returns a decoder over b.
func NewDec(b []byte) *Dec { return &Dec{b: b} }

// Err returns the first decode error, if any.
func (d *Dec) Err() error { return d.err }

// Len returns the number of undecoded bytes.
func (d *Dec) Len() int { return len(d.b) }

func (d *Dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrTruncated, what)
	}
}

// Uvarint decodes an unsigned LEB128 value.
func (d *Dec) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	x, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.b = d.b[n:]
	return x
}

// Varint decodes a zigzag value.
func (d *Dec) Varint() int64 {
	if d.err != nil {
		return 0
	}
	x, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.b = d.b[n:]
	return x
}

// Int decodes a uvarint that must fit a non-negative int.
func (d *Dec) Int() int {
	x := d.Uvarint()
	if d.err == nil && x > math.MaxInt32 {
		d.err = fmt.Errorf("%w: int field %d out of range", ErrCorrupt, x)
	}
	return int(x)
}

// Byte decodes one byte.
func (d *Dec) Byte() uint8 {
	if d.err != nil {
		return 0
	}
	if len(d.b) == 0 {
		d.fail("byte")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

// Bool decodes a 0/1 byte.
func (d *Dec) Bool() bool { return d.Byte() != 0 }

// Float64 decodes an IEEE-754 bit pattern.
func (d *Dec) Float64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.fail("float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}

// String decodes a length-prefixed string.
func (d *Dec) String() string {
	n := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.b)) < n {
		d.fail("string body")
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

// Bytes decodes a length-prefixed byte slice. The result aliases the frame
// buffer; copy it if it outlives the frame.
func (d *Dec) Bytes() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if uint64(len(d.b)) < n {
		d.fail("bytes body")
		return nil
	}
	b := d.b[:n:n]
	d.b = d.b[n:]
	return b
}

// count validates a bulk-array length against the bytes present. The
// division form cannot overflow, so a hostile length can never bypass the
// check and reach an allocation.
func (d *Dec) count(elemBytes int, what string) int {
	n := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.b))/uint64(elemBytes) {
		d.fail(what)
		return 0
	}
	return int(n)
}

// VIDs decodes a length-prefixed []graph.VID.
func (d *Dec) VIDs() []graph.VID {
	n := d.count(4, "vid array")
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]graph.VID, n)
	for i := range out {
		out[i] = graph.VID(int32(binary.LittleEndian.Uint32(d.b[4*i:])))
	}
	d.b = d.b[4*n:]
	return out
}

// Uint32s decodes a length-prefixed []uint32.
func (d *Dec) Uint32s() []uint32 {
	n := d.count(4, "uint32 array")
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(d.b[4*i:])
	}
	d.b = d.b[4*n:]
	return out
}

// Int64s decodes a length-prefixed []int64.
func (d *Dec) Int64s() []int64 {
	n := d.count(8, "int64 array")
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(d.b[8*i:]))
	}
	d.b = d.b[8*n:]
	return out
}

// finish returns d.err, upgraded to ErrCorrupt when undecoded bytes remain:
// a frame must be consumed exactly.
func (d *Dec) finish() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.b))
	}
	return nil
}

// ---------------------------------------------------------------------------
// Visitor-message batches.

// AppendMsgBatch appends a FrameMsgBatch payload: the batch of visitor
// messages bound for remote rank dest. Fields are varint-packed — Target,
// From and Seed are small non-negative vertex IDs and Dist is a bounded
// distance, so typical messages shrink well below their 21-byte in-memory
// size.
func AppendMsgBatch(dst []byte, dest int, msgs []rt.Msg) []byte {
	dst = append(dst, FrameMsgBatch)
	dst = binary.AppendUvarint(dst, uint64(dest))
	dst = binary.AppendUvarint(dst, uint64(len(msgs)))
	for _, m := range msgs {
		dst = binary.AppendUvarint(dst, uint64(uint32(m.Target)))
		dst = binary.AppendUvarint(dst, uint64(uint32(m.From)))
		dst = binary.AppendUvarint(dst, uint64(uint32(m.Seed)))
		dst = binary.AppendUvarint(dst, uint64(m.Dist))
		dst = append(dst, m.Kind)
	}
	return dst
}

// DecodeMsgBatch decodes a FrameMsgBatch body into buf (reused when it has
// capacity), returning the destination rank and the batch.
func DecodeMsgBatch(body []byte, buf []rt.Msg) (dest int, msgs []rt.Msg, err error) {
	d := NewDec(body)
	dest = d.Int()
	n := d.count(5, "msg batch") // ≥ 5 bytes per message (4 varints + kind)
	if d.err != nil {
		return 0, nil, d.err
	}
	if cap(buf) < n {
		buf = make([]rt.Msg, 0, n)
	}
	msgs = buf[:0]
	for i := 0; i < n; i++ {
		var m rt.Msg
		m.Target = graph.VID(int32(d.Uvarint()))
		m.From = graph.VID(int32(d.Uvarint()))
		m.Seed = graph.VID(int32(d.Uvarint()))
		m.Dist = graph.Dist(d.Uvarint())
		m.Kind = d.Byte()
		if d.err != nil {
			return 0, nil, d.err
		}
		msgs = append(msgs, m)
	}
	if err := d.finish(); err != nil {
		return 0, nil, err
	}
	return dest, msgs, nil
}

// MsgBatchSize1 returns the exact FrameMsgBatch payload size for the batch —
// the byte cost the v1 layout would pay. The transport uses it to account
// compaction savings when it encodes the same batch as a FrameMsgBatch2.
func MsgBatchSize1(dest int, msgs []rt.Msg) int {
	n := 1 + uvarintLen(uint64(dest)) + uvarintLen(uint64(len(msgs)))
	for _, m := range msgs {
		n += uvarintLen(uint64(uint32(m.Target))) +
			uvarintLen(uint64(uint32(m.From))) +
			uvarintLen(uint64(uint32(m.Seed))) +
			uvarintLen(uint64(m.Dist)) + 1
	}
	return n
}

// uvarintLen returns the LEB128-encoded size of x.
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// zigzag maps a signed delta onto the unsigned varint space (as
// binary.AppendVarint does, without the append).
func zigzag(x int64) uint64 { return uint64(x<<1) ^ uint64(x>>63) }

// appendUv is binary.AppendUvarint with the one-, two- and three-byte
// cases inlined: the v2 delta columns are overwhelmingly small values, so
// the common cases skip the library call (and its length loop) entirely.
// The emitted bytes are identical — this is the same LEB128 encoding.
func appendUv(dst []byte, x uint64) []byte {
	if x < 0x80 {
		return append(dst, byte(x))
	}
	if x < 0x4000 {
		return append(dst, byte(x)|0x80, byte(x>>7))
	}
	if x < 0x20_0000 {
		return append(dst, byte(x)|0x80, byte(x>>7)|0x80, byte(x>>14))
	}
	return binary.AppendUvarint(dst, x)
}

// AppendMsgBatch2 appends a FrameMsgBatch2 payload: the compacted v2 form
// of a visitor-message batch. The batch is sorted by (Target, From, Kind,
// Dist, Seed) — delivery order within a batch carries no meaning (pinned by
// the shuffle-delivery property tests) — then encoded columnar: an
// ascending-delta target column, zigzag-delta seed and dist columns, a
// from column as the delta against the same row's target (offers mostly
// come from a vertex near the one they relax), and a kind column that
// collapses to a single byte when uniform.
//
// Superseded offers are elided: a message is dropped iff an earlier message
// in the sorted batch has the same (Target, From, Kind) and a strictly
// lexicographically smaller (Dist, Seed). The visitor contract makes
// elision unobservable — offer adoption is a monotone lexicographic
// tie-break, so a strictly dominated offer can neither be installed at the
// fixed point nor send anything a dominating offer's relaxation would not —
// and ties are always kept, preserving the (dist, src) tie-send rule.
// The returned elided count must be folded back into termination detection
// by the caller (the messages were counted as sent but never cross the
// wire).
//
// AppendMsgBatch2 reorders and compacts msgs in place; callers hand over
// ownership of the batch (as Transport.Deliver already does).
func AppendMsgBatch2(dst []byte, dest int, msgs []rt.Msg) (out []byte, elided int) {
	sortMsgs(msgs)
	// Compact in place: within a (Target, From, Kind) group — adjacent
	// after the sort, ascending in (Dist, Seed) — every survivor ties the
	// group minimum, so comparing against the last survivor eliminates
	// exactly the strictly dominated messages.
	kept := 0
	uniformKind := true
	for i := range msgs {
		if kept > 0 {
			p := &msgs[kept-1]
			m := &msgs[i]
			if m.Target == p.Target && m.From == p.From && m.Kind == p.Kind &&
				(m.Dist != p.Dist || m.Seed != p.Seed) {
				continue
			}
			if m.Kind != msgs[0].Kind {
				uniformKind = false
			}
		}
		msgs[kept] = msgs[i]
		kept++
	}
	elided = len(msgs) - kept
	msgs = msgs[:kept]

	dst = append(dst, FrameMsgBatch2)
	dst = binary.AppendUvarint(dst, uint64(dest))
	dst = binary.AppendUvarint(dst, uint64(kept))
	if uniformKind {
		kind0 := uint8(0)
		if kept > 0 {
			kind0 = msgs[0].Kind
		}
		dst = append(dst, 1, kind0)
	} else {
		dst = append(dst, 0)
	}
	// Target column: first absolute, then ascending deltas.
	prev := uint64(0)
	for i := range msgs {
		t := uint64(uint32(msgs[i].Target))
		if i == 0 {
			dst = appendUv(dst, t)
		} else {
			dst = appendUv(dst, t-prev)
		}
		prev = t
	}
	// Seed column: zigzag deltas from the previous seed.
	prevS := int64(0)
	for i := range msgs {
		s := int64(int32(msgs[i].Seed))
		dst = appendUv(dst, zigzag(s-prevS))
		prevS = s
	}
	// From column: zigzag delta against the same row's target.
	for i := range msgs {
		dst = appendUv(dst, zigzag(int64(int32(msgs[i].From))-int64(int32(msgs[i].Target))))
	}
	// Dist column: zigzag deltas from the previous dist.
	prevD := int64(0)
	for i := range msgs {
		x := int64(msgs[i].Dist)
		dst = appendUv(dst, zigzag(x-prevD))
		prevD = x
	}
	if !uniformKind {
		for _, m := range msgs {
			dst = append(dst, m.Kind)
		}
	}
	return dst, elided
}

// sortMsgs orders a batch by (Target, From, Kind, Dist, Seed) — the v2
// column layout's order, chosen so dominated offers become adjacent. It is
// a hand-rolled unstable quicksort: the key covers every Msg field, so all
// orderings of equal elements are byte-identical and stability buys
// nothing, while the inlined comparison avoids the indirect call per
// compare that slices.SortFunc pays on the Deliver hot path.
func sortMsgs(msgs []rt.Msg) {
	if len(msgs) > 1 {
		quickMsgs(msgs)
	}
}

// msgKey packs a message's (Target, From) — the fields that decide nearly
// every comparison — into one uint64 with both sign bits flipped, so a
// single unsigned compare reproduces their signed lexicographic order.
func msgKey(m *rt.Msg) uint64 {
	const flip = 0x8000_0000_8000_0000
	return (uint64(uint32(m.Target))<<32 | uint64(uint32(m.From))) ^ flip
}

// msgTieLess breaks a msgKey tie with the (Kind, Dist, Seed) tail of the
// lexicographic order.
func msgTieLess(a, b *rt.Msg) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.Seed < b.Seed
}

// msgLess is the (Target, From, Kind, Dist, Seed) lexicographic order.
func msgLess(a, b *rt.Msg) bool {
	ka, kb := msgKey(a), msgKey(b)
	if ka != kb {
		return ka < kb
	}
	return msgTieLess(a, b)
}

// msgLessK is msgLess against a fixed element whose key is precomputed —
// the partition and insertion loops compare many candidates against one
// pivot, so caching its key halves the packing work in the hot loops.
func msgLessK(a *rt.Msg, kb uint64, b *rt.Msg) bool {
	ka := msgKey(a)
	if ka != kb {
		return ka < kb
	}
	return msgTieLess(a, b)
}

// quickMsgs is a median-of-three quicksort that recurses into the smaller
// partition and finishes short runs with insertion sort.
func quickMsgs(a []rt.Msg) {
	for len(a) > 12 {
		mid, hi := len(a)/2, len(a)-1
		if msgLess(&a[mid], &a[0]) {
			a[mid], a[0] = a[0], a[mid]
		}
		if msgLess(&a[hi], &a[0]) {
			a[hi], a[0] = a[0], a[hi]
		}
		if msgLess(&a[hi], &a[mid]) {
			a[hi], a[mid] = a[mid], a[hi]
		}
		pivot := a[mid]
		pk := msgKey(&pivot)
		i, j := 0, hi
		for i <= j {
			for msgLessK(&a[i], pk, &pivot) {
				i++
			}
			for mk := msgKey(&a[j]); mk > pk || (mk == pk && msgTieLess(&pivot, &a[j])); mk = msgKey(&a[j]) {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		if j < len(a)-i {
			quickMsgs(a[:j+1])
			a = a[i:]
		} else {
			quickMsgs(a[i:])
			a = a[:j+1]
		}
	}
	for i := 1; i < len(a); i++ {
		m := a[i]
		mk := msgKey(&m)
		j := i - 1
		for j >= 0 {
			jk := msgKey(&a[j])
			if mk > jk || (mk == jk && !msgTieLess(&m, &a[j])) {
				break
			}
			a[j+1] = a[j]
			j--
		}
		a[j+1] = m
	}
}

// DecodeMsgBatch2 decodes a FrameMsgBatch2 body into buf (reused when it
// has capacity), returning the destination rank and the batch.
func DecodeMsgBatch2(body []byte, buf []rt.Msg) (dest int, msgs []rt.Msg, err error) {
	d := NewDec(body)
	dest = d.Int()
	n := d.count(4, "msg batch2") // ≥ 4 column bytes per message
	uniform := d.Bool()
	var kind uint8
	if uniform {
		kind = d.Byte()
	}
	if d.err != nil {
		return 0, nil, d.err
	}
	if cap(buf) < n {
		buf = make([]rt.Msg, 0, n)
	}
	msgs = buf[:n]
	prev := uint64(0)
	for i := 0; i < n; i++ {
		delta := d.Uvarint()
		if i == 0 {
			prev = delta
		} else {
			prev += delta
		}
		if prev > math.MaxUint32 {
			d.err = fmt.Errorf("%w: msg batch2 target overflow", ErrCorrupt)
		}
		msgs[i].Target = graph.VID(int32(uint32(prev)))
	}
	prevS := int64(0)
	for i := 0; i < n; i++ {
		prevS += d.Varint()
		msgs[i].Seed = graph.VID(int32(prevS))
	}
	for i := 0; i < n; i++ {
		msgs[i].From = graph.VID(int32(int64(int32(msgs[i].Target)) + d.Varint()))
	}
	prevD := int64(0)
	for i := 0; i < n; i++ {
		prevD += d.Varint()
		msgs[i].Dist = graph.Dist(prevD)
	}
	if uniform {
		for i := 0; i < n; i++ {
			msgs[i].Kind = kind
		}
	} else {
		for i := 0; i < n; i++ {
			msgs[i].Kind = d.Byte()
		}
	}
	if err := d.finish(); err != nil {
		return 0, nil, err
	}
	return dest, msgs, nil
}
