package wire

import "fmt"

// Coll is one process's contribution to collective #Seq. Payload is
// op-specific: empty for OpBarrier, an 8-byte-varint int64 for the
// allreduces, a rank-tagged blob list for OpGather.
type Coll struct {
	Seq     uint64
	Op      uint8
	Payload []byte
}

// EncodeColl appends a FrameColl payload.
func EncodeColl(dst []byte, c Coll) []byte {
	dst = append(dst, FrameColl)
	dst = AppendUvarint(dst, c.Seq)
	dst = append(dst, c.Op)
	dst = AppendBytes(dst, c.Payload)
	return dst
}

// DecodeColl decodes a FrameColl body. Payload aliases body.
func DecodeColl(body []byte) (Coll, error) {
	d := NewDec(body)
	c := Coll{Seq: d.Uvarint(), Op: d.Byte(), Payload: d.Bytes()}
	return c, d.finish()
}

// CollReply is the coordinator's result for collective #Seq.
type CollReply struct {
	Seq     uint64
	Payload []byte
}

// EncodeCollReply appends a FrameCollReply payload.
func EncodeCollReply(dst []byte, c CollReply) []byte {
	dst = append(dst, FrameCollReply)
	dst = AppendUvarint(dst, c.Seq)
	dst = AppendBytes(dst, c.Payload)
	return dst
}

// DecodeCollReply decodes a FrameCollReply body. Payload aliases body.
func DecodeCollReply(body []byte) (CollReply, error) {
	d := NewDec(body)
	c := CollReply{Seq: d.Uvarint(), Payload: d.Bytes()}
	return c, d.finish()
}

// EncodeInt64 encodes an allreduce contribution/result payload.
func EncodeInt64(x int64) []byte { return AppendVarint(nil, x) }

// DecodeInt64 decodes an allreduce payload.
func DecodeInt64(payload []byte) (int64, error) {
	d := NewDec(payload)
	x := d.Varint()
	return x, d.finish()
}

// RankBlob tags a per-rank gather contribution with its global rank.
type RankBlob struct {
	Rank int
	Blob []byte
}

// EncodeRankBlobs encodes an OpGather contribution: this process's hosted
// ranks' blobs, rank-tagged.
func EncodeRankBlobs(dst []byte, blobs []RankBlob) []byte {
	dst = AppendUvarint(dst, uint64(len(blobs)))
	for _, rb := range blobs {
		dst = AppendUvarint(dst, uint64(rb.Rank))
		dst = AppendBytes(dst, rb.Blob)
	}
	return dst
}

// DecodeRankBlobs decodes an OpGather contribution. Blobs alias payload.
func DecodeRankBlobs(payload []byte) ([]RankBlob, error) {
	d := NewDec(payload)
	n := d.Int()
	if d.err == nil && n > d.Len() {
		return nil, fmt.Errorf("%w: rank blob count", ErrCorrupt)
	}
	out := make([]RankBlob, 0, min(n, 1024))
	for i := 0; i < n && d.err == nil; i++ {
		out = append(out, RankBlob{Rank: d.Int(), Blob: d.Bytes()})
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return out, nil
}

// EncodeBlobList encodes an OpGather result: one blob per global rank, in
// rank order (absent ranks encode empty).
func EncodeBlobList(dst []byte, blobs [][]byte) []byte {
	dst = AppendUvarint(dst, uint64(len(blobs)))
	for _, b := range blobs {
		dst = AppendBytes(dst, b)
	}
	return dst
}

// DecodeBlobList decodes an OpGather result. Blobs alias payload.
func DecodeBlobList(payload []byte) ([][]byte, error) {
	d := NewDec(payload)
	n := d.Int()
	if d.err == nil && n > d.Len()+1 {
		return nil, fmt.Errorf("%w: blob list count", ErrCorrupt)
	}
	out := make([][]byte, 0, min(n, 4096))
	for i := 0; i < n && d.err == nil; i++ {
		out = append(out, d.Bytes())
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return out, nil
}

// Fence is the per-peer delivery fence entering collective #Seq: ordered
// after every message frame the sender issued before the collective, so
// receiving fence #Seq from every peer proves all pre-collective traffic
// has been delivered.
type Fence struct {
	Seq uint64
}

// EncodeFence appends a FrameFence payload.
func EncodeFence(dst []byte, f Fence) []byte {
	dst = append(dst, FrameFence)
	return AppendUvarint(dst, f.Seq)
}

// DecodeFence decodes a FrameFence body.
func DecodeFence(body []byte) (Fence, error) {
	d := NewDec(body)
	f := Fence{Seq: d.Uvarint()}
	return f, d.finish()
}

// TraverseBegin announces that this process entered asynchronous traversal
// #Seq; the coordinator starts circulating termination tokens once every
// process has announced.
type TraverseBegin struct {
	Seq uint64
}

// EncodeTraverseBegin appends a FrameTraverseBegin payload.
func EncodeTraverseBegin(dst []byte, t TraverseBegin) []byte {
	dst = append(dst, FrameTraverseBegin)
	return AppendUvarint(dst, t.Seq)
}

// DecodeTraverseBegin decodes a FrameTraverseBegin body.
func DecodeTraverseBegin(body []byte) (TraverseBegin, error) {
	d := NewDec(body)
	t := TraverseBegin{Seq: d.Uvarint()}
	return t, d.finish()
}

// Token is the Safra-style termination token for traversal #Seq. Q
// accumulates each process's (messages sent − messages received) cross-
// process counter; Black records whether any visited process received a
// message since it last forwarded the token. The coordinator declares
// quiescence after a full round that stays white with Q == 0.
type Token struct {
	Seq   uint64
	Q     int64
	Black bool
}

// EncodeToken appends a FrameToken payload.
func EncodeToken(dst []byte, t Token) []byte {
	dst = append(dst, FrameToken)
	dst = AppendUvarint(dst, t.Seq)
	dst = AppendVarint(dst, t.Q)
	return appendBool(dst, t.Black)
}

// DecodeToken decodes a FrameToken body.
func DecodeToken(body []byte) (Token, error) {
	d := NewDec(body)
	t := Token{Seq: d.Uvarint(), Q: d.Varint(), Black: d.Bool()}
	return t, d.finish()
}

// TraverseDone reports global quiescence of traversal #Seq.
type TraverseDone struct {
	Seq uint64
}

// EncodeTraverseDone appends a FrameTraverseDone payload.
func EncodeTraverseDone(dst []byte, t TraverseDone) []byte {
	dst = append(dst, FrameTraverseDone)
	return AppendUvarint(dst, t.Seq)
}

// DecodeTraverseDone decodes a FrameTraverseDone body.
func DecodeTraverseDone(body []byte) (TraverseDone, error) {
	d := NewDec(body)
	t := TraverseDone{Seq: d.Uvarint()}
	return t, d.finish()
}
