// Package exact solves the Steiner minimal tree problem optimally with the
// Dreyfus–Wagner dynamic program. It substitutes for SCIP-Jack [20], the
// exact branch-and-cut solver the paper uses to measure approximation
// quality (Table VII) and exact-solver runtimes (Table VI): like SCIP-Jack,
// it is orders of magnitude slower than the 2-approximation algorithms, and
// it provides true optima D_min for the ratio D(G_S)/D_min.
//
// Complexity is O(3^k·|V| + 2^k·(|E| + |V| log |V|)) time and
// O(2^k·|V|) memory for k = |S| terminals, so it is feasible only for small
// seed sets (the paper's |S|=10 rows; larger rows use the refined reference
// of internal/improve, as documented in DESIGN.md).
package exact

import (
	"fmt"

	"dsteiner/internal/graph"
	"dsteiner/internal/pq"
)

// DefaultMemoryLimit caps the DP table allocation (bytes).
const DefaultMemoryLimit = 1 << 30

// Solution is an optimal Steiner tree.
type Solution struct {
	Edges []graph.Edge
	Total graph.Dist
}

// Solve computes a Steiner minimal tree for the given terminals.
// memoryLimit <= 0 applies DefaultMemoryLimit. Terminals must be distinct
// and mutually connected.
func Solve(g *graph.Graph, terminals []graph.VID, memoryLimit int64) (Solution, error) {
	if memoryLimit <= 0 {
		memoryLimit = DefaultMemoryLimit
	}
	k := len(terminals)
	n := g.NumVertices()
	if k == 0 {
		return Solution{}, fmt.Errorf("exact: empty terminal set")
	}
	seen := map[graph.VID]bool{}
	for _, t := range terminals {
		if t < 0 || int(t) >= n {
			return Solution{}, fmt.Errorf("exact: terminal %d out of range", t)
		}
		if seen[t] {
			return Solution{}, fmt.Errorf("exact: duplicate terminal %d", t)
		}
		seen[t] = true
	}
	if k == 1 {
		return Solution{}, nil
	}
	nMasks := 1 << (k - 1)
	bytesNeeded := int64(nMasks) * int64(n) * (8 + 4 + 4)
	if bytesNeeded > memoryLimit {
		return Solution{}, fmt.Errorf("exact: DP needs %d bytes for k=%d n=%d, over limit %d",
			bytesNeeded, k, n, memoryLimit)
	}

	// Terminal k-1 is the root q; DP masks range over the other k-1.
	q := terminals[k-1]
	base := terminals[:k-1]

	dist := make([][]graph.Dist, nMasks) // S[mask][v]
	mergeY := make([][]int32, nMasks)    // >=0: split into Y and mask\Y at v
	walkPred := make([][]graph.VID, nMasks)
	for m := 1; m < nMasks; m++ {
		dist[m] = make([]graph.Dist, n)
		mergeY[m] = make([]int32, n)
		walkPred[m] = make([]graph.VID, n)
	}

	type qitem struct {
		v graph.VID
		d graph.Dist
	}
	closure := func(mask int) {
		// Dijkstra closure: propagate the current labels dist[mask]
		// through the graph, recording walk predecessors.
		dm, wp := dist[mask], walkPred[mask]
		h := pq.NewHeap[qitem](64)
		for v := 0; v < n; v++ {
			if dm[v] < graph.InfDist {
				h.Push(qitem{v: graph.VID(v), d: dm[v]}, uint64(dm[v]))
			}
		}
		for {
			it, ok := h.Pop()
			if !ok {
				return
			}
			if it.d > dm[it.v] {
				continue
			}
			ts, ws := g.Adj(it.v)
			for i, u := range ts {
				nd := it.d + graph.Dist(ws[i])
				if nd < dm[u] {
					dm[u] = nd
					wp[u] = it.v
					mergeY[mask][u] = -1
					h.Push(qitem{v: u, d: nd}, uint64(nd))
				}
			}
		}
	}

	// Masks in increasing popcount order are unnecessary: increasing
	// integer order suffices because every proper submask of m is < m.
	for mask := 1; mask < nMasks; mask++ {
		dm := dist[mask]
		for v := range dm {
			dm[v] = graph.InfDist
			mergeY[mask][v] = -1
			walkPred[mask][v] = graph.NilVID
		}
		if mask&(mask-1) == 0 {
			// Singleton {t_i}: closure of label 0 at the terminal.
			i := trailingZeros(mask)
			dm[base[i]] = 0
		} else {
			// Merge step: combine disjoint sub-splits at every vertex.
			// Fixing the lowest set bit in Y visits each split once.
			low := mask & (-mask)
			for y := (mask - 1) & mask; y > 0; y = (y - 1) & mask {
				if y&low == 0 {
					continue
				}
				rest := mask ^ y
				if rest == 0 {
					continue
				}
				dy, dr := dist[y], dist[rest]
				for v := 0; v < n; v++ {
					if dy[v] >= graph.InfDist || dr[v] >= graph.InfDist {
						continue
					}
					if s := dy[v] + dr[v]; s < dm[v] {
						dm[v] = s
						mergeY[mask][v] = int32(y)
						walkPred[mask][v] = graph.NilVID
					}
				}
			}
		}
		closure(mask)
	}

	full := nMasks - 1
	if dist[full][q] >= graph.InfDist {
		return Solution{}, fmt.Errorf("exact: terminals are not mutually connected")
	}

	// Reconstruct by unwinding (mask, v) decisions.
	edgeSet := map[[2]graph.VID]graph.Edge{}
	var emit func(mask int, v graph.VID)
	emit = func(mask int, v graph.VID) {
		for {
			if y := mergeY[mask][v]; y >= 0 {
				emit(int(y), v)
				emit(mask^int(y), v)
				return
			}
			p := walkPred[mask][v]
			if p == graph.NilVID {
				return // at the terminal of a singleton mask
			}
			w, _ := g.HasEdge(p, v)
			c := graph.Edge{U: p, V: v, W: w}.Canon()
			edgeSet[[2]graph.VID{c.U, c.V}] = c
			v = p
		}
	}
	emit(full, q)
	edges := make([]graph.Edge, 0, len(edgeSet))
	for _, e := range edgeSet {
		edges = append(edges, e)
	}
	sortEdges(edges)
	sol := Solution{Edges: edges, Total: graph.TotalWeight(edges)}
	if sol.Total != dist[full][q] {
		return Solution{}, fmt.Errorf("exact: reconstruction weight %d != DP optimum %d", sol.Total, dist[full][q])
	}
	return sol, nil
}

func trailingZeros(x int) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

func sortEdges(edges []graph.Edge) {
	// Insertion sort is fine: optimal trees are small.
	for i := 1; i < len(edges); i++ {
		e := edges[i]
		j := i - 1
		for j >= 0 && (edges[j].U > e.U || (edges[j].U == e.U && edges[j].V > e.V)) {
			edges[j+1] = edges[j]
			j--
		}
		edges[j+1] = e
	}
}
