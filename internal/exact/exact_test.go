package exact

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dsteiner/internal/graph"
)

func e(u, v graph.VID, w uint32) graph.Edge { return graph.Edge{U: u, V: v, W: w} }

func paperFig1() *graph.Graph {
	return graph.MustFromEdges(9, []graph.Edge{
		e(0, 1, 16), e(0, 4, 2), e(4, 5, 4), e(1, 5, 2), e(1, 2, 20),
		e(5, 6, 1), e(2, 6, 1), e(2, 3, 24), e(6, 7, 2), e(3, 7, 2), e(7, 8, 2), e(3, 8, 18),
	})
}

func randomConnected(seed int64, n int, maxW uint32) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(graph.VID(rng.Intn(v)), graph.VID(v), uint32(rng.Intn(int(maxW)))+1)
	}
	for i := 0; i < 2*n; i++ {
		b.AddEdge(graph.VID(rng.Intn(n)), graph.VID(rng.Intn(n)), uint32(rng.Intn(int(maxW)))+1)
	}
	g, _ := b.Build()
	return g
}

func TestPaperFig1Optimum(t *testing.T) {
	g := paperFig1()
	// Seeds of Fig. 1: 0-based {0,2,3,7,8}. The depicted Steiner tree
	// uses edges 1-5(2), 5-6(4)... compute and verify structurally.
	seeds := []graph.VID{0, 2, 3, 7, 8}
	sol, err := Solve(g, seeds, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.ValidateSteinerTree(g, seeds, sol.Edges); err != nil {
		t.Fatal(err)
	}
	// Fig. 1(b)'s tree: 1-5:2, 5-6:4, 6-2:2(paper 2-6), 6-7:1(paper),
	// ... the paper's drawn tree weight (0-based edges {0,4}=2, {4,5}=4,
	// {1,5}=2? Actually the known optimal total for this instance:
	// verify the DP against brute force over spanning subsets instead.
	want := bruteForce(g, seeds)
	if sol.Total != want {
		t.Fatalf("DP total = %d, brute force = %d", sol.Total, want)
	}
}

// bruteForce enumerates all vertex subsets containing the seeds and takes
// the best MST over the induced subgraph — exact for small n because an
// optimal Steiner tree is an MST of the subgraph induced by its own
// vertex set... which holds only when the induced subgraph's MST uses
// exactly the tree edges; enumerating all supersets covers the optimum.
func bruteForce(g *graph.Graph, seeds []graph.VID) graph.Dist {
	n := g.NumVertices()
	isSeed := make([]bool, n)
	for _, s := range seeds {
		isSeed[s] = true
	}
	var extras []graph.VID
	for v := 0; v < n; v++ {
		if !isSeed[v] {
			extras = append(extras, graph.VID(v))
		}
	}
	best := graph.InfDist
	for mask := 0; mask < (1 << len(extras)); mask++ {
		verts := append([]graph.VID(nil), seeds...)
		for i, v := range extras {
			if mask&(1<<i) != 0 {
				verts = append(verts, v)
			}
		}
		if w, ok := inducedMSTWeight(g, verts); ok && w < best {
			best = w
		}
	}
	return best
}

func inducedMSTWeight(g *graph.Graph, verts []graph.VID) (graph.Dist, bool) {
	idx := map[graph.VID]int{}
	for i, v := range verts {
		idx[v] = i
	}
	type we struct {
		u, v int
		w    graph.Dist
	}
	var edges []we
	for _, v := range verts {
		ts, ws := g.Adj(v)
		for i, u := range ts {
			if j, ok := idx[u]; ok && v < u {
				edges = append(edges, we{u: idx[v], v: j, w: graph.Dist(ws[i])})
			}
		}
	}
	// Kruskal.
	for i := 1; i < len(edges); i++ {
		for j := i; j > 0 && edges[j].w < edges[j-1].w; j-- {
			edges[j], edges[j-1] = edges[j-1], edges[j]
		}
	}
	parent := make([]int, len(verts))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	var total graph.Dist
	merged := 0
	for _, e := range edges {
		ru, rv := find(e.u), find(e.v)
		if ru != rv {
			parent[ru] = rv
			total += e.w
			merged++
		}
	}
	if merged != len(verts)-1 {
		return 0, false // induced subgraph disconnected
	}
	return total, true
}

func TestTwoTerminalsIsShortestPath(t *testing.T) {
	g := paperFig1()
	sol, err := Solve(g, []graph.VID{0, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Shortest 0->3 path: 0-4(2) 4-5(4) 5-6(1) 6-7(2) 7-3(2) = 11
	// vs 0-1(16)... verify = 11.
	if sol.Total != 11 {
		t.Fatalf("shortest path = %d, want 11", sol.Total)
	}
	if len(sol.Edges) != 5 {
		t.Fatalf("path edges = %d, want 5", len(sol.Edges))
	}
}

func TestErrorCases(t *testing.T) {
	g := paperFig1()
	if _, err := Solve(g, nil, 0); err == nil {
		t.Error("empty terminals accepted")
	}
	if _, err := Solve(g, []graph.VID{1, 1}, 0); err == nil {
		t.Error("duplicate terminals accepted")
	}
	if _, err := Solve(g, []graph.VID{99}, 0); err == nil {
		t.Error("out-of-range terminal accepted")
	}
	if _, err := Solve(g, []graph.VID{0, 1, 2, 3, 4, 5, 6, 7}, 100); err == nil {
		t.Error("memory limit ignored")
	}
	// Single terminal: empty tree.
	sol, err := Solve(g, []graph.VID{2}, 0)
	if err != nil || len(sol.Edges) != 0 {
		t.Errorf("single terminal: %v %v", sol, err)
	}
	// Disconnected terminals.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 3, 1)
	g2, _ := b.Build()
	if _, err := Solve(g2, []graph.VID{0, 2}, 0); err == nil {
		t.Error("disconnected terminals accepted")
	}
}

func TestPropertyMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(8) // brute force is 2^(n-k)
		g := randomConnected(seed, n, 9)
		k := 2 + rng.Intn(3)
		seen := map[graph.VID]bool{}
		var seeds []graph.VID
		for len(seeds) < k {
			s := graph.VID(rng.Intn(n))
			if !seen[s] {
				seen[s] = true
				seeds = append(seeds, s)
			}
		}
		sol, err := Solve(g, seeds, 0)
		if err != nil {
			return false
		}
		if graph.ValidateSteinerTree(g, seeds, sol.Edges) != nil {
			return false
		}
		return sol.Total == bruteForce(g, seeds)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyOptimalityAgainstSpanningHeuristics(t *testing.T) {
	// The optimum never exceeds any seed-spanning subtree we can build.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(40)
		g := randomConnected(seed, n, 15)
		k := 2 + rng.Intn(5)
		seen := map[graph.VID]bool{}
		var seeds []graph.VID
		for len(seeds) < k {
			s := graph.VID(rng.Intn(n))
			if !seen[s] {
				seen[s] = true
				seeds = append(seeds, s)
			}
		}
		sol, err := Solve(g, seeds, 0)
		if err != nil {
			return false
		}
		// Whole-graph MST pruned to seeds is one valid Steiner tree.
		edges := g.Edges()
		wedges := make([]we2, len(edges))
		for i, e := range edges {
			wedges[i] = we2{e: e}
		}
		pruned := graph.PruneNonSeedLeaves(mstEdges(g, wedges), seeds)
		return sol.Total <= graph.TotalWeight(pruned)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

type we2 struct{ e graph.Edge }

// mstEdges computes an MST edge list of the whole graph with Kruskal.
func mstEdges(g *graph.Graph, wedges []we2) []graph.Edge {
	for i := 1; i < len(wedges); i++ {
		for j := i; j > 0 && wedges[j].e.W < wedges[j-1].e.W; j-- {
			wedges[j], wedges[j-1] = wedges[j-1], wedges[j]
		}
	}
	parent := make([]int32, g.NumVertices())
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	var out []graph.Edge
	for _, w := range wedges {
		ru, rv := find(int32(w.e.U)), find(int32(w.e.V))
		if ru != rv {
			parent[ru] = rv
			out = append(out, w.e)
		}
	}
	return out
}
