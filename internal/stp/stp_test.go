package stp

import (
	"bytes"
	"strings"
	"testing"

	"dsteiner/internal/baseline"
	"dsteiner/internal/exact"
	"dsteiner/internal/graph"
)

// sampleB is a hand-written instance in the style of SteinLib's B set.
const sampleB = `33D32945 STP File, STP Format Version 1.0

SECTION Comment
Name    "demo-b01"
Creator "test"
END

SECTION Graph
Nodes 9
Edges 12
E 1 2 16
E 1 5 2
E 5 6 4
E 2 6 2
E 2 3 20
E 6 7 1
E 3 7 1
E 3 4 24
E 7 8 2
E 4 8 2
E 8 9 2
E 4 9 18
END

SECTION Terminals
Terminals 5
T 1
T 3
T 4
T 8
T 9
END

EOF
`

func TestReadSample(t *testing.T) {
	inst, err := Read(strings.NewReader(sampleB))
	if err != nil {
		t.Fatal(err)
	}
	if inst.Name != "demo-b01" {
		t.Errorf("Name = %q", inst.Name)
	}
	if inst.Graph.NumVertices() != 9 || inst.Graph.NumEdges() != 12 {
		t.Fatalf("graph shape %d/%d", inst.Graph.NumVertices(), inst.Graph.NumEdges())
	}
	// 1-based -> 0-based conversion.
	want := []graph.VID{0, 2, 3, 7, 8}
	if len(inst.Terminals) != len(want) {
		t.Fatalf("terminals = %v", inst.Terminals)
	}
	for i, tv := range want {
		if inst.Terminals[i] != tv {
			t.Fatalf("terminals = %v, want %v", inst.Terminals, want)
		}
	}
	if w, ok := inst.Graph.HasEdge(0, 4); !ok || w != 2 {
		t.Fatalf("edge (1,5)w2 lost: (%d,%v)", w, ok)
	}
}

func TestSolveParsedInstance(t *testing.T) {
	inst, err := Read(strings.NewReader(sampleB))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := baseline.Mehlhorn(inst.Graph, inst.Terminals)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := exact.Solve(inst.Graph, inst.Terminals, 0)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Total != 14 { // the paper's Fig. 1 optimum
		t.Fatalf("optimum = %d, want 14", opt.Total)
	}
	if tr.Total < opt.Total || float64(tr.Total) > 2*float64(opt.Total) {
		t.Fatalf("heuristic %d outside bounds of optimum %d", tr.Total, opt.Total)
	}
}

func TestRoundTrip(t *testing.T) {
	inst, err := Read(strings.NewReader(sampleB))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, inst); err != nil {
		t.Fatal(err)
	}
	inst2, err := Read(&buf)
	if err != nil {
		t.Fatalf("re-read: %v\n%s", err, buf.String())
	}
	if inst2.Graph.NumEdges() != inst.Graph.NumEdges() {
		t.Fatal("edge count changed")
	}
	if len(inst2.Terminals) != len(inst.Terminals) {
		t.Fatal("terminals changed")
	}
	e1, e2 := inst.Graph.Edges(), inst2.Graph.Edges()
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge %d: %v != %v", i, e1[i], e2[i])
		}
	}
}

func TestUnknownSectionsSkipped(t *testing.T) {
	in := strings.Replace(sampleB, "SECTION Terminals",
		"SECTION Coordinates\nDD 1 0 0\nEND\n\nSECTION Terminals", 1)
	inst, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Terminals) != 5 {
		t.Fatalf("terminals = %v", inst.Terminals)
	}
}

func TestRejectsMalformedInputs(t *testing.T) {
	cases := map[string]string{
		"no header":      "hello\nEOF\n",
		"no graph":       magic + "\nSECTION Terminals\nTerminals 0\nEND\nEOF\n",
		"no terminals":   magic + "\nSECTION Graph\nNodes 2\nEdges 1\nE 1 2 5\nEND\nEOF\n",
		"no eof":         magic + "\nSECTION Graph\nNodes 2\nEdges 1\nE 1 2 5\nEND\n",
		"bad edge count": magic + "\nSECTION Graph\nNodes 2\nEdges 2\nE 1 2 5\nEND\nSECTION Terminals\nTerminals 0\nEND\nEOF\n",
		"edge oob":       magic + "\nSECTION Graph\nNodes 2\nEdges 1\nE 1 9 5\nEND\nSECTION Terminals\nTerminals 0\nEND\nEOF\n",
		"terminal oob":   magic + "\nSECTION Graph\nNodes 2\nEdges 1\nE 1 2 5\nEND\nSECTION Terminals\nTerminals 1\nT 7\nEND\nEOF\n",
		"zero weight":    magic + "\nSECTION Graph\nNodes 2\nEdges 1\nE 1 2 0\nEND\nSECTION Terminals\nTerminals 0\nEND\nEOF\n",
		"junk line":      magic + "\nwhat is this\nEOF\n",
		"bad number":     magic + "\nSECTION Graph\nNodes two\nEND\nEOF\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRootedMarkersTolerated(t *testing.T) {
	in := strings.Replace(sampleB, "T 1\n", "Root 1\nT 1\n", 1)
	inst, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Terminals) != 5 {
		t.Fatalf("terminals = %v", inst.Terminals)
	}
}

func FuzzRead(f *testing.F) {
	f.Add(sampleB)
	f.Add(magic + "\nEOF\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, in string) {
		inst, err := Read(strings.NewReader(in))
		if err != nil {
			return
		}
		// Any accepted instance must round-trip.
		var buf bytes.Buffer
		if err := Write(&buf, inst); err != nil {
			t.Fatalf("write of accepted instance failed: %v", err)
		}
		if _, err := Read(&buf); err != nil {
			t.Fatalf("round trip of accepted instance failed: %v", err)
		}
	})
}
