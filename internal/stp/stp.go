// Package stp reads and writes the SteinLib / DIMACS STP file format — the
// standard interchange format for Steiner tree problem instances, consumed
// by SCIP-Jack [20] and the 11th DIMACS challenge the paper references. A
// credible Steiner solver must speak it: it lets this library run the
// public SteinLib benchmark instances and lets its outputs be checked by
// other solvers.
//
// The supported subset covers the graph sections used by SteinLib's
// classic (unrooted, edge-weighted) instances:
//
//	33D32945 STP File, STP Format Version 1.0
//	SECTION Comment ... END
//	SECTION Graph
//	Nodes n
//	Edges m
//	E u v w        (1-based vertex IDs)
//	END
//	SECTION Terminals
//	Terminals k
//	T t
//	END
//	EOF
package stp

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dsteiner/internal/graph"
)

// Instance is a parsed STP problem: the graph plus its terminal set.
type Instance struct {
	Name      string
	Graph     *graph.Graph
	Terminals []graph.VID
}

// magic is the STP format's first-line marker (a checksum constant defined
// by the format specification).
const magic = "33D32945 STP File, STP Format Version 1.0"

// Read parses an STP instance. Unknown sections are skipped; Graph and
// Terminals sections are required. Vertex IDs are converted from the
// format's 1-based to this repository's 0-based convention.
func Read(r io.Reader) (*Instance, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	inst := &Instance{}
	lineNo := 0
	nextLine := func() (string, bool) {
		for sc.Scan() {
			lineNo++
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			return line, true
		}
		return "", false
	}
	first, ok := nextLine()
	if !ok || !strings.EqualFold(first, magic) {
		return nil, fmt.Errorf("stp: missing format header (got %q)", first)
	}
	var n int
	var edges []graph.Edge
	var terminals []graph.VID
	sawGraph, sawTerminals := false, false
	for {
		line, ok := nextLine()
		if !ok {
			return nil, fmt.Errorf("stp: unexpected end of file (missing EOF marker)")
		}
		upper := strings.ToUpper(line)
		switch {
		case upper == "EOF":
			if !sawGraph {
				return nil, fmt.Errorf("stp: no Graph section")
			}
			if !sawTerminals {
				return nil, fmt.Errorf("stp: no Terminals section")
			}
			b := graph.NewBuilder(n)
			b.AddEdges(edges)
			g, err := b.Build()
			if err != nil {
				return nil, fmt.Errorf("stp: %w", err)
			}
			inst.Graph = g
			inst.Terminals = terminals
			return inst, nil
		case strings.HasPrefix(upper, "SECTION"):
			section := strings.ToUpper(strings.TrimSpace(line[len("SECTION"):]))
			switch section {
			case "COMMENT":
				if err := parseComment(nextLine, inst); err != nil {
					return nil, err
				}
			case "GRAPH":
				var err error
				n, edges, err = parseGraph(nextLine)
				if err != nil {
					return nil, err
				}
				sawGraph = true
			case "TERMINALS":
				var err error
				terminals, err = parseTerminals(nextLine, n)
				if err != nil {
					return nil, err
				}
				sawTerminals = true
			default:
				// Skip unknown sections (Coordinates, etc.).
				for {
					l, ok := nextLine()
					if !ok {
						return nil, fmt.Errorf("stp: unterminated section %q", section)
					}
					if strings.EqualFold(l, "END") {
						break
					}
				}
			}
		default:
			return nil, fmt.Errorf("stp: line %d: unexpected %q", lineNo, line)
		}
	}
}

func parseComment(nextLine func() (string, bool), inst *Instance) error {
	for {
		l, ok := nextLine()
		if !ok {
			return fmt.Errorf("stp: unterminated Comment section")
		}
		if strings.EqualFold(l, "END") {
			return nil
		}
		fields := strings.Fields(l)
		if len(fields) >= 2 && strings.EqualFold(fields[0], "Name") {
			inst.Name = strings.Trim(strings.Join(fields[1:], " "), `"`)
		}
	}
}

func parseGraph(nextLine func() (string, bool)) (int, []graph.Edge, error) {
	n, m := -1, -1
	var edges []graph.Edge
	for {
		l, ok := nextLine()
		if !ok {
			return 0, nil, fmt.Errorf("stp: unterminated Graph section")
		}
		if strings.EqualFold(l, "END") {
			if n < 0 {
				return 0, nil, fmt.Errorf("stp: Graph section missing Nodes")
			}
			if m >= 0 && len(edges) != m {
				return 0, nil, fmt.Errorf("stp: Edges declares %d but %d E lines found", m, len(edges))
			}
			return n, edges, nil
		}
		fields := strings.Fields(l)
		switch strings.ToUpper(fields[0]) {
		case "NODES":
			v, err := atoi(fields, 1)
			if err != nil {
				return 0, nil, err
			}
			n = v
		case "EDGES", "ARCS":
			v, err := atoi(fields, 1)
			if err != nil {
				return 0, nil, err
			}
			m = v
		case "E", "A":
			if len(fields) != 4 {
				return 0, nil, fmt.Errorf("stp: bad edge line %q", l)
			}
			u, err1 := strconv.ParseInt(fields[1], 10, 32)
			v, err2 := strconv.ParseInt(fields[2], 10, 32)
			w, err3 := strconv.ParseInt(fields[3], 10, 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return 0, nil, fmt.Errorf("stp: bad edge line %q", l)
			}
			if u < 1 || v < 1 || (n >= 0 && (int(u) > n || int(v) > n)) {
				return 0, nil, fmt.Errorf("stp: edge (%d,%d) out of 1-based range", u, v)
			}
			if w < 1 || w > int64(^uint32(0)) {
				return 0, nil, fmt.Errorf("stp: weight %d out of range", w)
			}
			edges = append(edges, graph.Edge{U: graph.VID(u - 1), V: graph.VID(v - 1), W: uint32(w)})
		default:
			return 0, nil, fmt.Errorf("stp: unexpected Graph line %q", l)
		}
	}
}

func parseTerminals(nextLine func() (string, bool), n int) ([]graph.VID, error) {
	k := -1
	var terminals []graph.VID
	for {
		l, ok := nextLine()
		if !ok {
			return nil, fmt.Errorf("stp: unterminated Terminals section")
		}
		if strings.EqualFold(l, "END") {
			if k >= 0 && len(terminals) != k {
				return nil, fmt.Errorf("stp: Terminals declares %d but %d T lines found", k, len(terminals))
			}
			return terminals, nil
		}
		fields := strings.Fields(l)
		switch strings.ToUpper(fields[0]) {
		case "TERMINALS":
			v, err := atoi(fields, 1)
			if err != nil {
				return nil, err
			}
			k = v
		case "T":
			t, err := atoi(fields, 1)
			if err != nil {
				return nil, err
			}
			if t < 1 || (n > 0 && t > n) {
				return nil, fmt.Errorf("stp: terminal %d out of 1-based range", t)
			}
			terminals = append(terminals, graph.VID(t-1))
		case "ROOT", "ROOTP", "TP":
			// Rooted / prize-collecting variants: tolerate and ignore
			// the extra markers, solving the unrooted problem.
		default:
			return nil, fmt.Errorf("stp: unexpected Terminals line %q", l)
		}
	}
}

func atoi(fields []string, idx int) (int, error) {
	if idx >= len(fields) {
		return 0, fmt.Errorf("stp: missing numeric field in %q", strings.Join(fields, " "))
	}
	v, err := strconv.Atoi(fields[idx])
	if err != nil {
		return 0, fmt.Errorf("stp: bad number %q", fields[idx])
	}
	return v, nil
}

// Write serializes an instance in STP format (1-based IDs).
func Write(w io.Writer, inst *Instance) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, magic)
	fmt.Fprintln(bw)
	fmt.Fprintln(bw, "SECTION Comment")
	name := inst.Name
	if name == "" {
		name = "dsteiner instance"
	}
	fmt.Fprintf(bw, "Name    \"%s\"\n", name)
	fmt.Fprintln(bw, "Creator \"dsteiner\"")
	fmt.Fprintln(bw, "END")
	fmt.Fprintln(bw)
	fmt.Fprintln(bw, "SECTION Graph")
	fmt.Fprintf(bw, "Nodes %d\n", inst.Graph.NumVertices())
	fmt.Fprintf(bw, "Edges %d\n", inst.Graph.NumEdges())
	for _, e := range inst.Graph.Edges() {
		fmt.Fprintf(bw, "E %d %d %d\n", e.U+1, e.V+1, e.W)
	}
	fmt.Fprintln(bw, "END")
	fmt.Fprintln(bw)
	fmt.Fprintln(bw, "SECTION Terminals")
	fmt.Fprintf(bw, "Terminals %d\n", len(inst.Terminals))
	for _, t := range inst.Terminals {
		fmt.Fprintf(bw, "T %d\n", t+1)
	}
	fmt.Fprintln(bw, "END")
	fmt.Fprintln(bw)
	fmt.Fprintln(bw, "EOF")
	return bw.Flush()
}
