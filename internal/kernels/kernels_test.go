package kernels

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dsteiner/internal/graph"
	"dsteiner/internal/partition"
	rt "dsteiner/internal/runtime"
)

func randomGraph(seed int64, n int, connected bool) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	if connected {
		for v := 1; v < n; v++ {
			b.AddEdge(graph.VID(rng.Intn(v)), graph.VID(v), 1)
		}
	}
	for i := 0; i < 2*n; i++ {
		b.AddEdge(graph.VID(rng.Intn(n)), graph.VID(rng.Intn(n)), 1)
	}
	g, _ := b.Build()
	return g
}

func newComm(t testing.TB, n, ranks int) *rt.Comm {
	t.Helper()
	part, err := partition.NewBlock(n, ranks)
	if err != nil {
		t.Fatal(err)
	}
	return rt.MustNew(rt.Config{Ranks: ranks, Queue: rt.QueuePriority}, part)
}

func TestBFSMatchesSequential(t *testing.T) {
	g := randomGraph(1, 300, true)
	want := graph.BFS(g, 7)
	for _, ranks := range []int{1, 2, 4, 8} {
		got := BFS(newComm(t, 300, ranks), g, 7)
		for v := 0; v < g.NumVertices(); v++ {
			if got.Level[v] != want.Level[v] {
				t.Fatalf("ranks=%d: Level[%d] = %d, want %d", ranks, v, got.Level[v], want.Level[v])
			}
		}
	}
}

func TestBFSParentsConsistent(t *testing.T) {
	g := randomGraph(3, 200, true)
	res := BFS(newComm(t, 200, 4), g, 0)
	for v := 0; v < g.NumVertices(); v++ {
		if v == 0 {
			if res.Parent[0] != graph.NilVID || res.Level[0] != 0 {
				t.Fatal("source state wrong")
			}
			continue
		}
		p := res.Parent[v]
		if p == graph.NilVID {
			t.Fatalf("vertex %d unreached in connected graph", v)
		}
		if _, ok := g.HasEdge(p, graph.VID(v)); !ok {
			t.Fatalf("parent edge (%d,%d) missing", p, v)
		}
		if res.Level[p]+1 != res.Level[v] {
			t.Fatalf("level inconsistency at %d", v)
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 3, 1)
	g, _ := b.Build()
	res := BFS(newComm(t, 5, 2), g, 0)
	for _, v := range []int{2, 3, 4} {
		if res.Level[v] != -1 {
			t.Fatalf("Level[%d] = %d, want -1", v, res.Level[v])
		}
	}
}

func TestBFSDeterministicParents(t *testing.T) {
	g := randomGraph(5, 150, true)
	var ref *BFSResult
	for _, ranks := range []int{1, 3, 6} {
		got := BFS(newComm(t, 150, ranks), g, 2)
		if ref == nil {
			ref = got
			continue
		}
		for v := range got.Parent {
			if got.Parent[v] != ref.Parent[v] {
				t.Fatalf("ranks=%d: Parent[%d] = %d, ref %d", ranks, v, got.Parent[v], ref.Parent[v])
			}
		}
	}
}

func TestComponentsMatchSequential(t *testing.T) {
	g := randomGraph(7, 250, false) // possibly disconnected
	want := graph.ConnectedComponents(g)
	for _, ranks := range []int{1, 2, 4} {
		got := Components(newComm(t, 250, ranks), g)
		if got.NumComponents() != want.NumComponents() {
			t.Fatalf("ranks=%d: %d components, want %d",
				ranks, got.NumComponents(), want.NumComponents())
		}
		// Same-component relation must match.
		for v := 1; v < g.NumVertices(); v++ {
			sameSeq := want.Label[v] == want.Label[v-1]
			sameDist := got.Label[v] == got.Label[v-1]
			if sameSeq != sameDist {
				t.Fatalf("ranks=%d: component relation differs at %d", ranks, v)
			}
		}
		// Labels are component minima.
		for v, l := range got.Label {
			if l > graph.VID(v) {
				t.Fatalf("label[%d] = %d not a minimum", v, l)
			}
		}
	}
}

func TestLargestComponentMatchesSequential(t *testing.T) {
	b := graph.NewBuilder(60)
	for v := 1; v < 40; v++ {
		b.AddEdge(graph.VID(v-1), graph.VID(v), 1)
	}
	for v := 41; v < 50; v++ {
		b.AddEdge(graph.VID(v-1), graph.VID(v), 1)
	}
	g, _ := b.Build()
	got := LargestComponent(newComm(t, 60, 4), g)
	want := graph.LargestComponentVertices(g)
	if len(got) != len(want) {
		t.Fatalf("size %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("vertex %d: %d != %d", i, got[i], want[i])
		}
	}
}

func TestPropertyKernelsAgreeWithSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(120)
		g := randomGraph(seed, n, rng.Intn(2) == 0)
		ranks := 1 + rng.Intn(6)
		part, _ := partition.NewBlock(n, ranks)
		q := []rt.QueueKind{rt.QueueFIFO, rt.QueuePriority, rt.QueueBucket}[rng.Intn(3)]
		c := rt.MustNew(rt.Config{
			Ranks: ranks, Queue: q,
			ShuffleDelivery: true, ShuffleSeed: seed,
		}, part)
		src := graph.VID(rng.Intn(n))
		bfs := BFS(c, g, src)
		wantBFS := graph.BFS(g, src)
		for v := 0; v < n; v++ {
			if bfs.Level[v] != wantBFS.Level[v] {
				return false
			}
		}
		c2 := rt.MustNew(rt.Config{Ranks: ranks, Queue: q}, part)
		cc := Components(c2, g)
		wantCC := graph.ConnectedComponents(g)
		return cc.NumComponents() == wantCC.NumComponents()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
