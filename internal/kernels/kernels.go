// Package kernels implements additional distributed vertex-centric graph
// kernels on the message-passing runtime: breadth-first search and
// connected components. They play two roles in the reproduction: (a) they
// are the standard algorithm suite of the HavoqGT-class framework the paper
// extends (its §IV lists BFS-style traversals as the framework's bread and
// butter), and (b) the paper's seed-selection methodology (§V) needs BFS
// levels and largest-component membership, which at the paper's scale must
// themselves run distributed.
package kernels

import (
	"dsteiner/internal/graph"
	rt "dsteiner/internal/runtime"
)

// BFSResult is the distributed BFS output (hop levels and parents).
type BFSResult struct {
	// Level[v] is the hop distance from the source, -1 if unreached.
	Level []int32
	// Parent[v] is the BFS-tree parent with deterministic tie-breaking
	// (smallest parent ID per level), NilVID for source/unreached.
	Parent []graph.VID
}

// BFSRank runs one rank's share of a distributed BFS from source (call
// inside Comm.Run). The result arrays are shared across ranks with
// per-vertex ownership. Deterministic: a vertex adopts the smallest-ID
// parent among those offering its final level.
func BFSRank(r *rt.Rank, g *graph.Graph, source graph.VID, res *BFSResult) rt.TraversalStats {
	return r.Traverse(&rt.Traversal{
		Key: rt.DistKey, // level-priority accelerates convergence like Alg. 4
		Init: func(r *rt.Rank) {
			if r.Owns(source) {
				r.Send(rt.Msg{Target: source, From: graph.NilVID, Dist: 0})
			}
		},
		Visit: func(r *rt.Rank, m rt.Msg) {
			v := m.Target
			level := int32(m.Dist)
			cur := res.Level[v]
			switch {
			case cur >= 0 && cur < level:
				return // already better
			case cur == level:
				// Same level: keep the smaller parent, no re-relax.
				if m.From != graph.NilVID && m.From < res.Parent[v] {
					res.Parent[v] = m.From
				}
				return
			}
			res.Level[v] = level
			res.Parent[v] = m.From
			ts, _ := g.Adj(v)
			for _, u := range ts {
				r.Send(rt.Msg{Target: u, From: v, Dist: m.Dist + 1})
			}
		},
	})
}

// BFS runs a standalone distributed BFS over the communicator.
func BFS(c *rt.Comm, g *graph.Graph, source graph.VID) *BFSResult {
	n := g.NumVertices()
	res := &BFSResult{
		Level:  make([]int32, n),
		Parent: make([]graph.VID, n),
	}
	for i := 0; i < n; i++ {
		res.Level[i] = -1
		res.Parent[i] = graph.NilVID
	}
	c.Run(func(r *rt.Rank) {
		BFSRank(r, g, source, res)
	})
	return res
}

// ComponentsResult is the distributed connected-components output.
type ComponentsResult struct {
	// Label[v] is the smallest vertex ID in v's component (the classic
	// min-label fixed point), -1 only for graphs with zero vertices.
	Label []graph.VID
}

// NumComponents counts distinct labels.
func (cr *ComponentsResult) NumComponents() int {
	seen := map[graph.VID]bool{}
	for _, l := range cr.Label {
		seen[l] = true
	}
	return len(seen)
}

// ComponentsRank runs one rank's share of min-label propagation: every
// vertex starts labelled with its own ID and adopts any smaller label,
// notifying neighbors — the asynchronous HashMin algorithm.
func ComponentsRank(r *rt.Rank, g *graph.Graph, res *ComponentsResult) rt.TraversalStats {
	return r.Traverse(&rt.Traversal{
		Key: func(m rt.Msg) uint64 { return uint64(m.Seed) }, // small labels first
		Init: func(r *rt.Rank) {
			r.OwnedVertices(func(v graph.VID) {
				r.Send(rt.Msg{Target: v, Seed: v})
			})
		},
		Visit: func(r *rt.Rank, m rt.Msg) {
			v := m.Target
			if res.Label[v] != graph.NilVID && res.Label[v] <= m.Seed {
				return
			}
			res.Label[v] = m.Seed
			ts, _ := g.Adj(v)
			for _, u := range ts {
				r.Send(rt.Msg{Target: u, Seed: m.Seed})
			}
		},
	})
}

// Components runs standalone distributed connected components.
func Components(c *rt.Comm, g *graph.Graph) *ComponentsResult {
	n := g.NumVertices()
	res := &ComponentsResult{Label: make([]graph.VID, n)}
	for i := 0; i < n; i++ {
		res.Label[i] = graph.NilVID
	}
	c.Run(func(r *rt.Rank) {
		ComponentsRank(r, g, res)
	})
	return res
}

// LargestComponent returns the vertices of the largest component (ties to
// the smaller label), in increasing order — the distributed counterpart of
// graph.LargestComponentVertices used by seed selection at scale.
func LargestComponent(c *rt.Comm, g *graph.Graph) []graph.VID {
	res := Components(c, g)
	counts := map[graph.VID]int{}
	for _, l := range res.Label {
		counts[l]++
	}
	best, bestN := graph.NilVID, -1
	for l, n := range counts {
		if n > bestN || (n == bestN && l < best) {
			best, bestN = l, n
		}
	}
	var out []graph.VID
	for v, l := range res.Label {
		if l == best {
			out = append(out, graph.VID(v))
		}
	}
	return out
}
