package core

import "errors"

// ErrSessionFault marks solve errors caused by a TCP worker-session fault
// — a lost worker or coordinator connection, a rank crash, a poisoned
// session — as opposed to errors of the query itself (bad seeds,
// disconnected terminals, version mismatches). Serving layers match it
// with errors.Is (or IsSessionFault) to decide a solve is worth retrying
// against a healed fleet: the query was fine, the fleet was not.
var ErrSessionFault = errors.New("core: session fault")

// sessionFaultErr wraps a TCP-backend dispatch error so errors.Is(err,
// ErrSessionFault) matches while the original error chain stays intact.
type sessionFaultErr struct{ err error }

func (e *sessionFaultErr) Error() string { return e.err.Error() }

func (e *sessionFaultErr) Unwrap() error { return e.err }

func (e *sessionFaultErr) Is(target error) bool { return target == ErrSessionFault }

// IsSessionFault reports whether err came from a worker-session fault
// rather than the query itself.
func IsSessionFault(err error) bool { return errors.Is(err, ErrSessionFault) }

// FaultStats is a BackendTCP engine's fault-tolerance accounting, mirrored
// from the coordinator hub: sessions poisoned, workers re-admitted through
// Rejoin frames, successful session heals, queries requeued onto a healed
// generation, and the most recent poisoning reason. Loopback engines
// report zeros (there is no session to lose).
type FaultStats struct {
	Detected  int64
	Rejoins   int64
	Heals     int64
	Requeued  int64
	LastError string
}

// FaultStats reports the engine's fault accounting.
func (e *Engine) FaultStats() FaultStats {
	if e.cluster == nil {
		return FaultStats{}
	}
	fs := e.cluster.hub.FaultStats()
	return FaultStats{
		Detected:  fs.Detected,
		Rejoins:   fs.Rejoins,
		Heals:     fs.Heals,
		Requeued:  fs.Requeued,
		LastError: fs.LastError,
	}
}
