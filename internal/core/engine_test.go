package core

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"dsteiner/internal/graph"
)

// engineTestGraph builds a reproducible random connected graph.
func engineTestGraph(seed int64, n int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(graph.VID(rng.Intn(v)), graph.VID(v), uint32(rng.Intn(30))+1)
	}
	for i := 0; i < 2*n; i++ {
		b.AddEdge(graph.VID(rng.Intn(n)), graph.VID(rng.Intn(n)), uint32(rng.Intn(30))+1)
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func pickEngineSeeds(rng *rand.Rand, n, k int) []graph.VID {
	seen := map[graph.VID]bool{}
	out := make([]graph.VID, 0, k)
	for len(out) < k {
		s := graph.VID(rng.Intn(n))
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// TestEngineReuseMatchesColdSolve drives one Engine through 100 queries with
// varying seed sets and checks every result is identical — tree edge set,
// total distance, seed set — to a cold Solve of the same query. This is the
// acceptance bar for the pooled epoch-versioned state, now held in per-rank
// StateSlabs (owned rows + delegate mirror stripes + walk marks, all reset
// by one epoch bump per slab): stale entries from earlier queries must never
// surface. DelegateThreshold is set so the mirror stripes are exercised on
// every one of the 100 reuses.
func TestEngineReuseMatchesColdSolve(t *testing.T) {
	g := engineTestGraph(42, 400)
	opts := Default(4)
	opts.DelegateThreshold = 8
	e, err := NewEngine(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.slabs == nil || len(e.slabs) != opts.Ranks {
		t.Fatalf("engine did not build per-rank state slabs: %v", e.slabs)
	}
	if s := e.ShardStats(); s.StateSlabBytes <= 0 || s.MaxStateSlabBytes <= 0 {
		t.Fatalf("state-slab accounting missing: %+v", s)
	}
	rng := rand.New(rand.NewSource(43))
	for q := 0; q < 100; q++ {
		seeds := pickEngineSeeds(rng, g.NumVertices(), 2+rng.Intn(8))
		warm, err := e.Solve(seeds)
		if err != nil {
			t.Fatalf("query %d: engine solve: %v", q, err)
		}
		cold, err := Solve(g, seeds, opts)
		if err != nil {
			t.Fatalf("query %d: cold solve: %v", q, err)
		}
		if !reflect.DeepEqual(warm.Tree, cold.Tree) {
			t.Fatalf("query %d seeds %v: trees differ\nwarm %v\ncold %v", q, seeds, warm.Tree, cold.Tree)
		}
		if warm.TotalDistance != cold.TotalDistance {
			t.Fatalf("query %d: total %d != cold %d", q, warm.TotalDistance, cold.TotalDistance)
		}
		if !reflect.DeepEqual(warm.Seeds, cold.Seeds) {
			t.Fatalf("query %d: seeds %v != cold %v", q, warm.Seeds, cold.Seeds)
		}
		if warm.SteinerVertices != cold.SteinerVertices {
			t.Fatalf("query %d: steiner vertices %d != %d", q, warm.SteinerVertices, cold.SteinerVertices)
		}
	}
}

// TestEngineRepeatedIdenticalQuery checks byte-identical results when the
// exact same query is re-issued against a reused engine.
func TestEngineRepeatedIdenticalQuery(t *testing.T) {
	g := engineTestGraph(7, 300)
	e, err := NewEngine(g, Default(2))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	seeds := []graph.VID{5, 77, 150, 288}
	first, err := e.Solve(seeds)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 20; q++ {
		again, err := e.Solve(seeds)
		if err != nil {
			t.Fatalf("repeat %d: %v", q, err)
		}
		if !reflect.DeepEqual(again.Tree, first.Tree) || again.TotalDistance != first.TotalDistance {
			t.Fatalf("repeat %d drifted: %v (total %d) vs %v (total %d)",
				q, again.Tree, again.TotalDistance, first.Tree, first.TotalDistance)
		}
	}
}

// TestEngineRecoversAfterQueryError verifies an engine keeps serving valid
// queries after a failed one (bad seeds, disconnected seeds).
func TestEngineRecoversAfterQueryError(t *testing.T) {
	b := graph.NewBuilder(8)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 2)
	b.AddEdge(2, 3, 3)
	b.AddEdge(4, 5, 1) // second component
	g, _ := b.Build()
	e, err := NewEngine(g, Default(2))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	if _, err := e.Solve(nil); err == nil || !strings.Contains(err.Error(), "empty seed set") {
		t.Fatalf("empty seeds: err = %v", err)
	}
	if _, err := e.Solve([]graph.VID{0, 99}); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out of range: err = %v", err)
	}
	if _, err := e.Solve([]graph.VID{0, 4}); err == nil || !strings.Contains(err.Error(), "connected components") {
		t.Fatalf("disconnected: err = %v", err)
	}
	res, err := e.Solve([]graph.VID{0, 3})
	if err != nil {
		t.Fatalf("valid query after errors: %v", err)
	}
	if res.TotalDistance != 6 {
		t.Fatalf("total = %d, want 6", res.TotalDistance)
	}
}

// TestEngineSingleSeed covers the degenerate single-seed fast path on a
// reused engine, and the duplicate-seed rejection next to it.
func TestEngineSingleSeed(t *testing.T) {
	g := engineTestGraph(11, 50)
	e, err := NewEngine(g, Default(2))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	res, err := e.Solve([]graph.VID{7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tree) != 0 || len(res.Seeds) != 1 || res.Seeds[0] != 7 {
		t.Fatalf("res = %+v", res)
	}
	if _, err := e.Solve([]graph.VID{7, 7, 7}); !errors.Is(err, ErrDuplicateSeed) {
		t.Fatalf("duplicate seeds: err = %v, want ErrDuplicateSeed", err)
	}
	// A real query must still work afterwards.
	if _, err := e.Solve([]graph.VID{0, 30}); err != nil {
		t.Fatal(err)
	}
}

// TestEngineSolveBatch checks SolveBatch against per-query Solve: same
// results in input order, with per-item errors that leave the rest of the
// batch untouched.
func TestEngineSolveBatch(t *testing.T) {
	g := engineTestGraph(23, 300)
	opts := Default(3)
	e, err := NewEngine(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	sets := [][]graph.VID{
		{0, 100, 250},
		{5, 5}, // duplicate: must fail alone
		{12, 200},
		nil, // empty: must fail alone
		{7, 70, 170, 299},
		{1, 999},      // out of range: must fail alone
		{0, 100, 250}, // repeat of the first set
	}
	items := e.SolveBatch(context.Background(), sets)
	if len(items) != len(sets) {
		t.Fatalf("items = %d, want %d", len(items), len(sets))
	}
	for _, i := range []int{1, 3, 5} {
		if items[i].Err == nil || items[i].Result != nil {
			t.Fatalf("item %d: expected error, got %+v", i, items[i])
		}
	}
	if !errors.Is(items[1].Err, ErrDuplicateSeed) {
		t.Fatalf("item 1: err = %v, want ErrDuplicateSeed", items[1].Err)
	}
	for _, i := range []int{0, 2, 4, 6} {
		if items[i].Err != nil {
			t.Fatalf("item %d: %v", i, items[i].Err)
		}
		want, err := Solve(g, sets[i], opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(items[i].Result.Tree, want.Tree) ||
			items[i].Result.TotalDistance != want.TotalDistance {
			t.Fatalf("item %d: batch result differs from cold solve", i)
		}
	}
}

// TestSolveBatchCancelledContext checks the remaining items of a batch fail
// with the context's error once it is cancelled, instead of solving work
// nobody will read.
func TestSolveBatchCancelledContext(t *testing.T) {
	g := engineTestGraph(31, 100)
	e, err := NewEngine(g, Default(2))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	items := e.SolveBatch(ctx, [][]graph.VID{{0, 50}, {1, 60}})
	for i, it := range items {
		if !errors.Is(it.Err, context.Canceled) || it.Result != nil {
			t.Fatalf("item %d: %+v, want context.Canceled", i, it)
		}
	}
	// The engine must still serve live contexts afterwards.
	items = e.SolveBatch(context.Background(), [][]graph.VID{{0, 50}})
	if items[0].Err != nil {
		t.Fatal(items[0].Err)
	}
}

// TestValidateSeedSet checks the exported validation matches Solve's rules.
func TestValidateSeedSet(t *testing.T) {
	if err := ValidateSeedSet(10, []graph.VID{3, 1, 2}); err != nil {
		t.Fatalf("valid set rejected: %v", err)
	}
	if err := ValidateSeedSet(10, nil); err == nil {
		t.Error("empty set accepted")
	}
	if err := ValidateSeedSet(10, []graph.VID{3, 10}); err == nil {
		t.Error("out-of-range seed accepted")
	}
	if err := ValidateSeedSet(10, []graph.VID{3, 3}); !errors.Is(err, ErrDuplicateSeed) {
		t.Errorf("duplicate: err = %v, want ErrDuplicateSeed", err)
	}
}

// TestResultClone verifies a clone shares no slices with the original — the
// property the steinersvc solution cache relies on to serve one stored
// Result to many readers.
func TestResultClone(t *testing.T) {
	g := engineTestGraph(29, 120)
	res, err := Solve(g, []graph.VID{0, 60, 110}, Default(2))
	if err != nil {
		t.Fatal(err)
	}
	cp := res.Clone()
	if !reflect.DeepEqual(cp, res) {
		t.Fatalf("clone differs: %+v vs %+v", cp, res)
	}
	if len(res.Tree) == 0 || len(res.Phases) == 0 {
		t.Fatal("test needs a non-trivial result")
	}
	res.Tree[0].W++
	res.Seeds[0]++
	res.Phases[0].Seconds++
	if cp.Tree[0] == res.Tree[0] || cp.Seeds[0] == res.Seeds[0] || cp.Phases[0].Seconds == res.Phases[0].Seconds {
		t.Fatal("clone aliases the original's slices")
	}
	var nilRes *Result
	if nilRes.Clone() != nil {
		t.Fatal("nil clone should be nil")
	}
}

// TestEngineConcurrentCallsSerialized checks that concurrent Solve calls on
// a single engine are safe (internally serialized) and all produce correct
// results — no cross-query state leakage.
func TestEngineConcurrentCallsSerialized(t *testing.T) {
	g := engineTestGraph(13, 200)
	opts := Default(2)
	e, err := NewEngine(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	seedSets := [][]graph.VID{
		{0, 100, 199},
		{5, 50},
		{10, 90, 140, 180},
		{2, 3, 4, 5, 6},
	}
	want := make([]*Result, len(seedSets))
	for i, s := range seedSets {
		w, err := Solve(g, s, opts)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = w
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for it := 0; it < 4; it++ {
		for i, s := range seedSets {
			wg.Add(1)
			go func(i int, s []graph.VID) {
				defer wg.Done()
				res, err := e.Solve(s)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(res.Tree, want[i].Tree) {
					errs <- &mismatchError{i}
				}
			}(i, s)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type mismatchError struct{ i int }

func (e *mismatchError) Error() string { return "concurrent engine result mismatch" }
