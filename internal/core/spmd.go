package core

import (
	"fmt"
	"sort"

	"dsteiner/internal/faultpoint"
	"dsteiner/internal/graph"
	"dsteiner/internal/mst"
	rt "dsteiner/internal/runtime"
	"dsteiner/internal/voronoi"
	"dsteiner/internal/wire"
)

// solveEnv is one query's per-process environment for the six-phase SPMD
// solve body. It was extracted from Engine.Solve so the body can run in
// two homes with identical code: every rank of a loopback Engine, and the
// hosted rank subset of a remote rankd worker — where the process holds
// only its shards, slabs and scratch tables, and everything global flows
// through collectives. Fields indexed by rank use GLOBAL rank ids; a
// worker populates only the hosted entries.
type solveEnv struct {
	// g is the resident global CSR; nil on remote workers, whose body
	// never touches it (the GlobalCSR reference mode is loopback-only).
	g    *graph.Graph
	opts Options
	comm *rt.Comm

	// Per-query inputs, identical on every process.
	dedup   []graph.VID
	seedIdx map[graph.VID]int32

	// Mode-specific inputs, also identical on every process: the query
	// mode, the dense-terminal→group map and group count (forest; nil/0
	// otherwise) and the dense-terminal penalties (prize; nil otherwise).
	mode      Mode
	groupOf   []int32
	numGroups int
	penalty   []graph.Dist

	// res is written by global rank 0 between barriers; only the process
	// hosting rank 0 publishes it. err is rank 0's solve error.
	res *Result
	err error

	// mstFragment selects the rank-parallel fragment merge for phases 3–5
	// (resolved from Options.MSTMode by the engine or worker, identically
	// on every process; always false for prize queries, whose moat-growing
	// plan needs the full replicated table).
	mstFragment bool

	// Pooled per-rank scratch (the owning Engine's or worker's pools).
	localENs []map[int64]crossEdge
	pruneds  []map[int64]crossEdge
	trees    [][]graph.Edge
	// owneds and frags are the fragment merge's pooled per-rank state: the
	// rank-sharded cross table and the fragment-label array. merges is the
	// replicated path's pooled wire scratch (encode buffer + merge target);
	// nil on loopback, which merges shared maps in-memory.
	owneds []map[int64]crossEdge
	frags  [][]int32
	merges []*mergeScratch

	// GlobalCSR reference-mode shared state (loopback only).
	st        *voronoi.State
	walked    []uint64
	walkedGen uint64
}

// rankBody runs the six solver phases on one rank. It must be invoked
// SPMD on every rank of the communicator — local or remote — with an
// identically-initialized env.
func (env *solveEnv) rankBody(r *rt.Rank) {
	g, opts, dedup, seedIdx := env.g, env.opts, env.dedup, env.seedIdx
	res := env.res
	rec := &recorder{comm: env.comm, res: res, dist: r.Distributed()}
	rec.lo, _ = env.comm.HostRange()

	// Rank-local accessors: the production path reads this rank's CSR
	// slab for adjacency and its StateSlab for control state; the
	// GlobalCSR reference path scans the shared global arrays exactly
	// as before the shard/slab refactors. Adjacency lookups take an
	// owned vertex first (edge weights are symmetric, so looking up
	// {u, v} from u's slab row equals the global edge weight); state
	// access through st touches only owned vertices — remote state is
	// reached via the mailbox (the Alg. 5 request/reply exchange),
	// never direct reads.
	adjOf := r.Adj
	edgeWeight := r.EdgeWeight
	var st voronoi.Control
	var markWalked func(graph.VID) bool
	if opts.GlobalCSR {
		adjOf = g.Adj
		edgeWeight = g.HasEdge
		st = env.st
		markWalked = func(v graph.VID) bool {
			if env.walked[v] == env.walkedGen {
				return false
			}
			env.walked[v] = env.walkedGen
			return true
		}
	} else {
		sl := voronoi.SlabOf(r)
		st = sl
		markWalked = sl.MarkWalked
	}

	// Phase 1: Voronoi cells (Alg. 4).
	faultpoint.Hit("solve.phase1")
	rec.phase(r, PhaseVoronoi, func() int64 {
		var ts rt.TraversalStats
		switch {
		case opts.GlobalCSR && opts.BSP:
			ts = voronoi.RunRankGlobalBSP(r, g, dedup, env.st)
		case opts.GlobalCSR:
			ts = voronoi.RunRankGlobal(r, g, dedup, env.st)
		case opts.BSP:
			ts = voronoi.RunRankBSP(r, dedup)
		default:
			ts = voronoi.RunRank(r, dedup)
		}
		return ts.Processed
	})

	// Phase 2: local min-distance cross-cell edges (Alg. 5,
	// LOCAL_MIN_DIST_EDGE_ASYNC). Remote endpoint state is fetched
	// with a request/reply visitor exchange.
	localEN := env.localENs[r.ID()]
	recordCandidate := func(u, v graph.VID, dv graph.Dist, srcV graph.VID) {
		su := st.Src(u)
		if su == graph.NilVID || srcV == graph.NilVID || su == srcV {
			return
		}
		// Forest mode: a candidate joining cells of two different groups
		// can never appear in any group's tree, so it is excluded here —
		// the merged distance graph then holds intra-group edges only.
		if env.groupOf != nil && env.groupOf[seedIdx[su]] != env.groupOf[seedIdx[srcV]] {
			return
		}
		w, ok := edgeWeight(u, v) // u is always owned by this rank
		if !ok {
			return
		}
		cand := crossEdge{D: st.Dist(u) + graph.Dist(w) + dv, U: u, V: v}
		key := seedKey(su, srcV)
		if cur, ok := localEN[key]; ok {
			localEN[key] = pickCross(cur, cand)
		} else {
			localEN[key] = cand
		}
	}
	faultpoint.Hit("solve.phase2")
	rec.phase(r, PhaseLocalMinEdge, func() int64 {
		ts := r.Traverse(&rt.Traversal{
			BSP: opts.BSP,
			Init: func(r *rt.Rank) {
				r.OwnedVertices(func(u graph.VID) {
					if st.Src(u) == graph.NilVID {
						return
					}
					adj, _ := adjOf(u)
					for _, v := range adj {
						if u >= v {
							continue // lower endpoint initiates
						}
						if r.Owns(v) {
							recordCandidate(u, v, st.Dist(v), st.Src(v))
						} else {
							r.Send(rt.Msg{Target: v, From: u, Kind: kindReqDist})
						}
					}
				})
			},
			Visit: func(r *rt.Rank, m rt.Msg) {
				switch m.Kind {
				case kindReqDist:
					v := m.Target
					r.Send(rt.Msg{
						Target: m.From, From: v,
						Seed: st.Src(v), Dist: st.Dist(v),
						Kind: kindRepDist,
					})
				case kindRepDist:
					recordCandidate(m.Target, m.From, m.Dist, m.Seed)
				}
			},
		})
		return ts.Processed
	})

	// Phase 3: global min-distance edges. The fragment merge routes each
	// record to the rank owning the pair's lower seed, leaving a disjoint
	// table shard per rank; the replicated path is the paper's
	// MPI_Allreduce(MPI_MIN) over the per-rank E_N tables. With
	// CollectiveChunk set (replicated only), the table is reduced in
	// key-partitioned chunks, trading collective-buffer memory for extra
	// rounds (the paper's §V-F mitigation for the |S|=10K blowup).
	var merged map[int64]crossEdge
	var owned map[int64]crossEdge
	fs := &fragStats{}
	ok := true
	faultpoint.Hit("solve.phase3")
	rec.phase(r, PhaseGlobalMinEdge, func() int64 {
		if env.mstFragment {
			owned, ok = env.fragmentRoute(r, localEN, fs)
			return 0
		}
		if opts.CollectiveChunk <= 0 {
			merged, ok = env.mergeCrossTables(r, localEN, fs)
			if r.ID() == 0 {
				res.CollectiveChunks = 1
			}
			return 0
		}
		maxSize := r.AllreduceMaxInt64(int64(len(localEN)))
		numChunks := int((maxSize + int64(opts.CollectiveChunk) - 1) / int64(opts.CollectiveChunk))
		if numChunks < 1 {
			numChunks = 1
		}
		merged = make(map[int64]crossEdge, len(localEN))
		for c := 0; c < numChunks; c++ {
			sub := map[int64]crossEdge{}
			for k, v := range localEN {
				if int(uint64(k)%uint64(numChunks)) == c {
					sub[k] = v
				}
			}
			part, partOK := env.mergeCrossTables(r, sub, fs)
			if !partOK {
				ok = false
				return 0
			}
			for k, v := range part {
				merged[k] = v
			}
		}
		if r.ID() == 0 {
			res.CollectiveChunks = numChunks
		}
		return 0
	})
	if !ok {
		return // cross-table decode failure: all ranks bail together
	}

	// Phase 4: MST of the distance graph G'₁ (Alg. 3 line 17). The
	// fragment merge runs distributed Borůvka rounds over the sharded
	// table; the replicated path computes a sequential MST locally on
	// every rank — G'₁ is small, so replication avoids remote copies, as
	// in the paper. seedIdx is shared read-only (built before the SPMD
	// body).
	pruned := env.pruneds[r.ID()]
	var mstPairs map[int64]bool
	faultpoint.Hit("solve.phase4")
	rec.phase(r, PhaseMST, func() int64 {
		if env.mstFragment {
			ok = env.fragmentMST(r, owned, pruned, fs)
			return 0
		}
		if r.Distributed() {
			// The replicated gather's payload total, for comparison with
			// the fragment merge's CrossTableBytes.
			if bytes := r.AllreduceSumInt64(fs.bytes); r.ID() == 0 {
				res.CrossTableBytes = bytes
			}
		}
		keys := make([]int64, 0, len(merged))
		for k := range merged {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		wedges := make([]mst.WEdge, len(keys))
		for i, k := range keys {
			s, t := unpackSeedKey(k)
			wedges[i] = mst.WEdge{U: seedIdx[s], V: seedIdx[t], W: merged[k].D}
		}
		if r.ID() == 0 {
			res.DistGraphEdges = len(wedges)
		}

		// Prize mode: the moat-growing plan (deterministic over the
		// replicated table, hence identical on every rank) picks the kept
		// subset; skipped terminals and their edges leave the MST input.
		keptCount := len(dedup)
		if env.mode == ModePrize {
			keep := prizePlan(len(dedup), wedges, env.penalty)
			kept := wedges[:0]
			for _, we := range wedges {
				if keep[we.U] && keep[we.V] {
					kept = append(kept, we)
				}
			}
			wedges = kept
			keptCount = 0
			var skipped []graph.VID
			for i, k := range keep {
				if k {
					keptCount++
				} else {
					skipped = append(skipped, dedup[i])
				}
			}
			if r.ID() == 0 {
				res.Skipped = skipped
			}
		}

		var forest mst.Result
		switch opts.MST {
		case MSTKruskal:
			forest = mst.Kruskal(len(dedup), wedges)
		case MSTBoruvka:
			var rounds int
			forest, rounds = mst.Boruvka(len(dedup), wedges)
			if r.ID() == 0 {
				res.MSTRounds = rounds
			}
		default:
			forest = mst.Prim(len(dedup), wedges)
		}

		// Connectivity requirement by mode: one component spanning all
		// terminals for tree, one per group for forest (the MST of the
		// group-filtered table is a spanning forest with exactly one tree
		// per group), one over the kept subset for prize.
		want := keptCount - 1
		if env.mode == ModeForest {
			want = len(dedup) - env.numGroups
		}
		if len(forest.Edges) < want {
			if r.ID() == 0 {
				switch env.mode {
				case ModeForest:
					env.err = forestDisconnectedErr(env.groupOf, env.numGroups, len(dedup), forest.Edges)
				case ModePrize:
					env.err = fmt.Errorf("core: internal error: prize kept set spans %d connected components",
						keptCount-len(forest.Edges))
				default:
					env.err = fmt.Errorf("core: seeds span %d connected components; Steiner tree requires one",
						len(dedup)-len(forest.Edges))
				}
			}
			mstPairs = nil
			return 0
		}
		mstPairs = make(map[int64]bool, len(forest.Edges))
		for _, fe := range forest.Edges {
			mstPairs[seedKey(dedup[fe.U], dedup[fe.V])] = true
		}
		return 0
	})
	if env.mstFragment {
		if !ok {
			return // disconnected seeds or corrupt round: uniform bail
		}
	} else if mstPairs == nil {
		return // disconnected seeds: all ranks bail out identically
	}

	// Phase 5: global edge pruning (Alg. 5, EDGE_PRUNING_COLL) —
	// cross-cell edges whose cell pair is not an MST edge are
	// dropped. The total order in pickCross already guarantees a
	// unique survivor per pair, so no second collective is needed.
	// The fragment merge accumulated its winners into pruned during
	// the Borůvka rounds, so its phase 5 is already done.
	faultpoint.Hit("solve.phase5")
	rec.phase(r, PhasePruning, func() int64 {
		if env.mstFragment {
			return 0
		}
		for k, ce := range merged {
			if mstPairs[k] {
				pruned[k] = ce
			}
		}
		return 0
	})

	// Phase 6: Steiner tree edges (Alg. 6) — walk predecessor
	// chains from surviving cross-cell endpoints to cell seeds.
	// The walked marks are epoch-versioned like the Voronoi state,
	// so no O(|V|) bitmap is re-zeroed between queries, and the
	// per-rank accumulator keeps its capacity (the published tree
	// is a sorted copy, so reuse cannot leak across queries).
	localTree := env.trees[r.ID()]
	faultpoint.Hit("solve.phase6")
	rec.phase(r, PhaseTreeEdge, func() int64 {
		ts := r.Traverse(&rt.Traversal{
			BSP: opts.BSP,
			Init: func(r *rt.Rank) {
				for _, ce := range pruned {
					if !r.Owns(ce.U) {
						continue // u's home partition records the edge
					}
					w, _ := edgeWeight(ce.U, ce.V)
					localTree = append(localTree, graph.Edge{U: ce.U, V: ce.V, W: w}.Canon())
					r.Send(rt.Msg{Target: ce.U})
					r.Send(rt.Msg{Target: ce.V})
				}
			},
			Visit: func(r *rt.Rank, m rt.Msg) {
				vj := m.Target
				if !markWalked(vj) {
					return
				}
				if vj == st.Src(vj) {
					return
				}
				p := st.Pred(vj)
				// vj is owned here; its predecessor may not be, so the
				// lookup goes through vj's slab row (weights are
				// symmetric).
				w, _ := edgeWeight(vj, p)
				localTree = append(localTree, graph.Edge{U: p, V: vj, W: w}.Canon())
				r.Send(rt.Msg{Target: p})
			},
		})
		return ts.Processed
	})
	env.trees[r.ID()] = localTree // keep the grown capacity pooled

	// Gather the final tree on every process hosting rank 0; rank 0
	// publishes it. Loopback shares slices through the generic
	// AllGather; across a transport the fragments travel as encoded
	// blobs through the rank-ordered gather collective.
	var tree []graph.Edge
	if r.Distributed() {
		parts := rt.GatherBlobs(r, wire.EncodeEdges(nil, localTree))
		if r.ID() == 0 {
			for rank, blob := range parts {
				if len(blob) == 0 {
					continue
				}
				var err error
				if tree, err = wire.DecodeEdges(blob, tree); err != nil {
					env.err = fmt.Errorf("core: tree gather from rank %d: %w", rank, err)
					return
				}
			}
		}
	} else {
		tree = rt.AllGather(r, localTree)
	}
	if r.ID() == 0 {
		sorted := append([]graph.Edge(nil), tree...)
		sort.Slice(sorted, func(i, j int) bool {
			if sorted[i].U != sorted[j].U {
				return sorted[i].U < sorted[j].U
			}
			return sorted[i].V < sorted[j].V
		})
		res.Tree = sorted
		res.TotalDistance = graph.TotalWeight(sorted)
	}
}

// forestDisconnectedErr names the first forest group whose terminals the
// group-filtered distance graph cannot connect.
func forestDisconnectedErr(groupOf []int32, numGroups, nT int, edges []mst.WEdge) error {
	uf := make([]int32, nT)
	for i := range uf {
		uf[i] = int32(i)
	}
	find := func(x int32) int32 {
		for uf[x] != x {
			uf[x] = uf[uf[x]]
			x = uf[x]
		}
		return x
	}
	for _, e := range edges {
		if ru, rv := find(e.U), find(e.V); ru != rv {
			uf[ru] = rv
		}
	}
	comps := make([]int, numGroups)
	seen := make(map[int32]bool, nT)
	for i := 0; i < nT; i++ {
		r := find(int32(i))
		if !seen[r] {
			seen[r] = true
			comps[groupOf[i]]++
		}
	}
	for gi, c := range comps {
		if c > 1 {
			return fmt.Errorf("core: forest group %d spans %d connected components; each group must be connected",
				gi, c)
		}
	}
	return fmt.Errorf("core: forest groups are not all connected")
}

// mergeScratch is a rank's pooled replicated-merge wire scratch: the
// cross-table encode buffer and the distributed merge target map, reused
// across queries like the transport's encode scratch.
type mergeScratch struct {
	enc    []byte
	merged map[int64]crossEdge
}

// mergeCrossTables merges the per-rank E_N tables into the globally-minimal
// cross-cell edge per cell pair. Loopback uses the generic shared-memory
// map reduction; across a transport each rank's table travels as an
// encoded blob through the rank-ordered gather, and every process merges
// locally — pickCross is associative and commutative with a total order,
// so the merged table is identical everywhere regardless of merge order.
// A decode failure is uniform (every process decodes the same gathered
// blobs), so all ranks return ok=false together and rank 0 records the
// error — a fail-stop session abort instead of a process-killing panic.
// The returned map is the pooled scratch: valid until the next query.
func (env *solveEnv) mergeCrossTables(r *rt.Rank, local map[int64]crossEdge, fs *fragStats) (map[int64]crossEdge, bool) {
	if !r.Distributed() {
		return rt.ReduceMap(r, local, pickCross), true
	}
	sc := env.merges[r.ID()]
	sc.enc = encodeCrossTable(sc.enc[:0], local)
	fs.bytes += int64(len(sc.enc))
	parts := rt.GatherBlobs(r, sc.enc)
	clear(sc.merged)
	for rank, blob := range parts {
		if rank != r.ID() {
			fs.bytes += int64(len(blob))
		}
		if err := decodeCrossTableInto(sc.merged, blob); err != nil {
			if r.ID() == 0 {
				env.err = fmt.Errorf("core: cross-table gather from rank %d: %w", rank, err)
			}
			return nil, false
		}
	}
	return sc.merged, true
}

// encodeCrossTable encodes an E_N table for the gather collective.
func encodeCrossTable(dst []byte, table map[int64]crossEdge) []byte {
	dst = wire.AppendUvarint(dst, uint64(len(table)))
	for k, ce := range table {
		dst = wire.AppendVarint(dst, k)
		dst = wire.AppendUvarint(dst, uint64(ce.D))
		dst = wire.AppendUvarint(dst, uint64(uint32(ce.U)))
		dst = wire.AppendUvarint(dst, uint64(uint32(ce.V)))
	}
	return dst
}

// decodeCrossTableInto folds an encoded E_N table into dst under the
// pickCross total order.
func decodeCrossTableInto(dst map[int64]crossEdge, blob []byte) error {
	if len(blob) == 0 {
		return nil
	}
	d := wire.NewDec(blob)
	n := d.Uvarint()
	for i := uint64(0); i < n; i++ {
		k := d.Varint()
		ce := crossEdge{
			D: graph.Dist(d.Uvarint()),
			U: graph.VID(int32(d.Uvarint())),
			V: graph.VID(int32(d.Uvarint())),
		}
		if err := d.Err(); err != nil {
			return err
		}
		if cur, ok := dst[k]; ok {
			dst[k] = pickCross(cur, ce)
		} else {
			dst[k] = ce
		}
	}
	return d.Err()
}
