package core

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"dsteiner/internal/baseline"
	"dsteiner/internal/exact"
	"dsteiner/internal/graph"
	rt "dsteiner/internal/runtime"
)

func e(u, v graph.VID, w uint32) graph.Edge { return graph.Edge{U: u, V: v, W: w} }

// paperFig1 is the example of the paper's Fig. 1 (vertices renumbered to
// 0-based: paper vertex i is i-1).
func paperFig1() *graph.Graph {
	return graph.MustFromEdges(9, []graph.Edge{
		e(0, 1, 16), e(0, 4, 2), e(4, 5, 4), e(1, 5, 2), e(1, 2, 20),
		e(5, 6, 1), e(2, 6, 1), e(2, 3, 24), e(6, 7, 2), e(3, 7, 2), e(7, 8, 2), e(3, 8, 18),
	})
}

func randomConnected(seed int64, n int, maxW uint32) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(graph.VID(rng.Intn(v)), graph.VID(v), uint32(rng.Intn(int(maxW)))+1)
	}
	for i := 0; i < 2*n; i++ {
		b.AddEdge(graph.VID(rng.Intn(n)), graph.VID(rng.Intn(n)), uint32(rng.Intn(int(maxW)))+1)
	}
	g, _ := b.Build()
	return g
}

func pickSeeds(rng *rand.Rand, n, k int) []graph.VID {
	seen := map[graph.VID]bool{}
	var out []graph.VID
	for len(out) < k {
		s := graph.VID(rng.Intn(n))
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func TestPaperFig1Example(t *testing.T) {
	g := paperFig1()
	// Paper's seed set (red vertices): 1, 3, 4, 8, 9 → 0-based 0,2,3,7,8.
	seeds := []graph.VID{0, 2, 3, 7, 8}
	res, err := Solve(g, seeds, Default(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.ValidateSteinerTree(g, seeds, res.Tree); err != nil {
		t.Fatal(err)
	}
	// The optimal Steiner tree (Fig. 1b) uses edges 1-5,5-6,2-6,6-7,3-7,
	// 7-8,8-9 with total 2+4+2+1+2+2+2... compute the exact optimum and
	// check the 2-approximation bound.
	sol, err := exact.Solve(g, seeds, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalDistance < sol.Total {
		t.Fatalf("approximation %d beat the optimum %d", res.TotalDistance, sol.Total)
	}
	if float64(res.TotalDistance) > 2*float64(sol.Total) {
		t.Fatalf("bound violated: %d > 2x%d", res.TotalDistance, sol.Total)
	}
}

func TestSingleSeed(t *testing.T) {
	g := paperFig1()
	res, err := Solve(g, []graph.VID{4}, Default(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tree) != 0 || res.TotalDistance != 0 {
		t.Fatalf("single seed should give empty tree: %+v", res)
	}
}

func TestTwoSeedsIsShortestPath(t *testing.T) {
	// For |S|=2 the Steiner tree must be a shortest path (the paper's
	// framing: Steiner trees generalize shortest paths).
	g := randomConnected(7, 200, 30)
	for _, pair := range [][2]graph.VID{{0, 199}, {3, 150}, {17, 42}} {
		res, err := Solve(g, pair[:], Default(4))
		if err != nil {
			t.Fatal(err)
		}
		want, err := exact.Solve(g, pair[:], 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalDistance != want.Total {
			t.Fatalf("pair %v: got %d, want shortest path %d", pair, res.TotalDistance, want.Total)
		}
	}
}

func TestErrorCases(t *testing.T) {
	g := paperFig1()
	if _, err := Solve(g, nil, Default(1)); err == nil {
		t.Error("empty seeds accepted")
	}
	if _, err := Solve(g, []graph.VID{42}, Default(1)); err == nil {
		t.Error("out-of-range seed accepted")
	}
	// Disconnected seeds.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 3, 1)
	g2, _ := b.Build()
	_, err := Solve(g2, []graph.VID{0, 2}, Default(2))
	if err == nil || !strings.Contains(err.Error(), "connected") {
		t.Errorf("disconnected seeds: err = %v", err)
	}
}

func TestDuplicateSeedsRejected(t *testing.T) {
	g := paperFig1()
	_, err := Solve(g, []graph.VID{0, 7, 0, 7, 0}, Default(2))
	if err == nil {
		t.Fatal("duplicate seeds accepted")
	}
	if !errors.Is(err, ErrDuplicateSeed) {
		t.Fatalf("err = %v, want ErrDuplicateSeed", err)
	}
	if !strings.Contains(err.Error(), "0") {
		t.Fatalf("error does not name the offending seed: %v", err)
	}
}

func TestDeterministicAcrossRanksQueuesAndPartitions(t *testing.T) {
	g := randomConnected(11, 300, 25)
	rng := rand.New(rand.NewSource(12))
	seeds := pickSeeds(rng, 300, 7)
	var ref *Result
	for _, ranks := range []int{1, 2, 5, 8} {
		for _, q := range []rt.QueueKind{rt.QueueFIFO, rt.QueuePriority, rt.QueueBucket} {
			for _, pk := range []PartitionKind{PartitionBlock, PartitionHash, PartitionArcBlock} {
				opts := Options{Ranks: ranks, Queue: q, Partition: pk}
				res, err := Solve(g, seeds, opts)
				if err != nil {
					t.Fatalf("ranks=%d q=%v part=%v: %v", ranks, q, pk, err)
				}
				if ref == nil {
					ref = res
					continue
				}
				if res.TotalDistance != ref.TotalDistance || len(res.Tree) != len(ref.Tree) {
					t.Fatalf("ranks=%d q=%v part=%v: distance %d (%d edges), ref %d (%d edges)",
						ranks, q, pk, res.TotalDistance, len(res.Tree), ref.TotalDistance, len(ref.Tree))
				}
				for i := range res.Tree {
					if res.Tree[i] != ref.Tree[i] {
						t.Fatalf("ranks=%d q=%v part=%v: tree differs at %d: %v vs %v",
							ranks, q, pk, i, res.Tree[i], ref.Tree[i])
					}
				}
			}
		}
	}
}

func TestMSTAlgorithmsAgree(t *testing.T) {
	g := randomConnected(13, 250, 20)
	rng := rand.New(rand.NewSource(14))
	seeds := pickSeeds(rng, 250, 6)
	var totals []graph.Dist
	for _, algo := range []MSTAlgo{MSTPrim, MSTKruskal, MSTBoruvka} {
		opts := Default(3)
		opts.MST = algo
		// The sequential MST switch only exists on the replicated path
		// (the fragment merge has its own Borůvka and ignores MST).
		opts.MSTMode = MSTReplicated
		res, err := Solve(g, seeds, opts)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		totals = append(totals, res.TotalDistance)
		if algo == MSTBoruvka && res.MSTRounds < 1 {
			t.Errorf("Boruvka rounds = %d", res.MSTRounds)
		}
	}
	if totals[0] != totals[1] || totals[1] != totals[2] {
		t.Fatalf("MST algorithms disagree: %v", totals)
	}
}

func TestBSPMatchesAsync(t *testing.T) {
	g := randomConnected(17, 250, 20)
	rng := rand.New(rand.NewSource(18))
	seeds := pickSeeds(rng, 250, 5)
	async, err := Solve(g, seeds, Default(4))
	if err != nil {
		t.Fatal(err)
	}
	opts := Default(4)
	opts.BSP = true
	bsp, err := Solve(g, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if async.TotalDistance != bsp.TotalDistance {
		t.Fatalf("async %d != bsp %d", async.TotalDistance, bsp.TotalDistance)
	}
}

func TestDelegatesMatchPlain(t *testing.T) {
	// Hub-heavy graph.
	n := 150
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, graph.VID(v), uint32(v%23)+1)
		b.AddEdge(graph.VID(v), graph.VID((v%(n-1))+1), uint32(v%7)+1)
	}
	g, _ := b.Build()
	seeds := []graph.VID{1, 70, 140}
	plain, err := Solve(g, seeds, Default(4))
	if err != nil {
		t.Fatal(err)
	}
	opts := Default(4)
	opts.DelegateThreshold = 64
	deleg, err := Solve(g, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if plain.TotalDistance != deleg.TotalDistance {
		t.Fatalf("delegates changed result: %d vs %d", deleg.TotalDistance, plain.TotalDistance)
	}
}

func TestMatchesMehlhornTotalDistance(t *testing.T) {
	// The distributed algorithm and the sequential Mehlhorn baseline use
	// the same distance-graph construction with the same tie-breaking,
	// so total distances must agree (trees may differ in pred choices).
	for seed := int64(20); seed < 26; seed++ {
		g := randomConnected(seed, 180, 15)
		rng := rand.New(rand.NewSource(seed * 3))
		seeds := pickSeeds(rng, 180, 4+rng.Intn(5))
		res, err := Solve(g, seeds, Default(3))
		if err != nil {
			t.Fatal(err)
		}
		ref, err := baseline.Mehlhorn(g, seeds)
		if err != nil {
			t.Fatal(err)
		}
		// Mehlhorn's final MST+prune can only improve on the raw
		// expansion, so the distributed result is >= Mehlhorn's but
		// must stay within the same 2-approx family: allow equality or
		// slightly larger, bounded by the KMB guarantee below.
		if res.TotalDistance < ref.Total {
			t.Fatalf("seed %d: distributed %d beat Mehlhorn %d unexpectedly",
				seed, res.TotalDistance, ref.Total)
		}
		sol, err := exact.Solve(g, seeds, 0)
		if err == nil {
			if float64(res.TotalDistance) > 2*float64(sol.Total) {
				t.Fatalf("seed %d: bound violated: %d > 2x%d", seed, res.TotalDistance, sol.Total)
			}
		}
	}
}

func TestProperty2ApproxBoundAgainstExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(80)
		g := randomConnected(seed, n, 12)
		k := 2 + rng.Intn(6) // exact solver stays cheap
		seeds := pickSeeds(rng, n, k)
		res, err := Solve(g, seeds, Default(1+rng.Intn(4)))
		if err != nil {
			return false
		}
		sol, err := exact.Solve(g, seeds, 0)
		if err != nil {
			return false
		}
		if res.TotalDistance < sol.Total {
			return false // nothing beats the optimum
		}
		// Paper bound: D(G_S)/D_min <= 2(1-1/l) < 2.
		return float64(res.TotalDistance) <= 2*float64(sol.Total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyOutputAlwaysValidTree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(150)
		g := randomConnected(seed, n, 30)
		seeds := pickSeeds(rng, n, 2+rng.Intn(10))
		opts := Options{
			Ranks:           1 + rng.Intn(6),
			Queue:           rt.QueueKind(rng.Intn(3)),
			ShuffleDelivery: true,
			ShuffleSeed:     seed,
			BatchSize:       1 + rng.Intn(50),
		}
		res, err := Solve(g, seeds, opts)
		if err != nil {
			return false
		}
		// Solve validates internally unless skipped; double check here.
		return graph.ValidateSteinerTree(g, seeds, res.Tree) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPhaseStatsPopulated(t *testing.T) {
	g := randomConnected(31, 300, 20)
	rng := rand.New(rand.NewSource(32))
	seeds := pickSeeds(rng, 300, 8)
	res, err := Solve(g, seeds, Default(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != len(PhaseNames) {
		t.Fatalf("phases = %d, want %d", len(res.Phases), len(PhaseNames))
	}
	for i, name := range PhaseNames {
		if res.Phases[i].Name != name {
			t.Errorf("phase %d = %q, want %q", i, res.Phases[i].Name, name)
		}
	}
	vor := res.Phase(PhaseVoronoi)
	if vor.Sent == 0 || vor.Processed == 0 || vor.MaxRankWork == 0 {
		t.Errorf("voronoi phase stats empty: %+v", vor)
	}
	if res.Phase(PhaseMST).Sent != 0 {
		t.Errorf("MST phase should send no visitor messages")
	}
	tree := res.Phase(PhaseTreeEdge)
	if tree.Sent == 0 {
		t.Errorf("tree edge phase sent no messages")
	}
	// Tree-edge phase messages are orders of magnitude below Voronoi
	// (the paper's Alg. 6 message-efficiency claim).
	if tree.Sent*10 > vor.Sent {
		t.Errorf("tree edge messages %d not well below voronoi %d", tree.Sent, vor.Sent)
	}
	if res.TotalSeconds() <= 0 {
		t.Errorf("TotalSeconds = %f", res.TotalSeconds())
	}
	if res.TotalMessages() != vor.Sent+res.Phase(PhaseLocalMinEdge).Sent+tree.Sent {
		t.Errorf("TotalMessages inconsistent")
	}
	if res.DistGraphEdges <= 0 {
		t.Errorf("DistGraphEdges = %d", res.DistGraphEdges)
	}
	mem := res.Memory
	if mem.GraphBytes <= 0 || mem.StateBytes <= 0 || mem.AlgorithmBytes() <= 0 || mem.TotalBytes() <= mem.GraphBytes {
		t.Errorf("memory stats implausible: %+v", mem)
	}
}

func TestPriorityQueueReducesVoronoiMessages(t *testing.T) {
	// Fig. 6's claim at unit scale: priority discipline sends fewer
	// Voronoi messages than FIFO.
	g := randomConnected(41, 600, 200)
	rng := rand.New(rand.NewSource(42))
	seeds := pickSeeds(rng, 600, 10)
	counts := map[rt.QueueKind]int64{}
	for _, q := range []rt.QueueKind{rt.QueueFIFO, rt.QueuePriority} {
		opts := Options{Ranks: 1, Queue: q}
		res, err := Solve(g, seeds, opts)
		if err != nil {
			t.Fatal(err)
		}
		counts[q] = res.Phase(PhaseVoronoi).Sent
	}
	if counts[rt.QueuePriority] >= counts[rt.QueueFIFO] {
		t.Fatalf("priority %d >= fifo %d Voronoi messages",
			counts[rt.QueuePriority], counts[rt.QueueFIFO])
	}
}

func TestSteinerVerticesCounted(t *testing.T) {
	// Line 0-1-2: seeds {0,2} force Steiner vertex 1.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	g, _ := b.Build()
	res, err := Solve(g, []graph.VID{0, 2}, Default(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.SteinerVertices != 1 {
		t.Fatalf("SteinerVertices = %d, want 1", res.SteinerVertices)
	}
}

func TestChunkedCollectiveMatchesSingle(t *testing.T) {
	// The paper's §V-F memory optimization: chunked Allreduce over the
	// E_N buffer must not change the result.
	g := randomConnected(51, 400, 25)
	rng := rand.New(rand.NewSource(52))
	seeds := pickSeeds(rng, 400, 20)
	plain, err := Solve(g, seeds, Default(4))
	if err != nil {
		t.Fatal(err)
	}
	if plain.CollectiveChunks != 1 {
		t.Fatalf("CollectiveChunks = %d, want 1", plain.CollectiveChunks)
	}
	opts := Default(4)
	opts.CollectiveChunk = 7
	// Chunking exists only on the replicated merge (the fragment merge
	// never builds the global table it would chunk).
	opts.MSTMode = MSTReplicated
	chunked, err := Solve(g, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if chunked.CollectiveChunks < 2 {
		t.Fatalf("CollectiveChunks = %d, want >= 2", chunked.CollectiveChunks)
	}
	if chunked.TotalDistance != plain.TotalDistance || len(chunked.Tree) != len(plain.Tree) {
		t.Fatalf("chunked result differs: %d vs %d", chunked.TotalDistance, plain.TotalDistance)
	}
	for i := range plain.Tree {
		if plain.Tree[i] != chunked.Tree[i] {
			t.Fatalf("tree differs at %d", i)
		}
	}
}

func TestOptionStrings(t *testing.T) {
	if MSTPrim.String() != "prim" || MSTKruskal.String() != "kruskal" ||
		MSTBoruvka.String() != "boruvka" || MSTAlgo(9).String() != "MSTAlgo(9)" {
		t.Error("MSTAlgo strings wrong")
	}
	if PartitionBlock.String() != "block" || PartitionHash.String() != "hash" ||
		PartitionArcBlock.String() != "arcblock" {
		t.Error("PartitionKind strings wrong")
	}
}
