package core

import (
	"dsteiner/internal/graph"
	rt "dsteiner/internal/runtime"
)

// Phase names match the stacked-bar legends of the paper's Figs. 3–6.
const (
	PhaseVoronoi       = "Voronoi Cell"
	PhaseLocalMinEdge  = "Local Min Dist. Edge"
	PhaseGlobalMinEdge = "Global Min Dist. Edge"
	PhaseMST           = "MST"
	PhasePruning       = "Global Edge Pruning"
	PhaseTreeEdge      = "Steiner Tree Edge"
)

// PhaseNames lists the six phases in execution order.
var PhaseNames = []string{
	PhaseVoronoi, PhaseLocalMinEdge, PhaseGlobalMinEdge,
	PhaseMST, PhasePruning, PhaseTreeEdge,
}

// PhaseStat records one phase's wall time and message traffic.
type PhaseStat struct {
	Name    string
	Seconds float64
	// Sent and Processed are visitor-message counts attributable to this
	// phase (collective-based phases show zero, as in Fig. 6's note).
	Sent      int64
	Processed int64
	// MaxRankWork is the largest per-rank processed count — the
	// critical-path work metric used to report machine-independent
	// scaling shape (see DESIGN.md substitutions).
	MaxRankWork int64
}

// MemoryStats is the Fig. 8 accounting: bytes for the in-memory graph
// versus bytes for algorithm state (Voronoi arrays, cross-cell edge tables,
// the replicated distance graph and message buffers).
type MemoryStats struct {
	GraphBytes     int64
	ShardBytes     int64 // rank-local CSR slabs + delegate stripes, all ranks
	StateBytes     int64 // per-vertex Voronoi state
	EdgeTableBytes int64 // local + merged cross-cell edge tables
	DistGraphBytes int64 // replicated G'₁ + MST per rank
	BufferBytes    int64 // modeled message buffer residency
}

// AlgorithmBytes is the per-query algorithm state: everything except the
// graph substrate (global CSR and per-rank shards).
func (m MemoryStats) AlgorithmBytes() int64 {
	return m.StateBytes + m.EdgeTableBytes + m.DistGraphBytes + m.BufferBytes
}

// TotalBytes is the cluster-wide peak estimate.
func (m MemoryStats) TotalBytes() int64 { return m.GraphBytes + m.ShardBytes + m.AlgorithmBytes() }

// Result is the output of Solve.
type Result struct {
	// Tree is the Steiner tree edge set in canonical order. Empty for a
	// single seed.
	Tree []graph.Edge
	// TotalDistance is D(G_S), the sum of tree edge weights.
	TotalDistance graph.Dist
	// Seeds is the deduplicated, sorted seed set actually solved.
	Seeds []graph.VID
	// SteinerVertices counts tree vertices that are not seeds (S').
	SteinerVertices int
	// Phases holds per-phase timing and message statistics in execution
	// order.
	Phases []PhaseStat
	// Memory is the Fig. 8-style accounting.
	Memory MemoryStats
	// DistGraphEdges is |E'₁|, the number of cross-cell candidate edges
	// after the global merge.
	DistGraphEdges int
	// MSTRounds reports merge rounds: fragment-merge rounds when the query
	// ran with MSTFragment, or sequential Borůvka rounds when
	// Options.MST == MSTBoruvka on the replicated path.
	MSTRounds int
	// MSTFragment reports whether phases 3–5 ran the rank-parallel
	// fragment merge (false: the replicated cross table + sequential MST).
	MSTFragment bool
	// CrossTableBytes is the phase 3–4 merge payload moved through
	// collectives, summed over ranks (contributed + received). Zero on the
	// in-process loopback backend, where records travel as shared values.
	CrossTableBytes int64
	// FragmentMsgs counts fragment-merge records exchanged (routed
	// cross-table entries plus per-round proposals), summed over ranks.
	// Zero on the replicated path.
	FragmentMsgs int64
	// CollectiveChunks is the number of chunked reductions used by the
	// Global Min Dist. Edge phase (1 = single collective).
	CollectiveChunks int
	// SuppressedBroadcasts counts delegate-bound relaxation offers dropped
	// by the changed-since filter during this query (cluster-wide total on
	// the TCP backend).
	SuppressedBroadcasts int64
	// BatchedBroadcasts counts delegate offers that left a rank's superstep
	// outbox as real broadcasts; CoalescedBroadcasts counts offers absorbed
	// into an already-staged outbox entry for the same delegate (each
	// absorption is a broadcast that never happened). Together with
	// SuppressedBroadcasts these partition every delegate offer the solver
	// generated: suppressed by the changed-since filter, coalesced in the
	// outbox, or sent.
	BatchedBroadcasts   int64
	CoalescedBroadcasts int64
	// Net is the transport traffic attributable to this query, summed over
	// the worker processes. All zero on the in-process loopback backend.
	Net rt.TransportStats

	// Frontier block: intra-rank parallel-frontier work of this query (all
	// zero when every rank drained its queue serially). FrontierWorkers is
	// the resolved worker count per rank; on the TCP backend the maximum
	// across the worker processes. FrontierMaxChunk is a session high-water
	// mark (largest per-worker chunk seen), not a per-query delta. The
	// pool's busy fraction is FrontierBusyNs/(FrontierWallNs*Workers).
	FrontierWorkers        int
	FrontierBucketsDrained int64
	FrontierMsgs           int64
	FrontierMaxChunk       int64
	FrontierConflicts      int64
	FrontierBusyNs         int64
	FrontierWallNs         int64

	// Mode is the query mode this result answers (ModeTree for plain
	// Solve calls).
	Mode Mode
	// Groups echoes a forest query's canonical terminal groups, parallel
	// to GroupTrees. Nil outside forest mode.
	Groups [][]graph.VID
	// GroupTrees splits a forest-mode Tree into per-group subtrees,
	// parallel to Groups (a singleton group's entry is empty). Nil
	// outside forest mode.
	GroupTrees [][]graph.Edge
	// Skipped lists the terminals a prize-mode query paid to leave out,
	// sorted ascending. Nil outside prize mode.
	Skipped []graph.VID
	// PaidPenalty is the total penalty paid for Skipped terminals.
	PaidPenalty graph.Dist
	// Objective is the achieved objective value: TotalDistance for tree
	// and forest queries, TotalDistance + PaidPenalty for prize queries.
	Objective graph.Dist
}

// Clone returns a deep copy of res that shares no slices with the receiver.
// A solution cache stores a clone once and serves it to many concurrent
// readers, insulated from whatever the original caller does with its copy;
// a caller that wants to mutate a shared cached Result takes its own clone
// first.
func (res *Result) Clone() *Result {
	if res == nil {
		return nil
	}
	cp := *res
	if res.Tree != nil {
		cp.Tree = append([]graph.Edge(nil), res.Tree...)
	}
	if res.Seeds != nil {
		cp.Seeds = append([]graph.VID(nil), res.Seeds...)
	}
	if res.Phases != nil {
		cp.Phases = append([]PhaseStat(nil), res.Phases...)
	}
	if res.Groups != nil {
		cp.Groups = make([][]graph.VID, len(res.Groups))
		for i, grp := range res.Groups {
			cp.Groups[i] = append([]graph.VID(nil), grp...)
		}
	}
	if res.GroupTrees != nil {
		cp.GroupTrees = make([][]graph.Edge, len(res.GroupTrees))
		for i, t := range res.GroupTrees {
			cp.GroupTrees[i] = append([]graph.Edge(nil), t...)
		}
	}
	if res.Skipped != nil {
		cp.Skipped = append([]graph.VID(nil), res.Skipped...)
	}
	return &cp
}

// Phase returns the named phase's stats (zero value if missing).
func (res *Result) Phase(name string) PhaseStat {
	for _, p := range res.Phases {
		if p.Name == name {
			return p
		}
	}
	return PhaseStat{Name: name}
}

// TotalSeconds sums all phase times.
func (res *Result) TotalSeconds() float64 {
	var s float64
	for _, p := range res.Phases {
		s += p.Seconds
	}
	return s
}

// TotalMessages sums sent messages across phases.
func (res *Result) TotalMessages() int64 {
	var s int64
	for _, p := range res.Phases {
		s += p.Sent
	}
	return s
}
