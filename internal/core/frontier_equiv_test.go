package core

import (
	"math/rand"
	"testing"

	"dsteiner/internal/graph"
	rt "dsteiner/internal/runtime"
)

// frontierTestSpecs builds one query per mode — tree, forest, prize — over
// a clustered graph of the given cluster width (forest groups must each be
// connected in the group-filtered distance graph, which the one-group-per-
// cluster layout guarantees).
func frontierTestSpecs(rng *rand.Rand, clusters, perCluster int) []QuerySpec {
	n := clusters * perCluster
	seeds := pickEngineSeeds(rng, n, 8)
	groups := pickClusterGroups(rng, perCluster, []int{3, 4, 2})
	prize := pickEngineSeeds(rng, n, 6)
	penalties := make([]graph.Dist, len(prize))
	for i := range penalties {
		penalties[i] = graph.Dist(5 + rng.Intn(400))
	}
	return []QuerySpec{
		{Mode: ModeTree, Seeds: seeds},
		{Mode: ModeForest, Groups: groups},
		{Mode: ModePrize, Seeds: prize, Penalties: penalties},
	}
}

// TestParallelFrontierMatchesSerial is the tentpole's equivalence property:
// for every partition kind × delegate threshold × async/BSP × query mode ×
// worker count, a parallel-frontier solve returns Results byte-identical to
// the serial-drain oracle on the same bucket-queue configuration. It also
// asserts the parallel engines actually drained buckets in parallel, so the
// equivalence is never vacuous.
func TestParallelFrontierMatchesSerial(t *testing.T) {
	g := clusteredTestGraph(131, 3, 40)
	rng := rand.New(rand.NewSource(132))
	specs := frontierTestSpecs(rng, 3, 40)
	workerCounts := []int{1, 2, 8}
	partitions := []PartitionKind{PartitionBlock, PartitionHash, PartitionArcBlock}
	if testing.Short() {
		workerCounts = []int{2}
		partitions = []PartitionKind{PartitionArcBlock}
	}
	var drained int64
	for _, kind := range partitions {
		for _, threshold := range []int{0, 6} {
			for _, bsp := range []bool{false, true} {
				base := Options{
					Ranks:             4,
					Queue:             rt.QueueBucket,
					BucketDelta:       32,
					Partition:         kind,
					DelegateThreshold: threshold,
					BSP:               bsp,
					Frontier:          FrontierSerial,
				}
				serial, err := NewEngine(g, base)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range workerCounts {
					popts := base
					popts.Frontier = FrontierParallel
					// Per-process budget: every rank gets exactly `workers`.
					popts.FrontierWorkers = workers * base.Ranks
					parallel, err := NewEngine(g, popts)
					if err != nil {
						serial.Close()
						t.Fatal(err)
					}
					if got := parallel.Frontier(); got != FrontierParallel {
						t.Fatalf("resolved frontier = %v, want parallel", got)
					}
					for si, spec := range specs {
						want, err := serial.SolveSpec(spec)
						if err != nil {
							t.Fatalf("%v thr=%d bsp=%v spec=%d: serial: %v", kind, threshold, bsp, si, err)
						}
						got, err := parallel.SolveSpec(spec)
						if err != nil {
							t.Fatalf("%v thr=%d bsp=%v spec=%d w=%d: parallel: %v", kind, threshold, bsp, si, workers, err)
						}
						label := kind.String()
						assertResultsEquivalent(t, label, got, want)
						if want.FrontierBucketsDrained != 0 {
							t.Fatalf("%s: serial solve reported %d parallel drains", label, want.FrontierBucketsDrained)
						}
						if got.FrontierWorkers != workers {
							t.Fatalf("%s: resolved workers = %d, want %d", label, got.FrontierWorkers, workers)
						}
						drained += got.FrontierBucketsDrained
					}
					parallel.Close()
				}
				serial.Close()
			}
		}
	}
	if drained == 0 {
		t.Fatal("no parallel bucket drains across the whole matrix — the parallel path never ran")
	}
}

// TestFrontierAutoResolution pins the auto policy: parallel only when the
// bucket discipline is active and the per-rank budget exceeds one worker;
// explicit parallel is rejected without the bucket queue or on the
// GlobalCSR reference path.
func TestFrontierAutoResolution(t *testing.T) {
	g := engineTestGraph(133, 120)
	cases := []struct {
		name string
		opts Options
		want FrontierMode
	}{
		{"auto+bucket+budget", Options{Ranks: 2, Queue: rt.QueueBucket, FrontierWorkers: 8}, FrontierParallel},
		{"auto+bucket+no-budget", Options{Ranks: 2, Queue: rt.QueueBucket, FrontierWorkers: 2}, FrontierSerial},
		{"auto+priority", Options{Ranks: 2, Queue: rt.QueuePriority, FrontierWorkers: 8}, FrontierSerial},
		{"auto+globalcsr", Options{Ranks: 2, Queue: rt.QueueBucket, FrontierWorkers: 8, GlobalCSR: true}, FrontierSerial},
		{"explicit serial", Options{Ranks: 2, Queue: rt.QueueBucket, FrontierWorkers: 8, Frontier: FrontierSerial}, FrontierSerial},
		{"explicit parallel 1 worker", Options{Ranks: 2, Queue: rt.QueueBucket, FrontierWorkers: 1, Frontier: FrontierParallel}, FrontierParallel},
	}
	for _, tc := range cases {
		e, err := NewEngine(g, tc.opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := e.Frontier(); got != tc.want {
			t.Errorf("%s: resolved %v, want %v", tc.name, got, tc.want)
		}
		e.Close()
	}
	if _, err := NewEngine(g, Options{Ranks: 2, Queue: rt.QueuePriority, Frontier: FrontierParallel}); err == nil {
		t.Error("FrontierParallel without the bucket queue was accepted")
	}
	if _, err := NewEngine(g, Options{Ranks: 2, Queue: rt.QueueBucket, GlobalCSR: true, Frontier: FrontierParallel}); err == nil {
		t.Error("FrontierParallel with GlobalCSR was accepted")
	}
}
