package core

import (
	"errors"
	"fmt"
	"time"

	"dsteiner/internal/graph"
	"dsteiner/internal/partition"
	"dsteiner/internal/transport"
	"dsteiner/internal/voronoi"
	"dsteiner/internal/wire"
)

// cluster is the BackendTCP session state of an Engine acting as
// coordinator: the hub that owns the worker connections, plus the
// session-constant memory accounting captured at setup. The coordinator
// holds the full graph (it loaded it) but after the handshake no rank
// state lives here — the shards and slabs built to cut the handshake's
// slices are released, and every solve runs entirely in the workers.
type cluster struct {
	hub *transport.Hub
	qid uint64

	shard      ShardStats
	stateBytes int64
}

// newClusterEngine is NewEngine's BackendTCP path: listen, hand every
// dialing rankd worker its slice of the shard plan, and return an Engine
// whose Solve dispatches to the worker fleet.
func newClusterEngine(g *graph.Graph, opts Options) (*Engine, error) {
	if opts.GlobalCSR {
		return nil, fmt.Errorf("core: BackendTCP requires the sharded path (GlobalCSR must be false)")
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.Workers > opts.Ranks {
		return nil, fmt.Errorf("core: %d workers for %d ranks", opts.Workers, opts.Ranks)
	}
	if opts.ListenAddr == "" {
		opts.ListenAddr = "127.0.0.1:0"
	}
	if opts.WorkerWait <= 0 {
		opts.WorkerWait = 60 * time.Second
	}
	n := g.NumVertices()

	// The base partition is built before any delegate wrapping so its
	// compact wire form (kind + bounds) is at hand.
	var base partition.Partition
	var err error
	var kind uint8
	var bounds []graph.VID
	switch opts.Partition {
	case PartitionHash:
		base, err = partition.NewHash(n, opts.Ranks)
		kind = wire.PartHash
	case PartitionArcBlock:
		var ab *partition.ArcBlock
		ab, err = partition.NewArcBlock(g, opts.Ranks)
		if err == nil {
			bounds = ab.Bounds()
			base = ab
		}
		kind = wire.PartArcBlock
	default:
		base, err = partition.NewBlock(n, opts.Ranks)
		kind = wire.PartBlock
	}
	if err != nil {
		return nil, err
	}
	part := base
	if opts.DelegateThreshold > 0 {
		part = partition.WithDelegates(base, g, opts.DelegateThreshold)
	}
	plan, err := partition.NewShardPlan(part, g)
	if err != nil {
		return nil, err
	}

	// Shards and slabs are cut once, only to (a) encode the handshake's
	// slices and (b) capture the session's memory accounting; the workers
	// rebuild them from the slices and this copy is garbage afterwards.
	shards := plan.BuildShards(g)
	slabs := voronoi.BuildSlabs(plan, shards)
	cl := &cluster{}
	cl.shard = ShardStats{
		Partition:         opts.Partition.String(),
		Ranks:             opts.Ranks,
		DelegateThreshold: opts.DelegateThreshold,
		Delegates:         plan.NumDelegates(),
	}
	for _, sh := range shards {
		b := sh.MemoryBytes()
		cl.shard.ShardBytes += b
		if b > cl.shard.MaxShardBytes {
			cl.shard.MaxShardBytes = b
		}
	}
	for _, sl := range slabs {
		b := sl.MemoryBytes()
		cl.shard.StateSlabBytes += b
		if b > cl.shard.MaxStateSlabBytes {
			cl.shard.MaxStateSlabBytes = b
		}
	}
	cl.stateBytes = cl.shard.StateSlabBytes

	hub, err := transport.ListenHub(opts.ListenAddr, opts.Workers, opts.Ranks)
	if err != nil {
		return nil, err
	}
	hub.LimitWireVersion(opts.MaxWireVersion)
	if opts.Recover {
		hub.EnableRecovery(opts.RejoinWait, opts.OnWorkerLost)
	}
	if opts.OnListen != nil {
		opts.OnListen(hub.Addr())
	}
	_, err = hub.Handshake(opts.WorkerWait, func(w int) wire.Setup {
		lo, hi := hub.RankRange(w)
		// The session's wire version is negotiated before setups are cut,
		// so the MST mode resolves here: auto takes the fragment merge on
		// v4+ fleets and falls back to the replicated path on older ones
		// (whose Setup cannot carry the mode byte anyway).
		mode := resolveMSTModeTCP(opts.MSTMode, hub.WireVersion())
		setup := wire.Setup{
			Ranks:             opts.Ranks,
			NumVertices:       n,
			Queue:             uint8(opts.Queue),
			BucketDelta:       opts.BucketDelta,
			BatchSize:         opts.BatchSize,
			BSP:               opts.BSP,
			MST:               mstAlgoToWire(opts.MST),
			MSTMode:           uint8(mode),
			CollectiveChunk:   opts.CollectiveChunk,
			DelegateThreshold: opts.DelegateThreshold,
			PartitionKind:     kind,
			ArcBounds:         bounds,
			Delegates:         plan.Delegates(),
			// The frontier mode ships UNRESOLVED (unlike MSTMode): auto
			// depends on each worker's own GOMAXPROCS, so every worker
			// resolves it locally against its hosted rank count.
			Frontier:        frontierToWire(opts.Frontier),
			FrontierWorkers: uint64(max(0, opts.FrontierWorkers)),
		}
		for rank := lo; rank < hi; rank++ {
			owned, offsets, targets, weights, stripeOff, stripeTargets, stripeWeights := shards[rank].Slices()
			setup.Shards = append(setup.Shards, wire.ShardSlice{
				Rank:          rank,
				Owned:         owned,
				Offsets:       offsets,
				Targets:       targets,
				Weights:       weights,
				StripeOff:     stripeOff,
				StripeTargets: stripeTargets,
				StripeWeights: stripeWeights,
				Mirrored:      plan.Mirrored(rank),
			})
		}
		return setup
	})
	if err != nil {
		return nil, err
	}
	if opts.MSTMode == MSTFragment && hub.WireVersion() < 4 {
		hub.Close()
		return nil, fmt.Errorf("core: tcp backend: MSTFragment needs a wire v4 session; this fleet negotiated v%d (use auto or replicated)",
			hub.WireVersion())
	}
	if opts.Frontier == FrontierParallel && hub.WireVersion() < 6 {
		hub.Close()
		return nil, fmt.Errorf("core: tcp backend: FrontierParallel needs a wire v6 session; this fleet negotiated v%d (use auto or serial)",
			hub.WireVersion())
	}
	cl.hub = hub

	// The coordinator cannot resolve FrontierAuto — that happens on each
	// worker against its own GOMAXPROCS — so a cluster Engine reports the
	// requested mode, clamped to serial on pre-v6 fleets whose Setup cannot
	// carry the frontier tail.
	frontier := opts.Frontier
	if hub.WireVersion() < 6 {
		frontier = FrontierSerial
	}
	return &Engine{
		g:        g,
		opts:     opts,
		cluster:  cl,
		plan:     plan,
		mstMode:  resolveMSTModeTCP(opts.MSTMode, hub.WireVersion()),
		frontier: frontier,
		seen:     make(map[graph.VID]bool),
	}, nil
}

// resolveMSTModeTCP resolves MSTModeAuto against a TCP session's negotiated
// wire version: the fragment merge needs the v4 frames, older fleets keep
// the replicated path (their Setup cannot carry the mode byte anyway).
func resolveMSTModeTCP(mode MSTMode, wireVer uint32) MSTMode {
	if mode != MSTModeAuto {
		return mode
	}
	if wireVer >= 4 {
		return MSTFragment
	}
	return MSTReplicated
}

// solve dispatches one canonical query to the worker fleet and assembles
// the Result the loopback path would have produced: the rank-0 worker's
// solver output plus coordinator-side Steiner-vertex counting, memory
// accounting and validation (the coordinator holds the full graph).
func (cl *cluster) solve(e *Engine, cq canonQuery) (*Result, error) {
	dedup := cq.dedup
	cl.qid++
	var out transport.QueryOutcome
	var err error
	if cq.spec.Mode == ModeTree {
		// Tree queries keep the legacy FrameSolve at every negotiated
		// version, so v1/v2-pinned fleets serve them byte-identically.
		out, err = cl.hub.Solve(cl.qid, dedup)
	} else {
		if v := cl.hub.WireVersion(); v < 3 {
			return nil, fmt.Errorf("core: tcp backend: %s queries need a wire v3 session; this session negotiated v%d (tree queries still work)",
				cq.spec.Mode, v)
		}
		out, err = cl.hub.SolveSpec(toWireSpec(cl.qid, cq.spec))
	}
	if err != nil {
		// Dispatch only fails when the session faulted (and, with
		// Options.Recover, could not be healed in time); mark it so
		// serving layers can retry against a later-healed fleet.
		return nil, &sessionFaultErr{fmt.Errorf("core: tcp backend: %w", err)}
	}
	if out.Err != "" {
		return nil, errors.New(out.Err)
	}
	if out.Result == nil {
		return nil, fmt.Errorf("core: tcp backend: no worker reported the rank-0 result")
	}
	res := fromWireResult(out.Result, dedup)
	res.Skipped = out.Skipped
	res.MSTFragment = out.MSTFragment
	res.CrossTableBytes = out.CrossTableBytes
	res.FragmentMsgs = out.FragmentMsgs
	res.SuppressedBroadcasts = out.Suppressed
	res.BatchedBroadcasts = out.Batched
	res.CoalescedBroadcasts = out.Coalesced
	res.FrontierWorkers = int(out.FrontierWorkers)
	res.FrontierBucketsDrained = out.FrontierDrains
	res.FrontierMsgs = out.FrontierMsgs
	res.FrontierMaxChunk = out.FrontierMaxChunk
	res.FrontierConflicts = out.FrontierConflicts
	res.FrontierBusyNs = out.FrontierBusyNs
	res.FrontierWallNs = out.FrontierWallNs
	res.Net = transport.FromNetStats(out.Net)
	res.SteinerVertices = countSteinerVertices(res.Tree, dedup)
	res.Memory = memoryStatsFromLens(e.g, cl.shard.ShardBytes, cl.stateBytes, out.TableLens, res, e.opts)
	if err := finalizeResult(e.g, cq, res, e.opts.SkipValidation); err != nil {
		return nil, err
	}
	return res, nil
}

// toWireSpec converts a canonical QuerySpec to its wire form.
func toWireSpec(qid uint64, spec QuerySpec) wire.SolveSpec {
	ws := wire.SolveSpec{
		QueryID: qid,
		Mode:    uint8(spec.Mode),
		Seeds:   spec.Seeds,
		Groups:  spec.Groups,
	}
	if len(spec.Penalties) > 0 {
		ws.Penalties = make([]int64, len(spec.Penalties))
		for i, p := range spec.Penalties {
			ws.Penalties[i] = int64(p)
		}
	}
	return ws
}

// specFromWire converts a wire SolveSpec back to the core QuerySpec the
// coordinator encoded (already canonical).
func specFromWire(ws wire.SolveSpec) QuerySpec {
	spec := QuerySpec{
		Mode:   Mode(ws.Mode),
		Seeds:  ws.Seeds,
		Groups: ws.Groups,
	}
	if len(ws.Penalties) > 0 {
		spec.Penalties = make([]graph.Dist, len(ws.Penalties))
		for i, p := range ws.Penalties {
			spec.Penalties[i] = graph.Dist(p)
		}
	}
	return spec
}

// close tears the worker session down.
func (cl *cluster) close() { cl.hub.Close() }

// toWireResult converts rank 0's Result into its wire form (solver output
// only; memory accounting and Steiner counting happen coordinator-side).
func toWireResult(res *Result) wire.SolveResult {
	wr := wire.SolveResult{
		TotalDistance:    int64(res.TotalDistance),
		DistGraphEdges:   res.DistGraphEdges,
		MSTRounds:        res.MSTRounds,
		CollectiveChunks: res.CollectiveChunks,
	}
	for _, e := range res.Tree {
		wr.Tree = append(wr.Tree, wire.EdgeRec{U: e.U, V: e.V, W: e.W})
	}
	for _, p := range res.Phases {
		wr.Phases = append(wr.Phases, wire.PhaseRec{
			Name:        p.Name,
			Seconds:     p.Seconds,
			Sent:        p.Sent,
			Processed:   p.Processed,
			MaxRankWork: p.MaxRankWork,
		})
	}
	return wr
}

// fromWireResult rebuilds a Result from its wire form.
func fromWireResult(wr *wire.SolveResult, dedup []graph.VID) *Result {
	res := &Result{
		Seeds:            dedup,
		TotalDistance:    graph.Dist(wr.TotalDistance),
		DistGraphEdges:   wr.DistGraphEdges,
		MSTRounds:        wr.MSTRounds,
		CollectiveChunks: wr.CollectiveChunks,
	}
	if len(wr.Tree) > 0 {
		res.Tree = make([]graph.Edge, len(wr.Tree))
		for i, e := range wr.Tree {
			res.Tree[i] = graph.Edge{U: e.U, V: e.V, W: e.W}
		}
	}
	for _, p := range wr.Phases {
		res.Phases = append(res.Phases, PhaseStat{
			Name:        p.Name,
			Seconds:     p.Seconds,
			Sent:        p.Sent,
			Processed:   p.Processed,
			MaxRankWork: p.MaxRankWork,
		})
	}
	return res
}
