// Query modes: the solver's phase 1–6 machinery (Voronoi flood, distance
// offers, component merging) is mode-agnostic, and QuerySpec generalizes the
// original single-terminal-set query into a small family of connectivity
// products served by one resident graph:
//
//   - ModeTree: the paper's query — one terminal set, one spanning tree.
//   - ModeForest: Steiner Forest (cf. Lenzen & Patt-Shamir, arXiv:1405.2011)
//     — terminal *groups*, each internally connected, never across groups.
//     The shared Voronoi/offer phases run once; the merge phase excludes
//     cross-group candidate edges and connects each group independently.
//   - ModePrize: prize-collecting Steiner tree (cf. the primal-dual scheme
//     of Saikia & Karmakar, arXiv:1710.07040) — each terminal carries a
//     penalty the solver may pay to leave it out of the tree; a
//     moat-growing pass over the collected component structure decides
//     which terminals to connect and which to skip.
package core

import (
	"fmt"
	"sort"

	"dsteiner/internal/graph"
)

// Mode selects the connectivity product a query asks of the resident graph.
type Mode uint8

const (
	// ModeTree is the classic single-set Steiner tree query (the zero
	// value, so a zero QuerySpec with Seeds behaves like Engine.Solve).
	ModeTree Mode = iota
	// ModeForest is the Steiner Forest query over terminal groups.
	ModeForest
	// ModePrize is the prize-collecting query with per-terminal penalties.
	ModePrize
)

// String returns the mode's wire/API name: "tree", "forest" or "prize".
func (m Mode) String() string {
	switch m {
	case ModeForest:
		return "forest"
	case ModePrize:
		return "prize"
	default:
		return "tree"
	}
}

// ParseMode maps "tree" (or ""), "forest" and "prize" to the Mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "tree":
		return ModeTree, nil
	case "forest":
		return ModeForest, nil
	case "prize":
		return ModePrize, nil
	}
	return ModeTree, fmt.Errorf("core: unknown query mode %q (want tree, forest or prize)", s)
}

// QuerySpec is the single query type threaded through the whole stack —
// Engine, wire protocol, HTTP service and CLIs. Exactly one terminal field
// is used per mode: Seeds for tree and prize queries, Groups for forest
// queries. Penalties pairs index-wise with Seeds on prize queries.
type QuerySpec struct {
	// Mode selects tree, forest or prize semantics.
	Mode Mode
	// Seeds is the terminal set of tree and prize queries.
	Seeds []graph.VID
	// Groups is the terminal grouping of forest queries: every group must
	// end up internally connected; no tree edge may join two groups.
	Groups [][]graph.VID
	// Penalties holds one non-negative penalty per Seeds entry on prize
	// queries: the cost of leaving that terminal out of the tree.
	Penalties []graph.Dist
}

// TreeSpec wraps a plain terminal set in a tree-mode QuerySpec.
func TreeSpec(seeds []graph.VID) QuerySpec {
	return QuerySpec{Mode: ModeTree, Seeds: seeds}
}

// canonQuery is a validated query in solver form: the canonical spec plus
// the flattened terminal universe the SPMD phases run over. dedup is the
// sorted union of all terminals; groupOf and penalty are parallel to dedup
// (nil outside their mode). Every rank — loopback goroutine or remote rankd
// process — derives the identical flattening from the canonical spec, so
// dense terminal indices agree fleet-wide.
type canonQuery struct {
	spec    QuerySpec
	dedup   []graph.VID
	groupOf []int32
	penalty []graph.Dist
}

// canonSpec validates spec against an n-vertex graph and returns its
// canonical solver form. Canonicalization rules: seeds sorted ascending
// (penalties co-sorted); each forest group sorted ascending, groups ordered
// by their smallest terminal. The same terminal may not appear twice, in or
// across groups (ErrDuplicateSeed). seen is the duplicate-check scratch
// (cleared first); all returned slices are freshly allocated, so they may be
// published in a Result without aliasing pooled state.
func canonSpec(n int, spec QuerySpec, seen map[graph.VID]bool) (canonQuery, error) {
	switch spec.Mode {
	case ModeTree:
		if len(spec.Groups) > 0 {
			return canonQuery{}, fmt.Errorf("core: tree query must not set groups")
		}
		if len(spec.Penalties) > 0 {
			return canonQuery{}, fmt.Errorf("core: tree query must not set penalties")
		}
		dedup, err := canonSeedSet(n, spec.Seeds, seen)
		if err != nil {
			return canonQuery{}, err
		}
		return canonQuery{spec: QuerySpec{Mode: ModeTree, Seeds: dedup}, dedup: dedup}, nil

	case ModeForest:
		if len(spec.Seeds) > 0 || len(spec.Penalties) > 0 {
			return canonQuery{}, fmt.Errorf("core: forest query takes groups, not seeds or penalties")
		}
		if len(spec.Groups) == 0 {
			return canonQuery{}, fmt.Errorf("core: forest query needs at least one terminal group")
		}
		clear(seen)
		total := 0
		groups := make([][]graph.VID, len(spec.Groups))
		for gi, grp := range spec.Groups {
			if len(grp) == 0 {
				return canonQuery{}, fmt.Errorf("core: forest group %d is empty", gi)
			}
			cg := make([]graph.VID, 0, len(grp))
			for _, s := range grp {
				if s < 0 || int(s) >= n {
					return canonQuery{}, fmt.Errorf("core: seed %d out of range [0,%d)", s, n)
				}
				if seen[s] {
					return canonQuery{}, fmt.Errorf("core: %w: %d appears more than once", ErrDuplicateSeed, s)
				}
				seen[s] = true
				cg = append(cg, s)
			}
			sort.Slice(cg, func(i, j int) bool { return cg[i] < cg[j] })
			groups[gi] = cg
			total += len(cg)
		}
		sort.Slice(groups, func(i, j int) bool { return groups[i][0] < groups[j][0] })
		// Merge the sorted groups into the sorted terminal union; groups
		// are disjoint, so a flat sort of (vid, group) pairs suffices.
		type tagged struct {
			v graph.VID
			g int32
		}
		all := make([]tagged, 0, total)
		for gi, grp := range groups {
			for _, s := range grp {
				all = append(all, tagged{s, int32(gi)})
			}
		}
		sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })
		dedup := make([]graph.VID, len(all))
		groupOf := make([]int32, len(all))
		for i, t := range all {
			dedup[i] = t.v
			groupOf[i] = t.g
		}
		return canonQuery{
			spec:    QuerySpec{Mode: ModeForest, Groups: groups},
			dedup:   dedup,
			groupOf: groupOf,
		}, nil

	case ModePrize:
		if len(spec.Groups) > 0 {
			return canonQuery{}, fmt.Errorf("core: prize query takes seeds, not groups")
		}
		if len(spec.Penalties) != len(spec.Seeds) {
			return canonQuery{}, fmt.Errorf("core: prize query needs one penalty per seed (%d penalties for %d seeds)",
				len(spec.Penalties), len(spec.Seeds))
		}
		for i, p := range spec.Penalties {
			if p < 0 {
				return canonQuery{}, fmt.Errorf("core: negative penalty %d for seed %d", p, spec.Seeds[i])
			}
		}
		dedup, err := canonSeedSet(n, spec.Seeds, seen)
		if err != nil {
			return canonQuery{}, err
		}
		// Co-sort penalties with the canonical seed order. Seeds are
		// duplicate-free, so a vid→penalty map is unambiguous.
		byVID := make(map[graph.VID]graph.Dist, len(spec.Seeds))
		for i, s := range spec.Seeds {
			byVID[s] = spec.Penalties[i]
		}
		penalty := make([]graph.Dist, len(dedup))
		for i, s := range dedup {
			penalty[i] = byVID[s]
		}
		return canonQuery{
			spec:    QuerySpec{Mode: ModePrize, Seeds: dedup, Penalties: penalty},
			dedup:   dedup,
			penalty: penalty,
		}, nil
	}
	return canonQuery{}, fmt.Errorf("core: unknown query mode %d", spec.Mode)
}

// flattenCanonical rebuilds the solver form of an already-canonical spec
// without re-validating it. Workers apply it to the spec the coordinator
// ships over the wire, so both sides agree on dense terminal indices.
func flattenCanonical(spec QuerySpec) canonQuery {
	cq := canonQuery{spec: spec}
	switch spec.Mode {
	case ModeForest:
		total := 0
		for _, grp := range spec.Groups {
			total += len(grp)
		}
		type tagged struct {
			v graph.VID
			g int32
		}
		all := make([]tagged, 0, total)
		for gi, grp := range spec.Groups {
			for _, s := range grp {
				all = append(all, tagged{s, int32(gi)})
			}
		}
		sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })
		cq.dedup = make([]graph.VID, len(all))
		cq.groupOf = make([]int32, len(all))
		for i, t := range all {
			cq.dedup[i] = t.v
			cq.groupOf[i] = t.g
		}
	case ModePrize:
		cq.dedup = spec.Seeds
		cq.penalty = spec.Penalties
	default:
		cq.dedup = spec.Seeds
	}
	return cq
}

// CanonicalSpec validates spec against an n-vertex graph and returns its
// canonical form: seeds (and penalties) sorted, groups sorted internally and
// ordered by smallest terminal. Two specs describing the same query always
// canonicalize to identical values, and specs of different modes never do —
// serving layers key solution caches on this form.
func CanonicalSpec(n int, spec QuerySpec) (QuerySpec, error) {
	cq, err := canonSpec(n, spec, make(map[graph.VID]bool, len(spec.Seeds)))
	if err != nil {
		return QuerySpec{}, err
	}
	return cq.spec, nil
}

// finalizeResult derives the mode-specific outputs from the assembled tree
// — per-group subtrees for forest, paid penalties and the achieved
// objective for prize — and runs mode-aware validation. It is shared by the
// loopback path and the TCP coordinator path, so both backends publish
// identical Results from identical trees.
func finalizeResult(g *graph.Graph, cq canonQuery, res *Result, skipValidation bool) error {
	res.Mode = cq.spec.Mode
	switch cq.spec.Mode {
	case ModeForest:
		res.Groups = cq.spec.Groups
		trees, err := splitGroupTrees(cq.spec.Groups, res.Tree)
		if err != nil {
			return fmt.Errorf("core: internal error, invalid output: %v", err)
		}
		res.GroupTrees = trees
		res.Objective = res.TotalDistance
		if !skipValidation {
			for gi, grp := range cq.spec.Groups {
				if err := graph.ValidateSteinerTree(g, grp, trees[gi]); err != nil {
					return fmt.Errorf("core: internal error, invalid group %d subtree: %w", gi, err)
				}
			}
		}
	case ModePrize:
		skipped := make(map[graph.VID]bool, len(res.Skipped))
		for _, s := range res.Skipped {
			skipped[s] = true
		}
		kept := make([]graph.VID, 0, len(cq.dedup)-len(res.Skipped))
		res.PaidPenalty = 0
		for i, s := range cq.dedup {
			if skipped[s] {
				res.PaidPenalty += cq.penalty[i]
			} else {
				kept = append(kept, s)
			}
		}
		res.Objective = res.TotalDistance + res.PaidPenalty
		if !skipValidation {
			if len(kept) == 0 {
				return fmt.Errorf("core: internal error, prize query kept no terminal")
			}
			if err := graph.ValidateSteinerTree(g, kept, res.Tree); err != nil {
				return fmt.Errorf("core: internal error, invalid output: %w", err)
			}
		}
	default:
		res.Objective = res.TotalDistance
		if !skipValidation {
			if err := graph.ValidateSteinerTree(g, cq.dedup, res.Tree); err != nil {
				return fmt.Errorf("core: internal error, invalid output: %w", err)
			}
		}
	}
	return nil
}

// splitGroupTrees partitions a forest-mode result tree into per-group edge
// lists, parallel to the canonical groups. The tree's connected components
// are each claimed by the group whose terminals they contain; a component
// touching two groups, or none, is a solver bug and returns an error.
func splitGroupTrees(groups [][]graph.VID, tree []graph.Edge) ([][]graph.Edge, error) {
	idx := make(map[graph.VID]int, 2*len(tree))
	for _, e := range tree {
		for _, v := range [2]graph.VID{e.U, e.V} {
			if _, ok := idx[v]; !ok {
				idx[v] = len(idx)
			}
		}
	}
	parent := make([]int, len(idx))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range tree {
		ru, rv := find(idx[e.U]), find(idx[e.V])
		if ru != rv {
			parent[ru] = rv
		}
	}
	compGroup := make(map[int]int, len(groups))
	for gi, grp := range groups {
		for _, t := range grp {
			j, ok := idx[t]
			if !ok {
				continue // singleton group: no tree vertices needed
			}
			r := find(j)
			if prev, claimed := compGroup[r]; claimed && prev != gi {
				return nil, fmt.Errorf("tree component joins groups %d and %d", prev, gi)
			}
			compGroup[r] = gi
		}
	}
	out := make([][]graph.Edge, len(groups))
	for _, e := range tree {
		gi, ok := compGroup[find(idx[e.U])]
		if !ok {
			return nil, fmt.Errorf("tree component through %d-%d contains no terminal", e.U, e.V)
		}
		out[gi] = append(out[gi], e)
	}
	return out, nil
}
