package core

import (
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"dsteiner/internal/faultpoint"
	"dsteiner/internal/graph"
	rt "dsteiner/internal/runtime"
	"dsteiner/internal/transport"
)

// chaosSolveDeadline bounds every solve of the chaos suite: a matrix cell
// that neither answers nor errors within it is a hang, which is itself a
// failure of the fault-tolerance contract.
const chaosSolveDeadline = 45 * time.Second

// startChaosFleet is startTCPEngine's fault-tolerant sibling: workers run
// ServeWorker (the rejoining loop rankd -rejoin executes) with per-worker
// configs, so a cell can arm a Chaos shim on one worker and rejoin behavior
// on all of them. The returned shutdown closes the engine and then joins
// the worker goroutines under a deadline — a worker that never exits is a
// hang, not a slow test.
func startChaosFleet(t *testing.T, g *graph.Graph, opts Options, workers int,
	cfgFor func(w int) WorkerConfig) (*Engine, func(wantClean bool)) {
	t.Helper()
	opts.Backend = BackendTCP
	opts.Workers = workers
	opts.ListenAddr = "127.0.0.1:0"
	var wg sync.WaitGroup
	errs := make([]error, workers)
	opts.OnListen = func(addr string) {
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = ServeWorker(addr, cfgFor(i))
			}(i)
		}
	}
	e, err := NewEngine(g, opts)
	if err != nil {
		t.Fatalf("chaos fleet: %v", err)
	}
	return e, func(wantClean bool) {
		e.Close()
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("workers still running 30s after engine close")
		}
		for i, err := range errs {
			if wantClean && err != nil {
				t.Errorf("worker %d exited with: %v", i, err)
			}
		}
	}
}

// solveWithDeadline runs one Solve under the chaos watchdog.
func solveWithDeadline(t *testing.T, name string, e *Engine, seeds []graph.VID) (*Result, error) {
	t.Helper()
	type outcome struct {
		res *Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := e.Solve(seeds)
		ch <- outcome{res, err}
	}()
	select {
	case o := <-ch:
		return o.res, o.err
	case <-time.After(chaosSolveDeadline):
		t.Fatalf("%s: solve neither answered nor errored within %v (hang)", name, chaosSolveDeadline)
		return nil, nil
	}
}

// chaosOpts is the one engine shape every chaos cell uses, so a single
// loopback reference covers the whole matrix.
func chaosOpts() Options {
	return Options{Ranks: 4, Queue: rt.QueuePriority, Partition: PartitionArcBlock}
}

// probeChaosOps measures how many transport operations one worker's Chaos
// shim observes across session start plus one solve, by running a fleet
// whose shim injects nothing (Kind ""). Matrix cells place their After
// triggers inside that span, which is what puts every fault kind at every
// tested position of a real solve.
func probeChaosOps(t *testing.T, g *graph.Graph, seeds []graph.VID) int64 {
	t.Helper()
	before := transport.ChaosOpsTotal()
	opts := chaosOpts()
	opts.Recover = true
	opts.RejoinWait = 10 * time.Second
	e, shutdown := startChaosFleet(t, g, opts, 2, func(w int) WorkerConfig {
		cfg := WorkerConfig{RejoinWait: 10 * time.Second}
		if w == 0 {
			cfg.Chaos = &transport.ChaosConfig{Seed: 1}
		}
		return cfg
	})
	if _, err := solveWithDeadline(t, "probe", e, seeds); err != nil {
		t.Fatalf("probe solve: %v", err)
	}
	shutdown(true)
	ops := transport.ChaosOpsTotal() - before
	if ops < 4 {
		t.Fatalf("probe observed only %d transport ops; chaos shim is not on the solve path", ops)
	}
	return ops
}

// TestChaosMatrix is the chaos-equivalence acceptance suite: fault kinds ×
// injection positions × seeds, each cell injecting one deterministic fault
// into a recovering 2-worker fleet and requiring the answer to stay
// byte-identical to the loopback reference — first on the faulted solve
// (healed and requeued under the covers), then again on the healed fleet —
// with every worker exiting cleanly at goodbye.
func TestChaosMatrix(t *testing.T) {
	g := engineTestGraph(17, 120)
	rng := rand.New(rand.NewSource(91))
	seeds := pickEngineSeeds(rng, g.NumVertices(), 7)

	loop, err := NewEngine(g, chaosOpts())
	if err != nil {
		t.Fatal(err)
	}
	want, err := loop.Solve(seeds)
	loop.Close()
	if err != nil {
		t.Fatalf("loopback reference: %v", err)
	}

	opsPerSolve := probeChaosOps(t, g, seeds)
	fracs := []float64{0.15, 0.5, 0.85}
	chaosSeeds := []int64{1, 2, 3}
	kinds := []string{transport.ChaosPeerDrop, transport.ChaosCoordDrop, transport.ChaosTruncate}
	if testing.Short() {
		fracs = []float64{0.5}
		chaosSeeds = []int64{1}
	}

	runCell := func(t *testing.T, label string, chaos *transport.ChaosConfig, wantFault bool) {
		opts := chaosOpts()
		opts.Recover = true
		opts.RejoinWait = 15 * time.Second
		e, shutdown := startChaosFleet(t, g, opts, 2, func(w int) WorkerConfig {
			cfg := WorkerConfig{RejoinWait: 15 * time.Second}
			if w == 0 {
				cfg.Chaos = chaos
			}
			return cfg
		})
		got, err := solveWithDeadline(t, label+"/faulted", e, seeds)
		if err != nil {
			t.Fatalf("faulted solve not recovered: %v", err)
		}
		assertResultsEquivalent(t, label+"/faulted", got, want)
		// The second solve proves the healed fleet is a working fleet, and
		// flushes a fault that fired after the first answer was delivered
		// through a heal before the goodbye.
		again, err := solveWithDeadline(t, label+"/healed", e, seeds)
		if err != nil {
			t.Fatalf("solve on healed fleet: %v", err)
		}
		assertResultsEquivalent(t, label+"/healed", again, want)
		fs := e.FaultStats()
		shutdown(true)
		if wantFault {
			if fs.Detected < 1 {
				t.Fatalf("injected a %s fault but the hub detected none: %+v", chaos.Kind, fs)
			}
			if fs.Heals < 1 || fs.Rejoins < 2 {
				t.Fatalf("fault detected but the session never healed: %+v", fs)
			}
			if fs.LastError == "" {
				t.Fatalf("fault detected with no recorded reason: %+v", fs)
			}
		} else if fs.Detected != 0 {
			t.Fatalf("delay-only cell detected a fault: %+v (last: %s)", fs.Detected, fs.LastError)
		}
	}

	for _, kind := range kinds {
		for _, frac := range fracs {
			after := int64(float64(opsPerSolve) * frac)
			if after < 1 {
				after = 1
			}
			for _, seed := range chaosSeeds {
				label := fmt.Sprintf("%s/after=%d/seed=%d", kind, after, seed)
				t.Run(label, func(t *testing.T) {
					runCell(t, label, &transport.ChaosConfig{Kind: kind, Seed: seed, After: after}, true)
				})
			}
		}
	}

	// Delay is the timing-perturbation control: seeded sleeps on every
	// operation, zero faults, and the answer must not wobble.
	for _, seed := range chaosSeeds {
		label := fmt.Sprintf("delay/seed=%d", seed)
		t.Run(label, func(t *testing.T) {
			runCell(t, label, &transport.ChaosConfig{Kind: transport.ChaosDelay, Seed: seed}, false)
		})
	}
}

// TestChaosCrashAtPhase is the fifth fault kind of the matrix: a rank
// crashes (faultpoint panic — the in-process stand-in for rankd's
// FAULTPOINTS=...:exit) at the start of solver phases 2, 4 and 6, and the
// recovering fleet still answers byte-identically. The faultpoint registry
// is process-global and the workers are goroutines here, so the loopback
// reference is computed before arming and the points are reset on cleanup.
func TestChaosCrashAtPhase(t *testing.T) {
	g := engineTestGraph(17, 120)
	rng := rand.New(rand.NewSource(92))
	seeds := pickEngineSeeds(rng, g.NumVertices(), 5)

	loop, err := NewEngine(g, chaosOpts())
	if err != nil {
		t.Fatal(err)
	}
	want, err := loop.Solve(seeds)
	loop.Close()
	if err != nil {
		t.Fatalf("loopback reference: %v", err)
	}

	for _, phase := range []string{"solve.phase2", "solve.phase4", "solve.phase6"} {
		t.Run(phase, func(t *testing.T) {
			t.Cleanup(faultpoint.Reset)
			opts := chaosOpts()
			opts.Recover = true
			opts.RejoinWait = 15 * time.Second
			e, shutdown := startChaosFleet(t, g, opts, 2, func(w int) WorkerConfig {
				return WorkerConfig{RejoinWait: 15 * time.Second}
			})
			// Arm after the handshake so the crash lands mid-solve, not in
			// session build. Once-semantics: exactly one rank crashes once;
			// the requeued run is clean.
			faultpoint.Arm(phase, faultpoint.ActPanic)
			got, err := solveWithDeadline(t, phase, e, seeds)
			if err != nil {
				t.Fatalf("crash at %s not recovered: %v", phase, err)
			}
			assertResultsEquivalent(t, phase, got, want)
			fs := e.FaultStats()
			shutdown(true)
			if fs.Detected < 1 || fs.Heals < 1 || fs.Requeued < 1 {
				t.Fatalf("crash cell fault accounting: %+v", fs)
			}
			if !strings.Contains(fs.LastError, "panic") {
				t.Fatalf("crash cell recorded reason %q, want a rank panic", fs.LastError)
			}
			if faultpoint.Injected() < 1 {
				t.Fatal("faultpoint never fired")
			}
		})
	}
}

// TestChaosFailStopWithoutRecovery pins the legacy contract the chaos
// matrix must not erode: without Options.Recover a mid-solve fault poisons
// the session — Solve returns a session-fault error (IsSessionFault, so
// serving layers know a retry needs a new fleet), a second Solve errors
// promptly instead of hanging, and the workers exit with errors.
func TestChaosFailStopWithoutRecovery(t *testing.T) {
	g := engineTestGraph(17, 120)
	rng := rand.New(rand.NewSource(93))
	seeds := pickEngineSeeds(rng, g.NumVertices(), 5)
	probe := probeChaosOps(t, g, seeds)

	cells := []struct {
		name  string
		chaos *transport.ChaosConfig
		arm   string
	}{
		{"coord-drop", &transport.ChaosConfig{Kind: transport.ChaosCoordDrop, Seed: 7, After: probe / 2}, ""},
		{"peer-drop", &transport.ChaosConfig{Kind: transport.ChaosPeerDrop, Seed: 7, After: probe / 2}, ""},
		{"rank-panic", nil, "solve.phase3"},
	}
	for _, cell := range cells {
		t.Run(cell.name, func(t *testing.T) {
			e, shutdown := startChaosFleet(t, g, chaosOpts(), 2, func(w int) WorkerConfig {
				cfg := WorkerConfig{}
				if w == 0 {
					cfg.Chaos = cell.chaos
				}
				return cfg
			})
			if cell.arm != "" {
				t.Cleanup(faultpoint.Reset)
				faultpoint.Arm(cell.arm, faultpoint.ActPanic)
			}
			_, err := solveWithDeadline(t, cell.name, e, seeds)
			if err == nil {
				t.Fatal("faulted fail-stop solve succeeded")
			}
			if !IsSessionFault(err) {
				t.Fatalf("fault surfaced as a query error, not a session fault: %v", err)
			}
			// The poisoned session must refuse further work immediately.
			if _, err := solveWithDeadline(t, cell.name+"/again", e, seeds); err == nil {
				t.Fatal("poisoned session answered a second query")
			}
			shutdown(false)
		})
	}
}

// TestWorkerHandshakeCoordinatorReset pins the worker-side failure mode
// when the coordinator's connection resets between Hello and Setup: the
// worker errors out instead of hanging, and reports the handshake step.
func TestWorkerHandshakeCoordinatorReset(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		_ = conn.Close() // reset before sending the setup
	}()
	err = RunWorker(ln.Addr().String(), WorkerConfig{DialTimeout: 3 * time.Second})
	if err == nil {
		t.Fatal("worker survived a coordinator that hung up mid-handshake")
	}
	// Depending on when the reset lands, either the Hello write or the
	// Setup read observes it; both must name their handshake step.
	if !strings.Contains(err.Error(), "waiting for setup") && !strings.Contains(err.Error(), "hello") {
		t.Fatalf("worker error does not name the handshake step: %v", err)
	}
}
