package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"dsteiner/internal/graph"
	rt "dsteiner/internal/runtime"
)

// startTCPEngine builds a BackendTCP engine whose rankd workers run as
// goroutines in this process but speak the real wire protocol over real
// localhost TCP connections — the same code path cmd/rankd executes.
// Returns the engine and a wait function that asserts every worker exited
// cleanly after Close.
func startTCPEngine(t *testing.T, g *graph.Graph, opts Options, workers int) (*Engine, func()) {
	t.Helper()
	opts.Backend = BackendTCP
	opts.Workers = workers
	opts.ListenAddr = "127.0.0.1:0"
	var wg sync.WaitGroup
	errs := make([]error, workers)
	opts.OnListen = func(addr string) {
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = RunWorker(addr, WorkerConfig{})
			}(i)
		}
	}
	e, err := NewEngine(g, opts)
	if err != nil {
		t.Fatalf("tcp engine: %v", err)
	}
	return e, func() {
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}
	}
}

// TestTCPBackendMatchesLoopback is the transport-equivalence acceptance
// test: for partition kinds × delegate thresholds × {async, BSP}, a
// 4-worker rankd cluster driven over TCP returns Results byte-identical
// (solver-output fields) to the in-process loopback backend — and both
// match across repeated queries on the same warm session.
func TestTCPBackendMatchesLoopback(t *testing.T) {
	if testing.Short() {
		// The full matrix spins up 24 worker fleets; -short keeps two.
	}
	g := engineTestGraph(17, 120)
	rng := rand.New(rand.NewSource(18))
	seedSets := [][]graph.VID{
		pickEngineSeeds(rng, g.NumVertices(), 3),
		pickEngineSeeds(rng, g.NumVertices(), 7),
		pickEngineSeeds(rng, g.NumVertices(), 13),
	}
	kinds := []PartitionKind{PartitionBlock, PartitionHash, PartitionArcBlock}
	thresholds := []int{0, 6}
	bsps := []bool{false, true}
	if testing.Short() {
		kinds = []PartitionKind{PartitionArcBlock}
		thresholds = []int{6}
	}
	for _, kind := range kinds {
		for _, threshold := range thresholds {
			for _, bsp := range bsps {
				label := fmt.Sprintf("%v/thr=%d/bsp=%v", kind, threshold, bsp)
				t.Run(label, func(t *testing.T) {
					opts := Options{
						Ranks:             4,
						Queue:             rt.QueuePriority,
						Partition:         kind,
						DelegateThreshold: threshold,
						BSP:               bsp,
					}
					loop, err := NewEngine(g, opts)
					if err != nil {
						t.Fatal(err)
					}
					defer loop.Close()
					tcp, wait := startTCPEngine(t, g, opts, 4)
					defer wait()
					defer tcp.Close()
					for _, seeds := range seedSets {
						want, err := loop.Solve(seeds)
						if err != nil {
							t.Fatalf("loopback: %v", err)
						}
						got, err := tcp.Solve(seeds)
						if err != nil {
							t.Fatalf("tcp: %v", err)
						}
						assertResultsEquivalent(t, label, got, want)
						if got.Net.FramesOut == 0 || got.Net.BytesOut == 0 {
							t.Fatalf("%s: tcp solve reports no transport traffic: %+v", label, got.Net)
						}
						if want.Net.FramesOut != 0 {
							t.Fatalf("%s: loopback solve reports transport traffic: %+v", label, want.Net)
						}
						if threshold > 0 && (got.BatchedBroadcasts == 0 || want.BatchedBroadcasts == 0) {
							t.Fatalf("%s: delegate solve batched nothing (tcp=%d loopback=%d)",
								label, got.BatchedBroadcasts, want.BatchedBroadcasts)
						}
					}
				})
			}
		}
	}
}

// TestTCPBackendV1SessionMatchesLoopback pins the rollback path: a session
// forced to wire version 1 via Options.MaxWireVersion (the "old
// coordinator" a freshly-deployed worker might dial into) still returns
// results byte-identical to loopback, and never uses the v2 compacted
// batch frames (no compaction savings can be reported).
func TestTCPBackendV1SessionMatchesLoopback(t *testing.T) {
	g := engineTestGraph(17, 120)
	rng := rand.New(rand.NewSource(31))
	seedSets := [][]graph.VID{
		pickEngineSeeds(rng, g.NumVertices(), 5),
		pickEngineSeeds(rng, g.NumVertices(), 11),
	}
	for _, bsp := range []bool{false, true} {
		opts := Options{
			Ranks:             4,
			Queue:             rt.QueuePriority,
			Partition:         PartitionArcBlock,
			DelegateThreshold: 6,
			BSP:               bsp,
		}
		loop, err := NewEngine(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.MaxWireVersion = 1
		tcp, wait := startTCPEngine(t, g, opts, 4)
		for _, seeds := range seedSets {
			want, err := loop.Solve(seeds)
			if err != nil {
				t.Fatalf("loopback: %v", err)
			}
			got, err := tcp.Solve(seeds)
			if err != nil {
				t.Fatalf("tcp v1: %v", err)
			}
			label := fmt.Sprintf("v1/bsp=%v", bsp)
			assertResultsEquivalent(t, label, got, want)
			if got.Net.CompactionSavedBytes != 0 {
				t.Fatalf("%s: v1 session reports compaction savings %d", label, got.Net.CompactionSavedBytes)
			}
			// Outbox batching runs regardless of wire version (the loopback
			// reference proves it), but the v1 WorkerDone frame has no stats
			// tail to carry the counters back to the coordinator.
			if want.BatchedBroadcasts == 0 {
				t.Fatalf("%s: loopback delegate solve batched nothing", label)
			}
			if got.BatchedBroadcasts != 0 || got.CoalescedBroadcasts != 0 {
				t.Fatalf("%s: v1 session reported outbox counters (batched=%d coalesced=%d) the v1 frame cannot carry",
					label, got.BatchedBroadcasts, got.CoalescedBroadcasts)
			}
		}
		tcp.Close()
		wait()
		loop.Close()
	}
}

// TestTCPBackendSingleWorker covers the degenerate fleet: one worker
// hosting every rank still crosses the coordinator for collectives and
// termination.
func TestTCPBackendSingleWorker(t *testing.T) {
	g := engineTestGraph(23, 90)
	rng := rand.New(rand.NewSource(24))
	opts := Options{Ranks: 3, Queue: rt.QueuePriority, Partition: PartitionArcBlock}
	loop, err := NewEngine(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer loop.Close()
	tcp, wait := startTCPEngine(t, g, opts, 1)
	defer wait()
	defer tcp.Close()
	for k := 2; k <= 6; k += 2 {
		seeds := pickEngineSeeds(rng, g.NumVertices(), k)
		want, err := loop.Solve(seeds)
		if err != nil {
			t.Fatal(err)
		}
		got, err := tcp.Solve(seeds)
		if err != nil {
			t.Fatal(err)
		}
		assertResultsEquivalent(t, fmt.Sprintf("k=%d", k), got, want)
	}
}

// TestTCPBackendErrors pins the error paths: disconnected seeds fail the
// query but keep the session serving, duplicate seeds are rejected
// coordinator-side, and sibling pools are refused.
func TestTCPBackendErrors(t *testing.T) {
	// Two components: vertices 0..4 chained, 5..9 chained.
	b := graph.NewBuilder(10)
	for v := 1; v < 5; v++ {
		b.AddEdge(graph.VID(v-1), graph.VID(v), 1)
	}
	for v := 6; v < 10; v++ {
		b.AddEdge(graph.VID(v-1), graph.VID(v), 1)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Ranks: 2, Queue: rt.QueuePriority}
	e, wait := startTCPEngine(t, g, opts, 2)
	defer wait()
	defer e.Close()

	if _, err := e.Solve([]graph.VID{0, 9}); err == nil {
		t.Fatal("disconnected seeds solved")
	}
	if _, err := e.Solve([]graph.VID{0, 0}); err == nil {
		t.Fatal("duplicate seeds solved")
	}
	// The session must still answer a well-formed query.
	res, err := e.Solve([]graph.VID{0, 4})
	if err != nil {
		t.Fatalf("session dead after failed query: %v", err)
	}
	if res.TotalDistance != 4 {
		t.Fatalf("chain distance %d, want 4", res.TotalDistance)
	}
	if _, err := e.NewSibling(); err == nil {
		t.Fatal("tcp engine allowed a sibling")
	}
}
