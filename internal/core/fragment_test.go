package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"dsteiner/internal/graph"
	rt "dsteiner/internal/runtime"
)

// tieTestGraph builds a connected random graph with a tiny weight range so
// cross-edge weight ties are common: the property tests below only prove
// anything if the (D, seedKey) tie-break is actually exercised.
func tieTestGraph(seed int64, n int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(graph.VID(rng.Intn(v)), graph.VID(v), uint32(rng.Intn(3))+1)
	}
	for i := 0; i < 3*n; i++ {
		b.AddEdge(graph.VID(rng.Intn(n)), graph.VID(rng.Intn(n)), uint32(rng.Intn(3))+1)
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// TestFragmentMatchesReplicatedProperty is the determinism property test:
// over random tie-heavy graphs × rank counts × terminal counts, the
// fragment merge must return a Result byte-identical to the replicated
// oracle (which runs sequential mst.Kruskal over the full cross table) —
// same tree, same order, same totals.
func TestFragmentMatchesReplicatedProperty(t *testing.T) {
	for _, ranks := range []int{1, 3, 4} {
		for trial := 0; trial < 4; trial++ {
			g := tieTestGraph(int64(100*ranks+trial), 80+7*trial)
			rng := rand.New(rand.NewSource(int64(trial)))
			opts := Options{Ranks: ranks, Queue: rt.QueuePriority, Partition: PartitionArcBlock}

			opts.MSTMode = MSTFragment
			frag, err := NewEngine(g, opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.MSTMode = MSTReplicated
			opts.MST = MSTKruskal
			repl, err := NewEngine(g, opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{2, 5, 16} {
				seeds := pickEngineSeeds(rng, g.NumVertices(), k)
				label := fmt.Sprintf("ranks=%d/trial=%d/k=%d", ranks, trial, k)
				want, err := repl.Solve(seeds)
				if err != nil {
					t.Fatalf("%s: replicated: %v", label, err)
				}
				got, err := frag.Solve(seeds)
				if err != nil {
					t.Fatalf("%s: fragment: %v", label, err)
				}
				assertResultsEquivalent(t, label, got, want)
				if !got.MSTFragment || want.MSTFragment {
					t.Fatalf("%s: MSTFragment flags: frag=%v repl=%v", label, got.MSTFragment, want.MSTFragment)
				}
				if got.MSTRounds < 1 {
					t.Fatalf("%s: fragment merge reported %d rounds", label, got.MSTRounds)
				}
				if got.DistGraphEdges != want.DistGraphEdges {
					t.Fatalf("%s: dist-graph edges %d != %d", label, got.DistGraphEdges, want.DistGraphEdges)
				}
			}
			frag.Close()
			repl.Close()
		}
	}
}

// TestFragmentModeMatrix sweeps the fragment merge across the solver
// configuration space on loopback — partition kinds × delegates × BSP ×
// query modes — asserting Results identical to the replicated oracle.
// Prize queries downgrade to the replicated path per query, so they pin
// the mode-mixing seam rather than the merge itself.
func TestFragmentModeMatrix(t *testing.T) {
	g := clusteredTestGraph(29, 3, 40)
	rng := rand.New(rand.NewSource(92))
	seeds := pickEngineSeeds(rng, g.NumVertices(), 9)
	groups := pickClusterGroups(rng, 40, []int{3, 3, 3})
	penalties := make([]graph.Dist, len(seeds))
	for i := range penalties {
		penalties[i] = graph.Dist(rng.Intn(40) + 1)
	}
	specs := []QuerySpec{
		{Mode: ModeTree, Seeds: seeds},
		{Mode: ModeForest, Groups: groups},
		{Mode: ModePrize, Seeds: seeds, Penalties: penalties},
	}
	for _, kind := range []PartitionKind{PartitionBlock, PartitionHash, PartitionArcBlock} {
		for _, threshold := range []int{0, 6} {
			for _, bsp := range []bool{false, true} {
				label := fmt.Sprintf("%v/thr=%d/bsp=%v", kind, threshold, bsp)
				opts := Options{
					Ranks:             4,
					Queue:             rt.QueuePriority,
					Partition:         kind,
					DelegateThreshold: threshold,
					BSP:               bsp,
				}
				opts.MSTMode = MSTFragment
				frag, err := NewEngine(g, opts)
				if err != nil {
					t.Fatal(err)
				}
				opts.MSTMode = MSTReplicated
				repl, err := NewEngine(g, opts)
				if err != nil {
					t.Fatal(err)
				}
				for _, spec := range specs {
					want, err := repl.SolveSpec(spec)
					if err != nil {
						t.Fatalf("%s/%s: replicated: %v", label, spec.Mode, err)
					}
					got, err := frag.SolveSpec(spec)
					if err != nil {
						t.Fatalf("%s/%s: fragment: %v", label, spec.Mode, err)
					}
					if !reflect.DeepEqual(got.Tree, want.Tree) {
						t.Fatalf("%s/%s: trees differ\nfragment   %v\nreplicated %v", label, spec.Mode, got.Tree, want.Tree)
					}
					if got.TotalDistance != want.TotalDistance {
						t.Fatalf("%s/%s: total %d != %d", label, spec.Mode, got.TotalDistance, want.TotalDistance)
					}
					if wantFrag := spec.Mode != ModePrize; got.MSTFragment != wantFrag {
						t.Fatalf("%s/%s: MSTFragment=%v, want %v", label, spec.Mode, got.MSTFragment, wantFrag)
					}
				}
				frag.Close()
				repl.Close()
			}
		}
	}
}

// TestFragmentAutoDefaults pins the auto resolution: a plain sharded
// loopback engine runs the fragment merge without being asked, and a
// GlobalCSR engine silently keeps the replicated reference path.
func TestFragmentAutoDefaults(t *testing.T) {
	g := engineTestGraph(31, 90)
	rng := rand.New(rand.NewSource(7))
	seeds := pickEngineSeeds(rng, g.NumVertices(), 6)

	e, err := NewEngine(g, Options{Ranks: 3, Queue: rt.QueuePriority})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.MSTMode() != MSTFragment {
		t.Fatalf("sharded auto resolved to %v, want fragment", e.MSTMode())
	}
	res, err := e.Solve(seeds)
	if err != nil {
		t.Fatal(err)
	}
	if !res.MSTFragment || res.MSTRounds < 1 {
		t.Fatalf("auto solve: MSTFragment=%v rounds=%d", res.MSTFragment, res.MSTRounds)
	}
	if res.CrossTableBytes != 0 {
		t.Fatalf("loopback solve reported %d cross-table wire bytes", res.CrossTableBytes)
	}

	ref, err := NewEngine(g, Options{Ranks: 3, Queue: rt.QueuePriority, GlobalCSR: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if ref.MSTMode() != MSTReplicated {
		t.Fatalf("GlobalCSR auto resolved to %v, want replicated", ref.MSTMode())
	}
	refRes, err := ref.Solve(seeds)
	if err != nil {
		t.Fatal(err)
	}
	if refRes.MSTFragment {
		t.Fatal("GlobalCSR solve claims the fragment merge ran")
	}
	if !reflect.DeepEqual(res.Tree, refRes.Tree) {
		t.Fatalf("fragment tree differs from GlobalCSR reference\nfragment %v\nglobal   %v", res.Tree, refRes.Tree)
	}
}

// TestFragmentGlobalCSRRejected pins the configuration guard: the fragment
// merge has no meaning on the replicated reference engine.
func TestFragmentGlobalCSRRejected(t *testing.T) {
	g := engineTestGraph(33, 40)
	_, err := NewEngine(g, Options{Ranks: 2, Queue: rt.QueuePriority, GlobalCSR: true, MSTMode: MSTFragment})
	if err == nil || !strings.Contains(err.Error(), "MSTFragment") {
		t.Fatalf("GlobalCSR+MSTFragment: err=%v, want MSTFragment rejection", err)
	}
}

// TestFragmentTCPWireBytes is the perf acceptance test on a real TCP
// fleet at high terminal count: the fragment merge must move strictly
// fewer phase 3–4 wire bytes than the replicated gather (whose payload is
// O(k²) entries to every rank) while returning the identical Result.
func TestFragmentTCPWireBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("spins two 4-worker TCP fleets at k=512")
	}
	g := engineTestGraph(41, 1600)
	rng := rand.New(rand.NewSource(55))
	seeds := pickEngineSeeds(rng, g.NumVertices(), 512)
	opts := Options{Ranks: 4, Queue: rt.QueuePriority, Partition: PartitionArcBlock}

	opts.MSTMode = MSTFragment
	frag, fragWait := startTCPEngine(t, g, opts, 4)
	defer fragWait()
	defer frag.Close()
	opts.MSTMode = MSTReplicated
	repl, replWait := startTCPEngine(t, g, opts, 4)
	defer replWait()
	defer repl.Close()

	want, err := repl.Solve(seeds)
	if err != nil {
		t.Fatalf("replicated: %v", err)
	}
	got, err := frag.Solve(seeds)
	if err != nil {
		t.Fatalf("fragment: %v", err)
	}
	assertResultsEquivalent(t, "tcp-k512", got, want)
	if !got.MSTFragment || got.MSTRounds < 1 || got.FragmentMsgs == 0 {
		t.Fatalf("fragment solve: MSTFragment=%v rounds=%d msgs=%d", got.MSTFragment, got.MSTRounds, got.FragmentMsgs)
	}
	if got.CrossTableBytes == 0 || want.CrossTableBytes == 0 {
		t.Fatalf("cross-table bytes unreported: fragment=%d replicated=%d", got.CrossTableBytes, want.CrossTableBytes)
	}
	if got.CrossTableBytes >= want.CrossTableBytes {
		t.Fatalf("fragment moved %d cross-table bytes, replicated %d — no reduction",
			got.CrossTableBytes, want.CrossTableBytes)
	}
	t.Logf("k=512 cross-table wire bytes: fragment=%d replicated=%d (%.1fx)",
		got.CrossTableBytes, want.CrossTableBytes,
		float64(want.CrossTableBytes)/float64(got.CrossTableBytes))
}

// TestFragmentTCPPinnedV3 pins the rollback seam: a session pinned below
// wire v4 silently keeps the replicated path under auto, and refuses an
// explicit MSTFragment request instead of running it wrong.
func TestFragmentTCPPinnedV3(t *testing.T) {
	g := engineTestGraph(43, 90)
	rng := rand.New(rand.NewSource(61))
	seeds := pickEngineSeeds(rng, g.NumVertices(), 7)
	opts := Options{Ranks: 2, Queue: rt.QueuePriority, MaxWireVersion: 3}

	tcp, wait := startTCPEngine(t, g, opts, 2)
	if tcp.MSTMode() != MSTReplicated {
		t.Fatalf("v3 auto resolved to %v, want replicated", tcp.MSTMode())
	}
	res, err := tcp.Solve(seeds)
	if err != nil {
		t.Fatal(err)
	}
	if res.MSTFragment {
		t.Fatal("v3 session claims the fragment merge ran")
	}
	loop, err := NewEngine(g, Options{Ranks: 2, Queue: rt.QueuePriority})
	if err != nil {
		t.Fatal(err)
	}
	want, err := loop.Solve(seeds)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEquivalent(t, "v3-vs-fragment-loopback", res, want)
	loop.Close()
	tcp.Close()
	wait()

	opts.MSTMode = MSTFragment
	opts.Backend = BackendTCP
	opts.Workers = 2
	opts.ListenAddr = "127.0.0.1:0"
	done := make(chan struct{}, 2)
	opts.OnListen = func(addr string) {
		for i := 0; i < 2; i++ {
			go func() {
				// Workers exit when the refused coordinator closes the hub;
				// that teardown error is expected, not asserted.
				_ = RunWorker(addr, WorkerConfig{})
				done <- struct{}{}
			}()
		}
	}
	if _, err := NewEngine(g, opts); err == nil || !strings.Contains(err.Error(), "wire v4") {
		t.Fatalf("MSTFragment on a v3 fleet: err=%v, want wire v4 refusal", err)
	}
	<-done
	<-done
}
