package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"dsteiner/internal/exact"
	"dsteiner/internal/graph"
	rt "dsteiner/internal/runtime"
)

// clusteredTestGraph builds k dense clusters of perCluster vertices with
// light internal weights (<= 100) joined by a sparse ring of huge-weight
// bridges (1e6). Terminals placed within one cluster always have their
// whole cluster inside their own Voronoi cells, so a forest group per
// cluster is guaranteed feasible.
func clusteredTestGraph(seed int64, clusters, perCluster int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := clusters * perCluster
	b := graph.NewBuilder(n)
	for c := 0; c < clusters; c++ {
		base := c * perCluster
		for v := 1; v < perCluster; v++ {
			b.AddEdge(graph.VID(base+rng.Intn(v)), graph.VID(base+v), uint32(rng.Intn(100))+1)
		}
		for i := 0; i < 2*perCluster; i++ {
			b.AddEdge(graph.VID(base+rng.Intn(perCluster)), graph.VID(base+rng.Intn(perCluster)),
				uint32(rng.Intn(100))+1)
		}
	}
	for c := 1; c < clusters; c++ {
		b.AddEdge(graph.VID((c-1)*perCluster+rng.Intn(perCluster)),
			graph.VID(c*perCluster+rng.Intn(perCluster)), 1_000_000)
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// pickClusterGroups selects one terminal group per cluster (sizes[i]
// distinct vertices inside cluster i).
func pickClusterGroups(rng *rand.Rand, perCluster int, sizes []int) [][]graph.VID {
	groups := make([][]graph.VID, len(sizes))
	for c, size := range sizes {
		seen := map[graph.VID]bool{}
		for len(groups[c]) < size {
			v := graph.VID(c*perCluster + rng.Intn(perCluster))
			if !seen[v] {
				seen[v] = true
				groups[c] = append(groups[c], v)
			}
		}
	}
	return groups
}

// treeVertexSet collects the distinct vertices of an edge list.
func treeVertexSet(edges []graph.Edge) map[graph.VID]bool {
	set := make(map[graph.VID]bool, 2*len(edges))
	for _, e := range edges {
		set[e.U] = true
		set[e.V] = true
	}
	return set
}

// checkForestProperties asserts the forest-mode contract: one subtree per
// canonical group, each connected and spanning its group, vertex-disjoint
// from every other group's subtree (so no edge can bridge two groups), and
// together exactly the full result tree.
func checkForestProperties(t *testing.T, g *graph.Graph, res *Result) {
	t.Helper()
	if res.Mode != ModeForest {
		t.Fatalf("mode %v, want forest", res.Mode)
	}
	if len(res.GroupTrees) != len(res.Groups) {
		t.Fatalf("%d group trees for %d groups", len(res.GroupTrees), len(res.Groups))
	}
	var all []graph.Edge
	var total graph.Dist
	claimed := map[graph.VID]int{}
	for gi, grp := range res.Groups {
		sub := res.GroupTrees[gi]
		// Connected, acyclic, spans the group, leaves are terminals.
		if err := graph.ValidateSteinerTree(g, grp, sub); err != nil {
			t.Fatalf("group %d subtree invalid: %v", gi, err)
		}
		for v := range treeVertexSet(sub) {
			if prev, ok := claimed[v]; ok {
				t.Fatalf("vertex %d appears in group %d and group %d subtrees", v, prev, gi)
			}
			claimed[v] = gi
		}
		all = append(all, sub...)
		total += graph.TotalWeight(sub)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].U != all[j].U {
			return all[i].U < all[j].U
		}
		return all[i].V < all[j].V
	})
	if !reflect.DeepEqual(all, res.Tree) {
		t.Fatalf("group subtrees do not partition the tree:\nunion %v\ntree  %v", all, res.Tree)
	}
	if total != res.TotalDistance || res.Objective != res.TotalDistance {
		t.Fatalf("distances disagree: groups=%d total=%d objective=%d",
			total, res.TotalDistance, res.Objective)
	}
}

// TestForestModeProperties is the forest property test on the loopback
// backend: across partition kinds and delegate thresholds, every group's
// returned subtree is connected, spans its group, and no edge bridges two
// groups.
func TestForestModeProperties(t *testing.T) {
	g := clusteredTestGraph(7, 3, 40)
	rng := rand.New(rand.NewSource(8))
	specs := []QuerySpec{
		{Mode: ModeForest, Groups: pickClusterGroups(rng, 40, []int{3, 4, 2})},
		{Mode: ModeForest, Groups: pickClusterGroups(rng, 40, []int{5, 2, 3})},
		{Mode: ModeForest, Groups: pickClusterGroups(rng, 40, []int{1, 6, 1})}, // singleton groups
	}
	for _, kind := range []PartitionKind{PartitionBlock, PartitionArcBlock} {
		for _, threshold := range []int{0, 8} {
			opts := Options{Ranks: 4, Queue: rt.QueuePriority, Partition: kind, DelegateThreshold: threshold}
			e, err := NewEngine(g, opts)
			if err != nil {
				t.Fatal(err)
			}
			for qi, spec := range specs {
				res, err := e.SolveSpec(spec)
				if err != nil {
					t.Fatalf("%v/thr=%d query %d: %v", kind, threshold, qi, err)
				}
				checkForestProperties(t, g, res)
			}
			e.Close()
		}
	}
}

// TestForestModeSingleGroupMatchesTree pins the degenerate case: a forest
// query with one group returns exactly the tree-mode solve of that set.
func TestForestModeSingleGroupMatchesTree(t *testing.T) {
	g := engineTestGraph(55, 150)
	rng := rand.New(rand.NewSource(56))
	seeds := pickEngineSeeds(rng, g.NumVertices(), 6)
	e, err := NewEngine(g, Default(4))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	tree, err := e.Solve(seeds)
	if err != nil {
		t.Fatal(err)
	}
	forest, err := e.SolveSpec(QuerySpec{Mode: ModeForest, Groups: [][]graph.VID{seeds}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(forest.Tree, tree.Tree) || forest.TotalDistance != tree.TotalDistance {
		t.Fatalf("single-group forest differs from tree solve:\nforest %v\ntree   %v", forest.Tree, tree.Tree)
	}
	if len(forest.GroupTrees) != 1 || !reflect.DeepEqual(forest.GroupTrees[0], tree.Tree) {
		t.Fatalf("group tree does not equal the full tree")
	}
}

// prizeBruteForce computes the true prize-collecting optimum over all
// non-empty terminal subsets: exact Steiner tree cost of the subset plus
// the penalties of everything excluded. (The keep-nothing solution is never
// better than keeping the single most expensive terminal, so non-empty
// subsets suffice.)
func prizeBruteForce(t *testing.T, g *graph.Graph, seeds []graph.VID, penalties []graph.Dist) graph.Dist {
	t.Helper()
	totalPen := graph.Dist(0)
	for _, p := range penalties {
		totalPen += p
	}
	best := graph.Dist(-1)
	for mask := 1; mask < 1<<len(seeds); mask++ {
		var subset []graph.VID
		pen := totalPen
		for i := range seeds {
			if mask&(1<<i) != 0 {
				subset = append(subset, seeds[i])
				pen -= penalties[i]
			}
		}
		sol, err := exact.Solve(g, subset, 0)
		if err != nil {
			continue // disconnected subset: infeasible
		}
		if obj := sol.Total + pen; best < 0 || obj < best {
			best = obj
		}
	}
	if best < 0 {
		t.Fatal("no feasible prize subset")
	}
	return best
}

// TestPrizeModeObjective is the prize objective test: on small random
// instances, tree cost + paid penalties stays within 2x the brute-force
// optimum, the reported accounting is internally consistent, and the tree
// is a valid Steiner tree of the kept terminals.
func TestPrizeModeObjective(t *testing.T) {
	for _, tc := range []struct {
		graphSeed, rngSeed int64
		n, k, maxPen       int
	}{
		{71, 72, 50, 5, 60},
		{73, 74, 60, 6, 25},
		{75, 76, 40, 5, 200}, // penalties high enough that skipping is rare
		{77, 78, 60, 6, 8},   // penalties low enough that skipping is common
	} {
		t.Run(fmt.Sprintf("g%d", tc.graphSeed), func(t *testing.T) {
			g := engineTestGraph(tc.graphSeed, tc.n)
			rng := rand.New(rand.NewSource(tc.rngSeed))
			seeds := pickEngineSeeds(rng, g.NumVertices(), tc.k)
			penalties := make([]graph.Dist, tc.k)
			for i := range penalties {
				penalties[i] = graph.Dist(rng.Intn(tc.maxPen + 1))
			}
			e, err := NewEngine(g, Default(4))
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			res, err := e.SolveSpec(QuerySpec{Mode: ModePrize, Seeds: seeds, Penalties: penalties})
			if err != nil {
				t.Fatal(err)
			}
			if res.Mode != ModePrize {
				t.Fatalf("mode %v, want prize", res.Mode)
			}
			// Accounting: PaidPenalty matches the skipped set, Objective
			// is cost + paid, and the tree spans exactly the kept set.
			paid := graph.Dist(0)
			skipped := map[graph.VID]bool{}
			for _, s := range res.Skipped {
				skipped[s] = true
			}
			var kept []graph.VID
			for i, s := range res.Seeds {
				if skipped[s] {
					paid += resPenalty(seeds, penalties, s)
					_ = i
				} else {
					kept = append(kept, s)
				}
			}
			if paid != res.PaidPenalty {
				t.Fatalf("paid penalty %d, skipped set says %d", res.PaidPenalty, paid)
			}
			if res.Objective != res.TotalDistance+res.PaidPenalty {
				t.Fatalf("objective %d != total %d + paid %d", res.Objective, res.TotalDistance, res.PaidPenalty)
			}
			if len(kept) == 0 {
				t.Fatal("prize solve kept no terminal")
			}
			if err := graph.ValidateSteinerTree(g, kept, res.Tree); err != nil {
				t.Fatalf("kept-set tree invalid: %v", err)
			}
			opt := prizeBruteForce(t, g, seeds, penalties)
			if res.Objective > 2*opt {
				t.Fatalf("objective %d exceeds 2x optimum %d", res.Objective, opt)
			}
		})
	}
}

// resPenalty looks up the penalty of seed s in the original (unsorted)
// query.
func resPenalty(seeds []graph.VID, penalties []graph.Dist, s graph.VID) graph.Dist {
	for i, v := range seeds {
		if v == s {
			return penalties[i]
		}
	}
	return 0
}

// TestForestPrizeTCPMatchesLoopback is the cross-backend acceptance test
// for the new modes: forest and prize queries answered by a 4-worker rankd
// fleet over real TCP must be byte-identical — tree, group subtrees,
// skipped set, penalties, objective — to the in-process loopback backend.
func TestForestPrizeTCPMatchesLoopback(t *testing.T) {
	g := clusteredTestGraph(81, 3, 40)
	rng := rand.New(rand.NewSource(82))
	groups := pickClusterGroups(rng, 40, []int{3, 4, 2})
	prizeSeeds := pickEngineSeeds(rng, g.NumVertices(), 6)
	penalties := make([]graph.Dist, len(prizeSeeds))
	for i := range penalties {
		penalties[i] = graph.Dist(rng.Intn(150))
	}
	specs := []QuerySpec{
		{Mode: ModeForest, Groups: groups},
		{Mode: ModePrize, Seeds: prizeSeeds, Penalties: penalties},
		TreeSpec(groups[0]), // a tree query on the same warm v3 session
	}
	opts := Options{Ranks: 4, Queue: rt.QueuePriority, Partition: PartitionArcBlock, DelegateThreshold: 8}
	loop, err := NewEngine(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer loop.Close()
	tcp, wait := startTCPEngine(t, g, opts, 4)
	defer wait()
	defer tcp.Close()
	for qi, spec := range specs {
		want, err := loop.SolveSpec(spec)
		if err != nil {
			t.Fatalf("loopback query %d: %v", qi, err)
		}
		got, err := tcp.SolveSpec(spec)
		if err != nil {
			t.Fatalf("tcp query %d: %v", qi, err)
		}
		label := fmt.Sprintf("query %d (%s)", qi, spec.Mode)
		assertResultsEquivalent(t, label, got, want)
		if !reflect.DeepEqual(got.Groups, want.Groups) ||
			!reflect.DeepEqual(got.GroupTrees, want.GroupTrees) {
			t.Fatalf("%s: group trees differ\ntcp      %v\nloopback %v", label, got.GroupTrees, want.GroupTrees)
		}
		if !reflect.DeepEqual(got.Skipped, want.Skipped) ||
			got.PaidPenalty != want.PaidPenalty || got.Objective != want.Objective {
			t.Fatalf("%s: prize outputs differ: skipped %v/%v paid %d/%d objective %d/%d",
				label, got.Skipped, want.Skipped, got.PaidPenalty, want.PaidPenalty,
				got.Objective, want.Objective)
		}
		if spec.Mode == ModeForest {
			checkForestProperties(t, g, got)
		}
	}
}

// TestNonTreeQueriesNeedWireV3 pins version negotiation: a session pinned
// below wire v3 refuses forest and prize queries with a descriptive error
// while tree queries on the same session keep working.
func TestNonTreeQueriesNeedWireV3(t *testing.T) {
	g := engineTestGraph(90, 80)
	opts := Options{Ranks: 2, Queue: rt.QueuePriority, MaxWireVersion: 2}
	e, wait := startTCPEngine(t, g, opts, 2)
	defer wait()
	defer e.Close()
	_, err := e.SolveSpec(QuerySpec{Mode: ModeForest, Groups: [][]graph.VID{{0, 1}, {70, 71}}})
	if err == nil || !strings.Contains(err.Error(), "wire v3") {
		t.Fatalf("forest on v2 session: err = %v, want wire v3 complaint", err)
	}
	if _, err := e.Solve([]graph.VID{0, 40}); err != nil {
		t.Fatalf("tree query after refused forest query: %v", err)
	}
}

// TestQuerySpecValidation pins canonSpec's rejection rules across modes.
func TestQuerySpecValidation(t *testing.T) {
	g := engineTestGraph(95, 40)
	e, err := NewEngine(g, Default(2))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for _, tc := range []struct {
		name string
		spec QuerySpec
		want string
	}{
		{"tree with groups", QuerySpec{Seeds: []graph.VID{1}, Groups: [][]graph.VID{{2}}}, "must not set groups"},
		{"tree with penalties", QuerySpec{Seeds: []graph.VID{1}, Penalties: []graph.Dist{2}}, "must not set penalties"},
		{"forest without groups", QuerySpec{Mode: ModeForest}, "at least one terminal group"},
		{"forest empty group", QuerySpec{Mode: ModeForest, Groups: [][]graph.VID{{1}, {}}}, "group 1 is empty"},
		{"forest dup across groups", QuerySpec{Mode: ModeForest, Groups: [][]graph.VID{{1, 2}, {2, 3}}}, "appears more than once"},
		{"forest out of range", QuerySpec{Mode: ModeForest, Groups: [][]graph.VID{{1, 999}}}, "out of range"},
		{"prize penalty count", QuerySpec{Mode: ModePrize, Seeds: []graph.VID{1, 2}, Penalties: []graph.Dist{3}}, "one penalty per seed"},
		{"prize negative penalty", QuerySpec{Mode: ModePrize, Seeds: []graph.VID{1}, Penalties: []graph.Dist{-4}}, "negative penalty"},
		{"prize with groups", QuerySpec{Mode: ModePrize, Seeds: []graph.VID{1}, Penalties: []graph.Dist{1}, Groups: [][]graph.VID{{2}}}, "not groups"},
		{"unknown mode", QuerySpec{Mode: Mode(9), Seeds: []graph.VID{1}}, "unknown query mode"},
	} {
		if _, err := e.SolveSpec(tc.spec); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}

	// Canonicalization: group order, in-group order and penalty order all
	// normalize, so equivalent specs produce identical canonical forms.
	a, err := CanonicalSpec(40, QuerySpec{Mode: ModeForest, Groups: [][]graph.VID{{9, 4}, {2, 7}}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := CanonicalSpec(40, QuerySpec{Mode: ModeForest, Groups: [][]graph.VID{{7, 2}, {4, 9}}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("equivalent forest specs canonicalize differently: %+v vs %+v", a, b)
	}
	p1, err := CanonicalSpec(40, QuerySpec{Mode: ModePrize, Seeds: []graph.VID{5, 2}, Penalties: []graph.Dist{50, 20}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1.Seeds, []graph.VID{2, 5}) || !reflect.DeepEqual(p1.Penalties, []graph.Dist{20, 50}) {
		t.Fatalf("penalties not co-sorted with seeds: %+v", p1)
	}
}

// BenchmarkForestSolve measures a warm engine answering forest queries —
// the benchgate guard proving mode dispatch doesn't tax the solve path.
func BenchmarkForestSolve(b *testing.B) {
	g := clusteredTestGraph(3, 3, 500)
	rng := rand.New(rand.NewSource(4))
	spec := QuerySpec{Mode: ModeForest, Groups: pickClusterGroups(rng, 500, []int{8, 8, 8})}
	opts := Default(4)
	opts.DelegateThreshold = 16
	e, err := NewEngine(g, opts)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	if _, err := e.SolveSpec(spec); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.SolveSpec(spec); err != nil {
			b.Fatal(err)
		}
	}
}
