// Package core implements the paper's primary contribution: the distributed
// 2-approximation Steiner minimal tree algorithm (Alg. 2, distributed as
// Alg. 3/5/6). Solve orchestrates the six phases over the message-passing
// runtime:
//
//  1. Voronoi Cell          — asynchronous multi-seed Bellman–Ford (Alg. 4)
//  2. Local Min Dist. Edge  — per-rank min cross-cell edge per cell pair,
//     with a request/reply exchange for remote endpoint distances (Alg. 5)
//  3. Global Min Dist. Edge — rank-local cross-edge ownership with a
//     distributed fragment merge (default), or the paper's replicated
//     Allreduce(MIN) merge of the per-rank tables (MSTReplicated)
//  4. MST                   — distributed Borůvka/GHS fragment merge over
//     the rank-owned cross edges, byte-identical to sequential Kruskal on
//     the replicated distance graph G'₁; the replicated sequential path
//     (Prim/Kruskal/Borůvka) is retained as the equivalence oracle
//  5. Global Edge Pruning   — drop cross-cell edges absent from the MST G'₂
//  6. Steiner Tree Edge     — predecessor walks from surviving cross-cell
//     edge endpoints back to each cell's seed (Alg. 6)
//
// The output tree satisfies D(G_S)/D_min(G) <= 2(1-1/l) by Mehlhorn's
// theorem: every MST of G'₁ is an MST of the KMB distance graph G₁.
package core

import (
	"fmt"
	"runtime"
	"time"

	rt "dsteiner/internal/runtime"
)

// MSTAlgo selects the sequential MST routine for phase 4.
type MSTAlgo int

const (
	// MSTKruskal sorts + union-find. It is the zero value (and Default)
	// because its (weight, U, V) total order is the one the fragment merge
	// reproduces byte-identically, so replicated and fragment solves agree
	// without configuration.
	MSTKruskal MSTAlgo = iota
	// MSTPrim is the paper's choice (Boost Prim in the original).
	MSTPrim
	// MSTBoruvka is the parallel-style algorithm used by the DESIGN.md
	// ablation of the "sequential MST is sufficient" claim.
	MSTBoruvka
)

// mstAlgoToWire freezes the MSTAlgo wire byte at the original encoding
// (0=prim, 1=kruskal, 2=boruvka) so reordering the Go constants cannot
// change what crosses a version-skewed handshake.
func mstAlgoToWire(a MSTAlgo) uint8 {
	switch a {
	case MSTKruskal:
		return 1
	case MSTBoruvka:
		return 2
	default:
		return 0 // Prim
	}
}

// mstAlgoFromWire is the inverse of mstAlgoToWire.
func mstAlgoFromWire(b uint8) MSTAlgo {
	switch b {
	case 1:
		return MSTKruskal
	case 2:
		return MSTBoruvka
	default:
		return MSTPrim
	}
}

// String returns the flag/API name of the MST algorithm.
func (a MSTAlgo) String() string {
	switch a {
	case MSTPrim:
		return "prim"
	case MSTKruskal:
		return "kruskal"
	case MSTBoruvka:
		return "boruvka"
	default:
		return fmt.Sprintf("MSTAlgo(%d)", int(a))
	}
}

// MSTMode selects how phases 3–5 merge the cross-edge table and build the
// MST of the distance graph G'₁.
type MSTMode int

const (
	// MSTModeAuto picks the fragment merge wherever it is available: every
	// sharded solve (loopback or a wire v4+ TCP session). GlobalCSR solves
	// and TCP sessions pinned below wire v4 fall back to replicated.
	MSTModeAuto MSTMode = iota
	// MSTReplicated is the paper's original path: every rank gathers the
	// entire merged cross-edge table (O(k²) entries to all P ranks) and
	// runs the same sequential MST over it. Retained as the equivalence
	// oracle, like Options.GlobalCSR.
	MSTReplicated
	// MSTFragment is the distributed Borůvka/GHS fragment merge: cross
	// edges stay rank-local (owned by the rank of the lex-min endpoint
	// cell), fragments merge in rounds over O(k) proposal exchanges, and
	// phase 5 consumes an allgather of the O(k) chosen edges instead of
	// the O(k²) table. Deterministic (weight, seedKey) tie-breaking makes
	// the chosen edge set byte-identical to sequential Kruskal.
	MSTFragment
)

// String returns the flag/API name of the MST mode.
func (m MSTMode) String() string {
	switch m {
	case MSTReplicated:
		return "replicated"
	case MSTFragment:
		return "fragment"
	default:
		return "auto"
	}
}

// ParseMSTMode maps a flag/API string to its MSTMode ("auto",
// "replicated", "fragment").
func ParseMSTMode(s string) (MSTMode, error) {
	switch s {
	case "", "auto":
		return MSTModeAuto, nil
	case "replicated":
		return MSTReplicated, nil
	case "fragment":
		return MSTFragment, nil
	default:
		return MSTModeAuto, fmt.Errorf("core: unknown mst mode %q (want auto, replicated or fragment)", s)
	}
}

// FrontierMode selects how a rank drains its Δ-stepping bucket queue in the
// vertex-centric phases: one message at a time (serial) or whole buckets at
// a time on a per-rank worker pool (parallel). The converged fixed point is
// order-independent (strict lex (dist, seed, pred) tie-breaking), so the
// two paths produce byte-identical Results; serial is retained as the
// equivalence oracle.
type FrontierMode int

const (
	// FrontierAuto picks parallel when it can pay off: the bucket queue
	// discipline is active, the sharded (non-GlobalCSR) path is in use, and
	// the resolved per-rank worker count exceeds 1. Anything else runs
	// serial.
	FrontierAuto FrontierMode = iota
	// FrontierSerial always drains one message at a time.
	FrontierSerial
	// FrontierParallel drains whole buckets on the per-rank worker pool.
	// Requires QueueBucket and the sharded path; on BackendTCP it also
	// requires a session negotiated at wire v6+.
	FrontierParallel
)

// String returns the flag/API name of the frontier mode.
func (m FrontierMode) String() string {
	switch m {
	case FrontierSerial:
		return "serial"
	case FrontierParallel:
		return "parallel"
	default:
		return "auto"
	}
}

// ParseFrontier maps a flag/API string to its FrontierMode ("auto",
// "serial", "parallel").
func ParseFrontier(s string) (FrontierMode, error) {
	switch s {
	case "", "auto":
		return FrontierAuto, nil
	case "serial":
		return FrontierSerial, nil
	case "parallel":
		return FrontierParallel, nil
	default:
		return FrontierAuto, fmt.Errorf("core: unknown frontier mode %q (want auto, serial or parallel)", s)
	}
}

// resolveFrontierLocal resolves FrontierAuto for an in-process engine:
// parallel only when the bucket discipline is active, the sharded path is
// in use, and the per-rank worker budget (FrontierWorkers or GOMAXPROCS,
// split across the Ranks this process hosts) exceeds one worker — anything
// else would pay the pool dispatch for no concurrency.
func resolveFrontierLocal(opts Options) FrontierMode {
	switch opts.Frontier {
	case FrontierSerial, FrontierParallel:
		return opts.Frontier
	}
	if opts.Queue != rt.QueueBucket || opts.GlobalCSR {
		return FrontierSerial
	}
	budget := opts.FrontierWorkers
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	if budget/opts.Ranks > 1 {
		return FrontierParallel
	}
	return FrontierSerial
}

// frontierToWire freezes the FrontierMode wire byte (0=auto, 1=serial,
// 2=parallel) so reordering the Go constants cannot change what crosses a
// version-skewed handshake.
func frontierToWire(m FrontierMode) uint8 {
	switch m {
	case FrontierSerial:
		return 1
	case FrontierParallel:
		return 2
	default:
		return 0
	}
}

// frontierFromWire is the inverse of frontierToWire.
func frontierFromWire(b uint8) FrontierMode {
	switch b {
	case 1:
		return FrontierSerial
	case 2:
		return FrontierParallel
	default:
		return FrontierAuto
	}
}

// PartitionKind selects the vertex-to-rank mapping.
type PartitionKind int

const (
	// PartitionBlock gives each rank a contiguous vertex range with an
	// equal share of vertices (the paper's stated partitioning).
	PartitionBlock PartitionKind = iota
	// PartitionHash assigns vertex v to rank v mod P.
	PartitionHash
	// PartitionArcBlock gives each rank a contiguous vertex range with
	// an approximately equal share of ARCS — better load balance on
	// skewed graphs.
	PartitionArcBlock
)

// String returns the flag/API name of the partition kind.
func (p PartitionKind) String() string {
	switch p {
	case PartitionHash:
		return "hash"
	case PartitionArcBlock:
		return "arcblock"
	default:
		return "block"
	}
}

// ParsePartition maps a flag/API string to its PartitionKind ("block",
// "hash", "arcblock").
func ParsePartition(s string) (PartitionKind, error) {
	switch s {
	case "block":
		return PartitionBlock, nil
	case "hash":
		return PartitionHash, nil
	case "arcblock":
		return PartitionArcBlock, nil
	default:
		return PartitionBlock, fmt.Errorf("core: unknown partition kind %q (want block, hash or arcblock)", s)
	}
}

// ParseQueue maps a flag/API string to its runtime queue discipline
// ("fifo", "priority", "bucket").
func ParseQueue(s string) (rt.QueueKind, error) {
	switch s {
	case "fifo":
		return rt.QueueFIFO, nil
	case "priority":
		return rt.QueuePriority, nil
	case "bucket":
		return rt.QueueBucket, nil
	default:
		return rt.QueueFIFO, fmt.Errorf("core: unknown queue discipline %q (want fifo, priority or bucket)", s)
	}
}

// Backend selects where the communicator's ranks live.
type Backend int

const (
	// BackendInproc runs every rank as a goroutine in this process over
	// in-memory mailboxes — the loopback transport, the default and the
	// perf baseline.
	BackendInproc Backend = iota
	// BackendTCP runs the ranks in external rankd worker processes: this
	// process becomes the session coordinator, ships each worker its
	// shard slices at setup, and every cross-rank message, collective
	// and termination token crosses a real TCP wire.
	BackendTCP
)

// String returns the flag/API name of the backend.
func (b Backend) String() string {
	switch b {
	case BackendTCP:
		return "tcp"
	default:
		return "inproc"
	}
}

// ParseBackend maps a flag/API string to its Backend ("inproc", "tcp").
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", "inproc":
		return BackendInproc, nil
	case "tcp":
		return BackendTCP, nil
	default:
		return BackendInproc, fmt.Errorf("core: unknown backend %q (want inproc or tcp)", s)
	}
}

// Options configures a Solve run. The zero value is a valid single-rank
// configuration with the paper's defaults (priority queue, Prim MST,
// asynchronous processing, block partition, no delegates).
type Options struct {
	// Ranks is the number of simulated MPI processes (default 1).
	Ranks int
	// Queue is the per-rank message discipline. The paper's optimized
	// configuration is QueuePriority; QueueFIFO reproduces the HavoqGT
	// baseline of Fig. 5/6. NOTE: the package default (zero value) is
	// QueueFIFO because that is runtime's zero value; SolveDefaults sets
	// priority.
	Queue rt.QueueKind
	// BucketDelta is the Δ for QueueBucket.
	BucketDelta uint64
	// BatchSize overrides the runtime's message batch size.
	BatchSize int
	// Partition picks the vertex partition (default block).
	Partition PartitionKind
	// DelegateThreshold marks vertices with degree >= threshold as
	// high-degree delegates whose relaxation fans out across all ranks
	// (HavoqGT vertex delegates). 0 disables.
	DelegateThreshold int
	// BSP runs the vertex-centric phases bulk-synchronously instead of
	// asynchronously (the §IV ablation).
	BSP bool
	// MST selects the sequential phase-4 algorithm of the replicated path
	// (default Kruskal — the order the fragment merge reproduces; the
	// paper used Prim). Ignored by the fragment merge, which is
	// Kruskal-equivalent by construction.
	MST MSTAlgo
	// MSTMode selects replicated-table sequential MST vs the distributed
	// fragment merge for phases 3–5 (default auto: fragment wherever
	// available). MSTFragment is incompatible with GlobalCSR and with TCP
	// sessions negotiated below wire v4.
	MSTMode MSTMode
	// Frontier selects serial vs intra-rank parallel draining of the
	// bucket queue in the vertex-centric phases (default auto: parallel
	// only when QueueBucket is active, the sharded path is in use and more
	// than one worker per rank is available). FrontierParallel requires
	// QueueBucket, is incompatible with GlobalCSR, and on BackendTCP with
	// sessions negotiated below wire v6.
	Frontier FrontierMode
	// FrontierWorkers is the per-process frontier worker budget, split
	// evenly across the ranks a process hosts (each rank gets
	// max(1, budget/hosted)). 0 means GOMAXPROCS of the hosting process.
	FrontierWorkers int
	// CollectiveChunk, when positive, splits the Global Min Dist. Edge
	// reduction into chunks of at most this many table entries — the
	// paper's §V-F memory optimization ("multiple collective operations
	// ... on smaller chunks, e.g., 500K or 1M items per chunk, at the
	// expense of runtime performance"). 0 reduces the whole table at
	// once.
	CollectiveChunk int
	// ShuffleDelivery randomizes message delivery order (robustness
	// testing); ShuffleSeed makes it reproducible.
	ShuffleDelivery bool
	ShuffleSeed     int64
	// SkipValidation skips the post-solve Steiner-tree validity check
	// (benchmarks on large graphs).
	SkipValidation bool
	// GlobalCSR selects the pre-shard, pre-slab reference path: traversals
	// scan the shared global CSR instead of rank-local shard slabs AND keep
	// all control state in one shared voronoi.State array instead of
	// per-rank StateSlabs; no shards or slabs are built. Retained as the
	// equivalence oracle for the shard/slab property tests and the
	// sharded-vs-global benchmarks; production solves leave it false.
	GlobalCSR bool
	// Backend selects where ranks run: in-process goroutines (default) or
	// external rankd worker processes over TCP. BackendTCP requires the
	// sharded path (GlobalCSR must be false).
	Backend Backend
	// ListenAddr is the coordinator's listen address for BackendTCP
	// (default 127.0.0.1:0 — an ephemeral localhost port).
	ListenAddr string
	// Workers is the rankd process count for BackendTCP (default 1; must
	// not exceed Ranks). Ranks are split into contiguous near-equal
	// ranges, one per worker.
	Workers int
	// OnListen, when set, is called with the coordinator's bound address
	// right before NewEngine blocks waiting for the workers to dial in —
	// the hook tests and in-process harnesses use to spawn workers.
	OnListen func(addr string)
	// WorkerWait bounds the BackendTCP session handshake (default 60s).
	WorkerWait time.Duration
	// MaxWireVersion caps the wire protocol version the BackendTCP
	// coordinator negotiates with its workers (0 = latest). The rollback
	// knob: pinning 1 forces the v1 frame encodings everywhere even when
	// both sides speak v2.
	MaxWireVersion uint32
	// Recover arms BackendTCP session healing: the coordinator retains the
	// handshake payload so a poisoned session (lost worker, dropped
	// connection, rank crash) is rebuilt on the next solve — workers
	// re-handshake (survivors via Rejoin, respawned replacements via a
	// fresh Hello) and the in-flight query is requeued instead of failing.
	// Off by default: the pre-v5 behavior is fail-stop.
	Recover bool
	// RejoinWait bounds how long one session heal waits for all workers to
	// re-handshake (default 30s). Only meaningful with Recover.
	RejoinWait time.Duration
	// OnWorkerLost, when set with Recover, is called on its own goroutine
	// each time the session is poisoned — the hook coordinator-driven
	// worker respawn plugs into (steinersvc's -respawn-cmd).
	OnWorkerLost func(error)
}

func (o Options) withDefaults() Options {
	if o.Ranks <= 0 {
		o.Ranks = 1
	}
	return o
}

// Default returns the paper's optimized configuration at the given rank
// count: asynchronous processing with distance-priority message queues,
// Kruskal as the replicated-path MST (the order the fragment merge
// reproduces byte-identically), and arc-balanced contiguous partitioning
// (our equivalent of HavoqGT's edge-count load balancing for scale-free
// graphs — see the DESIGN.md substitution table and
// BenchmarkAblation_Delegates).
func Default(ranks int) Options {
	return Options{
		Ranks:     ranks,
		Queue:     rt.QueuePriority,
		MST:       MSTKruskal,
		Partition: PartitionArcBlock,
	}
}
