package core

import (
	"fmt"
	"sort"
	"time"

	"dsteiner/internal/graph"
	"dsteiner/internal/mst"
	"dsteiner/internal/partition"
	rt "dsteiner/internal/runtime"
	"dsteiner/internal/voronoi"
)

// Message kinds of the Local Min Dist. Edge phase (Alg. 5): a rank that
// needs a remote endpoint's Voronoi state requests it and receives a reply.
const (
	kindReqDist uint8 = 1
	kindRepDist uint8 = 2
)

// crossEdge is the value of the E_N table: the best background-graph edge
// (U, V) bridging a cell pair, with D = d1(s,u) + d(u,v) + d1(v,t).
type crossEdge struct {
	D    graph.Dist
	U, V graph.VID
}

// pickCross is the deterministic MIN used by both the local scan and the
// global Allreduce merge: order by (D, U, V). The paper needs a
// tie-breaking scheme to guarantee a unique cross-cell edge per cell pair
// (§III Step 2, Alg. 5's second collective); a total order gives uniqueness
// in a single reduction.
func pickCross(a, b crossEdge) crossEdge {
	if b.D != a.D {
		if b.D < a.D {
			return b
		}
		return a
	}
	if b.U != a.U {
		if b.U < a.U {
			return b
		}
		return a
	}
	if b.V < a.V {
		return b
	}
	return a
}

// seedKey packs an ordered seed pair (s < t) into a map key.
func seedKey(s, t graph.VID) int64 {
	if s > t {
		s, t = t, s
	}
	return int64(s)<<32 | int64(t)
}

func unpackSeedKey(k int64) (s, t graph.VID) {
	return graph.VID(k >> 32), graph.VID(k & 0xffffffff)
}

// Solve computes a 2-approximate Steiner minimal tree of g for the given
// seed vertices. Seeds are deduplicated; all must lie in one connected
// component (guaranteed by the seed-selection strategies of
// internal/seeds), otherwise an error is returned.
func Solve(g *graph.Graph, seeds []graph.VID, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	n := g.NumVertices()
	if len(seeds) == 0 {
		return nil, fmt.Errorf("core: empty seed set")
	}
	dedup := make([]graph.VID, 0, len(seeds))
	seen := make(map[graph.VID]bool, len(seeds))
	for _, s := range seeds {
		if s < 0 || int(s) >= n {
			return nil, fmt.Errorf("core: seed %d out of range [0,%d)", s, n)
		}
		if !seen[s] {
			seen[s] = true
			dedup = append(dedup, s)
		}
	}
	sort.Slice(dedup, func(i, j int) bool { return dedup[i] < dedup[j] })
	res := &Result{Seeds: dedup}
	if len(dedup) == 1 {
		return res, nil
	}

	var part partition.Partition
	var err error
	switch opts.Partition {
	case PartitionHash:
		part, err = partition.NewHash(n, opts.Ranks)
	case PartitionArcBlock:
		part, err = partition.NewArcBlock(g, opts.Ranks)
	default:
		part, err = partition.NewBlock(n, opts.Ranks)
	}
	if err != nil {
		return nil, err
	}
	if opts.DelegateThreshold > 0 {
		part = partition.WithDelegates(part, g, opts.DelegateThreshold)
	}
	comm, err := rt.New(rt.Config{
		Ranks:           opts.Ranks,
		Queue:           opts.Queue,
		BucketDelta:     opts.BucketDelta,
		BatchSize:       opts.BatchSize,
		ShuffleDelivery: opts.ShuffleDelivery,
		ShuffleSeed:     opts.ShuffleSeed,
	}, part)
	if err != nil {
		return nil, err
	}

	st := voronoi.NewState(n)
	walked := make([]bool, n)
	localENs := make([]map[int64]crossEdge, opts.Ranks)
	var solveErr error // written by rank 0 only

	rec := &recorder{comm: comm, res: res}
	comm.Run(func(r *rt.Rank) {
		// Phase 1: Voronoi cells (Alg. 4).
		rec.phase(r, PhaseVoronoi, func() int64 {
			var ts rt.TraversalStats
			if opts.BSP {
				ts = voronoi.RunRankBSP(r, g, dedup, st)
			} else {
				ts = voronoi.RunRank(r, g, dedup, st)
			}
			return ts.Processed
		})

		// Phase 2: local min-distance cross-cell edges (Alg. 5,
		// LOCAL_MIN_DIST_EDGE_ASYNC). Remote endpoint state is fetched
		// with a request/reply visitor exchange.
		localEN := map[int64]crossEdge{}
		localENs[r.ID()] = localEN
		recordCandidate := func(u, v graph.VID, dv graph.Dist, srcV graph.VID) {
			su := st.Src[u]
			if su == graph.NilVID || srcV == graph.NilVID || su == srcV {
				return
			}
			w, ok := g.HasEdge(u, v)
			if !ok {
				return
			}
			cand := crossEdge{D: st.Dist[u] + graph.Dist(w) + dv, U: u, V: v}
			key := seedKey(su, srcV)
			if cur, ok := localEN[key]; ok {
				localEN[key] = pickCross(cur, cand)
			} else {
				localEN[key] = cand
			}
		}
		rec.phase(r, PhaseLocalMinEdge, func() int64 {
			ts := r.Traverse(&rt.Traversal{
				BSP: opts.BSP,
				Init: func(r *rt.Rank) {
					r.OwnedVertices(func(u graph.VID) {
						if st.Src[u] == graph.NilVID {
							return
						}
						adj, _ := g.Adj(u)
						for _, v := range adj {
							if u >= v {
								continue // lower endpoint initiates
							}
							if r.Owns(v) {
								recordCandidate(u, v, st.Dist[v], st.Src[v])
							} else {
								r.Send(rt.Msg{Target: v, From: u, Kind: kindReqDist})
							}
						}
					})
				},
				Visit: func(r *rt.Rank, m rt.Msg) {
					switch m.Kind {
					case kindReqDist:
						v := m.Target
						r.Send(rt.Msg{
							Target: m.From, From: v,
							Seed: st.Src[v], Dist: st.Dist[v],
							Kind: kindRepDist,
						})
					case kindRepDist:
						recordCandidate(m.Target, m.From, m.Dist, m.Seed)
					}
				},
			})
			return ts.Processed
		})

		// Phase 3: global min-distance edges —
		// MPI_Allreduce(MPI_MIN) over the per-rank E_N tables. With
		// CollectiveChunk set, the table is reduced in key-partitioned
		// chunks, trading collective-buffer memory for extra rounds
		// (the paper's §V-F mitigation for the |S|=10K blowup).
		var merged map[int64]crossEdge
		rec.phase(r, PhaseGlobalMinEdge, func() int64 {
			if opts.CollectiveChunk <= 0 {
				merged = rt.ReduceMap(r, localEN, pickCross)
				if r.ID() == 0 {
					res.CollectiveChunks = 1
				}
				return 0
			}
			maxSize := r.AllreduceMaxInt64(int64(len(localEN)))
			numChunks := int((maxSize + int64(opts.CollectiveChunk) - 1) / int64(opts.CollectiveChunk))
			if numChunks < 1 {
				numChunks = 1
			}
			merged = make(map[int64]crossEdge, len(localEN))
			for c := 0; c < numChunks; c++ {
				sub := map[int64]crossEdge{}
				for k, v := range localEN {
					if int(uint64(k)%uint64(numChunks)) == c {
						sub[k] = v
					}
				}
				for k, v := range rt.ReduceMap(r, sub, pickCross) {
					merged[k] = v
				}
			}
			if r.ID() == 0 {
				res.CollectiveChunks = numChunks
			}
			return 0
		})

		// Phase 4: sequential MST of the replicated distance graph G'₁
		// (Alg. 3 line 17). Every rank computes it locally — G'₁ is
		// small, so replication avoids remote copies, as in the paper.
		seedIdx := make(map[graph.VID]int32, len(dedup))
		for i, s := range dedup {
			seedIdx[s] = int32(i)
		}
		var mstPairs map[int64]bool
		rec.phase(r, PhaseMST, func() int64 {
			keys := make([]int64, 0, len(merged))
			for k := range merged {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			wedges := make([]mst.WEdge, len(keys))
			for i, k := range keys {
				s, t := unpackSeedKey(k)
				wedges[i] = mst.WEdge{U: seedIdx[s], V: seedIdx[t], W: merged[k].D}
			}
			var forest mst.Result
			switch opts.MST {
			case MSTKruskal:
				forest = mst.Kruskal(len(dedup), wedges)
			case MSTBoruvka:
				var rounds int
				forest, rounds = mst.Boruvka(len(dedup), wedges)
				if r.ID() == 0 {
					res.MSTRounds = rounds
				}
			default:
				forest = mst.Prim(len(dedup), wedges)
			}
			if r.ID() == 0 {
				res.DistGraphEdges = len(wedges)
			}
			if len(forest.Edges) < len(dedup)-1 {
				if r.ID() == 0 {
					solveErr = fmt.Errorf("core: seeds span %d connected components; Steiner tree requires one",
						len(dedup)-len(forest.Edges))
				}
				mstPairs = nil
				return 0
			}
			mstPairs = make(map[int64]bool, len(forest.Edges))
			for _, e := range forest.Edges {
				mstPairs[seedKey(dedup[e.U], dedup[e.V])] = true
			}
			return 0
		})
		if mstPairs == nil {
			return // disconnected seeds: all ranks bail out identically
		}

		// Phase 5: global edge pruning (Alg. 5, EDGE_PRUNING_COLL) —
		// cross-cell edges whose cell pair is not an MST edge are
		// dropped. The total order in pickCross already guarantees a
		// unique survivor per pair, so no second collective is needed.
		pruned := map[int64]crossEdge{}
		rec.phase(r, PhasePruning, func() int64 {
			for k, ce := range merged {
				if mstPairs[k] {
					pruned[k] = ce
				}
			}
			return 0
		})

		// Phase 6: Steiner tree edges (Alg. 6) — walk predecessor
		// chains from surviving cross-cell endpoints to cell seeds.
		var localTree []graph.Edge
		rec.phase(r, PhaseTreeEdge, func() int64 {
			ts := r.Traverse(&rt.Traversal{
				BSP: opts.BSP,
				Init: func(r *rt.Rank) {
					for _, ce := range pruned {
						if !r.Owns(ce.U) {
							continue // u's home partition records the edge
						}
						w, _ := g.HasEdge(ce.U, ce.V)
						localTree = append(localTree, graph.Edge{U: ce.U, V: ce.V, W: w}.Canon())
						r.Send(rt.Msg{Target: ce.U})
						r.Send(rt.Msg{Target: ce.V})
					}
				},
				Visit: func(r *rt.Rank, m rt.Msg) {
					vj := m.Target
					if walked[vj] {
						return
					}
					walked[vj] = true
					if vj == st.Src[vj] {
						return
					}
					p := st.Pred[vj]
					w, _ := g.HasEdge(p, vj)
					localTree = append(localTree, graph.Edge{U: p, V: vj, W: w}.Canon())
					r.Send(rt.Msg{Target: p})
				},
			})
			return ts.Processed
		})

		// Gather the final tree on every rank; rank 0 publishes it.
		tree := rt.AllGather(r, localTree)
		if r.ID() == 0 {
			sorted := append([]graph.Edge(nil), tree...)
			sort.Slice(sorted, func(i, j int) bool {
				if sorted[i].U != sorted[j].U {
					return sorted[i].U < sorted[j].U
				}
				return sorted[i].V < sorted[j].V
			})
			res.Tree = sorted
			res.TotalDistance = graph.TotalWeight(sorted)
		}
	})
	if solveErr != nil {
		return nil, solveErr
	}

	res.SteinerVertices = countSteinerVertices(res.Tree, dedup)
	res.Memory = memoryStats(g, st, localENs, res, opts)
	if !opts.SkipValidation {
		if err := graph.ValidateSteinerTree(g, dedup, res.Tree); err != nil {
			return nil, fmt.Errorf("core: internal error, invalid output: %w", err)
		}
	}
	return res, nil
}

// countSteinerVertices counts tree vertices that are not seeds.
func countSteinerVertices(tree []graph.Edge, seeds []graph.VID) int {
	isSeed := make(map[graph.VID]bool, len(seeds))
	for _, s := range seeds {
		isSeed[s] = true
	}
	verts := map[graph.VID]bool{}
	for _, e := range tree {
		verts[e.U] = true
		verts[e.V] = true
	}
	count := 0
	for v := range verts {
		if !isSeed[v] {
			count++
		}
	}
	return count
}

// memoryStats models the Fig. 8 accounting: measured sizes for the graph,
// Voronoi state and edge tables, plus a buffer-residency model
// (P outgoing buffers per rank at the configured batch size).
func memoryStats(g *graph.Graph, st *voronoi.State, localENs []map[int64]crossEdge, res *Result, opts Options) MemoryStats {
	const crossEntryBytes = 8 + 16 + 8 // key + crossEdge + map overhead approx
	const msgBytes = 24
	var tableBytes int64
	for _, m := range localENs {
		tableBytes += int64(len(m)) * crossEntryBytes
	}
	tableBytes += int64(res.DistGraphEdges) * crossEntryBytes // merged copy
	batch := opts.BatchSize
	if batch <= 0 {
		batch = 64
	}
	return MemoryStats{
		GraphBytes:     g.MemoryBytes(),
		StateBytes:     st.MemoryBytes(),
		EdgeTableBytes: tableBytes,
		DistGraphBytes: int64(res.DistGraphEdges) * 20 * int64(opts.Ranks),
		BufferBytes:    int64(opts.Ranks) * int64(opts.Ranks) * int64(batch) * msgBytes,
	}
}

// recorder tracks per-phase wall time and message deltas. Rank 0 writes the
// shared Result between barriers.
type recorder struct {
	comm *rt.Comm
	res  *Result

	t0 time.Time
	s0 rt.Stats
}

// phase runs fn on every rank between barriers and records its duration,
// message counts and max-per-rank work (fn's return value, reduced MAX).
func (rec *recorder) phase(r *rt.Rank, name string, fn func() int64) {
	r.Barrier()
	if r.ID() == 0 {
		rec.t0 = time.Now()
		rec.s0 = rec.comm.Stats()
	}
	r.Barrier()
	work := fn()
	r.Barrier()
	maxWork := r.AllreduceMaxInt64(work)
	if r.ID() == 0 {
		s1 := rec.comm.Stats()
		rec.res.Phases = append(rec.res.Phases, PhaseStat{
			Name:        name,
			Seconds:     time.Since(rec.t0).Seconds(),
			Sent:        s1.Sent - rec.s0.Sent,
			Processed:   s1.Processed - rec.s0.Processed,
			MaxRankWork: maxWork,
		})
	}
}
