package core

import (
	"context"
	"runtime/pprof"
	"sort"
	"strconv"
	"time"

	"dsteiner/internal/graph"
	rt "dsteiner/internal/runtime"
)

// Message kinds of the Local Min Dist. Edge phase (Alg. 5): a rank that
// needs a remote endpoint's Voronoi state requests it and receives a reply.
const (
	kindReqDist uint8 = 1
	kindRepDist uint8 = 2
)

// crossEdge is the value of the E_N table: the best background-graph edge
// (U, V) bridging a cell pair, with D = d1(s,u) + d(u,v) + d1(v,t).
type crossEdge struct {
	D    graph.Dist
	U, V graph.VID
}

// pickCross is the deterministic MIN used by both the local scan and the
// global Allreduce merge: order by (D, U, V). The paper needs a
// tie-breaking scheme to guarantee a unique cross-cell edge per cell pair
// (§III Step 2, Alg. 5's second collective); a total order gives uniqueness
// in a single reduction.
func pickCross(a, b crossEdge) crossEdge {
	if b.D != a.D {
		if b.D < a.D {
			return b
		}
		return a
	}
	if b.U != a.U {
		if b.U < a.U {
			return b
		}
		return a
	}
	if b.V < a.V {
		return b
	}
	return a
}

// seedKey packs an ordered seed pair (s < t) into a map key.
func seedKey(s, t graph.VID) int64 {
	if s > t {
		s, t = t, s
	}
	return int64(s)<<32 | int64(t)
}

func unpackSeedKey(k int64) (s, t graph.VID) {
	return graph.VID(k >> 32), graph.VID(k & 0xffffffff)
}

// Solve computes a 2-approximate Steiner minimal tree of g for the given
// seed vertices. Duplicate seeds are rejected with ErrDuplicateSeed; all
// seeds must lie in one connected component (guaranteed by the
// seed-selection strategies of internal/seeds), otherwise an error is
// returned.
//
// Solve is the one-shot convenience form: it builds a throwaway Engine,
// paying the O(|V|) session setup every call. Interactive workloads that
// issue many queries against one resident graph should hold an Engine (or
// internal/steinersvc's engine pool) instead.
func Solve(g *graph.Graph, seeds []graph.VID, opts Options) (*Result, error) {
	// Validate seeds and take the trivial single-seed exit before paying
	// the engine's O(|V|) session setup.
	dedup, err := canonSeedSet(g.NumVertices(), seeds, make(map[graph.VID]bool, len(seeds)))
	if err != nil {
		return nil, err
	}
	if len(dedup) == 1 {
		return &Result{Seeds: dedup}, nil
	}
	e, err := NewEngine(g, opts)
	if err != nil {
		return nil, err
	}
	defer e.Close()
	return e.Solve(dedup)
}

// SolveQuery is the one-shot form of Engine.SolveSpec: it answers one
// tree, forest or prize QuerySpec on a throwaway Engine.
func SolveQuery(g *graph.Graph, spec QuerySpec, opts Options) (*Result, error) {
	e, err := NewEngine(g, opts)
	if err != nil {
		return nil, err
	}
	defer e.Close()
	return e.SolveSpec(spec)
}

// countSteinerVertices counts tree vertices that are not seeds. seeds must
// be sorted (Solve's dedup guarantees it). Sorted-slice dedup plus a merge
// against the seed list keeps this map-free — on large trees the map
// version's overflow buckets dominated a warm Engine solve's allocations.
func countSteinerVertices(tree []graph.Edge, seeds []graph.VID) int {
	verts := make([]graph.VID, 0, 2*len(tree))
	for _, e := range tree {
		verts = append(verts, e.U, e.V)
	}
	sort.Slice(verts, func(i, j int) bool { return verts[i] < verts[j] })
	count := 0
	si := 0
	for i, v := range verts {
		if i > 0 && verts[i-1] == v {
			continue
		}
		for si < len(seeds) && seeds[si] < v {
			si++
		}
		if si < len(seeds) && seeds[si] == v {
			continue
		}
		count++
	}
	return count
}

// memoryStats models the Fig. 8 accounting: measured sizes for the graph,
// per-rank shards, control state (rank-local slabs, or the shared arrays in
// GlobalCSR mode) and edge tables, plus a buffer-residency model (P
// outgoing buffers per rank at the configured batch size).
func memoryStats(g *graph.Graph, shardBytes, stateBytes int64, localENs []map[int64]crossEdge, res *Result, opts Options) MemoryStats {
	lens := make([]int64, len(localENs))
	for i, m := range localENs {
		lens[i] = int64(len(m))
	}
	return memoryStatsFromLens(g, shardBytes, stateBytes, lens, res, opts)
}

// memoryStatsFromLens is memoryStats over per-rank E_N table sizes — the
// form the TCP backend reports them in (the tables live in the workers,
// only their sizes travel back in the per-query WorkerDone frames).
func memoryStatsFromLens(g *graph.Graph, shardBytes, stateBytes int64, tableLens []int64, res *Result, opts Options) MemoryStats {
	const crossEntryBytes = 8 + 16 + 8 // key + crossEdge + map overhead approx
	const msgBytes = 24
	var tableBytes int64
	for _, n := range tableLens {
		tableBytes += n * crossEntryBytes
	}
	tableBytes += int64(res.DistGraphEdges) * crossEntryBytes // merged copy
	batch := opts.BatchSize
	if batch <= 0 {
		batch = 64
	}
	return MemoryStats{
		GraphBytes:     g.MemoryBytes(),
		ShardBytes:     shardBytes,
		StateBytes:     stateBytes,
		EdgeTableBytes: tableBytes,
		DistGraphBytes: int64(res.DistGraphEdges) * 20 * int64(opts.Ranks),
		BufferBytes:    int64(opts.Ranks) * int64(opts.Ranks) * int64(batch) * msgBytes,
	}
}

// recorder tracks per-phase wall time and message deltas. Rank 0 writes the
// shared Result between barriers. In a distributed session the message
// counters live per process, so each process leader (its lowest hosted
// rank, rec.lo) snapshots local deltas and the totals are summed with an
// allreduce; loopback keeps the original rank-0-only snapshot with no
// extra collectives on the hot path.
type recorder struct {
	comm *rt.Comm
	res  *Result
	dist bool
	lo   int

	t0 time.Time
	s0 rt.Stats
}

// phase runs fn on every rank between barriers and records its duration,
// message counts and max-per-rank work (fn's return value, reduced MAX).
func (rec *recorder) phase(r *rt.Rank, name string, fn func() int64) {
	r.Barrier()
	if r.ID() == rec.lo {
		rec.t0 = time.Now()
		rec.s0 = rec.comm.Stats()
	}
	r.Barrier()
	// Tag the phase body with pprof labels so CPU profiles split by solver
	// phase and rank (frontier pool goroutines add their own worker label).
	var work int64
	pprof.Do(context.Background(),
		pprof.Labels("dsteiner_phase", name, "dsteiner_rank", strconv.Itoa(r.ID())),
		func(context.Context) { work = fn() })
	r.Barrier()
	maxWork := r.AllreduceMaxInt64(work)
	if !rec.dist {
		if r.ID() == 0 {
			s1 := rec.comm.Stats()
			rec.res.Phases = append(rec.res.Phases, PhaseStat{
				Name:        name,
				Seconds:     time.Since(rec.t0).Seconds(),
				Sent:        s1.Sent - rec.s0.Sent,
				Processed:   s1.Processed - rec.s0.Processed,
				MaxRankWork: maxWork,
			})
		}
		return
	}
	var dSent, dProcessed int64
	if r.ID() == rec.lo {
		s1 := rec.comm.Stats()
		dSent, dProcessed = s1.Sent-rec.s0.Sent, s1.Processed-rec.s0.Processed
	}
	sent := r.AllreduceSumInt64(dSent)
	processed := r.AllreduceSumInt64(dProcessed)
	if r.ID() == 0 {
		rec.res.Phases = append(rec.res.Phases, PhaseStat{
			Name:        name,
			Seconds:     time.Since(rec.t0).Seconds(),
			Sent:        sent,
			Processed:   processed,
			MaxRankWork: maxWork,
		})
	}
}
