package core

import (
	"math/rand"
	"testing"

	"dsteiner/internal/graph"
)

// TestChangedSinceFilterSuppresses pins the delegate changed-since filter:
// on a hub-heavy graph with delegates enabled it must actually drop
// offers (the counter is live, not dead code), while a delegate-free
// solve reports zero. Correctness of the filter — byte-identical results
// against the unfiltered GlobalCSR oracle — is covered by the
// shard/slab equivalence suites, which run with delegates on.
func TestChangedSinceFilterSuppresses(t *testing.T) {
	g := engineTestGraph(7, 400)
	rng := rand.New(rand.NewSource(9))
	seedSets := make([][]graph.VID, 8)
	for i := range seedSets {
		seedSets[i] = pickEngineSeeds(rng, g.NumVertices(), 8)
	}

	withDelegates := Default(4)
	withDelegates.DelegateThreshold = 6
	e, err := NewEngine(g, withDelegates)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var suppressed, batched int64
	for _, seeds := range seedSets {
		res, err := e.Solve(seeds)
		if err != nil {
			t.Fatal(err)
		}
		suppressed += res.SuppressedBroadcasts
		batched += res.BatchedBroadcasts
		if res.CoalescedBroadcasts < 0 {
			t.Fatalf("negative coalesced count %d", res.CoalescedBroadcasts)
		}
		if res.Net.FramesOut != 0 {
			t.Fatalf("loopback solve reports transport traffic: %+v", res.Net)
		}
	}
	if suppressed == 0 {
		t.Fatal("delegate solves suppressed nothing — the changed-since filter is dead")
	}
	if batched == 0 {
		t.Fatal("delegate solves batched nothing — the superstep outbox is dead")
	}

	plain, err := NewEngine(g, Default(4))
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	res, err := plain.Solve(seedSets[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.SuppressedBroadcasts != 0 {
		t.Fatalf("delegate-free solve suppressed %d offers", res.SuppressedBroadcasts)
	}
	if res.BatchedBroadcasts != 0 || res.CoalescedBroadcasts != 0 {
		t.Fatalf("delegate-free solve reports outbox traffic: batched=%d coalesced=%d",
			res.BatchedBroadcasts, res.CoalescedBroadcasts)
	}
}
