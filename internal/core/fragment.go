package core

import (
	"fmt"
	"sort"

	"dsteiner/internal/graph"
	"dsteiner/internal/mst"
	rt "dsteiner/internal/runtime"
	"dsteiner/internal/wire"
)

// This file is the rank-parallel fragment-merge MST: phases 3–5 without the
// replicated cross table. Phase 3 routes every E_N record to the rank that
// owns the pair's lower seed vertex, so the distance graph lives sharded —
// no rank ever holds the O(k²) table. Phase 4 runs distributed Borůvka/GHS
// rounds: each rank proposes the minimum outgoing edge of every fragment it
// can see in its shard, the proposals are broadcast, and every rank replays
// the identical winner sequence against its fragment-label array. Winners
// double as phase-5 pruned entries, so phase 5 needs no extra collective.
//
// The replicated path (mergeCrossTables + sequential mst.Kruskal) is kept
// behind Options.MSTMode == MSTReplicated as the equivalence oracle.

// fragStats accumulates one rank's fragment-merge traffic for the query's
// CrossTableBytes / FragmentMsgs counters (and the coordinator-bound
// FragmentRoundSummary). Bytes stay zero on loopback, where routed records
// travel as in-memory values instead of encoded blobs. The replicated path
// reuses the bytes field for its gathered-table payload so the two modes
// report comparable CrossTableBytes.
type fragStats struct {
	bytes int64
	msgs  int64
}

// routedEntry is a cross-table record in flight to its owner rank on the
// loopback path (the wire path encodes the same record with
// appendCrossEntry).
type routedEntry struct {
	dest int
	key  int64
	ce   crossEdge
}

// fragProposal is one fragment's candidate minimum outgoing edge for a
// Borůvka round: the proposing fragment label plus the full cross edge, so
// winners can be kept as pruned entries without re-fetching them from the
// owning rank.
type fragProposal struct {
	frag int32
	key  int64
	d    graph.Dist
	u, v graph.VID
}

// lessProposal orders proposals by (D, key) — the same total order as
// pickCross and mst.Kruskal's (W, U, V) sort: dense seed indices are
// monotone in seed VID (dedup is sorted), so key order equals (U, V) order.
// Under a strict total order the minimum spanning forest is unique, which
// is what makes the fragment merge's chosen edge set byte-identical to the
// replicated Kruskal's.
func lessProposal(a, b fragProposal) bool {
	if a.d != b.d {
		return a.d < b.d
	}
	return a.key < b.key
}

// fragmentRoute is the fragment merge's phase 3: every cross-cell record is
// routed to the rank owning the pair's lower seed vertex, leaving each rank
// with a disjoint shard of the global E_N table (same pickCross survivor
// per pair as the replicated merge — the fold is order-insensitive).
// Returns ok=false after recording env.err on rank 0 when a routed blob
// fails to decode; received blobs are personalized, so the failure is
// agreed with an allreduce and all ranks bail uniformly.
func (env *solveEnv) fragmentRoute(r *rt.Rank, localEN map[int64]crossEdge, fs *fragStats) (map[int64]crossEdge, bool) {
	owned := env.owneds[r.ID()]
	fold := func(k int64, ce crossEdge) {
		if cur, ok := owned[k]; ok {
			owned[k] = pickCross(cur, ce)
		} else {
			owned[k] = ce
		}
	}
	if r.ID() == 0 {
		env.res.CollectiveChunks = 1 // the fragment merge never chunks
	}
	if !r.Distributed() {
		var out []routedEntry
		for k, ce := range localEN {
			s, _ := unpackSeedKey(k)
			if d := r.Owner(s); d != r.ID() {
				fs.msgs++
				out = append(out, routedEntry{dest: d, key: k, ce: ce})
			} else {
				fold(k, ce)
			}
		}
		for _, e := range rt.AllGather(r, out) {
			if e.dest == r.ID() {
				fold(e.key, e.ce)
			}
		}
		return owned, true
	}
	blobs := map[int][]byte{}
	for k, ce := range localEN {
		s, _ := unpackSeedKey(k)
		if d := r.Owner(s); d != r.ID() {
			fs.msgs++
			blobs[d] = appendCrossEntry(blobs[d], k, ce)
		} else {
			fold(k, ce)
		}
	}
	out := make([]rt.FragBlob, 0, len(blobs))
	for d, b := range blobs {
		fs.bytes += int64(len(b))
		out = append(out, rt.FragBlob{Src: r.ID(), Dest: d, Blob: b})
	}
	var failed int64
	for _, fb := range rt.FragmentExchange(r, out) {
		fs.bytes += int64(len(fb.Blob))
		if err := decodeCrossEntries(fb.Blob, fold); err != nil && failed == 0 {
			failed = int64(r.ID()) + 1
		}
	}
	if bad := r.AllreduceMaxInt64(failed); bad > 0 {
		if r.ID() == 0 {
			env.err = fmt.Errorf("core: fragment cross-table exchange: corrupt blob at rank %d", bad-1)
		}
		return nil, false
	}
	return owned, true
}

// fragmentMST is the fragment merge's phase 4: Borůvka/GHS rounds over the
// rank-sharded table. Each round every rank scans its owned entries for the
// best outgoing edge per fragment under the (D, key) total order, the
// proposals are broadcast, and all ranks apply the per-fragment winners in
// the same sorted order against identical union-find state — so the label
// array never needs to travel. Intra-fragment entries are deleted as they
// are discovered, shrinking later scans. Accepted winners accumulate into
// pruned (the pooled phase-5 map, identical on every rank).
func (env *solveEnv) fragmentMST(r *rt.Rank, owned, pruned map[int64]crossEdge, fs *fragStats) bool {
	res, dedup, seedIdx := env.res, env.dedup, env.seedIdx
	k := len(dedup)
	if total := r.AllreduceSumInt64(int64(len(owned))); r.ID() == 0 {
		res.DistGraphEdges = int(total)
	}

	frag := env.frags[r.ID()]
	if cap(frag) < k {
		frag = make([]int32, k)
	}
	frag = frag[:k]
	env.frags[r.ID()] = frag
	for i := range frag {
		frag[i] = int32(i)
	}
	find := func(x int32) int32 {
		for frag[x] != x {
			frag[x] = frag[frag[x]]
			x = frag[x]
		}
		return x
	}

	best := make(map[int32]fragProposal, 16)
	rounds, chosen := 0, 0
	for {
		clear(best)
		for key, ce := range owned {
			s, t := unpackSeedKey(key)
			fu, fv := frag[seedIdx[s]], frag[seedIdx[t]]
			if fu == fv {
				delete(owned, key) // intra-fragment: dead for all later rounds
				continue
			}
			p := fragProposal{key: key, d: ce.D, u: ce.U, v: ce.V}
			for _, f := range [2]int32{fu, fv} {
				p.frag = f
				if cur, ok := best[f]; !ok || lessProposal(p, cur) {
					best[f] = p
				}
			}
		}
		props := make([]fragProposal, 0, len(best))
		for _, p := range best {
			props = append(props, p)
		}
		fs.msgs += int64(len(props))
		all, err := exchangeProposals(r, props, fs)
		if err != nil {
			// Proposal blobs are broadcast, so every rank sees the same
			// corrupt payload and fails here together.
			if r.ID() == 0 {
				env.err = fmt.Errorf("core: fragment merge round %d: %w", rounds+1, err)
			}
			return false
		}
		if len(all) == 0 {
			break
		}
		rounds++
		// Global minimum per fragment, then a deterministic application
		// order: every rank replays the identical union sequence.
		winner := map[int32]fragProposal{}
		for _, p := range all {
			if cur, ok := winner[p.frag]; !ok || lessProposal(p, cur) {
				winner[p.frag] = p
			}
		}
		ws := make([]fragProposal, 0, len(winner))
		for _, p := range winner {
			ws = append(ws, p)
		}
		sort.Slice(ws, func(i, j int) bool { return lessProposal(ws[i], ws[j]) })
		for _, p := range ws {
			s, t := unpackSeedKey(p.key)
			ru, rv := find(seedIdx[s]), find(seedIdx[t])
			if ru == rv {
				continue // both endpoint fragments picked this same edge
			}
			if rv < ru {
				ru, rv = rv, ru
			}
			frag[rv] = ru // min-root representative keeps labels canonical
			pruned[p.key] = crossEdge{D: p.d, U: p.u, V: p.v}
			chosen++
		}
		for i := range frag {
			frag[i] = find(int32(i)) // pointer-jump full relabel
		}
	}

	if r.Distributed() {
		bytes := r.AllreduceSumInt64(fs.bytes)
		msgs := r.AllreduceSumInt64(fs.msgs)
		if r.ID() == 0 {
			res.CrossTableBytes = bytes
			res.FragmentMsgs = msgs
		}
		rt.FragmentSummary(r, rt.FragSummary{Rounds: int64(rounds), Msgs: fs.msgs, Bytes: fs.bytes})
	} else if msgs := r.AllreduceSumInt64(fs.msgs); r.ID() == 0 {
		res.FragmentMsgs = msgs
	}
	if r.ID() == 0 {
		res.MSTFragment = true
		res.MSTRounds = rounds
	}

	want := k - 1
	if env.mode == ModeForest {
		want = k - env.numGroups
	}
	if chosen < want {
		if r.ID() == 0 {
			env.err = fragmentDisconnectedErr(env, k, chosen, pruned)
		}
		return false
	}
	return true
}

// fragmentDisconnectedErr reproduces the replicated path's mode-specific
// disconnection errors from the fragment merge's chosen edge set (the
// unique MSF, so the component counts match the sequential solver's
// exactly).
func fragmentDisconnectedErr(env *solveEnv, nT, chosen int, pruned map[int64]crossEdge) error {
	switch env.mode {
	case ModeForest:
		edges := make([]mst.WEdge, 0, len(pruned))
		for key := range pruned {
			s, t := unpackSeedKey(key)
			edges = append(edges, mst.WEdge{U: env.seedIdx[s], V: env.seedIdx[t]})
		}
		return forestDisconnectedErr(env.groupOf, env.numGroups, nT, edges)
	case ModePrize:
		return fmt.Errorf("core: internal error: prize kept set spans %d connected components", nT-chosen)
	default:
		return fmt.Errorf("core: seeds span %d connected components; Steiner tree requires one", nT-chosen)
	}
}

// exchangeProposals broadcasts every rank's round proposals to all ranks:
// typed values through the generic allgather on loopback, one encoded blob
// per rank (Dest -1) across a transport.
func exchangeProposals(r *rt.Rank, props []fragProposal, fs *fragStats) ([]fragProposal, error) {
	if !r.Distributed() {
		return rt.AllGather(r, props), nil
	}
	var blob []byte
	for _, p := range props {
		blob = appendProposal(blob, p)
	}
	var out []rt.FragBlob
	if len(blob) > 0 {
		fs.bytes += int64(len(blob))
		out = append(out, rt.FragBlob{Src: r.ID(), Dest: -1, Blob: blob})
	}
	var all []fragProposal
	for _, fb := range rt.FragmentExchange(r, out) {
		fs.bytes += int64(len(fb.Blob))
		var err error
		if all, err = decodeProposals(fb.Blob, all); err != nil {
			return nil, err
		}
	}
	return all, nil
}

// appendCrossEntry appends one routed cross-table record. Records carry no
// count prefix — the router appends per-destination incrementally and the
// enclosing blob delimits them.
func appendCrossEntry(dst []byte, k int64, ce crossEdge) []byte {
	dst = wire.AppendVarint(dst, k)
	dst = wire.AppendUvarint(dst, uint64(ce.D))
	dst = wire.AppendUvarint(dst, uint64(uint32(ce.U)))
	dst = wire.AppendUvarint(dst, uint64(uint32(ce.V)))
	return dst
}

// decodeCrossEntries folds every record of a routed blob through fold.
func decodeCrossEntries(blob []byte, fold func(k int64, ce crossEdge)) error {
	d := wire.NewDec(blob)
	for d.Len() > 0 {
		k := d.Varint()
		ce := crossEdge{
			D: graph.Dist(d.Uvarint()),
			U: graph.VID(int32(d.Uvarint())),
			V: graph.VID(int32(d.Uvarint())),
		}
		if err := d.Err(); err != nil {
			return err
		}
		fold(k, ce)
	}
	return d.Err()
}

func appendProposal(dst []byte, p fragProposal) []byte {
	dst = wire.AppendUvarint(dst, uint64(uint32(p.frag)))
	dst = wire.AppendVarint(dst, p.key)
	dst = wire.AppendUvarint(dst, uint64(p.d))
	dst = wire.AppendUvarint(dst, uint64(uint32(p.u)))
	dst = wire.AppendUvarint(dst, uint64(uint32(p.v)))
	return dst
}

func decodeProposals(blob []byte, into []fragProposal) ([]fragProposal, error) {
	d := wire.NewDec(blob)
	for d.Len() > 0 {
		p := fragProposal{
			frag: int32(d.Uvarint()),
			key:  d.Varint(),
			d:    graph.Dist(d.Uvarint()),
			u:    graph.VID(int32(d.Uvarint())),
			v:    graph.VID(int32(d.Uvarint())),
		}
		if err := d.Err(); err != nil {
			return into, err
		}
		into = append(into, p)
	}
	return into, d.Err()
}
