package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"dsteiner/internal/graph"
	rt "dsteiner/internal/runtime"
)

// assertResultsEquivalent compares the solver-output parts of two Results
// byte for byte: tree, total distance, canonical seeds, Steiner vertex
// count and distance-graph size. Phase timings and memory accounting are
// measurement, not output, and legitimately differ between the sharded and
// global-CSR substrates.
func assertResultsEquivalent(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Tree, want.Tree) {
		t.Fatalf("%s: trees differ\nsharded %v\nglobal  %v", label, got.Tree, want.Tree)
	}
	if got.TotalDistance != want.TotalDistance {
		t.Fatalf("%s: total %d != %d", label, got.TotalDistance, want.TotalDistance)
	}
	if !reflect.DeepEqual(got.Seeds, want.Seeds) {
		t.Fatalf("%s: seeds %v != %v", label, got.Seeds, want.Seeds)
	}
	if got.SteinerVertices != want.SteinerVertices {
		t.Fatalf("%s: steiner vertices %d != %d", label, got.SteinerVertices, want.SteinerVertices)
	}
	if got.DistGraphEdges != want.DistGraphEdges {
		t.Fatalf("%s: |E'1| %d != %d", label, got.DistGraphEdges, want.DistGraphEdges)
	}
}

// TestShardedEngineMatchesGlobalCSR is the shard-equivalence acceptance
// test: for every partition kind × delegate threshold × {async, BSP}, the
// sharded engine (rank-local CSR slabs + materialized delegate stripes)
// returns results byte-identical to the retained pre-refactor global-CSR
// reference path.
func TestShardedEngineMatchesGlobalCSR(t *testing.T) {
	g := engineTestGraph(91, 350)
	rng := rand.New(rand.NewSource(92))
	seedSets := [][]graph.VID{
		pickEngineSeeds(rng, g.NumVertices(), 3),
		pickEngineSeeds(rng, g.NumVertices(), 8),
		pickEngineSeeds(rng, g.NumVertices(), 16),
	}
	for _, kind := range []PartitionKind{PartitionBlock, PartitionHash, PartitionArcBlock} {
		for _, threshold := range []int{0, 6} {
			for _, bsp := range []bool{false, true} {
				opts := Options{
					Ranks:             4,
					Queue:             rt.QueuePriority,
					Partition:         kind,
					DelegateThreshold: threshold,
					BSP:               bsp,
				}
				sharded, err := NewEngine(g, opts)
				if err != nil {
					t.Fatal(err)
				}
				globalOpts := opts
				globalOpts.GlobalCSR = true
				global, err := NewEngine(g, globalOpts)
				if err != nil {
					sharded.Close()
					t.Fatal(err)
				}
				for _, seeds := range seedSets {
					got, err := sharded.Solve(seeds)
					if err != nil {
						t.Fatalf("%v thr=%d bsp=%v: sharded: %v", kind, threshold, bsp, err)
					}
					want, err := global.Solve(seeds)
					if err != nil {
						t.Fatalf("%v thr=%d bsp=%v: global: %v", kind, threshold, bsp, err)
					}
					label := kind.String()
					if bsp {
						label += "+bsp"
					}
					assertResultsEquivalent(t, label, got, want)
					// The global reference holds no shards; the sharded
					// engine must account them.
					if want.Memory.ShardBytes != 0 {
						t.Fatalf("%s: global path reports %d shard bytes", label, want.Memory.ShardBytes)
					}
					if got.Memory.ShardBytes <= 0 {
						t.Fatalf("%s: sharded path reports no shard memory", label)
					}
				}
				sharded.Close()
				global.Close()
			}
		}
	}
}

// TestPropertyShardedEquivalence fuzzes the same equivalence across random
// graphs, rank counts and queue disciplines.
func TestPropertyShardedEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := engineTestGraph(seed, 60+rng.Intn(200))
		seeds := pickEngineSeeds(rng, g.NumVertices(), 2+rng.Intn(6))
		opts := Options{
			Ranks:             1 + rng.Intn(6),
			Queue:             []rt.QueueKind{rt.QueueFIFO, rt.QueuePriority, rt.QueueBucket}[rng.Intn(3)],
			Partition:         []PartitionKind{PartitionBlock, PartitionHash, PartitionArcBlock}[rng.Intn(3)],
			DelegateThreshold: []int{0, 4, 12}[rng.Intn(3)],
			BSP:               rng.Intn(2) == 0,
		}
		got, err := Solve(g, seeds, opts)
		if err != nil {
			t.Logf("seed %d: sharded: %v", seed, err)
			return false
		}
		globalOpts := opts
		globalOpts.GlobalCSR = true
		want, err := Solve(g, seeds, globalOpts)
		if err != nil {
			t.Logf("seed %d: global: %v", seed, err)
			return false
		}
		return reflect.DeepEqual(got.Tree, want.Tree) &&
			got.TotalDistance == want.TotalDistance &&
			reflect.DeepEqual(got.Seeds, want.Seeds)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestNewSiblingSharesShards checks that sibling engines share one
// immutable shard set (the engine-pool memory property) while solving
// independently and identically.
func TestNewSiblingSharesShards(t *testing.T) {
	g := engineTestGraph(113, 250)
	opts := Default(3)
	opts.DelegateThreshold = 6
	first, err := NewEngine(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	sib, err := first.NewSibling()
	if err != nil {
		t.Fatal(err)
	}
	if len(sib.shards) != len(first.shards) {
		t.Fatalf("sibling has %d shards, first %d", len(sib.shards), len(first.shards))
	}
	for i := range sib.shards {
		if sib.shards[i] != first.shards[i] {
			t.Fatalf("sibling rebuilt shard %d instead of sharing it", i)
		}
	}
	if sib.plan != first.plan {
		t.Fatal("sibling rebuilt the shard plan")
	}
	seeds := []graph.VID{4, 90, 180, 240}
	a, err := first.Solve(seeds)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sib.Solve(seeds)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEquivalent(t, "sibling", b, a)
	// Closing the sibling must not disturb the first engine (shards are
	// shared but communicators are independent).
	sib.Close()
	if _, err := first.Solve(seeds); err != nil {
		t.Fatalf("first engine broken after sibling close: %v", err)
	}
}

// TestEngineShardStats checks the substrate report serving layers surface.
func TestEngineShardStats(t *testing.T) {
	g := engineTestGraph(101, 200)
	opts := Default(4)
	opts.DelegateThreshold = 5
	e, err := NewEngine(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	s := e.ShardStats()
	if s.Partition != "arcblock" || s.Ranks != 4 || s.DelegateThreshold != 5 {
		t.Fatalf("metadata wrong: %+v", s)
	}
	if s.Delegates == 0 {
		t.Fatalf("threshold 5 on a random graph marked no delegates: %+v", s)
	}
	if s.ShardBytes <= 0 || s.MaxShardBytes <= 0 || s.MaxShardBytes > s.ShardBytes {
		t.Fatalf("shard byte accounting inconsistent: %+v", s)
	}

	globalOpts := opts
	globalOpts.GlobalCSR = true
	ge, err := NewEngine(g, globalOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer ge.Close()
	gs := ge.ShardStats()
	if gs.ShardBytes != 0 || gs.Delegates != 0 {
		t.Fatalf("global reference engine reports shards: %+v", gs)
	}
}
