package core

import (
	"math/rand"
	"testing"

	"dsteiner/internal/graph"
	rt "dsteiner/internal/runtime"
)

// TestSlabStateMatchesSharedState is the slab-state acceptance property:
// for every partition kind × delegate threshold × {async, BSP}, the
// production engine (rank-local StateSlabs next to rank-local graph shards)
// returns results byte-identical to the retained shared-state reference
// path (Options.GlobalCSR: one shared State array plus the global CSR) —
// the pre-refactor implementation kept as the equivalence oracle. This
// subsumes the PR 3 shard-equivalence claim: the oracle differs in both
// adjacency source and control-state layout.
func TestSlabStateMatchesSharedState(t *testing.T) {
	g := engineTestGraph(137, 320)
	rng := rand.New(rand.NewSource(138))
	seedSets := [][]graph.VID{
		pickEngineSeeds(rng, g.NumVertices(), 2),
		pickEngineSeeds(rng, g.NumVertices(), 7),
		pickEngineSeeds(rng, g.NumVertices(), 14),
	}
	for _, kind := range []PartitionKind{PartitionBlock, PartitionHash, PartitionArcBlock} {
		for _, threshold := range []int{0, 5} {
			for _, bsp := range []bool{false, true} {
				opts := Options{
					Ranks:             5,
					Queue:             rt.QueuePriority,
					Partition:         kind,
					DelegateThreshold: threshold,
					BSP:               bsp,
				}
				slab, err := NewEngine(g, opts)
				if err != nil {
					t.Fatal(err)
				}
				sharedOpts := opts
				sharedOpts.GlobalCSR = true
				shared, err := NewEngine(g, sharedOpts)
				if err != nil {
					slab.Close()
					t.Fatal(err)
				}
				label := kind.String()
				if bsp {
					label += "+bsp"
				}
				for _, seeds := range seedSets {
					got, err := slab.Solve(seeds)
					if err != nil {
						t.Fatalf("%s thr=%d: slab-state: %v", label, threshold, err)
					}
					want, err := shared.Solve(seeds)
					if err != nil {
						t.Fatalf("%s thr=%d: shared-state: %v", label, threshold, err)
					}
					assertResultsEquivalent(t, label, got, want)
					// The slab path accounts per-rank state; the shared path
					// accounts the global arrays. Both are nonzero but need
					// not match (slabs carry mirrors and walk marks, the
					// shared path a full-|V| array set).
					if got.Memory.StateBytes <= 0 || want.Memory.StateBytes <= 0 {
						t.Fatalf("%s: state accounting missing: slab %d, shared %d",
							label, got.Memory.StateBytes, want.Memory.StateBytes)
					}
				}
				slab.Close()
				shared.Close()
			}
		}
	}
}

// TestEngineRanksOwningZeroVertices covers the degenerate partitions where
// some ranks own no vertices at all — more ranks than vertices (block), and
// a delegated hash cut of a tiny graph — so their slabs have zero owned
// rows (delegate-only slabs when thresholds mark hubs). Solves must still
// match the shared-state oracle exactly.
func TestEngineRanksOwningZeroVertices(t *testing.T) {
	// 7 vertices, 12 ranks: at least 5 ranks own nothing.
	b := graph.NewBuilder(7)
	edges := [][3]int32{{0, 1, 2}, {1, 2, 3}, {2, 3, 1}, {3, 4, 4}, {4, 5, 2}, {5, 6, 3}, {0, 6, 9}, {1, 4, 5}}
	for _, e := range edges {
		b.AddEdge(graph.VID(e[0]), graph.VID(e[1]), uint32(e[2]))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []PartitionKind{PartitionBlock, PartitionHash, PartitionArcBlock} {
		for _, threshold := range []int{0, 3} {
			opts := Options{
				Ranks:             12,
				Queue:             rt.QueuePriority,
				Partition:         kind,
				DelegateThreshold: threshold,
			}
			e, err := NewEngine(g, opts)
			if err != nil {
				t.Fatalf("%v thr=%d: %v", kind, threshold, err)
			}
			empty := 0
			for _, sl := range e.slabs {
				if sl.NumOwned() == 0 {
					empty++
					if threshold > 0 && sl.NumMirrored() == 0 {
						t.Fatalf("%v thr=%d: empty rank mirrors no delegates", kind, threshold)
					}
				}
			}
			if empty == 0 {
				t.Fatalf("%v: 12 ranks over 7 vertices left no rank empty", kind)
			}
			sharedOpts := opts
			sharedOpts.GlobalCSR = true
			for _, seeds := range [][]graph.VID{{0, 6}, {1, 3, 5}, {0, 2, 4, 6}} {
				got, err := e.Solve(seeds)
				if err != nil {
					t.Fatalf("%v thr=%d seeds %v: %v", kind, threshold, seeds, err)
				}
				want, err := Solve(g, seeds, sharedOpts)
				if err != nil {
					t.Fatal(err)
				}
				assertResultsEquivalent(t, kind.String(), got, want)
			}
			e.Close()
		}
	}
}

// TestSiblingsGetOwnSlabs checks sibling engines share the immutable shard
// substrate but build private control-state slabs — slabs are mutable
// per-query state and two engines solving concurrently must not share them.
func TestSiblingsGetOwnSlabs(t *testing.T) {
	g := engineTestGraph(171, 200)
	opts := Default(3)
	opts.DelegateThreshold = 6
	first, err := NewEngine(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	sib, err := first.NewSibling()
	if err != nil {
		t.Fatal(err)
	}
	defer sib.Close()
	if len(sib.slabs) != len(first.slabs) {
		t.Fatalf("sibling has %d slabs, first %d", len(sib.slabs), len(first.slabs))
	}
	for i := range sib.slabs {
		if sib.slabs[i] == first.slabs[i] {
			t.Fatalf("sibling shares mutable state slab %d", i)
		}
	}
	seeds := []graph.VID{3, 80, 150}
	a, err := first.Solve(seeds)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sib.Solve(seeds)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEquivalent(t, "sibling-slabs", b, a)
}
