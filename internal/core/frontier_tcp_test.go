package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	rt "dsteiner/internal/runtime"
	"dsteiner/internal/transport"
)

// TestTCPBackendParallelFrontierMatchesLoopback extends the tentpole's
// equivalence property across the wire: a rankd fleet draining buckets in
// parallel (wire v6 ships the unresolved frontier request; each worker
// resolves it against its own hosted-rank count) returns Results
// byte-identical to a serial-frontier loopback oracle, for async and BSP on
// both delegate settings, across tree, forest and prize queries. The
// frontier counters must come back over the WorkerDone v6 tail — nonzero
// drains prove the fleet really ran the parallel path, not a silent serial
// fallback.
func TestTCPBackendParallelFrontierMatchesLoopback(t *testing.T) {
	g := clusteredTestGraph(131, 3, 40)
	rng := rand.New(rand.NewSource(134))
	specs := frontierTestSpecs(rng, 3, 40)
	thresholds := []int{0, 6}
	if testing.Short() {
		thresholds = []int{6}
	}
	for _, threshold := range thresholds {
		for _, bsp := range []bool{false, true} {
			label := fmt.Sprintf("thr=%d/bsp=%v", threshold, bsp)
			t.Run(label, func(t *testing.T) {
				opts := Options{
					Ranks:             4,
					Queue:             rt.QueueBucket,
					BucketDelta:       32,
					Partition:         PartitionArcBlock,
					DelegateThreshold: threshold,
					BSP:               bsp,
					Frontier:          FrontierSerial,
				}
				loop, err := NewEngine(g, opts)
				if err != nil {
					t.Fatal(err)
				}
				defer loop.Close()
				popts := opts
				popts.Frontier = FrontierParallel
				// Four single-rank workers: each resolves the whole budget
				// onto its one hosted rank.
				popts.FrontierWorkers = 4
				tcp, wait := startTCPEngine(t, g, popts, 4)
				defer wait()
				defer tcp.Close()
				for si, spec := range specs {
					want, err := loop.SolveSpec(spec)
					if err != nil {
						t.Fatalf("spec %d: loopback: %v", si, err)
					}
					got, err := tcp.SolveSpec(spec)
					if err != nil {
						t.Fatalf("spec %d: tcp: %v", si, err)
					}
					sl := fmt.Sprintf("%s/spec=%d", label, si)
					assertResultsEquivalent(t, sl, got, want)
					if got.FrontierBucketsDrained == 0 {
						t.Fatalf("%s: tcp fleet reported zero parallel drains", sl)
					}
					if got.FrontierWorkers != 4 {
						t.Fatalf("%s: fleet resolved %d frontier workers per rank, want 4", sl, got.FrontierWorkers)
					}
					if got.FrontierMsgs == 0 || got.FrontierWallNs == 0 {
						t.Fatalf("%s: frontier counters missing from the WorkerDone tail: %+v", sl, got)
					}
					if want.FrontierBucketsDrained != 0 {
						t.Fatalf("%s: serial loopback oracle reported %d parallel drains", sl, want.FrontierBucketsDrained)
					}
					if got.Net.FramesOut == 0 {
						t.Fatalf("%s: tcp solve reports no transport traffic", sl)
					}
				}
			})
		}
	}
}

// TestTCPBackendFrontierPinnedV5 pins the rollback seam, mirroring the MST
// fragment v4 gate: a session pinned below wire v6 (the "old coordinator")
// silently keeps the serial drain under auto — the v5 Setup frame cannot
// carry the frontier request — and refuses an explicit FrontierParallel
// instead of running it without the stats tail.
func TestTCPBackendFrontierPinnedV5(t *testing.T) {
	g := engineTestGraph(31, 100)
	rng := rand.New(rand.NewSource(135))
	seeds := pickEngineSeeds(rng, g.NumVertices(), 7)
	opts := Options{
		Ranks:           2,
		Queue:           rt.QueueBucket,
		BucketDelta:     32,
		FrontierWorkers: 8, // auto would resolve parallel on a v6 session
		MaxWireVersion:  5,
	}
	tcp, wait := startTCPEngine(t, g, opts, 2)
	if got := tcp.Frontier(); got != FrontierSerial {
		t.Fatalf("v5 auto resolved to %v, want serial", got)
	}
	res, err := tcp.Solve(seeds)
	if err != nil {
		t.Fatal(err)
	}
	if res.FrontierBucketsDrained != 0 || res.FrontierWorkers != 0 {
		t.Fatalf("v5 session claims parallel frontier work: %d drains, %d workers",
			res.FrontierBucketsDrained, res.FrontierWorkers)
	}
	loop, err := NewEngine(g, Options{Ranks: 2, Queue: rt.QueueBucket, BucketDelta: 32, Frontier: FrontierSerial})
	if err != nil {
		t.Fatal(err)
	}
	want, err := loop.Solve(seeds)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEquivalent(t, "v5-vs-serial-loopback", res, want)
	loop.Close()
	tcp.Close()
	wait()

	opts.Frontier = FrontierParallel
	opts.Backend = BackendTCP
	opts.Workers = 2
	opts.ListenAddr = "127.0.0.1:0"
	done := make(chan struct{}, 2)
	opts.OnListen = func(addr string) {
		for i := 0; i < 2; i++ {
			go func() {
				// Workers exit when the refused coordinator closes the hub;
				// that teardown error is expected, not asserted.
				_ = RunWorker(addr, WorkerConfig{})
				done <- struct{}{}
			}()
		}
	}
	if _, err := NewEngine(g, opts); err == nil || !strings.Contains(err.Error(), "wire v6") {
		t.Fatalf("FrontierParallel on a v5 fleet: err=%v, want wire v6 refusal", err)
	}
	<-done
	<-done
}

// TestChaosFrontierParallel runs the fault-tolerance contract on top of the
// parallel frontier: a recovering 2-worker fleet draining buckets across
// per-rank worker pools takes one deterministic mid-solve fault, heals, and
// still answers byte-identically to an undisturbed loopback run — then
// answers again on the healed fleet, still draining in parallel. This keeps
// the tentpole inside the chaos envelope PR 9 established for the serial
// path.
func TestChaosFrontierParallel(t *testing.T) {
	g := engineTestGraph(17, 120)
	rng := rand.New(rand.NewSource(94))
	seeds := pickEngineSeeds(rng, g.NumVertices(), 7)

	frontierOpts := func() Options {
		return Options{
			Ranks:             4,
			Queue:             rt.QueueBucket,
			BucketDelta:       32,
			Partition:         PartitionArcBlock,
			DelegateThreshold: 6,
			Frontier:          FrontierParallel,
			FrontierWorkers:   8, // 2 workers host 2 ranks each: 4 per rank
		}
	}
	loop, err := NewEngine(g, frontierOpts())
	if err != nil {
		t.Fatal(err)
	}
	want, err := loop.Solve(seeds)
	loop.Close()
	if err != nil {
		t.Fatalf("loopback reference: %v", err)
	}

	// Probe the per-solve transport op count with an inject-nothing shim on
	// this exact fleet shape, so the fault triggers land mid-solve.
	before := transport.ChaosOpsTotal()
	{
		opts := frontierOpts()
		opts.Recover = true
		opts.RejoinWait = 10 * time.Second
		e, shutdown := startChaosFleet(t, g, opts, 2, func(w int) WorkerConfig {
			cfg := WorkerConfig{RejoinWait: 10 * time.Second}
			if w == 0 {
				cfg.Chaos = &transport.ChaosConfig{Seed: 1}
			}
			return cfg
		})
		res, err := solveWithDeadline(t, "probe", e, seeds)
		if err != nil {
			t.Fatalf("probe solve: %v", err)
		}
		if res.FrontierBucketsDrained == 0 {
			t.Fatal("probe fleet never drained a bucket in parallel")
		}
		shutdown(true)
	}
	ops := transport.ChaosOpsTotal() - before
	if ops < 4 {
		t.Fatalf("probe observed only %d transport ops", ops)
	}

	kinds := []string{transport.ChaosPeerDrop, transport.ChaosCoordDrop, transport.ChaosTruncate}
	if testing.Short() {
		kinds = kinds[:1]
	}
	for _, kind := range kinds {
		t.Run(kind, func(t *testing.T) {
			opts := frontierOpts()
			opts.Recover = true
			opts.RejoinWait = 15 * time.Second
			e, shutdown := startChaosFleet(t, g, opts, 2, func(w int) WorkerConfig {
				cfg := WorkerConfig{RejoinWait: 15 * time.Second}
				if w == 0 {
					cfg.Chaos = &transport.ChaosConfig{Kind: kind, Seed: 2, After: ops / 2}
				}
				return cfg
			})
			got, err := solveWithDeadline(t, kind+"/faulted", e, seeds)
			if err != nil {
				t.Fatalf("faulted solve not recovered: %v", err)
			}
			assertResultsEquivalent(t, kind+"/faulted", got, want)
			if got.FrontierBucketsDrained == 0 {
				t.Fatalf("%s: requeued solve fell back to serial draining", kind)
			}
			again, err := solveWithDeadline(t, kind+"/healed", e, seeds)
			if err != nil {
				t.Fatalf("solve on healed fleet: %v", err)
			}
			assertResultsEquivalent(t, kind+"/healed", again, want)
			if again.FrontierBucketsDrained == 0 {
				t.Fatalf("%s: healed fleet fell back to serial draining", kind)
			}
			fs := e.FaultStats()
			shutdown(true)
			if fs.Detected < 1 || fs.Heals < 1 {
				t.Fatalf("injected a %s fault but the session never healed: %+v", kind, fs)
			}
		})
	}
}
