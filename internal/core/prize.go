package core

import (
	"sort"

	"dsteiner/internal/graph"
	"dsteiner/internal/mst"
)

// prizePlan decides which terminals a prize-mode query connects and which
// it pays to skip. It runs over the replicated merged distance graph G'_1
// (the same table phase 4 feeds to the MST), so like the sequential MST it
// executes identically on every rank — loopback or rankd — with no extra
// communication: all arithmetic is integral and every tie-break is by a
// fixed enumeration order.
//
// The pass is the unrooted Goemans–Williamson primal-dual scheme (cf.
// Saikia & Karmakar, arXiv:1710.07040): every terminal starts as its own
// active moat with dual budget equal to its penalty; moats grow uniformly,
// merge when a distance-graph edge goes tight, and deactivate when their
// pooled budget is exhausted. Growth stops when at most one active moat
// remains. The laminar family of every component the growth ever forms —
// singletons included, plus the full terminal set — is then evaluated
// exactly (restricted-MST cost + penalties of the excluded terminals) and
// the cheapest feasible subset wins. Singleton subsets are always feasible,
// so the plan always keeps at least one terminal.
//
// edges carries dense terminal indices (0..nT-1); penalty is parallel to
// the dense ordering. The returned slice marks kept terminals.
func prizePlan(nT int, edges []mst.WEdge, penalty []graph.Dist) []bool {
	keep := make([]bool, nT)
	if nT == 0 {
		return keep
	}

	// Moat state. All dual quantities are doubled (suffix 2) so event
	// times with closing speed 2 stay integral; candidate event times are
	// compared as exact rationals num/den with den in {1, 2}.
	parent := make([]int32, nT)
	budget2 := make([]int64, nT) // remaining pooled budget of the root's moat
	active := make([]bool, nT)
	members := make([][]int32, nT)
	y2 := make([]int64, nT) // total dual accumulated around each terminal
	activeCount := 0
	for i := 0; i < nT; i++ {
		parent[i] = int32(i)
		budget2[i] = 2 * int64(penalty[i])
		active[i] = budget2[i] > 0
		if active[i] {
			activeCount++
		}
		members[i] = []int32{int32(i)}
	}
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}

	candidates := make([][]int32, 0, 2*nT+1)
	for i := 0; i < nT; i++ {
		candidates = append(candidates, members[i])
	}

	sorted := make([]mst.WEdge, len(edges))
	copy(sorted, edges)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.W != b.W {
			return a.W < b.W
		}
		if a.U != b.U {
			return a.U < b.U
		}
		return a.V < b.V
	})

	for activeCount >= 2 {
		// Earliest event: an inter-moat edge going tight, or an active
		// moat exhausting its budget. First strictly-smaller time in
		// enumeration order wins, keeping the run deterministic.
		const none = -1
		bestNum, bestDen := int64(0), int64(0)
		bestEdge, bestComp := none, int32(none)
		better := func(num, den int64) bool {
			return bestDen == 0 || num*bestDen < bestNum*den
		}
		for ei, e := range sorted {
			ru, rv := find(e.U), find(e.V)
			if ru == rv {
				continue
			}
			speed := int64(0)
			if active[ru] {
				speed++
			}
			if active[rv] {
				speed++
			}
			if speed == 0 {
				continue
			}
			slack2 := 2*int64(e.W) - y2[e.U] - y2[e.V]
			if slack2 < 0 {
				slack2 = 0
			}
			if better(slack2, speed) {
				bestNum, bestDen, bestEdge, bestComp = slack2, speed, ei, none
			}
		}
		seen := make(map[int32]bool, activeCount)
		for i := int32(0); int(i) < nT; i++ {
			r := find(i)
			if !active[r] || seen[r] {
				continue
			}
			seen[r] = true
			if better(budget2[r], 2) {
				bestNum, bestDen, bestEdge, bestComp = budget2[r], 2, none, r
			}
		}
		if bestDen == 0 {
			break
		}

		// Advance every active moat to the event: dy2 = 2*num/den is
		// integral because den is 1 or 2.
		dy2 := 2 * bestNum / bestDen
		if dy2 > 0 {
			for v := int32(0); int(v) < nT; v++ {
				if active[find(v)] {
					y2[v] += dy2
				}
			}
			for r := range seen {
				budget2[r] -= dy2
			}
		}

		if bestEdge != none {
			e := sorted[bestEdge]
			ru, rv := find(e.U), find(e.V)
			wasActive := 0
			if active[ru] {
				wasActive++
			}
			if active[rv] {
				wasActive++
			}
			parent[rv] = ru
			budget2[ru] += budget2[rv]
			merged := make([]int32, 0, len(members[ru])+len(members[rv]))
			merged = append(append(merged, members[ru]...), members[rv]...)
			sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
			members[ru] = merged
			active[ru] = budget2[ru] > 0
			activeCount -= wasActive
			if active[ru] {
				activeCount++
			}
			candidates = append(candidates, merged)
		} else {
			active[bestComp] = false
			budget2[bestComp] = 0
			activeCount--
		}
	}

	full := make([]int32, nT)
	for i := range full {
		full[i] = int32(i)
	}
	candidates = append(candidates, full)

	// Selection: exact objective per candidate subset — restricted-MST
	// cost plus the penalties of everything outside it. Subsets the
	// distance graph cannot span are infeasible and skipped.
	totalPen := int64(0)
	for _, p := range penalty {
		totalPen += int64(p)
	}
	inK := make([]bool, nT)
	uf := make([]int32, nT)
	var bestSet []int32
	bestObj := int64(0)
	for _, cand := range candidates {
		cost, ok := restrictedMSTCost(sorted, cand, inK, uf)
		if !ok {
			continue
		}
		pen := totalPen
		for _, i := range cand {
			pen -= int64(penalty[i])
		}
		obj := cost + pen
		if bestSet == nil || obj < bestObj {
			bestObj, bestSet = obj, cand
		}
	}
	for _, i := range bestSet {
		keep[i] = true
	}
	return keep
}

// restrictedMSTCost runs Kruskal over the weight-sorted distance-graph
// edges restricted to the candidate subset. Reports the spanning cost, or
// ok=false when the subset is not connected in the distance graph. inK and
// uf are caller-provided scratch sized to the full terminal count.
func restrictedMSTCost(sorted []mst.WEdge, cand []int32, inK []bool, uf []int32) (int64, bool) {
	if len(cand) == 1 {
		return 0, true
	}
	for i := range inK {
		inK[i] = false
	}
	for _, i := range cand {
		inK[i] = true
		uf[i] = i
	}
	find := func(x int32) int32 {
		for uf[x] != x {
			uf[x] = uf[uf[x]]
			x = uf[x]
		}
		return x
	}
	cost, joined := int64(0), 0
	for _, e := range sorted {
		if !inK[e.U] || !inK[e.V] {
			continue
		}
		ru, rv := find(e.U), find(e.V)
		if ru == rv {
			continue
		}
		uf[ru] = rv
		cost += int64(e.W)
		joined++
		if joined == len(cand)-1 {
			return cost, true
		}
	}
	return 0, false
}
