package core

import (
	"fmt"
	"net"
	"time"

	"dsteiner/internal/faultpoint"
	"dsteiner/internal/graph"
	"dsteiner/internal/partition"
	rt "dsteiner/internal/runtime"
	"dsteiner/internal/transport"
	"dsteiner/internal/voronoi"
	"dsteiner/internal/wire"
)

// WorkerConfig parameterizes RunWorker and ServeWorker.
type WorkerConfig struct {
	// PeerListen is the address the worker's mesh listener binds
	// (default 127.0.0.1:0). Its bound form is advertised to the
	// coordinator, so on a multi-host deployment it must name a
	// reachable interface.
	PeerListen string
	// DialTimeout bounds the initial coordinator dial and the handshake
	// steps (default 30s).
	DialTimeout time.Duration
	// RejoinWait, when positive, makes ServeWorker treat a session fault
	// as survivable: the worker re-dials the coordinator and re-handshakes
	// with a Rejoin frame carrying the session identity, waiting up to
	// this long for the coordinator's heal to re-admit it. 0 keeps the
	// legacy fail-stop behavior (any fault ends the worker).
	RejoinWait time.Duration
	// Chaos, when set, wraps the session's transport in a fault-injecting
	// shim (chaos testing). It applies to the FIRST session only: a healed
	// session runs clean, so an injected fault cannot re-fire forever.
	Chaos *transport.ChaosConfig
	// Logf, when set, receives progress lines (rankd wires the standard
	// logger here).
	Logf func(format string, args ...any)
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.PeerListen == "" {
		c.PeerListen = "127.0.0.1:0"
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 30 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// RunWorker is one rankd worker session: dial the coordinator, receive
// this process's slice of the shard plan, rebuild the hosted ranks' shards
// and state slabs locally (the full CSR is never materialized here), mesh
// with the peer workers, and serve solve requests until the coordinator
// says goodbye. Blocks for the whole session; returns nil on a clean
// goodbye. Any session fault is terminal (legacy fail-stop behavior) —
// ServeWorker is the rejoining form.
func RunWorker(coordAddr string, cfg WorkerConfig) error {
	_, err := runWorkerSession(coordAddr, cfg.withDefaults(), nil)
	return err
}

// ServeWorker runs worker sessions against one coordinator until a clean
// goodbye. With cfg.RejoinWait set, a session fault — a lost peer or
// coordinator connection, a rank panic, a coordinator abort — does not end
// the worker: it re-dials and re-handshakes with a Rejoin frame proving
// membership in the lost session, and the coordinator's heal hands it a
// fresh Setup (possibly hosting different ranks). Handshake and build
// errors stay terminal: a worker the fleet never admitted has no session
// to rejoin.
func ServeWorker(coordAddr string, cfg WorkerConfig) error {
	cfg = cfg.withDefaults()
	var prev *rejoinTicket
	for {
		ticket, err := runWorkerSession(coordAddr, cfg, prev)
		if err == nil {
			return nil
		}
		if cfg.RejoinWait <= 0 || ticket == nil || ticket.sessionID == 0 {
			return err
		}
		cfg.Logf("rankd: session fault: %v; rejoining session %#x within %v",
			err, ticket.sessionID, cfg.RejoinWait)
		prev = ticket
		// Injected faults apply to the first session only: the healed
		// session must run clean, or recovery could never converge.
		cfg.Chaos = nil
	}
}

// rejoinTicket is what a worker keeps from a lost session to prove
// membership on rejoin: the coordinator's session identity plus the slot
// this process held (advisory — heal assigns slots in accept order).
type rejoinTicket struct {
	sessionID  uint64
	prevWorker int
}

// runWorkerSession runs one worker session end to end. A non-nil ticket
// makes the handshake open with a Rejoin frame instead of a Hello (and
// stretches the handshake deadline to cfg.RejoinWait, since the
// coordinator only heals on its next dispatch). The returned ticket is
// non-nil only when a fault ended an established session — the caller may
// rejoin with it; handshake and build errors return a nil ticket.
func runWorkerSession(coordAddr string, cfg WorkerConfig, rejoin *rejoinTicket) (*rejoinTicket, error) {
	window := cfg.DialTimeout
	if rejoin != nil && cfg.RejoinWait > window {
		window = cfg.RejoinWait
	}
	conn, err := net.DialTimeout("tcp", coordAddr, window)
	if err != nil {
		return nil, fmt.Errorf("core: dial coordinator %s: %w", coordAddr, err)
	}
	ln, err := net.Listen("tcp", cfg.PeerListen)
	if err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("core: peer listener %s: %w", cfg.PeerListen, err)
	}
	defer ln.Close()

	var opening []byte
	if rejoin != nil {
		opening = wire.EncodeRejoin(nil, wire.Rejoin{
			Version:    wire.Version,
			PeerAddr:   ln.Addr().String(),
			SessionID:  rejoin.sessionID,
			PrevWorker: int64(rejoin.prevWorker),
		})
	} else {
		opening = wire.EncodeHello(nil, wire.Hello{
			Version:  wire.Version,
			PeerAddr: ln.Addr().String(),
		})
	}
	if err := wire.WriteFrame(conn, opening); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("core: hello: %w", err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(window))
	frame, err := wire.ReadFrame(conn, nil)
	if err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("core: waiting for setup: %w", err)
	}
	if frame[0] == wire.FrameAbort {
		reason := "unreadable abort frame"
		if ab, err := wire.DecodeAbort(frame[1:]); err == nil {
			reason = ab.Reason
		}
		_ = conn.Close()
		return nil, fmt.Errorf("core: coordinator rejected session: %s", reason)
	}
	if frame[0] != wire.FrameSetup {
		_ = conn.Close()
		return nil, fmt.Errorf("core: coordinator sent frame %d before setup", frame[0])
	}
	setup, err := wire.DecodeSetup(frame[1:])
	if err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("core: setup: %w", err)
	}
	_ = conn.SetReadDeadline(time.Time{})

	w, err := buildWorker(setup, conn, ln, cfg)
	if err != nil {
		// Best effort: tell the coordinator why this worker is bailing.
		_ = wire.WriteFrame(conn, wire.EncodeAbort(nil, wire.Abort{Reason: err.Error()}))
		_ = conn.Close()
		return nil, err
	}
	if err := w.serve(cfg); err != nil {
		// A fault on an established session: hand the caller the rejoin
		// ticket (SessionID is 0 on pre-v5 sessions, which cannot heal).
		return &rejoinTicket{sessionID: setup.SessionID, prevWorker: setup.WorkerIndex}, err
	}
	return nil, nil
}

// worker is one rankd process's session state: the hosted rank range, the
// communicator over the TCP transport, and the pooled per-query scratch
// the SPMD body indexes by global rank.
type worker struct {
	lo    int
	hi    int
	opts  Options
	comm  *rt.Comm
	trans *transport.TCP

	shardBytes int64
	stateBytes int64

	// mstMode is the coordinator-resolved phase 3–5 merge strategy from
	// the setup frame (absent on pre-v4 sessions ⇒ replicated).
	mstMode MSTMode

	// Pooled per-query scratch (hosted entries only).
	localENs []map[int64]crossEdge
	pruneds  []map[int64]crossEdge
	trees    [][]graph.Edge
	seedIdx  map[graph.VID]int32
	owneds   []map[int64]crossEdge
	frags    [][]int32
	merges   []*mergeScratch
}

// buildWorker reconstructs the rank substrate from the setup frame and
// wires the communicator to the transport.
func buildWorker(setup wire.Setup, coord net.Conn, ln net.Listener, cfg WorkerConfig) (*worker, error) {
	if setup.WorkerIndex < 0 || setup.WorkerIndex+1 >= len(setup.RankLo) ||
		len(setup.PeerAddrs) != len(setup.RankLo)-1 || setup.Ranks <= 0 || setup.NumVertices <= 0 {
		return nil, fmt.Errorf("core: inconsistent setup geometry (worker %d, %d rank bounds, %d peers)",
			setup.WorkerIndex, len(setup.RankLo), len(setup.PeerAddrs))
	}
	lo, hi := int(setup.RankLo[setup.WorkerIndex]), int(setup.RankLo[setup.WorkerIndex+1])
	if len(setup.Shards) != hi-lo {
		return nil, fmt.Errorf("core: setup carries %d shard slices for ranks [%d,%d)", len(setup.Shards), lo, hi)
	}
	part, err := workerPartition(setup)
	if err != nil {
		return nil, err
	}

	// The setup ships the frontier mode unresolved: auto depends on this
	// process's own GOMAXPROCS and hosted rank count, so it resolves here.
	// Pre-v6 setups have no frontier tail and drain serially.
	frontier := FrontierSerial
	if setup.WireVersion >= 6 {
		frontier = resolveFrontierLocal(Options{
			Frontier:        frontierFromWire(setup.Frontier),
			FrontierWorkers: int(setup.FrontierWorkers),
			Queue:           rt.QueueKind(setup.Queue),
			Ranks:           hi - lo, // budget splits across hosted ranks
		})
	}

	w := &worker{
		lo: lo,
		hi: hi,
		opts: Options{
			Ranks:             setup.Ranks,
			Queue:             rt.QueueKind(setup.Queue),
			BucketDelta:       setup.BucketDelta,
			BatchSize:         setup.BatchSize,
			BSP:               setup.BSP,
			MST:               mstAlgoFromWire(setup.MST),
			CollectiveChunk:   setup.CollectiveChunk,
			DelegateThreshold: setup.DelegateThreshold,
			Frontier:          frontier,
			FrontierWorkers:   int(setup.FrontierWorkers),
		},
		mstMode:  MSTMode(setup.MSTMode),
		localENs: make([]map[int64]crossEdge, setup.Ranks),
		pruneds:  make([]map[int64]crossEdge, setup.Ranks),
		trees:    make([][]graph.Edge, setup.Ranks),
		seedIdx:  make(map[graph.VID]int32),
		owneds:   make([]map[int64]crossEdge, setup.Ranks),
		frags:    make([][]int32, setup.Ranks),
		merges:   make([]*mergeScratch, setup.Ranks),
	}
	if w.mstMode != MSTFragment {
		w.mstMode = MSTReplicated // absent/unknown ⇒ the legacy path
	}

	shards := make([]*graph.Shard, 0, hi-lo)
	slabs := make([]rt.StateSlab, 0, hi-lo)
	for i, sl := range setup.Shards {
		if sl.Rank != lo+i {
			return nil, fmt.Errorf("core: shard slice %d is for rank %d, want %d", i, sl.Rank, lo+i)
		}
		sh := graph.NewShardFromSlices(sl.Rank, setup.Ranks, sl.Owned, sl.Offsets,
			sl.Targets, sl.Weights, setup.Delegates, sl.StripeOff, sl.StripeTargets, sl.StripeWeights)
		shards = append(shards, sh)
		slab := voronoi.NewStateSlab(sl.Rank, sl.Owned, sl.Mirrored, sh.Rows())
		slabs = append(slabs, slab)
		w.shardBytes += sh.MemoryBytes()
		w.stateBytes += slab.MemoryBytes()
		w.localENs[sl.Rank] = map[int64]crossEdge{}
		w.pruneds[sl.Rank] = map[int64]crossEdge{}
		w.owneds[sl.Rank] = map[int64]crossEdge{}
		w.merges[sl.Rank] = &mergeScratch{merged: map[int64]crossEdge{}}
	}

	cfg.Logf("rankd: worker %d/%d hosting ranks [%d,%d), |V|=%d, shard %d B, slab %d B",
		setup.WorkerIndex, len(setup.PeerAddrs), lo, hi, setup.NumVertices, w.shardBytes, w.stateBytes)

	mesh, err := transport.ConnectMesh(setup.WorkerIndex, setup.PeerAddrs, ln, cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	w.trans = transport.NewTCP(setup.WorkerIndex, setup.RankLo, coord, mesh)
	// Pin the negotiated wire version before any traffic: it selects the
	// visitor-batch frame encoding and the WorkerDone stats tail.
	w.trans.SetWireVersion(setup.WireVersion)
	// The communicator talks to the transport seam; chaos testing slides
	// its fault-injecting shim in here, so injected faults hit the same
	// sockets and decode paths production traffic uses. The worker keeps
	// the concrete TCP handle for control traffic (ready/abort/done).
	var seam rt.Transport = w.trans
	if cfg.Chaos != nil {
		seam = transport.NewChaos(w.trans, *cfg.Chaos)
	}
	comm, err := rt.New(rt.Config{
		Ranks:            setup.Ranks,
		Queue:            rt.QueueKind(setup.Queue),
		BucketDelta:      setup.BucketDelta,
		BatchSize:        setup.BatchSize,
		HostLo:           lo,
		HostHi:           hi,
		Transport:        seam,
		FrontierParallel: frontier == FrontierParallel,
		FrontierWorkers:  int(setup.FrontierWorkers),
	}, part)
	if err != nil {
		return nil, err
	}
	if err := comm.AttachShards(shards); err != nil {
		return nil, err
	}
	if err := comm.AttachStateSlabs(slabs); err != nil {
		return nil, err
	}
	w.comm = comm
	return w, nil
}

// workerPartition rebuilds the session's vertex partition from its wire
// form.
func workerPartition(setup wire.Setup) (partition.Partition, error) {
	var base partition.Partition
	var err error
	switch setup.PartitionKind {
	case wire.PartHash:
		base, err = partition.NewHash(setup.NumVertices, setup.Ranks)
	case wire.PartArcBlock:
		var ab *partition.ArcBlock
		ab, err = partition.NewArcBlockFromBounds(setup.ArcBounds)
		if err == nil {
			if ab.NumRanks() != setup.Ranks || ab.NumVertices() != setup.NumVertices {
				return nil, fmt.Errorf("core: arc-block bounds describe %d ranks over %d vertices, want %d over %d",
					ab.NumRanks(), ab.NumVertices(), setup.Ranks, setup.NumVertices)
			}
			base = ab
		}
	case wire.PartBlock:
		base, err = partition.NewBlock(setup.NumVertices, setup.Ranks)
	default:
		return nil, fmt.Errorf("core: unknown partition kind %d in setup", setup.PartitionKind)
	}
	if err != nil {
		return nil, err
	}
	if len(setup.Delegates) > 0 {
		return partition.WithDelegateList(base, setup.NumVertices, setup.Delegates), nil
	}
	return base, nil
}

// serve answers coordinator control frames until goodbye or failure.
func (w *worker) serve(cfg WorkerConfig) error {
	w.comm.Start()
	defer w.comm.Close()
	defer w.trans.Close()
	if err := w.trans.SendReady(wire.Ready{ShardBytes: w.shardBytes, StateBytes: w.stateBytes}); err != nil {
		return fmt.Errorf("core: ready: %w", err)
	}
	for ctl := range w.trans.Controls() {
		switch ctl.Kind {
		case transport.ControlSolve:
			if err := w.solveQuery(ctl.Spec, cfg); err != nil {
				w.trans.SendAbort(err.Error())
				return err
			}
		case transport.ControlGoodbye:
			cfg.Logf("rankd: session over, exiting")
			return nil
		case transport.ControlAbort:
			return fmt.Errorf("core: session aborted: %w", ctl.Err)
		}
	}
	return nil
}

// solveQuery runs the SPMD body for one query on the hosted ranks and
// reports the worker's outcome (including rank 0's Result when hosted).
// The coordinator ships every query as a canonical SolveSpec — a legacy
// FrameSolve arrives as a tree-mode spec — and the worker's deterministic
// flattening reproduces the coordinator's dense terminal indices.
func (w *worker) solveQuery(q wire.SolveSpec, cfg WorkerConfig) (err error) {
	cq := flattenCanonical(specFromWire(q))
	w.comm.ResetStateSlabs()
	for rank := w.lo; rank < w.hi; rank++ {
		clear(w.localENs[rank])
		clear(w.pruneds[rank])
		clear(w.owneds[rank])
		w.trees[rank] = w.trees[rank][:0]
	}
	clear(w.seedIdx)
	for i, s := range cq.dedup {
		w.seedIdx[s] = int32(i)
	}
	env := &solveEnv{
		opts:        w.opts,
		comm:        w.comm,
		dedup:       cq.dedup,
		seedIdx:     w.seedIdx,
		mode:        cq.spec.Mode,
		groupOf:     cq.groupOf,
		numGroups:   len(cq.spec.Groups),
		penalty:     cq.penalty,
		res:         &Result{Seeds: cq.dedup, Mode: cq.spec.Mode},
		mstFragment: w.mstMode == MSTFragment && cq.spec.Mode != ModePrize,
		localENs:    w.localENs,
		pruneds:     w.pruneds,
		trees:       w.trees,
		owneds:      w.owneds,
		frags:       w.frags,
		merges:      w.merges,
	}
	s0 := w.comm.Stats()
	net0 := w.trans.NetStats()

	// A rank panic (or transport poison) unwinds through Run; convert it
	// into a session abort instead of crashing the process silently.
	func() {
		defer func() {
			if p := recover(); p != nil {
				if terr := w.trans.Err(); terr != nil {
					err = fmt.Errorf("core: query %d: transport failed: %w", q.QueryID, terr)
				} else {
					err = fmt.Errorf("core: query %d: rank panic: %v", q.QueryID, p)
				}
			}
		}()
		w.comm.Run(env.rankBody)
	}()
	if err != nil {
		return err
	}

	s1 := w.comm.Stats()
	done := wire.WorkerDone{
		QueryID:    q.QueryID,
		Sent:       s1.Sent - s0.Sent,
		Processed:  s1.Processed - s0.Processed,
		Suppressed: s1.Suppressed - s0.Suppressed,
		Batched:    s1.BatchedBroadcasts - s0.BatchedBroadcasts,
		Coalesced:  s1.CoalescedBroadcasts - s0.CoalescedBroadcasts,
		Net:        w.trans.NetStats().Sub(net0),

		FrontierWorkers:   int64(s1.Frontier.Workers),
		FrontierDrains:    s1.Frontier.BucketsDrained - s0.Frontier.BucketsDrained,
		FrontierMsgs:      s1.Frontier.Messages - s0.Frontier.Messages,
		FrontierMaxChunk:  s1.Frontier.MaxChunk, // session high-water mark
		FrontierConflicts: s1.Frontier.Conflicts - s0.Frontier.Conflicts,
		FrontierBusyNs:    s1.Frontier.BusyNs - s0.Frontier.BusyNs,
		FrontierWallNs:    s1.Frontier.WallNs - s0.Frontier.WallNs,
	}
	for rank := w.lo; rank < w.hi; rank++ {
		done.TableLens = append(done.TableLens, int64(len(w.localENs[rank])))
	}
	if w.lo == 0 {
		if env.err != nil {
			done.Err = env.err.Error()
		} else {
			done.HasResult = true
			done.Result = toWireResult(env.res)
			done.Skipped = env.res.Skipped
			done.MSTFragment = env.res.MSTFragment
			done.CrossTableBytes = env.res.CrossTableBytes
			done.FragmentMsgs = env.res.FragmentMsgs
		}
	}
	faultpoint.Hit("worker.done")
	if err := w.trans.SendWorkerDone(done); err != nil {
		return fmt.Errorf("core: query %d: done: %w", q.QueryID, err)
	}
	return nil
}
