package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"dsteiner/internal/graph"
	"dsteiner/internal/partition"
	rt "dsteiner/internal/runtime"
	"dsteiner/internal/voronoi"
)

// Engine is a long-lived solver session bound to one graph: the partition,
// the communicator (with its pinned rank goroutines) and all O(|V|)
// algorithm state are built once and reused across Solve calls, so a query
// against a resident graph pays only work proportional to the query — the
// paper's §I interactive-exploration requirement. A cold Solve per query
// instead pays O(|V|) re-initialization (three Voronoi arrays, a walked
// bitmap, a fresh partition and P new goroutines) every time.
//
// Engine.Solve is safe for concurrent use but serializes internally; run
// several Engines over the same *graph.Graph (it is immutable and shared)
// for concurrent queries, as internal/steinersvc's engine pool does.
type Engine struct {
	g    *graph.Graph
	opts Options
	comm *rt.Comm

	// Sharded substrate, built once at session setup and pooled across
	// queries: the plan (per-rank owned sets + delegates) and one
	// rank-local CSR slab per rank. Nil in Options.GlobalCSR reference
	// mode.
	plan   *partition.ShardPlan
	shards []*graph.Shard

	// cluster is the BackendTCP coordinator session; non-nil when the
	// ranks live in external rankd workers instead of this process. comm
	// and the pooled per-query state below are nil in that mode — the
	// workers hold the per-rank state.
	cluster *cluster

	mu sync.Mutex // serializes Solve on this engine

	// Pooled per-query state, reset in O(1) or O(query) between solves.
	// The production path keeps all per-vertex control state in rank-local
	// slabs (owned vertices + delegate mirrors + walk marks); the shared
	// arrays st/walked exist only in Options.GlobalCSR reference mode.
	slabs     []*voronoi.StateSlab  // rank-local control state (nil in GlobalCSR mode)
	st        *voronoi.State        // shared Voronoi arrays (GlobalCSR mode only)
	walked    []uint64              // shared phase-6 "walked" marks (GlobalCSR mode only)
	walkedGen uint64                // current walked epoch (GlobalCSR mode only)
	localENs  []map[int64]crossEdge // per-rank E_N tables, cleared per query
	seen      map[graph.VID]bool    // seed-validation scratch
	seedIdx   map[graph.VID]int32   // seed -> dense index, rebuilt per query
	pruneds   []map[int64]crossEdge // per-rank phase-5 survivors
	trees     [][]graph.Edge        // per-rank phase-6 edge accumulators
	owneds    []map[int64]crossEdge // per-rank fragment-merge table shards
	frags     [][]int32             // per-rank fragment-label arrays

	// mstMode is the resolved phase 3–5 merge strategy (never auto):
	// fragment by default, replicated in GlobalCSR reference mode or when
	// pinned by Options.MSTMode.
	mstMode MSTMode

	// frontier is the resolved bucket-drain strategy (never auto): parallel
	// when the bucket discipline, the sharded path and a multi-worker
	// budget line up — or when pinned by Options.Frontier.
	frontier FrontierMode
}

// NewEngine builds a reusable solver session for g. The returned Engine
// holds opts.Ranks pinned goroutines until Close. Engine pools serving one
// graph should build the first engine here and the rest with NewSibling,
// which shares the immutable shard substrate instead of rebuilding it.
func NewEngine(g *graph.Graph, opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	if opts.MSTMode == MSTFragment && opts.GlobalCSR {
		return nil, fmt.Errorf("core: MSTFragment needs the sharded path (GlobalCSR is the replicated reference mode)")
	}
	if opts.Frontier == FrontierParallel {
		if opts.Queue != rt.QueueBucket {
			return nil, fmt.Errorf("core: FrontierParallel requires the bucket queue discipline (Options.Queue = QueueBucket)")
		}
		if opts.GlobalCSR {
			return nil, fmt.Errorf("core: FrontierParallel needs the sharded path (GlobalCSR is the serial reference mode)")
		}
	}
	if opts.Backend == BackendTCP {
		return newClusterEngine(g, opts)
	}
	n := g.NumVertices()

	var part partition.Partition
	var err error
	switch opts.Partition {
	case PartitionHash:
		part, err = partition.NewHash(n, opts.Ranks)
	case PartitionArcBlock:
		part, err = partition.NewArcBlock(g, opts.Ranks)
	default:
		part, err = partition.NewBlock(n, opts.Ranks)
	}
	if err != nil {
		return nil, err
	}
	if opts.DelegateThreshold > 0 {
		part = partition.WithDelegates(part, g, opts.DelegateThreshold)
	}
	var plan *partition.ShardPlan
	var shards []*graph.Shard
	if !opts.GlobalCSR {
		plan, err = partition.NewShardPlan(part, g)
		if err != nil {
			return nil, err
		}
		shards = plan.BuildShards(g)
	}
	return newEngine(g, opts, part, plan, shards)
}

// NewSibling builds another engine over the same graph and options that
// shares the receiver's immutable substrate — partition, shard plan and
// rank-local shards — instead of rebuilding them. Shards are read-only
// after construction, so siblings solve concurrently on one shard set;
// each sibling still owns its communicator (pinned goroutines) and pooled
// per-query state, and must be Closed independently. Engine pools
// (internal/steinersvc) use this so a pool of N engines holds one copy of
// the sharded graph, not N.
func (e *Engine) NewSibling() (*Engine, error) {
	if e.cluster != nil {
		return nil, fmt.Errorf("core: a BackendTCP engine owns its worker fleet and cannot have siblings")
	}
	return newEngine(e.g, e.opts, e.comm.Partition(), e.plan, e.shards)
}

// newEngine wires a communicator and pooled per-query state around an
// already-built substrate. opts must have defaults applied.
func newEngine(g *graph.Graph, opts Options, part partition.Partition,
	plan *partition.ShardPlan, shards []*graph.Shard) (*Engine, error) {
	n := g.NumVertices()
	frontier := resolveFrontierLocal(opts)
	comm, err := rt.New(rt.Config{
		Ranks:            opts.Ranks,
		Queue:            opts.Queue,
		BucketDelta:      opts.BucketDelta,
		BatchSize:        opts.BatchSize,
		ShuffleDelivery:  opts.ShuffleDelivery,
		ShuffleSeed:      opts.ShuffleSeed,
		FrontierParallel: frontier == FrontierParallel,
		FrontierWorkers:  opts.FrontierWorkers,
	}, part)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		g:        g,
		opts:     opts,
		comm:     comm,
		plan:     plan,
		shards:   shards,
		localENs: make([]map[int64]crossEdge, opts.Ranks),
		seen:     make(map[graph.VID]bool),
		seedIdx:  make(map[graph.VID]int32),
		pruneds:  make([]map[int64]crossEdge, opts.Ranks),
		trees:    make([][]graph.Edge, opts.Ranks),
		owneds:   make([]map[int64]crossEdge, opts.Ranks),
		frags:    make([][]int32, opts.Ranks),
		mstMode:  opts.MSTMode,
		frontier: frontier,
	}
	if e.mstMode == MSTModeAuto {
		if opts.GlobalCSR {
			e.mstMode = MSTReplicated
		} else {
			e.mstMode = MSTFragment
		}
	}
	if shards != nil {
		if err := comm.AttachShards(shards); err != nil {
			return nil, err
		}
		// Control state is rank-local like the adjacency: one slab per
		// rank, sharing the shard's vertex→row index. Slabs are mutable
		// per-query state, so every engine (including siblings sharing one
		// shard set) builds its own.
		e.slabs, err = voronoi.AttachSlabs(comm, plan, shards)
		if err != nil {
			return nil, err
		}
	} else {
		// GlobalCSR reference mode: shared state arrays indexed by global
		// VID, exactly the pre-slab implementation.
		e.st = voronoi.NewState(n)
		e.walked = make([]uint64, n)
	}
	comm.Start()
	for i := range e.localENs {
		e.localENs[i] = map[int64]crossEdge{}
		e.pruneds[i] = map[int64]crossEdge{}
		e.owneds[i] = map[int64]crossEdge{}
	}
	return e, nil
}

// Close releases the engine's pinned rank goroutines — or, for a
// BackendTCP engine, ends the worker session (the rankd processes exit on
// the goodbye). The Engine must not be used afterwards.
func (e *Engine) Close() {
	if e.cluster != nil {
		e.cluster.close()
		return
	}
	e.comm.Close()
}

// stateBytes is the resident control-state footprint: the rank-local slabs
// on the production path, the shared arrays in GlobalCSR reference mode.
func (e *Engine) stateBytes() int64 {
	if e.slabs != nil {
		return e.comm.StateMemoryBytes()
	}
	return e.st.MemoryBytes()
}

// Graph returns the resident graph the engine is bound to.
func (e *Engine) Graph() *graph.Graph { return e.g }

// ShardStats describes an engine's sharded graph substrate, for serving
// layers (/info, /stats) and capacity planning.
type ShardStats struct {
	// Partition is the vertex-to-rank mapping kind ("block", "hash",
	// "arcblock").
	Partition string
	// Ranks is the number of shards (one per rank).
	Ranks int
	// DelegateThreshold is the configured high-degree cutoff (0 = off).
	DelegateThreshold int
	// Delegates is the number of vertices striped across all ranks.
	Delegates int
	// ShardBytes is the total resident size of all rank-local shards.
	ShardBytes int64
	// MaxShardBytes is the largest single rank's shard — the per-process
	// memory a multi-process backend would need.
	MaxShardBytes int64
	// StateSlabBytes is the total resident size of this engine's rank-local
	// control-state slabs (owned-vertex rows, delegate mirrors, walk
	// marks). Unlike shards, slabs are per-engine mutable state: a pool of
	// N engines holds N slab sets but one shard set.
	StateSlabBytes int64
	// MaxStateSlabBytes is the largest single rank's slab — together with
	// MaxShardBytes, the per-process footprint of a multi-process rank.
	MaxStateSlabBytes int64
}

// MSTMode reports the resolved phase 3–5 merge strategy this engine runs
// (never MSTModeAuto: auto is resolved at construction, on the TCP backend
// against the fleet's negotiated wire version).
func (e *Engine) MSTMode() MSTMode { return e.mstMode }

// Frontier reports the resolved bucket-drain strategy (never FrontierAuto:
// auto is resolved at construction, on the TCP backend against the fleet's
// negotiated wire version).
func (e *Engine) Frontier() FrontierMode { return e.frontier }

// ShardStats reports the engine's shard substrate. In GlobalCSR reference
// mode only Partition/Ranks/DelegateThreshold are populated.
func (e *Engine) ShardStats() ShardStats {
	if e.cluster != nil {
		// Captured at session setup from the shards/slabs the handshake
		// slices were cut from — the same bytes now resident in the
		// workers.
		return e.cluster.shard
	}
	s := ShardStats{
		Partition:         e.opts.Partition.String(),
		Ranks:             e.opts.Ranks,
		DelegateThreshold: e.opts.DelegateThreshold,
	}
	if e.plan != nil {
		s.Delegates = e.plan.NumDelegates()
	}
	for _, sh := range e.shards {
		b := sh.MemoryBytes()
		s.ShardBytes += b
		if b > s.MaxShardBytes {
			s.MaxShardBytes = b
		}
	}
	for _, sl := range e.slabs {
		b := sl.MemoryBytes()
		s.StateSlabBytes += b
		if b > s.MaxStateSlabBytes {
			s.MaxStateSlabBytes = b
		}
	}
	return s
}

// Options returns the engine's configuration with defaults applied.
func (e *Engine) Options() Options { return e.opts }

// ErrDuplicateSeed marks a seed set that names the same terminal more than
// once. A repeated terminal is almost always a caller bug (a broken seed
// generator, a double-submitted form) and silently collapsing it would
// change the query's |S|, so it is rejected instead of deduplicated.
// Serving layers should surface it as a client error (internal/steinersvc
// maps it to HTTP 400).
var ErrDuplicateSeed = errors.New("duplicate seed")

// canonSeedSet validates seeds against an n-vertex graph and returns the
// canonical query form: the same terminals sorted ascending. Duplicate
// terminals are rejected with ErrDuplicateSeed. seen is the duplicate-check
// scratch (cleared first); the returned slice is freshly allocated, so it
// may be published in a Result without aliasing pooled state.
func canonSeedSet(n int, seeds []graph.VID, seen map[graph.VID]bool) ([]graph.VID, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("core: empty seed set")
	}
	clear(seen)
	canon := make([]graph.VID, 0, len(seeds))
	for _, s := range seeds {
		if s < 0 || int(s) >= n {
			return nil, fmt.Errorf("core: seed %d out of range [0,%d)", s, n)
		}
		if seen[s] {
			return nil, fmt.Errorf("core: %w: %d appears more than once", ErrDuplicateSeed, s)
		}
		seen[s] = true
		canon = append(canon, s)
	}
	sort.Slice(canon, func(i, j int) bool { return canon[i] < canon[j] })
	return canon, nil
}

// Solve computes a 2-approximate Steiner minimal tree of the resident graph
// for the given seed vertices. Duplicate seeds are rejected with
// ErrDuplicateSeed; all seeds must lie in one connected component, otherwise
// an error is returned. Results are identical to a cold Solve with the same
// options and seeds.
func (e *Engine) Solve(seeds []graph.VID) (*Result, error) {
	return e.SolveSpec(TreeSpec(seeds))
}

// SolveSpec answers one QuerySpec — tree, forest or prize — on the
// resident graph. The spec is validated and canonicalized first (see
// CanonicalSpec); tree-mode specs behave exactly like Solve. On the TCP
// backend, forest and prize queries need a wire v3 session — against a
// v1/v2-pinned fleet they fail with an error while tree queries keep
// working.
func (e *Engine) SolveSpec(spec QuerySpec) (*Result, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cq, err := canonSpec(e.g.NumVertices(), spec, e.seen)
	if err != nil {
		return nil, err
	}
	return e.solveCanonLocked(cq)
}

// BatchItem is one query's outcome within a SolveBatch call. Items succeed
// or fail independently: a bad seed set yields an Err without disturbing the
// other queries in the batch.
type BatchItem struct {
	Result *Result
	Err    error
}

// SolveBatch solves each terminal set in order on this engine's warm pooled
// state, entering the engine's internal serialization once for the whole
// slice instead of once per query — the amortized form for callers holding a
// list of queries (internal/steinersvc's POST /solve/batch). The returned
// slice has one BatchItem per input seed set, in input order. ctx is checked
// between items: once it is cancelled the remaining items fail with its
// error instead of pinning the engine on work nobody will read.
func (e *Engine) SolveBatch(ctx context.Context, seedSets [][]graph.VID) []BatchItem {
	specs := make([]QuerySpec, len(seedSets))
	for i, seeds := range seedSets {
		specs[i] = TreeSpec(seeds)
	}
	return e.SolveSpecBatch(ctx, specs)
}

// SolveSpecBatch is SolveBatch over full QuerySpecs: each spec — any mix of
// tree, forest and prize queries — is solved in order under one pass
// through the engine's internal serialization.
func (e *Engine) SolveSpecBatch(ctx context.Context, specs []QuerySpec) []BatchItem {
	out := make([]BatchItem, len(specs))
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, spec := range specs {
		if err := ctx.Err(); err != nil {
			out[i].Err = err
			continue
		}
		cq, err := canonSpec(e.g.NumVertices(), spec, e.seen)
		if err != nil {
			out[i].Err = err
			continue
		}
		out[i].Result, out[i].Err = e.solveCanonLocked(cq)
	}
	return out
}

// ValidateSeedSet checks seeds against an n-vertex graph without solving:
// empty, out-of-range and duplicate seed sets are rejected with the same
// errors Solve would return. Serving layers use it to fail submissions fast
// (before a job is queued) with exactly the solver's rules.
func ValidateSeedSet(n int, seeds []graph.VID) error {
	_, err := canonSeedSet(n, seeds, make(map[graph.VID]bool, len(seeds)))
	return err
}

// solveCanonLocked runs the six solver phases for a validated canonical
// query. The caller holds e.mu.
func (e *Engine) solveCanonLocked(cq canonQuery) (*Result, error) {
	dedup := cq.dedup
	res := &Result{Seeds: dedup, Mode: cq.spec.Mode}
	if len(dedup) == 1 {
		if err := finalizeResult(e.g, cq, res, e.opts.SkipValidation); err != nil {
			return nil, err
		}
		return res, nil
	}
	if e.cluster != nil {
		return e.cluster.solve(e, cq)
	}

	g, opts := e.g, e.opts
	if e.slabs != nil {
		e.comm.ResetStateSlabs() // O(P) epoch bumps, one per rank slab
	} else {
		e.st.Reset()
		e.walkedGen++
	}
	for i := range e.localENs {
		clear(e.localENs[i])
		clear(e.pruneds[i])
		clear(e.owneds[i])
		e.trees[i] = e.trees[i][:0]
	}
	clear(e.seedIdx)
	for i, s := range dedup {
		e.seedIdx[s] = int32(i)
	}

	env := &solveEnv{
		g:           g,
		opts:        opts,
		comm:        e.comm,
		dedup:       dedup,
		seedIdx:     e.seedIdx,
		mode:        cq.spec.Mode,
		groupOf:     cq.groupOf,
		numGroups:   len(cq.spec.Groups),
		penalty:     cq.penalty,
		res:         res,
		mstFragment: e.mstMode == MSTFragment && cq.spec.Mode != ModePrize,
		localENs:    e.localENs,
		pruneds:     e.pruneds,
		trees:       e.trees,
		owneds:      e.owneds,
		frags:       e.frags,
		st:          e.st,
		walked:      e.walked,
		walkedGen:   e.walkedGen,
	}
	s0 := e.comm.Stats()
	e.comm.Run(env.rankBody)
	if env.err != nil {
		return nil, env.err
	}
	s1 := e.comm.Stats()
	res.SuppressedBroadcasts = s1.Suppressed - s0.Suppressed
	res.BatchedBroadcasts = s1.BatchedBroadcasts - s0.BatchedBroadcasts
	res.CoalescedBroadcasts = s1.CoalescedBroadcasts - s0.CoalescedBroadcasts
	res.FrontierWorkers = s1.Frontier.Workers
	res.FrontierBucketsDrained = s1.Frontier.BucketsDrained - s0.Frontier.BucketsDrained
	res.FrontierMsgs = s1.Frontier.Messages - s0.Frontier.Messages
	res.FrontierMaxChunk = s1.Frontier.MaxChunk // high-water mark, not a delta
	res.FrontierConflicts = s1.Frontier.Conflicts - s0.Frontier.Conflicts
	res.FrontierBusyNs = s1.Frontier.BusyNs - s0.Frontier.BusyNs
	res.FrontierWallNs = s1.Frontier.WallNs - s0.Frontier.WallNs

	res.SteinerVertices = countSteinerVertices(res.Tree, dedup)
	res.Memory = memoryStats(g, e.ShardStats().ShardBytes, e.stateBytes(), e.localENs, res, opts)
	if err := finalizeResult(g, cq, res, opts.SkipValidation); err != nil {
		return nil, err
	}
	return res, nil
}
