package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"dsteiner/internal/graph"
	"dsteiner/internal/mst"
	"dsteiner/internal/partition"
	rt "dsteiner/internal/runtime"
	"dsteiner/internal/voronoi"
)

// Engine is a long-lived solver session bound to one graph: the partition,
// the communicator (with its pinned rank goroutines) and all O(|V|)
// algorithm state are built once and reused across Solve calls, so a query
// against a resident graph pays only work proportional to the query — the
// paper's §I interactive-exploration requirement. A cold Solve per query
// instead pays O(|V|) re-initialization (three Voronoi arrays, a walked
// bitmap, a fresh partition and P new goroutines) every time.
//
// Engine.Solve is safe for concurrent use but serializes internally; run
// several Engines over the same *graph.Graph (it is immutable and shared)
// for concurrent queries, as internal/steinersvc's engine pool does.
type Engine struct {
	g    *graph.Graph
	opts Options
	comm *rt.Comm

	// Sharded substrate, built once at session setup and pooled across
	// queries: the plan (per-rank owned sets + delegates) and one
	// rank-local CSR slab per rank. Nil in Options.GlobalCSR reference
	// mode.
	plan   *partition.ShardPlan
	shards []*graph.Shard

	mu sync.Mutex // serializes Solve on this engine

	// Pooled per-query state, reset in O(1) or O(query) between solves.
	// The production path keeps all per-vertex control state in rank-local
	// slabs (owned vertices + delegate mirrors + walk marks); the shared
	// arrays st/walked exist only in Options.GlobalCSR reference mode.
	slabs     []*voronoi.StateSlab  // rank-local control state (nil in GlobalCSR mode)
	st        *voronoi.State        // shared Voronoi arrays (GlobalCSR mode only)
	walked    []uint64              // shared phase-6 "walked" marks (GlobalCSR mode only)
	walkedGen uint64                // current walked epoch (GlobalCSR mode only)
	localENs  []map[int64]crossEdge // per-rank E_N tables, cleared per query
	seen      map[graph.VID]bool    // seed-validation scratch
	seedIdx   map[graph.VID]int32   // seed -> dense index, rebuilt per query
	pruneds   []map[int64]crossEdge // per-rank phase-5 survivors
	trees     [][]graph.Edge        // per-rank phase-6 edge accumulators
}

// NewEngine builds a reusable solver session for g. The returned Engine
// holds opts.Ranks pinned goroutines until Close. Engine pools serving one
// graph should build the first engine here and the rest with NewSibling,
// which shares the immutable shard substrate instead of rebuilding it.
func NewEngine(g *graph.Graph, opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	n := g.NumVertices()

	var part partition.Partition
	var err error
	switch opts.Partition {
	case PartitionHash:
		part, err = partition.NewHash(n, opts.Ranks)
	case PartitionArcBlock:
		part, err = partition.NewArcBlock(g, opts.Ranks)
	default:
		part, err = partition.NewBlock(n, opts.Ranks)
	}
	if err != nil {
		return nil, err
	}
	if opts.DelegateThreshold > 0 {
		part = partition.WithDelegates(part, g, opts.DelegateThreshold)
	}
	var plan *partition.ShardPlan
	var shards []*graph.Shard
	if !opts.GlobalCSR {
		plan, err = partition.NewShardPlan(part, g)
		if err != nil {
			return nil, err
		}
		shards = plan.BuildShards(g)
	}
	return newEngine(g, opts, part, plan, shards)
}

// NewSibling builds another engine over the same graph and options that
// shares the receiver's immutable substrate — partition, shard plan and
// rank-local shards — instead of rebuilding them. Shards are read-only
// after construction, so siblings solve concurrently on one shard set;
// each sibling still owns its communicator (pinned goroutines) and pooled
// per-query state, and must be Closed independently. Engine pools
// (internal/steinersvc) use this so a pool of N engines holds one copy of
// the sharded graph, not N.
func (e *Engine) NewSibling() (*Engine, error) {
	return newEngine(e.g, e.opts, e.comm.Partition(), e.plan, e.shards)
}

// newEngine wires a communicator and pooled per-query state around an
// already-built substrate. opts must have defaults applied.
func newEngine(g *graph.Graph, opts Options, part partition.Partition,
	plan *partition.ShardPlan, shards []*graph.Shard) (*Engine, error) {
	n := g.NumVertices()
	comm, err := rt.New(rt.Config{
		Ranks:           opts.Ranks,
		Queue:           opts.Queue,
		BucketDelta:     opts.BucketDelta,
		BatchSize:       opts.BatchSize,
		ShuffleDelivery: opts.ShuffleDelivery,
		ShuffleSeed:     opts.ShuffleSeed,
	}, part)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		g:        g,
		opts:     opts,
		comm:     comm,
		plan:     plan,
		shards:   shards,
		localENs: make([]map[int64]crossEdge, opts.Ranks),
		seen:     make(map[graph.VID]bool),
		seedIdx:  make(map[graph.VID]int32),
		pruneds:  make([]map[int64]crossEdge, opts.Ranks),
		trees:    make([][]graph.Edge, opts.Ranks),
	}
	if shards != nil {
		if err := comm.AttachShards(shards); err != nil {
			return nil, err
		}
		// Control state is rank-local like the adjacency: one slab per
		// rank, sharing the shard's vertex→row index. Slabs are mutable
		// per-query state, so every engine (including siblings sharing one
		// shard set) builds its own.
		e.slabs, err = voronoi.AttachSlabs(comm, plan, shards)
		if err != nil {
			return nil, err
		}
	} else {
		// GlobalCSR reference mode: shared state arrays indexed by global
		// VID, exactly the pre-slab implementation.
		e.st = voronoi.NewState(n)
		e.walked = make([]uint64, n)
	}
	comm.Start()
	for i := range e.localENs {
		e.localENs[i] = map[int64]crossEdge{}
		e.pruneds[i] = map[int64]crossEdge{}
	}
	return e, nil
}

// Close releases the engine's pinned rank goroutines. The Engine must not
// be used afterwards.
func (e *Engine) Close() { e.comm.Close() }

// stateBytes is the resident control-state footprint: the rank-local slabs
// on the production path, the shared arrays in GlobalCSR reference mode.
func (e *Engine) stateBytes() int64 {
	if e.slabs != nil {
		return e.comm.StateMemoryBytes()
	}
	return e.st.MemoryBytes()
}

// Graph returns the resident graph the engine is bound to.
func (e *Engine) Graph() *graph.Graph { return e.g }

// ShardStats describes an engine's sharded graph substrate, for serving
// layers (/info, /stats) and capacity planning.
type ShardStats struct {
	// Partition is the vertex-to-rank mapping kind ("block", "hash",
	// "arcblock").
	Partition string
	// Ranks is the number of shards (one per rank).
	Ranks int
	// DelegateThreshold is the configured high-degree cutoff (0 = off).
	DelegateThreshold int
	// Delegates is the number of vertices striped across all ranks.
	Delegates int
	// ShardBytes is the total resident size of all rank-local shards.
	ShardBytes int64
	// MaxShardBytes is the largest single rank's shard — the per-process
	// memory a multi-process backend would need.
	MaxShardBytes int64
	// StateSlabBytes is the total resident size of this engine's rank-local
	// control-state slabs (owned-vertex rows, delegate mirrors, walk
	// marks). Unlike shards, slabs are per-engine mutable state: a pool of
	// N engines holds N slab sets but one shard set.
	StateSlabBytes int64
	// MaxStateSlabBytes is the largest single rank's slab — together with
	// MaxShardBytes, the per-process footprint of a multi-process rank.
	MaxStateSlabBytes int64
}

// ShardStats reports the engine's shard substrate. In GlobalCSR reference
// mode only Partition/Ranks/DelegateThreshold are populated.
func (e *Engine) ShardStats() ShardStats {
	s := ShardStats{
		Partition:         e.opts.Partition.String(),
		Ranks:             e.opts.Ranks,
		DelegateThreshold: e.opts.DelegateThreshold,
	}
	if e.plan != nil {
		s.Delegates = e.plan.NumDelegates()
	}
	for _, sh := range e.shards {
		b := sh.MemoryBytes()
		s.ShardBytes += b
		if b > s.MaxShardBytes {
			s.MaxShardBytes = b
		}
	}
	for _, sl := range e.slabs {
		b := sl.MemoryBytes()
		s.StateSlabBytes += b
		if b > s.MaxStateSlabBytes {
			s.MaxStateSlabBytes = b
		}
	}
	return s
}

// Options returns the engine's configuration with defaults applied.
func (e *Engine) Options() Options { return e.opts }

// ErrDuplicateSeed marks a seed set that names the same terminal more than
// once. A repeated terminal is almost always a caller bug (a broken seed
// generator, a double-submitted form) and silently collapsing it would
// change the query's |S|, so it is rejected instead of deduplicated.
// Serving layers should surface it as a client error (internal/steinersvc
// maps it to HTTP 400).
var ErrDuplicateSeed = errors.New("duplicate seed")

// canonSeedSet validates seeds against an n-vertex graph and returns the
// canonical query form: the same terminals sorted ascending. Duplicate
// terminals are rejected with ErrDuplicateSeed. seen is the duplicate-check
// scratch (cleared first); the returned slice is freshly allocated, so it
// may be published in a Result without aliasing pooled state.
func canonSeedSet(n int, seeds []graph.VID, seen map[graph.VID]bool) ([]graph.VID, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("core: empty seed set")
	}
	clear(seen)
	canon := make([]graph.VID, 0, len(seeds))
	for _, s := range seeds {
		if s < 0 || int(s) >= n {
			return nil, fmt.Errorf("core: seed %d out of range [0,%d)", s, n)
		}
		if seen[s] {
			return nil, fmt.Errorf("core: %w: %d appears more than once", ErrDuplicateSeed, s)
		}
		seen[s] = true
		canon = append(canon, s)
	}
	sort.Slice(canon, func(i, j int) bool { return canon[i] < canon[j] })
	return canon, nil
}

// Solve computes a 2-approximate Steiner minimal tree of the resident graph
// for the given seed vertices. Duplicate seeds are rejected with
// ErrDuplicateSeed; all seeds must lie in one connected component, otherwise
// an error is returned. Results are identical to a cold Solve with the same
// options and seeds.
func (e *Engine) Solve(seeds []graph.VID) (*Result, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	dedup, err := canonSeedSet(e.g.NumVertices(), seeds, e.seen)
	if err != nil {
		return nil, err
	}
	return e.solveCanonLocked(dedup)
}

// BatchItem is one query's outcome within a SolveBatch call. Items succeed
// or fail independently: a bad seed set yields an Err without disturbing the
// other queries in the batch.
type BatchItem struct {
	Result *Result
	Err    error
}

// SolveBatch solves each terminal set in order on this engine's warm pooled
// state, entering the engine's internal serialization once for the whole
// slice instead of once per query — the amortized form for callers holding a
// list of queries (internal/steinersvc's POST /solve/batch). The returned
// slice has one BatchItem per input seed set, in input order. ctx is checked
// between items: once it is cancelled the remaining items fail with its
// error instead of pinning the engine on work nobody will read.
func (e *Engine) SolveBatch(ctx context.Context, seedSets [][]graph.VID) []BatchItem {
	out := make([]BatchItem, len(seedSets))
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, seeds := range seedSets {
		if err := ctx.Err(); err != nil {
			out[i].Err = err
			continue
		}
		dedup, err := canonSeedSet(e.g.NumVertices(), seeds, e.seen)
		if err != nil {
			out[i].Err = err
			continue
		}
		out[i].Result, out[i].Err = e.solveCanonLocked(dedup)
	}
	return out
}

// ValidateSeedSet checks seeds against an n-vertex graph without solving:
// empty, out-of-range and duplicate seed sets are rejected with the same
// errors Solve would return. Serving layers use it to fail submissions fast
// (before a job is queued) with exactly the solver's rules.
func ValidateSeedSet(n int, seeds []graph.VID) error {
	_, err := canonSeedSet(n, seeds, make(map[graph.VID]bool, len(seeds)))
	return err
}

// solveCanonLocked runs the six solver phases for a validated, sorted,
// duplicate-free seed set. The caller holds e.mu.
func (e *Engine) solveCanonLocked(dedup []graph.VID) (*Result, error) {
	res := &Result{Seeds: dedup}
	if len(dedup) == 1 {
		return res, nil
	}

	g, opts := e.g, e.opts
	if e.slabs != nil {
		e.comm.ResetStateSlabs() // O(P) epoch bumps, one per rank slab
	} else {
		e.st.Reset()
		e.walkedGen++
	}
	for i := range e.localENs {
		clear(e.localENs[i])
		clear(e.pruneds[i])
		e.trees[i] = e.trees[i][:0]
	}
	clear(e.seedIdx)
	seedIdx := e.seedIdx
	for i, s := range dedup {
		seedIdx[s] = int32(i)
	}
	var solveErr error // written by rank 0 only

	rec := &recorder{comm: e.comm, res: res}
	e.comm.Run(func(r *rt.Rank) {
		// Rank-local accessors: the production path reads this rank's CSR
		// slab for adjacency and its StateSlab for control state; the
		// GlobalCSR reference path scans the shared global arrays exactly
		// as before the shard/slab refactors. Adjacency lookups take an
		// owned vertex first (edge weights are symmetric, so looking up
		// {u, v} from u's slab row equals the global edge weight); state
		// access through st touches only owned vertices — remote state is
		// reached via the mailbox (the Alg. 5 request/reply exchange),
		// never direct reads.
		adjOf := r.Adj
		edgeWeight := r.EdgeWeight
		var st voronoi.Control
		var markWalked func(graph.VID) bool
		if opts.GlobalCSR {
			adjOf = g.Adj
			edgeWeight = g.HasEdge
			st = e.st
			markWalked = func(v graph.VID) bool {
				if e.walked[v] == e.walkedGen {
					return false
				}
				e.walked[v] = e.walkedGen
				return true
			}
		} else {
			sl := voronoi.SlabOf(r)
			st = sl
			markWalked = sl.MarkWalked
		}

		// Phase 1: Voronoi cells (Alg. 4).
		rec.phase(r, PhaseVoronoi, func() int64 {
			var ts rt.TraversalStats
			switch {
			case opts.GlobalCSR && opts.BSP:
				ts = voronoi.RunRankGlobalBSP(r, g, dedup, e.st)
			case opts.GlobalCSR:
				ts = voronoi.RunRankGlobal(r, g, dedup, e.st)
			case opts.BSP:
				ts = voronoi.RunRankBSP(r, dedup)
			default:
				ts = voronoi.RunRank(r, dedup)
			}
			return ts.Processed
		})

		// Phase 2: local min-distance cross-cell edges (Alg. 5,
		// LOCAL_MIN_DIST_EDGE_ASYNC). Remote endpoint state is fetched
		// with a request/reply visitor exchange.
		localEN := e.localENs[r.ID()]
		recordCandidate := func(u, v graph.VID, dv graph.Dist, srcV graph.VID) {
			su := st.Src(u)
			if su == graph.NilVID || srcV == graph.NilVID || su == srcV {
				return
			}
			w, ok := edgeWeight(u, v) // u is always owned by this rank
			if !ok {
				return
			}
			cand := crossEdge{D: st.Dist(u) + graph.Dist(w) + dv, U: u, V: v}
			key := seedKey(su, srcV)
			if cur, ok := localEN[key]; ok {
				localEN[key] = pickCross(cur, cand)
			} else {
				localEN[key] = cand
			}
		}
		rec.phase(r, PhaseLocalMinEdge, func() int64 {
			ts := r.Traverse(&rt.Traversal{
				BSP: opts.BSP,
				Init: func(r *rt.Rank) {
					r.OwnedVertices(func(u graph.VID) {
						if st.Src(u) == graph.NilVID {
							return
						}
						adj, _ := adjOf(u)
						for _, v := range adj {
							if u >= v {
								continue // lower endpoint initiates
							}
							if r.Owns(v) {
								recordCandidate(u, v, st.Dist(v), st.Src(v))
							} else {
								r.Send(rt.Msg{Target: v, From: u, Kind: kindReqDist})
							}
						}
					})
				},
				Visit: func(r *rt.Rank, m rt.Msg) {
					switch m.Kind {
					case kindReqDist:
						v := m.Target
						r.Send(rt.Msg{
							Target: m.From, From: v,
							Seed: st.Src(v), Dist: st.Dist(v),
							Kind: kindRepDist,
						})
					case kindRepDist:
						recordCandidate(m.Target, m.From, m.Dist, m.Seed)
					}
				},
			})
			return ts.Processed
		})

		// Phase 3: global min-distance edges —
		// MPI_Allreduce(MPI_MIN) over the per-rank E_N tables. With
		// CollectiveChunk set, the table is reduced in key-partitioned
		// chunks, trading collective-buffer memory for extra rounds
		// (the paper's §V-F mitigation for the |S|=10K blowup).
		var merged map[int64]crossEdge
		rec.phase(r, PhaseGlobalMinEdge, func() int64 {
			if opts.CollectiveChunk <= 0 {
				merged = rt.ReduceMap(r, localEN, pickCross)
				if r.ID() == 0 {
					res.CollectiveChunks = 1
				}
				return 0
			}
			maxSize := r.AllreduceMaxInt64(int64(len(localEN)))
			numChunks := int((maxSize + int64(opts.CollectiveChunk) - 1) / int64(opts.CollectiveChunk))
			if numChunks < 1 {
				numChunks = 1
			}
			merged = make(map[int64]crossEdge, len(localEN))
			for c := 0; c < numChunks; c++ {
				sub := map[int64]crossEdge{}
				for k, v := range localEN {
					if int(uint64(k)%uint64(numChunks)) == c {
						sub[k] = v
					}
				}
				for k, v := range rt.ReduceMap(r, sub, pickCross) {
					merged[k] = v
				}
			}
			if r.ID() == 0 {
				res.CollectiveChunks = numChunks
			}
			return 0
		})

		// Phase 4: sequential MST of the replicated distance graph G'₁
		// (Alg. 3 line 17). Every rank computes it locally — G'₁ is
		// small, so replication avoids remote copies, as in the paper.
		// seedIdx is shared read-only (built before the SPMD body).
		var mstPairs map[int64]bool
		rec.phase(r, PhaseMST, func() int64 {
			keys := make([]int64, 0, len(merged))
			for k := range merged {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			wedges := make([]mst.WEdge, len(keys))
			for i, k := range keys {
				s, t := unpackSeedKey(k)
				wedges[i] = mst.WEdge{U: seedIdx[s], V: seedIdx[t], W: merged[k].D}
			}
			var forest mst.Result
			switch opts.MST {
			case MSTKruskal:
				forest = mst.Kruskal(len(dedup), wedges)
			case MSTBoruvka:
				var rounds int
				forest, rounds = mst.Boruvka(len(dedup), wedges)
				if r.ID() == 0 {
					res.MSTRounds = rounds
				}
			default:
				forest = mst.Prim(len(dedup), wedges)
			}
			if r.ID() == 0 {
				res.DistGraphEdges = len(wedges)
			}
			if len(forest.Edges) < len(dedup)-1 {
				if r.ID() == 0 {
					solveErr = fmt.Errorf("core: seeds span %d connected components; Steiner tree requires one",
						len(dedup)-len(forest.Edges))
				}
				mstPairs = nil
				return 0
			}
			mstPairs = make(map[int64]bool, len(forest.Edges))
			for _, fe := range forest.Edges {
				mstPairs[seedKey(dedup[fe.U], dedup[fe.V])] = true
			}
			return 0
		})
		if mstPairs == nil {
			return // disconnected seeds: all ranks bail out identically
		}

		// Phase 5: global edge pruning (Alg. 5, EDGE_PRUNING_COLL) —
		// cross-cell edges whose cell pair is not an MST edge are
		// dropped. The total order in pickCross already guarantees a
		// unique survivor per pair, so no second collective is needed.
		pruned := e.pruneds[r.ID()]
		rec.phase(r, PhasePruning, func() int64 {
			for k, ce := range merged {
				if mstPairs[k] {
					pruned[k] = ce
				}
			}
			return 0
		})

		// Phase 6: Steiner tree edges (Alg. 6) — walk predecessor
		// chains from surviving cross-cell endpoints to cell seeds.
		// The walked marks are epoch-versioned like the Voronoi state,
		// so no O(|V|) bitmap is re-zeroed between queries, and the
		// per-rank accumulator keeps its capacity (the published tree
		// is a sorted copy, so reuse cannot leak across queries).
		localTree := e.trees[r.ID()]
		rec.phase(r, PhaseTreeEdge, func() int64 {
			ts := r.Traverse(&rt.Traversal{
				BSP: opts.BSP,
				Init: func(r *rt.Rank) {
					for _, ce := range pruned {
						if !r.Owns(ce.U) {
							continue // u's home partition records the edge
						}
						w, _ := edgeWeight(ce.U, ce.V)
						localTree = append(localTree, graph.Edge{U: ce.U, V: ce.V, W: w}.Canon())
						r.Send(rt.Msg{Target: ce.U})
						r.Send(rt.Msg{Target: ce.V})
					}
				},
				Visit: func(r *rt.Rank, m rt.Msg) {
					vj := m.Target
					if !markWalked(vj) {
						return
					}
					if vj == st.Src(vj) {
						return
					}
					p := st.Pred(vj)
					// vj is owned here; its predecessor may not be, so the
					// lookup goes through vj's slab row (weights are
					// symmetric).
					w, _ := edgeWeight(vj, p)
					localTree = append(localTree, graph.Edge{U: p, V: vj, W: w}.Canon())
					r.Send(rt.Msg{Target: p})
				},
			})
			return ts.Processed
		})
		e.trees[r.ID()] = localTree // keep the grown capacity pooled

		// Gather the final tree on every rank; rank 0 publishes it.
		tree := rt.AllGather(r, localTree)
		if r.ID() == 0 {
			sorted := append([]graph.Edge(nil), tree...)
			sort.Slice(sorted, func(i, j int) bool {
				if sorted[i].U != sorted[j].U {
					return sorted[i].U < sorted[j].U
				}
				return sorted[i].V < sorted[j].V
			})
			res.Tree = sorted
			res.TotalDistance = graph.TotalWeight(sorted)
		}
	})
	if solveErr != nil {
		return nil, solveErr
	}

	res.SteinerVertices = countSteinerVertices(res.Tree, dedup)
	res.Memory = memoryStats(g, e.ShardStats().ShardBytes, e.stateBytes(), e.localENs, res, opts)
	if !opts.SkipValidation {
		if err := graph.ValidateSteinerTree(g, dedup, res.Tree); err != nil {
			return nil, fmt.Errorf("core: internal error, invalid output: %w", err)
		}
	}
	return res, nil
}
