package core

import (
	"math/rand"
	"testing"
)

// BenchmarkFragmentMST pits the two phase 3-5 merge strategies against each
// other on a warm loopback engine at high terminal count — the regime where
// the replicated cross-table is largest and the fragment merge earns its
// keep. Both sub-benchmarks are tracked by benchgate so the loopback cost
// of either path can't drift silently PR over PR.
func BenchmarkFragmentMST(b *testing.B) {
	const n, k = 4000, 512
	g := engineTestGraph(41, n)
	rng := rand.New(rand.NewSource(9))
	seeds := pickEngineSeeds(rng, n, k)
	for _, mode := range []MSTMode{MSTFragment, MSTReplicated} {
		b.Run(mode.String(), func(b *testing.B) {
			opts := Default(4)
			opts.MSTMode = mode
			e, err := NewEngine(g, opts)
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			if _, err := e.Solve(seeds); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Solve(seeds); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
