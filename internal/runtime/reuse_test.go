package runtime

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// chainRun executes one fixed forwarding-chain traversal on c and returns
// the number of visits processed (15 when the run is clean).
func chainRun(c *Comm) int64 {
	const n = 32
	var total atomic.Int64
	c.Run(func(r *Rank) {
		st := r.Traverse(&Traversal{
			Visit: func(r *Rank, m Msg) {
				if m.Dist > 0 {
					r.Send(Msg{Target: (m.Target + 7) % n, Dist: m.Dist - 1})
				}
			},
			Init: func(r *Rank) {
				if r.ID() == 0 {
					r.Send(Msg{Target: 0, Dist: 9})
					r.Send(Msg{Target: 5, Dist: 4})
				}
			},
		})
		total.Add(st.Processed)
	})
	return total.Load()
}

func TestCommReusedAcrossRuns(t *testing.T) {
	for _, q := range []QueueKind{QueueFIFO, QueuePriority, QueueBucket} {
		c := newComm(t, 32, 4, q)
		for run := 0; run < 10; run++ {
			if got := chainRun(c); got != 15 {
				t.Fatalf("queue=%v run %d: processed %d, want 15", q, run, got)
			}
		}
	}
}

func TestPersistentWorkersReuse(t *testing.T) {
	c := newComm(t, 32, 4, QueuePriority)
	c.Start()
	c.Start() // idempotent
	defer c.Close()

	before := runtime.NumGoroutine()
	for run := 0; run < 20; run++ {
		if got := chainRun(c); got != 15 {
			t.Fatalf("run %d: processed %d, want 15", run, got)
		}
	}
	after := runtime.NumGoroutine()
	// Persistent mode must not leak a goroutine per run; allow slack for
	// unrelated runtime noise.
	if after > before+4 {
		t.Fatalf("goroutines grew %d -> %d across pinned runs", before, after)
	}
}

func TestCloseIsIdempotentAndRunStillWorks(t *testing.T) {
	c := newComm(t, 32, 2, QueueFIFO)
	c.Start()
	c.Close()
	c.Close()
	// After Close the Comm falls back to spawn-per-run mode.
	if got := chainRun(c); got != 15 {
		t.Fatalf("post-Close run: processed %d, want 15", got)
	}
}

func TestCommReuseAfterPanic(t *testing.T) {
	for _, persistent := range []bool{false, true} {
		c := newComm(t, 32, 4, QueueFIFO)
		if persistent {
			c.Start()
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic to propagate")
				}
			}()
			c.Run(func(r *Rank) {
				if r.ID() == 1 {
					panic("rank 1 exploded")
				}
				// Peers block on a collective; poisoning releases them.
				r.Barrier()
			})
		}()
		// The next run must start from a clean abort/collective state.
		for run := 0; run < 3; run++ {
			if got := chainRun(c); got != 15 {
				t.Fatalf("persistent=%v run %d after panic: processed %d, want 15",
					persistent, run, got)
			}
		}
		c.Close()
	}
}

func TestResetDiscardsStaleTraffic(t *testing.T) {
	// A panic mid-traversal can leave messages parked in outgoing buffers
	// and mailboxes; the next run must not observe them.
	c := newComm(t, 32, 4, QueueFIFO)
	func() {
		defer func() { _ = recover() }()
		c.Run(func(r *Rank) {
			if r.ID() == 0 {
				// Buffer traffic without flushing, then explode.
				for i := 0; i < 10; i++ {
					r.out[i%len(r.out)] = append(r.out[i%len(r.out)], Msg{Target: 1})
				}
				panic("boom")
			}
			r.Barrier()
		})
	}()
	var visits atomic.Int64
	c.Run(func(r *Rank) {
		st := r.Traverse(&Traversal{
			Visit: func(r *Rank, m Msg) {},
		})
		visits.Add(st.Processed)
	})
	if visits.Load() != 0 {
		t.Fatalf("stale traffic leaked into fresh run: %d visits", visits.Load())
	}
}
