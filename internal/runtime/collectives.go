package runtime

import "sync"

// collective implements all blocking collectives (barrier and allreduce)
// with a single serialized reduction round. Like MPI, every rank must call
// collectives in the same program order; a rank that panics poisons the
// communicator so blocked peers abort instead of hanging.
type collective struct {
	mu      sync.Mutex
	n       int
	arrived int
	acc     any
	ch      chan any
	abort   <-chan struct{}
}

func newCollective(n int, abort <-chan struct{}) *collective {
	return &collective{n: n, ch: make(chan any, n-1), abort: abort}
}

// errAborted is the panic payload raised on ranks blocked in a collective
// or traversal when a peer rank panics.
const errAborted = "runtime: communicator poisoned by a peer rank panic"

// poison unblocks every rank waiting on collectives or traversals.
func (c *Comm) poison() {
	c.abortOnce.Do(func() { close(c.abort) })
}

// reduce combines each rank's contribution with an associative,
// commutative combiner and returns the result to every rank.
func (c *collective) reduce(local any, combine func(a, b any) any) any {
	c.mu.Lock()
	if c.arrived == 0 {
		c.acc = local
	} else {
		c.acc = combine(c.acc, local)
	}
	c.arrived++
	if c.arrived == c.n {
		res := c.acc
		ch := c.ch
		c.arrived = 0
		c.acc = nil
		c.ch = make(chan any, c.n-1)
		c.mu.Unlock()
		for i := 0; i < c.n-1; i++ {
			ch <- res
		}
		return res
	}
	ch := c.ch
	c.mu.Unlock()
	select {
	case res := <-ch:
		return res
	case <-c.abort:
		panic(errAborted)
	}
}

// combineOp returns the in-process combiner for an int64 collective.
func combineOp(op CollOp) func(a, b any) any {
	switch op {
	case OpMin:
		return func(a, b any) any {
			if b.(int64) < a.(int64) {
				return b
			}
			return a
		}
	case OpMax:
		return func(a, b any) any {
			if b.(int64) > a.(int64) {
				return b
			}
			return a
		}
	default: // OpSum, OpBarrier (value unused)
		return func(a, b any) any { return a.(int64) + b.(int64) }
	}
}

// leaderTag carries a wire-collective result from the process leader (the
// lowest hosted rank) to its sibling ranks through a second local round.
type leaderTag struct {
	has bool
	val any
}

// pickLeader is the local combiner of the distribution round.
func pickLeader(a, b any) any {
	if a.(leaderTag).has {
		return a
	}
	return b
}

// wireInt64 runs one hierarchical int64 collective: combine the hosted
// ranks' contributions in-process, let the leader exchange the process
// partial with the coordinator over the transport, then distribute the
// global result locally. Every hosted rank must call it (same program
// order), like any collective.
func (c *Comm) wireInt64(r *Rank, op CollOp, x int64) int64 {
	local := c.coll.reduce(x, combineOp(op)).(int64)
	var tag leaderTag
	if r.id == c.lo {
		tag = leaderTag{has: true, val: c.trans.AllreduceInt64(op, local)}
	}
	return c.coll.reduce(tag, pickLeader).(leaderTag).val.(int64)
}

// Barrier blocks until every rank reaches it (MPI_Barrier). Across a
// transport it is also a delivery fence: message batches sent by any rank
// before its barrier are in the destination mailboxes afterwards.
func (r *Rank) Barrier() {
	c := r.comm
	if c.trans == nil {
		c.coll.reduce(nil, func(a, _ any) any { return a })
		return
	}
	c.coll.reduce(nil, func(a, _ any) any { return a })
	if r.id == c.lo {
		c.trans.Barrier()
	}
	c.coll.reduce(nil, func(a, _ any) any { return a })
}

// AllreduceSumInt64 returns the sum of every rank's x (MPI_Allreduce SUM).
func (r *Rank) AllreduceSumInt64(x int64) int64 {
	c := r.comm
	if c.trans == nil {
		return c.coll.reduce(x, combineOp(OpSum)).(int64)
	}
	return c.wireInt64(r, OpSum, x)
}

// AllreduceMinInt64 returns the minimum of every rank's x
// (MPI_Allreduce MIN).
func (r *Rank) AllreduceMinInt64(x int64) int64 {
	c := r.comm
	if c.trans == nil {
		return c.coll.reduce(x, combineOp(OpMin)).(int64)
	}
	return c.wireInt64(r, OpMin, x)
}

// AllreduceMaxInt64 returns the maximum of every rank's x
// (MPI_Allreduce MAX).
func (r *Rank) AllreduceMaxInt64(x int64) int64 {
	c := r.comm
	if c.trans == nil {
		return c.coll.reduce(x, combineOp(OpMax)).(int64)
	}
	return c.wireInt64(r, OpMax, x)
}

// GatherBlobs concatenates every rank's blob in global rank order and
// returns the full list (one entry per rank, nil where a rank contributed
// nothing) to all ranks. It is the wire-able MPI_Allgatherv: algorithms
// that must gather across a transport encode their payloads to bytes and
// use this instead of the generic AllGather.
func GatherBlobs(r *Rank, blob []byte) [][]byte {
	c := r.comm
	type rb struct {
		rank int
		blob []byte
	}
	parts := c.coll.reduce([]rb{{rank: r.id, blob: blob}}, func(a, b any) any {
		return append(a.([]rb), b.([]rb)...)
	}).([]rb)
	if c.trans == nil {
		out := make([][]byte, c.cfg.Ranks)
		for _, p := range parts {
			out[p.rank] = p.blob
		}
		return out
	}
	var tag leaderTag
	if r.id == c.lo {
		ranks := make([]int, len(parts))
		blobs := make([][]byte, len(parts))
		for i, p := range parts {
			ranks[i] = p.rank
			blobs[i] = p.blob
		}
		tag = leaderTag{has: true, val: c.trans.Gather(ranks, blobs)}
	}
	return c.coll.reduce(tag, pickLeader).(leaderTag).val.([][]byte)
}

// FragmentExchange routes the fragment-merge MST's per-round blobs: every
// rank contributes its routed blobs (Dest = a global rank, or -1 for
// broadcast to all) and receives back exactly the blobs addressed to it
// plus every broadcast blob, in no particular order (callers that need
// determinism sort by blob content). Every rank must call it in the same
// program order, like any collective. Across a transport the coordinator
// personalizes each process's reply, so a routed blob crosses the wire
// twice (up, down) instead of down P times — the fragment merge's wire-byte
// win over GatherBlobs.
func FragmentExchange(r *Rank, blobs []FragBlob) []FragBlob {
	c := r.comm
	type contrib struct{ blobs []FragBlob }
	all := c.coll.reduce(contrib{blobs: blobs}, func(a, b any) any {
		return contrib{blobs: append(a.(contrib).blobs, b.(contrib).blobs...)}
	}).(contrib).blobs
	if c.trans != nil {
		var tag leaderTag
		if r.id == c.lo {
			tag = leaderTag{has: true, val: c.trans.FragmentExchange(all)}
		}
		all = c.coll.reduce(tag, pickLeader).(leaderTag).val.([]FragBlob)
	}
	// The merged list is shared between hosted ranks: filter into a fresh
	// per-rank slice.
	var out []FragBlob
	for _, fb := range all {
		if fb.Dest == r.id || fb.Dest == -1 {
			out = append(out, fb)
		}
	}
	return out
}

// FragmentSummary reports one query's fragment-merge totals to the
// coordinator: the hosted ranks' summaries are combined in-process (max of
// rounds — they must agree — sum of the rest) and the process leader ships
// the partial. A no-op without a transport. Every rank must call it.
func FragmentSummary(r *Rank, s FragSummary) {
	c := r.comm
	total := c.coll.reduce(s, func(a, b any) any {
		as, bs := a.(FragSummary), b.(FragSummary)
		return FragSummary{
			Rounds: max(as.Rounds, bs.Rounds),
			Msgs:   as.Msgs + bs.Msgs,
			Bytes:  as.Bytes + bs.Bytes,
		}
	}).(FragSummary)
	if c.trans != nil && r.id == c.lo {
		c.trans.FragmentSummary(total)
	}
}

// wireOnly panics: the generic shared-memory collectives cannot cross a
// process boundary (their payloads are arbitrary Go values and their
// combiners are closures). Transport-aware algorithms use the int64
// allreduces and GatherBlobs.
func wireOnly(c *Comm, name string) {
	if c.trans != nil {
		panic("runtime: " + name + " is in-process only; use GatherBlobs/AllreduceXxxInt64 over a transport")
	}
}

// Allreduce combines each rank's value with an associative, commutative
// combiner and returns the global result on every rank. The returned value
// may be shared between ranks; treat it as read-only.
func Allreduce[T any](r *Rank, local T, combine func(a, b T) T) T {
	wireOnly(r.comm, "Allreduce")
	res := r.comm.coll.reduce(local, func(a, b any) any { return combine(a.(T), b.(T)) })
	return res.(T)
}

// ReduceMap merges per-rank maps: for keys present on several ranks, pick
// chooses the surviving value (it must be associative and commutative, e.g.
// a min with deterministic tie-breaking). This is the repository's
// MPI_Allreduce(MPI_MIN)-over-edge-buffers equivalent used by Alg. 5. The
// returned map is shared by all ranks and must be treated as read-only; the
// local map's entries are copied, so callers keep ownership of their input.
func ReduceMap[K comparable, V any](r *Rank, local map[K]V, pick func(a, b V) V) map[K]V {
	wireOnly(r.comm, "ReduceMap")
	cp := make(map[K]V, len(local))
	for k, v := range local {
		cp[k] = v
	}
	res := r.comm.coll.reduce(cp, func(a, b any) any {
		am, bm := a.(map[K]V), b.(map[K]V)
		// Merge the smaller map into the larger to bound work.
		if len(am) < len(bm) {
			am, bm = bm, am
		}
		for k, v := range bm {
			if cur, ok := am[k]; ok {
				am[k] = pick(cur, v)
			} else {
				am[k] = v
			}
		}
		return am
	})
	merged := res.(map[K]V)
	if merged == nil {
		merged = map[K]V{}
	}
	return merged
}

// AllGather concatenates every rank's slice in rank order and returns the
// result to all ranks (MPI_Allgatherv). The result is shared; treat as
// read-only.
func AllGather[T any](r *Rank, local []T) []T {
	wireOnly(r.comm, "AllGather")
	type contrib struct {
		rank int
		vals []T
	}
	res := r.comm.coll.reduce([]contrib{{rank: r.id, vals: local}}, func(a, b any) any {
		return append(a.([]contrib), b.([]contrib)...)
	})
	parts := res.([]contrib)
	// Deterministic rank order regardless of arrival order.
	ordered := make([][]T, r.NumRanks())
	total := 0
	for _, p := range parts {
		ordered[p.rank] = p.vals
		total += len(p.vals)
	}
	out := make([]T, 0, total)
	for _, vals := range ordered {
		out = append(out, vals...)
	}
	return out
}

// Broadcast1 distributes root's value to every rank (MPI_Bcast).
func Broadcast1[T any](r *Rank, root int, val T) T {
	wireOnly(r.comm, "Broadcast1")
	type tagged struct {
		has bool
		val T
	}
	in := tagged{}
	if r.id == root {
		in = tagged{has: true, val: val}
	}
	res := r.comm.coll.reduce(in, func(a, b any) any {
		at, bt := a.(tagged), b.(tagged)
		if at.has {
			return at
		}
		return bt
	})
	return res.(tagged).val
}
