package runtime

import "sync"

// collective implements all blocking collectives (barrier and allreduce)
// with a single serialized reduction round. Like MPI, every rank must call
// collectives in the same program order; a rank that panics poisons the
// communicator so blocked peers abort instead of hanging.
type collective struct {
	mu      sync.Mutex
	n       int
	arrived int
	acc     any
	ch      chan any
	abort   <-chan struct{}
}

func newCollective(n int, abort <-chan struct{}) *collective {
	return &collective{n: n, ch: make(chan any, n-1), abort: abort}
}

// errAborted is the panic payload raised on ranks blocked in a collective
// or traversal when a peer rank panics.
const errAborted = "runtime: communicator poisoned by a peer rank panic"

// poison unblocks every rank waiting on collectives or traversals.
func (c *Comm) poison() {
	c.abortOnce.Do(func() { close(c.abort) })
}

// reduce combines each rank's contribution with an associative,
// commutative combiner and returns the result to every rank.
func (c *collective) reduce(local any, combine func(a, b any) any) any {
	c.mu.Lock()
	if c.arrived == 0 {
		c.acc = local
	} else {
		c.acc = combine(c.acc, local)
	}
	c.arrived++
	if c.arrived == c.n {
		res := c.acc
		ch := c.ch
		c.arrived = 0
		c.acc = nil
		c.ch = make(chan any, c.n-1)
		c.mu.Unlock()
		for i := 0; i < c.n-1; i++ {
			ch <- res
		}
		return res
	}
	ch := c.ch
	c.mu.Unlock()
	select {
	case res := <-ch:
		return res
	case <-c.abort:
		panic(errAborted)
	}
}

// Barrier blocks until every rank reaches it (MPI_Barrier).
func (r *Rank) Barrier() {
	r.comm.coll.reduce(nil, func(a, _ any) any { return a })
}

// AllreduceSumInt64 returns the sum of every rank's x (MPI_Allreduce SUM).
func (r *Rank) AllreduceSumInt64(x int64) int64 {
	res := r.comm.coll.reduce(x, func(a, b any) any { return a.(int64) + b.(int64) })
	return res.(int64)
}

// AllreduceMinInt64 returns the minimum of every rank's x
// (MPI_Allreduce MIN).
func (r *Rank) AllreduceMinInt64(x int64) int64 {
	res := r.comm.coll.reduce(x, func(a, b any) any {
		if b.(int64) < a.(int64) {
			return b
		}
		return a
	})
	return res.(int64)
}

// AllreduceMaxInt64 returns the maximum of every rank's x
// (MPI_Allreduce MAX).
func (r *Rank) AllreduceMaxInt64(x int64) int64 {
	res := r.comm.coll.reduce(x, func(a, b any) any {
		if b.(int64) > a.(int64) {
			return b
		}
		return a
	})
	return res.(int64)
}

// Allreduce combines each rank's value with an associative, commutative
// combiner and returns the global result on every rank. The returned value
// may be shared between ranks; treat it as read-only.
func Allreduce[T any](r *Rank, local T, combine func(a, b T) T) T {
	res := r.comm.coll.reduce(local, func(a, b any) any { return combine(a.(T), b.(T)) })
	return res.(T)
}

// ReduceMap merges per-rank maps: for keys present on several ranks, pick
// chooses the surviving value (it must be associative and commutative, e.g.
// a min with deterministic tie-breaking). This is the repository's
// MPI_Allreduce(MPI_MIN)-over-edge-buffers equivalent used by Alg. 5. The
// returned map is shared by all ranks and must be treated as read-only; the
// local map's entries are copied, so callers keep ownership of their input.
func ReduceMap[K comparable, V any](r *Rank, local map[K]V, pick func(a, b V) V) map[K]V {
	cp := make(map[K]V, len(local))
	for k, v := range local {
		cp[k] = v
	}
	res := r.comm.coll.reduce(cp, func(a, b any) any {
		am, bm := a.(map[K]V), b.(map[K]V)
		// Merge the smaller map into the larger to bound work.
		if len(am) < len(bm) {
			am, bm = bm, am
		}
		for k, v := range bm {
			if cur, ok := am[k]; ok {
				am[k] = pick(cur, v)
			} else {
				am[k] = v
			}
		}
		return am
	})
	merged := res.(map[K]V)
	if merged == nil {
		merged = map[K]V{}
	}
	return merged
}

// AllGather concatenates every rank's slice in rank order and returns the
// result to all ranks (MPI_Allgatherv). The result is shared; treat as
// read-only.
func AllGather[T any](r *Rank, local []T) []T {
	type contrib struct {
		rank int
		vals []T
	}
	res := r.comm.coll.reduce([]contrib{{rank: r.id, vals: local}}, func(a, b any) any {
		return append(a.([]contrib), b.([]contrib)...)
	})
	parts := res.([]contrib)
	// Deterministic rank order regardless of arrival order.
	ordered := make([][]T, r.NumRanks())
	total := 0
	for _, p := range parts {
		ordered[p.rank] = p.vals
		total += len(p.vals)
	}
	out := make([]T, 0, total)
	for _, vals := range ordered {
		out = append(out, vals...)
	}
	return out
}

// Broadcast1 distributes root's value to every rank (MPI_Bcast).
func Broadcast1[T any](r *Rank, root int, val T) T {
	type tagged struct {
		has bool
		val T
	}
	in := tagged{}
	if r.id == root {
		in = tagged{has: true, val: val}
	}
	res := r.comm.coll.reduce(in, func(a, b any) any {
		at, bt := a.(tagged), b.(tagged)
		if at.has {
			return at
		}
		return bt
	})
	return res.(tagged).val
}
