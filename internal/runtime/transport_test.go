package runtime

import (
	"reflect"
	"strings"
	"testing"

	"dsteiner/internal/graph"
	"dsteiner/internal/partition"
)

// TestHostedRangeValidation pins the Config.HostLo/HostHi contract: a
// proper subset requires a Transport, bad ranges are rejected, and the
// zero value hosts everything.
func TestHostedRangeValidation(t *testing.T) {
	part, err := partition.NewBlock(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Ranks: 4, HostLo: 1, HostHi: 3}, part); err == nil ||
		!strings.Contains(err.Error(), "requires a Transport") {
		t.Fatalf("subset without transport: %v", err)
	}
	for _, bad := range [][2]int{{-1, 2}, {2, 2}, {3, 2}, {0, 5}} {
		if _, err := New(Config{Ranks: 4, HostLo: bad[0], HostHi: bad[1]}, part); err == nil {
			t.Fatalf("range %v accepted", bad)
		}
	}
	c := MustNew(Config{Ranks: 4}, part)
	if lo, hi := c.HostRange(); lo != 0 || hi != 4 {
		t.Fatalf("default host range [%d,%d), want [0,4)", lo, hi)
	}
	if c.Distributed() {
		t.Fatal("loopback comm claims to be distributed")
	}
}

// TestGatherBlobsLoopback checks the wire-able gather collective against
// the in-process path: every rank receives the full rank-ordered list.
func TestGatherBlobsLoopback(t *testing.T) {
	part, err := partition.NewBlock(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	c := MustNew(Config{Ranks: 4}, part)
	got := make([][][]byte, 4)
	c.Run(func(r *Rank) {
		var blob []byte
		if r.ID() != 2 { // rank 2 contributes nothing
			blob = []byte{byte(r.ID()), byte(r.ID() + 10)}
		}
		got[r.ID()] = GatherBlobs(r, blob)
	})
	want := [][]byte{{0, 10}, {1, 11}, nil, {3, 13}}
	for rank, g := range got {
		if !reflect.DeepEqual(g, want) {
			t.Fatalf("rank %d gathered %v, want %v", rank, g, want)
		}
	}
}

// TestSuppressCounter checks Rank.Suppress feeds Stats.Suppressed and
// ResetStats clears it.
func TestSuppressCounter(t *testing.T) {
	part, err := partition.NewBlock(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := MustNew(Config{Ranks: 2}, part)
	c.Run(func(r *Rank) {
		for i := 0; i <= r.ID(); i++ {
			r.Suppress()
		}
	})
	if got := c.Stats().Suppressed; got != 3 {
		t.Fatalf("suppressed = %d, want 3", got)
	}
	if got := c.Stats().Net; got != (TransportStats{}) {
		t.Fatalf("loopback comm reports transport traffic: %+v", got)
	}
	c.ResetStats()
	if got := c.Stats().Suppressed; got != 0 {
		t.Fatalf("suppressed after reset = %d", got)
	}
}

// TestHasDelegates pins the cheap gate the voronoi changed-since filter
// keys on.
func TestHasDelegates(t *testing.T) {
	base, err := partition.NewBlock(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	probe := func(p partition.Partition, want bool) {
		t.Helper()
		c := MustNew(Config{Ranks: 2}, p)
		c.Run(func(r *Rank) {
			if got := r.HasDelegates(); got != want {
				t.Errorf("HasDelegates = %v, want %v", got, want)
			}
		})
	}
	probe(base, false)
	probe(partition.WithDelegateList(base, 6, nil), false)
	probe(partition.WithDelegateList(base, 6, []graph.VID{3}), true)
}

// TestGenericCollectivesRefuseTransport checks the shared-memory
// collectives fail loudly instead of silently reducing over a rank
// subset. A fake transport is enough — the panic must fire before any
// traffic.
func TestGenericCollectivesRefuseTransport(t *testing.T) {
	part, err := partition.NewBlock(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	c := MustNew(Config{Ranks: 4, HostLo: 0, HostHi: 2, Transport: nopTransport{}}, part)
	defer func() {
		if p := recover(); p == nil || !strings.Contains(p.(string), "in-process only") {
			t.Fatalf("ReduceMap over a transport: recovered %v", p)
		}
	}()
	wireOnly(c, "ReduceMap")
}

// nopTransport satisfies Transport for construction-only tests.
type nopTransport struct{}

func (nopTransport) Attach(TransportHost)                     {}
func (nopTransport) Deliver(int, []Msg)                       {}
func (nopTransport) Barrier()                                 {}
func (nopTransport) AllreduceInt64(_ CollOp, x int64) int64   { return x }
func (nopTransport) Gather(_ []int, b [][]byte) [][]byte      { return b }
func (nopTransport) FragmentExchange(b []FragBlob) []FragBlob { return b }
func (nopTransport) FragmentSummary(FragSummary)              {}
func (nopTransport) StartTraversal(uint64) chan struct{}      { return make(chan struct{}) }
func (nopTransport) Stats() TransportStats                    { return TransportStats{} }
func (nopTransport) Close() error                             { return nil }
