package runtime

import (
	"context"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"

	"dsteiner/internal/pq"
)

// This file implements the intra-rank parallel frontier: Δ-stepping bucket
// drains executed by a per-rank worker pool. The monotone bucket queue
// (pq.Bucket) groups messages into one [iΔ, (i+1)Δ) distance window whose
// relaxations are mutually independent up to the per-vertex lex-min merge,
// so a whole bucket can be relaxed concurrently without changing the fixed
// point the traversal converges to.
//
// Determinism and race-freedom come from two rules:
//
//  1. Ownership partition. A drained bucket is split by Target: worker w
//     processes exactly the messages with Target % workers == w. Per-vertex
//     state (owned slab rows and delegate mirror rows alike) is keyed by
//     Target, so no two workers ever touch the same row, and same-vertex
//     messages keep their bucket-FIFO order within one worker. Visits are
//     lock-free by construction.
//
//  2. Staged sends. Workers never send: the ParallelVisit callback emits
//     raw outbound messages into a per-worker staging outbox. After all
//     workers join, the rank goroutine replays the stages in worker-index
//     order through ParallelFlush — the rank's normal send path, including
//     the changed-since filter (which now reads fully-merged mirror state,
//     single-threaded) and the superstep delegate outbox. Wire traffic,
//     tie-send rules and batching are byte-for-byte those of the serial
//     path.
type frontierPool struct {
	workers int
	r       *Rank
	kick    []chan struct{}
	wg      sync.WaitGroup

	// Per-drain shared inputs, written by the rank goroutine before the
	// kick (the channel send publishes them to the workers).
	items []Msg
	visit ParallelVisitFunc

	// Per-worker outputs, read by the rank goroutine after the wg join.
	stage     [][]Msg
	emit      []func(Msg) // prebuilt appenders, one per worker
	chunk     []int64     // messages this worker relaxed in the last drain
	conflicts []int64     // lex-min tie-break rejections (cumulative, folded per drain)
	busyNs    []int64     // busy time in the last drain
}

// ParallelVisitFunc is the bucket-drain form of VisitFunc: it must apply
// m to this rank's own per-vertex state (safe because the pool partitions
// a bucket by Target) and emit any outbound messages instead of sending
// them. worker identifies the calling pool worker for conflict accounting
// (Rank.FrontierConflict).
type ParallelVisitFunc func(r *Rank, m Msg, worker int, emit func(Msg))

// newFrontierPool spawns workers goroutines pinned to rank r. Workers park
// on their kick channel between drains and exit when it closes.
func newFrontierPool(r *Rank, workers int) *frontierPool {
	p := &frontierPool{
		workers:   workers,
		r:         r,
		kick:      make([]chan struct{}, workers),
		stage:     make([][]Msg, workers),
		emit:      make([]func(Msg), workers),
		chunk:     make([]int64, workers),
		conflicts: make([]int64, workers),
		busyNs:    make([]int64, workers),
	}
	for w := 0; w < workers; w++ {
		w := w
		p.kick[w] = make(chan struct{}, 1)
		p.emit[w] = func(m Msg) { p.stage[w] = append(p.stage[w], m) }
		go p.worker(w)
	}
	return p
}

// worker is one pool goroutine: wait for a kick, relax this worker's share
// of the drained bucket against the rank's own state, stage outbound
// messages, and report back through the WaitGroup.
func (p *frontierPool) worker(w int) {
	pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(), pprof.Labels(
		"rank", strconv.Itoa(p.r.id),
		"frontier_worker", strconv.Itoa(w),
	)))
	mod := uint32(p.workers)
	for range p.kick[w] {
		t0 := time.Now()
		n := int64(0)
		for _, m := range p.items {
			if uint32(m.Target)%mod != uint32(w) {
				continue
			}
			p.visit(p.r, m, w, p.emit[w])
			n++
		}
		p.chunk[w] = n
		p.busyNs[w] = time.Since(t0).Nanoseconds()
		p.wg.Done()
	}
}

// close releases the pool goroutines.
func (p *frontierPool) close() {
	for _, ch := range p.kick {
		close(ch)
	}
}

// FrontierConflict records one parallel-drain relaxation rejected by the
// per-vertex lex-min tie-break — a merge conflict between concurrently
// relaxed chunks, surfaced as Stats.Frontier.Conflicts. Valid only inside a
// ParallelVisit callback on worker w (the counter is worker-local).
func (r *Rank) FrontierConflict(w int) { r.pool.conflicts[w]++ }

// ensureFrontierPool lazily creates this rank's worker pool (Comm.Close
// releases it; a later run recreates it on demand).
func (r *Rank) ensureFrontierPool() {
	if r.pool == nil {
		r.pool = newFrontierPool(r, r.comm.frontierWorkers())
	}
}

// frontierWorkers resolves the per-rank worker count from the per-process
// budget: max(1, FrontierWorkers / hosted ranks), defaulting the budget to
// GOMAXPROCS so a loopback communicator splits the machine across its P
// ranks and a one-rank-per-process fleet gives each rank the whole host.
func (c *Comm) frontierWorkers() int {
	budget := c.cfg.FrontierWorkers
	if budget <= 0 {
		budget = maxProcs()
	}
	w := budget / len(c.ranks)
	if w < 1 {
		w = 1
	}
	return w
}

// parallelDrain relaxes the rank's drained bucket (r.drainBuf) on the worker
// pool, then replays the per-worker staging outboxes in worker-index order
// through flush. Staged sends are replayed — and counted against the
// termination counter — before the caller releases the drained messages'
// own pending units, so quiescence can never be declared mid-drain.
func (r *Rank) parallelDrain(flush VisitFunc) {
	p := r.pool
	c := r.comm
	t0 := time.Now()
	p.items = r.drainBuf
	p.visit = r.pvisit
	p.wg.Add(p.workers)
	for _, ch := range p.kick {
		ch <- struct{}{}
	}
	p.wg.Wait()
	var busy, maxChunk, conflicts int64
	for w := 0; w < p.workers; w++ {
		busy += p.busyNs[w]
		conflicts += p.conflicts[w]
		p.conflicts[w] = 0
		if p.chunk[w] > maxChunk {
			maxChunk = p.chunk[w]
		}
		for _, m := range p.stage[w] {
			flush(r, m)
		}
		p.stage[w] = p.stage[w][:0]
	}
	n := int64(len(r.drainBuf))
	r.drainsHere++
	r.frontierMsgsHere += n
	c.frontierDrains.Add(1)
	c.frontierMsgs.Add(n)
	c.frontierConflicts.Add(conflicts)
	c.frontierBusyNs.Add(busy)
	c.frontierWallNs.Add(time.Since(t0).Nanoseconds())
	for {
		cur := c.frontierMaxChunk.Load()
		if maxChunk <= cur || c.frontierMaxChunk.CompareAndSwap(cur, maxChunk) {
			break
		}
	}
}

// drainFrontier pops the entire current Δ-bucket and relaxes it: on the
// worker pool when the bucket is big enough to amortize the pool dispatch,
// serially through the ordinary Visit path otherwise (both converge to the
// same fixed point — the serial path is the degenerate one-chunk order).
// It returns the number of messages processed; 0 means the queue is empty
// (or the traversal is not bucket-parallel — bq nil).
func (r *Rank) drainFrontier(bq *pq.Bucket[Msg]) int64 {
	if bq == nil {
		return 0
	}
	r.drainBuf = bq.DrainBucket(r.drainBuf[:0])
	n := int64(len(r.drainBuf))
	if n == 0 {
		return 0
	}
	if n < int64(2*r.pool.workers) {
		for _, m := range r.drainBuf {
			r.visit(r, m)
		}
	} else {
		r.parallelDrain(r.pflush)
	}
	r.comm.processed.Add(n)
	r.processedHere += n
	return n
}

// FrontierStats reports intra-rank parallel-frontier work: Δ-stepping
// bucket drains executed by the per-rank worker pools. All counters are
// zero when the parallel frontier is disabled.
type FrontierStats struct {
	// Workers is the resolved worker count per hosted rank (0 when the
	// parallel frontier is disabled).
	Workers int
	// BucketsDrained counts whole-bucket parallel drains.
	BucketsDrained int64
	// Messages counts relaxations executed inside parallel drains.
	Messages int64
	// MaxChunk is the largest per-worker chunk of any drain (high-water
	// mark, not a delta-able counter).
	MaxChunk int64
	// Conflicts counts relaxations rejected by the per-vertex lex-min
	// tie-break during parallel drains — the commutative merge doing its
	// job on concurrently relaxed chunks.
	Conflicts int64
	// BusyNs is cumulative worker busy time inside drains; BusyNs /
	// (WallNs * Workers) is the pool's busy fraction.
	BusyNs int64
	// WallNs is cumulative wall time of parallel drains.
	WallNs int64
}
