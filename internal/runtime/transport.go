package runtime

import "sync"

// Transport carries cross-process traffic for a communicator that hosts
// only a subset of the P ranks (Config.HostLo/HostHi). It is the seam the
// ROADMAP's multi-process backend plugs into: message batches, collectives
// and termination detection cross it, while the visitor code above —
// which already cannot reach outside shard + slab + mailbox — is unchanged.
//
// Two implementations exist: loopback (a nil Transport — all ranks
// in-process, mailbox delivery, the perf baseline) and the TCP backend in
// internal/transport (length-prefixed wire frames, per-peer write
// coalescing, a coordinator-rooted collective tree and a Safra-style
// termination-token ring).
//
// Contract: Deliver and the collective calls originate on rank goroutines;
// Inbound traffic flows back through the TransportHost the communicator
// registers via Attach. A transport that fails (peer loss, decode error)
// must panic out of any blocked call and Poison the host so every local
// rank unwinds instead of hanging.
type Transport interface {
	// Attach registers the communicator-side callbacks. Called once,
	// before any traffic.
	Attach(host TransportHost)
	// Deliver ships one visitor-message batch to remote rank dest. The
	// transport takes ownership of the batch buffer and recycles it
	// through the host's free lists after encoding.
	Deliver(dest int, batch []Msg)
	// Barrier runs the cross-process phase of a barrier. It must also act
	// as a delivery fence: every batch Delivered by any process before it
	// entered the barrier is in the destination mailboxes when Barrier
	// returns.
	Barrier()
	// AllreduceInt64 runs the cross-process phase of an int64 allreduce
	// over the per-process partial x (op is OpSum, OpMin or OpMax).
	AllreduceInt64(op CollOp, x int64) int64
	// Gather runs the cross-process phase of a rank-ordered blob gather:
	// ranks/blobs are this process's hosted ranks' contributions; the
	// result has one entry per global rank, in rank order, identical on
	// every process.
	Gather(ranks []int, blobs [][]byte) [][]byte
	// FragmentExchange runs the cross-process phase of one fragment-merge
	// MST exchange: blobs are this process's hosted ranks' routed
	// contributions (Dest = a global rank, or -1 for broadcast-to-all);
	// the result is every blob addressed to one of this process's hosted
	// ranks plus every broadcast blob. Unlike Gather, the coordinator
	// personalizes each process's reply, so a routed blob crosses the wire
	// up (once) and down (once) instead of down P times.
	FragmentExchange(blobs []FragBlob) []FragBlob
	// FragmentSummary reports one query's fragment-merge totals to the
	// coordinator (one-way; folded into the pending query's outcome).
	FragmentSummary(s FragSummary)
	// StartTraversal arms distributed termination detection for
	// asynchronous traversal #seq and returns a channel the transport
	// closes at global quiescence (the communicator only receives from
	// it). The transport drives the host's HoldToken as termination
	// tokens arrive.
	StartTraversal(seq uint64) chan struct{}
	// Stats returns cumulative traffic counters.
	Stats() TransportStats
	// Close tears the transport down.
	Close() error
}

// TransportHost is the communicator-side surface a Transport drives:
// inbound delivery, batch-buffer recycling and termination-token handling.
// *Comm implements it.
type TransportHost interface {
	// Inbound delivers a decoded remote batch to local rank dest's
	// mailbox, counting it for termination detection. Takes ownership.
	Inbound(dest int, batch []Msg)
	// BatchBuf returns a recycled message buffer for decoding into.
	BatchBuf() []Msg
	// RecycleBatch returns an encoded (drained) batch buffer to the
	// communicator's free lists.
	RecycleBatch(batch []Msg)
	// HoldToken blocks until this process is passive — every hosted rank
	// idle with an empty mailbox and all outgoing buffers flushed — then
	// folds the process's in-flight counter into q and its color into
	// black, resets the color to white, and returns the updated token.
	HoldToken(q int64, black bool) (int64, bool)
	// ElideSent uncounts n messages that were handed to Deliver (and thus
	// already counted as sent for termination detection) but dropped at
	// encode time as dominated duplicates within a compacted batch. The
	// window between the count and the uncount can only inflate the
	// in-flight total a token observes — conservative, never a false
	// termination.
	ElideSent(n int)
	// Poison aborts every local rank (peer process failure).
	Poison()
}

// FragBlob is one routed blob of a fragment-merge MST exchange: Src is the
// contributing global rank, Dest the receiving global rank (-1 = broadcast
// to every rank).
type FragBlob struct {
	Src  int
	Dest int
	Blob []byte
}

// FragSummary is one query's fragment-merge MST totals: Borůvka rounds run,
// proposal/routing records exchanged, and encoded cross-table bytes moved.
type FragSummary struct {
	Rounds int64
	Msgs   int64
	Bytes  int64
}

// CollOp selects the combining operation of a cross-process collective.
type CollOp uint8

const (
	// OpBarrier synchronizes with no payload.
	OpBarrier CollOp = 1 + iota
	// OpSum sums int64 contributions.
	OpSum
	// OpMin takes the minimum int64 contribution.
	OpMin
	// OpMax takes the maximum int64 contribution.
	OpMax
	// OpGather concatenates per-rank blobs in rank order.
	OpGather
)

// TransportStats are a transport's cumulative traffic counters, surfaced
// through Comm.Stats so the loopback-vs-TCP overhead is visible per query.
// All zero for loopback communicators.
type TransportStats struct {
	// FramesOut/FramesIn count wire frames written/read.
	FramesOut, FramesIn int64
	// BytesOut/BytesIn count frame bytes (including length prefixes).
	BytesOut, BytesIn int64
	// EncodeNs/DecodeNs are cumulative nanoseconds spent in the wire
	// codec.
	EncodeNs, DecodeNs int64
	// CompactionSavedBytes is the number of wire bytes the compacted v2
	// message-batch frame saved versus encoding the same batches with the
	// v1 codec (column deltas plus dominated-offer elision). Zero on v1
	// sessions.
	CompactionSavedBytes int64
	// FlushesSmall/Mid/Large histogram the per-peer socket flush sizes:
	// < 4 KiB, [4 KiB, 256 KiB), ≥ 256 KiB. A tail of small flushes means
	// latency-bound control traffic; large ones mean coalescing works.
	FlushesSmall, FlushesMid, FlushesLarge int64
}

// Add returns the field-wise sum of two counter snapshots, for aggregating
// per-query deltas into service-lifetime totals.
func (s TransportStats) Add(o TransportStats) TransportStats {
	s.FramesOut += o.FramesOut
	s.FramesIn += o.FramesIn
	s.BytesOut += o.BytesOut
	s.BytesIn += o.BytesIn
	s.EncodeNs += o.EncodeNs
	s.DecodeNs += o.DecodeNs
	s.CompactionSavedBytes += o.CompactionSavedBytes
	s.FlushesSmall += o.FlushesSmall
	s.FlushesMid += o.FlushesMid
	s.FlushesLarge += o.FlushesLarge
	return s
}

// termState tracks what Safra-style termination detection needs from this
// process: how many hosted ranks are blocked idle, the cross-process
// (sent − received) message counter, and the color (black after any
// receive since the token last left). All fields are guarded by mu.
type termState struct {
	mu     sync.Mutex
	idle   int
	sent   int64
	recv   int64
	black  bool
	notify chan struct{} // 1-buffered nudge for HoldToken waiters
}

// reset rearms the tracker at the start of an asynchronous traversal. All
// ranks are running (not idle) and no messages are in flight — the caller
// synchronizes with barriers on both sides.
func (t *termState) reset() {
	t.mu.Lock()
	t.idle = 0
	t.sent, t.recv = 0, 0
	t.black = true // conservative: force at least two token rounds
	select {
	case <-t.notify:
	default:
	}
	t.mu.Unlock()
}

// addSent counts n messages handed to the transport.
func (t *termState) addSent(n int) {
	t.mu.Lock()
	t.sent += int64(n)
	t.mu.Unlock()
}

// addRecv counts n messages received from the transport and turns the
// process black. Must be called before the batch becomes visible in a
// mailbox, so a token folded concurrently cannot miss both the count and
// the color.
func (t *termState) addRecv(n int) {
	t.mu.Lock()
	t.recv += int64(n)
	t.black = true
	t.mu.Unlock()
}

// rankIdle marks one hosted rank as blocked idle and nudges any waiting
// token holder.
func (t *termState) rankIdle() {
	t.mu.Lock()
	t.idle++
	t.mu.Unlock()
	select {
	case t.notify <- struct{}{}:
	default:
	}
}

// rankBusy marks one hosted rank as running again.
func (t *termState) rankBusy() {
	t.mu.Lock()
	t.idle--
	t.mu.Unlock()
}

// HoldToken implements TransportHost: it blocks until every hosted rank is
// blocked idle with an empty mailbox (all local and outbound work drained),
// folds this process's counter and color into the token, whitens the
// process, and returns the token. On abort it returns a black token so a
// poisoned run can never be declared terminated.
func (c *Comm) HoldToken(q int64, black bool) (int64, bool) {
	t := &c.term
	for {
		t.mu.Lock()
		if t.idle == len(c.ranks) && c.mailboxesEmpty() {
			q += t.sent - t.recv
			black = black || t.black
			t.black = false
			t.mu.Unlock()
			return q, black
		}
		t.mu.Unlock()
		select {
		case <-t.notify:
		case <-c.abort:
			return q, true
		}
	}
}

// mailboxesEmpty reports whether every hosted rank's mailbox is drained.
// Callers hold term.mu; mailbox locks nest strictly inside it.
func (c *Comm) mailboxesEmpty() bool {
	for _, r := range c.ranks {
		if r.box.len() != 0 {
			return false
		}
	}
	return true
}

// Inbound implements TransportHost: deliver a remote batch to local rank
// dest, counting it first so termination detection cannot race delivery.
func (c *Comm) Inbound(dest int, batch []Msg) {
	c.term.addRecv(len(batch))
	r := c.localRank(dest)
	if r == nil {
		panic("runtime: transport delivered a batch for a rank this process does not host")
	}
	r.box.put(batch)
}

// ElideSent implements TransportHost: fold n encode-time-elided messages
// back out of the termination counter.
func (c *Comm) ElideSent(n int) {
	if n == 0 {
		return
	}
	c.term.mu.Lock()
	c.term.sent -= int64(n)
	c.term.mu.Unlock()
}

// BatchBuf implements TransportHost: a recycled buffer for the transport's
// decode path, drawn from the communicator's shared free lists.
func (c *Comm) BatchBuf() []Msg {
	if buf, ok := c.sharedBuf(); ok {
		return buf
	}
	return make([]Msg, 0, c.cfg.BatchSize)
}

// RecycleBatch implements TransportHost: return an encoded batch buffer to
// the shared pool.
func (c *Comm) RecycleBatch(batch []Msg) { c.shareBuf(batch[:0]) }

// Poison implements TransportHost: abort every local rank (used by the
// transport on peer failure).
func (c *Comm) Poison() { c.poison() }
