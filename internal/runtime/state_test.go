package runtime

import (
	"testing"

	"dsteiner/internal/partition"
)

// fakeSlab is a minimal StateSlab for exercising the runtime's attach,
// reset and accounting plumbing without pulling in internal/voronoi.
type fakeSlab struct {
	rank   int
	resets int
	bytes  int64
}

func (f *fakeSlab) Rank() int          { return f.rank }
func (f *fakeSlab) Reset()             { f.resets++ }
func (f *fakeSlab) MemoryBytes() int64 { return f.bytes }

func stateTestComm(t *testing.T, ranks int) *Comm {
	t.Helper()
	part, err := partition.NewBlock(64, ranks)
	if err != nil {
		t.Fatal(err)
	}
	return MustNew(Config{Ranks: ranks}, part)
}

func TestAttachStateSlabsValidation(t *testing.T) {
	c := stateTestComm(t, 3)
	if c.StateAttached() {
		t.Fatal("fresh comm reports attached state")
	}
	if c.StateSlabs() != nil {
		t.Fatal("fresh comm returned slabs")
	}
	if err := c.AttachStateSlabs([]StateSlab{&fakeSlab{rank: 0}}); err == nil {
		t.Fatal("wrong slab count accepted")
	}
	if err := c.AttachStateSlabs([]StateSlab{&fakeSlab{rank: 0}, nil, &fakeSlab{rank: 2}}); err == nil {
		t.Fatal("nil slab accepted")
	}
	if err := c.AttachStateSlabs([]StateSlab{&fakeSlab{rank: 0}, &fakeSlab{rank: 2}, &fakeSlab{rank: 1}}); err == nil {
		t.Fatal("mis-ranked slab accepted")
	}
	slabs := []StateSlab{&fakeSlab{rank: 0}, &fakeSlab{rank: 1}, &fakeSlab{rank: 2}}
	if err := c.AttachStateSlabs(slabs); err != nil {
		t.Fatal(err)
	}
	if !c.StateAttached() {
		t.Fatal("state not attached")
	}
	got := c.StateSlabs()
	for i, sl := range got {
		if sl != slabs[i] {
			t.Fatalf("slab %d not the attached one", i)
		}
	}
	// Each rank sees its own slab inside a run.
	c.Run(func(r *Rank) {
		if r.StateSlab() != slabs[r.ID()] {
			panic("rank sees wrong slab")
		}
	})
}

func TestResetAndAccountStateSlabs(t *testing.T) {
	c := stateTestComm(t, 2)
	// Without slabs both are safe no-ops.
	c.ResetStateSlabs()
	if c.StateMemoryBytes() != 0 {
		t.Fatal("no slabs but nonzero state bytes")
	}
	a, b := &fakeSlab{rank: 0, bytes: 100}, &fakeSlab{rank: 1, bytes: 250}
	if err := c.AttachStateSlabs([]StateSlab{a, b}); err != nil {
		t.Fatal(err)
	}
	c.ResetStateSlabs()
	c.ResetStateSlabs()
	if a.resets != 2 || b.resets != 2 {
		t.Fatalf("resets = %d, %d, want 2, 2", a.resets, b.resets)
	}
	if got := c.StateMemoryBytes(); got != 350 {
		t.Fatalf("StateMemoryBytes = %d, want 350", got)
	}
}
