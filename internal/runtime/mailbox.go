package runtime

import "sync"

// mailbox is an unbounded, non-blocking inbound message store. Senders never
// block (avoiding distributed send-cycle deadlock by construction); the
// owning rank drains it between local-queue work. A 1-slot notification
// channel lets the owner sleep when idle without busy polling.
type mailbox struct {
	mu      sync.Mutex
	batches [][]Msg
	note    chan struct{}
}

func newMailbox() *mailbox {
	return &mailbox{note: make(chan struct{}, 1)}
}

// put appends a batch and nudges the owner. The batch is owned by the
// mailbox afterwards.
func (mb *mailbox) put(batch []Msg) {
	if len(batch) == 0 {
		return
	}
	mb.mu.Lock()
	mb.batches = append(mb.batches, batch)
	mb.mu.Unlock()
	select {
	case mb.note <- struct{}{}:
	default:
	}
}

// takeAll removes and returns all queued batches (nil when empty).
func (mb *mailbox) takeAll() [][]Msg {
	mb.mu.Lock()
	bs := mb.batches
	mb.batches = nil
	mb.mu.Unlock()
	return bs
}

// len returns the number of queued batches (racy; used for diagnostics).
func (mb *mailbox) len() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return len(mb.batches)
}
