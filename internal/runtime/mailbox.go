package runtime

import "sync"

// mailbox is an unbounded, non-blocking inbound message store. Senders never
// block (avoiding distributed send-cycle deadlock by construction); the
// owning rank drains it between local-queue work. A 1-slot notification
// channel lets the owner sleep when idle without busy polling. The batch
// container ping-pongs between the mailbox and the draining rank (recycle)
// so steady-state delivery does not grow a fresh slice per drain cycle.
type mailbox struct {
	mu      sync.Mutex
	batches [][]Msg
	spare   [][]Msg // drained container awaiting reuse
	note    chan struct{}
}

func newMailbox() *mailbox {
	return &mailbox{note: make(chan struct{}, 1)}
}

// put appends a batch and nudges the owner. The batch is owned by the
// mailbox afterwards.
func (mb *mailbox) put(batch []Msg) {
	if len(batch) == 0 {
		return
	}
	mb.mu.Lock()
	if mb.batches == nil && mb.spare != nil {
		mb.batches, mb.spare = mb.spare, nil
	}
	mb.batches = append(mb.batches, batch)
	mb.mu.Unlock()
	select {
	case mb.note <- struct{}{}:
	default:
	}
}

// takeAll removes and returns all queued batches (nil when empty).
func (mb *mailbox) takeAll() [][]Msg {
	mb.mu.Lock()
	bs := mb.batches
	mb.batches = nil
	mb.mu.Unlock()
	return bs
}

// recycle returns a drained container from takeAll for reuse by put.
func (mb *mailbox) recycle(bs [][]Msg) {
	if cap(bs) == 0 {
		return
	}
	for i := range bs {
		bs[i] = nil // release the batch buffers (now on rank free lists)
	}
	mb.mu.Lock()
	if mb.spare == nil {
		mb.spare = bs[:0]
	}
	mb.mu.Unlock()
}

// len returns the number of queued batches (racy; used for diagnostics).
func (mb *mailbox) len() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return len(mb.batches)
}
