package runtime

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"dsteiner/internal/graph"
)

// recvLog collects the messages each rank's Visit observed.
type recvLog struct {
	mu  sync.Mutex
	got map[int][]Msg
}

func (l *recvLog) add(rank int, m Msg) {
	l.mu.Lock()
	l.got[rank] = append(l.got[rank], m)
	l.mu.Unlock()
}

// TestOutboxFlushKeepsBestOffer is the outbox property test: for random
// offer sequences staged through BroadcastBatched, the flush broadcasts
// exactly one message per delegate carrying the lexicographically minimal
// (Dist, Seed) of every offer staged for it — the same message an eager
// per-offer broadcast sequence would have converged on — and the
// batched/coalesced counters partition the offers exactly.
func TestOutboxFlushKeepsBestOffer(t *testing.T) {
	for _, bsp := range []bool{false, true} {
		t.Run(fmt.Sprintf("bsp=%v", bsp), func(t *testing.T) {
			rng := rand.New(rand.NewSource(77))
			for iter := 0; iter < 50; iter++ {
				c := newComm(t, 16, 4, QueueFIFO)
				nTargets := 1 + rng.Intn(5)
				nOffers := nTargets + rng.Intn(20)
				offers := make([]Msg, nOffers)
				for i := range offers {
					offers[i] = Msg{
						Target: graph.VID(rng.Intn(nTargets)),
						From:   graph.VID(100 + rng.Intn(3)),
						Seed:   graph.VID(rng.Intn(4)),
						Dist:   graph.Dist(rng.Intn(6)),
						Kind:   1,
					}
				}
				// Reference: lexicographic (Dist, Seed) minimum per target,
				// first arrival winning ties (ties never replace the stage).
				best := map[graph.VID]Msg{}
				for _, m := range offers {
					b, ok := best[m.Target]
					if !ok || m.Dist < b.Dist || (m.Dist == b.Dist && m.Seed < b.Seed) {
						best[m.Target] = m
					}
				}
				log := &recvLog{got: map[int][]Msg{}}
				c.Run(func(r *Rank) {
					r.Traverse(&Traversal{
						BSP:   bsp,
						Visit: func(r *Rank, m Msg) { log.add(r.ID(), m) },
						Init: func(r *Rank) {
							if r.ID() == 0 {
								for _, m := range offers {
									r.BroadcastBatched(m)
								}
							}
						},
					})
				})
				for rank := 0; rank < 4; rank++ {
					msgs := log.got[rank]
					if len(msgs) != len(best) {
						t.Fatalf("iter %d: rank %d received %d messages, want one per %d staged delegates",
							iter, rank, len(msgs), len(best))
					}
					for _, m := range msgs {
						if want := best[m.Target]; m != want {
							t.Fatalf("iter %d: rank %d got %+v for delegate %d, want %+v",
								iter, rank, m, m.Target, want)
						}
					}
				}
				st := c.Stats()
				if st.BatchedBroadcasts != int64(len(best)) {
					t.Fatalf("iter %d: batched = %d, want %d", iter, st.BatchedBroadcasts, len(best))
				}
				if st.CoalescedBroadcasts != int64(nOffers-len(best)) {
					t.Fatalf("iter %d: coalesced = %d, want %d", iter, st.CoalescedBroadcasts, nOffers-len(best))
				}
			}
		})
	}
}

// TestOutboxPreservesCrossRankTies pins the (dist, src) tie-send rule the
// delegate changed-since filter depends on: outboxes are rank-local, so two
// ranks staging byte-identical offers for the same delegate must BOTH
// broadcast — batching coalesces within a rank's superstep, never across
// ranks. Every rank therefore sees both copies.
func TestOutboxPreservesCrossRankTies(t *testing.T) {
	c := newComm(t, 16, 4, QueueFIFO)
	offer := Msg{Target: 3, From: 9, Seed: 2, Dist: 5, Kind: 1}
	log := &recvLog{got: map[int][]Msg{}}
	c.Run(func(r *Rank) {
		r.Traverse(&Traversal{
			Visit: func(r *Rank, m Msg) { log.add(r.ID(), m) },
			Init: func(r *Rank) {
				if r.ID() == 1 || r.ID() == 2 {
					r.BroadcastBatched(offer)
				}
			},
		})
	})
	for rank := 0; rank < 4; rank++ {
		if n := len(log.got[rank]); n != 2 {
			t.Fatalf("rank %d received %d copies of the tied offer, want 2 (one per staging rank)", rank, n)
		}
		for _, m := range log.got[rank] {
			if m != offer {
				t.Fatalf("rank %d received %+v, want %+v", rank, m, offer)
			}
		}
	}
	if st := c.Stats(); st.BatchedBroadcasts != 2 || st.CoalescedBroadcasts != 0 {
		t.Fatalf("counters %+v, want batched=2 coalesced=0", st)
	}
}

// TestOutboxTieAbsorption pins the within-rank half of the tie rule: a
// byte-identical duplicate staged on the SAME rank is absorbed (it would
// reach every receiver as an exact duplicate of the staged offer, which the
// strictly-better delegate filter drops anyway), while a strictly better
// offer replaces the stage in place without a second broadcast.
func TestOutboxTieAbsorption(t *testing.T) {
	c := newComm(t, 16, 2, QueueFIFO)
	log := &recvLog{got: map[int][]Msg{}}
	better := Msg{Target: 3, From: 9, Seed: 1, Dist: 4, Kind: 1}
	c.Run(func(r *Rank) {
		r.Traverse(&Traversal{
			Visit: func(r *Rank, m Msg) { log.add(r.ID(), m) },
			Init: func(r *Rank) {
				if r.ID() == 0 {
					stage := Msg{Target: 3, From: 9, Seed: 2, Dist: 5, Kind: 1}
					r.BroadcastBatched(stage)
					r.BroadcastBatched(stage)  // exact tie: absorbed
					r.BroadcastBatched(better) // strict improvement: replaces
				}
			},
		})
	})
	for rank := 0; rank < 2; rank++ {
		msgs := log.got[rank]
		if len(msgs) != 1 || msgs[0] != better {
			t.Fatalf("rank %d received %+v, want exactly [%+v]", rank, msgs, better)
		}
	}
	if st := c.Stats(); st.BatchedBroadcasts != 1 || st.CoalescedBroadcasts != 2 {
		t.Fatalf("counters %+v, want batched=1 coalesced=2", st)
	}
}
