// Package runtime is the repository's message-passing substrate — the
// substitute for MPI + HavoqGT that the paper's distributed implementation
// (§IV) is built on. Each *rank* is a goroutine with a private mailbox;
// algorithm state is partitioned per rank and all cross-rank interaction
// goes through explicit messages or collectives, mirroring an MPI program:
//
//   - Comm.Run executes an SPMD body on every rank (like mpirun).
//   - Rank.Traverse runs an asynchronous vertex-centric traversal: the
//     equivalent of HavoqGT's do_traversal() with visitor queues. Each rank
//     drains a local queue whose discipline is FIFO (HavoqGT's default) or
//     distance-priority (the paper's key optimization, §IV/§V-C), while
//     batched messages flow between ranks. Global quiescence is detected
//     with a distributed-termination counter.
//   - Collectives (Barrier, Allreduce, map reduction) mirror
//     MPI_Allreduce(MPI_MIN) etc., used by Alg. 5's edge phases.
//   - Each rank carries a rank-local graph shard (Comm.AttachShards /
//     Comm.EnsureShards), exposed as the local-adjacency API Rank.Adj,
//     Rank.StripeAdj and Rank.EdgeWeight. Traversal code reads adjacency
//     only through that API — like an MPI process that holds just its
//     partition — so each rank walks a compact slab instead of striding
//     the shared global CSR.
//   - Each rank likewise carries a rank-local control-state slab
//     (Comm.AttachStateSlabs, reset between queries by ResetStateSlabs and
//     accounted by StateMemoryBytes), so per-vertex algorithm state is
//     owned by the rank too: during a traversal a rank references nothing
//     outside its shard, its slab and its mailbox.
//
// The engine also supports a bulk-synchronous (BSP) traversal mode and
// seeded randomized message delivery, used by the ablation benchmarks and
// robustness tests.
package runtime

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"dsteiner/internal/graph"
	"dsteiner/internal/partition"
)

// QueueKind selects the local message-queue discipline of each rank.
type QueueKind int

const (
	// QueueFIFO processes messages in arrival order (HavoqGT default).
	QueueFIFO QueueKind = iota
	// QueuePriority processes messages in ascending key order — the
	// paper's message-prioritization optimization, approximating
	// Dijkstra's settling order.
	QueuePriority
	// QueueBucket processes messages in Δ-stepping bucket order.
	QueueBucket
)

// String returns the flag/API name of the queue discipline.
func (k QueueKind) String() string {
	switch k {
	case QueueFIFO:
		return "fifo"
	case QueuePriority:
		return "priority"
	case QueueBucket:
		return "bucket"
	default:
		return fmt.Sprintf("QueueKind(%d)", int(k))
	}
}

// Msg is the visitor message exchanged between ranks. Algorithms interpret
// the payload fields per phase: for Voronoi cells (Alg. 4) Target is the
// vertex being visited, From the sending vertex (predecessor candidate),
// Seed the source seed and Dist the tentative distance. Kind discriminates
// message roles within one traversal.
type Msg struct {
	Target graph.VID
	From   graph.VID
	Seed   graph.VID
	Dist   graph.Dist
	Kind   uint8
}

// VisitFunc handles one message on one rank, HavoqGT's visit() callback.
// It may send further messages through r.Send/r.Broadcast.
type VisitFunc func(r *Rank, m Msg)

// KeyFunc extracts the priority key of a message (lower = sooner). Only
// consulted by QueuePriority/QueueBucket.
type KeyFunc func(m Msg) uint64

// DistKey is the standard KeyFunc: priority by tentative distance.
func DistKey(m Msg) uint64 { return uint64(m.Dist) }

// Config parameterizes a Comm.
type Config struct {
	// Ranks is the number of simulated MPI processes (P >= 1).
	Ranks int
	// Queue is the per-rank message-queue discipline.
	Queue QueueKind
	// BucketDelta is the bucket width for QueueBucket (default 64).
	BucketDelta uint64
	// BatchSize is the number of messages coalesced per cross-rank
	// delivery (default 64). Batching models MPI message aggregation.
	BatchSize int
	// ShuffleDelivery randomizes the order in which queued inbound
	// batches are handed to a rank (failure-injection / robustness
	// testing: asynchronous convergence must not depend on delivery
	// order). Seeded by ShuffleSeed for reproducibility.
	ShuffleDelivery bool
	ShuffleSeed     int64
	// HostLo/HostHi select the contiguous rank range [HostLo, HostHi)
	// this process hosts. Both zero means all ranks (the in-process
	// loopback default). A proper subset requires Transport, which
	// carries traffic to and from the ranks hosted elsewhere.
	HostLo, HostHi int
	// Transport is the cross-process backend for communicators hosting a
	// rank subset. nil means loopback: every rank is in-process and
	// delivery is a direct mailbox append — the perf baseline.
	Transport Transport
	// FrontierParallel enables the intra-rank parallel frontier: ranks
	// whose queue discipline is QueueBucket drain whole Δ-buckets on a
	// per-rank worker pool (see frontier.go) for traversals that provide a
	// ParallelVisit. Results are byte-identical to serial draining; the
	// caller (core.Engine) resolves its auto/serial/parallel policy to
	// this switch.
	FrontierParallel bool
	// FrontierWorkers is the per-process frontier worker budget, split
	// evenly across hosted ranks (each rank gets max(1, budget/hosted)).
	// 0 means GOMAXPROCS.
	FrontierWorkers int
}

func (c Config) withDefaults() Config {
	if c.Ranks <= 0 {
		c.Ranks = 1
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.BucketDelta == 0 {
		c.BucketDelta = 64
	}
	return c
}

// Comm is a communicator: a fixed group of ranks over a vertex partition,
// analogous to MPI_COMM_WORLD plus the partitioned graph handle.
//
// A Comm is reusable: Run may be called any number of times (sequentially —
// runs must not overlap), and each call starts from a clean termination,
// abort and collective state, even after a previous run panicked. Long-lived
// callers (core.Engine) call Start once to pin a persistent goroutine per
// rank, avoiding per-run goroutine churn, and Close when done.
type Comm struct {
	cfg  Config
	part partition.Partition
	// ranks holds the hosted ranks only: ranks[i] has global id lo+i.
	// Loopback communicators host all P ranks (lo = 0).
	ranks []*Rank
	lo    int
	// trans is the cross-process backend; nil for loopback.
	trans Transport
	// term is the Safra-style termination tracker driven through
	// HoldToken; unused in loopback mode.
	term termState
	// travSeq numbers asynchronous traversals for the transport's
	// termination-token sessions.
	travSeq uint64

	// Distributed-termination state for the current traversal.
	pending  atomic.Int64
	done     chan struct{}
	doneOnce *sync.Once

	// Collective infrastructure.
	coll      *collective
	abort     chan struct{}
	abortOnce sync.Once

	// Persistent-worker state (Start/Close). work is nil until Start;
	// each rank's goroutine loops over its job channel.
	workMu sync.Mutex
	work   []chan job

	// Shared overflow pool of recycled batch buffers (see Rank.getBuf).
	bufMu sync.Mutex
	bufs  [][]Msg

	// Global message counters (monotonic across phases; read via Stats).
	// In a multi-process session they count this process's ranks only.
	sent       atomic.Int64
	processed  atomic.Int64
	batches    atomic.Int64
	suppressed atomic.Int64
	// Delegate-outbox counters (Rank.BroadcastBatched / flushOutbox).
	batchedBroadcasts atomic.Int64
	coalesced         atomic.Int64
	// Parallel-frontier counters (Rank.parallelDrain).
	frontierDrains    atomic.Int64
	frontierMsgs      atomic.Int64
	frontierMaxChunk  atomic.Int64
	frontierConflicts atomic.Int64
	frontierBusyNs    atomic.Int64
	frontierWallNs    atomic.Int64
	// idleRanks counts hosted ranks currently parked in runAsync; a busy
	// rank skips its fairness yield when every peer is parked.
	idleRanks atomic.Int32
}

// job is one Run body dispatched to a persistent rank worker.
type job struct {
	body   func(r *Rank)
	wg     *sync.WaitGroup
	panics []any
}

// New builds a communicator with cfg.Ranks ranks over the given partition.
// The partition's rank count must match cfg.Ranks.
func New(cfg Config, part partition.Partition) (*Comm, error) {
	cfg = cfg.withDefaults()
	if part.NumRanks() != cfg.Ranks {
		return nil, fmt.Errorf("runtime: partition has %d ranks, config wants %d", part.NumRanks(), cfg.Ranks)
	}
	lo, hi := cfg.HostLo, cfg.HostHi
	if lo == 0 && hi == 0 {
		hi = cfg.Ranks // host everything: the loopback default
	}
	if lo < 0 || hi > cfg.Ranks || lo >= hi {
		return nil, fmt.Errorf("runtime: hosted range [%d,%d) invalid for %d ranks", lo, hi, cfg.Ranks)
	}
	if hi-lo < cfg.Ranks && cfg.Transport == nil {
		return nil, fmt.Errorf("runtime: hosting ranks [%d,%d) of %d requires a Transport", lo, hi, cfg.Ranks)
	}
	c := &Comm{
		cfg:   cfg,
		part:  part,
		lo:    lo,
		trans: cfg.Transport,
		abort: make(chan struct{}),
	}
	c.term.notify = make(chan struct{}, 1)
	c.coll = newCollective(hi-lo, c.abort)
	c.ranks = make([]*Rank, hi-lo)
	for i := range c.ranks {
		r := &Rank{
			comm: c,
			id:   lo + i,
			box:  newMailbox(),
			out:  make([][]Msg, cfg.Ranks),
		}
		if cfg.ShuffleDelivery {
			r.shuffle = rand.New(rand.NewSource(cfg.ShuffleSeed + int64(r.id)*7919))
		}
		c.ranks[i] = r
	}
	if c.trans != nil {
		c.trans.Attach(c)
	}
	return c, nil
}

// localRank returns the hosted rank with global id, or nil when another
// process hosts it.
func (c *Comm) localRank(id int) *Rank {
	i := id - c.lo
	if uint(i) < uint(len(c.ranks)) {
		return c.ranks[i]
	}
	return nil
}

// HostRange returns the global rank range [lo, hi) this process hosts.
func (c *Comm) HostRange() (lo, hi int) { return c.lo, c.lo + len(c.ranks) }

// Distributed reports whether a cross-process transport backs this
// communicator (some ranks live in other processes).
func (c *Comm) Distributed() bool { return c.trans != nil }

// MustNew is New that panics on error (for tests and examples with known
// good configs).
func MustNew(cfg Config, part partition.Partition) *Comm {
	c, err := New(cfg, part)
	if err != nil {
		panic(err)
	}
	return c
}

// AttachShards installs one rank-local graph shard per rank, the substrate
// for the Rank.Adj/StripeAdj/EdgeWeight local-adjacency API. Call before
// Run (shards must not change while a run is in flight); shards are
// immutable and stay attached across runs, so a long-lived Comm pays the
// build once per session. shards[i] must be the shard of hosted rank
// lo+i: a communicator hosting a rank subset attaches only its own shards.
func (c *Comm) AttachShards(shards []*graph.Shard) error {
	if len(shards) != len(c.ranks) {
		return fmt.Errorf("runtime: %d shards for %d hosted ranks", len(shards), len(c.ranks))
	}
	for i, s := range shards {
		if s == nil || s.Rank() != c.lo+i {
			return fmt.Errorf("runtime: shard for hosted rank %d missing or mis-ranked", c.lo+i)
		}
	}
	for i, r := range c.ranks {
		r.shard = shards[i]
	}
	return nil
}

// EnsureShards builds and attaches shards cut from g by this communicator's
// partition, if none are attached yet. Convenience for callers (tests,
// voronoi.Compute) that build a Comm directly; core.Engine builds its own
// ShardPlan so it can also report shard memory. Call before Run. Panics on
// a partition/graph mismatch — a programming error, like MustNew.
func (c *Comm) EnsureShards(g *graph.Graph) {
	if c.ranks[0].shard != nil {
		return
	}
	plan, err := partition.NewShardPlan(c.part, g)
	if err != nil {
		panic(err)
	}
	if err := c.AttachShards(plan.BuildShards(g)[c.lo : c.lo+len(c.ranks)]); err != nil {
		panic(err)
	}
}

// Sharded reports whether shards are attached.
func (c *Comm) Sharded() bool { return c.ranks[0].shard != nil }

// Shards returns the attached shards in rank order, or nil when none are
// attached. Shards are immutable: read-only.
func (c *Comm) Shards() []*graph.Shard {
	if !c.Sharded() {
		return nil
	}
	shards := make([]*graph.Shard, len(c.ranks))
	for i, r := range c.ranks {
		shards[i] = r.shard
	}
	return shards
}

// StateSlab is the runtime's view of a rank-local control-state slab: the
// per-vertex algorithm state (for the Steiner solver, the Voronoi
// distance/parent/source/epoch fields plus phase-6 walk marks) a rank holds
// for the vertices it owns. Like a graph.Shard, a slab references nothing
// outside itself, so together shard + slab + mailbox are exactly the state
// a multi-process backend would place in each process. The runtime never
// reads slab entries — it only resets slabs between queries and accounts
// their memory; algorithms type-assert Rank.StateSlab to their concrete
// slab type (internal/voronoi.StateSlab for the solver).
type StateSlab interface {
	// Rank returns the rank the slab belongs to.
	Rank() int
	// Reset invalidates every entry (epoch bump, O(1)) between queries.
	Reset()
	// MemoryBytes reports the slab's resident size.
	MemoryBytes() int64
}

// AttachStateSlabs installs one rank-local control-state slab per rank.
// Call before Run; slabs stay attached across runs (their entries are
// per-query, recycled with ResetStateSlabs). slabs[i] must be rank i's
// slab. Unlike shards, slabs are mutable per-engine state: communicators
// must not share a slab set.
func (c *Comm) AttachStateSlabs(slabs []StateSlab) error {
	if len(slabs) != len(c.ranks) {
		return fmt.Errorf("runtime: %d state slabs for %d hosted ranks", len(slabs), len(c.ranks))
	}
	for i, sl := range slabs {
		if sl == nil || sl.Rank() != c.lo+i {
			return fmt.Errorf("runtime: state slab for hosted rank %d missing or mis-ranked", c.lo+i)
		}
	}
	for i, r := range c.ranks {
		r.state = slabs[i]
	}
	return nil
}

// StateAttached reports whether control-state slabs are attached.
func (c *Comm) StateAttached() bool { return c.ranks[0].state != nil }

// StateSlabs returns the attached slabs in rank order, or nil when none are
// attached.
func (c *Comm) StateSlabs() []StateSlab {
	if !c.StateAttached() {
		return nil
	}
	slabs := make([]StateSlab, len(c.ranks))
	for i, r := range c.ranks {
		slabs[i] = r.state
	}
	return slabs
}

// ResetStateSlabs invalidates every attached slab's entries in O(P) epoch
// bumps. Call between queries, never while a Run is in flight.
func (c *Comm) ResetStateSlabs() {
	for _, r := range c.ranks {
		if r.state != nil {
			r.state.Reset()
		}
	}
}

// StateMemoryBytes sums the attached control-state slabs' resident bytes
// (0 if none) — the per-query state counterpart of ShardMemoryBytes.
func (c *Comm) StateMemoryBytes() int64 {
	var b int64
	for _, r := range c.ranks {
		if r.state != nil {
			b += r.state.MemoryBytes()
		}
	}
	return b
}

// ShardMemoryBytes sums the attached shards' resident bytes (0 if none).
func (c *Comm) ShardMemoryBytes() int64 {
	var b int64
	for _, r := range c.ranks {
		if r.shard != nil {
			b += r.shard.MemoryBytes()
		}
	}
	return b
}

// NumRanks returns the communicator size P.
func (c *Comm) NumRanks() int { return c.cfg.Ranks }

// Partition returns the vertex partition.
func (c *Comm) Partition() partition.Partition { return c.part }

// Config returns the configuration (with defaults applied).
func (c *Comm) Config() Config { return c.cfg }

// Run executes body on every rank concurrently (SPMD) and returns when all
// ranks finish, like mpirun of a single program. A panic on any rank is
// re-raised on the caller after all ranks stop.
//
// Runs must not overlap, but the Comm may be reused: each call resets the
// termination, abort and collective state left by the previous run. After
// Start, bodies execute on the persistent rank goroutines; otherwise a fresh
// goroutine per rank is spawned for this run only.
func (c *Comm) Run(body func(r *Rank)) {
	c.resetForRun()
	panics := make([]any, len(c.ranks))
	var wg sync.WaitGroup
	wg.Add(len(c.ranks))

	c.workMu.Lock()
	work := c.work
	c.workMu.Unlock()

	if work != nil {
		j := job{body: body, wg: &wg, panics: panics}
		for i := range work {
			work[i] <- j
		}
	} else {
		for i := range c.ranks {
			go func(r *Rank) {
				c.runBody(r, job{body: body, wg: &wg, panics: panics})
			}(c.ranks[i])
		}
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}

// runBody executes one Run body on one rank, capturing a panic and poisoning
// the communicator so blocked peers abort instead of hanging.
func (c *Comm) runBody(r *Rank, j job) {
	defer j.wg.Done()
	defer func() {
		if p := recover(); p != nil {
			j.panics[r.id-c.lo] = p
			// Unblock peers waiting on collectives/traversals.
			c.poison()
		}
	}()
	j.body(r)
}

// Start pins one persistent goroutine per rank; subsequent Run calls
// dispatch to them instead of spawning P goroutines per run. Idempotent.
// Callers that Start must Close to release the goroutines.
func (c *Comm) Start() {
	c.workMu.Lock()
	defer c.workMu.Unlock()
	if c.work != nil {
		return
	}
	c.work = make([]chan job, len(c.ranks))
	for i := range c.work {
		ch := make(chan job, 1)
		c.work[i] = ch
		go func(r *Rank) {
			for j := range ch {
				c.runBody(r, j)
			}
		}(c.ranks[i])
	}
}

// Close stops the persistent rank goroutines pinned by Start and releases
// any frontier worker pools. Idempotent; a Comm that never called Start
// closes its pools only. Run must not be in flight. After Close the Comm
// still works in spawn-per-run mode (pools are recreated on demand).
func (c *Comm) Close() {
	c.workMu.Lock()
	defer c.workMu.Unlock()
	for _, r := range c.ranks {
		if r.pool != nil {
			r.pool.close()
			r.pool = nil
		}
	}
	if c.work == nil {
		return
	}
	for _, ch := range c.work {
		close(ch)
	}
	c.work = nil
}

// sharedBuf pops a batch buffer from the communicator-wide overflow pool.
func (c *Comm) sharedBuf() ([]Msg, bool) {
	c.bufMu.Lock()
	defer c.bufMu.Unlock()
	n := len(c.bufs)
	if n == 0 {
		return nil, false
	}
	buf := c.bufs[n-1]
	c.bufs[n-1] = nil
	c.bufs = c.bufs[:n-1]
	return buf, true
}

// shareBuf parks a batch buffer in the overflow pool, bounded so a
// pathological workload cannot pin unbounded memory.
func (c *Comm) shareBuf(buf []Msg) {
	c.bufMu.Lock()
	if len(c.bufs) < 4096*c.cfg.Ranks {
		c.bufs = append(c.bufs, buf)
	}
	c.bufMu.Unlock()
}

// resetForRun restores the communicator to a clean quiescent state at the
// start of a Run: leftover termination counts, buffered or mailboxed
// messages, and — after a run that panicked — the poisoned abort channel and
// collective are all discarded. All ranks are idle between runs, so plain
// field writes are safe.
func (c *Comm) resetForRun() {
	c.pending.Store(0)
	c.idleRanks.Store(0)
	for _, r := range c.ranks {
		r.box.takeAll()
		select {
		case <-r.box.note:
		default:
		}
		for i, buf := range r.out {
			if buf != nil {
				r.out[i] = nil
				r.recycleBuf(buf)
			}
		}
		// Drop any delegate-outbox stage an aborted run left behind; the
		// pending counter it guarded was reset above.
		r.dout = r.dout[:0]
		clear(r.doutIdx)
	}
	select {
	case <-c.abort:
		// Previous run was poisoned by a rank panic; arm fresh abort and
		// collective state so this run can proceed.
		c.abort = make(chan struct{})
		c.abortOnce = sync.Once{}
		c.coll = newCollective(len(c.ranks), c.abort)
	default:
	}
}

// Stats is a snapshot of the communicator's message counters. In a
// multi-process session the counters cover this process's hosted ranks;
// the coordinator aggregates per-process deltas for cluster-wide views.
type Stats struct {
	// Sent counts point-to-point visitor messages (broadcasts count once
	// per destination rank, matching the paper's message-count metric).
	Sent int64
	// Processed counts visit() invocations.
	Processed int64
	// Batches counts cross-rank batch deliveries.
	Batches int64
	// Suppressed counts delegate-bound relaxations dropped by the
	// changed-since filter: offers provably rejectable against the local
	// delegate mirror, never sent (internal/voronoi).
	Suppressed int64
	// BatchedBroadcasts counts delegate broadcasts released by superstep
	// outbox flushes (each one became NumRanks sent messages).
	BatchedBroadcasts int64
	// CoalescedBroadcasts counts delegate offers absorbed into an already
	// staged outbox entry — broadcasts that never happened because a
	// better or identical offer was pending for the same hub.
	CoalescedBroadcasts int64
	// Frontier reports intra-rank parallel-frontier work (Δ-stepping
	// bucket drains on the per-rank worker pools); all zero when the
	// parallel frontier is disabled.
	Frontier FrontierStats
	// Net reports the transport's cumulative traffic; all zero for
	// loopback communicators.
	Net TransportStats
}

// Stats returns current global counters.
func (c *Comm) Stats() Stats {
	s := Stats{
		Sent:                c.sent.Load(),
		Processed:           c.processed.Load(),
		Batches:             c.batches.Load(),
		Suppressed:          c.suppressed.Load(),
		BatchedBroadcasts:   c.batchedBroadcasts.Load(),
		CoalescedBroadcasts: c.coalesced.Load(),
		Frontier: FrontierStats{
			BucketsDrained: c.frontierDrains.Load(),
			Messages:       c.frontierMsgs.Load(),
			MaxChunk:       c.frontierMaxChunk.Load(),
			Conflicts:      c.frontierConflicts.Load(),
			BusyNs:         c.frontierBusyNs.Load(),
			WallNs:         c.frontierWallNs.Load(),
		},
	}
	if c.cfg.FrontierParallel {
		s.Frontier.Workers = c.frontierWorkers()
	}
	if c.trans != nil {
		s.Net = c.trans.Stats()
	}
	return s
}

// ResetStats zeroes the message counters (used between experiment phases).
// Transport counters are cumulative and not reset; read deltas instead.
func (c *Comm) ResetStats() {
	c.sent.Store(0)
	c.processed.Store(0)
	c.batches.Store(0)
	c.suppressed.Store(0)
	c.batchedBroadcasts.Store(0)
	c.coalesced.Store(0)
	c.frontierDrains.Store(0)
	c.frontierMsgs.Store(0)
	c.frontierMaxChunk.Store(0)
	c.frontierConflicts.Store(0)
	c.frontierBusyNs.Store(0)
	c.frontierWallNs.Store(0)
}
