package runtime

import (
	"math/rand"

	"dsteiner/internal/graph"
	"dsteiner/internal/pq"
)

// Rank is one simulated MPI process. All methods are valid only on the
// rank's own goroutine (inside Comm.Run's body).
type Rank struct {
	comm *Comm
	id   int
	box  *mailbox
	out  [][]Msg // per-destination outgoing buffers

	// shard is this rank's local graph substrate (owned-adjacency slab +
	// delegate stripes), installed by Comm.AttachShards. Traversal code
	// reads adjacency through Adj/StripeAdj/EdgeWeight so it never touches
	// the global CSR.
	shard *graph.Shard

	// state is this rank's local control-state slab (owned vertices'
	// per-vertex algorithm state), installed by Comm.AttachStateSlabs.
	// The runtime only resets and accounts it; algorithms type-assert to
	// their concrete slab (internal/voronoi.SlabOf).
	state StateSlab

	// Traversal-scoped state.
	queue   pq.Queue[Msg]
	keyOf   KeyFunc
	visit   VisitFunc
	admit   func(r *Rank, m Msg) bool // optional inbound dominance filter
	shuffle *rand.Rand
	// Parallel-frontier state (frontier.go): the worker pool (created
	// lazily, released by Comm.Close), the traversal's parallel callbacks
	// (nil when this traversal drains serially), and the reusable
	// drained-bucket buffer.
	pool     *frontierPool
	pvisit   ParallelVisitFunc
	pflush   VisitFunc
	drainBuf []Msg
	// bsp defers local sends to the next superstep via the mailbox.
	bsp bool
	// free recycles cross-rank batch buffers: drainInbox parks drained
	// batches here and Send reuses them, so steady-state traffic stops
	// allocating (~7 append-growth allocations per 64-message batch
	// otherwise — the dominant allocation source of a solve).
	free [][]Msg

	// Delegate outbox (superstep broadcast batching): BroadcastBatched
	// stages at most one pending broadcast per delegate, keeping only the
	// lexicographically best (Dist, Seed) offer; flushOutbox releases the
	// stage at superstep boundaries. k rapid improvements of one hub thus
	// cost one P-way broadcast instead of k.
	doutIdx map[graph.VID]int32
	dout    []Msg

	// Per-traversal counters (reset by Traverse).
	sentHere         int64
	processedHere    int64
	drainsHere       int64
	frontierMsgsHere int64
}

// ID returns this rank's index in [0, NumRanks).
func (r *Rank) ID() int { return r.id }

// NumRanks returns the communicator size.
func (r *Rank) NumRanks() int { return r.comm.cfg.Ranks }

// Owner returns the rank owning vertex v's state.
func (r *Rank) Owner(v graph.VID) int { return r.comm.part.Owner(v) }

// Owns reports whether this rank owns v.
func (r *Rank) Owns(v graph.VID) bool { return r.comm.part.Owner(v) == r.id }

// OwnedVertices iterates this rank's vertices.
func (r *Rank) OwnedVertices(fn func(v graph.VID)) {
	r.comm.part.OwnedVertices(r.id, fn)
}

// IsDelegate reports whether v is a high-degree delegate vertex.
func (r *Rank) IsDelegate(v graph.VID) bool { return r.comm.part.IsDelegate(v) }

// HasDelegates reports whether the partition marks any delegates at all —
// a cheap gate that lets per-edge delegate checks (the changed-since
// broadcast filter) vanish entirely on delegate-free partitions.
func (r *Rank) HasDelegates() bool {
	type counter interface{ NumDelegates() int }
	if dc, ok := r.comm.part.(counter); ok {
		return dc.NumDelegates() > 0
	}
	return false
}

// Shard returns this rank's local graph shard, or nil before AttachShards.
func (r *Rank) Shard() *graph.Shard { return r.shard }

// StateSlab returns this rank's local control-state slab, or nil before
// Comm.AttachStateSlabs. Algorithms assert it to their concrete slab type
// (the solver uses internal/voronoi.StateSlab via voronoi.SlabOf).
func (r *Rank) StateSlab() StateSlab { return r.state }

// mustShard returns the shard or fails loudly: a traversal asked for local
// adjacency on a communicator that never attached shards.
func (r *Rank) mustShard() *graph.Shard {
	if r.shard == nil {
		panic("runtime: rank has no shard; call Comm.AttachShards or Comm.EnsureShards before Run")
	}
	return r.shard
}

// Adj returns owned vertex v's adjacency from this rank's local slab, in
// global-CSR arc order. The slices alias shard storage: read-only.
func (r *Rank) Adj(v graph.VID) ([]graph.VID, []uint32) { return r.mustShard().Adj(v) }

// StripeAdj returns this rank's materialized stripe (arc index ≡ rank
// mod P) of delegate v's adjacency.
func (r *Rank) StripeAdj(v graph.VID) ([]graph.VID, []uint32) { return r.mustShard().StripeAdj(v) }

// EdgeWeight reports the weight of edge {u, v} looked up in owned vertex u's
// slab row. The graph is undirected, so this equals a global HasEdge in
// either direction.
func (r *Rank) EdgeWeight(u, v graph.VID) (uint32, bool) { return r.mustShard().EdgeWeight(u, v) }

// Send routes m to the owner of m.Target. Valid inside a traversal (the
// visit callback or init function). Messages to the local rank skip the
// mailbox and go straight to the local queue.
func (r *Rank) Send(m Msg) {
	c := r.comm
	c.pending.Add(1)
	c.sent.Add(1)
	r.sentHere++
	dest := c.part.Owner(m.Target)
	if dest == r.id && !r.bsp {
		r.enqueueLocal(m)
		return
	}
	r.buffer(dest, m)
}

// Suppress records one delegate-bound relaxation dropped by the
// changed-since filter (internal/voronoi): the offer was provably
// rejectable against the local delegate mirror, so it was never sent.
// Surfaced as Stats.Suppressed.
func (r *Rank) Suppress() { r.comm.suppressed.Add(1) }

// Distributed reports whether some ranks of this communicator live in
// other processes. Algorithms use it to route collective payloads through
// the wire-able collectives (GatherBlobs) instead of the generic
// shared-memory ones.
func (r *Rank) Distributed() bool { return r.comm.trans != nil }

// Broadcast routes m to every rank including this one (used for delegate
// hub updates). Each copy counts as one sent message.
func (r *Rank) Broadcast(m Msg) {
	for dest := 0; dest < r.NumRanks(); dest++ {
		c := r.comm
		c.pending.Add(1)
		c.sent.Add(1)
		r.sentHere++
		if dest == r.id && !r.bsp {
			r.enqueueLocal(m)
			continue
		}
		r.buffer(dest, m)
	}
}

// BroadcastBatched stages m in the delegate outbox instead of broadcasting
// eagerly. At most one offer per delegate (m.Target) is staged: a strictly
// lex-better (Dist, Seed) offer replaces the stage, anything else — worse
// offers and exact ties — is absorbed (counted as coalesced). Absorbing a
// tie is safe because the staged message is byte-identical to the absorbed
// one; the tie-send rule the changed-since filter depends on concerns
// distinct senders, and the flush always releases the staged best.
//
// A staged entry holds one unit of the pending counter so an asynchronous
// traversal cannot be declared terminated while offers sit in an outbox;
// flushOutbox transfers that unit into the real broadcast before release.
func (r *Rank) BroadcastBatched(m Msg) {
	if i, ok := r.doutIdx[m.Target]; ok {
		s := &r.dout[i]
		if m.Dist < s.Dist || (m.Dist == s.Dist && m.Seed < s.Seed) {
			*s = m
		}
		r.comm.coalesced.Add(1)
		return
	}
	if r.doutIdx == nil {
		r.doutIdx = make(map[graph.VID]int32)
	}
	r.comm.pending.Add(1)
	r.doutIdx[m.Target] = int32(len(r.dout))
	r.dout = append(r.dout, m)
}

// flushOutbox broadcasts every staged delegate offer and clears the stage,
// reporting whether anything was flushed. Broadcasts are counted before the
// staging sentinels are released, so the pending counter can never dip to
// zero mid-flush.
func (r *Rank) flushOutbox() bool {
	n := len(r.dout)
	if n == 0 {
		return false
	}
	for _, m := range r.dout {
		r.Broadcast(m)
	}
	r.comm.batchedBroadcasts.Add(int64(n))
	r.dout = r.dout[:0]
	clear(r.doutIdx)
	r.comm.pending.Add(int64(-n))
	return true
}

// buffer appends m to dest's outgoing batch (recycled from the free list
// when possible) and flushes a full batch.
func (r *Rank) buffer(dest int, m Msg) {
	buf := r.out[dest]
	if buf == nil {
		buf = r.getBuf()
	}
	buf = append(buf, m)
	r.out[dest] = buf
	if len(buf) >= r.comm.cfg.BatchSize {
		r.flushTo(dest)
	}
}

// getBuf pops a recycled batch buffer — from this rank's private free list,
// then from the communicator's shared overflow pool — or allocates one at
// full batch capacity. The shared pool matters because buffers travel with
// the traffic: a send-heavy rank hands its buffers to receive-heavy peers
// and would otherwise re-allocate every batch while its peers hoard.
func (r *Rank) getBuf() []Msg {
	if n := len(r.free); n > 0 {
		buf := r.free[n-1]
		r.free[n-1] = nil
		r.free = r.free[:n-1]
		return buf
	}
	if buf, ok := r.comm.sharedBuf(); ok {
		return buf
	}
	return make([]Msg, 0, r.comm.cfg.BatchSize)
}

// recycleBuf parks a drained batch buffer for reuse by this rank's sends;
// past a small private reserve the buffer goes to the shared pool so
// send-heavy peers can claim it.
func (r *Rank) recycleBuf(buf []Msg) {
	if cap(buf) == 0 {
		return
	}
	if len(r.free) < 128 {
		r.free = append(r.free, buf[:0])
		return
	}
	r.comm.shareBuf(buf[:0])
}

// enqueueLocal pushes m onto the local discipline queue.
func (r *Rank) enqueueLocal(m Msg) {
	r.queue.Push(m, r.keyOf(m))
}

// flushTo delivers the outgoing buffer for dest: straight into the mailbox
// when this process hosts dest (the loopback hot path), through the
// transport otherwise — counted first so termination detection observes
// the send before the bytes can arrive anywhere.
func (r *Rank) flushTo(dest int) {
	buf := r.out[dest]
	if len(buf) == 0 {
		return
	}
	r.out[dest] = nil
	r.comm.batches.Add(1)
	if l := r.comm.localRank(dest); l != nil {
		l.box.put(buf)
		return
	}
	r.comm.term.addSent(len(buf))
	r.comm.trans.Deliver(dest, buf)
}

// flushAll delivers every non-empty outgoing buffer.
func (r *Rank) flushAll() {
	for dest := range r.out {
		r.flushTo(dest)
	}
}

// drainInbox moves all mailbox batches into the local queue, optionally in
// randomized order (failure injection), then recycles the drained buffers.
// It reports whether any message was moved.
func (r *Rank) drainInbox() bool {
	batches := r.box.takeAll()
	if len(batches) == 0 {
		return false
	}
	if r.shuffle != nil {
		r.shuffle.Shuffle(len(batches), func(i, j int) {
			batches[i], batches[j] = batches[j], batches[i]
		})
	}
	moved := false
	c := r.comm
	for _, batch := range batches {
		if r.shuffle != nil {
			r.shuffle.Shuffle(len(batch), func(i, j int) {
				batch[i], batch[j] = batch[j], batch[i]
			})
		}
		for _, m := range batch {
			if r.admit != nil && !r.admit(r, m) {
				// Dropped as if visited and rejected. The message's unit of
				// the loopback pending counter is released here; transport
				// termination counts at the process boundary (Deliver/
				// Inbound), which this message has already cleared.
				if c.trans == nil && c.pending.Add(-1) == 0 {
					c.closeDone()
				}
				continue
			}
			r.enqueueLocal(m)
			moved = true
		}
		// Messages are copied into the queue; the buffer is free again.
		r.recycleBuf(batch)
	}
	r.box.recycle(batches)
	return moved
}

// newQueue builds this rank's local queue per the configured discipline.
func (r *Rank) newQueue() pq.Queue[Msg] {
	switch r.comm.cfg.Queue {
	case QueuePriority:
		return pq.NewHeap[Msg](1024)
	case QueueBucket:
		return pq.NewBucket[Msg](r.comm.cfg.BucketDelta)
	default:
		return pq.NewFIFO[Msg](1024)
	}
}
