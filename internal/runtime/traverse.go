package runtime

import (
	"runtime"
	"sync"

	"dsteiner/internal/pq"
)

// goyield cooperatively yields the processor to other goroutines.
func goyield() { runtime.Gosched() }

// maxProcs returns the process's usable CPU count (the default frontier
// worker budget).
func maxProcs() int { return runtime.GOMAXPROCS(0) }

// idleSpins is the number of yield-and-recheck rounds an empty rank spins
// before escalating to a channel park: a couple of yields catch messages
// already in flight from an active peer without paying a park/wake cycle,
// while a truly idle rank still ends up parked, burning no CPU.
const idleSpins = 2

// Traversal describes one vertex-centric computation phase, the analogue of
// a HavoqGT do_traversal() round. Every rank must call Rank.Traverse with
// the same Traversal value (SPMD), like a collective.
type Traversal struct {
	// Visit is the per-message callback (HavoqGT's visit()).
	Visit VisitFunc
	// Key extracts message priorities; nil means DistKey. Ignored by
	// FIFO queues.
	Key KeyFunc
	// Init runs once per rank before processing starts; it seeds the
	// traversal by calling r.Send (HavoqGT's init_all visitors). May be
	// nil.
	Init func(r *Rank)
	// Admit, when set, pre-filters inbound mailbox messages before they
	// enter the local queue: a message for which Admit returns false is
	// dropped as if Visit had received and rejected it. It must be a pure
	// dominance check — only return false when Visit is guaranteed to be a
	// side-effect-free no-op for m, now and at any later time (e.g. the
	// local state already lexicographically beats the offer and can only
	// keep improving). Stale offers then cost one comparison instead of a
	// queue insertion, a pop and a visit — the bulk of a remote rank's
	// redundant work, since transport batching widens the staleness window.
	Admit func(r *Rank, m Msg) bool
	// BSP switches from asynchronous processing to bulk-synchronous
	// supersteps separated by barriers (the ablation of §IV's async
	// design choice). Messages sent in superstep i are processed in
	// superstep i+1.
	BSP bool
	// ParallelVisit, together with ParallelFlush, is the bucket-drain form
	// of Visit: when the communicator enables the parallel frontier
	// (Config.FrontierParallel) and the rank's queue is the Δ-stepping
	// bucket discipline, whole buckets are drained and relaxed on the
	// rank's worker pool (frontier.go), with outbound messages staged
	// per worker and replayed deterministically through ParallelFlush.
	// Both nil means the traversal always drains serially via Visit.
	ParallelVisit ParallelVisitFunc
	// ParallelFlush replays one staged outbound message through the rank's
	// normal send path (filters, outbox, Send) on the rank goroutine.
	ParallelFlush VisitFunc
}

// TraversalStats reports per-rank work done in one Traverse call.
type TraversalStats struct {
	Processed      int64 // visit() invocations on this rank
	Sent           int64 // messages sent by this rank
	Supersteps     int64 // BSP supersteps (0 for async mode)
	BucketsDrained int64 // parallel whole-bucket drains on this rank
	FrontierMsgs   int64 // messages relaxed inside parallel drains
}

// Traverse runs t to global quiescence and returns this rank's work
// counters. It must be invoked on all ranks in the same order, like an MPI
// collective. Visit callbacks may send messages freely; termination is
// detected when every sent message has been processed.
func (r *Rank) Traverse(t *Traversal) TraversalStats {
	key := t.Key
	if key == nil {
		key = DistKey
	}
	// The queue is empty at the end of every traversal; reuse its
	// allocated capacity across phases and queries.
	if r.queue == nil {
		r.queue = r.newQueue()
	} else {
		r.queue.Reset()
	}
	r.keyOf = key
	r.visit = t.Visit
	r.admit = t.Admit
	r.pvisit, r.pflush = nil, nil
	if t.ParallelVisit != nil && t.ParallelFlush != nil && r.comm.cfg.FrontierParallel {
		if _, ok := r.queue.(*pq.Bucket[Msg]); ok {
			r.ensureFrontierPool()
			r.pvisit, r.pflush = t.ParallelVisit, t.ParallelFlush
		}
	}
	r.sentHere, r.processedHere = 0, 0
	r.drainsHere, r.frontierMsgsHere = 0, 0
	// Discard any stale outbox stage (an aborted traversal may have left
	// entries behind); the counters it guarded are reset below.
	r.dout = r.dout[:0]
	clear(r.doutIdx)

	c := r.comm
	// Reset termination state with all ranks quiescent. Loopback detects
	// quiescence with the shared pending counter; a transport-backed
	// communicator arms a termination-token session instead (the
	// coordinator circulates Safra-style tokens and closes the done
	// channel at global quiescence). BSP traversals synchronize with
	// collectives and need neither.
	r.Barrier()
	if r.id == c.lo {
		if c.trans == nil {
			c.pending.Store(0)
			c.done = make(chan struct{})
			c.doneOnce = new(sync.Once)
		} else if !t.BSP {
			c.term.reset()
			c.travSeq++
			c.done = c.trans.StartTraversal(c.travSeq)
		}
	}
	r.Barrier()

	if t.Init != nil {
		t.Init(r)
	}

	if t.BSP {
		return r.runBSP()
	}
	return r.runAsync()
}

// closeDone signals global quiescence exactly once.
func (c *Comm) closeDone() {
	c.doneOnce.Do(func() { close(c.done) })
}

// maybeYield is the busy-loop fairness yield: when simulated ranks share
// cores, a rank grinding a long queue hands the scheduler a slice so peers
// advance at a similar rate (real MPI ranks run on dedicated cores). When
// every peer rank hosted here is already parked — the common case under the
// frontier worker pool, where one rank drains while the others wait for its
// offers — the yield could only hand the CPU back to this rank, so it is
// skipped. Transport-backed communicators always yield: the reader
// goroutines feeding the mailboxes need the CPU even when peer ranks idle.
func (r *Rank) maybeYield() {
	c := r.comm
	if c.trans != nil || int(c.idleRanks.Load())+1 < len(c.ranks) {
		goyield()
	}
}

// runAsync is the asynchronous engine loop: drain the local queue in
// discipline order, interleaving inbound batches, until the communicator
// detects that every message ever sent has been processed.
func (r *Rank) runAsync() TraversalStats {
	c := r.comm
	dist := c.trans != nil
	// Initial messages are already counted in pending (Send). Flush them
	// and synchronize so the zero-message case is decided globally; with
	// a transport the token ring decides it instead.
	r.flushOutbox()
	r.flushAll()
	r.Barrier()
	if !dist && r.id == c.lo && c.pending.Load() == 0 {
		c.closeDone()
	}
	done := c.done
	// bucketQ is non-nil when this traversal drains whole Δ-buckets on the
	// rank's worker pool instead of popping one message at a time.
	var bucketQ *pq.Bucket[Msg]
	if r.pvisit != nil {
		bucketQ, _ = r.queue.(*pq.Bucket[Msg])
	}
	// Flush outgoing buffers at least this often even while local work
	// remains: hoarding frontier updates would let peers burn cycles on
	// stale distances (HavoqGT likewise aggregates but sends eagerly).
	flushEvery := int64(c.cfg.BatchSize)
	sinceFlush := int64(0)
	for {
		// Opportunistically pull fresh inbound batches so the priority
		// discipline sees remote messages early.
		select {
		case <-r.box.note:
			r.drainInbox()
		default:
		}
		if n := r.drainFrontier(bucketQ); n > 0 {
			sinceFlush += n
			if sinceFlush >= flushEvery {
				sinceFlush = 0
				r.flushOutbox()
				r.flushAll()
				r.maybeYield()
			}
			// drainFrontier replayed (and counted) all staged sends before
			// returning, so releasing the drained messages' own pending
			// units here cannot falsely reach zero mid-drain.
			if !dist && c.pending.Add(-n) == 0 {
				c.closeDone()
			}
			continue
		}
		if bucketQ == nil {
			if m, ok := r.queue.Pop(); ok {
				r.visit(r, m)
				c.processed.Add(1)
				r.processedHere++
				sinceFlush++
				if sinceFlush >= flushEvery {
					sinceFlush = 0
					// Release staged delegate broadcasts alongside the
					// regular flush: within-window improvements still
					// coalesce, but a rank grinding a long local queue
					// cannot let hub offers go stale on its peers.
					r.flushOutbox()
					r.flushAll()
					// Yield so peer ranks advance at a similar rate even
					// when simulated ranks outnumber physical cores:
					// real MPI ranks run on dedicated cores, and without
					// the yield one rank can burn a whole scheduler slice
					// on stale distances.
					r.maybeYield()
				}
				if !dist && c.pending.Add(-1) == 0 {
					c.closeDone()
				}
				continue
			}
		}
		// Local queue empty: everything staged and buffered must go out
		// before we sleep, or the system deadlocks with work parked in
		// buffers. A flushed outbox re-seeds the local queue (the
		// broadcast's self-copy), so restart the loop.
		if r.flushOutbox() {
			r.flushAll()
			continue
		}
		r.flushAll()
		if r.drainInbox() {
			continue
		}
		// Short spin before parking: a couple of yields catch messages
		// already in flight from an active peer without a park/wake cycle.
		spun := false
		for s := 0; s < idleSpins; s++ {
			goyield()
			if r.drainInbox() {
				spun = true
				break
			}
		}
		if spun {
			continue
		}
		if dist {
			// Tell the termination tracker this rank is about to block:
			// once every hosted rank is idle with drained mailboxes, the
			// process is passive and may forward a held token.
			c.term.rankIdle()
		}
		// Escalate to a channel park: a truly idle rank burns no CPU.
		c.idleRanks.Add(1)
		select {
		case <-r.box.note:
			c.idleRanks.Add(-1)
			if dist {
				c.term.rankBusy()
			}
			r.drainInbox()
		case <-done:
			c.idleRanks.Add(-1)
			return TraversalStats{
				Processed: r.processedHere, Sent: r.sentHere,
				BucketsDrained: r.drainsHere, FrontierMsgs: r.frontierMsgsHere,
			}
		case <-c.abort:
			c.idleRanks.Add(-1)
			panic(errAborted)
		}
	}
}

// runBSP is the bulk-synchronous engine loop: process the entire local
// queue, exchange messages, barrier, repeat until no rank received
// anything.
func (r *Rank) runBSP() TraversalStats {
	c := r.comm
	r.bsp = true
	defer func() { r.bsp = false }()
	// Move init messages (buffered, including self-sends) into round 1.
	r.flushOutbox()
	r.flushAll()
	r.Barrier()
	r.drainInbox()
	var bucketQ *pq.Bucket[Msg]
	if r.pvisit != nil {
		bucketQ, _ = r.queue.(*pq.Bucket[Msg])
	}
	steps := int64(0)
	for {
		pending := int64(r.queue.Len())
		if r.AllreduceSumInt64(pending) == 0 {
			return TraversalStats{
				Processed: r.processedHere, Sent: r.sentHere, Supersteps: steps,
				BucketsDrained: r.drainsHere, FrontierMsgs: r.frontierMsgsHere,
			}
		}
		steps++
		for {
			if r.drainFrontier(bucketQ) > 0 {
				continue
			}
			if bucketQ == nil {
				if m, ok := r.queue.Pop(); ok {
					r.visit(r, m)
					c.processed.Add(1)
					r.processedHere++
					continue
				}
			}
			break
		}
		// Superstep boundary: the staged best offer per delegate goes out
		// exactly once per round.
		r.flushOutbox()
		r.flushAll()
		r.Barrier()
		r.drainInbox()
	}
}
