package runtime

import (
	"runtime"
	"sync"
)

// goyield cooperatively yields the processor to other goroutines.
func goyield() { runtime.Gosched() }

// Traversal describes one vertex-centric computation phase, the analogue of
// a HavoqGT do_traversal() round. Every rank must call Rank.Traverse with
// the same Traversal value (SPMD), like a collective.
type Traversal struct {
	// Visit is the per-message callback (HavoqGT's visit()).
	Visit VisitFunc
	// Key extracts message priorities; nil means DistKey. Ignored by
	// FIFO queues.
	Key KeyFunc
	// Init runs once per rank before processing starts; it seeds the
	// traversal by calling r.Send (HavoqGT's init_all visitors). May be
	// nil.
	Init func(r *Rank)
	// Admit, when set, pre-filters inbound mailbox messages before they
	// enter the local queue: a message for which Admit returns false is
	// dropped as if Visit had received and rejected it. It must be a pure
	// dominance check — only return false when Visit is guaranteed to be a
	// side-effect-free no-op for m, now and at any later time (e.g. the
	// local state already lexicographically beats the offer and can only
	// keep improving). Stale offers then cost one comparison instead of a
	// queue insertion, a pop and a visit — the bulk of a remote rank's
	// redundant work, since transport batching widens the staleness window.
	Admit func(r *Rank, m Msg) bool
	// BSP switches from asynchronous processing to bulk-synchronous
	// supersteps separated by barriers (the ablation of §IV's async
	// design choice). Messages sent in superstep i are processed in
	// superstep i+1.
	BSP bool
}

// TraversalStats reports per-rank work done in one Traverse call.
type TraversalStats struct {
	Processed  int64 // visit() invocations on this rank
	Sent       int64 // messages sent by this rank
	Supersteps int64 // BSP supersteps (0 for async mode)
}

// Traverse runs t to global quiescence and returns this rank's work
// counters. It must be invoked on all ranks in the same order, like an MPI
// collective. Visit callbacks may send messages freely; termination is
// detected when every sent message has been processed.
func (r *Rank) Traverse(t *Traversal) TraversalStats {
	key := t.Key
	if key == nil {
		key = DistKey
	}
	// The queue is empty at the end of every traversal; reuse its
	// allocated capacity across phases and queries.
	if r.queue == nil {
		r.queue = r.newQueue()
	} else {
		r.queue.Reset()
	}
	r.keyOf = key
	r.visit = t.Visit
	r.admit = t.Admit
	r.sentHere, r.processedHere = 0, 0
	// Discard any stale outbox stage (an aborted traversal may have left
	// entries behind); the counters it guarded are reset below.
	r.dout = r.dout[:0]
	clear(r.doutIdx)

	c := r.comm
	// Reset termination state with all ranks quiescent. Loopback detects
	// quiescence with the shared pending counter; a transport-backed
	// communicator arms a termination-token session instead (the
	// coordinator circulates Safra-style tokens and closes the done
	// channel at global quiescence). BSP traversals synchronize with
	// collectives and need neither.
	r.Barrier()
	if r.id == c.lo {
		if c.trans == nil {
			c.pending.Store(0)
			c.done = make(chan struct{})
			c.doneOnce = new(sync.Once)
		} else if !t.BSP {
			c.term.reset()
			c.travSeq++
			c.done = c.trans.StartTraversal(c.travSeq)
		}
	}
	r.Barrier()

	if t.Init != nil {
		t.Init(r)
	}

	if t.BSP {
		return r.runBSP()
	}
	return r.runAsync()
}

// closeDone signals global quiescence exactly once.
func (c *Comm) closeDone() {
	c.doneOnce.Do(func() { close(c.done) })
}

// runAsync is the asynchronous engine loop: drain the local queue in
// discipline order, interleaving inbound batches, until the communicator
// detects that every message ever sent has been processed.
func (r *Rank) runAsync() TraversalStats {
	c := r.comm
	dist := c.trans != nil
	// Initial messages are already counted in pending (Send). Flush them
	// and synchronize so the zero-message case is decided globally; with
	// a transport the token ring decides it instead.
	r.flushOutbox()
	r.flushAll()
	r.Barrier()
	if !dist && r.id == c.lo && c.pending.Load() == 0 {
		c.closeDone()
	}
	done := c.done
	// Flush outgoing buffers at least this often even while local work
	// remains: hoarding frontier updates would let peers burn cycles on
	// stale distances (HavoqGT likewise aggregates but sends eagerly).
	flushEvery := int64(c.cfg.BatchSize)
	sinceFlush := int64(0)
	for {
		// Opportunistically pull fresh inbound batches so the priority
		// discipline sees remote messages early.
		select {
		case <-r.box.note:
			r.drainInbox()
		default:
		}
		if m, ok := r.queue.Pop(); ok {
			r.visit(r, m)
			c.processed.Add(1)
			r.processedHere++
			sinceFlush++
			if sinceFlush >= flushEvery {
				sinceFlush = 0
				// Release staged delegate broadcasts alongside the regular
				// flush: within-window improvements still coalesce, but a
				// rank grinding a long local queue cannot let hub offers
				// go stale on its peers.
				r.flushOutbox()
				r.flushAll()
				// Yield so peer ranks advance at a similar rate even
				// when simulated ranks outnumber physical cores:
				// real MPI ranks run on dedicated cores, and without
				// the yield one rank can burn a whole scheduler slice
				// on stale distances.
				goyield()
			}
			if !dist && c.pending.Add(-1) == 0 {
				c.closeDone()
			}
			continue
		}
		// Local queue empty: everything staged and buffered must go out
		// before we sleep, or the system deadlocks with work parked in
		// buffers. A flushed outbox re-seeds the local queue (the
		// broadcast's self-copy), so restart the loop.
		if r.flushOutbox() {
			r.flushAll()
			continue
		}
		r.flushAll()
		if r.drainInbox() {
			continue
		}
		if dist {
			// Tell the termination tracker this rank is about to block:
			// once every hosted rank is idle with drained mailboxes, the
			// process is passive and may forward a held token.
			c.term.rankIdle()
		}
		select {
		case <-r.box.note:
			if dist {
				c.term.rankBusy()
			}
			r.drainInbox()
		case <-done:
			return TraversalStats{Processed: r.processedHere, Sent: r.sentHere}
		case <-c.abort:
			panic(errAborted)
		}
	}
}

// runBSP is the bulk-synchronous engine loop: process the entire local
// queue, exchange messages, barrier, repeat until no rank received
// anything.
func (r *Rank) runBSP() TraversalStats {
	c := r.comm
	r.bsp = true
	defer func() { r.bsp = false }()
	// Move init messages (buffered, including self-sends) into round 1.
	r.flushOutbox()
	r.flushAll()
	r.Barrier()
	r.drainInbox()
	steps := int64(0)
	for {
		pending := int64(r.queue.Len())
		if r.AllreduceSumInt64(pending) == 0 {
			return TraversalStats{Processed: r.processedHere, Sent: r.sentHere, Supersteps: steps}
		}
		steps++
		for {
			m, ok := r.queue.Pop()
			if !ok {
				break
			}
			r.visit(r, m)
			c.processed.Add(1)
			r.processedHere++
		}
		// Superstep boundary: the staged best offer per delegate goes out
		// exactly once per round.
		r.flushOutbox()
		r.flushAll()
		r.Barrier()
		r.drainInbox()
	}
}
