package runtime

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"dsteiner/internal/graph"
	"dsteiner/internal/partition"
	"dsteiner/internal/sssp"
)

func newComm(t testing.TB, n, ranks int, q QueueKind) *Comm {
	t.Helper()
	part, err := partition.NewBlock(n, ranks)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{Ranks: ranks, Queue: q}, part)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	part, _ := partition.NewBlock(10, 2)
	if _, err := New(Config{Ranks: 3}, part); err == nil {
		t.Fatal("rank mismatch accepted")
	}
	c, err := New(Config{Ranks: 2}, part)
	if err != nil {
		t.Fatal(err)
	}
	if c.Config().BatchSize != 64 {
		t.Fatalf("default batch size = %d, want 64", c.Config().BatchSize)
	}
}

func TestRunExecutesEveryRank(t *testing.T) {
	c := newComm(t, 16, 4, QueueFIFO)
	var hits [4]atomic.Int64
	c.Run(func(r *Rank) {
		hits[r.ID()].Add(1)
		if r.NumRanks() != 4 {
			t.Errorf("NumRanks = %d", r.NumRanks())
		}
	})
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("rank %d ran %d times", i, hits[i].Load())
		}
	}
}

func TestBarrierOrdersPhases(t *testing.T) {
	c := newComm(t, 8, 4, QueueFIFO)
	var phase1 atomic.Int64
	fail := atomic.Bool{}
	c.Run(func(r *Rank) {
		phase1.Add(1)
		r.Barrier()
		if phase1.Load() != 4 {
			fail.Store(true)
		}
	})
	if fail.Load() {
		t.Fatal("barrier released before all ranks arrived")
	}
}

func TestAllreduceVariants(t *testing.T) {
	c := newComm(t, 8, 4, QueueFIFO)
	c.Run(func(r *Rank) {
		x := int64(r.ID() + 1) // 1,2,3,4
		if got := r.AllreduceSumInt64(x); got != 10 {
			t.Errorf("sum = %d, want 10", got)
		}
		if got := r.AllreduceMinInt64(x); got != 1 {
			t.Errorf("min = %d, want 1", got)
		}
		if got := r.AllreduceMaxInt64(x); got != 4 {
			t.Errorf("max = %d, want 4", got)
		}
		// Repeated collectives must keep working (round reuse).
		for i := 0; i < 10; i++ {
			if got := r.AllreduceSumInt64(1); got != 4 {
				t.Errorf("round %d: sum = %d, want 4", i, got)
			}
		}
	})
}

func TestGenericAllreduce(t *testing.T) {
	c := newComm(t, 8, 3, QueueFIFO)
	c.Run(func(r *Rank) {
		type pair struct{ d, id int64 }
		local := pair{d: int64(10 - r.ID()), id: int64(r.ID())}
		got := Allreduce(r, local, func(a, b pair) pair {
			if b.d < a.d || (b.d == a.d && b.id < a.id) {
				return b
			}
			return a
		})
		if got.d != 8 || got.id != 2 {
			t.Errorf("argmin = %+v, want {8 2}", got)
		}
	})
}

func TestReduceMap(t *testing.T) {
	c := newComm(t, 8, 4, QueueFIFO)
	c.Run(func(r *Rank) {
		local := map[int]int64{
			r.ID():         int64(r.ID() * 100), // unique key per rank
			100:            int64(50 - r.ID()),  // shared key: min wins
			200 + r.ID()%2: 7,                   // shared by rank parity
		}
		merged := ReduceMap(r, local, func(a, b int64) int64 {
			if b < a {
				return b
			}
			return a
		})
		for rank := 0; rank < 4; rank++ {
			if merged[rank] != int64(rank*100) {
				t.Errorf("merged[%d] = %d", rank, merged[rank])
			}
		}
		if merged[100] != 47 {
			t.Errorf("merged[100] = %d, want 47", merged[100])
		}
		if merged[200] != 7 || merged[201] != 7 {
			t.Errorf("parity keys wrong: %d %d", merged[200], merged[201])
		}
		// Caller's map must be untouched (ownership preserved).
		if len(local) != 3 {
			t.Errorf("local map mutated: %v", local)
		}
	})
}

func TestAllGatherAndBroadcast(t *testing.T) {
	c := newComm(t, 8, 4, QueueFIFO)
	c.Run(func(r *Rank) {
		got := AllGather(r, []int{r.ID() * 2, r.ID()*2 + 1})
		want := []int{0, 1, 2, 3, 4, 5, 6, 7}
		if len(got) != len(want) {
			t.Errorf("AllGather = %v", got)
			return
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("AllGather = %v, want %v", got, want)
				break
			}
		}
		val := Broadcast1(r, 2, map[bool]int{true: r.ID()}[r.ID() == 2])
		if val != 2 {
			t.Errorf("Broadcast1 = %d, want 2", val)
		}
	})
}

func TestEmptyTraversalTerminates(t *testing.T) {
	c := newComm(t, 8, 4, QueueFIFO)
	c.Run(func(r *Rank) {
		st := r.Traverse(&Traversal{
			Visit: func(r *Rank, m Msg) { t.Error("visit called with no messages") },
		})
		if st.Processed != 0 || st.Sent != 0 {
			t.Errorf("stats = %+v", st)
		}
	})
}

func TestPingCountTraversal(t *testing.T) {
	// Each seed message triggers a fixed-depth forwarding chain across
	// ranks; total processed must equal sum of chain lengths.
	const n = 32
	for _, ranks := range []int{1, 2, 4} {
		for _, q := range []QueueKind{QueueFIFO, QueuePriority, QueueBucket} {
			c := newComm(t, n, ranks, q)
			var total atomic.Int64
			c.Run(func(r *Rank) {
				st := r.Traverse(&Traversal{
					Visit: func(r *Rank, m Msg) {
						if m.Dist > 0 {
							r.Send(Msg{Target: (m.Target + 7) % n, Dist: m.Dist - 1})
						}
					},
					Init: func(r *Rank) {
						if r.ID() == 0 {
							r.Send(Msg{Target: 0, Dist: 9}) // chain of 10 visits
							r.Send(Msg{Target: 5, Dist: 4}) // chain of 5
						}
					},
				})
				total.Add(st.Processed)
			})
			if total.Load() != 15 {
				t.Fatalf("ranks=%d queue=%v: processed %d, want 15", ranks, q, total.Load())
			}
			if got := c.Stats().Processed; got != 15 {
				t.Fatalf("comm counter = %d, want 15", got)
			}
		}
	}
}

// distSSSP runs a distributed Bellman-Ford SSSP over the runtime, the same
// relaxation pattern the Voronoi phase uses, and returns the distance array.
func distSSSP(c *Comm, g *graph.Graph, sources []graph.VID, bsp bool) []graph.Dist {
	n := g.NumVertices()
	dist := make([]graph.Dist, n)
	for i := range dist {
		dist[i] = graph.InfDist
	}
	c.Run(func(r *Rank) {
		r.Traverse(&Traversal{
			BSP: bsp,
			Visit: func(r *Rank, m Msg) {
				v := m.Target
				if m.Dist >= dist[v] {
					return
				}
				dist[v] = m.Dist
				ts, ws := g.Adj(v)
				for i, u := range ts {
					// Always send: only u's owner may read dist[u].
					r.Send(Msg{Target: u, From: v, Dist: m.Dist + graph.Dist(ws[i])})
				}
			},
			Init: func(r *Rank) {
				for _, s := range sources {
					if r.Owns(s) {
						r.Send(Msg{Target: s, Dist: 0})
					}
				}
			},
		})
	})
	return dist
}

func ssspGraph(seed int64, n int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(graph.VID(rng.Intn(v)), graph.VID(v), uint32(rng.Intn(50))+1)
	}
	for i := 0; i < 3*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		b.AddEdge(graph.VID(u), graph.VID(v), uint32(rng.Intn(50))+1)
	}
	g, _ := b.Build()
	return g
}

func TestDistributedSSSPMatchesSequential(t *testing.T) {
	g := ssspGraph(11, 300)
	want := sssp.Dijkstra(g, 0)
	for _, ranks := range []int{1, 2, 4, 8} {
		for _, q := range []QueueKind{QueueFIFO, QueuePriority, QueueBucket} {
			for _, bsp := range []bool{false, true} {
				part, _ := partition.NewBlock(g.NumVertices(), ranks)
				c := MustNew(Config{Ranks: ranks, Queue: q}, part)
				got := distSSSP(c, g, []graph.VID{0}, bsp)
				for v := 0; v < g.NumVertices(); v++ {
					if got[v] != want.Dist[v] {
						t.Fatalf("ranks=%d q=%v bsp=%v: dist[%d] = %d, want %d",
							ranks, q, bsp, v, got[v], want.Dist[v])
					}
				}
			}
		}
	}
}

func TestShuffledDeliveryStillConverges(t *testing.T) {
	// Randomized batch/message delivery order must not change the fixed
	// point (asynchronous self-stabilization).
	g := ssspGraph(13, 200)
	want := sssp.Dijkstra(g, 5)
	for _, seed := range []int64{1, 2, 3} {
		part, _ := partition.NewBlock(g.NumVertices(), 4)
		c := MustNew(Config{
			Ranks: 4, Queue: QueueFIFO,
			ShuffleDelivery: true, ShuffleSeed: seed,
			BatchSize: 8,
		}, part)
		got := distSSSP(c, g, []graph.VID{5}, false)
		for v := 0; v < g.NumVertices(); v++ {
			if got[v] != want.Dist[v] {
				t.Fatalf("seed=%d: dist[%d] = %d, want %d", seed, v, got[v], want.Dist[v])
			}
		}
	}
}

func TestPriorityQueueReducesMessages(t *testing.T) {
	// The paper's Fig. 6: distance-priority draining yields fewer
	// relaxation messages than FIFO on weighted graphs. Use one rank so
	// the discipline fully controls processing order.
	g := ssspGraph(17, 800)
	counts := map[QueueKind]int64{}
	for _, q := range []QueueKind{QueueFIFO, QueuePriority} {
		part, _ := partition.NewBlock(g.NumVertices(), 1)
		c := MustNew(Config{Ranks: 1, Queue: q}, part)
		distSSSP(c, g, []graph.VID{0}, false)
		counts[q] = c.Stats().Sent
	}
	if counts[QueuePriority] >= counts[QueueFIFO] {
		t.Fatalf("priority sent %d >= fifo %d", counts[QueuePriority], counts[QueueFIFO])
	}
}

func TestBroadcastTraversal(t *testing.T) {
	c := newComm(t, 8, 4, QueueFIFO)
	var visits atomic.Int64
	c.Run(func(r *Rank) {
		r.Traverse(&Traversal{
			Visit: func(r *Rank, m Msg) {
				visits.Add(1)
			},
			Init: func(r *Rank) {
				if r.ID() == 1 {
					r.Broadcast(Msg{Target: graph.VID(r.ID()), Kind: 9})
				}
			},
		})
	})
	if visits.Load() != 4 {
		t.Fatalf("broadcast visited %d ranks, want 4", visits.Load())
	}
}

func TestStatsAndReset(t *testing.T) {
	c := newComm(t, 16, 2, QueueFIFO)
	c.Run(func(r *Rank) {
		r.Traverse(&Traversal{
			Visit: func(r *Rank, m Msg) {},
			Init: func(r *Rank) {
				if r.ID() == 0 {
					for v := graph.VID(0); v < 16; v++ {
						r.Send(Msg{Target: v})
					}
				}
			},
		})
	})
	st := c.Stats()
	if st.Sent != 16 || st.Processed != 16 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Batches == 0 {
		t.Fatal("no cross-rank batches recorded")
	}
	c.ResetStats()
	if s := c.Stats(); s.Sent != 0 || s.Processed != 0 || s.Batches != 0 {
		t.Fatalf("reset failed: %+v", s)
	}
}

func TestPanicPropagatesWithoutHanging(t *testing.T) {
	c := newComm(t, 8, 4, QueueFIFO)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic to propagate")
		}
	}()
	c.Run(func(r *Rank) {
		if r.ID() == 2 {
			panic("rank 2 exploded")
		}
		// Other ranks block on a collective; poisoning must release them.
		r.Barrier()
	})
}

func TestBSPSuperstepCount(t *testing.T) {
	// A forwarding chain of depth d takes exactly d supersteps in BSP.
	c := newComm(t, 8, 2, QueueFIFO)
	var steps atomic.Int64
	c.Run(func(r *Rank) {
		st := r.Traverse(&Traversal{
			BSP: true,
			Visit: func(r *Rank, m Msg) {
				if m.Dist > 0 {
					r.Send(Msg{Target: (m.Target + 1) % 8, Dist: m.Dist - 1})
				}
			},
			Init: func(r *Rank) {
				if r.ID() == 0 {
					r.Send(Msg{Target: 0, Dist: 5})
				}
			},
		})
		if r.ID() == 0 {
			steps.Store(st.Supersteps)
		}
	})
	if steps.Load() != 6 {
		t.Fatalf("supersteps = %d, want 6", steps.Load())
	}
}

func TestQueueKindString(t *testing.T) {
	if QueueFIFO.String() != "fifo" || QueuePriority.String() != "priority" ||
		QueueBucket.String() != "bucket" || QueueKind(9).String() != "QueueKind(9)" {
		t.Fatal("QueueKind strings wrong")
	}
}
