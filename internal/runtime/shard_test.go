package runtime

import (
	"math/rand"
	"testing"

	"dsteiner/internal/graph"
	"dsteiner/internal/partition"
)

func shardTestGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(n)))
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(graph.VID(rng.Intn(v)), graph.VID(v), uint32(rng.Intn(9))+1)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAttachShardsValidation(t *testing.T) {
	g := shardTestGraph(t, 40)
	c := newComm(t, 40, 4, QueuePriority)
	plan, err := partition.NewShardPlan(c.Partition(), g)
	if err != nil {
		t.Fatal(err)
	}
	shards := plan.BuildShards(g)

	if err := c.AttachShards(shards[:2]); err == nil {
		t.Fatal("wrong shard count accepted")
	}
	swapped := append([]*graph.Shard(nil), shards...)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	if err := c.AttachShards(swapped); err == nil {
		t.Fatal("mis-ranked shards accepted")
	}
	if c.Sharded() {
		t.Fatal("failed attach left shards behind")
	}
	if err := c.AttachShards(shards); err != nil {
		t.Fatal(err)
	}
	if !c.Sharded() {
		t.Fatal("Sharded false after attach")
	}
	var want int64
	for _, s := range shards {
		want += s.MemoryBytes()
	}
	if got := c.ShardMemoryBytes(); got != want {
		t.Fatalf("ShardMemoryBytes = %d, want %d", got, want)
	}
}

// TestRankAdjacencyMatchesGlobal checks the Rank-side local-adjacency API
// against the global CSR inside a real SPMD run: each rank sees exactly its
// own vertices' adjacency and edge weights.
func TestRankAdjacencyMatchesGlobal(t *testing.T) {
	g := shardTestGraph(t, 60)
	c := newComm(t, 60, 3, QueuePriority)
	c.EnsureShards(g)
	c.EnsureShards(g) // idempotent
	c.Run(func(r *Rank) {
		r.OwnedVertices(func(v graph.VID) {
			gt, gw := g.Adj(v)
			st, sw := r.Adj(v)
			if len(gt) != len(st) {
				panic("slab arc count differs from global")
			}
			for i := range gt {
				if gt[i] != st[i] || gw[i] != sw[i] {
					panic("slab arc differs from global")
				}
				if w, ok := r.EdgeWeight(v, gt[i]); !ok || w != gw[i] {
					panic("EdgeWeight differs from global")
				}
			}
		})
	})
}

func TestRankAdjWithoutShardsPanics(t *testing.T) {
	c := newComm(t, 10, 1, QueueFIFO)
	defer func() {
		if recover() == nil {
			t.Fatal("Adj without shards did not panic")
		}
	}()
	c.Run(func(r *Rank) { r.Adj(0) })
}
