package improve

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dsteiner/internal/baseline"
	"dsteiner/internal/exact"
	"dsteiner/internal/graph"
)

func randomConnected(seed int64, n int, maxW uint32) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(graph.VID(rng.Intn(v)), graph.VID(v), uint32(rng.Intn(int(maxW)))+1)
	}
	for i := 0; i < 2*n; i++ {
		b.AddEdge(graph.VID(rng.Intn(n)), graph.VID(rng.Intn(n)), uint32(rng.Intn(int(maxW)))+1)
	}
	g, _ := b.Build()
	return g
}

func pickSeeds(rng *rand.Rand, n, k int) []graph.VID {
	seen := map[graph.VID]bool{}
	var out []graph.VID
	for len(out) < k {
		s := graph.VID(rng.Intn(n))
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func TestRefineNeverWorsens(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		g := randomConnected(seed, 120, 12)
		rng := rand.New(rand.NewSource(seed))
		seeds := pickSeeds(rng, 120, 6)
		base, err := baseline.Mehlhorn(g, seeds)
		if err != nil {
			t.Fatal(err)
		}
		ref := Refine(g, seeds, base)
		if ref.Total > base.Total {
			t.Fatalf("seed %d: refine worsened %d -> %d", seed, base.Total, ref.Total)
		}
		if err := graph.ValidateSteinerTree(g, seeds, ref.Edges); err != nil {
			t.Fatalf("seed %d: refined tree invalid: %v", seed, err)
		}
	}
}

func TestRefineNeverBeatsOptimum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 15 + rng.Intn(50)
		g := randomConnected(seed, n, 10)
		seeds := pickSeeds(rng, n, 2+rng.Intn(5))
		base, err := baseline.WWW(g, seeds)
		if err != nil {
			return false
		}
		ref := Refine(g, seeds, base)
		opt, err := exact.Solve(g, seeds, 0)
		if err != nil {
			return false
		}
		return ref.Total >= opt.Total && ref.Total <= base.Total &&
			graph.ValidateSteinerTree(g, seeds, ref.Edges) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRefineOftenImproves(t *testing.T) {
	// On random instances the heuristics are rarely optimal; refinement
	// should close part of the gap at least sometimes. Statistical: over
	// 20 instances, require at least one strict improvement and compute
	// gap reduction.
	improved := 0
	for seed := int64(100); seed < 120; seed++ {
		g := randomConnected(seed, 100, 20)
		rng := rand.New(rand.NewSource(seed))
		seeds := pickSeeds(rng, 100, 8)
		base, err := baseline.WWW(g, seeds)
		if err != nil {
			t.Fatal(err)
		}
		ref := Refine(g, seeds, base)
		if ref.Total < base.Total {
			improved++
		}
	}
	if improved == 0 {
		t.Fatal("refinement never improved any of 20 instances")
	}
}

func TestReferencePicksBestAndRefines(t *testing.T) {
	g := randomConnected(7, 150, 15)
	rng := rand.New(rand.NewSource(8))
	seeds := pickSeeds(rng, 150, 7)
	ref := Reference(g, seeds, nil, 0)
	if err := graph.ValidateSteinerTree(g, seeds, ref.Edges); err != nil {
		t.Fatal(err)
	}
	for _, run := range []func(*graph.Graph, []graph.VID) (baseline.Tree, error){
		baseline.KMB, baseline.Mehlhorn, baseline.WWW,
	} {
		tr, err := run(g, seeds)
		if err != nil {
			t.Fatal(err)
		}
		if ref.Total > tr.Total {
			t.Fatalf("reference %d worse than a baseline %d", ref.Total, tr.Total)
		}
	}
	// Extra candidate is honored.
	fake := baseline.Tree{Edges: ref.Edges, Total: ref.Total}
	ref2 := Reference(g, seeds, &fake, 0)
	if ref2.Total > ref.Total {
		t.Fatalf("extra candidate ignored: %d > %d", ref2.Total, ref.Total)
	}
}

func TestRefineSingleEdgeTree(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1, 5)
	b.AddEdge(1, 2, 5)
	b.AddEdge(0, 2, 20)
	g, _ := b.Build()
	base, err := baseline.Mehlhorn(g, []graph.VID{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	ref := Refine(g, []graph.VID{0, 2}, base)
	if ref.Total != 10 {
		t.Fatalf("total = %d, want 10", ref.Total)
	}
}

func TestKeyPathExchangeFindsDetour(t *testing.T) {
	// Tree uses a heavy direct edge; a cheaper detour exists.
	// 0 -10- 1 (in tree), detour 0-2-3-1 with weights 1+1+1.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 10)
	b.AddEdge(0, 2, 1)
	b.AddEdge(2, 3, 1)
	b.AddEdge(3, 1, 1)
	g, _ := b.Build()
	seeds := []graph.VID{0, 1}
	tree := baseline.Tree{Edges: []graph.Edge{{U: 0, V: 1, W: 10}}, Total: 10}
	ref := Refine(g, seeds, tree)
	if ref.Total != 3 {
		t.Fatalf("refined total = %d, want 3", ref.Total)
	}
}
