// Package improve refines Steiner trees by local search. Its role in the
// reproduction (DESIGN.md §1): for seed sets too large for the exact
// Dreyfus–Wagner solver, the refined best-of-heuristics solution acts as the
// D_min reference when computing Table VII approximation ratios, standing in
// for SCIP-Jack optima. The refinement can only lower a tree's weight, so
// every heuristic's measured ratio against this reference is a lower bound
// on its true ratio — conservative in the direction that keeps the paper's
// "ratio barely above 1" shape honest.
//
// Two complementary moves are iterated to a fixed point:
//
//   - Steiner-augmented re-solve: the current tree's branch vertices
//     (degree >= 3 Steiner points) are added to the terminal set and
//     Mehlhorn's algorithm re-runs; known as the "iterated 1-Steiner"
//     family of improvements.
//   - Key-path exchange: each key path (maximal tree path whose interior
//     vertices have tree degree 2 and are not terminals) is tentatively
//     removed and the two split components reconnected by the cheapest
//     alternative path (a two-sided Dijkstra over the whole graph).
package improve

import (
	"sort"
	"time"

	"dsteiner/internal/baseline"
	"dsteiner/internal/graph"
	"dsteiner/internal/pq"
)

// Refine improves tree until neither move helps. The input must be a valid
// Steiner tree for (g, seeds); the output is too, with Total <= the input's.
func Refine(g *graph.Graph, seeds []graph.VID, tree baseline.Tree) baseline.Tree {
	return RefineBudget(g, seeds, tree, 0)
}

// RefineBudget is Refine with a wall-clock budget: once the budget elapses,
// the current best is returned even if further moves might help. budget <= 0
// means unlimited. Large seed sets (|S| >= 1000) make key-path exchange
// expensive; the experiment harness budgets the reference computation and
// records the budget in EXPERIMENTS.md.
func RefineBudget(g *graph.Graph, seeds []graph.VID, tree baseline.Tree, budget time.Duration) baseline.Tree {
	deadline := time.Time{}
	if budget > 0 {
		deadline = time.Now().Add(budget)
	}
	expired := func() bool { return !deadline.IsZero() && time.Now().After(deadline) }
	best := tree
	for {
		improved := false
		if t, ok := steinerAugmentedResolve(g, seeds, best); ok && t.Total < best.Total {
			best = t
			improved = true
		}
		if expired() {
			return best
		}
		if t, ok := keyPathExchange(g, seeds, best); ok && t.Total < best.Total {
			best = t
			improved = true
		}
		if !improved || expired() {
			return best
		}
	}
}

// Reference returns the strongest available lower-weight solution: best of
// KMB, Mehlhorn and WWW, refined within the given budget (<= 0 means
// unlimited), plus refinement of an optional pre-computed candidate (e.g.
// the distributed solver's output).
func Reference(g *graph.Graph, seeds []graph.VID, extra *baseline.Tree, budget time.Duration) baseline.Tree {
	var best baseline.Tree
	has := false
	consider := func(t baseline.Tree, err error) {
		if err != nil {
			return
		}
		if !has || t.Total < best.Total {
			best = t
			has = true
		}
	}
	consider(baseline.Mehlhorn(g, seeds))
	consider(baseline.WWW(g, seeds))
	if len(seeds) <= 64 { // KMB/SPH run |S| Dijkstra sweeps — costly at scale
		consider(baseline.KMB(g, seeds))
		consider(baseline.Takahashi(g, seeds))
	}
	if extra != nil {
		consider(*extra, nil)
	}
	if !has {
		return baseline.Tree{}
	}
	return RefineBudget(g, seeds, best, budget)
}

// steinerAugmentedResolve re-runs Mehlhorn with the tree's branch Steiner
// vertices promoted to terminals, then prunes back to the true seed set.
func steinerAugmentedResolve(g *graph.Graph, seeds []graph.VID, tree baseline.Tree) (baseline.Tree, bool) {
	deg := map[graph.VID]int{}
	for _, e := range tree.Edges {
		deg[e.U]++
		deg[e.V]++
	}
	isSeed := map[graph.VID]bool{}
	for _, s := range seeds {
		isSeed[s] = true
	}
	aug := append([]graph.VID(nil), seeds...)
	for v, d := range deg {
		if d >= 3 && !isSeed[v] {
			aug = append(aug, v)
		}
	}
	if len(aug) == len(seeds) {
		return baseline.Tree{}, false
	}
	sort.Slice(aug, func(i, j int) bool { return aug[i] < aug[j] })
	t, err := baseline.Mehlhorn(g, aug)
	if err != nil {
		return baseline.Tree{}, false
	}
	// Re-prune with the real seed set: augmented terminals may dangle.
	pruned := graph.PruneNonSeedLeaves(t.Edges, seeds)
	res := baseline.Tree{Edges: pruned, Total: graph.TotalWeight(pruned)}
	if graph.ValidateSteinerTree(g, seeds, pruned) != nil {
		return baseline.Tree{}, false
	}
	return res, true
}

// keyPathExchange removes each key path in turn and reconnects the split
// with the cheapest alternative path. First-improvement restarts keep the
// bookkeeping simple.
func keyPathExchange(g *graph.Graph, seeds []graph.VID, tree baseline.Tree) (baseline.Tree, bool) {
	if len(tree.Edges) == 0 {
		return baseline.Tree{}, false
	}
	isSeed := map[graph.VID]bool{}
	for _, s := range seeds {
		isSeed[s] = true
	}
	adj := map[graph.VID][]graph.Edge{}
	deg := map[graph.VID]int{}
	for _, e := range tree.Edges {
		adj[e.U] = append(adj[e.U], e)
		adj[e.V] = append(adj[e.V], e)
		deg[e.U]++
		deg[e.V]++
	}
	isKey := func(v graph.VID) bool { return isSeed[v] || deg[v] != 2 }

	// Enumerate key paths: walk from every key vertex through degree-2
	// non-terminal chains.
	type keyPath struct {
		edges  []graph.Edge
		weight graph.Dist
	}
	var paths []keyPath
	seenEdge := map[[2]graph.VID]bool{}
	for v := range adj {
		if !isKey(v) {
			continue
		}
		for _, start := range adj[v] {
			c := start.Canon()
			if seenEdge[[2]graph.VID{c.U, c.V}] {
				continue
			}
			kp := keyPath{}
			prev, cur := v, other(start, v)
			kp.edges = append(kp.edges, start)
			kp.weight += graph.Dist(start.W)
			for !isKey(cur) {
				var next graph.Edge
				for _, e := range adj[cur] {
					if other(e, cur) != prev {
						next = e
						break
					}
				}
				kp.edges = append(kp.edges, next)
				kp.weight += graph.Dist(next.W)
				prev, cur = cur, other(next, cur)
			}
			for _, e := range kp.edges {
				ce := e.Canon()
				seenEdge[[2]graph.VID{ce.U, ce.V}] = true
			}
			paths = append(paths, kp)
		}
	}
	// Try replacing each key path, heaviest first (most likely to win).
	sort.Slice(paths, func(i, j int) bool { return paths[i].weight > paths[j].weight })
	for _, kp := range paths {
		if t, ok := tryExchange(g, seeds, tree, kp.edges, kp.weight); ok {
			return t, true
		}
	}
	return baseline.Tree{}, false
}

func other(e graph.Edge, v graph.VID) graph.VID {
	if e.U == v {
		return e.V
	}
	return e.U
}

// tryExchange removes the key path's edges, splitting the tree in two, and
// searches the cheapest path reconnecting the sides. Interior vertices of
// the removed path may be reused — the search is over the full graph.
func tryExchange(g *graph.Graph, seeds []graph.VID, tree baseline.Tree, remove []graph.Edge, removed graph.Dist) (baseline.Tree, bool) {
	drop := map[[2]graph.VID]bool{}
	for _, e := range remove {
		c := e.Canon()
		drop[[2]graph.VID{c.U, c.V}] = true
	}
	var kept []graph.Edge
	for _, e := range tree.Edges {
		c := e.Canon()
		if !drop[[2]graph.VID{c.U, c.V}] {
			kept = append(kept, e)
		}
	}
	// Label the two components (interior path vertices belong to none).
	side := map[graph.VID]int8{}
	var mark func(v graph.VID, s int8, adj map[graph.VID][]graph.Edge)
	adj := map[graph.VID][]graph.Edge{}
	for _, e := range kept {
		adj[e.U] = append(adj[e.U], e)
		adj[e.V] = append(adj[e.V], e)
	}
	mark = func(v graph.VID, s int8, adj map[graph.VID][]graph.Edge) {
		if _, ok := side[v]; ok {
			return
		}
		side[v] = s
		for _, e := range adj[v] {
			mark(other(e, v), s, adj)
		}
	}
	endA := remove[0]
	endB := remove[len(remove)-1]
	// Path endpoints are the key vertices at its two extremes.
	aV, bV := keyEndpoints(remove)
	_ = endA
	_ = endB
	mark(aV, 1, adj)
	if _, ok := side[bV]; ok {
		return baseline.Tree{}, false // path removal did not split (degenerate)
	}
	mark(bV, 2, adj)
	// Multi-source Dijkstra from side 1 to any side-2 vertex.
	n := g.NumVertices()
	dist := make([]graph.Dist, n)
	pred := make([]graph.VID, n)
	for i := range dist {
		dist[i] = graph.InfDist
		pred[i] = graph.NilVID
	}
	type qitem struct {
		v graph.VID
		d graph.Dist
	}
	h := pq.NewHeap[qitem](64)
	for v, s := range side {
		if s == 1 {
			dist[v] = 0
			h.Push(qitem{v: v, d: 0}, 0)
		}
	}
	var hit graph.VID = graph.NilVID
	for {
		it, ok := h.Pop()
		if !ok {
			break
		}
		if it.d > dist[it.v] {
			continue
		}
		if side[it.v] == 2 {
			hit = it.v
			break
		}
		if it.d >= removed {
			break // cannot beat the removed path
		}
		ts, ws := g.Adj(it.v)
		for i, u := range ts {
			nd := it.d + graph.Dist(ws[i])
			if nd < dist[u] {
				dist[u] = nd
				pred[u] = it.v
				h.Push(qitem{v: u, d: nd}, uint64(nd))
			}
		}
	}
	if hit == graph.NilVID || dist[hit] >= removed {
		return baseline.Tree{}, false
	}
	newEdges := kept
	for v := hit; pred[v] != graph.NilVID; v = pred[v] {
		w, _ := g.HasEdge(pred[v], v)
		newEdges = append(newEdges, graph.Edge{U: pred[v], V: v, W: w}.Canon())
	}
	pruned := graph.PruneNonSeedLeaves(newEdges, seeds)
	res := baseline.Tree{Edges: pruned, Total: graph.TotalWeight(pruned)}
	if res.Total >= tree.Total {
		return baseline.Tree{}, false
	}
	if graph.ValidateSteinerTree(g, seeds, pruned) != nil {
		return baseline.Tree{}, false
	}
	return res, true
}

// keyEndpoints returns the two extreme vertices of an ordered key path.
func keyEndpoints(path []graph.Edge) (a, b graph.VID) {
	if len(path) == 1 {
		return path[0].U, path[0].V
	}
	// First edge: the endpoint not shared with the second edge.
	if path[0].U == path[1].U || path[0].U == path[1].V {
		a = path[0].V
	} else {
		a = path[0].U
	}
	last, prev := path[len(path)-1], path[len(path)-2]
	if last.U == prev.U || last.U == prev.V {
		b = last.V
	} else {
		b = last.U
	}
	return a, b
}
