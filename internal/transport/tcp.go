package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	rt "dsteiner/internal/runtime"
	"dsteiner/internal/wire"
)

// ControlKind identifies an application-level control frame the transport
// hands up to its owning worker loop.
type ControlKind uint8

const (
	// ControlSolve carries a query broadcast from the coordinator.
	ControlSolve ControlKind = 1 + iota
	// ControlGoodbye ends the session cleanly.
	ControlGoodbye
	// ControlAbort reports a poisoned session (Err holds the reason).
	ControlAbort
)

// Control is one application-level frame delivered to the worker loop.
// Query broadcasts always populate Spec — a legacy FrameSolve arrives as a
// tree-mode SolveSpec — so the worker runs one uniform query path.
type Control struct {
	Kind ControlKind
	Spec wire.SolveSpec
	Err  error
}

// TCP is the worker-side runtime.Transport: visitor-message batches flow
// directly to peer workers over coalescing framed connections, while
// collectives, termination tokens and control frames flow through the
// coordinator. One TCP backs one runtime.Comm hosting the worker's rank
// range.
type TCP struct {
	self   int
	rankLo []int64 // len W+1; worker w hosts ranks [rankLo[w], rankLo[w+1])

	coord *peer
	peers []*peer // indexed by worker; peers[self] == nil

	host rt.TransportHost

	// Collective state. Only the process leader rank calls collectives,
	// one at a time, so a single reply slot suffices; seq pairs requests
	// with replies defensively.
	collSeq   uint64
	collReply chan wire.CollReply

	// Fragment-exchange state (wire v4): same single-outstanding leader
	// discipline as collectives, with its own sequence space.
	fragSeq   uint64
	fragReply chan wire.FragmentRelabel

	// Fence state: highest fence sequence received from each peer.
	fenceMu   sync.Mutex
	fenceCond *sync.Cond
	fenceGot  []uint64
	fenceSeq  uint64

	// Asynchronous-traversal termination sessions.
	travMu   sync.Mutex
	travDone map[uint64]chan struct{}

	// Control frames for the worker loop.
	controls chan Control

	// Failure state: first error wins, failCh unblocks waiters. closing
	// marks a clean session end (goodbye seen), after which peer-link
	// EOFs are expected, not failures.
	failOnce sync.Once
	failErr  atomic.Value // error
	failCh   chan struct{}
	closing  atomic.Bool

	// wireVer is the session's negotiated wire version (Setup.WireVersion);
	// it selects the visitor-batch frame encoding. Set once via
	// SetWireVersion before Attach, then read-only.
	wireVer uint32

	// Traffic counters (runtime.TransportStats).
	framesOut, framesIn atomic.Int64
	bytesOut, bytesIn   atomic.Int64
	encodeNs, decodeNs  atomic.Int64
	compactionSaved     atomic.Int64
	flushSmall          atomic.Int64
	flushMid            atomic.Int64
	flushLarge          atomic.Int64

	closeOnce sync.Once
}

var _ rt.Transport = (*TCP)(nil)

// NewTCP assembles the worker-side transport from the session's
// connections: coord is the dialed coordinator link, peerConns[w] the mesh
// link to worker w (nil for self), and rankLo the handshake's rank ranges.
// Read loops start immediately; attach the host communicator before any
// traffic can arrive (i.e. before sending Ready).
func NewTCP(self int, rankLo []int64, coord net.Conn, peerConns []net.Conn) *TCP {
	t := &TCP{
		self:      self,
		rankLo:    rankLo,
		collReply: make(chan wire.CollReply, 1),
		fragReply: make(chan wire.FragmentRelabel, 1),
		fenceGot:  make([]uint64, len(peerConns)),
		travDone:  make(map[uint64]chan struct{}),
		controls:  make(chan Control, 4),
		failCh:    make(chan struct{}),
	}
	t.fenceCond = sync.NewCond(&t.fenceMu)
	t.wireVer = 1
	onWrite := func(frames, bytes int64) {
		t.framesOut.Add(frames)
		t.bytesOut.Add(bytes)
		switch {
		case bytes < 4<<10:
			t.flushSmall.Add(1)
		case bytes < 256<<10:
			t.flushMid.Add(1)
		default:
			t.flushLarge.Add(1)
		}
	}
	t.coord = newPeer(coord, onWrite)
	t.peers = make([]*peer, len(peerConns))
	for w, c := range peerConns {
		if c == nil {
			continue
		}
		t.peers[w] = newPeer(c, onWrite)
	}
	return t
}

// SetWireVersion pins the session's negotiated wire version (from
// Setup.WireVersion). Call before Attach; the default is 1.
func (t *TCP) SetWireVersion(v uint32) {
	if v >= 2 {
		t.wireVer = v
	}
}

// WireVersion returns the session's negotiated wire version.
func (t *TCP) WireVersion() uint32 { return t.wireVer }

// Attach implements runtime.Transport; it also starts the read loops, so
// the communicator must be fully constructed first.
func (t *TCP) Attach(host rt.TransportHost) {
	t.host = host
	go t.readCoord()
	for w, p := range t.peers {
		if p != nil {
			go t.readPeer(w, p)
		}
	}
}

// Controls returns the channel the worker loop consumes solve/goodbye/
// abort frames from.
func (t *TCP) Controls() <-chan Control { return t.controls }

// workerOf maps a global rank to the worker hosting it (binary search over
// the contiguous rank ranges).
func (t *TCP) workerOf(rank int) int {
	lo, hi := 0, len(t.rankLo)-2
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if int(t.rankLo[mid]) <= rank {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// Deliver implements runtime.Transport: encode the batch into the owning
// peer's coalescing buffer and recycle the batch buffer into the
// communicator's free lists. On v2 sessions the batch is compacted first
// (sorted, delta-encoded, dominated offers elided); elided messages are
// folded back out of the termination counter via the host, and the byte
// savings versus the v1 encoding are tracked.
func (t *TCP) Deliver(dest int, batch []rt.Msg) {
	w := t.workerOf(dest)
	p := t.peers[w]
	if p == nil {
		t.fail(fmt.Errorf("transport: rank %d maps to self (worker %d)", dest, w))
		panic(errPoisoned)
	}
	start := time.Now()
	var err error
	elided := 0
	if t.wireVer >= 2 {
		size1 := wire.MsgBatchSize1(dest, batch)
		var n int
		n, err = p.appendFrame(false, func(dst []byte) []byte {
			var out []byte
			out, elided = wire.AppendMsgBatch2(dst, dest, batch)
			return out
		})
		if err == nil {
			t.compactionSaved.Add(int64(size1 - n))
		}
	} else {
		_, err = p.appendFrame(false, func(dst []byte) []byte {
			return wire.AppendMsgBatch(dst, dest, batch)
		})
	}
	t.encodeNs.Add(time.Since(start).Nanoseconds())
	t.host.RecycleBatch(batch)
	if elided > 0 {
		t.host.ElideSent(elided)
	}
	if err != nil {
		t.fail(fmt.Errorf("transport: deliver to worker %d: %w", w, err))
		panic(errPoisoned)
	}
}

// errPoisoned is the panic payload that unwinds rank goroutines blocked on
// a failed transport; Comm.Run converts it back into a run panic and the
// worker loop reports the underlying failure.
const errPoisoned = "transport: session poisoned"

// fail records the first fatal error, poisons the host communicator and
// unblocks every waiter.
func (t *TCP) fail(err error) {
	t.failOnce.Do(func() {
		t.failErr.Store(err)
		close(t.failCh)
		if t.host != nil {
			t.host.Poison()
		}
		t.fenceCond.Broadcast()
		// Traversal done channels stay open: ranks blocked on them are
		// released through the poisoned abort channel instead, so a
		// failed session can never look quiesced.
		select {
		case t.controls <- Control{Kind: ControlAbort, Err: err}:
		default:
		}
	})
}

// Err returns the fatal error that poisoned the session, or nil.
func (t *TCP) Err() error {
	if e, ok := t.failErr.Load().(error); ok {
		return e
	}
	return nil
}

// fence flushes this process's pre-collective message traffic and waits
// until every peer's fence for the same sequence arrives. Frames are FIFO
// per connection, so receiving fence #n from a peer proves all batches it
// sent before its collective #n have been delivered into mailboxes —
// every wire collective is therefore also a delivery barrier (what BSP
// supersteps rely on).
func (t *TCP) fence() {
	t.fenceSeq++
	seq := t.fenceSeq
	for w, p := range t.peers {
		if p == nil {
			continue
		}
		// Encode in place into the coalescing buffer: a fence is a handful
		// of bytes and must never queue behind full batch backpressure.
		if _, err := p.appendFrame(true, func(dst []byte) []byte {
			return wire.EncodeFence(dst, wire.Fence{Seq: seq})
		}); err != nil {
			t.fail(fmt.Errorf("transport: fence to worker %d: %w", w, err))
			panic(errPoisoned)
		}
	}
	t.fenceMu.Lock()
	for !t.fenceReachedLocked(seq) {
		if t.Err() != nil {
			t.fenceMu.Unlock()
			panic(errPoisoned)
		}
		t.fenceCond.Wait()
	}
	t.fenceMu.Unlock()
}

func (t *TCP) fenceReachedLocked(seq uint64) bool {
	for w := range t.fenceGot {
		if w == t.self {
			continue
		}
		if t.fenceGot[w] < seq {
			return false
		}
	}
	return true
}

// collective runs one coordinator-rooted collective exchange.
func (t *TCP) collective(op uint8, payload []byte) []byte {
	t.fence()
	t.collSeq++
	if _, err := t.coord.appendFrame(true, func(dst []byte) []byte {
		return wire.EncodeColl(dst, wire.Coll{Seq: t.collSeq, Op: op, Payload: payload})
	}); err != nil {
		t.fail(fmt.Errorf("transport: collective %d: %w", t.collSeq, err))
		panic(errPoisoned)
	}
	select {
	case reply := <-t.collReply:
		if reply.Seq != t.collSeq {
			t.fail(fmt.Errorf("transport: collective reply %d for request %d", reply.Seq, t.collSeq))
			panic(errPoisoned)
		}
		return reply.Payload
	case <-t.failCh:
		panic(errPoisoned)
	}
}

// Barrier implements runtime.Transport.
func (t *TCP) Barrier() { t.collective(wire.OpBarrier, nil) }

// AllreduceInt64 implements runtime.Transport.
func (t *TCP) AllreduceInt64(op rt.CollOp, x int64) int64 {
	var wop uint8
	switch op {
	case rt.OpMin:
		wop = wire.OpMinInt64
	case rt.OpMax:
		wop = wire.OpMaxInt64
	default:
		wop = wire.OpSumInt64
	}
	res, err := wire.DecodeInt64(t.collective(wop, wire.EncodeInt64(x)))
	if err != nil {
		t.fail(fmt.Errorf("transport: allreduce reply: %w", err))
		panic(errPoisoned)
	}
	return res
}

// Gather implements runtime.Transport: ship the hosted ranks' blobs,
// receive the full rank-ordered list.
func (t *TCP) Gather(ranks []int, blobs [][]byte) [][]byte {
	contrib := make([]wire.RankBlob, len(ranks))
	for i, r := range ranks {
		contrib[i] = wire.RankBlob{Rank: r, Blob: blobs[i]}
	}
	reply := t.collective(wire.OpGather, wire.EncodeRankBlobs(nil, contrib))
	list, err := wire.DecodeBlobList(reply)
	if err != nil {
		t.fail(fmt.Errorf("transport: gather reply: %w", err))
		panic(errPoisoned)
	}
	return list
}

// FragmentExchange implements runtime.Transport: ship the hosted ranks'
// routed fragment blobs to the coordinator, receive back the personalized
// set — blobs addressed to this worker's rank range plus broadcasts. Like a
// collective it is fenced, single-outstanding, and leader-only.
func (t *TCP) FragmentExchange(blobs []rt.FragBlob) []rt.FragBlob {
	t.fence()
	t.fragSeq++
	if _, err := t.coord.appendFrame(true, func(dst []byte) []byte {
		return wire.EncodeFragmentConnect(dst, wire.FragmentConnect{Seq: t.fragSeq, Blobs: blobs})
	}); err != nil {
		t.fail(fmt.Errorf("transport: fragment exchange %d: %w", t.fragSeq, err))
		panic(errPoisoned)
	}
	select {
	case reply := <-t.fragReply:
		if reply.Seq != t.fragSeq {
			t.fail(fmt.Errorf("transport: fragment reply %d for request %d", reply.Seq, t.fragSeq))
			panic(errPoisoned)
		}
		return reply.Blobs
	case <-t.failCh:
		panic(errPoisoned)
	}
}

// FragmentSummary implements runtime.Transport: one-way per-query fragment
// totals to the coordinator, folded into the pending query's outcome.
func (t *TCP) FragmentSummary(s rt.FragSummary) {
	if _, err := t.coord.appendFrame(true, func(dst []byte) []byte {
		return wire.EncodeFragmentRoundSummary(dst, wire.FragmentRoundSummary{
			Rounds: s.Rounds, Msgs: s.Msgs, Bytes: s.Bytes,
		})
	}); err != nil {
		t.fail(fmt.Errorf("transport: fragment summary: %w", err))
		panic(errPoisoned)
	}
}

// StartTraversal implements runtime.Transport: announce the asynchronous
// traversal to the coordinator and hand back the channel its
// termination-token ring will close at global quiescence.
func (t *TCP) StartTraversal(seq uint64) chan struct{} {
	ch := make(chan struct{})
	t.travMu.Lock()
	t.travDone[seq] = ch
	t.travMu.Unlock()
	if _, err := t.coord.appendFrame(true, func(dst []byte) []byte {
		return wire.EncodeTraverseBegin(dst, wire.TraverseBegin{Seq: seq})
	}); err != nil {
		t.fail(fmt.Errorf("transport: traverse begin: %w", err))
		panic(errPoisoned)
	}
	return ch
}

// Stats implements runtime.Transport.
func (t *TCP) Stats() rt.TransportStats {
	return rt.TransportStats{
		FramesOut:            t.framesOut.Load(),
		FramesIn:             t.framesIn.Load(),
		BytesOut:             t.bytesOut.Load(),
		BytesIn:              t.bytesIn.Load(),
		EncodeNs:             t.encodeNs.Load(),
		DecodeNs:             t.decodeNs.Load(),
		CompactionSavedBytes: t.compactionSaved.Load(),
		FlushesSmall:         t.flushSmall.Load(),
		FlushesMid:           t.flushMid.Load(),
		FlushesLarge:         t.flushLarge.Load(),
	}
}

// NetStats returns the counters in their wire form (WorkerDone deltas).
func (t *TCP) NetStats() wire.NetStats { return ToNetStats(t.Stats()) }

// ToNetStats converts the runtime's counter snapshot into the frozen wire
// form — the one conversion site between the two shapes on the encode
// path (the hub decodes back with core's reverse conversion).
func ToNetStats(s rt.TransportStats) wire.NetStats {
	return wire.NetStats{
		FramesOut:            s.FramesOut,
		FramesIn:             s.FramesIn,
		BytesOut:             s.BytesOut,
		BytesIn:              s.BytesIn,
		EncodeNs:             s.EncodeNs,
		DecodeNs:             s.DecodeNs,
		CompactionSavedBytes: s.CompactionSavedBytes,
		FlushesSmall:         s.FlushesSmall,
		FlushesMid:           s.FlushesMid,
		FlushesLarge:         s.FlushesLarge,
	}
}

// FromNetStats is ToNetStats' inverse (the hub's decode side).
func FromNetStats(s wire.NetStats) rt.TransportStats {
	return rt.TransportStats{
		FramesOut:            s.FramesOut,
		FramesIn:             s.FramesIn,
		BytesOut:             s.BytesOut,
		BytesIn:              s.BytesIn,
		EncodeNs:             s.EncodeNs,
		DecodeNs:             s.DecodeNs,
		CompactionSavedBytes: s.CompactionSavedBytes,
		FlushesSmall:         s.FlushesSmall,
		FlushesMid:           s.FlushesMid,
		FlushesLarge:         s.FlushesLarge,
	}
}

// SendReady reports handshake completion (substrate rebuilt, mesh up) to
// the coordinator.
func (t *TCP) SendReady(r wire.Ready) error {
	return t.coord.send(wire.EncodeReady(nil, r))
}

// SendWorkerDone ships a query's closing frame to the coordinator,
// including the v2 stats tail when the session speaks v2.
func (t *TCP) SendWorkerDone(done wire.WorkerDone) error {
	_, err := t.coord.appendFrame(true, func(dst []byte) []byte {
		return wire.EncodeWorkerDone(dst, done, t.wireVer)
	})
	return err
}

// SendAbort reports a local failure (rank panic) to the coordinator.
func (t *TCP) SendAbort(reason string) {
	_ = t.coord.send(wire.EncodeAbort(nil, wire.Abort{Reason: reason}))
}

// abortReason decodes an Abort frame body. A corrupt or truncated Abort —
// the one frame whose job is to explain a failure — must never decay into
// an empty reason, so the decode error itself becomes the fallback.
func abortReason(body []byte) string {
	a, err := wire.DecodeAbort(body)
	if err != nil {
		return fmt.Sprintf("unreadable abort frame: %v", err)
	}
	return a.Reason
}

// InjectPeerDrop abruptly severs the mesh link to worker w, bypassing the
// coalescing writer's drain — the socket dies as if the peer process was
// killed. Fault injection only (transport.Chaos); reports whether a live
// link existed.
func (t *TCP) InjectPeerDrop(w int) bool {
	if w < 0 || w >= len(t.peers) || t.peers[w] == nil {
		return false
	}
	_ = t.peers[w].conn.Close()
	return true
}

// InjectCoordDrop abruptly severs the coordinator link. Fault injection
// only.
func (t *TCP) InjectCoordDrop() {
	_ = t.coord.conn.Close()
}

// InjectPeerTruncate writes a deliberately cut-short frame — a header
// declaring more bytes than follow — straight onto the mesh socket to
// worker w and closes it. The receiver's framed read must surface a clean
// decode error (wire.ErrTruncated / unexpected EOF), never a hang or a
// panic. Fault injection only; reports whether a live link existed.
func (t *TCP) InjectPeerTruncate(w int) bool {
	if w < 0 || w >= len(t.peers) || t.peers[w] == nil {
		return false
	}
	p := t.peers[w]
	// Raw write, racing the coalescing writer on purpose: whatever frame
	// boundary the receiver ends up mid-way through, the codec's defensive
	// decoders must turn it into a structured error.
	hdr := []byte{64, 0, 0, 0, wire.FrameMsgBatch} // "64-byte frame" with 1 byte present
	_, _ = p.conn.Write(hdr)
	_ = p.conn.Close()
	return true
}

// Close implements runtime.Transport.
func (t *TCP) Close() error {
	t.closeOnce.Do(func() {
		t.coord.close()
		for _, p := range t.peers {
			if p != nil {
				p.close()
			}
		}
	})
	return nil
}

// readCoord consumes coordinator frames: collective replies, termination
// tokens, traversal completion, solve requests and session control.
func (t *TCP) readCoord() {
	var buf []byte
	for {
		frame, err := t.coord.readFrame(buf)
		if err != nil {
			t.fail(fmt.Errorf("transport: coordinator link: %w", err))
			return
		}
		buf = frame
		t.framesIn.Add(1)
		t.bytesIn.Add(int64(len(frame)) + 4)
		typ, body := frame[0], frame[1:]
		switch typ {
		case wire.FrameCollReply:
			reply, err := wire.DecodeCollReply(body)
			if err != nil {
				t.fail(fmt.Errorf("transport: collective reply: %w", err))
				return
			}
			// The payload aliases the read buffer: copy before handing it
			// to the waiting leader rank.
			reply.Payload = append([]byte(nil), reply.Payload...)
			select {
			case t.collReply <- reply:
			default:
				t.fail(errors.New("transport: unexpected collective reply"))
				return
			}
		case wire.FrameFragmentRelabel:
			reply, err := wire.DecodeFragmentRelabel(body)
			if err != nil {
				t.fail(fmt.Errorf("transport: fragment reply: %w", err))
				return
			}
			// The blobs alias the read buffer: copy before handing them to
			// the waiting leader rank.
			for i := range reply.Blobs {
				reply.Blobs[i].Blob = append([]byte(nil), reply.Blobs[i].Blob...)
			}
			select {
			case t.fragReply <- reply:
			default:
				t.fail(errors.New("transport: unexpected fragment reply"))
				return
			}
		case wire.FrameToken:
			tok, err := wire.DecodeToken(body)
			if err != nil {
				t.fail(fmt.Errorf("transport: token: %w", err))
				return
			}
			// Folding the token blocks until this process is passive; a
			// goroutine keeps the read loop responsive meanwhile.
			go t.holdToken(tok)
		case wire.FrameTraverseDone:
			td, err := wire.DecodeTraverseDone(body)
			if err != nil {
				t.fail(fmt.Errorf("transport: traverse done: %w", err))
				return
			}
			t.travMu.Lock()
			if ch, ok := t.travDone[td.Seq]; ok {
				close(ch)
				delete(t.travDone, td.Seq)
			}
			t.travMu.Unlock()
		case wire.FrameSolve:
			solve, err := wire.DecodeSolve(body)
			if err != nil {
				t.fail(fmt.Errorf("transport: solve: %w", err))
				return
			}
			t.controls <- Control{Kind: ControlSolve, Spec: wire.SolveSpec{
				QueryID: solve.QueryID, Seeds: solve.Seeds,
			}}
		case wire.FrameSolveSpec:
			spec, err := wire.DecodeSolveSpec(body)
			if err != nil {
				t.fail(fmt.Errorf("transport: solve spec: %w", err))
				return
			}
			t.controls <- Control{Kind: ControlSolve, Spec: spec}
		case wire.FrameGoodbye:
			// Clean end. Relay the goodbye over the mesh before anyone
			// closes a link: peers that have not read their own goodbye
			// yet then see an explicit end-of-session frame instead of a
			// surprise EOF.
			t.closing.Store(true)
			for _, p := range t.peers {
				if p != nil {
					_ = p.send([]byte{wire.FrameGoodbye})
				}
			}
			t.controls <- Control{Kind: ControlGoodbye}
			return
		case wire.FrameAbort:
			t.fail(fmt.Errorf("transport: session aborted by coordinator: %s", abortReason(body)))
			return
		default:
			t.fail(fmt.Errorf("transport: unexpected coordinator frame type %d", typ))
			return
		}
	}
}

// holdToken folds the Safra token through the host (blocking until local
// passivity) and returns it to the coordinator.
func (t *TCP) holdToken(tok wire.Token) {
	q, black := t.host.HoldToken(tok.Q, tok.Black)
	if t.Err() != nil {
		return
	}
	if _, err := t.coord.appendFrame(true, func(dst []byte) []byte {
		return wire.EncodeToken(dst, wire.Token{Seq: tok.Seq, Q: q, Black: black})
	}); err != nil {
		t.fail(fmt.Errorf("transport: token return: %w", err))
	}
}

// readPeer consumes mesh frames from worker w: message batches into the
// hosted mailboxes, fences into the fence tracker.
func (t *TCP) readPeer(w int, p *peer) {
	var buf []byte
	for {
		frame, err := p.readFrame(buf)
		if err != nil {
			if t.closing.Load() {
				return // session ending: peer teardown is expected
			}
			t.fail(fmt.Errorf("transport: peer %d link: %w", w, err))
			return
		}
		buf = frame
		t.framesIn.Add(1)
		t.bytesIn.Add(int64(len(frame)) + 4)
		typ, body := frame[0], frame[1:]
		switch typ {
		case wire.FrameGoodbye:
			return // peer is shutting down cleanly
		case wire.FrameMsgBatch:
			start := time.Now()
			dest, batch, err := wire.DecodeMsgBatch(body, t.host.BatchBuf())
			t.decodeNs.Add(time.Since(start).Nanoseconds())
			if err != nil {
				t.fail(fmt.Errorf("transport: batch from worker %d: %w", w, err))
				return
			}
			t.host.Inbound(dest, batch)
		case wire.FrameMsgBatch2:
			start := time.Now()
			dest, batch, err := wire.DecodeMsgBatch2(body, t.host.BatchBuf())
			t.decodeNs.Add(time.Since(start).Nanoseconds())
			if err != nil {
				t.fail(fmt.Errorf("transport: batch2 from worker %d: %w", w, err))
				return
			}
			t.host.Inbound(dest, batch)
		case wire.FrameFence:
			f, err := wire.DecodeFence(body)
			if err != nil {
				t.fail(fmt.Errorf("transport: fence from worker %d: %w", w, err))
				return
			}
			t.fenceMu.Lock()
			if f.Seq > t.fenceGot[w] {
				t.fenceGot[w] = f.Seq
			}
			t.fenceMu.Unlock()
			t.fenceCond.Broadcast()
		default:
			t.fail(fmt.Errorf("transport: unexpected peer frame type %d", typ))
			return
		}
	}
}
