package transport

import (
	"net"
	"testing"
	"time"

	"dsteiner/internal/wire"
)

// fakeWorker performs just enough of the session handshake to exercise
// version negotiation: dial, Hello at the given version, read the Setup,
// reply Ready. It never meshes or solves — the hub is closed right after.
type fakeWorker struct {
	conn  net.Conn
	setup wire.Setup
	raw   []byte // the undecoded Setup frame, for byte-level assertions
}

func dialFakeWorker(t *testing.T, addr string, version uint32) *fakeWorker {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial hub: %v", err)
	}
	if err := wire.WriteFrame(conn, wire.EncodeHello(nil, wire.Hello{
		Version:  version,
		PeerAddr: "127.0.0.1:1", // never dialed: the fake never meshes
	})); err != nil {
		t.Fatalf("hello: %v", err)
	}
	return &fakeWorker{conn: conn}
}

// finishHandshake reads the Setup and answers Ready.
func (f *fakeWorker) finishHandshake(t *testing.T) {
	t.Helper()
	frame, err := wire.ReadFrame(f.conn, nil)
	if err != nil {
		t.Fatalf("read setup: %v", err)
	}
	if frame[0] != wire.FrameSetup {
		t.Fatalf("got frame %d, want setup", frame[0])
	}
	f.raw = append([]byte(nil), frame...)
	if f.setup, err = wire.DecodeSetup(frame[1:]); err != nil {
		t.Fatalf("decode setup: %v", err)
	}
	if err := wire.WriteFrame(f.conn, wire.EncodeReady(nil, wire.Ready{})); err != nil {
		t.Fatalf("ready: %v", err)
	}
}

// runNegotiation runs a hub handshake against fake workers announcing the
// given Hello versions and returns the hub plus the workers' views.
func runNegotiation(t *testing.T, cap uint32, versions ...uint32) (*Hub, []*fakeWorker) {
	t.Helper()
	hub, err := ListenHub("127.0.0.1:0", len(versions), len(versions))
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	if cap != 0 {
		hub.LimitWireVersion(cap)
	}
	workers := make([]*fakeWorker, len(versions))
	done := make(chan error, 1)
	go func() {
		_, err := hub.Handshake(5*time.Second, func(w int) wire.Setup {
			return wire.Setup{Ranks: len(versions), NumVertices: 1}
		})
		done <- err
	}()
	for i, v := range versions {
		workers[i] = dialFakeWorker(t, hub.Addr(), v)
	}
	for _, f := range workers {
		f.finishHandshake(t)
	}
	if err := <-done; err != nil {
		t.Fatalf("handshake: %v", err)
	}
	t.Cleanup(func() {
		for _, f := range workers {
			_ = f.conn.Close()
		}
		hub.Close()
	})
	return hub, workers
}

// TestHandshakeNegotiatesWireVersion pins the negotiation matrix: the
// session runs at the minimum version any worker announces, capped by the
// operator's rollback limit.
func TestHandshakeNegotiatesWireVersion(t *testing.T) {
	cases := []struct {
		name     string
		cap      uint32
		versions []uint32
		want     uint32
	}{
		{"all-current", 0, []uint32{wire.Version, wire.Version}, wire.Version},
		{"old-worker-new-coordinator", 0, []uint32{wire.Version, 1}, 1},
		{"all-old", 0, []uint32{1, 1}, 1},
		{"coordinator-capped-to-v1", 1, []uint32{wire.Version, wire.Version}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hub, workers := runNegotiation(t, tc.cap, tc.versions...)
			if got := hub.WireVersion(); got != tc.want {
				t.Fatalf("session version %d, want %d", got, tc.want)
			}
			for i, f := range workers {
				if f.setup.WireVersion != tc.want {
					t.Fatalf("worker %d saw setup version %d, want %d", i, f.setup.WireVersion, tc.want)
				}
			}
		})
	}
}

// TestHandshakeV1SetupIsLegacyCompatible asserts the rollback property the
// versioned Setup relies on: a session pinned to v1 emits a Setup frame
// with no version field at all — byte-identical to what a pre-v2
// coordinator would send — so a genuinely old worker (whose decoder
// rejects trailing bytes) accepts it.
func TestHandshakeV1SetupIsLegacyCompatible(t *testing.T) {
	_, workers := runNegotiation(t, 1, wire.Version)
	f := workers[0]
	legacy := f.setup
	legacy.WireVersion = 1 // encoded as "absent" at v1
	want := wire.EncodeSetup(nil, legacy)
	if string(f.raw) != string(want) {
		t.Fatalf("v1-pinned setup frame differs from legacy encoding:\n got %d bytes\nwant %d bytes", len(f.raw), len(want))
	}
}

// TestHandshakeRejectsUnknownVersion pins the failure mode for a worker
// from the future: the handshake fails before any session state is built.
func TestHandshakeRejectsUnknownVersion(t *testing.T) {
	hub, err := ListenHub("127.0.0.1:0", 1, 1)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := hub.Handshake(2*time.Second, func(w int) wire.Setup { return wire.Setup{} })
		done <- err
	}()
	conn, err := net.Dial("tcp", hub.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if err := wire.WriteFrame(conn, wire.EncodeHello(nil, wire.Hello{
		Version: wire.Version + 1, PeerAddr: "127.0.0.1:1",
	})); err != nil {
		t.Fatalf("hello: %v", err)
	}
	if err := <-done; err == nil {
		t.Fatal("handshake accepted a wire version from the future")
	}
}
