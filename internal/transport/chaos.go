package transport

import (
	"math/rand"
	"sync/atomic"
	"time"

	rt "dsteiner/internal/runtime"
)

// Fault kinds a Chaos transport can inject. Worker crash-at-phase is the
// fifth failure mode of the chaos matrix; it lives in internal/faultpoint
// (compiled into the solve path itself) rather than here, because a crash
// belongs to the rank body, not the transport seam.
const (
	// ChaosDelay injects seeded sleeps into transport operations without
	// ever failing anything: the timing-perturbation control case. A
	// delayed run must stay byte-identical to the fault-free run.
	ChaosDelay = "delay"
	// ChaosPeerDrop severs one mesh link abruptly mid-solve.
	ChaosPeerDrop = "peer-drop"
	// ChaosCoordDrop severs the coordinator link abruptly mid-solve.
	ChaosCoordDrop = "coord-drop"
	// ChaosTruncate writes a cut-short frame onto a mesh link and closes
	// it, exercising the decoder's truncation handling end to end.
	ChaosTruncate = "truncate"
)

// ChaosConfig parameterizes one Chaos transport. The same (Kind, Seed,
// After) triple always injects the same fault at the same operation count,
// which is what makes a chaos failure reproducible from its matrix cell.
type ChaosConfig struct {
	// Kind selects the fault (Chaos* constants). Empty disables injection
	// (the shim still counts operations).
	Kind string
	// Seed feeds the PRNG that picks the fault's target worker and, when
	// After is 0, the operation count to fire at.
	Seed int64
	// After is the transport-operation count (Deliver/Barrier/Allreduce/
	// Gather/FragmentExchange/StartTraversal, summed) at which the fault
	// fires. 0 derives a count from Seed.
	After int64
	// MaxDelay bounds each injected sleep of a ChaosDelay run (default
	// 2ms).
	MaxDelay time.Duration
}

// injectedFaults counts connection-level faults this process's Chaos shims
// have fired, alongside faultpoint.Injected for the /stats faults block.
var injectedFaults atomic.Int64

// InjectedFaults returns the process-wide count of connection-level faults
// injected by Chaos transports.
func InjectedFaults() int64 { return injectedFaults.Load() }

// chaosOps sums the transport operations stepped by every Chaos shim in
// this process. The chaos matrix probes it with a fault-free shim to learn
// how many operations one solve performs, then places After triggers
// inside that span.
var chaosOps atomic.Int64

// ChaosOpsTotal returns the process-wide count of transport operations
// observed by Chaos shims.
func ChaosOpsTotal() int64 { return chaosOps.Load() }

// Chaos wraps the worker-side TCP transport and injects one deterministic
// connection-level fault (or, for ChaosDelay, continuous seeded timing
// perturbation) into the runtime.Transport seam. Everything else delegates
// to the wrapped transport, so a Chaos session is a real session — faults
// hit real sockets and real decode paths, not mocks.
type Chaos struct {
	inner *TCP
	cfg   ChaosConfig

	ops   atomic.Int64
	fired atomic.Bool

	// target is the peer worker a peer-scoped fault hits, picked from Seed
	// at construction; delayGen seeds the per-op delay decision of a
	// ChaosDelay run.
	target   int
	delayGen int64
}

var _ rt.Transport = (*Chaos)(nil)

// NewChaos wraps t with fault injection per cfg.
func NewChaos(t *TCP, cfg ChaosConfig) *Chaos {
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 2 * time.Millisecond
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.After <= 0 {
		// A small-graph solve runs hundreds of transport ops; keep the
		// derived trigger early enough to land inside one.
		cfg.After = 2 + rng.Int63n(64)
	}
	c := &Chaos{inner: t, cfg: cfg, delayGen: rng.Int63()}
	// Pick the peer target among the live mesh links, deterministically
	// from the seed.
	var live []int
	for w, p := range t.peers {
		if p != nil {
			live = append(live, w)
		}
	}
	if len(live) > 0 {
		c.target = live[rng.Intn(len(live))]
	} else {
		c.target = -1
	}
	return c
}

// Ops returns the transport operations counted so far (test introspection).
func (c *Chaos) Ops() int64 { return c.ops.Load() }

// Fired reports whether the configured fault has been injected.
func (c *Chaos) Fired() bool { return c.fired.Load() }

// step counts one transport operation and fires the configured fault when
// the count crosses the trigger.
func (c *Chaos) step() {
	n := c.ops.Add(1)
	chaosOps.Add(1)
	switch c.cfg.Kind {
	case "":
		return
	case ChaosDelay:
		// A seeded hash of (delayGen, n) decides each op's sleep, so two
		// runs with the same seed perturb the same operations. Sleeps only;
		// nothing fails, and results must stay byte-identical.
		h := uint64(c.delayGen) ^ uint64(n)*0x9e3779b97f4a7c15
		h ^= h >> 33
		h *= 0xff51afd7ed558ccd
		h ^= h >> 29
		if h%4 == 0 {
			c.fired.Store(true)
			time.Sleep(time.Duration(h % uint64(c.cfg.MaxDelay)))
		}
		return
	}
	if n != c.cfg.After || !c.fired.CompareAndSwap(false, true) {
		return
	}
	injectedFaults.Add(1)
	switch c.cfg.Kind {
	case ChaosPeerDrop:
		if c.target < 0 || !c.inner.InjectPeerDrop(c.target) {
			c.inner.InjectCoordDrop() // single-worker fleet: no mesh to cut
		}
	case ChaosCoordDrop:
		c.inner.InjectCoordDrop()
	case ChaosTruncate:
		if c.target < 0 || !c.inner.InjectPeerTruncate(c.target) {
			c.inner.InjectCoordDrop()
		}
	}
}

// Attach implements runtime.Transport.
func (c *Chaos) Attach(host rt.TransportHost) { c.inner.Attach(host) }

// Deliver implements runtime.Transport.
func (c *Chaos) Deliver(dest int, batch []rt.Msg) {
	c.step()
	c.inner.Deliver(dest, batch)
}

// Barrier implements runtime.Transport.
func (c *Chaos) Barrier() {
	c.step()
	c.inner.Barrier()
}

// AllreduceInt64 implements runtime.Transport.
func (c *Chaos) AllreduceInt64(op rt.CollOp, x int64) int64 {
	c.step()
	return c.inner.AllreduceInt64(op, x)
}

// Gather implements runtime.Transport.
func (c *Chaos) Gather(ranks []int, blobs [][]byte) [][]byte {
	c.step()
	return c.inner.Gather(ranks, blobs)
}

// FragmentExchange implements runtime.Transport.
func (c *Chaos) FragmentExchange(blobs []rt.FragBlob) []rt.FragBlob {
	c.step()
	return c.inner.FragmentExchange(blobs)
}

// FragmentSummary implements runtime.Transport.
func (c *Chaos) FragmentSummary(s rt.FragSummary) { c.inner.FragmentSummary(s) }

// StartTraversal implements runtime.Transport.
func (c *Chaos) StartTraversal(seq uint64) chan struct{} {
	c.step()
	return c.inner.StartTraversal(seq)
}

// Stats implements runtime.Transport.
func (c *Chaos) Stats() rt.TransportStats { return c.inner.Stats() }

// Close implements runtime.Transport.
func (c *Chaos) Close() error { return c.inner.Close() }
