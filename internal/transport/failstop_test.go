package transport

import (
	"net"
	"strings"
	"testing"
	"time"

	"dsteiner/internal/wire"
)

// waitHubErr polls the hub's poison state (frames travel through the event
// loop asynchronously) and returns the first non-nil error within the
// deadline.
func waitHubErr(t *testing.T, h *Hub, d time.Duration) error {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if err := h.Err(); err != nil {
			return err
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("hub never poisoned")
	return nil
}

// TestHubKeepsReasonOfTruncatedAbortFrame pins the abort-reason fallback:
// a worker whose Abort frame arrives cut short (the connection died while
// flushing it) must still poison the session with a diagnosable reason —
// naming the worker and the decode failure — instead of silently dropping
// both (the old `ab, _ := DecodeAbort` bug reported an empty reason).
func TestHubKeepsReasonOfTruncatedAbortFrame(t *testing.T) {
	hub, workers := runNegotiation(t, 0, wire.Version)
	full := wire.EncodeAbort(nil, wire.Abort{Reason: "worker disk on fire"})
	if err := wire.WriteFrame(workers[0].conn, full[:len(full)-4]); err != nil {
		t.Fatalf("send truncated abort: %v", err)
	}
	err := waitHubErr(t, hub, 5*time.Second)
	if !strings.Contains(err.Error(), "worker 0 aborted") {
		t.Fatalf("poison reason does not name the worker: %v", err)
	}
	if !strings.Contains(err.Error(), "unreadable abort frame") {
		t.Fatalf("poison reason does not flag the truncated frame: %v", err)
	}
}

// TestHubAbortDelivery pins both directions of session abort: a worker's
// Abort frame (what TCP.SendAbort emits) poisons the hub with the worker's
// reason, and the hub's poison broadcast delivers an Abort carrying that
// reason to every OTHER worker — the mechanism that unsticks a fleet whose
// surviving workers are blocked mid-collective.
func TestHubAbortDelivery(t *testing.T) {
	hub, workers := runNegotiation(t, 0, wire.Version, wire.Version)
	if err := wire.WriteFrame(workers[0].conn,
		wire.EncodeAbort(nil, wire.Abort{Reason: "rank panic: deliberate"})); err != nil {
		t.Fatalf("send abort: %v", err)
	}
	err := waitHubErr(t, hub, 5*time.Second)
	if !strings.Contains(err.Error(), "worker 0 aborted: rank panic: deliberate") {
		t.Fatalf("poison reason: %v", err)
	}
	// Worker 1 must receive the broadcast abort.
	_ = workers[1].conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	frame, rerr := wire.ReadFrame(workers[1].conn, nil)
	if rerr != nil {
		t.Fatalf("worker 1 never got the abort broadcast: %v", rerr)
	}
	if frame[0] != wire.FrameAbort {
		t.Fatalf("worker 1 got frame %d, want abort", frame[0])
	}
	ab, derr := wire.DecodeAbort(frame[1:])
	if derr != nil {
		t.Fatalf("decode broadcast abort: %v", derr)
	}
	if !strings.Contains(ab.Reason, "deliberate") {
		t.Fatalf("broadcast abort reason %q lost the cause", ab.Reason)
	}
}

// TestHandshakeWorkerResetMidHandshake pins the coordinator's failure mode
// when a worker's connection resets between Hello and Ready: the handshake
// returns an error naming the worker instead of hanging.
func TestHandshakeWorkerResetMidHandshake(t *testing.T) {
	hub, err := ListenHub("127.0.0.1:0", 2, 2)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := hub.Handshake(3*time.Second, func(w int) wire.Setup {
			return wire.Setup{Ranks: 2, NumVertices: 1}
		})
		done <- err
	}()
	good := dialFakeWorker(t, hub.Addr(), wire.Version)
	defer good.conn.Close()
	bad := dialFakeWorker(t, hub.Addr(), wire.Version)
	_ = bad.conn.Close() // reset before reading the setup
	err = <-done
	if err == nil {
		t.Fatal("handshake succeeded with a worker that hung up")
	}
	if !strings.Contains(err.Error(), "worker") {
		t.Fatalf("handshake error does not name a worker: %v", err)
	}
}

// rejoinFakeWorker re-handshakes a fake worker into a healing session via
// a Rejoin frame.
func rejoinFakeWorker(t *testing.T, addr string, sessionID uint64, prev int) *fakeWorker {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial hub: %v", err)
	}
	if err := wire.WriteFrame(conn, wire.EncodeRejoin(nil, wire.Rejoin{
		Version:    wire.Version,
		PeerAddr:   "127.0.0.1:1",
		SessionID:  sessionID,
		PrevWorker: int64(prev),
	})); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	return &fakeWorker{conn: conn}
}

// TestHealReadmitsViaRejoin drives one full heal at the frame level: the
// session is poisoned by a dying worker, a Rejoin with the wrong session
// identity is rejected with an Abort (and does not fail the heal), and a
// Rejoin with the right identity is re-admitted — receiving the retained
// Setup again — after which the hub's fault accounting shows one detected
// fault, one rejoin and one heal.
func TestHealReadmitsViaRejoin(t *testing.T) {
	hub, err := ListenHub("127.0.0.1:0", 1, 1)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	hub.EnableRecovery(5*time.Second, nil)
	done := make(chan error, 1)
	go func() {
		_, err := hub.Handshake(5*time.Second, func(w int) wire.Setup {
			return wire.Setup{Ranks: 1, NumVertices: 7}
		})
		done <- err
	}()
	w0 := dialFakeWorker(t, hub.Addr(), wire.Version)
	w0.finishHandshake(t)
	if err := <-done; err != nil {
		t.Fatalf("handshake: %v", err)
	}
	defer hub.Close()
	sid := hub.SessionID()
	if sid == 0 {
		t.Fatal("v5 session has no session identity")
	}
	if w0.setup.SessionID != sid {
		t.Fatalf("setup carried session %#x, hub has %#x", w0.setup.SessionID, sid)
	}

	// Kill the worker; the hub's reader poisons the session.
	_ = w0.conn.Close()
	waitHubErr(t, hub, 5*time.Second)

	healed := make(chan error, 1)
	go func() {
		_, err := hub.heal()
		healed <- err
	}()

	// An impostor with the wrong session identity is aborted...
	impostor := rejoinFakeWorker(t, hub.Addr(), sid+1, 0)
	defer impostor.conn.Close()
	_ = impostor.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	frame, rerr := wire.ReadFrame(impostor.conn, nil)
	if rerr != nil {
		t.Fatalf("impostor got no reply: %v", rerr)
	}
	if frame[0] != wire.FrameAbort {
		t.Fatalf("impostor got frame %d, want abort", frame[0])
	}
	if ab, _ := wire.DecodeAbort(frame[1:]); !strings.Contains(ab.Reason, "unknown session") {
		t.Fatalf("impostor abort reason: %q", ab.Reason)
	}

	// ...and the real survivor is re-admitted with the retained Setup.
	w0b := rejoinFakeWorker(t, hub.Addr(), sid, 0)
	defer w0b.conn.Close()
	w0b.finishHandshake(t)
	if err := <-healed; err != nil {
		t.Fatalf("heal: %v", err)
	}
	if w0b.setup.NumVertices != 7 || w0b.setup.SessionID != sid {
		t.Fatalf("healed setup lost session state: %+v", w0b.setup)
	}
	if hub.Err() != nil {
		t.Fatalf("healed hub still poisoned: %v", hub.Err())
	}

	fs := hub.FaultStats()
	if fs.Detected < 1 || fs.Rejoins != 1 || fs.Heals != 1 {
		t.Fatalf("fault accounting after heal: %+v", fs)
	}
	if fs.LastError == "" {
		t.Fatal("healed hub forgot the poisoning reason")
	}
}
