package transport

import (
	"fmt"
	"net"
	"time"

	"dsteiner/internal/wire"
)

// ConnectMesh establishes the worker-to-worker message links after the
// setup frame arrives: worker `self` dials every lower-indexed peer's
// advertised address (identifying itself with a PeerHello) and accepts one
// connection from every higher-indexed peer on its own listener. The
// result is indexed by worker, nil at self. On error every opened
// connection is closed.
func ConnectMesh(self int, peerAddrs []string, ln net.Listener, timeout time.Duration) ([]net.Conn, error) {
	deadline := time.Now().Add(timeout)
	conns := make([]net.Conn, len(peerAddrs))
	fail := func(err error) ([]net.Conn, error) {
		for _, c := range conns {
			if c != nil {
				_ = c.Close()
			}
		}
		return nil, err
	}
	for w := 0; w < self; w++ {
		conn, err := net.DialTimeout("tcp", peerAddrs[w], time.Until(deadline))
		if err != nil {
			return fail(fmt.Errorf("transport: dial worker %d at %s: %w", w, peerAddrs[w], err))
		}
		if err := wire.WriteFrame(conn, wire.EncodePeerHello(nil, wire.PeerHello{Worker: self})); err != nil {
			_ = conn.Close()
			return fail(fmt.Errorf("transport: peer hello to worker %d: %w", w, err))
		}
		conns[w] = conn
	}
	if tl, ok := ln.(*net.TCPListener); ok {
		_ = tl.SetDeadline(deadline)
	}
	for need := len(peerAddrs) - self - 1; need > 0; need-- {
		conn, err := ln.Accept()
		if err != nil {
			return fail(fmt.Errorf("transport: accepting peer connections: %w", err))
		}
		_ = conn.SetReadDeadline(deadline)
		frame, err := wire.ReadFrame(conn, nil)
		if err != nil {
			_ = conn.Close()
			return fail(fmt.Errorf("transport: peer hello: %w", err))
		}
		if frame[0] != wire.FramePeerHello {
			_ = conn.Close()
			return fail(fmt.Errorf("transport: peer sent frame %d before hello", frame[0]))
		}
		hello, err := wire.DecodePeerHello(frame[1:])
		if err != nil {
			_ = conn.Close()
			return fail(fmt.Errorf("transport: peer hello: %w", err))
		}
		if hello.Worker <= self || hello.Worker >= len(peerAddrs) || conns[hello.Worker] != nil {
			_ = conn.Close()
			return fail(fmt.Errorf("transport: unexpected peer hello from worker %d", hello.Worker))
		}
		_ = conn.SetReadDeadline(time.Time{})
		conns[hello.Worker] = conn
	}
	return conns, nil
}
