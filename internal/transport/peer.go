// Package transport implements the TCP rank transport behind the
// runtime.Transport seam: real processes exchanging the solver's visitor
// messages, collectives and termination tokens over length-prefixed wire
// frames (internal/wire), the multi-process backend the ROADMAP's
// "rank becomes a process" plan calls for.
//
// Topology: one coordinator (Hub — inside the steinersvc/core process that
// owns the graph) and W workers (cmd/rankd). Control traffic — handshake,
// collectives, termination tokens, solve requests and results — flows
// worker ↔ coordinator; visitor-message batches flow directly worker ↔
// worker over a full mesh dialed during the handshake, with per-peer write
// coalescing so many batches share one syscall.
package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"dsteiner/internal/wire"
)

// maxPend bounds a peer's coalescing buffer. A sender that outruns the
// peer's reader blocks here — the MPI-like backpressure that keeps a
// slow receiver from pinning unbounded memory on the sender. Deadlock-free
// because readers drain unconditionally into unbounded mailboxes.
const maxPend = 8 << 20

// Small control frames (tokens, fences, collective contributions) bypass
// the maxPend backpressure up to an extra smallSlack: a termination token
// must not stall behind megabytes of queued visitor batches, or the system
// idles waiting for a token that is itself waiting for the system to idle.
const (
	smallFrame = 256
	smallSlack = 64 << 10
)

// readBufSize sizes the per-connection buffered reader. Raw frame reads
// cost two syscalls each (length prefix + body); buffering turns a burst
// of small frames into one read syscall.
const readBufSize = 64 << 10

// peer is one framed connection with write coalescing: senders append
// frames to a pending buffer under a short lock and a dedicated writer
// goroutine flushes whole buffers per syscall. Reads happen on the
// owner's read loop, not here.
type peer struct {
	conn net.Conn
	// br buffers inbound frame reads. Only the owner's read loop touches
	// it; handshake traffic is read raw from the conn before the peer is
	// built, so no bytes can be stranded in the buffer at creation.
	br *bufio.Reader

	mu      sync.Mutex
	wake    *sync.Cond // writer: pending bytes available (or closed)
	space   *sync.Cond // senders: pending buffer drained below maxPend
	pend    []byte
	spare   []byte // recycled flushed buffer
	writing bool   // writer holds a swapped-out buffer mid-syscall
	closed  bool
	err     error

	onWrite func(frames, bytes int64) // stats hook (may be nil)
	frames  int64                     // frames appended since last flush
}

// newPeer wraps conn and starts its writer goroutine.
func newPeer(conn net.Conn, onWrite func(frames, bytes int64)) *peer {
	p := &peer{conn: conn, br: bufio.NewReaderSize(conn, readBufSize), onWrite: onWrite}
	p.wake = sync.NewCond(&p.mu)
	p.space = sync.NewCond(&p.mu)
	go p.writeLoop()
	return p
}

// appendFrame appends one length-prefixed frame built in place by build
// (which must only append to its argument and return the result) and
// reports the frame's payload size. Blocks while the coalescing buffer is
// over maxPend; small control frames get smallSlack extra headroom so they
// never queue behind full visitor-batch backpressure.
func (p *peer) appendFrame(small bool, build func(dst []byte) []byte) (int, error) {
	limit := maxPend
	if small {
		limit += smallSlack
	}
	p.mu.Lock()
	for len(p.pend) > limit && !p.closed {
		p.space.Wait()
	}
	if p.closed {
		err := p.err
		p.mu.Unlock()
		if err == nil {
			err = net.ErrClosed
		}
		return 0, err
	}
	off := len(p.pend)
	p.pend = append(p.pend, 0, 0, 0, 0)
	p.pend = build(p.pend)
	n := len(p.pend) - off - 4
	if n <= 0 || n > wire.MaxFrame {
		p.pend = p.pend[:off] // drop the malformed frame, keep the stream sane
		p.mu.Unlock()
		return 0, fmt.Errorf("transport: bad frame size %d", n)
	}
	binary.LittleEndian.PutUint32(p.pend[off:], uint32(n))
	p.frames++
	p.mu.Unlock()
	p.wake.Signal()
	return n, nil
}

// send appends an already-encoded frame payload (type byte first).
func (p *peer) send(payload []byte) error {
	_, err := p.appendFrame(len(payload) <= smallFrame, func(dst []byte) []byte { return append(dst, payload...) })
	return err
}

// writeLoop flushes coalesced frames until the peer closes.
func (p *peer) writeLoop() {
	for {
		p.mu.Lock()
		for len(p.pend) == 0 && !p.closed {
			p.wake.Wait()
		}
		if len(p.pend) == 0 && p.closed {
			p.mu.Unlock()
			return
		}
		buf := p.pend
		frames := p.frames
		p.pend, p.spare = p.spare[:0], nil
		p.frames = 0
		p.writing = true
		p.mu.Unlock()
		p.space.Broadcast()

		_, err := p.conn.Write(buf)
		if p.onWrite != nil {
			p.onWrite(frames, int64(len(buf)))
		}
		p.mu.Lock()
		p.writing = false
		if err != nil && p.err == nil {
			p.err = err
			p.closed = true
		}
		if p.spare == nil && cap(buf) <= maxPend {
			p.spare = buf[:0]
		}
		closed := p.closed
		p.mu.Unlock()
		if closed && err != nil {
			p.space.Broadcast()
			return
		}
	}
}

// close shuts the connection down: no new frames are accepted, the writer
// gets a bounded chance to drain what is already queued (session-ending
// goodbyes must reach the wire), then the socket dies and blocked senders
// unblock.
func (p *peer) close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.wake.Signal()
	p.space.Broadcast()
	deadline := time.Now().Add(2 * time.Second)
	for {
		p.mu.Lock()
		drained := (len(p.pend) == 0 && !p.writing) || p.err != nil
		p.mu.Unlock()
		if drained || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	_ = p.conn.Close()
}

// readFrame reads the next inbound frame on the caller's goroutine,
// through the connection's buffered reader.
func (p *peer) readFrame(buf []byte) ([]byte, error) {
	return wire.ReadFrame(p.br, buf)
}
