package transport

import (
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dsteiner/internal/graph"
	rt "dsteiner/internal/runtime"
	"dsteiner/internal/wire"
)

// Hub is the coordinator end of the TCP backend: it accepts the rankd
// workers, runs the session handshake (shipping each worker its shard
// slices), roots every collective, drives the Safra-style termination-token
// ring for asynchronous traversals, fans out solve requests and collects
// their outcomes.
//
// The hub outlives its sessions. A hubSession is one generation of the
// worker fleet — its connections, event loop and poison state. Without
// recovery the hub runs exactly one session and a fault is fatal
// (fail-stop, the pre-v5 behavior). With EnableRecovery the hub retains the
// handshake payload (every worker's Setup, shard slices included) and a
// session identity; when a session is poisoned, the next dispatch heals it:
// workers re-handshake — survivors with a Rejoin frame proving membership,
// respawned replacements with a fresh Hello — the retained Setups ship
// again, and the in-flight query is requeued on the new generation instead
// of failing.
type Hub struct {
	ln      net.Listener
	ranks   int
	workers int
	rankLo  []int64

	// maxWireVer caps the wire version the hub negotiates (operator
	// rollback knob, core.Options.MaxWireVersion); wireVer is the session
	// version settled by Handshake: min over worker Hellos and the cap. It
	// is fixed across heals — a rejoining worker must speak at least the
	// session version, because the retained Setups are encoded at it.
	maxWireVer uint32
	wireVer    uint32

	solveMu sync.Mutex // one query outstanding at a time

	// cur is the live session generation (nil before Handshake, or between
	// a failure and a successful heal when recovery is on).
	sessMu sync.Mutex
	cur    *hubSession

	// Recovery state (EnableRecovery): the heal window, the worker-lost
	// hook (respawn driver), the session identity workers prove on Rejoin,
	// and the retained per-worker Setups — the PR 5 handshake payload kept
	// alive so a replacement worker can be rebuilt without the coordinator
	// re-cutting shards.
	recov      bool
	rejoinWait time.Duration
	onLost     func(error)
	sessionID  uint64
	setups     []wire.Setup

	// Fault accounting for the /stats faults block.
	detected atomic.Int64 // sessions poisoned
	rejoins  atomic.Int64 // workers re-admitted via Rejoin frames
	heals    atomic.Int64 // successful session rebuilds
	requeued atomic.Int64 // in-flight queries re-broadcast after a heal
	lastMu   sync.Mutex
	lastErr  string // most recent poisoning reason

	readys []wire.Ready

	closing   atomic.Bool
	closeOnce sync.Once
}

// hubSession is one generation of the worker fleet: its peer connections,
// the event loop serializing their frames, and the first-error poison
// state. All session state is owned by the event loop fed by per-connection
// reader goroutines, so no frame ordering is ever racy.
type hubSession struct {
	h *Hub

	peers     []*peer
	peerAddrs []string

	events  chan hubEvent
	loopEnd chan struct{}

	failOnce sync.Once
	failErr  error
	failMu   sync.Mutex
	failCh   chan struct{}
}

// hubEvent is one unit of event-loop input: a decoded frame from a worker,
// a reader error, or a query registration from Solve.
type hubEvent struct {
	worker int
	typ    uint8
	body   []byte // frame body; owned by the event
	err    error
	query  *pendingQuery
}

// pendingQuery accumulates one query's WorkerDone frames.
type pendingQuery struct {
	qid  uint64
	done int
	out  QueryOutcome
	ch   chan QueryOutcome
	// fragRounds is the fragment-merge round count reported by
	// FragmentRoundSummary frames (-1 until the first arrives); every
	// worker must report the same count or the session is poisoned.
	fragRounds int64
}

// QueryOutcome is everything the coordinator learns about one query from
// its workers: the rank-0 worker's encoded Result (or error), per-rank
// cross-cell table sizes, and cluster-wide counter and traffic deltas.
type QueryOutcome struct {
	QueryID    uint64
	Err        string
	Result     *wire.SolveResult
	TableLens  []int64 // indexed by global rank
	Sent       int64
	Processed  int64
	Suppressed int64
	Batched    int64 // delegate broadcasts released by outbox flushes
	Coalesced  int64 // delegate offers absorbed into staged outbox entries
	Net        wire.NetStats
	// Skipped is the rank-0 worker's skipped-terminal list for prize-mode
	// queries (wire v3 sessions only; always nil for tree and forest).
	Skipped []graph.VID
	// Fragment-merge MST counters from the rank-0 worker's v4 tail:
	// whether phase 4 ran the fragment merge, and the query's phase-3/4
	// cross-table wire bytes and fragment-exchange record count.
	MSTFragment     bool
	CrossTableBytes int64
	FragmentMsgs    int64
	// Parallel-frontier counters from the v6 WorkerDone tails: workers and
	// max-chunk are fleet maxima, the rest are sums over the workers. All
	// zero on pre-v6 sessions and when every rank drained serially.
	FrontierWorkers   int64
	FrontierDrains    int64
	FrontierMsgs      int64
	FrontierMaxChunk  int64
	FrontierConflicts int64
	FrontierBusyNs    int64
	FrontierWallNs    int64
}

// FaultStats is the hub's fault-tolerance accounting: sessions poisoned,
// workers re-admitted through Rejoin, successful heals, queries requeued
// onto a healed generation, and the most recent poisoning reason.
type FaultStats struct {
	Detected  int64
	Rejoins   int64
	Heals     int64
	Requeued  int64
	LastError string
}

// fragAcc accumulates one fragment exchange's per-worker contributions.
type fragAcc struct {
	count int
	blobs []rt.FragBlob
}

// collAcc accumulates one collective's per-worker contributions.
type collAcc struct {
	op    uint8
	count int
	acc   int64
	blobs [][]byte // rank-indexed for OpGather
}

// tokenSession tracks the termination-token ring of one traversal.
type tokenSession struct {
	began int // TraverseBegin frames seen
	at    int // worker currently holding the token (-1: not circulating)
}

// acceptedConn is one admitted worker connection during a handshake or
// heal, before the session is built around it.
type acceptedConn struct {
	conn net.Conn
	addr string
}

// ListenHub opens the coordinator listener for a session of `workers`
// processes hosting `ranks` ranks split into contiguous near-equal ranges.
func ListenHub(addr string, workers, ranks int) (*Hub, error) {
	if workers < 1 || ranks < workers {
		return nil, fmt.Errorf("transport: need 1 <= workers (%d) <= ranks (%d)", workers, ranks)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	h := &Hub{
		ln:         ln,
		ranks:      ranks,
		workers:    workers,
		rankLo:     SplitRanks(ranks, workers),
		maxWireVer: wire.Version,
	}
	return h, nil
}

// LimitWireVersion caps the wire version the hub will negotiate (rollback
// to the v1 batch frames without redeploying workers). Call before
// Handshake; 0 or anything above wire.Version means no extra cap.
func (h *Hub) LimitWireVersion(v uint32) {
	if v == 0 || v > wire.Version {
		v = wire.Version
	}
	if v < wire.MinVersion {
		v = wire.MinVersion
	}
	h.maxWireVer = v
}

// EnableRecovery arms session healing: the hub retains every worker's
// Setup (shard slices included) so a poisoned session is rebuilt on the
// next dispatch instead of staying dead. rejoinWait bounds how long one
// heal waits for all workers to re-handshake (0 = 30s); onLost, if set, is
// called (on its own goroutine) each time a session is poisoned — the hook
// coordinator-driven respawn plugs into. Call before Handshake.
func (h *Hub) EnableRecovery(rejoinWait time.Duration, onLost func(error)) {
	if rejoinWait <= 0 {
		rejoinWait = 30 * time.Second
	}
	h.recov = true
	h.rejoinWait = rejoinWait
	h.onLost = onLost
}

// WireVersion returns the session's negotiated wire version (valid after
// Handshake).
func (h *Hub) WireVersion() uint32 { return h.wireVer }

// SessionID returns the session identity workers prove on Rejoin (valid
// after Handshake; 0 on sessions below wire v5).
func (h *Hub) SessionID() uint64 {
	if h.wireVer < 5 {
		return 0
	}
	return h.sessionID
}

// FaultStats snapshots the hub's fault accounting.
func (h *Hub) FaultStats() FaultStats {
	h.lastMu.Lock()
	last := h.lastErr
	h.lastMu.Unlock()
	return FaultStats{
		Detected:  h.detected.Load(),
		Rejoins:   h.rejoins.Load(),
		Heals:     h.heals.Load(),
		Requeued:  h.requeued.Load(),
		LastError: last,
	}
}

// SplitRanks returns the contiguous rank ranges of a session: worker w
// hosts ranks [out[w], out[w+1]), ranges differing by at most one rank.
func SplitRanks(ranks, workers int) []int64 {
	out := make([]int64, workers+1)
	base, rem := ranks/workers, ranks%workers
	for w := 0; w < workers; w++ {
		n := base
		if w < rem {
			n++
		}
		out[w+1] = out[w] + int64(n)
	}
	return out
}

// Addr returns the listener's address (for workers to dial).
func (h *Hub) Addr() string { return h.ln.Addr().String() }

// RankRange returns worker w's hosted rank range.
func (h *Hub) RankRange(w int) (lo, hi int) { return int(h.rankLo[w]), int(h.rankLo[w+1]) }

// Workers returns the session's worker count.
func (h *Hub) Workers() int { return h.workers }

// current returns the live session generation, or nil.
func (h *Hub) current() *hubSession {
	h.sessMu.Lock()
	defer h.sessMu.Unlock()
	return h.cur
}

func (h *Hub) setCurrent(s *hubSession) {
	h.sessMu.Lock()
	h.cur = s
	h.sessMu.Unlock()
}

// newSessionID draws a non-zero random session identity (0 is the wire's
// "no rejoin" sentinel).
func newSessionID() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		if id := binary.LittleEndian.Uint64(b[:]); id != 0 {
			return id
		}
	}
	return uint64(time.Now().UnixNano()) | 1
}

// Handshake accepts every worker, exchanges the session setup and waits
// for all workers to report ready (shard + slab built, mesh connected).
// setupFor builds worker w's Setup given the session's peer address list;
// the hub fills in the geometry fields (WorkerIndex, RankLo, PeerAddrs) and
// the negotiated WireVersion/SessionID. On return the hub's event loop is
// running and Solve may be called.
func (h *Hub) Handshake(timeout time.Duration, setupFor func(w int) wire.Setup) ([]wire.Ready, error) {
	deadline := time.Now().Add(timeout)
	conns := make([]acceptedConn, 0, h.workers)
	sessionVer := h.maxWireVer
	fail := func(err error) ([]wire.Ready, error) {
		for _, a := range conns {
			_ = a.conn.Close()
		}
		_ = h.ln.Close()
		return nil, err
	}
	if tl, ok := h.ln.(*net.TCPListener); ok {
		_ = tl.SetDeadline(deadline)
	}
	for len(conns) < h.workers {
		conn, err := h.ln.Accept()
		if err != nil {
			return fail(fmt.Errorf("transport: waiting for worker %d/%d: %w", len(conns), h.workers, err))
		}
		_ = conn.SetReadDeadline(deadline)
		frame, err := wire.ReadFrame(conn, nil)
		if err != nil {
			return fail(fmt.Errorf("transport: hello from worker %d: %w", len(conns), err))
		}
		if frame[0] != wire.FrameHello {
			return fail(fmt.Errorf("transport: worker %d sent frame %d before hello", len(conns), frame[0]))
		}
		hello, err := wire.DecodeHello(frame[1:])
		if err != nil {
			return fail(fmt.Errorf("transport: hello from worker %d: %w", len(conns), err))
		}
		if hello.Version < wire.MinVersion || hello.Version > wire.Version {
			return fail(fmt.Errorf("transport: worker %d speaks wire version %d, coordinator supports [%d, %d]",
				len(conns), hello.Version, wire.MinVersion, wire.Version))
		}
		// The session runs at the minimum version any worker speaks
		// (capped by the operator limit): all peers must agree on the
		// batch frame encoding because batches flow worker ↔ worker.
		if hello.Version < sessionVer {
			sessionVer = hello.Version
		}
		conns = append(conns, acceptedConn{conn: conn, addr: hello.PeerAddr})
	}
	h.wireVer = sessionVer
	h.sessionID = newSessionID()
	if h.recov {
		h.setups = make([]wire.Setup, h.workers)
	}
	if _, err := h.startSession(conns, func(w int) wire.Setup { return setupFor(w) }); err != nil {
		_ = h.ln.Close()
		return nil, err
	}
	return h.readys, nil
}

// startSession is the shared tail of Handshake and heal: ship every
// worker's Setup with the generation's geometry filled in, collect the
// Ready acknowledgements (workers mesh among themselves in between), then
// build the session around the connections and start its event loop.
func (h *Hub) startSession(conns []acceptedConn, setupFor func(w int) wire.Setup) (*hubSession, error) {
	fail := func(err error) (*hubSession, error) {
		for _, a := range conns {
			_ = a.conn.Close()
		}
		return nil, err
	}
	peerAddrs := make([]string, h.workers)
	for w, a := range conns {
		peerAddrs[w] = a.addr
	}
	for w, a := range conns {
		setup := setupFor(w)
		setup.WorkerIndex = w
		setup.RankLo = h.rankLo
		setup.PeerAddrs = peerAddrs
		setup.WireVersion = h.wireVer
		setup.SessionID = h.sessionID
		if h.recov {
			// Retain the filled Setup; a heal re-ships it with only the
			// generation fields (WorkerIndex, PeerAddrs) rewritten.
			h.setups[w] = setup
		}
		if err := wire.WriteFrame(a.conn, wire.EncodeSetup(nil, setup)); err != nil {
			return fail(fmt.Errorf("transport: setup to worker %d: %w", w, err))
		}
	}
	readys := make([]wire.Ready, h.workers)
	for w, a := range conns {
		frame, err := wire.ReadFrame(a.conn, nil)
		if err != nil {
			return fail(fmt.Errorf("transport: ready from worker %d: %w", w, err))
		}
		if frame[0] == wire.FrameAbort {
			return fail(fmt.Errorf("transport: worker %d aborted during setup: %s", w, abortReason(frame[1:])))
		}
		if frame[0] != wire.FrameReady {
			return fail(fmt.Errorf("transport: worker %d sent frame %d before ready", w, frame[0]))
		}
		if readys[w], err = wire.DecodeReady(frame[1:]); err != nil {
			return fail(fmt.Errorf("transport: ready from worker %d: %w", w, err))
		}
		_ = a.conn.SetReadDeadline(time.Time{})
	}
	h.readys = readys
	s := &hubSession{
		h:         h,
		peers:     make([]*peer, h.workers),
		peerAddrs: peerAddrs,
		events:    make(chan hubEvent, 64),
		loopEnd:   make(chan struct{}),
		failCh:    make(chan struct{}),
	}
	for w, a := range conns {
		s.peers[w] = newPeer(a.conn, nil)
	}
	for w := range s.peers {
		go s.readWorker(w)
	}
	go s.run()
	h.setCurrent(s)
	return s, nil
}

// heal rebuilds a poisoned session from the retained Setups: tear the old
// generation down, re-admit W workers — survivors send Rejoin with the
// session identity, respawned replacements a fresh Hello — and run the
// setup/ready exchange again. Worker indices are assigned in accept order;
// the Setup a worker receives fully describes the ranks it now hosts, so
// identity across generations is irrelevant. Callers hold solveMu.
func (h *Hub) heal() (*hubSession, error) {
	if old := h.current(); old != nil {
		old.teardown()
		h.setCurrent(nil)
	}
	if len(h.setups) != h.workers {
		return nil, errors.New("transport: no retained setups to heal from")
	}
	deadline := time.Now().Add(h.rejoinWait)
	if tl, ok := h.ln.(*net.TCPListener); ok {
		_ = tl.SetDeadline(deadline)
	}
	conns := make([]acceptedConn, 0, h.workers)
	rejoined := 0
	for len(conns) < h.workers {
		conn, err := h.ln.Accept()
		if err != nil {
			for _, a := range conns {
				_ = a.conn.Close()
			}
			return nil, fmt.Errorf("transport: healing session: %d/%d workers re-handshook within %v: %w",
				len(conns), h.workers, h.rejoinWait, err)
		}
		a, viaRejoin, ok := h.admit(conn, deadline)
		if !ok {
			continue // rejected or dead connection; keep accepting
		}
		if viaRejoin {
			rejoined++
		}
		conns = append(conns, a)
	}
	s, err := h.startSession(conns, func(w int) wire.Setup { return h.setups[w] })
	if err != nil {
		return nil, fmt.Errorf("transport: healing session: %w", err)
	}
	h.rejoins.Add(int64(rejoined))
	h.heals.Add(1)
	return s, nil
}

// admit reads one connection's opening frame during a heal and validates
// it: a Rejoin must carry this hub's session identity, and any joiner must
// speak at least the session's pinned wire version (the retained Setups are
// encoded at it). Invalid connections get an Abort with the reason and are
// dropped without failing the heal.
func (h *Hub) admit(conn net.Conn, deadline time.Time) (acceptedConn, bool, bool) {
	reject := func(reason string) (acceptedConn, bool, bool) {
		_ = wire.WriteFrame(conn, wire.EncodeAbort(nil, wire.Abort{Reason: reason}))
		_ = conn.Close()
		return acceptedConn{}, false, false
	}
	_ = conn.SetReadDeadline(deadline)
	frame, err := wire.ReadFrame(conn, nil)
	if err != nil {
		_ = conn.Close()
		return acceptedConn{}, false, false
	}
	switch frame[0] {
	case wire.FrameRejoin:
		rj, err := wire.DecodeRejoin(frame[1:])
		if err != nil {
			return reject(fmt.Sprintf("transport: unreadable rejoin: %v", err))
		}
		if rj.SessionID != h.sessionID {
			return reject(fmt.Sprintf("transport: rejoin for unknown session %#x", rj.SessionID))
		}
		if rj.Version < h.wireVer || rj.Version > wire.Version {
			return reject(fmt.Sprintf("transport: rejoin wire version %d outside session range [%d, %d]",
				rj.Version, h.wireVer, wire.Version))
		}
		return acceptedConn{conn: conn, addr: rj.PeerAddr}, true, true
	case wire.FrameHello:
		hello, err := wire.DecodeHello(frame[1:])
		if err != nil {
			return reject(fmt.Sprintf("transport: unreadable hello: %v", err))
		}
		if hello.Version < h.wireVer || hello.Version > wire.Version {
			return reject(fmt.Sprintf("transport: hello wire version %d below healing session's %d",
				hello.Version, h.wireVer))
		}
		return acceptedConn{conn: conn, addr: hello.PeerAddr}, false, true
	default:
		return reject(fmt.Sprintf("transport: frame %d before hello/rejoin", frame[0]))
	}
}

// readWorker forwards worker w's frames to the event loop. Each frame gets
// a fresh buffer: control traffic is low-rate and the event loop owns the
// bytes afterwards.
func (s *hubSession) readWorker(w int) {
	for {
		frame, err := s.peers[w].readFrame(nil)
		if err != nil {
			s.events <- hubEvent{worker: w, err: err}
			return
		}
		s.events <- hubEvent{worker: w, typ: frame[0], body: frame[1:]}
	}
}

// fail poisons the session: every worker is told to abort, pending waiters
// unblock with the error, and the hub records the fault (driving the
// onLost respawn hook when recovery is armed).
func (s *hubSession) fail(err error) {
	s.failOnce.Do(func() {
		s.failMu.Lock()
		s.failErr = err
		s.failMu.Unlock()
		payload := wire.EncodeAbort(nil, wire.Abort{Reason: err.Error()})
		for _, p := range s.peers {
			_ = p.send(payload)
		}
		close(s.failCh)
		s.h.sessionFailed(err)
	})
}

// Err returns the error that poisoned the session, or nil.
func (s *hubSession) Err() error {
	s.failMu.Lock()
	defer s.failMu.Unlock()
	return s.failErr
}

// sessionFailed records one poisoned generation and fires the respawn
// hook. Clean closes don't come through here (the event loop checks
// closing first).
func (h *Hub) sessionFailed(err error) {
	if h.closing.Load() {
		return
	}
	h.detected.Add(1)
	h.lastMu.Lock()
	h.lastErr = err.Error()
	h.lastMu.Unlock()
	if h.recov && h.onLost != nil {
		go h.onLost(err)
	}
}

// teardown ends a (typically already poisoned) generation: close every
// peer so blocked readers unwind, then wait (bounded) for the event loop
// to drain.
func (s *hubSession) teardown() {
	s.fail(errors.New("transport: session superseded"))
	for _, p := range s.peers {
		p.close()
	}
	select {
	case <-s.loopEnd:
	case <-time.After(5 * time.Second):
	}
}

// Err returns the error that poisoned the current session, or nil. With
// recovery on, a healed hub reports nil again; between failure and heal it
// reports the most recent poisoning reason.
func (h *Hub) Err() error {
	if s := h.current(); s != nil {
		return s.Err()
	}
	h.lastMu.Lock()
	defer h.lastMu.Unlock()
	if h.lastErr == "" {
		return nil
	}
	return errors.New(h.lastErr)
}

// Solve broadcasts one tree query and blocks until every worker reports
// done (or the session fails). Calls are serialized; qid must be unique.
// Tree queries use this legacy frame at every negotiated wire version, so
// v1/v2 fleets keep answering them byte-identically.
func (h *Hub) Solve(qid uint64, seeds []graph.VID) (QueryOutcome, error) {
	return h.dispatch(qid, wire.EncodeSolve(nil, wire.Solve{QueryID: qid, Seeds: seeds}))
}

// SolveSpec broadcasts one mode-carrying query (forest or prize). The
// session must have negotiated wire version >= 3; the caller checks
// WireVersion first.
func (h *Hub) SolveSpec(spec wire.SolveSpec) (QueryOutcome, error) {
	if h.WireVersion() < 3 {
		return QueryOutcome{}, fmt.Errorf("transport: session wire version %d cannot carry a SolveSpec (need >= 3)",
			h.WireVersion())
	}
	return h.dispatch(spec.QueryID, wire.EncodeSolveSpec(nil, spec))
}

// dispatch broadcasts one encoded query frame and blocks until every worker
// reports done. Without recovery a session fault fails the query (and every
// later one). With recovery the fault triggers a heal — tearing down the
// poisoned generation, re-admitting the fleet, re-shipping the retained
// Setups — and the query is requeued on the healed generation, once; the
// solve is deterministic from setup + query, so the retried answer is
// byte-identical to what the lost generation would have produced.
func (h *Hub) dispatch(qid uint64, payload []byte) (QueryOutcome, error) {
	h.solveMu.Lock()
	defer h.solveMu.Unlock()
	retried := false
	for {
		s, err := h.readySession()
		if err != nil {
			return QueryOutcome{}, err
		}
		out, err := s.runQuery(qid, payload)
		if err == nil {
			return out, nil
		}
		if !h.recov || retried || h.closing.Load() {
			return QueryOutcome{}, err
		}
		retried = true
		h.requeued.Add(1)
	}
}

// readySession returns a healthy session to dispatch on, healing a
// poisoned one first when recovery is armed. Callers hold solveMu.
func (h *Hub) readySession() (*hubSession, error) {
	s := h.current()
	if s != nil && s.Err() == nil {
		return s, nil
	}
	if !h.recov {
		if s == nil {
			return nil, errors.New("transport: no active session")
		}
		return nil, s.Err()
	}
	return h.heal()
}

// runQuery registers the pending query, broadcasts the frame and waits for
// every worker's done (or the session's poisoning).
func (s *hubSession) runQuery(qid uint64, payload []byte) (QueryOutcome, error) {
	if err := s.Err(); err != nil {
		return QueryOutcome{}, err
	}
	pq := &pendingQuery{
		qid:        qid,
		out:        QueryOutcome{QueryID: qid, TableLens: make([]int64, s.h.ranks)},
		ch:         make(chan QueryOutcome, 1),
		fragRounds: -1,
	}
	// Register before broadcasting so no done frame can beat the query.
	select {
	case s.events <- hubEvent{query: pq}:
	case <-s.failCh:
		return QueryOutcome{}, s.Err()
	}
	for w, p := range s.peers {
		if err := p.send(payload); err != nil {
			s.fail(fmt.Errorf("transport: solve to worker %d: %w", w, err))
			return QueryOutcome{}, s.Err()
		}
	}
	select {
	case out := <-pq.ch:
		return out, nil
	case <-s.failCh:
		return QueryOutcome{}, s.Err()
	}
}

// Close ends the hub: the current session's workers get a goodbye, then the
// hub waits (bounded) for them to hang up — their readers draining is the
// signal the goodbye was processed — before tearing the connections and the
// listener down.
func (h *Hub) Close() {
	h.closeOnce.Do(func() {
		h.closing.Store(true)
		if s := h.current(); s != nil {
			s.shutdown()
		}
		_ = h.ln.Close()
	})
}

// shutdown runs a clean session end (Close path).
func (s *hubSession) shutdown() {
	for _, p := range s.peers {
		_ = p.send([]byte{wire.FrameGoodbye})
	}
	select {
	case <-s.loopEnd:
	case <-time.After(5 * time.Second):
	}
	for _, p := range s.peers {
		p.close()
	}
}

// run is the event loop: collectives, termination tokens, query outcomes
// and failures, all serialized here.
func (s *hubSession) run() {
	defer close(s.loopEnd)
	colls := make(map[uint64]*collAcc)
	frags := make(map[uint64]*fragAcc)
	sessions := make(map[uint64]*tokenSession)
	var pending *pendingQuery
	closedReaders := 0
	for ev := range s.events {
		switch {
		case ev.query != nil:
			pending = ev.query
		case ev.err != nil:
			closedReaders++
			// During a clean Close, workers hanging up is the expected
			// end of the session, not a failure.
			if s.Err() == nil && !s.h.closing.Load() {
				s.fail(fmt.Errorf("transport: worker %d connection: %w", ev.worker, ev.err))
			}
			if closedReaders == s.h.workers {
				return
			}
		default:
			if err := s.handleFrame(ev, colls, frags, sessions, &pending); err != nil {
				s.fail(err)
			}
		}
	}
}

// handleFrame processes one worker frame inside the event loop.
func (s *hubSession) handleFrame(ev hubEvent, colls map[uint64]*collAcc, frags map[uint64]*fragAcc,
	sessions map[uint64]*tokenSession, pending **pendingQuery) error {
	h := s.h
	w := ev.worker
	switch ev.typ {
	case wire.FrameColl:
		coll, err := wire.DecodeColl(ev.body)
		if err != nil {
			return fmt.Errorf("transport: collective from worker %d: %w", w, err)
		}
		return s.handleColl(w, coll, colls)

	case wire.FrameFragmentConnect:
		fc, err := wire.DecodeFragmentConnect(ev.body)
		if err != nil {
			return fmt.Errorf("transport: fragment connect from worker %d: %w", w, err)
		}
		return s.handleFragment(w, fc, frags)

	case wire.FrameFragmentRoundSummary:
		fs, err := wire.DecodeFragmentRoundSummary(ev.body)
		if err != nil {
			return fmt.Errorf("transport: fragment summary from worker %d: %w", w, err)
		}
		pq := *pending
		if pq == nil {
			return fmt.Errorf("transport: fragment summary with no pending query from worker %d", w)
		}
		if pq.fragRounds >= 0 && pq.fragRounds != fs.Rounds {
			return fmt.Errorf("transport: fragment merge diverged: worker %d ran %d rounds, earlier workers ran %d",
				w, fs.Rounds, pq.fragRounds)
		}
		pq.fragRounds = fs.Rounds
		return nil

	case wire.FrameTraverseBegin:
		tb, err := wire.DecodeTraverseBegin(ev.body)
		if err != nil {
			return fmt.Errorf("transport: traverse begin from worker %d: %w", w, err)
		}
		ts := sessions[tb.Seq]
		if ts == nil {
			ts = &tokenSession{at: -1}
			sessions[tb.Seq] = ts
		}
		ts.began++
		if ts.began == h.workers {
			// All processes entered the traversal: start the first token
			// round. Workers reset their color to black at traversal
			// start, so at least two rounds always run.
			ts.at = 0
			return s.sendToken(ts, wire.Token{Seq: tb.Seq, Q: 0, Black: false})
		}
		return nil

	case wire.FrameToken:
		tok, err := wire.DecodeToken(ev.body)
		if err != nil {
			return fmt.Errorf("transport: token from worker %d: %w", w, err)
		}
		ts := sessions[tok.Seq]
		if ts == nil || ts.at != w {
			return fmt.Errorf("transport: unexpected token for traversal %d from worker %d", tok.Seq, w)
		}
		if w+1 < h.workers {
			ts.at = w + 1
			return s.sendToken(ts, tok)
		}
		// Round complete at the last worker.
		if !tok.Black && tok.Q == 0 {
			delete(sessions, tok.Seq)
			payload := wire.EncodeTraverseDone(nil, wire.TraverseDone{Seq: tok.Seq})
			for dw, p := range s.peers {
				if err := p.send(payload); err != nil {
					return fmt.Errorf("transport: traverse done to worker %d: %w", dw, err)
				}
			}
			return nil
		}
		ts.at = 0
		return s.sendToken(ts, wire.Token{Seq: tok.Seq, Q: 0, Black: false})

	case wire.FrameWorkerDone:
		done, err := wire.DecodeWorkerDone(ev.body)
		if err != nil {
			return fmt.Errorf("transport: done from worker %d: %w", w, err)
		}
		pq := *pending
		if pq == nil || pq.qid != done.QueryID {
			return fmt.Errorf("transport: done for unknown query %d from worker %d", done.QueryID, w)
		}
		lo, hi := h.RankRange(w)
		if len(done.TableLens) != hi-lo {
			return fmt.Errorf("transport: worker %d reported %d table sizes for %d ranks",
				w, len(done.TableLens), hi-lo)
		}
		copy(pq.out.TableLens[lo:hi], done.TableLens)
		pq.out.Sent += done.Sent
		pq.out.Processed += done.Processed
		pq.out.Suppressed += done.Suppressed
		pq.out.Batched += done.Batched
		pq.out.Coalesced += done.Coalesced
		pq.out.FrontierDrains += done.FrontierDrains
		pq.out.FrontierMsgs += done.FrontierMsgs
		pq.out.FrontierConflicts += done.FrontierConflicts
		pq.out.FrontierBusyNs += done.FrontierBusyNs
		pq.out.FrontierWallNs += done.FrontierWallNs
		if done.FrontierWorkers > pq.out.FrontierWorkers {
			pq.out.FrontierWorkers = done.FrontierWorkers
		}
		if done.FrontierMaxChunk > pq.out.FrontierMaxChunk {
			pq.out.FrontierMaxChunk = done.FrontierMaxChunk
		}
		pq.out.Net.Add(done.Net)
		if done.Err != "" {
			pq.out.Err = done.Err
		}
		if done.HasResult {
			res := done.Result
			pq.out.Result = &res
			pq.out.Skipped = done.Skipped
			pq.out.MSTFragment = done.MSTFragment
			pq.out.CrossTableBytes = done.CrossTableBytes
			pq.out.FragmentMsgs = done.FragmentMsgs
		}
		pq.done++
		if pq.done == h.workers {
			*pending = nil
			pq.ch <- pq.out
		}
		return nil

	case wire.FrameAbort:
		return fmt.Errorf("transport: worker %d aborted: %s", w, abortReason(ev.body))

	default:
		return fmt.Errorf("transport: unexpected frame type %d from worker %d", ev.typ, w)
	}
}

// sendToken forwards the termination token to the session's current
// holder (ts.at, set by the caller).
func (s *hubSession) sendToken(ts *tokenSession, tok wire.Token) error {
	if err := s.peers[ts.at].send(wire.EncodeToken(nil, tok)); err != nil {
		return fmt.Errorf("transport: token to worker %d: %w", ts.at, err)
	}
	return nil
}

// handleFragment folds one fragment-exchange contribution and, once every
// worker has contributed, answers each worker with a personalized reply:
// only the blobs addressed to its rank range, plus broadcasts. This is the
// routing step that replaces OpGather's everything-to-everyone blob list.
func (s *hubSession) handleFragment(w int, fc wire.FragmentConnect, frags map[uint64]*fragAcc) error {
	h := s.h
	acc := frags[fc.Seq]
	if acc == nil {
		acc = &fragAcc{}
		frags[fc.Seq] = acc
	}
	for _, fb := range fc.Blobs {
		if fb.Dest != -1 && (fb.Dest < 0 || fb.Dest >= h.ranks) {
			return fmt.Errorf("transport: fragment exchange %d: dest rank %d out of range from worker %d",
				fc.Seq, fb.Dest, w)
		}
	}
	acc.blobs = append(acc.blobs, fc.Blobs...)
	acc.count++
	if acc.count < h.workers {
		return nil
	}
	delete(frags, fc.Seq)
	for dw, p := range s.peers {
		lo, hi := h.RankRange(dw)
		var out []rt.FragBlob
		for _, fb := range acc.blobs {
			if fb.Dest == -1 || (fb.Dest >= lo && fb.Dest < hi) {
				out = append(out, fb)
			}
		}
		reply := wire.EncodeFragmentRelabel(nil, wire.FragmentRelabel{Seq: fc.Seq, Blobs: out})
		if err := p.send(reply); err != nil {
			return fmt.Errorf("transport: fragment reply to worker %d: %w", dw, err)
		}
	}
	return nil
}

// handleColl folds one collective contribution and replies when complete.
func (s *hubSession) handleColl(w int, coll wire.Coll, colls map[uint64]*collAcc) error {
	h := s.h
	acc := colls[coll.Seq]
	if acc == nil {
		acc = &collAcc{op: coll.Op}
		if coll.Op == wire.OpGather {
			acc.blobs = make([][]byte, h.ranks)
		}
		colls[coll.Seq] = acc
	}
	if acc.op != coll.Op {
		return fmt.Errorf("transport: collective %d op mismatch (%d vs %d) from worker %d",
			coll.Seq, acc.op, coll.Op, w)
	}
	switch coll.Op {
	case wire.OpBarrier:
	case wire.OpGather:
		contrib, err := wire.DecodeRankBlobs(coll.Payload)
		if err != nil {
			return fmt.Errorf("transport: gather %d from worker %d: %w", coll.Seq, w, err)
		}
		for _, rb := range contrib {
			if rb.Rank < 0 || rb.Rank >= h.ranks {
				return fmt.Errorf("transport: gather %d: rank %d out of range", coll.Seq, rb.Rank)
			}
			acc.blobs[rb.Rank] = rb.Blob
		}
	default:
		x, err := wire.DecodeInt64(coll.Payload)
		if err != nil {
			return fmt.Errorf("transport: allreduce %d from worker %d: %w", coll.Seq, w, err)
		}
		if acc.count == 0 {
			acc.acc = x
		} else {
			switch coll.Op {
			case wire.OpMinInt64:
				if x < acc.acc {
					acc.acc = x
				}
			case wire.OpMaxInt64:
				if x > acc.acc {
					acc.acc = x
				}
			default:
				acc.acc += x
			}
		}
	}
	acc.count++
	if acc.count < h.workers {
		return nil
	}
	delete(colls, coll.Seq)
	var payload []byte
	switch coll.Op {
	case wire.OpBarrier:
	case wire.OpGather:
		payload = wire.EncodeBlobList(nil, acc.blobs)
	default:
		payload = wire.EncodeInt64(acc.acc)
	}
	reply := wire.EncodeCollReply(nil, wire.CollReply{Seq: coll.Seq, Payload: payload})
	for dw, p := range s.peers {
		if err := p.send(reply); err != nil {
			return fmt.Errorf("transport: collective reply to worker %d: %w", dw, err)
		}
	}
	return nil
}
