package transport

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dsteiner/internal/graph"
	rt "dsteiner/internal/runtime"
	"dsteiner/internal/wire"
)

// Hub is the coordinator end of the TCP backend: it accepts the rankd
// workers, runs the session handshake (shipping each worker its shard
// slices), roots every collective, drives the Safra-style termination-token
// ring for asynchronous traversals, fans out solve requests and collects
// their outcomes. All hub state is owned by a single event loop fed by
// per-connection reader goroutines, so no frame ordering is ever racy.
type Hub struct {
	ln      net.Listener
	ranks   int
	workers int
	rankLo  []int64

	peers     []*peer
	peerAddrs []string
	readys    []wire.Ready

	events  chan hubEvent
	loopEnd chan struct{}

	// maxWireVer caps the wire version the hub negotiates (operator
	// rollback knob, core.Options.MaxWireVersion); wireVer is the session
	// version settled by Handshake: min over worker Hellos and the cap.
	maxWireVer uint32
	wireVer    uint32

	solveMu sync.Mutex // one query outstanding at a time

	failOnce sync.Once
	failErr  error
	failMu   sync.Mutex
	failCh   chan struct{}

	closing   atomic.Bool
	closeOnce sync.Once
}

// hubEvent is one unit of event-loop input: a decoded frame from a worker,
// a reader error, or a query registration from Solve.
type hubEvent struct {
	worker int
	typ    uint8
	body   []byte // frame body; owned by the event
	err    error
	query  *pendingQuery
}

// pendingQuery accumulates one query's WorkerDone frames.
type pendingQuery struct {
	qid  uint64
	done int
	out  QueryOutcome
	ch   chan QueryOutcome
	// fragRounds is the fragment-merge round count reported by
	// FragmentRoundSummary frames (-1 until the first arrives); every
	// worker must report the same count or the session is poisoned.
	fragRounds int64
}

// QueryOutcome is everything the coordinator learns about one query from
// its workers: the rank-0 worker's encoded Result (or error), per-rank
// cross-cell table sizes, and cluster-wide counter and traffic deltas.
type QueryOutcome struct {
	QueryID    uint64
	Err        string
	Result     *wire.SolveResult
	TableLens  []int64 // indexed by global rank
	Sent       int64
	Processed  int64
	Suppressed int64
	Batched    int64 // delegate broadcasts released by outbox flushes
	Coalesced  int64 // delegate offers absorbed into staged outbox entries
	Net        wire.NetStats
	// Skipped is the rank-0 worker's skipped-terminal list for prize-mode
	// queries (wire v3 sessions only; always nil for tree and forest).
	Skipped []graph.VID
	// Fragment-merge MST counters from the rank-0 worker's v4 tail:
	// whether phase 4 ran the fragment merge, and the query's phase-3/4
	// cross-table wire bytes and fragment-exchange record count.
	MSTFragment     bool
	CrossTableBytes int64
	FragmentMsgs    int64
}

// fragAcc accumulates one fragment exchange's per-worker contributions.
type fragAcc struct {
	count int
	blobs []rt.FragBlob
}

// collAcc accumulates one collective's per-worker contributions.
type collAcc struct {
	op    uint8
	count int
	acc   int64
	blobs [][]byte // rank-indexed for OpGather
}

// tokenSession tracks the termination-token ring of one traversal.
type tokenSession struct {
	began int // TraverseBegin frames seen
	at    int // worker currently holding the token (-1: not circulating)
}

// ListenHub opens the coordinator listener for a session of `workers`
// processes hosting `ranks` ranks split into contiguous near-equal ranges.
func ListenHub(addr string, workers, ranks int) (*Hub, error) {
	if workers < 1 || ranks < workers {
		return nil, fmt.Errorf("transport: need 1 <= workers (%d) <= ranks (%d)", workers, ranks)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	h := &Hub{
		ln:         ln,
		ranks:      ranks,
		workers:    workers,
		rankLo:     SplitRanks(ranks, workers),
		events:     make(chan hubEvent, 64),
		loopEnd:    make(chan struct{}),
		failCh:     make(chan struct{}),
		maxWireVer: wire.Version,
	}
	return h, nil
}

// LimitWireVersion caps the wire version the hub will negotiate (rollback
// to the v1 batch frames without redeploying workers). Call before
// Handshake; 0 or anything above wire.Version means no extra cap.
func (h *Hub) LimitWireVersion(v uint32) {
	if v == 0 || v > wire.Version {
		v = wire.Version
	}
	if v < wire.MinVersion {
		v = wire.MinVersion
	}
	h.maxWireVer = v
}

// WireVersion returns the session's negotiated wire version (valid after
// Handshake).
func (h *Hub) WireVersion() uint32 { return h.wireVer }

// SplitRanks returns the contiguous rank ranges of a session: worker w
// hosts ranks [out[w], out[w+1]), ranges differing by at most one rank.
func SplitRanks(ranks, workers int) []int64 {
	out := make([]int64, workers+1)
	base, rem := ranks/workers, ranks%workers
	for w := 0; w < workers; w++ {
		n := base
		if w < rem {
			n++
		}
		out[w+1] = out[w] + int64(n)
	}
	return out
}

// Addr returns the listener's address (for workers to dial).
func (h *Hub) Addr() string { return h.ln.Addr().String() }

// RankRange returns worker w's hosted rank range.
func (h *Hub) RankRange(w int) (lo, hi int) { return int(h.rankLo[w]), int(h.rankLo[w+1]) }

// Workers returns the session's worker count.
func (h *Hub) Workers() int { return h.workers }

// Handshake accepts every worker, exchanges the session setup and waits
// for all workers to report ready (shard + slab built, mesh connected).
// setupFor builds worker w's Setup given the session's peer address list;
// the hub fills in the geometry fields (WorkerIndex, RankLo, PeerAddrs).
// On return the hub's event loop is running and Solve may be called.
func (h *Hub) Handshake(timeout time.Duration, setupFor func(w int) wire.Setup) ([]wire.Ready, error) {
	deadline := time.Now().Add(timeout)
	type accepted struct {
		conn net.Conn
		addr string
	}
	conns := make([]accepted, 0, h.workers)
	sessionVer := h.maxWireVer
	fail := func(err error) ([]wire.Ready, error) {
		for _, a := range conns {
			_ = a.conn.Close()
		}
		_ = h.ln.Close()
		return nil, err
	}
	if tl, ok := h.ln.(*net.TCPListener); ok {
		_ = tl.SetDeadline(deadline)
	}
	for len(conns) < h.workers {
		conn, err := h.ln.Accept()
		if err != nil {
			return fail(fmt.Errorf("transport: waiting for worker %d/%d: %w", len(conns), h.workers, err))
		}
		_ = conn.SetReadDeadline(deadline)
		frame, err := wire.ReadFrame(conn, nil)
		if err != nil {
			return fail(fmt.Errorf("transport: hello from worker %d: %w", len(conns), err))
		}
		if frame[0] != wire.FrameHello {
			return fail(fmt.Errorf("transport: worker %d sent frame %d before hello", len(conns), frame[0]))
		}
		hello, err := wire.DecodeHello(frame[1:])
		if err != nil {
			return fail(fmt.Errorf("transport: hello from worker %d: %w", len(conns), err))
		}
		if hello.Version < wire.MinVersion || hello.Version > wire.Version {
			return fail(fmt.Errorf("transport: worker %d speaks wire version %d, coordinator supports [%d, %d]",
				len(conns), hello.Version, wire.MinVersion, wire.Version))
		}
		// The session runs at the minimum version any worker speaks
		// (capped by the operator limit): all peers must agree on the
		// batch frame encoding because batches flow worker ↔ worker.
		if hello.Version < sessionVer {
			sessionVer = hello.Version
		}
		conns = append(conns, accepted{conn: conn, addr: hello.PeerAddr})
	}
	h.wireVer = sessionVer
	h.peerAddrs = make([]string, h.workers)
	for w, a := range conns {
		h.peerAddrs[w] = a.addr
	}
	// Ship every setup, then collect readiness: the workers mesh among
	// themselves in between.
	for w, a := range conns {
		setup := setupFor(w)
		setup.WorkerIndex = w
		setup.RankLo = h.rankLo
		setup.PeerAddrs = h.peerAddrs
		setup.WireVersion = sessionVer
		if err := wire.WriteFrame(a.conn, wire.EncodeSetup(nil, setup)); err != nil {
			return fail(fmt.Errorf("transport: setup to worker %d: %w", w, err))
		}
	}
	h.readys = make([]wire.Ready, h.workers)
	for w, a := range conns {
		frame, err := wire.ReadFrame(a.conn, nil)
		if err != nil {
			return fail(fmt.Errorf("transport: ready from worker %d: %w", w, err))
		}
		if frame[0] == wire.FrameAbort {
			ab, _ := wire.DecodeAbort(frame[1:])
			return fail(fmt.Errorf("transport: worker %d aborted during setup: %s", w, ab.Reason))
		}
		if frame[0] != wire.FrameReady {
			return fail(fmt.Errorf("transport: worker %d sent frame %d before ready", w, frame[0]))
		}
		if h.readys[w], err = wire.DecodeReady(frame[1:]); err != nil {
			return fail(fmt.Errorf("transport: ready from worker %d: %w", w, err))
		}
		_ = a.conn.SetReadDeadline(time.Time{})
	}
	h.peers = make([]*peer, h.workers)
	for w, a := range conns {
		h.peers[w] = newPeer(a.conn, nil)
	}
	for w := range h.peers {
		go h.readWorker(w)
	}
	go h.run()
	return h.readys, nil
}

// readWorker forwards worker w's frames to the event loop. Each frame gets
// a fresh buffer: control traffic is low-rate and the event loop owns the
// bytes afterwards.
func (h *Hub) readWorker(w int) {
	for {
		frame, err := h.peers[w].readFrame(nil)
		if err != nil {
			h.events <- hubEvent{worker: w, err: err}
			return
		}
		h.events <- hubEvent{worker: w, typ: frame[0], body: frame[1:]}
	}
}

// fail poisons the session: every worker is told to abort, pending waiters
// unblock with the error.
func (h *Hub) fail(err error) {
	h.failOnce.Do(func() {
		h.failMu.Lock()
		h.failErr = err
		h.failMu.Unlock()
		payload := wire.EncodeAbort(nil, wire.Abort{Reason: err.Error()})
		for _, p := range h.peers {
			_ = p.send(payload)
		}
		close(h.failCh)
	})
}

// Err returns the error that poisoned the session, or nil.
func (h *Hub) Err() error {
	h.failMu.Lock()
	defer h.failMu.Unlock()
	return h.failErr
}

// Solve broadcasts one tree query and blocks until every worker reports
// done (or the session fails). Calls are serialized; qid must be unique.
// Tree queries use this legacy frame at every negotiated wire version, so
// v1/v2 fleets keep answering them byte-identically.
func (h *Hub) Solve(qid uint64, seeds []graph.VID) (QueryOutcome, error) {
	return h.dispatch(qid, wire.EncodeSolve(nil, wire.Solve{QueryID: qid, Seeds: seeds}))
}

// SolveSpec broadcasts one mode-carrying query (forest or prize). The
// session must have negotiated wire version >= 3; the caller checks
// WireVersion first.
func (h *Hub) SolveSpec(spec wire.SolveSpec) (QueryOutcome, error) {
	if h.WireVersion() < 3 {
		return QueryOutcome{}, fmt.Errorf("transport: session wire version %d cannot carry a SolveSpec (need >= 3)",
			h.WireVersion())
	}
	return h.dispatch(spec.QueryID, wire.EncodeSolveSpec(nil, spec))
}

// dispatch broadcasts one encoded query frame and blocks until every worker
// reports done (or the session fails).
func (h *Hub) dispatch(qid uint64, payload []byte) (QueryOutcome, error) {
	h.solveMu.Lock()
	defer h.solveMu.Unlock()
	if err := h.Err(); err != nil {
		return QueryOutcome{}, err
	}
	pq := &pendingQuery{
		qid:        qid,
		out:        QueryOutcome{QueryID: qid, TableLens: make([]int64, h.ranks)},
		ch:         make(chan QueryOutcome, 1),
		fragRounds: -1,
	}
	// Register before broadcasting so no done frame can beat the query.
	select {
	case h.events <- hubEvent{query: pq}:
	case <-h.failCh:
		return QueryOutcome{}, h.Err()
	}
	for w, p := range h.peers {
		if err := p.send(payload); err != nil {
			h.fail(fmt.Errorf("transport: solve to worker %d: %w", w, err))
			return QueryOutcome{}, h.Err()
		}
	}
	select {
	case out := <-pq.ch:
		return out, nil
	case <-h.failCh:
		return QueryOutcome{}, h.Err()
	}
}

// Close ends the session: workers get a goodbye, then the hub waits
// (bounded) for them to hang up — their readers draining is the signal
// the goodbye was processed — before tearing the connections down.
func (h *Hub) Close() {
	h.closeOnce.Do(func() {
		h.closing.Store(true)
		for _, p := range h.peers {
			_ = p.send([]byte{wire.FrameGoodbye})
		}
		if h.peers != nil {
			select {
			case <-h.loopEnd:
			case <-time.After(5 * time.Second):
			}
		}
		for _, p := range h.peers {
			p.close()
		}
		_ = h.ln.Close()
	})
}

// run is the event loop: collectives, termination tokens, query outcomes
// and failures, all serialized here.
func (h *Hub) run() {
	defer close(h.loopEnd)
	colls := make(map[uint64]*collAcc)
	frags := make(map[uint64]*fragAcc)
	sessions := make(map[uint64]*tokenSession)
	var pending *pendingQuery
	closedReaders := 0
	for ev := range h.events {
		switch {
		case ev.query != nil:
			pending = ev.query
		case ev.err != nil:
			closedReaders++
			// During a clean Close, workers hanging up is the expected
			// end of the session, not a failure.
			if h.Err() == nil && !h.closing.Load() {
				h.fail(fmt.Errorf("transport: worker %d connection: %w", ev.worker, ev.err))
			}
			if closedReaders == h.workers {
				return
			}
		default:
			if err := h.handleFrame(ev, colls, frags, sessions, &pending); err != nil {
				h.fail(err)
			}
		}
	}
}

// handleFrame processes one worker frame inside the event loop.
func (h *Hub) handleFrame(ev hubEvent, colls map[uint64]*collAcc, frags map[uint64]*fragAcc,
	sessions map[uint64]*tokenSession, pending **pendingQuery) error {
	w := ev.worker
	switch ev.typ {
	case wire.FrameColl:
		coll, err := wire.DecodeColl(ev.body)
		if err != nil {
			return fmt.Errorf("transport: collective from worker %d: %w", w, err)
		}
		return h.handleColl(w, coll, colls)

	case wire.FrameFragmentConnect:
		fc, err := wire.DecodeFragmentConnect(ev.body)
		if err != nil {
			return fmt.Errorf("transport: fragment connect from worker %d: %w", w, err)
		}
		return h.handleFragment(w, fc, frags)

	case wire.FrameFragmentRoundSummary:
		fs, err := wire.DecodeFragmentRoundSummary(ev.body)
		if err != nil {
			return fmt.Errorf("transport: fragment summary from worker %d: %w", w, err)
		}
		pq := *pending
		if pq == nil {
			return fmt.Errorf("transport: fragment summary with no pending query from worker %d", w)
		}
		if pq.fragRounds >= 0 && pq.fragRounds != fs.Rounds {
			return fmt.Errorf("transport: fragment merge diverged: worker %d ran %d rounds, earlier workers ran %d",
				w, fs.Rounds, pq.fragRounds)
		}
		pq.fragRounds = fs.Rounds
		return nil

	case wire.FrameTraverseBegin:
		tb, err := wire.DecodeTraverseBegin(ev.body)
		if err != nil {
			return fmt.Errorf("transport: traverse begin from worker %d: %w", w, err)
		}
		s := sessions[tb.Seq]
		if s == nil {
			s = &tokenSession{at: -1}
			sessions[tb.Seq] = s
		}
		s.began++
		if s.began == h.workers {
			// All processes entered the traversal: start the first token
			// round. Workers reset their color to black at traversal
			// start, so at least two rounds always run.
			s.at = 0
			return h.sendToken(s, wire.Token{Seq: tb.Seq, Q: 0, Black: false})
		}
		return nil

	case wire.FrameToken:
		tok, err := wire.DecodeToken(ev.body)
		if err != nil {
			return fmt.Errorf("transport: token from worker %d: %w", w, err)
		}
		s := sessions[tok.Seq]
		if s == nil || s.at != w {
			return fmt.Errorf("transport: unexpected token for traversal %d from worker %d", tok.Seq, w)
		}
		if w+1 < h.workers {
			s.at = w + 1
			return h.sendToken(s, tok)
		}
		// Round complete at the last worker.
		if !tok.Black && tok.Q == 0 {
			delete(sessions, tok.Seq)
			payload := wire.EncodeTraverseDone(nil, wire.TraverseDone{Seq: tok.Seq})
			for dw, p := range h.peers {
				if err := p.send(payload); err != nil {
					return fmt.Errorf("transport: traverse done to worker %d: %w", dw, err)
				}
			}
			return nil
		}
		s.at = 0
		return h.sendToken(s, wire.Token{Seq: tok.Seq, Q: 0, Black: false})

	case wire.FrameWorkerDone:
		done, err := wire.DecodeWorkerDone(ev.body)
		if err != nil {
			return fmt.Errorf("transport: done from worker %d: %w", w, err)
		}
		pq := *pending
		if pq == nil || pq.qid != done.QueryID {
			return fmt.Errorf("transport: done for unknown query %d from worker %d", done.QueryID, w)
		}
		lo, hi := h.RankRange(w)
		if len(done.TableLens) != hi-lo {
			return fmt.Errorf("transport: worker %d reported %d table sizes for %d ranks",
				w, len(done.TableLens), hi-lo)
		}
		copy(pq.out.TableLens[lo:hi], done.TableLens)
		pq.out.Sent += done.Sent
		pq.out.Processed += done.Processed
		pq.out.Suppressed += done.Suppressed
		pq.out.Batched += done.Batched
		pq.out.Coalesced += done.Coalesced
		pq.out.Net.Add(done.Net)
		if done.Err != "" {
			pq.out.Err = done.Err
		}
		if done.HasResult {
			res := done.Result
			pq.out.Result = &res
			pq.out.Skipped = done.Skipped
			pq.out.MSTFragment = done.MSTFragment
			pq.out.CrossTableBytes = done.CrossTableBytes
			pq.out.FragmentMsgs = done.FragmentMsgs
		}
		pq.done++
		if pq.done == h.workers {
			*pending = nil
			pq.ch <- pq.out
		}
		return nil

	case wire.FrameAbort:
		ab, _ := wire.DecodeAbort(ev.body)
		return fmt.Errorf("transport: worker %d aborted: %s", w, ab.Reason)

	default:
		return fmt.Errorf("transport: unexpected frame type %d from worker %d", ev.typ, w)
	}
}

// sendToken forwards the termination token to the session's current
// holder (s.at, set by the caller).
func (h *Hub) sendToken(s *tokenSession, tok wire.Token) error {
	if err := h.peers[s.at].send(wire.EncodeToken(nil, tok)); err != nil {
		return fmt.Errorf("transport: token to worker %d: %w", s.at, err)
	}
	return nil
}

// handleFragment folds one fragment-exchange contribution and, once every
// worker has contributed, answers each worker with a personalized reply:
// only the blobs addressed to its rank range, plus broadcasts. This is the
// routing step that replaces OpGather's everything-to-everyone blob list.
func (h *Hub) handleFragment(w int, fc wire.FragmentConnect, frags map[uint64]*fragAcc) error {
	acc := frags[fc.Seq]
	if acc == nil {
		acc = &fragAcc{}
		frags[fc.Seq] = acc
	}
	for _, fb := range fc.Blobs {
		if fb.Dest != -1 && (fb.Dest < 0 || fb.Dest >= h.ranks) {
			return fmt.Errorf("transport: fragment exchange %d: dest rank %d out of range from worker %d",
				fc.Seq, fb.Dest, w)
		}
	}
	acc.blobs = append(acc.blobs, fc.Blobs...)
	acc.count++
	if acc.count < h.workers {
		return nil
	}
	delete(frags, fc.Seq)
	for dw, p := range h.peers {
		lo, hi := h.RankRange(dw)
		var out []rt.FragBlob
		for _, fb := range acc.blobs {
			if fb.Dest == -1 || (fb.Dest >= lo && fb.Dest < hi) {
				out = append(out, fb)
			}
		}
		reply := wire.EncodeFragmentRelabel(nil, wire.FragmentRelabel{Seq: fc.Seq, Blobs: out})
		if err := p.send(reply); err != nil {
			return fmt.Errorf("transport: fragment reply to worker %d: %w", dw, err)
		}
	}
	return nil
}

// handleColl folds one collective contribution and replies when complete.
func (h *Hub) handleColl(w int, coll wire.Coll, colls map[uint64]*collAcc) error {
	acc := colls[coll.Seq]
	if acc == nil {
		acc = &collAcc{op: coll.Op}
		if coll.Op == wire.OpGather {
			acc.blobs = make([][]byte, h.ranks)
		}
		colls[coll.Seq] = acc
	}
	if acc.op != coll.Op {
		return fmt.Errorf("transport: collective %d op mismatch (%d vs %d) from worker %d",
			coll.Seq, acc.op, coll.Op, w)
	}
	switch coll.Op {
	case wire.OpBarrier:
	case wire.OpGather:
		contrib, err := wire.DecodeRankBlobs(coll.Payload)
		if err != nil {
			return fmt.Errorf("transport: gather %d from worker %d: %w", coll.Seq, w, err)
		}
		for _, rb := range contrib {
			if rb.Rank < 0 || rb.Rank >= h.ranks {
				return fmt.Errorf("transport: gather %d: rank %d out of range", coll.Seq, rb.Rank)
			}
			acc.blobs[rb.Rank] = rb.Blob
		}
	default:
		x, err := wire.DecodeInt64(coll.Payload)
		if err != nil {
			return fmt.Errorf("transport: allreduce %d from worker %d: %w", coll.Seq, w, err)
		}
		if acc.count == 0 {
			acc.acc = x
		} else {
			switch coll.Op {
			case wire.OpMinInt64:
				if x < acc.acc {
					acc.acc = x
				}
			case wire.OpMaxInt64:
				if x > acc.acc {
					acc.acc = x
				}
			default:
				acc.acc += x
			}
		}
	}
	acc.count++
	if acc.count < h.workers {
		return nil
	}
	delete(colls, coll.Seq)
	var payload []byte
	switch coll.Op {
	case wire.OpBarrier:
	case wire.OpGather:
		payload = wire.EncodeBlobList(nil, acc.blobs)
	default:
		payload = wire.EncodeInt64(acc.acc)
	}
	reply := wire.EncodeCollReply(nil, wire.CollReply{Seq: coll.Seq, Payload: payload})
	for dw, p := range h.peers {
		if err := p.send(reply); err != nil {
			return fmt.Errorf("transport: collective reply to worker %d: %w", dw, err)
		}
	}
	return nil
}
