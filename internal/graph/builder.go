package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates undirected edges and produces a CSR Graph. Duplicate
// edges keep the minimum weight; self loops are dropped. Builder is not safe
// for concurrent use.
type Builder struct {
	n     int
	edges []Edge
}

// NewBuilder returns a Builder for a graph with n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// AddEdge records the undirected edge {u, v} with weight w. Zero-weight
// edges are clamped to weight 1 (the paper's distance function maps into
// Z+ \ {0}).
func (b *Builder) AddEdge(u, v VID, w uint32) {
	if u == v {
		return
	}
	if w == 0 {
		w = 1
	}
	b.edges = append(b.edges, Edge{U: u, V: v, W: w}.Canon())
}

// AddEdges records a batch of edges.
func (b *Builder) AddEdges(edges []Edge) {
	for _, e := range edges {
		b.AddEdge(e.U, e.V, e.W)
	}
}

// NumPending returns the number of edge records added so far (before
// deduplication).
func (b *Builder) NumPending() int { return len(b.edges) }

// Build produces the CSR graph. The Builder can be reused afterwards.
func (b *Builder) Build() (*Graph, error) {
	for _, e := range b.edges {
		if e.U < 0 || int(e.U) >= b.n || e.V < 0 || int(e.V) >= b.n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.U, e.V, b.n)
		}
	}
	// Deduplicate keeping the minimum weight per canonical pair.
	sort.Slice(b.edges, func(i, j int) bool {
		a, c := b.edges[i], b.edges[j]
		if a.U != c.U {
			return a.U < c.U
		}
		if a.V != c.V {
			return a.V < c.V
		}
		return a.W < c.W
	})
	uniq := b.edges[:0]
	for _, e := range b.edges {
		if len(uniq) > 0 {
			last := &uniq[len(uniq)-1]
			if last.U == e.U && last.V == e.V {
				continue // sorted by weight: first occurrence is the minimum
			}
		}
		uniq = append(uniq, e)
	}
	return FromEdges(b.n, uniq)
}

// FromEdges builds a CSR graph from a deduplicated canonical edge list.
// Most callers should use a Builder; FromEdges assumes edges are unique
// {U < V} pairs but tolerates any order.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	g := &Graph{
		offsets: make([]int64, n+1),
		targets: make([]VID, 2*len(edges)),
		weights: make([]uint32, 2*len(edges)),
		numEdge: int64(len(edges)),
	}
	if len(edges) > 0 {
		g.minW = edges[0].W
	}
	for _, e := range edges {
		if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
		if e.U == e.V {
			return nil, fmt.Errorf("graph: self loop at %d", e.U)
		}
		g.offsets[e.U+1]++
		g.offsets[e.V+1]++
		if e.W < g.minW {
			g.minW = e.W
		}
		if e.W > g.maxW {
			g.maxW = e.W
		}
	}
	for v := 0; v < n; v++ {
		g.offsets[v+1] += g.offsets[v]
	}
	cursor := make([]int64, n)
	for _, e := range edges {
		iu := g.offsets[e.U] + cursor[e.U]
		g.targets[iu], g.weights[iu] = e.V, e.W
		cursor[e.U]++
		iv := g.offsets[e.V] + cursor[e.V]
		g.targets[iv], g.weights[iv] = e.U, e.W
		cursor[e.V]++
	}
	// Sort each adjacency list by target for binary search and determinism.
	for v := 0; v < n; v++ {
		lo, hi := g.offsets[v], g.offsets[v+1]
		sortAdj(g.targets[lo:hi], g.weights[lo:hi])
	}
	g.computeMaxDegree()
	return g, nil
}

// MustFromEdges is FromEdges that panics on error, for tests and examples
// with literal inputs.
func MustFromEdges(n int, edges []Edge) *Graph {
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// sortAdj sorts parallel target/weight slices by target. Insertion sort for
// short lists (the common case after RMAT generation), heap-free quicksort
// by index otherwise.
func sortAdj(ts []VID, ws []uint32) {
	if len(ts) < 24 {
		for i := 1; i < len(ts); i++ {
			t, w := ts[i], ws[i]
			j := i - 1
			for j >= 0 && ts[j] > t {
				ts[j+1], ws[j+1] = ts[j], ws[j]
				j--
			}
			ts[j+1], ws[j+1] = t, w
		}
		return
	}
	sort.Sort(&adjSorter{ts, ws})
}

type adjSorter struct {
	ts []VID
	ws []uint32
}

func (s *adjSorter) Len() int           { return len(s.ts) }
func (s *adjSorter) Less(i, j int) bool { return s.ts[i] < s.ts[j] }
func (s *adjSorter) Swap(i, j int) {
	s.ts[i], s.ts[j] = s.ts[j], s.ts[i]
	s.ws[i], s.ws[j] = s.ws[j], s.ws[i]
}
