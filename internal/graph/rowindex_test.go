package graph

import "testing"

func TestRowIndexAffineBlock(t *testing.T) {
	ix := NewRowIndex([]VID{10, 11, 12, 13})
	if ix.Len() != 4 || ix.MemoryBytes() != 0 {
		t.Fatalf("len=%d mem=%d; affine index should cost nothing", ix.Len(), ix.MemoryBytes())
	}
	for i, v := range []VID{10, 11, 12, 13} {
		if ix.Row(v) != int32(i) || ix.VertexAt(i) != v {
			t.Fatalf("row(%d)=%d vertexAt(%d)=%d", v, ix.Row(v), i, ix.VertexAt(i))
		}
	}
	for _, v := range []VID{9, 14, 0} {
		if ix.Row(v) != -1 {
			t.Fatalf("row(%d) = %d, want -1", v, ix.Row(v))
		}
	}
}

func TestRowIndexAffineStride(t *testing.T) {
	// Hash-partition owned set: rank 1 of P=3 over 10 vertices.
	ix := NewRowIndex([]VID{1, 4, 7})
	if ix.MemoryBytes() != 0 {
		t.Fatal("strided affine set fell back to a map")
	}
	for i, v := range []VID{1, 4, 7} {
		if ix.Row(v) != int32(i) || ix.VertexAt(i) != v {
			t.Fatalf("row(%d)=%d", v, ix.Row(v))
		}
	}
	for _, v := range []VID{0, 2, 3, 10} {
		if ix.Row(v) != -1 {
			t.Fatalf("row(%d) = %d, want -1", v, ix.Row(v))
		}
	}
}

func TestRowIndexIrregularFallsBackToMap(t *testing.T) {
	owned := []VID{0, 1, 5, 6}
	ix := NewRowIndex(owned)
	if ix.MemoryBytes() == 0 {
		t.Fatal("irregular set reported affine (free) index")
	}
	for i, v := range owned {
		if ix.Row(v) != int32(i) || ix.VertexAt(i) != v {
			t.Fatalf("row(%d)=%d vertexAt(%d)=%d", v, ix.Row(v), i, ix.VertexAt(i))
		}
	}
	if ix.Row(2) != -1 || ix.Row(7) != -1 {
		t.Fatal("non-member resolved to a row")
	}
}

func TestRowIndexEmpty(t *testing.T) {
	ix := NewRowIndex(nil)
	if ix.Len() != 0 || ix.Row(0) != -1 || ix.MemoryBytes() != 0 {
		t.Fatalf("empty index misbehaves: len=%d row(0)=%d", ix.Len(), ix.Row(0))
	}
}
