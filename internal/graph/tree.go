package graph

import "fmt"

// TreeCheck reports structural facts about an edge set interpreted as a
// subgraph of some background graph.
type TreeCheck struct {
	NumVertices int  // distinct endpoints
	NumEdges    int  // edges in the set
	Connected   bool // single connected piece
	Acyclic     bool // |E| == |V|-1 and connected implies tree
}

// CheckTree analyses an edge multiset. Duplicate edges count as cycles.
func CheckTree(edges []Edge) TreeCheck {
	if len(edges) == 0 {
		return TreeCheck{Connected: true, Acyclic: true}
	}
	// Collect endpoints and map to dense indices.
	idx := make(map[VID]int, len(edges)*2)
	for _, e := range edges {
		if _, ok := idx[e.U]; !ok {
			idx[e.U] = len(idx)
		}
		if _, ok := idx[e.V]; !ok {
			idx[e.V] = len(idx)
		}
	}
	parent := make([]int, len(idx))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	acyclic := true
	comps := len(idx)
	for _, e := range edges {
		ru, rv := find(idx[e.U]), find(idx[e.V])
		if ru == rv {
			acyclic = false
			continue
		}
		parent[ru] = rv
		comps--
	}
	return TreeCheck{
		NumVertices: len(idx),
		NumEdges:    len(edges),
		Connected:   comps == 1,
		Acyclic:     acyclic,
	}
}

// ValidateSteinerTree verifies that edges form a valid Steiner tree of g for
// the given seed set: every edge exists in g with matching weight, the edge
// set is a tree, all seeds appear in it (a single seed with no edges is
// valid), and every leaf is a seed (KMB Step 5 postcondition). It returns a
// descriptive error on the first violation.
func ValidateSteinerTree(g *Graph, seeds []VID, edges []Edge) error {
	if len(seeds) == 0 {
		return fmt.Errorf("steiner: empty seed set")
	}
	if len(seeds) == 1 && len(edges) == 0 {
		return nil
	}
	inTree := make(map[VID]int, len(edges)*2) // vertex -> degree
	seen := make(map[[2]VID]bool, len(edges))
	for _, e := range edges {
		w, ok := g.HasEdge(e.U, e.V)
		if !ok {
			return fmt.Errorf("steiner: edge (%d,%d) not in background graph", e.U, e.V)
		}
		if w != e.W {
			return fmt.Errorf("steiner: edge (%d,%d) weight %d != graph weight %d", e.U, e.V, e.W, w)
		}
		c := e.Canon()
		key := [2]VID{c.U, c.V}
		if seen[key] {
			return fmt.Errorf("steiner: duplicate edge (%d,%d)", c.U, c.V)
		}
		seen[key] = true
		inTree[e.U]++
		inTree[e.V]++
	}
	chk := CheckTree(edges)
	if !chk.Connected {
		return fmt.Errorf("steiner: edge set is disconnected")
	}
	if !chk.Acyclic {
		return fmt.Errorf("steiner: edge set contains a cycle")
	}
	isSeed := make(map[VID]bool, len(seeds))
	for _, s := range seeds {
		isSeed[s] = true
		if _, ok := inTree[s]; !ok {
			return fmt.Errorf("steiner: seed %d not spanned", s)
		}
	}
	for v, deg := range inTree {
		if deg == 1 && !isSeed[v] {
			return fmt.Errorf("steiner: non-seed leaf %d", v)
		}
	}
	return nil
}

// PruneNonSeedLeaves repeatedly removes tree leaves that are not seeds (KMB
// Algorithm 1, Step 5). The input must be a tree; the result is the pruned
// edge list. Sequential baselines (KMB, Mehlhorn, WWW) use this; the
// distributed algorithm produces seed-only leaves by construction.
func PruneNonSeedLeaves(edges []Edge, seeds []VID) []Edge {
	isSeed := make(map[VID]bool, len(seeds))
	for _, s := range seeds {
		isSeed[s] = true
	}
	cur := append([]Edge(nil), edges...)
	for {
		deg := make(map[VID]int, len(cur)*2)
		for _, e := range cur {
			deg[e.U]++
			deg[e.V]++
		}
		next := cur[:0]
		removed := false
		for _, e := range cur {
			if (deg[e.U] == 1 && !isSeed[e.U]) || (deg[e.V] == 1 && !isSeed[e.V]) {
				removed = true
				continue
			}
			next = append(next, e)
		}
		cur = next
		if !removed {
			return cur
		}
	}
}
