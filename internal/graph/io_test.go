package graph

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// validBinary serializes the Fig. 1 graph, returning the raw container
// bytes for corruption tests. Layout: magic[8] n[8] arcs[8] offsets
// targets weights (all little endian).
func validBinary(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, paperFig1(t)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func readBytes(b []byte) error {
	_, err := ReadBinary(bytes.NewReader(b))
	return err
}

func TestReadBinaryTruncatedHeader(t *testing.T) {
	raw := validBinary(t)
	cases := []struct {
		name string
		cut  int
		want string
	}{
		{"empty", 0, "magic"},
		{"mid magic", 4, "magic"},
		{"magic only", 8, "EOF"},
		{"mid header", 12, "EOF"},
		{"header only", 24, "EOF"}, // offsets missing
	}
	for _, tc := range cases {
		err := readBytes(raw[:tc.cut])
		if err == nil {
			t.Errorf("%s: truncation at %d accepted", tc.name, tc.cut)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

func TestReadBinaryTruncatedBody(t *testing.T) {
	raw := validBinary(t)
	// Anywhere inside the arrays: offsets / targets / weights regions.
	for _, cut := range []int{30, len(raw) / 2, len(raw) - 4} {
		if err := readBytes(raw[:cut]); err == nil {
			t.Errorf("truncation at %d of %d accepted", cut, len(raw))
		}
	}
}

func TestReadBinaryBadMagic(t *testing.T) {
	raw := validBinary(t)
	for _, i := range []int{0, 3, 7} {
		corrupt := append([]byte(nil), raw...)
		corrupt[i] ^= 0xff
		err := readBytes(corrupt)
		if err == nil || !strings.Contains(err.Error(), "bad magic") {
			t.Errorf("magic byte %d corrupted: err = %v", i, err)
		}
	}
}

// patchHeader returns the container with the n (index 0) or arcs (index 1)
// header field overwritten.
func patchHeader(raw []byte, field int, value uint64) []byte {
	out := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint64(out[8+8*field:], value)
	return out
}

func TestReadBinaryArcCountMismatch(t *testing.T) {
	raw := validBinary(t)
	g, err := ReadBinary(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	arcs := uint64(g.NumArcs())

	// Fewer arcs than the offsets claim: the reader consumes short target/
	// weight arrays and validation must catch the inconsistency.
	err = readBytes(patchHeader(raw, 1, arcs-2))
	if err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Errorf("arcs-2: err = %v, want size mismatch", err)
	}
	// More arcs than the payload holds: the read itself must fail.
	if err := readBytes(patchHeader(raw, 1, arcs+2)); err == nil {
		t.Error("arcs+2 accepted")
	}
	// Giant counts must be rejected before any allocation.
	err = readBytes(patchHeader(raw, 1, 1<<40))
	if err == nil || !strings.Contains(err.Error(), "bad header") {
		t.Errorf("giant arcs: err = %v, want bad header", err)
	}
	err = readBytes(patchHeader(raw, 0, 1<<40))
	if err == nil || !strings.Contains(err.Error(), "bad header") {
		t.Errorf("giant n: err = %v, want bad header", err)
	}
}

func TestReadBinaryVertexCountMismatch(t *testing.T) {
	raw := validBinary(t)
	g, err := ReadBinary(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	n := uint64(g.NumVertices())
	// A smaller n misaligns the offsets array against the payload; either
	// the offsets prefix or the validation must reject it.
	if err := readBytes(patchHeader(raw, 0, n-1)); err == nil {
		t.Error("n-1 accepted")
	}
	if err := readBytes(patchHeader(raw, 0, n+1)); err == nil {
		t.Error("n+1 accepted")
	}
}

func TestReadBinaryRoundTripAfterCorruptAttempts(t *testing.T) {
	// The reader must stay usable: a good payload after bad ones parses.
	raw := validBinary(t)
	g, err := ReadBinary(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	want := paperFig1(t)
	if g.NumVertices() != want.NumVertices() || g.NumArcs() != want.NumArcs() {
		t.Fatalf("round trip: |V|=%d 2|E|=%d, want |V|=%d 2|E|=%d",
			g.NumVertices(), g.NumArcs(), want.NumVertices(), want.NumArcs())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}
