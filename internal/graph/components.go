package graph

// Components labels connected components by iterative BFS. Component IDs are
// dense, assigned in order of the lowest vertex in the component.
type Components struct {
	// Label[v] is the component ID of v.
	Label []int32
	// Size[c] is the number of vertices in component c.
	Size []int
}

// NumComponents returns the number of connected components.
func (c *Components) NumComponents() int { return len(c.Size) }

// Largest returns the ID of the largest component (lowest ID wins ties).
func (c *Components) Largest() int32 {
	best, bestSize := int32(0), -1
	for id, sz := range c.Size {
		if sz > bestSize {
			best, bestSize = int32(id), sz
		}
	}
	return best
}

// ConnectedComponents computes the connected components of g.
func ConnectedComponents(g *Graph) *Components {
	n := g.NumVertices()
	c := &Components{Label: make([]int32, n)}
	for i := range c.Label {
		c.Label[i] = -1
	}
	var queue []VID
	for v := 0; v < n; v++ {
		if c.Label[v] >= 0 {
			continue
		}
		id := int32(len(c.Size))
		size := 1
		c.Label[v] = id
		queue = append(queue[:0], VID(v))
		for len(queue) > 0 {
			x := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			ts, _ := g.Adj(x)
			for _, u := range ts {
				if c.Label[u] < 0 {
					c.Label[u] = id
					size++
					queue = append(queue, u)
				}
			}
		}
		c.Size = append(c.Size, size)
	}
	return c
}

// LargestComponentVertices returns the vertices of the largest connected
// component in increasing order. Seed selection draws only from this set,
// guaranteeing all seeds are mutually reachable (§V).
func LargestComponentVertices(g *Graph) []VID {
	c := ConnectedComponents(g)
	want := c.Largest()
	out := make([]VID, 0, c.Size[want])
	for v, l := range c.Label {
		if l == want {
			out = append(out, VID(v))
		}
	}
	return out
}
