// Package graph provides the weighted-graph substrate used throughout the
// repository: a compressed-sparse-row (CSR) representation of an undirected,
// positively integer-weighted graph, plus breadth-first search, connected
// components, tree utilities and simple binary/text serialization. Shard is
// the rank-local view of a partitioned graph — a compact CSR slab of one
// rank's owned adjacency plus materialized delegate stripes — that the
// distributed traversals run on instead of the shared global CSR.
//
// The representation follows the paper's conventions (§II): the background
// graph G(V, E, d) is undirected and stored symmetrically, so a graph with
// |E| undirected edges holds 2|E| directed arcs. Edge weights ("distances")
// are non-zero positive integers, d : E → Z+ \ {0}.
package graph

import (
	"fmt"
	"math"
)

// VID identifies a vertex. Vertices are dense integers in [0, NumVertices).
type VID int32

// NilVID is the sentinel "no vertex" value, used for uninitialized
// predecessor and source fields.
const NilVID VID = -1

// Dist is an accumulated path distance (a sum of edge weights). Edge weights
// are uint32 but path distances can exceed 32 bits on long paths.
type Dist int64

// InfDist represents an unreachable distance. It is far below the int64
// overflow point so that InfDist + weight never wraps.
const InfDist Dist = math.MaxInt64 / 4

// Edge is an undirected weighted edge of the background graph.
type Edge struct {
	U, V VID
	W    uint32
}

// Canon returns the edge with endpoints ordered so that U <= V. All
// deterministic tie-breaking in the repository relies on canonical ordering.
func (e Edge) Canon() Edge {
	if e.U > e.V {
		e.U, e.V = e.V, e.U
	}
	return e
}

// Graph is an immutable undirected weighted graph in CSR form.
//
// The zero value is an empty graph. Construct real graphs with
// FromEdges or a Builder.
type Graph struct {
	offsets []int64  // len NumVertices+1; arc index range of each vertex
	targets []VID    // len 2|E|; neighbor of each arc
	weights []uint32 // len 2|E|; weight of each arc
	numEdge int64    // undirected edge count |E|
	minW    uint32
	maxW    uint32
	maxDeg  int // cached at construction; O(|V|) to recompute
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return len(g.offsets) - 1 }

// NumEdges returns the undirected edge count |E|.
func (g *Graph) NumEdges() int64 { return g.numEdge }

// NumArcs returns the directed arc count 2|E| (the paper reports graphs by
// this number, e.g. "128 billion edges" counts symmetric arcs).
func (g *Graph) NumArcs() int64 { return int64(len(g.targets)) }

// Degree returns the number of arcs leaving v.
func (g *Graph) Degree(v VID) int { return int(g.offsets[v+1] - g.offsets[v]) }

// ArcBounds returns the half-open arc index range [lo, hi) of vertex v.
// Arc i has target Target(i) and weight ArcWeight(i).
func (g *Graph) ArcBounds(v VID) (lo, hi int64) { return g.offsets[v], g.offsets[v+1] }

// Target returns the head vertex of arc i.
func (g *Graph) Target(i int64) VID { return g.targets[i] }

// ArcWeight returns the weight of arc i.
func (g *Graph) ArcWeight(i int64) uint32 { return g.weights[i] }

// Adj returns the adjacency of v as parallel target/weight slices. The
// returned slices alias the graph's internal storage and must not be
// modified.
func (g *Graph) Adj(v VID) ([]VID, []uint32) {
	lo, hi := g.offsets[v], g.offsets[v+1]
	return g.targets[lo:hi], g.weights[lo:hi]
}

// Neighbors calls fn for every arc (v, u) with weight w. Iteration stops
// early if fn returns false.
func (g *Graph) Neighbors(v VID, fn func(u VID, w uint32) bool) {
	ts, ws := g.Adj(v)
	for i, u := range ts {
		if !fn(u, ws[i]) {
			return
		}
	}
}

// HasEdge reports whether the undirected edge {u, v} exists, and returns its
// weight. Adjacency lists are sorted by target, so this is a binary search.
func (g *Graph) HasEdge(u, v VID) (uint32, bool) {
	ts, ws := g.Adj(u)
	lo, hi := 0, len(ts)
	for lo < hi {
		mid := (lo + hi) / 2
		if ts[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ts) && ts[lo] == v {
		return ws[lo], true
	}
	return 0, false
}

// WeightRange returns the smallest and largest edge weight present. An empty
// graph returns (0, 0).
func (g *Graph) WeightRange() (min, max uint32) { return g.minW, g.maxW }

// MaxDegree returns the largest vertex degree (counting arcs). The value is
// computed once at construction, so serving paths (steinersvc's /info) pay
// O(1) instead of an O(|V|) scan per request.
func (g *Graph) MaxDegree() int { return g.maxDeg }

// computeMaxDegree scans the offsets array; called by the constructors.
func (g *Graph) computeMaxDegree() {
	maxDeg := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(VID(v)); d > maxDeg {
			maxDeg = d
		}
	}
	g.maxDeg = maxDeg
}

// AvgDegree returns the average number of arcs per vertex, 2|E| / |V|.
func (g *Graph) AvgDegree() float64 {
	if g.NumVertices() == 0 {
		return 0
	}
	return float64(g.NumArcs()) / float64(g.NumVertices())
}

// MemoryBytes estimates the resident size of the CSR arrays, mirroring the
// paper's "in-memory graph" accounting in Fig. 8.
func (g *Graph) MemoryBytes() int64 {
	return int64(len(g.offsets))*8 + int64(len(g.targets))*4 + int64(len(g.weights))*4
}

// Edges materializes the undirected edge list in canonical (U <= V) order.
// Intended for tests and small graphs; allocates |E| entries.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.numEdge)
	for v := 0; v < g.NumVertices(); v++ {
		ts, ws := g.Adj(VID(v))
		for i, u := range ts {
			if VID(v) <= u {
				out = append(out, Edge{U: VID(v), V: u, W: ws[i]})
			}
		}
	}
	return out
}

// TotalWeight sums the weights of a set of edges.
func TotalWeight(edges []Edge) Dist {
	var d Dist
	for _, e := range edges {
		d += Dist(e.W)
	}
	return d
}

// Validate performs internal consistency checks (sorted adjacency, symmetric
// arcs, positive weights). It is used by tests and by graph loading.
func (g *Graph) Validate() error {
	n := g.NumVertices()
	if len(g.offsets) == 0 || g.offsets[0] != 0 {
		return fmt.Errorf("graph: bad offsets prefix")
	}
	if g.offsets[n] != int64(len(g.targets)) || len(g.targets) != len(g.weights) {
		return fmt.Errorf("graph: offsets/targets/weights size mismatch")
	}
	for v := 0; v < n; v++ {
		ts, ws := g.Adj(VID(v))
		for i, u := range ts {
			if u < 0 || int(u) >= n {
				return fmt.Errorf("graph: arc (%d,%d) out of range", v, u)
			}
			if u == VID(v) {
				return fmt.Errorf("graph: self loop at %d", v)
			}
			if i > 0 && ts[i-1] >= u {
				return fmt.Errorf("graph: adjacency of %d not strictly sorted", v)
			}
			if ws[i] == 0 {
				return fmt.Errorf("graph: zero weight on (%d,%d)", v, u)
			}
			w2, ok := g.HasEdge(u, VID(v))
			if !ok || w2 != ws[i] {
				return fmt.Errorf("graph: arc (%d,%d) not symmetric", v, u)
			}
		}
	}
	return nil
}
