package graph

// BFSResult holds the outcome of an unweighted breadth-first search.
type BFSResult struct {
	Source VID
	// Level[v] is the hop distance from Source, or -1 if unreachable.
	Level []int32
	// Parent[v] is the BFS-tree parent, or NilVID for the source and
	// unreachable vertices.
	Parent []VID
	// MaxLevel is the eccentricity of Source within its component.
	MaxLevel int32
	// Reached is the number of vertices in Source's component.
	Reached int
}

// BFS runs a breadth-first search from source over the unweighted topology.
// The paper uses BFS levels both for seed selection (§V) and for identifying
// the largest connected component.
func BFS(g *Graph, source VID) *BFSResult {
	n := g.NumVertices()
	res := &BFSResult{
		Source: source,
		Level:  make([]int32, n),
		Parent: make([]VID, n),
	}
	for i := range res.Level {
		res.Level[i] = -1
		res.Parent[i] = NilVID
	}
	res.Level[source] = 0
	frontier := []VID{source}
	next := []VID{}
	res.Reached = 1
	for level := int32(1); len(frontier) > 0; level++ {
		for _, v := range frontier {
			ts, _ := g.Adj(v)
			for _, u := range ts {
				if res.Level[u] < 0 {
					res.Level[u] = level
					res.Parent[u] = v
					next = append(next, u)
					res.Reached++
				}
			}
		}
		if len(next) > 0 {
			res.MaxLevel = level
		}
		frontier, next = next, frontier[:0]
	}
	return res
}

// LevelHistogram returns, for each BFS level 0..MaxLevel, the number of
// vertices at that level. Used by BFS-level seed selection, which samples
// proportionally to level population (§V "Seed Vertex Selection").
func (r *BFSResult) LevelHistogram() []int {
	hist := make([]int, r.MaxLevel+1)
	for _, l := range r.Level {
		if l >= 0 {
			hist[l]++
		}
	}
	return hist
}

// VerticesAtLevel collects the vertices with the given BFS level.
func (r *BFSResult) VerticesAtLevel(level int32) []VID {
	var out []VID
	for v, l := range r.Level {
		if l == level {
			out = append(out, VID(v))
		}
	}
	return out
}
