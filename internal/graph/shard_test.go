package graph

import (
	"math/rand"
	"testing"
)

// shardTestGraph builds a reproducible random connected graph.
func shardTestGraph(seed int64, n int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(VID(rng.Intn(v)), VID(v), uint32(rng.Intn(30))+1)
	}
	for i := 0; i < 2*n; i++ {
		b.AddEdge(VID(rng.Intn(n)), VID(rng.Intn(n)), uint32(rng.Intn(30))+1)
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// affineOwned returns lo, lo+stride, ... capped at n.
func affineOwned(lo, stride, count, n int) []VID {
	var out []VID
	for i := 0; i < count; i++ {
		v := lo + i*stride
		if v >= n {
			break
		}
		out = append(out, VID(v))
	}
	return out
}

func TestShardSlabMatchesGlobalAdjacency(t *testing.T) {
	g := shardTestGraph(1, 200)
	for _, owned := range [][]VID{
		affineOwned(0, 1, 50, 200),   // block-style prefix
		affineOwned(50, 1, 150, 200), // block-style suffix
		affineOwned(3, 4, 50, 200),   // hash-style stride
		{2, 3, 5, 7, 11, 13, 17, 19}, // irregular: map fallback
		{},                           // empty rank
	} {
		s := NewShard(g, 0, 4, owned, nil)
		if s.NumOwned() != len(owned) {
			t.Fatalf("NumOwned = %d, want %d", s.NumOwned(), len(owned))
		}
		ownedSet := map[VID]bool{}
		for _, v := range owned {
			ownedSet[v] = true
		}
		for v := 0; v < g.NumVertices(); v++ {
			if s.Owns(VID(v)) != ownedSet[VID(v)] {
				t.Fatalf("Owns(%d) = %v, want %v (owned %v)", v, s.Owns(VID(v)), ownedSet[VID(v)], owned)
			}
		}
		for _, v := range owned {
			gt, gw := g.Adj(v)
			st, sw := s.Adj(v)
			if len(gt) != len(st) {
				t.Fatalf("Adj(%d): slab %d arcs, global %d", v, len(st), len(gt))
			}
			for i := range gt {
				if gt[i] != st[i] || gw[i] != sw[i] {
					t.Fatalf("Adj(%d) arc %d: slab (%d,%d), global (%d,%d)", v, i, st[i], sw[i], gt[i], gw[i])
				}
			}
			// EdgeWeight over the slab row equals the global HasEdge.
			for _, u := range gt {
				gww, gok := g.HasEdge(v, u)
				sww, sok := s.EdgeWeight(v, u)
				if gok != sok || gww != sww {
					t.Fatalf("EdgeWeight(%d,%d) = (%d,%v), global (%d,%v)", v, u, sww, sok, gww, gok)
				}
			}
			if _, ok := s.EdgeWeight(v, v); ok {
				t.Fatalf("EdgeWeight(%d,%d) found a self loop", v, v)
			}
		}
	}
}

func TestShardStripesCoverDelegateAdjacencyExactlyOnce(t *testing.T) {
	g := shardTestGraph(2, 150)
	// Pick the three highest-degree vertices as delegates.
	delegates := []VID{}
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(VID(v)) >= 8 {
			delegates = append(delegates, VID(v))
		}
	}
	if len(delegates) == 0 {
		t.Fatal("test graph has no high-degree vertices")
	}
	for _, p := range []int{1, 2, 3, 5} {
		shards := make([]*Shard, p)
		for rank := 0; rank < p; rank++ {
			shards[rank] = NewShard(g, rank, p, nil, delegates)
		}
		for _, d := range delegates {
			gt, gw := g.Adj(d)
			// Each global arc index i must appear in exactly rank i%p's
			// stripe, preserving order.
			var total int
			for rank := 0; rank < p; rank++ {
				st, sw := shards[rank].StripeAdj(d)
				for j := range st {
					i := rank + j*p // global arc position of stripe entry j
					if i >= len(gt) || gt[i] != st[j] || gw[i] != sw[j] {
						t.Fatalf("p=%d delegate %d rank %d stripe[%d] = (%d,%d), want global arc %d",
							p, d, rank, j, st[j], sw[j], i)
					}
				}
				total += len(st)
			}
			if total != len(gt) {
				t.Fatalf("p=%d delegate %d: stripes cover %d arcs, adjacency has %d", p, d, total, len(gt))
			}
		}
	}
}

func TestShardPanicsOnForeignVertex(t *testing.T) {
	g := shardTestGraph(3, 20)
	s := NewShard(g, 0, 2, affineOwned(0, 1, 10, 20), nil)
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("Adj(non-owned)", func() { s.Adj(15) })
	mustPanic("StripeAdj(non-delegate)", func() { s.StripeAdj(0) })
}

func TestShardMemoryBytesAccountsArrays(t *testing.T) {
	g := shardTestGraph(4, 100)
	owned := affineOwned(0, 1, 100, 100)
	s := NewShard(g, 0, 1, owned, []VID{0})
	// One rank owns everything: slab arcs = all arcs, stripe = vertex 0's
	// full adjacency.
	if s.NumArcs() != g.NumArcs() {
		t.Fatalf("slab arcs %d, graph arcs %d", s.NumArcs(), g.NumArcs())
	}
	if s.NumStripeArcs() != int64(g.Degree(0)) {
		t.Fatalf("stripe arcs %d, degree %d", s.NumStripeArcs(), g.Degree(0))
	}
	want := int64(101)*8 + s.NumArcs()*8 + // offsets + targets+weights
		int64(2)*8 + s.NumStripeArcs()*8 + // stripeOff + stripe arrays
		12 // delegateIdx entry
	if got := s.MemoryBytes(); got != want {
		t.Fatalf("MemoryBytes = %d, want %d", got, want)
	}
	if s.NumDelegates() != 1 || s.Rank() != 0 || s.NumRanks() != 1 {
		t.Fatalf("shard metadata wrong: %d delegates rank %d/%d", s.NumDelegates(), s.Rank(), s.NumRanks())
	}
}
