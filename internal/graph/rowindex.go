package graph

// RowIndex is the O(1) vertex→row mapping shared by every rank-local slab:
// a Shard uses it to find a vertex's adjacency row, a control-state slab
// (internal/voronoi.StateSlab) to find the same vertex's state row. Both
// slabs are cut from the same owned-vertex list of a partition.ShardPlan,
// so one index describes both layouts.
//
// Every built-in partition owns an affine set lo, lo+stride, lo+2*stride,
// ... (block and arc-block have stride 1, hash has stride P), which the
// index detects and serves with arithmetic and no per-vertex table.
// Irregular owned sets fall back to an explicit map.
type RowIndex struct {
	lo     VID
	stride int32
	count  int
	idx    map[VID]int32 // nil when the owned set is affine
	verts  []VID         // reverse row→vertex list; nil when affine
}

// NewRowIndex builds the mapping for an owned-vertex list. owned must be in
// strictly increasing order (as partition.ShardPlan.Owned yields it); the
// slice is not retained unless the set is irregular.
func NewRowIndex(owned []VID) *RowIndex {
	ix := &RowIndex{count: len(owned), stride: 1}
	if len(owned) == 0 {
		return ix
	}
	ix.lo = owned[0]
	if len(owned) >= 2 {
		ix.stride = int32(owned[1] - owned[0])
	}
	affine := ix.stride > 0
	if affine {
		for i, v := range owned {
			if v != ix.lo+VID(int64(i)*int64(ix.stride)) {
				affine = false
				break
			}
		}
	}
	if affine {
		return ix
	}
	ix.stride = 0
	ix.idx = make(map[VID]int32, len(owned))
	ix.verts = append([]VID(nil), owned...)
	for i, v := range owned {
		ix.idx[v] = int32(i)
	}
	return ix
}

// Len returns the number of vertices the index covers.
func (ix *RowIndex) Len() int { return ix.count }

// Row returns v's row, or -1 when v is not in the owned set.
func (ix *RowIndex) Row(v VID) int32 {
	if ix.stride == 0 {
		if i, ok := ix.idx[v]; ok {
			return i
		}
		return -1
	}
	d := int64(v) - int64(ix.lo)
	if d < 0 {
		return -1
	}
	if ix.stride != 1 {
		if d%int64(ix.stride) != 0 {
			return -1
		}
		d /= int64(ix.stride)
	}
	if d >= int64(ix.count) {
		return -1
	}
	return int32(d)
}

// VertexAt returns the vertex in row i — the inverse of Row. i must be in
// [0, Len).
func (ix *RowIndex) VertexAt(i int) VID {
	if ix.stride == 0 {
		return ix.verts[i]
	}
	return ix.lo + VID(int64(i)*int64(ix.stride))
}

// MemoryBytes reports the index's resident size: zero beyond the struct for
// affine owned sets, the map plus reverse list otherwise.
func (ix *RowIndex) MemoryBytes() int64 {
	if ix.idx == nil {
		return 0
	}
	return int64(len(ix.idx))*12 + int64(len(ix.verts))*4
}
