package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Binary format: a tiny CSR container comparable in spirit to the HavoqGT
// binary graph format referenced in Table III. Layout (little endian):
//
//	magic   [8]byte  "DSTEINR1"
//	n       uint64   vertex count
//	arcs    uint64   arc count (2|E|)
//	offsets (n+1) * uint64
//	targets arcs * uint32
//	weights arcs * uint32
var binaryMagic = [8]byte{'D', 'S', 'T', 'E', 'I', 'N', 'R', '1'}

// WriteBinary serializes g in the repository's binary CSR format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	hdr := [2]uint64{uint64(g.NumVertices()), uint64(g.NumArcs())}
	if err := binary.Write(bw, binary.LittleEndian, hdr[:]); err != nil {
		return err
	}
	offs := make([]uint64, len(g.offsets))
	for i, o := range g.offsets {
		offs[i] = uint64(o)
	}
	if err := binary.Write(bw, binary.LittleEndian, offs); err != nil {
		return err
	}
	tgts := make([]uint32, len(g.targets))
	for i, t := range g.targets {
		tgts[i] = uint32(t)
	}
	if err := binary.Write(bw, binary.LittleEndian, tgts); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.weights); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary deserializes a graph written by WriteBinary and validates it.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic[:])
	}
	var hdr [2]uint64
	if err := binary.Read(br, binary.LittleEndian, hdr[:]); err != nil {
		return nil, err
	}
	// Cap counts to keep corrupt headers from driving giant allocations;
	// vertex IDs are int32 and this repository's in-memory graphs stay
	// far below the cap.
	const maxCount = 1 << 28
	n, arcs := int(hdr[0]), int(hdr[1])
	if n < 0 || arcs < 0 || hdr[0] > maxCount || hdr[1] > maxCount {
		return nil, fmt.Errorf("graph: bad header n=%d arcs=%d", hdr[0], hdr[1])
	}
	offs := make([]uint64, n+1)
	if err := binary.Read(br, binary.LittleEndian, offs); err != nil {
		return nil, err
	}
	tgts := make([]uint32, arcs)
	if err := binary.Read(br, binary.LittleEndian, tgts); err != nil {
		return nil, err
	}
	ws := make([]uint32, arcs)
	if err := binary.Read(br, binary.LittleEndian, ws); err != nil {
		return nil, err
	}
	g := &Graph{
		offsets: make([]int64, n+1),
		targets: make([]VID, arcs),
		weights: ws,
		numEdge: int64(arcs) / 2,
	}
	for i, o := range offs {
		g.offsets[i] = int64(o)
	}
	for i, t := range tgts {
		g.targets[i] = VID(t)
	}
	for i, w := range ws {
		if i == 0 {
			g.minW, g.maxW = w, w
			continue
		}
		if w < g.minW {
			g.minW = w
		}
		if w > g.maxW {
			g.maxW = w
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	g.computeMaxDegree()
	return g, nil
}

// WriteEdgeList writes g as a plain "u v w" text edge list (undirected
// edges, canonical order), one per line, with a header comment.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	fmt.Fprintf(bw, "# dsteiner edge list: %d vertices, %d undirected edges\n",
		g.NumVertices(), g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		ts, ws := g.Adj(VID(v))
		for i, u := range ts {
			if VID(v) <= u {
				fmt.Fprintf(bw, "%d %d %d\n", v, u, ws[i])
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses a "u v [w]" text edge list; missing weights default to
// 1 and '#' lines are comments. Vertex count is 1 + the largest ID seen.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []Edge
	maxID := VID(-1)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: expected 'u v [w]'", lineNo)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
		}
		w := int64(1)
		if len(fields) >= 3 {
			w, err = strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
			if w <= 0 || w > int64(^uint32(0)) {
				return nil, fmt.Errorf("graph: line %d: weight %d out of range", lineNo, w)
			}
		}
		edges = append(edges, Edge{U: VID(u), V: VID(v), W: uint32(w)})
		if VID(u) > maxID {
			maxID = VID(u)
		}
		if VID(v) > maxID {
			maxID = VID(v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	b := NewBuilder(int(maxID) + 1)
	b.AddEdges(edges)
	return b.Build()
}
