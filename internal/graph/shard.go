package graph

// Shard is one rank's local view of the graph: a compact CSR slab holding
// the adjacency of the vertices the rank owns, plus a materialized stripe of
// every high-degree delegate's adjacency (arc index ≡ rank mod P — the
// HavoqGT vertex-cut). It replaces the shared-global-CSR hot path: a rank
// walking its slab touches a contiguous, rank-sized region instead of
// striding the whole graph's arrays, and — because a Shard references
// nothing outside itself except vertex IDs — it is the unit of state a
// multi-process backend would ship to each process.
//
// Shards are built once per solver session (partition.ShardPlan.BuildShards)
// from the immutable global CSR and are themselves immutable: safe to share
// read-only across queries, like the Graph they were cut from. Arc order
// within a slab row and within a stripe matches the global CSR exactly, so
// a traversal over shards sends the same messages in the same order as one
// over the global arrays (the shard-equivalence property tests rely on it).
type Shard struct {
	rank     int
	numRanks int

	// Owned-vertex index: affine O(1) vertex→slab-row lookup with a map
	// fallback for irregular owned sets. The same RowIndex layout is used
	// by the rank's control-state slab (internal/voronoi.StateSlab), so a
	// vertex's adjacency row and state row coincide.
	rows *RowIndex

	// Local CSR slab over owned vertices, in increasing vertex order.
	offsets []int64
	targets []VID
	weights []uint32

	// Delegate stripes: delegate d's stripe occupies
	// stripeTargets[stripeOff[i]:stripeOff[i+1]] where i = delegateIdx[d].
	delegateIdx   map[VID]int32
	stripeOff     []int64
	stripeTargets []VID
	stripeWeights []uint32
}

// NewShard cuts rank's slab out of g. owned must list the rank's vertices in
// strictly increasing order; delegates lists every delegate vertex of the
// partition (identical on all ranks — each rank materializes its own stripe
// of every delegate, including delegates it owns).
func NewShard(g *Graph, rank, numRanks int, owned []VID, delegates []VID) *Shard {
	s := &Shard{rank: rank, numRanks: numRanks, rows: NewRowIndex(owned)}

	// Slab: copy each owned vertex's adjacency, preserving arc order.
	var arcs int64
	for _, v := range owned {
		arcs += int64(g.Degree(v))
	}
	s.offsets = make([]int64, len(owned)+1)
	s.targets = make([]VID, 0, arcs)
	s.weights = make([]uint32, 0, arcs)
	for i, v := range owned {
		ts, ws := g.Adj(v)
		s.targets = append(s.targets, ts...)
		s.weights = append(s.weights, ws...)
		s.offsets[i+1] = int64(len(s.targets))
	}

	// Delegate stripes: arcs at positions rank, rank+P, ... of each
	// delegate's adjacency, in global arc order.
	s.delegateIdx = make(map[VID]int32, len(delegates))
	s.stripeOff = make([]int64, len(delegates)+1)
	for i, d := range delegates {
		s.delegateIdx[d] = int32(i)
		ts, ws := g.Adj(d)
		for j := rank; j < len(ts); j += numRanks {
			s.stripeTargets = append(s.stripeTargets, ts[j])
			s.stripeWeights = append(s.stripeWeights, ws[j])
		}
		s.stripeOff[i+1] = int64(len(s.stripeTargets))
	}
	return s
}

// NewShardFromSlices rebuilds a shard from its raw slabs — the inverse of
// Slices, used by multi-process workers that receive their plan slice over
// the wire (internal/wire.ShardSlice) instead of cutting it from a resident
// global CSR. All slices are retained; delegates must be the partition's
// full delegate list in the same order the stripes were cut in.
func NewShardFromSlices(rank, numRanks int, owned []VID, offsets []int64,
	targets []VID, weights []uint32, delegates []VID,
	stripeOff []int64, stripeTargets []VID, stripeWeights []uint32) *Shard {
	s := &Shard{
		rank:          rank,
		numRanks:      numRanks,
		rows:          NewRowIndex(owned),
		offsets:       offsets,
		targets:       targets,
		weights:       weights,
		stripeOff:     stripeOff,
		stripeTargets: stripeTargets,
		stripeWeights: stripeWeights,
		delegateIdx:   make(map[VID]int32, len(delegates)),
	}
	for i, d := range delegates {
		s.delegateIdx[d] = int32(i)
	}
	return s
}

// Slices exposes the shard's raw slabs for wire encoding: the owned vertex
// list, the owned CSR (offsets/targets/weights) and the delegate stripes
// (stripeOff in the partition's delegate-list order). All returned slices
// alias shard storage: read-only.
func (s *Shard) Slices() (owned []VID, offsets []int64, targets []VID, weights []uint32,
	stripeOff []int64, stripeTargets []VID, stripeWeights []uint32) {
	owned = make([]VID, s.rows.Len())
	for i := range owned {
		owned[i] = s.rows.VertexAt(i)
	}
	return owned, s.offsets, s.targets, s.weights, s.stripeOff, s.stripeTargets, s.stripeWeights
}

// Rank returns the rank this shard belongs to.
func (s *Shard) Rank() int { return s.rank }

// NumRanks returns the partition's rank count P.
func (s *Shard) NumRanks() int { return s.numRanks }

// NumOwned returns the number of vertices in the slab.
func (s *Shard) NumOwned() int { return s.rows.Len() }

// Rows returns the owned-vertex row index, shareable with other rank-local
// slabs (the control-state slab) cut from the same owned list.
func (s *Shard) Rows() *RowIndex { return s.rows }

// NumArcs returns the number of arcs in the slab (owned adjacency only).
func (s *Shard) NumArcs() int64 { return int64(len(s.targets)) }

// NumStripeArcs returns the number of delegate-stripe arcs this rank holds.
func (s *Shard) NumStripeArcs() int64 { return int64(len(s.stripeTargets)) }

// NumDelegates returns the number of delegate vertices striped across ranks.
func (s *Shard) NumDelegates() int { return len(s.delegateIdx) }

// Owns reports whether v's adjacency lives in this slab.
func (s *Shard) Owns(v VID) bool { return s.rows.Row(v) >= 0 }

// Adj returns the adjacency of owned vertex v as parallel target/weight
// slices, aliasing the slab (read-only). Arc order matches the global CSR.
// Panics if the shard does not own v — the traversal routing is broken.
func (s *Shard) Adj(v VID) ([]VID, []uint32) {
	i := s.rows.Row(v)
	if i < 0 {
		panic("graph: Shard.Adj on non-owned vertex")
	}
	lo, hi := s.offsets[i], s.offsets[i+1]
	return s.targets[lo:hi], s.weights[lo:hi]
}

// StripeAdj returns this rank's stripe of delegate v's adjacency (arc index
// ≡ rank mod P, in global arc order). Panics if v is not a delegate.
func (s *Shard) StripeAdj(v VID) ([]VID, []uint32) {
	i, ok := s.delegateIdx[v]
	if !ok {
		panic("graph: Shard.StripeAdj on non-delegate vertex")
	}
	lo, hi := s.stripeOff[i], s.stripeOff[i+1]
	return s.stripeTargets[lo:hi], s.stripeWeights[lo:hi]
}

// EdgeWeight reports the weight of edge {u, v} by binary search over owned
// vertex u's slab row (sorted, like the global CSR). The graph is
// undirected, so EdgeWeight(u, v) on u's owner equals the global
// HasEdge(v, u) from any rank.
func (s *Shard) EdgeWeight(u, v VID) (uint32, bool) {
	ts, ws := s.Adj(u)
	lo, hi := 0, len(ts)
	for lo < hi {
		mid := (lo + hi) / 2
		if ts[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ts) && ts[lo] == v {
		return ws[lo], true
	}
	return 0, false
}

// MemoryBytes reports the shard's resident size: slab CSR, delegate stripes
// and the owned-vertex index (zero extra for affine owned sets).
func (s *Shard) MemoryBytes() int64 {
	b := int64(len(s.offsets))*8 + int64(len(s.targets))*4 + int64(len(s.weights))*4
	b += int64(len(s.stripeOff))*8 + int64(len(s.stripeTargets))*4 + int64(len(s.stripeWeights))*4
	b += int64(len(s.delegateIdx)) * 12
	b += s.rows.MemoryBytes()
	return b
}
