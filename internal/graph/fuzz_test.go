package graph

import (
	"bytes"
	"testing"
)

// FuzzReadEdgeList checks that the text parser never panics and that any
// accepted graph validates and round-trips.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1 5\n1 2 3\n")
	f.Add("# comment\n\n0 1\n")
	f.Add("0 1 -5\n")
	f.Add("garbage line\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadEdgeList(bytes.NewReader([]byte(in)))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed edge count %d -> %d", g.NumEdges(), g2.NumEdges())
		}
	})
}

// FuzzReadBinary checks that the binary reader never panics on corrupt
// containers and that anything accepted validates.
func FuzzReadBinary(f *testing.F) {
	var seed bytes.Buffer
	g := MustFromEdges(3, []Edge{{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 3}})
	if err := WriteBinary(&seed, g); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("DSTEINR1 but short"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, in []byte) {
		g, err := ReadBinary(bytes.NewReader(in))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted binary graph fails validation: %v", err)
		}
	})
}
