package graph

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// paperFig1 builds the 9-vertex example graph of the paper's Fig. 1
// (vertices renumbered 0..8; the paper numbers them 1..9).
//
// Edges (paper numbering): 1-2:16, 1-5:2, 5-6:4, 2-6:2, 2-3:20, 6-7:1,
// 3-7:1, 3-4:24, 7-8:2, 4-8:2, 8-9:2, 4-9:18(approx).
func paperFig1(t testing.TB) *Graph {
	t.Helper()
	b := NewBuilder(9)
	for _, e := range []Edge{
		{0, 1, 16}, {0, 4, 2}, {4, 5, 4}, {1, 5, 2}, {1, 2, 20},
		{5, 6, 1}, {2, 6, 1}, {2, 3, 24}, {6, 7, 2}, {3, 7, 2}, {7, 8, 2}, {3, 8, 18},
	} {
		b.AddEdge(e.U, e.V, e.W)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return g
}

func TestBuilderBasics(t *testing.T) {
	g := paperFig1(t)
	if got := g.NumVertices(); got != 9 {
		t.Fatalf("NumVertices = %d, want 9", got)
	}
	if got := g.NumEdges(); got != 12 {
		t.Fatalf("NumEdges = %d, want 12", got)
	}
	if got := g.NumArcs(); got != 24 {
		t.Fatalf("NumArcs = %d, want 24", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if w, ok := g.HasEdge(0, 1); !ok || w != 16 {
		t.Fatalf("HasEdge(0,1) = (%d,%v), want (16,true)", w, ok)
	}
	if w, ok := g.HasEdge(1, 0); !ok || w != 16 {
		t.Fatalf("HasEdge(1,0) = (%d,%v), want (16,true)", w, ok)
	}
	if _, ok := g.HasEdge(0, 8); ok {
		t.Fatal("HasEdge(0,8) should be absent")
	}
	minW, maxW := g.WeightRange()
	if minW != 1 || maxW != 24 {
		t.Fatalf("WeightRange = (%d,%d), want (1,24)", minW, maxW)
	}
}

func TestBuilderDedupKeepsMinWeight(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1, 7)
	b.AddEdge(1, 0, 3) // same undirected edge, lower weight
	b.AddEdge(0, 1, 9)
	b.AddEdge(1, 2, 4)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if w, _ := g.HasEdge(0, 1); w != 3 {
		t.Fatalf("weight(0,1) = %d, want min 3", w)
	}
}

func TestBuilderDropsSelfLoopsAndClampsZeroWeights(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 0, 5) // dropped
	b.AddEdge(0, 1, 0) // clamped to 1
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if w, _ := g.HasEdge(0, 1); w != 1 {
		t.Fatalf("weight = %d, want clamped 1", w)
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 5, 1)
	if _, err := b.Build(); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestDegreesAndAdjacency(t *testing.T) {
	g := paperFig1(t)
	wantDeg := map[VID]int{0: 2, 1: 3, 2: 3, 3: 3, 4: 2, 5: 3, 6: 3, 7: 3, 8: 2}
	for v, want := range wantDeg {
		if got := g.Degree(v); got != want {
			t.Errorf("Degree(%d) = %d, want %d", v, got, want)
		}
	}
	if got := g.MaxDegree(); got != 3 {
		t.Errorf("MaxDegree = %d, want 3", got)
	}
	avg := g.AvgDegree()
	if avg < 2.66 || avg > 2.67 {
		t.Errorf("AvgDegree = %f, want 24/9", avg)
	}
	// Adjacency sorted ascending.
	for v := 0; v < g.NumVertices(); v++ {
		ts, _ := g.Adj(VID(v))
		for i := 1; i < len(ts); i++ {
			if ts[i-1] >= ts[i] {
				t.Fatalf("adjacency of %d not sorted: %v", v, ts)
			}
		}
	}
}

func TestNeighborsEarlyStop(t *testing.T) {
	g := paperFig1(t)
	count := 0
	g.Neighbors(0, func(u VID, w uint32) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early stop visited %d, want 1", count)
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := paperFig1(t)
	edges := g.Edges()
	if len(edges) != 12 {
		t.Fatalf("Edges len = %d, want 12", len(edges))
	}
	g2, err := FromEdges(9, edges)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumArcs() != g.NumArcs() {
		t.Fatalf("round trip arcs %d != %d", g2.NumArcs(), g.NumArcs())
	}
	for _, e := range edges {
		if w, ok := g2.HasEdge(e.U, e.V); !ok || w != e.W {
			t.Fatalf("edge (%d,%d,%d) lost in round trip", e.U, e.V, e.W)
		}
	}
}

func TestBFSLevelsOnPath(t *testing.T) {
	// 0-1-2-3-4 path
	b := NewBuilder(5)
	for i := VID(0); i < 4; i++ {
		b.AddEdge(i, i+1, 1)
	}
	g, _ := b.Build()
	r := BFS(g, 0)
	for v := 0; v < 5; v++ {
		if r.Level[v] != int32(v) {
			t.Errorf("Level[%d] = %d, want %d", v, r.Level[v], v)
		}
	}
	if r.MaxLevel != 4 || r.Reached != 5 {
		t.Errorf("MaxLevel=%d Reached=%d, want 4,5", r.MaxLevel, r.Reached)
	}
	hist := r.LevelHistogram()
	for l, c := range hist {
		if c != 1 {
			t.Errorf("hist[%d] = %d, want 1", l, c)
		}
	}
	if got := r.VerticesAtLevel(2); len(got) != 1 || got[0] != 2 {
		t.Errorf("VerticesAtLevel(2) = %v", got)
	}
}

func TestBFSUnreachable(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 3, 1)
	g, _ := b.Build()
	r := BFS(g, 0)
	if r.Level[2] != -1 || r.Level[3] != -1 {
		t.Errorf("disconnected vertices should be level -1, got %v", r.Level)
	}
	if r.Reached != 2 {
		t.Errorf("Reached = %d, want 2", r.Reached)
	}
	if r.Parent[1] != 0 || r.Parent[0] != NilVID {
		t.Errorf("parents wrong: %v", r.Parent)
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder(7)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(3, 4, 1)
	// 5, 6 isolated
	g, _ := b.Build()
	c := ConnectedComponents(g)
	if c.NumComponents() != 4 {
		t.Fatalf("NumComponents = %d, want 4", c.NumComponents())
	}
	if c.Label[0] != c.Label[2] || c.Label[0] == c.Label[3] {
		t.Errorf("labels wrong: %v", c.Label)
	}
	if c.Largest() != c.Label[0] {
		t.Errorf("Largest = %d, want component of vertex 0", c.Largest())
	}
	lcv := LargestComponentVertices(g)
	if len(lcv) != 3 || lcv[0] != 0 || lcv[2] != 2 {
		t.Errorf("LargestComponentVertices = %v", lcv)
	}
}

func TestCheckTree(t *testing.T) {
	tree := []Edge{{0, 1, 1}, {1, 2, 1}, {1, 3, 1}}
	chk := CheckTree(tree)
	if !chk.Connected || !chk.Acyclic || chk.NumVertices != 4 {
		t.Errorf("tree misclassified: %+v", chk)
	}
	cyc := []Edge{{0, 1, 1}, {1, 2, 1}, {2, 0, 1}}
	chk = CheckTree(cyc)
	if chk.Acyclic {
		t.Errorf("cycle misclassified: %+v", chk)
	}
	disc := []Edge{{0, 1, 1}, {2, 3, 1}}
	chk = CheckTree(disc)
	if chk.Connected {
		t.Errorf("forest misclassified: %+v", chk)
	}
	empty := CheckTree(nil)
	if !empty.Connected || !empty.Acyclic {
		t.Errorf("empty set should be a trivial tree: %+v", empty)
	}
}

func TestValidateSteinerTree(t *testing.T) {
	g := paperFig1(t)
	// The paper's Fig. 1(b) Steiner tree for seeds {1,3,4,8,9} (0-based:
	// {0,2,3,7,8}): edges 1-5, 5-6, 6-7, 3-7, 7-8, 8-9 plus 2-6 in 0-based:
	seeds := []VID{0, 2, 3, 7, 8}
	tree := []Edge{{0, 4, 2}, {4, 5, 4}, {5, 6, 1}, {2, 6, 1}, {6, 7, 2}, {3, 7, 2}, {7, 8, 2}}
	if err := ValidateSteinerTree(g, seeds, tree); err != nil {
		t.Fatalf("valid tree rejected: %v", err)
	}
	// Missing seed.
	if err := ValidateSteinerTree(g, []VID{0, 1}, tree); err == nil {
		t.Fatal("tree not spanning seed 1 accepted")
	}
	// Non-seed leaf: drop the edge to seed 0 making Steiner vertex 4 a leaf.
	if err := ValidateSteinerTree(g, seeds[1:], tree); err == nil {
		t.Fatal("non-seed leaf accepted")
	}
	// Wrong weight.
	bad := append([]Edge(nil), tree...)
	bad[0].W = 99
	if err := ValidateSteinerTree(g, seeds, bad); err == nil {
		t.Fatal("wrong weight accepted")
	}
	// Nonexistent edge.
	bad = append([]Edge(nil), tree...)
	bad[0] = Edge{0, 8, 1}
	if err := ValidateSteinerTree(g, seeds, bad); err == nil {
		t.Fatal("phantom edge accepted")
	}
	// Single seed, empty tree.
	if err := ValidateSteinerTree(g, []VID{3}, nil); err != nil {
		t.Fatalf("single seed empty tree rejected: %v", err)
	}
}

func TestPruneNonSeedLeaves(t *testing.T) {
	// Star + dangling path: seeds {0, 2}; path 0-1-2 plus dangle 1-3-4.
	edges := []Edge{{0, 1, 1}, {1, 2, 1}, {1, 3, 1}, {3, 4, 1}}
	pruned := PruneNonSeedLeaves(edges, []VID{0, 2})
	if len(pruned) != 2 {
		t.Fatalf("pruned = %v, want 2 edges", pruned)
	}
	for _, e := range pruned {
		if e.U == 4 || e.V == 4 || e.U == 3 || e.V == 3 {
			t.Fatalf("dangling vertices not pruned: %v", pruned)
		}
	}
	// No pruning needed.
	got := PruneNonSeedLeaves(edges[:2], []VID{0, 2})
	if len(got) != 2 {
		t.Fatalf("unexpected pruning: %v", got)
	}
}

func TestTotalWeight(t *testing.T) {
	if got := TotalWeight([]Edge{{0, 1, 2}, {1, 2, 3}}); got != 5 {
		t.Fatalf("TotalWeight = %d, want 5", got)
	}
	if got := TotalWeight(nil); got != 0 {
		t.Fatalf("TotalWeight(nil) = %d, want 0", got)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := paperFig1(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumArcs() != g.NumArcs() {
		t.Fatalf("shape mismatch after round trip")
	}
	for _, e := range g.Edges() {
		if w, ok := g2.HasEdge(e.U, e.V); !ok || w != e.W {
			t.Fatalf("edge (%d,%d) lost", e.U, e.V)
		}
	}
	minW, maxW := g2.WeightRange()
	if minW != 1 || maxW != 24 {
		t.Fatalf("weight range lost: (%d,%d)", minW, maxW)
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("not a graph file"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := paperFig1(t)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("NumEdges %d != %d", g2.NumEdges(), g.NumEdges())
	}
}

func TestEdgeListParsing(t *testing.T) {
	in := "# comment\n0 1\n1 2 7\n\n"
	g, err := ReadEdgeList(bytes.NewReader([]byte(in)))
	if err != nil {
		t.Fatal(err)
	}
	if w, _ := g.HasEdge(0, 1); w != 1 {
		t.Errorf("default weight = %d, want 1", w)
	}
	if w, _ := g.HasEdge(1, 2); w != 7 {
		t.Errorf("weight = %d, want 7", w)
	}
	if _, err := ReadEdgeList(bytes.NewReader([]byte("0\n"))); err == nil {
		t.Error("short line accepted")
	}
	if _, err := ReadEdgeList(bytes.NewReader([]byte("0 1 -5\n"))); err == nil {
		t.Error("negative weight accepted")
	}
}

// randomGraph builds a connected random graph for property tests: a random
// spanning tree plus extra random edges.
func randomGraph(rng *rand.Rand, n, extra int, maxW uint32) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		u := rng.Intn(v)
		b.AddEdge(VID(u), VID(v), uint32(rng.Intn(int(maxW)))+1)
	}
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		b.AddEdge(VID(u), VID(v), uint32(rng.Intn(int(maxW)))+1)
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func TestPropertyRandomGraphsValidate(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		g := randomGraph(rng, n, rng.Intn(3*n), 100)
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyBinaryRoundTripPreservesEdges(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := randomGraph(rng, n, rng.Intn(2*n), 50)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			return false
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		e1, e2 := g.Edges(), g2.Edges()
		if len(e1) != len(e2) {
			return false
		}
		for i := range e1 {
			if e1[i] != e2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyBFSTriangleInequality(t *testing.T) {
	// BFS levels of adjacent vertices differ by at most 1.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		g := randomGraph(rng, n, rng.Intn(2*n), 10)
		r := BFS(g, 0)
		for _, e := range g.Edges() {
			lu, lv := r.Level[e.U], r.Level[e.V]
			if lu < 0 || lv < 0 {
				return false // connected by construction
			}
			d := lu - lv
			if d < -1 || d > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeCanon(t *testing.T) {
	e := Edge{U: 5, V: 2, W: 9}.Canon()
	if e.U != 2 || e.V != 5 || e.W != 9 {
		t.Fatalf("Canon = %+v", e)
	}
	e = Edge{U: 1, V: 3, W: 9}.Canon()
	if e.U != 1 || e.V != 3 {
		t.Fatalf("Canon changed ordered edge: %+v", e)
	}
}

func TestMemoryBytes(t *testing.T) {
	g := paperFig1(t)
	want := int64(10*8 + 24*4 + 24*4)
	if got := g.MemoryBytes(); got != want {
		t.Fatalf("MemoryBytes = %d, want %d", got, want)
	}
}
