package mst

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dsteiner/internal/graph"
)

func TestUnionFindBasics(t *testing.T) {
	u := NewUnionFind(5)
	if u.Count() != 5 {
		t.Fatalf("Count = %d", u.Count())
	}
	if !u.Union(0, 1) {
		t.Fatal("first union failed")
	}
	if u.Union(1, 0) {
		t.Fatal("repeat union succeeded")
	}
	if !u.Connected(0, 1) || u.Connected(0, 2) {
		t.Fatal("connectivity wrong")
	}
	u.Union(2, 3)
	u.Union(0, 3)
	if u.Count() != 2 {
		t.Fatalf("Count = %d, want 2", u.Count())
	}
	if !u.Connected(1, 2) {
		t.Fatal("transitive connectivity lost")
	}
}

func TestPropertyUnionFindEquivalence(t *testing.T) {
	// Union-find must agree with a naive label array.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		uf := NewUnionFind(n)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = i
		}
		for step := 0; step < 3*n; step++ {
			a, b := int32(rng.Intn(n)), int32(rng.Intn(n))
			naiveSame := labels[a] == labels[b]
			if uf.Connected(a, b) != naiveSame {
				return false
			}
			if uf.Union(a, b) == naiveSame {
				return false // Union result must be !same
			}
			if !naiveSame {
				old, repl := labels[b], labels[a]
				for i := range labels {
					if labels[i] == old {
						labels[i] = repl
					}
				}
			}
		}
		distinct := map[int]bool{}
		for _, l := range labels {
			distinct[l] = true
		}
		return uf.Count() == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func knownGraph() (int, []WEdge) {
	// Classic example with unique MST of weight 37 (CLRS Fig 23.4-like).
	edges := []WEdge{
		{0, 1, 4}, {0, 7, 8}, {1, 2, 8}, {1, 7, 11}, {2, 3, 7}, {2, 8, 2},
		{2, 5, 4}, {3, 4, 9}, {3, 5, 14}, {4, 5, 10}, {5, 6, 2}, {6, 7, 1},
		{6, 8, 6}, {7, 8, 7},
	}
	return 9, edges
}

func TestPrimKnownWeight(t *testing.T) {
	n, edges := knownGraph()
	res := Prim(n, edges)
	if res.Total != 37 {
		t.Fatalf("Prim total = %d, want 37", res.Total)
	}
	if len(res.Edges) != n-1 {
		t.Fatalf("Prim edges = %d, want %d", len(res.Edges), n-1)
	}
}

func TestKruskalKnownWeight(t *testing.T) {
	n, edges := knownGraph()
	res := Kruskal(n, edges)
	if res.Total != 37 {
		t.Fatalf("Kruskal total = %d, want 37", res.Total)
	}
}

func TestBoruvkaKnownWeight(t *testing.T) {
	n, edges := knownGraph()
	res, rounds := Boruvka(n, edges)
	if res.Total != 37 {
		t.Fatalf("Boruvka total = %d, want 37", res.Total)
	}
	if rounds < 1 || rounds > 4 {
		t.Fatalf("Boruvka rounds = %d, want O(log n)", rounds)
	}
}

func TestForestOnDisconnectedInput(t *testing.T) {
	edges := []WEdge{{0, 1, 3}, {2, 3, 5}}
	for name, res := range map[string]Result{
		"prim":    Prim(5, edges),
		"kruskal": Kruskal(5, edges),
	} {
		if len(res.Edges) != 2 || res.Total != 8 {
			t.Errorf("%s: got %d edges total %d, want forest of both", name, len(res.Edges), res.Total)
		}
	}
	res, _ := Boruvka(5, edges)
	if len(res.Edges) != 2 || res.Total != 8 {
		t.Errorf("boruvka: got %d edges total %d", len(res.Edges), res.Total)
	}
}

func TestEmptyAndSingletonInputs(t *testing.T) {
	if res := Prim(3, nil); len(res.Edges) != 0 || res.Total != 0 {
		t.Errorf("Prim on empty edges: %+v", res)
	}
	if res := Kruskal(0, nil); len(res.Edges) != 0 {
		t.Errorf("Kruskal on empty graph: %+v", res)
	}
	res, rounds := Boruvka(1, nil)
	if len(res.Edges) != 0 || rounds != 0 {
		t.Errorf("Boruvka on singleton: %+v rounds=%d", res, rounds)
	}
}

// randomWEdges builds a connected random weighted graph.
func randomWEdges(rng *rand.Rand, n int) []WEdge {
	edges := make([]WEdge, 0, 3*n)
	for v := 1; v < n; v++ {
		edges = append(edges, WEdge{U: int32(rng.Intn(v)), V: int32(v), W: graph.Dist(rng.Intn(100) + 1)})
	}
	for i := 0; i < 2*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			edges = append(edges, WEdge{U: int32(u), V: int32(v), W: graph.Dist(rng.Intn(100) + 1)})
		}
	}
	return edges
}

func TestPropertyThreeAlgorithmsAgreeOnWeight(t *testing.T) {
	// MST weight is unique even when the MST itself is not.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		edges := randomWEdges(rng, n)
		p := Prim(n, edges)
		k := Kruskal(n, edges)
		b, _ := Boruvka(n, edges)
		if p.Total != k.Total || k.Total != b.Total {
			return false
		}
		return len(p.Edges) == n-1 && len(k.Edges) == n-1 && len(b.Edges) == n-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySpanningTreeIsAcyclicAndSpanning(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		edges := randomWEdges(rng, n)
		res := Prim(n, edges)
		uf := NewUnionFind(n)
		for _, e := range res.Edges {
			if !uf.Union(e.U, e.V) {
				return false // cycle
			}
		}
		return uf.Count() == 1 // spanning
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCutProperty(t *testing.T) {
	// For a random cut, the minimum crossing edge's weight must appear in
	// the MST's crossing edges (cut property holds for some MST; weights
	// are compared rather than identities since ties allow multiple MSTs).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		edges := randomWEdges(rng, n)
		res := Kruskal(n, edges)
		side := make([]bool, n)
		hasBoth := false
		for i := range side {
			side[i] = rng.Intn(2) == 0
		}
		side[0] = true
		side[1] = false
		hasBoth = true
		if !hasBoth {
			return true
		}
		minCross := graph.Dist(1 << 60)
		for _, e := range edges {
			if side[e.U] != side[e.V] && e.W < minCross {
				minCross = e.W
			}
		}
		treeMinCross := graph.Dist(1 << 60)
		for _, e := range res.Edges {
			if side[e.U] != side[e.V] && e.W < treeMinCross {
				treeMinCross = e.W
			}
		}
		// The connected input guarantees a crossing edge exists in both.
		return treeMinCross == minCross
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGraphMST(t *testing.T) {
	// Square with diagonal: 0-1:1, 1-2:2, 2-3:1, 3-0:2, 0-2:10.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 2)
	b.AddEdge(2, 3, 1)
	b.AddEdge(3, 0, 2)
	b.AddEdge(0, 2, 10)
	g, _ := b.Build()
	res := GraphMST(g)
	if res.Total != 4 {
		t.Fatalf("GraphMST total = %d, want 4", res.Total)
	}
	if len(res.Edges) != 3 {
		t.Fatalf("GraphMST edges = %d, want 3", len(res.Edges))
	}
}

func TestPrimDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	n := 40
	edges := randomWEdges(rng, n)
	r1 := Prim(n, edges)
	r2 := Prim(n, edges)
	if len(r1.Edges) != len(r2.Edges) {
		t.Fatal("nondeterministic edge count")
	}
	for i := range r1.Edges {
		if r1.Edges[i] != r2.Edges[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, r1.Edges[i], r2.Edges[i])
		}
	}
}
