package mst

import (
	"sort"

	"dsteiner/internal/graph"
	"dsteiner/internal/pq"
)

// WEdge is an edge of an abstract weighted graph on dense int32 vertex IDs
// (typically seed indices when computing the MST of the distance graph G'₁).
// Weights are 64-bit because distance-graph weights are path distances.
type WEdge struct {
	U, V int32
	W    graph.Dist
}

// Result is a spanning forest: the chosen edges and their total weight. If
// the input is connected it is a spanning tree with n-1 edges.
type Result struct {
	Edges []WEdge
	Total graph.Dist
}

// Prim computes a minimum spanning forest of the n-vertex graph given by
// edges, using a binary-heap "lazy" Prim per component. Deterministic
// tie-breaking: the heap orders by (weight, insertion sequence), and
// adjacency is scanned in input order, so equal-weight choices are stable
// across runs. This mirrors the paper's sequential MST step.
func Prim(n int, edges []WEdge) Result {
	adjHead, adjNext, adjEdge := buildAdj(n, edges)
	inTree := make([]bool, n)
	var res Result
	type heapItem struct {
		edgeIdx int32
		newV    int32
	}
	// One heap shared by all components: worst case every edge is pushed
	// from both endpoints, so sizing it once up front avoids repeated
	// growth on large distance graphs without re-allocating per component.
	capHint := 2 * len(edges)
	if capHint < 16 {
		capHint = 16
	}
	h := pq.NewHeap[heapItem](capHint)
	for start := int32(0); int(start) < n; start++ {
		if inTree[start] {
			continue
		}
		inTree[start] = true
		h.Reset()
		push := func(v int32) {
			for ei := adjHead[v]; ei >= 0; ei = adjNext[ei] {
				e := edges[adjEdge[ei]]
				other := e.U
				if other == v {
					other = e.V
				}
				if !inTree[other] {
					h.Push(heapItem{edgeIdx: adjEdge[ei], newV: other}, uint64(e.W))
				}
			}
		}
		push(start)
		for {
			item, ok := h.Pop()
			if !ok {
				break
			}
			if inTree[item.newV] {
				continue
			}
			inTree[item.newV] = true
			e := edges[item.edgeIdx]
			res.Edges = append(res.Edges, e)
			res.Total += e.W
			push(item.newV)
		}
	}
	return res
}

// Kruskal computes a minimum spanning forest by sorting edges and merging
// with union-find. Ties are broken by (weight, U, V) for determinism.
func Kruskal(n int, edges []WEdge) Result {
	order := make([]int32, len(edges))
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		ea, eb := edges[order[a]], edges[order[b]]
		if ea.W != eb.W {
			return ea.W < eb.W
		}
		if ea.U != eb.U {
			return ea.U < eb.U
		}
		return ea.V < eb.V
	})
	uf := NewUnionFind(n)
	var res Result
	for _, i := range order {
		e := edges[i]
		if uf.Union(e.U, e.V) {
			res.Edges = append(res.Edges, e)
			res.Total += e.W
		}
	}
	return res
}

// Boruvka computes a minimum spanning forest with Borůvka rounds: each
// component selects its minimum outgoing edge (ties by (W, U, V)), then all
// selected edges are merged. Included for the DESIGN.md ablation of the
// paper's "sequential MST is sufficient" argument — Borůvka is the classic
// parallelizable MST whose available parallelism collapses as components
// merge (Bader & Cong [18]).
//
// Rounds is returned for the ablation (number of Borůvka iterations).
func Boruvka(n int, edges []WEdge) (Result, int) {
	uf := NewUnionFind(n)
	var res Result
	rounds := 0
	for {
		// best[c] = index of minimum outgoing edge of component c.
		best := map[int32]int32{}
		better := func(a, b int32) bool {
			ea, eb := edges[a], edges[b]
			if ea.W != eb.W {
				return ea.W < eb.W
			}
			if ea.U != eb.U {
				return ea.U < eb.U
			}
			return ea.V < eb.V
		}
		for i := range edges {
			e := edges[i]
			cu, cv := uf.Find(e.U), uf.Find(e.V)
			if cu == cv {
				continue
			}
			for _, c := range [2]int32{cu, cv} {
				if cur, ok := best[c]; !ok || better(int32(i), cur) {
					best[c] = int32(i)
				}
			}
		}
		if len(best) == 0 {
			return res, rounds
		}
		rounds++
		merged := false
		// Deterministic merge order: by component ID.
		comps := make([]int32, 0, len(best))
		for c := range best {
			comps = append(comps, c)
		}
		sort.Slice(comps, func(i, j int) bool { return comps[i] < comps[j] })
		for _, c := range comps {
			e := edges[best[c]]
			if uf.Union(e.U, e.V) {
				res.Edges = append(res.Edges, e)
				res.Total += e.W
				merged = true
			}
		}
		if !merged {
			return res, rounds
		}
	}
}

// buildAdj builds an intrusive linked-list adjacency over the edge list:
// adjHead[v] is the first adjacency slot of v, adjNext chains slots, and
// adjEdge maps slots to edge indices. Two slots exist per edge.
func buildAdj(n int, edges []WEdge) (adjHead, adjNext, adjEdge []int32) {
	adjHead = make([]int32, n)
	for i := range adjHead {
		adjHead[i] = -1
	}
	adjNext = make([]int32, 0, 2*len(edges))
	adjEdge = make([]int32, 0, 2*len(edges))
	add := func(v int32, ei int32) {
		slot := int32(len(adjNext))
		adjNext = append(adjNext, adjHead[v])
		adjEdge = append(adjEdge, ei)
		adjHead[v] = slot
	}
	for i, e := range edges {
		add(e.U, int32(i))
		add(e.V, int32(i))
	}
	return adjHead, adjNext, adjEdge
}

// GraphMST computes the minimum spanning forest of a background graph
// (used by the WWW baseline and by tests).
func GraphMST(g *graph.Graph) Result {
	edges := make([]WEdge, 0, g.NumEdges())
	for _, e := range g.Edges() {
		edges = append(edges, WEdge{U: int32(e.U), V: int32(e.V), W: graph.Dist(e.W)})
	}
	return Kruskal(g.NumVertices(), edges)
}
