// Package mst provides minimum-spanning-tree algorithms (Prim, Kruskal,
// Borůvka) and a union-find structure. The paper computes the MST G'₂ of the
// small distance graph G'₁ with a sequential Prim implementation (Alg. 3
// line 17, "our current implementation uses Boost's implementation of Prim's
// algorithm"); Kruskal and Borůvka are included for the WWW baseline and for
// the ablation benchmark quantifying the paper's sequential-MST design
// choice (§III).
package mst

// UnionFind is a disjoint-set forest with union by rank and path
// compression.
type UnionFind struct {
	parent []int32
	rank   []int8
	count  int // number of disjoint sets
}

// NewUnionFind returns n singleton sets {0}, {1}, ..., {n-1}.
func NewUnionFind(n int) *UnionFind {
	u := &UnionFind{
		parent: make([]int32, n),
		rank:   make([]int8, n),
		count:  n,
	}
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
	return u
}

// Find returns the canonical representative of x's set.
func (u *UnionFind) Find(x int32) int32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = u.parent[x]
	}
	return x
}

// Union merges the sets of a and b; it reports whether a merge happened
// (false when already in the same set).
func (u *UnionFind) Union(a, b int32) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	u.count--
	return true
}

// Connected reports whether a and b are in the same set.
func (u *UnionFind) Connected(a, b int32) bool { return u.Find(a) == u.Find(b) }

// Count returns the number of disjoint sets.
func (u *UnionFind) Count() int { return u.count }
