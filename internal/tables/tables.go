// Package tables renders experiment results as aligned text tables, the
// output format of cmd/experiments and the benchmark harness.
package tables

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is a titled grid with optional footnotes.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	totalW := 0
	for _, w := range widths {
		totalW += w + 2
	}
	if totalW < len(t.Title) {
		totalW = len(t.Title)
	}
	fmt.Fprintln(w, t.Title)
	fmt.Fprintln(w, strings.Repeat("=", totalW))
	line := func(cells []string) {
		var sb strings.Builder
		for i, cell := range cells {
			if i < len(widths) {
				fmt.Fprintf(&sb, "%-*s", widths[i]+2, cell)
			} else {
				sb.WriteString(cell)
			}
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	line(t.Header)
	fmt.Fprintln(w, strings.Repeat("-", totalW))
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  * %s\n", n)
	}
	fmt.Fprintln(w)
}

// RenderCSV writes the table as comma-separated values (header first, then
// rows; the title and notes become '#' comment lines) for plotting
// pipelines.
func (t *Table) RenderCSV(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", t.Title)
	writeCSVLine(w, t.Header)
	for _, row := range t.Rows {
		writeCSVLine(w, row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
}

func writeCSVLine(w io.Writer, cells []string) {
	for i, c := range cells {
		if i > 0 {
			io.WriteString(w, ",")
		}
		if strings.ContainsAny(c, ",\"\n") {
			c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		io.WriteString(w, c)
	}
	io.WriteString(w, "\n")
}

// Seconds formats a duration in the paper's style: ms below one second,
// s / m / h above.
func Seconds(sec float64) string {
	d := time.Duration(sec * float64(time.Second))
	switch {
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	case d < time.Minute:
		return fmt.Sprintf("%.1fs", d.Seconds())
	case d < time.Hour:
		return fmt.Sprintf("%.1fm", d.Minutes())
	default:
		return fmt.Sprintf("%.1fh", d.Hours())
	}
}

// Count formats a count with K/M/B suffixes.
func Count(n int64) string {
	switch {
	case n >= 1_000_000_000:
		return fmt.Sprintf("%.1fB", float64(n)/1e9)
	case n >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 10_000:
		return fmt.Sprintf("%.1fK", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// Bytes formats a byte size with binary suffixes.
func Bytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(n)/float64(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/float64(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/float64(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Ratio formats an approximation ratio to 4 decimals (Table VII style).
func Ratio(r float64) string { return fmt.Sprintf("%.4f", r) }
