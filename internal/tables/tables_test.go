package tables

import (
	"bytes"
	"strings"
	"testing"
)

func TestRenderAlignment(t *testing.T) {
	tb := Table{
		Title:  "Demo",
		Header: []string{"A", "LongHeader", "C"},
	}
	tb.AddRow("x", "1", "z")
	tb.AddRow("longcell", "2", "w")
	tb.AddNote("note %d", 7)
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	lines := strings.Split(out, "\n")
	if lines[0] != "Demo" {
		t.Fatalf("title line = %q", lines[0])
	}
	if !strings.Contains(out, "LongHeader") || !strings.Contains(out, "longcell") {
		t.Fatalf("missing cells:\n%s", out)
	}
	if !strings.Contains(out, "* note 7") {
		t.Fatalf("missing note:\n%s", out)
	}
	// Column alignment: "1" and "2" start at the same offset.
	var rowA, rowB string
	for _, l := range lines {
		if strings.HasPrefix(l, "x") {
			rowA = l
		}
		if strings.HasPrefix(l, "longcell") {
			rowB = l
		}
	}
	if strings.Index(rowA, "1") != strings.Index(rowB, "2") {
		t.Fatalf("columns misaligned:\n%q\n%q", rowA, rowB)
	}
}

func TestRenderCSV(t *testing.T) {
	tb := Table{Title: "T", Header: []string{"a", "b"}}
	tb.AddRow("1", "x,y")
	tb.AddRow(`q"z`, "2")
	tb.AddNote("n")
	var buf bytes.Buffer
	tb.RenderCSV(&buf)
	out := buf.String()
	want := "# T\na,b\n1,\"x,y\"\n\"q\"\"z\",2\n# n\n"
	if out != want {
		t.Fatalf("CSV = %q, want %q", out, want)
	}
}

func TestSeconds(t *testing.T) {
	cases := map[float64]string{
		0.0051: "5.1ms",
		1.5:    "1.5s",
		90:     "1.5m",
		7200:   "2.0h",
	}
	for in, want := range cases {
		if got := Seconds(in); got != want {
			t.Errorf("Seconds(%f) = %q, want %q", in, got, want)
		}
	}
}

func TestCount(t *testing.T) {
	cases := map[int64]string{
		7:             "7",
		9999:          "9999",
		10000:         "10.0K",
		2_500_000:     "2.5M",
		3_000_000_000: "3.0B",
	}
	for in, want := range cases {
		if got := Count(in); got != want {
			t.Errorf("Count(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestBytes(t *testing.T) {
	cases := map[int64]string{
		512:     "512B",
		2048:    "2.0KB",
		3 << 20: "3.0MB",
		5 << 30: "5.0GB",
	}
	for in, want := range cases {
		if got := Bytes(in); got != want {
			t.Errorf("Bytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(1.05271); got != "1.0527" {
		t.Errorf("Ratio = %q", got)
	}
}
