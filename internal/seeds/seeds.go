// Package seeds implements the paper's seed-vertex selection strategies
// (§V "Seed Vertex Selection" and §V-E "Studying Seed Selection
// Alternatives"). All strategies draw from the largest connected component
// so every seed pair is mutually reachable:
//
//   - BFSLevel (the paper's default evaluation strategy): run BFS from a
//     random component vertex and sample seeds across BFS levels
//     proportionally to each level's population, avoiding directly-connected
//     seed clusters that would make Voronoi computation converge trivially.
//   - UniformRandom: uniform over the component.
//   - Eccentric: the k-BFS heuristic [31] — BFS sources chosen to maximize
//     the sum of BFS levels from previous rounds, yielding mutually faraway
//     seeds.
//   - Proximate: the same machinery minimizing the sum, yielding mutually
//     close seeds (produces much smaller trees, Table V).
package seeds

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dsteiner/internal/graph"
)

// Strategy selects a seed-selection algorithm.
type Strategy int

const (
	// BFSLevel samples proportionally to BFS-level populations.
	BFSLevel Strategy = iota
	// UniformRandom samples uniformly from the largest component.
	UniformRandom
	// Eccentric picks mutually faraway seeds (k-BFS max).
	Eccentric
	// Proximate picks mutually close seeds (k-BFS min).
	Proximate
)

// String returns the flag/API name of the seed-selection strategy.
func (s Strategy) String() string {
	switch s {
	case BFSLevel:
		return "BFS-level"
	case UniformRandom:
		return "Uniform Random"
	case Eccentric:
		return "Eccentric"
	case Proximate:
		return "Proximate"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// maxKBFSRounds caps the number of BFS rounds used by the Eccentric and
// Proximate strategies; beyond it, remaining seeds are chosen by the
// accumulated level score in one shot (a documented scale substitution —
// the exact k-BFS heuristic needs one BFS per seed, infeasible at |S|=10K).
const maxKBFSRounds = 48

// Select returns k distinct seed vertices from g's largest connected
// component using the given strategy. The rng seed makes selection
// deterministic.
func Select(g *graph.Graph, k int, strat Strategy, seed int64) ([]graph.VID, error) {
	if k <= 0 {
		return nil, fmt.Errorf("seeds: k=%d must be positive", k)
	}
	comp := graph.LargestComponentVertices(g)
	if k > len(comp) {
		return nil, fmt.Errorf("seeds: k=%d exceeds largest component size %d", k, len(comp))
	}
	rng := rand.New(rand.NewSource(seed))
	switch strat {
	case BFSLevel:
		return bfsLevel(g, comp, k, rng), nil
	case UniformRandom:
		return uniform(comp, k, rng), nil
	case Eccentric:
		return kBFS(g, comp, k, rng, true), nil
	case Proximate:
		return kBFS(g, comp, k, rng, false), nil
	default:
		return nil, fmt.Errorf("seeds: unknown strategy %d", int(strat))
	}
}

// MustSelect is Select that panics on error (experiment configs are known
// valid).
func MustSelect(g *graph.Graph, k int, strat Strategy, seed int64) []graph.VID {
	s, err := Select(g, k, strat, seed)
	if err != nil {
		panic(err)
	}
	return s
}

func uniform(comp []graph.VID, k int, rng *rand.Rand) []graph.VID {
	perm := rng.Perm(len(comp))
	out := make([]graph.VID, k)
	for i := 0; i < k; i++ {
		out[i] = comp[perm[i]]
	}
	sortVIDs(out)
	return out
}

// bfsLevel allocates per-level quotas proportional to level populations
// and samples within each level without replacement.
func bfsLevel(g *graph.Graph, comp []graph.VID, k int, rng *rand.Rand) []graph.VID {
	root := comp[rng.Intn(len(comp))]
	bfs := graph.BFS(g, root)
	byLevel := make([][]graph.VID, bfs.MaxLevel+1)
	total := 0
	for _, v := range comp {
		l := bfs.Level[v]
		byLevel[l] = append(byLevel[l], v)
		total++
	}
	// Largest-remainder quota allocation.
	type alloc struct {
		level int
		quota int
		frac  float64
	}
	allocs := make([]alloc, 0, len(byLevel))
	assigned := 0
	for l, vs := range byLevel {
		exact := float64(k) * float64(len(vs)) / float64(total)
		q := int(exact)
		if q > len(vs) {
			q = len(vs)
		}
		allocs = append(allocs, alloc{level: l, quota: q, frac: exact - float64(q)})
		assigned += q
	}
	// Distribute the remainder by weighted sampling without replacement
	// (Efraimidis–Spirakis A-Res keys: rank by log(u)/w descending),
	// weight = fractional part: levels with larger remainders are more
	// likely to gain the extra seed, but the remainder spreads over the
	// whole level range instead of clustering at the lowest levels.
	for i := range allocs {
		w := allocs[i].frac + 1e-3
		u := rng.Float64()
		if u == 0 {
			u = 1e-12
		}
		allocs[i].frac = math.Log(u) / w
	}
	sort.Slice(allocs, func(i, j int) bool { return allocs[i].frac > allocs[j].frac })
	for i := 0; assigned < k; i = (i + 1) % len(allocs) {
		a := &allocs[i]
		if a.quota < len(byLevel[a.level]) {
			a.quota++
			assigned++
		}
	}
	var out []graph.VID
	for _, a := range allocs {
		vs := byLevel[a.level]
		perm := rng.Perm(len(vs))
		for i := 0; i < a.quota; i++ {
			out = append(out, vs[perm[i]])
		}
	}
	sortVIDs(out)
	return out
}

// kBFS implements the eccentric/proximate heuristic: each round's BFS
// source is the vertex maximizing (eccentric) or minimizing (proximate) the
// sum of BFS levels over all previous rounds; sources become seeds. After
// maxKBFSRounds rounds the remaining seeds are taken from the accumulated
// score ranking in one step.
func kBFS(g *graph.Graph, comp []graph.VID, k int, rng *rand.Rand, maximize bool) []graph.VID {
	inComp := make(map[graph.VID]bool, len(comp))
	for _, v := range comp {
		inComp[v] = true
	}
	score := make([]int64, g.NumVertices())
	chosen := map[graph.VID]bool{}
	var out []graph.VID
	cur := comp[rng.Intn(len(comp))]
	rounds := k
	if rounds > maxKBFSRounds {
		rounds = maxKBFSRounds
	}
	for round := 0; round < rounds && len(out) < k; round++ {
		chosen[cur] = true
		out = append(out, cur)
		bfs := graph.BFS(g, cur)
		for _, v := range comp {
			score[v] += int64(bfs.Level[v])
		}
		// Next source: arg max/min of accumulated score among unchosen.
		var best graph.VID = graph.NilVID
		for _, v := range comp {
			if chosen[v] {
				continue
			}
			if best == graph.NilVID {
				best = v
				continue
			}
			if maximize && score[v] > score[best] {
				best = v
			} else if !maximize && score[v] < score[best] {
				best = v
			}
		}
		cur = best
	}
	if len(out) < k {
		// Bulk tail: rank remaining component vertices by score.
		rest := make([]graph.VID, 0, len(comp)-len(out))
		for _, v := range comp {
			if !chosen[v] {
				rest = append(rest, v)
			}
		}
		sort.Slice(rest, func(i, j int) bool {
			si, sj := score[rest[i]], score[rest[j]]
			if si != sj {
				if maximize {
					return si > sj
				}
				return si < sj
			}
			return rest[i] < rest[j]
		})
		out = append(out, rest[:k-len(out)]...)
	}
	sortVIDs(out)
	return out
}

func sortVIDs(v []graph.VID) {
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
}
