package seeds

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dsteiner/internal/graph"
	"dsteiner/internal/sssp"
)

func testGraph(seed int64, n int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(graph.VID(rng.Intn(v)), graph.VID(v), uint32(rng.Intn(50))+1)
	}
	for i := 0; i < n; i++ {
		b.AddEdge(graph.VID(rng.Intn(n)), graph.VID(rng.Intn(n)), uint32(rng.Intn(50))+1)
	}
	g, _ := b.Build()
	return g
}

var allStrategies = []Strategy{BFSLevel, UniformRandom, Eccentric, Proximate}

func TestAllStrategiesBasicContract(t *testing.T) {
	g := testGraph(1, 400)
	for _, strat := range allStrategies {
		for _, k := range []int{1, 2, 10, 50} {
			got, err := Select(g, k, strat, 7)
			if err != nil {
				t.Fatalf("%v k=%d: %v", strat, k, err)
			}
			if len(got) != k {
				t.Fatalf("%v k=%d: returned %d seeds", strat, k, len(got))
			}
			seen := map[graph.VID]bool{}
			for _, s := range got {
				if seen[s] {
					t.Fatalf("%v: duplicate seed %d", strat, s)
				}
				seen[s] = true
				if s < 0 || int(s) >= g.NumVertices() {
					t.Fatalf("%v: seed %d out of range", strat, s)
				}
			}
			// Sorted output.
			for i := 1; i < len(got); i++ {
				if got[i-1] >= got[i] {
					t.Fatalf("%v: seeds not sorted: %v", strat, got)
				}
			}
		}
	}
}

func TestSeedsAreMutuallyReachable(t *testing.T) {
	// Graph with two components; seeds must all come from the largest.
	b := graph.NewBuilder(50)
	for v := 1; v < 40; v++ {
		b.AddEdge(graph.VID(v-1), graph.VID(v), 1)
	}
	for v := 41; v < 50; v++ {
		b.AddEdge(graph.VID(v-1), graph.VID(v), 1)
	}
	g, _ := b.Build()
	for _, strat := range allStrategies {
		seeds, err := Select(g, 8, strat, 3)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		r := sssp.MultiSource(g, seeds[:1])
		for _, s := range seeds {
			if r.Dist[s] >= graph.InfDist {
				t.Fatalf("%v: seed %d unreachable from seed %d", strat, s, seeds[0])
			}
		}
	}
}

func TestErrors(t *testing.T) {
	g := testGraph(2, 50)
	if _, err := Select(g, 0, BFSLevel, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Select(g, 10000, UniformRandom, 1); err == nil {
		t.Error("k > component accepted")
	}
	if _, err := Select(g, 5, Strategy(42), 1); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestDeterminism(t *testing.T) {
	g := testGraph(3, 300)
	for _, strat := range allStrategies {
		a := MustSelect(g, 20, strat, 99)
		b := MustSelect(g, 20, strat, 99)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v nondeterministic at %d", strat, i)
			}
		}
		c := MustSelect(g, 20, strat, 100)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same && strat != Eccentric && strat != Proximate {
			// Eccentric/proximate are nearly seed-independent by design
			// (argmax of deterministic scores); random strategies must
			// vary with the rng seed.
			t.Errorf("%v identical across rng seeds", strat)
		}
	}
}

func TestEccentricSpreadsProximateClusters(t *testing.T) {
	// On a long path, eccentric seeds must be much farther apart in sum
	// of pairwise distance than proximate seeds (the Table V contrast).
	n := 300
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(graph.VID(v-1), graph.VID(v), 1)
	}
	g, _ := b.Build()
	k := 6
	ecc := MustSelect(g, k, Eccentric, 5)
	prox := MustSelect(g, k, Proximate, 5)
	pairSum := func(vs []graph.VID) int64 {
		var sum int64
		for i := range vs {
			for j := i + 1; j < len(vs); j++ {
				d := int64(vs[i]) - int64(vs[j])
				if d < 0 {
					d = -d
				}
				sum += d
			}
		}
		return sum
	}
	se, sp := pairSum(ecc), pairSum(prox)
	if se < 3*sp {
		t.Fatalf("eccentric spread %d not far above proximate %d", se, sp)
	}
}

func TestBFSLevelSamplesManyLevels(t *testing.T) {
	// On a path graph, BFS levels are singletons: BFS-level selection
	// must spread across levels rather than cluster.
	n := 200
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(graph.VID(v-1), graph.VID(v), 1)
	}
	g, _ := b.Build()
	seeds := MustSelect(g, 50, BFSLevel, 11)
	if len(seeds) != 50 {
		t.Fatalf("got %d seeds", len(seeds))
	}
	// With proportional allocation on singleton levels, seeds spread
	// over the whole path. Check span.
	span := seeds[len(seeds)-1] - seeds[0]
	if span < 100 {
		t.Fatalf("BFS-level seeds clustered: span %d", span)
	}
}

func TestPropertyContract(t *testing.T) {
	f := func(seed int64, kRaw uint8, stratRaw uint8) bool {
		g := testGraph(seed, 150)
		comp := graph.LargestComponentVertices(g)
		k := 1 + int(kRaw)%40
		if k > len(comp) {
			k = len(comp)
		}
		strat := allStrategies[int(stratRaw)%len(allStrategies)]
		got, err := Select(g, k, strat, seed)
		if err != nil || len(got) != k {
			return false
		}
		inComp := map[graph.VID]bool{}
		for _, v := range comp {
			inComp[v] = true
		}
		for i, s := range got {
			if !inComp[s] {
				return false
			}
			if i > 0 && got[i-1] >= s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestStrategyString(t *testing.T) {
	want := map[Strategy]string{
		BFSLevel: "BFS-level", UniformRandom: "Uniform Random",
		Eccentric: "Eccentric", Proximate: "Proximate", Strategy(9): "Strategy(9)",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), w)
		}
	}
}
