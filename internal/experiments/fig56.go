package experiments

import (
	"fmt"

	"dsteiner/internal/core"
	rt "dsteiner/internal/runtime"
	"dsteiner/internal/tables"
)

// Fig56 reproduces Fig. 5 (runtime, FIFO vs priority queue) and Fig. 6
// (message counts, same runs) on LVJ, FRS and UKW with |S|=100. The paper's
// shape: the priority queue wins 3.5x–13.1x in runtime and 4.9x–22.1x in
// Voronoi message traffic; collective-based phases show no visitor
// messages.
func Fig56(cfg Config) ([]tables.Table, error) {
	datasets := []string{"LVJ", "FRS", "UKW07"}
	k := 100
	timeT := tables.Table{
		Title: fmt.Sprintf("Fig. 5: FIFO vs priority queue runtime, |S|=%d (P=%d)", k, cfg.Ranks),
		Header: append([]string{"Graph", "Queue"},
			append(phaseShortNames(), "Total", "Speedup")...),
	}
	msgT := tables.Table{
		Title:  fmt.Sprintf("Fig. 6: message counts by phase, |S|=%d (P=%d)", k, cfg.Ranks),
		Header: []string{"Graph", "Queue", "Voronoi", "LocMinE", "TreeE", "Total", "Improvement"},
	}
	for _, name := range datasets {
		if !contains(cfg.SeedCounts(name), k) {
			continue
		}
		g := cfg.Graph(name)
		seedSet := cfg.Seeds(name, k)
		var fifoTotal float64
		var fifoMsgs int64
		for _, q := range []rt.QueueKind{rt.QueueFIFO, rt.QueuePriority} {
			cfg.logf("fig5/6: %s queue=%v", name, q)
			opts := core.Default(cfg.Ranks)
			opts.Queue = q
			res, err := core.Solve(g, seedSet, opts)
			if err != nil {
				return nil, err
			}
			row := []string{name, q.String()}
			for _, ph := range res.Phases {
				row = append(row, tables.Seconds(ph.Seconds))
			}
			total := res.TotalSeconds()
			speedup := "1.00"
			if q == rt.QueueFIFO {
				fifoTotal = total
			} else if total > 0 {
				speedup = fmt.Sprintf("%.2fx", fifoTotal/total)
			}
			row = append(row, tables.Seconds(total), speedup)
			timeT.AddRow(row...)

			msgs := res.TotalMessages()
			improvement := "1.00"
			if q == rt.QueueFIFO {
				fifoMsgs = msgs
			} else if msgs > 0 {
				improvement = fmt.Sprintf("%.2fx", float64(fifoMsgs)/float64(msgs))
			}
			msgT.AddRow(name, q.String(),
				tables.Count(res.Phase(core.PhaseVoronoi).Sent),
				tables.Count(res.Phase(core.PhaseLocalMinEdge).Sent),
				tables.Count(res.Phase(core.PhaseTreeEdge).Sent),
				tables.Count(msgs), improvement)
		}
	}
	timeT.AddNote("paper: priority queue speedup 3.5x (FRS), 6.2x (UKW), 13.1x (LVJ)")
	msgT.AddNote("paper: message improvement 4.9x (FRS), 6.1x (UKW), 22.1x (LVJ)")
	msgT.AddNote("collective phases (GlbMinE, MST, Prune) send no visitor messages, as in the paper")
	return []tables.Table{timeT, msgT}, nil
}
