package experiments

import (
	"fmt"

	"dsteiner/internal/core"
	"dsteiner/internal/tables"
)

// fig4Datasets are the six graphs of the paper's Fig. 4.
var fig4Datasets = []string{"PTN", "LVJ", "FRS", "UKW07", "CLW12", "WDC12"}

// Fig4 reproduces the seed-count sweep: per-phase runtime for |S| = 10,
// 100, 1000, 10000 at a fixed rank count. The paper's shape: runtime grows
// sub-linearly with |S| (Voronoi can even get FASTER at 10K seeds because
// convergence accelerates with dense sources); the final four phases are
// negligible until |S|=10K, where the distance graph G'₁ blows up.
func Fig4(cfg Config) ([]tables.Table, error) {
	var out []tables.Table
	for _, name := range fig4Datasets {
		g := cfg.Graph(name)
		t := tables.Table{
			Title: fmt.Sprintf("Fig. 4: |S| sweep, %s (P=%d)", name, cfg.Ranks),
			Header: append([]string{"|S|"},
				append(phaseShortNames(), "Total", "|E'1|", "|E_S|")...),
		}
		for _, k := range cfg.SeedCounts(name) {
			cfg.logf("fig4: %s |S|=%d", name, k)
			seedSet := cfg.Seeds(name, k)
			res, err := core.Solve(g, seedSet, core.Default(cfg.Ranks))
			if err != nil {
				return nil, err
			}
			row := []string{itoa(k)}
			for _, ph := range res.Phases {
				row = append(row, tables.Seconds(ph.Seconds))
			}
			row = append(row, tables.Seconds(res.TotalSeconds()),
				tables.Count(int64(res.DistGraphEdges)),
				tables.Count(int64(len(res.Tree))))
			t.AddRow(row...)
		}
		t.AddNote("paper: Voronoi time can drop at |S|=10K; G'1 reaches ~50M edges at 10K seeds")
		out = append(out, t)
	}
	return out, nil
}
