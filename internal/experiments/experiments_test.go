package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"dsteiner/internal/graph"
)

// shortCfg returns a fast config for tests.
func shortCfg() Config {
	cfg := ShortConfig()
	cfg.Reps = 1
	return cfg
}

func TestRegistryNamesComplete(t *testing.T) {
	names := Names()
	// Every paper artifact must be present.
	want := []string{"table1", "table3", "fig3", "fig4", "table4", "fig5",
		"fig6", "fig7", "fig8", "table5", "table6", "table7", "fig9"}
	for _, w := range want {
		found := false
		for _, n := range names {
			if n == w {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("experiment %q missing from registry", w)
		}
	}
	if _, err := Run("nope", shortCfg()); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestSeedCountsRespectComponentAndCap(t *testing.T) {
	cfg := shortCfg()
	counts := cfg.SeedCounts("CTS")
	if len(counts) == 0 {
		t.Fatal("no seed counts for CTS")
	}
	for _, k := range counts {
		if k > cfg.SeedCap {
			t.Errorf("count %d exceeds cap %d", k, cfg.SeedCap)
		}
		if k > cfg.componentSize("CTS")/4 && len(counts) > 1 {
			t.Errorf("count %d exceeds component/4", k)
		}
	}
}

func TestGraphCacheReturnsSameInstance(t *testing.T) {
	cfg := shortCfg()
	g1 := cfg.Graph("CTS")
	g2 := cfg.Graph("CTS")
	if g1 != g2 {
		t.Fatal("graph cache returned different instances")
	}
}

// TestAllExperimentsRunAtShortScale executes every registered experiment at
// the short scale and sanity-checks the emitted tables.
func TestAllExperimentsRunAtShortScale(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment; skipped in -short mode")
	}
	cfg := shortCfg()
	seen := map[string]bool{}
	for _, id := range Names() {
		if seen[id] {
			continue
		}
		seen[id] = true
		ts, err := Run(id, cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(ts) == 0 {
			t.Fatalf("%s: no tables", id)
		}
		var buf bytes.Buffer
		Render(&buf, ts)
		outStr := buf.String()
		if len(outStr) < 50 {
			t.Fatalf("%s: implausibly small output:\n%s", id, outStr)
		}
		for _, tb := range ts {
			if len(tb.Rows) == 0 {
				t.Fatalf("%s: table %q has no rows", id, tb.Title)
			}
			for _, row := range tb.Rows {
				if len(row) != len(tb.Header) {
					t.Fatalf("%s: table %q row width %d != header %d",
						id, tb.Title, len(row), len(tb.Header))
				}
			}
		}
	}
}

func TestTable1ShapeVCBeatsAPSP(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based shape check")
	}
	cfg := shortCfg()
	ts, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// At the largest |S| row, the APSP/VC speedup must exceed 1.
	rows := ts[0].Rows
	last := rows[len(rows)-1]
	speedup, err := strconv.ParseFloat(last[len(last)-1], 64)
	if err != nil {
		t.Fatalf("bad speedup cell %q", last[len(last)-1])
	}
	if speedup <= 1.0 {
		t.Errorf("VC did not beat APSP at largest |S|: %v", last)
	}
}

func TestFig9WritesDOT(t *testing.T) {
	if testing.Short() {
		t.Skip("solves MCO three times")
	}
	cfg := shortCfg()
	cfg.OutDir = t.TempDir()
	ts, err := Fig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range ts[0].Rows {
		if strings.HasSuffix(row[len(row)-1], ".dot") {
			found = true
		}
	}
	if !found {
		t.Fatal("no DOT files recorded")
	}
}

func TestWriteDOT(t *testing.T) {
	var buf bytes.Buffer
	tree := []graph.Edge{{U: 0, V: 1, W: 5}, {U: 1, V: 2, W: 3}}
	WriteDOT(&buf, tree, []graph.VID{0, 2})
	out := buf.String()
	for _, want := range []string{
		"graph steiner {", "0 [fillcolor=red]", "1 [fillcolor=blue]",
		"2 [fillcolor=red]", "0 -- 1 [label=5]", "1 -- 2 [label=3]", "}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
}

func TestStddev(t *testing.T) {
	if got := stddev(nil); got != 0 {
		t.Errorf("stddev(nil) = %f", got)
	}
	if got := stddev([]float64{2, 2, 2}); got != 0 {
		t.Errorf("stddev(const) = %f", got)
	}
	got := stddev([]float64{1, 3})
	if got < 0.99 || got > 1.01 {
		t.Errorf("stddev(1,3) = %f, want 1", got)
	}
}

func TestMakeDistanceGraphConnected(t *testing.T) {
	edges := makeDistanceGraph(50, 200)
	if len(edges) != 200 {
		t.Fatalf("edges = %d", len(edges))
	}
	parent := make([]int, 50)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	comps := 50
	for _, e := range edges {
		ru, rv := find(int(e.U)), find(int(e.V))
		if ru != rv {
			parent[ru] = rv
			comps--
		}
	}
	if comps != 1 {
		t.Fatalf("distance graph has %d components", comps)
	}
}
