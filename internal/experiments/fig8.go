package experiments

import (
	"fmt"

	"dsteiner/internal/core"
	"dsteiner/internal/tables"
)

// Fig8 reproduces the memory-usage analysis: cluster-wide bytes for the
// in-memory graph versus algorithm state at |S| = 1000 and the largest
// supported seed count, on LVJ, CLW and WDC. The paper's shape: on small
// LVJ, algorithm state dominates the graph and blows up ~36x from 1K to 10K
// seeds (the E_N collective buffers); on large WDC the graph dominates and
// the jump is only ~1.7x.
func Fig8(cfg Config) ([]tables.Table, error) {
	t := tables.Table{
		Title:  fmt.Sprintf("Fig. 8: peak memory accounting (P=%d)", cfg.Ranks),
		Header: []string{"Graph", "|S|", "GraphB", "StateB", "EdgeTabB", "DistGB", "BufB", "AlgoB", "Algo/Graph"},
	}
	for _, name := range []string{"LVJ", "CLW12", "WDC12"} {
		counts := cfg.SeedCounts(name)
		var ks []int
		if contains(counts, 1000) {
			ks = append(ks, 1000)
		}
		if last := counts[len(counts)-1]; last > 1000 {
			ks = append(ks, last)
		}
		if len(ks) == 0 {
			ks = counts[len(counts)-1:]
		}
		for _, k := range ks {
			cfg.logf("fig8: %s |S|=%d", name, k)
			res, err := core.Solve(cfg.Graph(name), cfg.Seeds(name, k), core.Default(cfg.Ranks))
			if err != nil {
				return nil, err
			}
			m := res.Memory
			t.AddRow(name, itoa(k),
				tables.Bytes(m.GraphBytes),
				tables.Bytes(m.StateBytes),
				tables.Bytes(m.EdgeTableBytes),
				tables.Bytes(m.DistGraphBytes),
				tables.Bytes(m.BufferBytes),
				tables.Bytes(m.AlgorithmBytes()),
				fmt.Sprintf("%.2f", float64(m.AlgorithmBytes())/float64(m.GraphBytes)))
		}
	}
	t.AddNote("paper: LVJ algorithm state at 10K seeds is 35.9x the 1K state; WDC only 1.7x")
	return []tables.Table{t}, nil
}
