package experiments

import (
	"fmt"
	"time"

	"dsteiner/internal/baseline"
	"dsteiner/internal/core"
	"dsteiner/internal/exact"
	"dsteiner/internal/graph"
	"dsteiner/internal/improve"
	"dsteiner/internal/tables"
)

// table67Datasets are the four small graphs of the paper's §V-G comparison.
var table67Datasets = []string{"LVJ", "PTN", "MCO", "CTS"}

// Table67 reproduces Table VI (runtime: our distributed solver at 16 ranks
// vs the exact solver and the WWW/Mehlhorn 2-approximations) and Table VII
// (approximation quality D(G_S)/D_min and % error) in one pass, since both
// need the same solutions.
//
// SCIP-Jack substitution (DESIGN.md §1): the exact column S runs the
// Dreyfus–Wagner DP at |S|=10; at |S|=100/1000 exact solving is infeasible
// for any solver of this family, so S reports the refined best-of-
// heuristics reference (labelled S*), whose runtime shape — far slower
// than the heuristics, growing with |S| — matches the paper's SCIP-Jack
// column, and whose weight serves as the D_min stand-in for Table VII.
func Table67(cfg Config) ([]tables.Table, error) {
	t6 := tables.Table{
		Title:  "Table VI: runtime vs related work (D = this work, 16 ranks)",
		Header: []string{"Graph", "|S|", "S (exact)", "W (WWW)", "M (Mehlhorn)", "D (ours)"},
	}
	t7 := tables.Table{
		Title:  "Table VII: approximation quality of the distributed solution",
		Header: []string{"Graph", "|S|", "D(G_S)", "D_min", "Ratio", "% Error"},
	}
	var ratios []float64
	for _, name := range table67Datasets {
		g := cfg.Graph(name)
		for _, k := range cfg.SeedCounts(name) {
			if k > 1000 {
				continue // the paper stops at 1000
			}
			seedSet := cfg.Seeds(name, k)
			cfg.logf("table6/7: %s |S|=%d", name, k)

			// D: our distributed solver at the paper's 16 processes.
			t0 := time.Now()
			res, err := core.Solve(g, seedSet, core.Default(16))
			if err != nil {
				return nil, err
			}
			dTime := time.Since(t0).Seconds()

			// W and M baselines.
			t0 = time.Now()
			www, err := baseline.WWW(g, seedSet)
			if err != nil {
				return nil, err
			}
			wTime := time.Since(t0).Seconds()
			t0 = time.Now()
			meh, err := baseline.Mehlhorn(g, seedSet)
			if err != nil {
				return nil, err
			}
			mTime := time.Since(t0).Seconds()

			// S: exact (DW) when feasible, refined reference otherwise.
			var dmin graph.Dist
			var sTime float64
			sLabel := ""
			exactRun := false
			if cfg.RunExact && k <= 12 {
				t0 = time.Now()
				sol, err := exact.Solve(g, seedSet, 0)
				if err == nil {
					sTime = time.Since(t0).Seconds()
					dmin = sol.Total
					exactRun = true
				}
			}
			if !exactRun {
				t0 = time.Now()
				best := www
				if meh.Total < best.Total {
					best = meh
				}
				extra := baseline.Tree{Edges: res.Tree, Total: res.TotalDistance}
				if extra.Total < best.Total {
					best = extra
				}
				ref := improve.RefineBudget(g, seedSet, best, cfg.RefineBudget)
				sTime = time.Since(t0).Seconds()
				dmin = ref.Total
				sLabel = "*"
			}

			t6.AddRow(name, itoa(k),
				tables.Seconds(sTime)+sLabel,
				tables.Seconds(wTime),
				tables.Seconds(mTime),
				tables.Seconds(dTime))

			ratio := float64(res.TotalDistance) / float64(dmin)
			ratios = append(ratios, ratio)
			t7.AddRow(name, itoa(k),
				tables.Count(int64(res.TotalDistance)),
				tables.Count(int64(dmin))+sLabel,
				tables.Ratio(ratio),
				fmt.Sprintf("%.2f%%", 100*(ratio-1)))
		}
	}
	t6.AddNote("S* = refined best-of-heuristics reference (SCIP-Jack substitute for |S|>12); see DESIGN.md")
	t6.AddNote("paper: exact solver minutes-to-hours; WWW seconds and |S|-independent; D fastest on larger graphs")
	if len(ratios) > 0 {
		var sum float64
		for _, r := range ratios {
			sum += r
		}
		t7.AddNote("mean ratio %.4f over %d instances (paper: 1.0527, 5.3%% error, bound < 2)",
			sum/float64(len(ratios)), len(ratios))
	}
	t7.AddNote("D_min* entries are refined-reference stand-ins, not proven optima")
	return []tables.Table{t6, t7}, nil
}
