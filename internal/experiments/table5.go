package experiments

import (
	"fmt"

	"dsteiner/internal/core"
	"dsteiner/internal/seeds"
	"dsteiner/internal/tables"
)

// Table5 reproduces the seed-selection-strategy comparison on LVJ: for each
// strategy (BFS-level, uniform random, eccentric, proximate) and |S|, the
// runtime, total distance D(G_S) and edge count |E_S|. The paper's shape:
// runtimes are similar across strategies, but proximate produces far
// smaller and lighter trees (its seeds are mutually close).
func Table5(cfg Config) ([]tables.Table, error) {
	name := "LVJ"
	g := cfg.Graph(name)
	t := tables.Table{
		Title:  fmt.Sprintf("Table V: seed selection strategies, LVJ (P=%d)", cfg.Ranks),
		Header: []string{"Strategy", "|S|", "Time", "D(G_S)", "|E_S|"},
	}
	strategies := []seeds.Strategy{
		seeds.BFSLevel, seeds.UniformRandom, seeds.Eccentric, seeds.Proximate,
	}
	var ks []int
	for _, k := range cfg.SeedCounts(name) {
		if k >= 100 {
			ks = append(ks, k)
		}
	}
	if len(ks) == 0 {
		ks = cfg.SeedCounts(name)
	}
	for _, strat := range strategies {
		for _, k := range ks {
			cfg.logf("table5: %v |S|=%d", strat, k)
			seedSet, err := seeds.Select(g, k, strat, cfg.SeedSelection+int64(k))
			if err != nil {
				return nil, err
			}
			res, err := core.Solve(g, seedSet, core.Default(cfg.Ranks))
			if err != nil {
				return nil, err
			}
			t.AddRow(strat.String(), itoa(k),
				tables.Seconds(res.TotalSeconds()),
				tables.Count(int64(res.TotalDistance)),
				itoa(len(res.Tree)))
		}
	}
	t.AddNote("paper: proximate trees are ~25x lighter at |S|=1K (101.0K vs 2840.9K)")
	return []tables.Table{t}, nil
}
